/root/repo/target/debug/examples/forecast-90918f5899eb93f3.d: examples/forecast.rs

/root/repo/target/debug/examples/forecast-90918f5899eb93f3: examples/forecast.rs

examples/forecast.rs:
