/root/repo/target/debug/examples/distributed_pretrain-d0318fb779ec81ee.d: examples/distributed_pretrain.rs

/root/repo/target/debug/examples/distributed_pretrain-d0318fb779ec81ee: examples/distributed_pretrain.rs

examples/distributed_pretrain.rs:
