/root/repo/target/debug/examples/quickstart-59edc4f76e27e112.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-59edc4f76e27e112: examples/quickstart.rs

examples/quickstart.rs:
