/root/repo/target/debug/examples/scaling_study-5156990360b437e7.d: examples/scaling_study.rs

/root/repo/target/debug/examples/scaling_study-5156990360b437e7: examples/scaling_study.rs

examples/scaling_study.rs:
