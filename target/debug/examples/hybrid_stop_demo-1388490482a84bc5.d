/root/repo/target/debug/examples/hybrid_stop_demo-1388490482a84bc5.d: examples/hybrid_stop_demo.rs

/root/repo/target/debug/examples/hybrid_stop_demo-1388490482a84bc5: examples/hybrid_stop_demo.rs

examples/hybrid_stop_demo.rs:
