/root/repo/target/debug/deps/repro-ad0799f678c83426.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-ad0799f678c83426: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
