/root/repo/target/debug/deps/comm_bench-ec3869ffccd7e3bf.d: crates/bench/src/bin/comm_bench.rs

/root/repo/target/debug/deps/comm_bench-ec3869ffccd7e3bf: crates/bench/src/bin/comm_bench.rs

crates/bench/src/bin/comm_bench.rs:
