/root/repo/target/debug/deps/failure_injection-61ee2d1259e4ed90.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-61ee2d1259e4ed90: tests/failure_injection.rs

tests/failure_injection.rs:
