/root/repo/target/debug/deps/comm_bench-195562ed2a736913.d: crates/bench/src/bin/comm_bench.rs

/root/repo/target/debug/deps/comm_bench-195562ed2a736913: crates/bench/src/bin/comm_bench.rs

crates/bench/src/bin/comm_bench.rs:
