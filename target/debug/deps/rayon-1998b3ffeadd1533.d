/root/repo/target/debug/deps/rayon-1998b3ffeadd1533.d: /tmp/stubs/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-1998b3ffeadd1533.rlib: /tmp/stubs/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-1998b3ffeadd1533.rmeta: /tmp/stubs/rayon/src/lib.rs

/tmp/stubs/rayon/src/lib.rs:
