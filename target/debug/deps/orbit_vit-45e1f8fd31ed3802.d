/root/repo/target/debug/deps/orbit_vit-45e1f8fd31ed3802.d: crates/vit/src/lib.rs crates/vit/src/baselines.rs crates/vit/src/block.rs crates/vit/src/checkpoint.rs crates/vit/src/config.rs crates/vit/src/loss.rs crates/vit/src/model.rs crates/vit/src/tokenizer.rs

/root/repo/target/debug/deps/orbit_vit-45e1f8fd31ed3802: crates/vit/src/lib.rs crates/vit/src/baselines.rs crates/vit/src/block.rs crates/vit/src/checkpoint.rs crates/vit/src/config.rs crates/vit/src/loss.rs crates/vit/src/model.rs crates/vit/src/tokenizer.rs

crates/vit/src/lib.rs:
crates/vit/src/baselines.rs:
crates/vit/src/block.rs:
crates/vit/src/checkpoint.rs:
crates/vit/src/config.rs:
crates/vit/src/loss.rs:
crates/vit/src/model.rs:
crates/vit/src/tokenizer.rs:
