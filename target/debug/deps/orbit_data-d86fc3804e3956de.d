/root/repo/target/debug/deps/orbit_data-d86fc3804e3956de.d: crates/data/src/lib.rs crates/data/src/catalog.rs crates/data/src/generator.rs crates/data/src/loader.rs crates/data/src/metrics.rs

/root/repo/target/debug/deps/orbit_data-d86fc3804e3956de: crates/data/src/lib.rs crates/data/src/catalog.rs crates/data/src/generator.rs crates/data/src/loader.rs crates/data/src/metrics.rs

crates/data/src/lib.rs:
crates/data/src/catalog.rs:
crates/data/src/generator.rs:
crates/data/src/loader.rs:
crates/data/src/metrics.rs:
