/root/repo/target/debug/deps/repro-30acdd1d401c721b.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-30acdd1d401c721b: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
