/root/repo/target/debug/deps/orbit_data-988414bb1ba86fbc.d: crates/data/src/lib.rs crates/data/src/catalog.rs crates/data/src/generator.rs crates/data/src/loader.rs crates/data/src/metrics.rs

/root/repo/target/debug/deps/orbit_data-988414bb1ba86fbc: crates/data/src/lib.rs crates/data/src/catalog.rs crates/data/src/generator.rs crates/data/src/loader.rs crates/data/src/metrics.rs

crates/data/src/lib.rs:
crates/data/src/catalog.rs:
crates/data/src/generator.rs:
crates/data/src/loader.rs:
crates/data/src/metrics.rs:
