/root/repo/target/debug/deps/orbit_core-355bfa1540f01ac6.d: crates/core/src/lib.rs crates/core/src/engines/mod.rs crates/core/src/engines/ddp.rs crates/core/src/engines/fsdp.rs crates/core/src/engines/hybrid_stop.rs crates/core/src/engines/pipeline.rs crates/core/src/engines/single.rs crates/core/src/engines/tp.rs crates/core/src/engines/trainer.rs crates/core/src/resilient.rs crates/core/src/scaler.rs crates/core/src/sharding.rs crates/core/src/stats.rs crates/core/src/tp_block.rs

/root/repo/target/debug/deps/orbit_core-355bfa1540f01ac6: crates/core/src/lib.rs crates/core/src/engines/mod.rs crates/core/src/engines/ddp.rs crates/core/src/engines/fsdp.rs crates/core/src/engines/hybrid_stop.rs crates/core/src/engines/pipeline.rs crates/core/src/engines/single.rs crates/core/src/engines/tp.rs crates/core/src/engines/trainer.rs crates/core/src/resilient.rs crates/core/src/scaler.rs crates/core/src/sharding.rs crates/core/src/stats.rs crates/core/src/tp_block.rs

crates/core/src/lib.rs:
crates/core/src/engines/mod.rs:
crates/core/src/engines/ddp.rs:
crates/core/src/engines/fsdp.rs:
crates/core/src/engines/hybrid_stop.rs:
crates/core/src/engines/pipeline.rs:
crates/core/src/engines/single.rs:
crates/core/src/engines/tp.rs:
crates/core/src/engines/trainer.rs:
crates/core/src/resilient.rs:
crates/core/src/scaler.rs:
crates/core/src/sharding.rs:
crates/core/src/stats.rs:
crates/core/src/tp_block.rs:
