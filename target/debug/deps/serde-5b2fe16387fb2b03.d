/root/repo/target/debug/deps/serde-5b2fe16387fb2b03.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-5b2fe16387fb2b03.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-5b2fe16387fb2b03.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
