/root/repo/target/debug/deps/collective_counts-40f718444a185559.d: tests/collective_counts.rs

/root/repo/target/debug/deps/collective_counts-40f718444a185559: tests/collective_counts.rs

tests/collective_counts.rs:
