/root/repo/target/debug/deps/orbit_tensor-34e332e5e759fb13.d: crates/tensor/src/lib.rs crates/tensor/src/bf16.rs crates/tensor/src/init.rs crates/tensor/src/kernels/mod.rs crates/tensor/src/kernels/activation.rs crates/tensor/src/kernels/attention.rs crates/tensor/src/kernels/embed.rs crates/tensor/src/kernels/linear.rs crates/tensor/src/kernels/norm.rs crates/tensor/src/kernels/optimizer.rs crates/tensor/src/matmul.rs crates/tensor/src/tensor.rs Cargo.toml

/root/repo/target/debug/deps/liborbit_tensor-34e332e5e759fb13.rmeta: crates/tensor/src/lib.rs crates/tensor/src/bf16.rs crates/tensor/src/init.rs crates/tensor/src/kernels/mod.rs crates/tensor/src/kernels/activation.rs crates/tensor/src/kernels/attention.rs crates/tensor/src/kernels/embed.rs crates/tensor/src/kernels/linear.rs crates/tensor/src/kernels/norm.rs crates/tensor/src/kernels/optimizer.rs crates/tensor/src/matmul.rs crates/tensor/src/tensor.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/bf16.rs:
crates/tensor/src/init.rs:
crates/tensor/src/kernels/mod.rs:
crates/tensor/src/kernels/activation.rs:
crates/tensor/src/kernels/attention.rs:
crates/tensor/src/kernels/embed.rs:
crates/tensor/src/kernels/linear.rs:
crates/tensor/src/kernels/norm.rs:
crates/tensor/src/kernels/optimizer.rs:
crates/tensor/src/matmul.rs:
crates/tensor/src/tensor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
