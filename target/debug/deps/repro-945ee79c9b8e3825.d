/root/repo/target/debug/deps/repro-945ee79c9b8e3825.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-945ee79c9b8e3825: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
