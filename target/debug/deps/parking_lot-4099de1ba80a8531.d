/root/repo/target/debug/deps/parking_lot-4099de1ba80a8531.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-4099de1ba80a8531.rlib: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-4099de1ba80a8531.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
