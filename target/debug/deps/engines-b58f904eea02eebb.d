/root/repo/target/debug/deps/engines-b58f904eea02eebb.d: crates/bench/benches/engines.rs

/root/repo/target/debug/deps/engines-b58f904eea02eebb: crates/bench/benches/engines.rs

crates/bench/benches/engines.rs:
