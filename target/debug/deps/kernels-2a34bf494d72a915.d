/root/repo/target/debug/deps/kernels-2a34bf494d72a915.d: crates/bench/benches/kernels.rs

/root/repo/target/debug/deps/kernels-2a34bf494d72a915: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:
