/root/repo/target/debug/deps/orbit_comm-8c143ee285c2a77d.d: crates/comm/src/lib.rs crates/comm/src/clock.rs crates/comm/src/cluster.rs crates/comm/src/fault.rs crates/comm/src/group.rs crates/comm/src/memory.rs crates/comm/src/trace.rs

/root/repo/target/debug/deps/orbit_comm-8c143ee285c2a77d: crates/comm/src/lib.rs crates/comm/src/clock.rs crates/comm/src/cluster.rs crates/comm/src/fault.rs crates/comm/src/group.rs crates/comm/src/memory.rs crates/comm/src/trace.rs

crates/comm/src/lib.rs:
crates/comm/src/clock.rs:
crates/comm/src/cluster.rs:
crates/comm/src/fault.rs:
crates/comm/src/group.rs:
crates/comm/src/memory.rs:
crates/comm/src/trace.rs:
