/root/repo/target/debug/deps/orbit_frontier-1568c09a4e91ae34.d: crates/frontier/src/lib.rs crates/frontier/src/dims.rs crates/frontier/src/machine.rs crates/frontier/src/mapping.rs crates/frontier/src/perfmodel.rs

/root/repo/target/debug/deps/orbit_frontier-1568c09a4e91ae34: crates/frontier/src/lib.rs crates/frontier/src/dims.rs crates/frontier/src/machine.rs crates/frontier/src/mapping.rs crates/frontier/src/perfmodel.rs

crates/frontier/src/lib.rs:
crates/frontier/src/dims.rs:
crates/frontier/src/machine.rs:
crates/frontier/src/mapping.rs:
crates/frontier/src/perfmodel.rs:
