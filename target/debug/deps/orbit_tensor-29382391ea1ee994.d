/root/repo/target/debug/deps/orbit_tensor-29382391ea1ee994.d: crates/tensor/src/lib.rs crates/tensor/src/bf16.rs crates/tensor/src/init.rs crates/tensor/src/kernels/mod.rs crates/tensor/src/kernels/activation.rs crates/tensor/src/kernels/attention.rs crates/tensor/src/kernels/embed.rs crates/tensor/src/kernels/linear.rs crates/tensor/src/kernels/norm.rs crates/tensor/src/kernels/optimizer.rs crates/tensor/src/matmul.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/orbit_tensor-29382391ea1ee994: crates/tensor/src/lib.rs crates/tensor/src/bf16.rs crates/tensor/src/init.rs crates/tensor/src/kernels/mod.rs crates/tensor/src/kernels/activation.rs crates/tensor/src/kernels/attention.rs crates/tensor/src/kernels/embed.rs crates/tensor/src/kernels/linear.rs crates/tensor/src/kernels/norm.rs crates/tensor/src/kernels/optimizer.rs crates/tensor/src/matmul.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/bf16.rs:
crates/tensor/src/init.rs:
crates/tensor/src/kernels/mod.rs:
crates/tensor/src/kernels/activation.rs:
crates/tensor/src/kernels/attention.rs:
crates/tensor/src/kernels/embed.rs:
crates/tensor/src/kernels/linear.rs:
crates/tensor/src/kernels/norm.rs:
crates/tensor/src/kernels/optimizer.rs:
crates/tensor/src/matmul.rs:
crates/tensor/src/tensor.rs:
