/root/repo/target/debug/deps/orbit_comm-6f55c44c53cc33bc.d: crates/comm/src/lib.rs crates/comm/src/clock.rs crates/comm/src/cluster.rs crates/comm/src/fault.rs crates/comm/src/group.rs crates/comm/src/memory.rs crates/comm/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/liborbit_comm-6f55c44c53cc33bc.rmeta: crates/comm/src/lib.rs crates/comm/src/clock.rs crates/comm/src/cluster.rs crates/comm/src/fault.rs crates/comm/src/group.rs crates/comm/src/memory.rs crates/comm/src/trace.rs Cargo.toml

crates/comm/src/lib.rs:
crates/comm/src/clock.rs:
crates/comm/src/cluster.rs:
crates/comm/src/fault.rs:
crates/comm/src/group.rs:
crates/comm/src/memory.rs:
crates/comm/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
