/root/repo/target/debug/deps/orbit_vit-ae89887872ca19a3.d: crates/vit/src/lib.rs crates/vit/src/baselines.rs crates/vit/src/block.rs crates/vit/src/checkpoint.rs crates/vit/src/config.rs crates/vit/src/loss.rs crates/vit/src/model.rs crates/vit/src/tokenizer.rs Cargo.toml

/root/repo/target/debug/deps/liborbit_vit-ae89887872ca19a3.rmeta: crates/vit/src/lib.rs crates/vit/src/baselines.rs crates/vit/src/block.rs crates/vit/src/checkpoint.rs crates/vit/src/config.rs crates/vit/src/loss.rs crates/vit/src/model.rs crates/vit/src/tokenizer.rs Cargo.toml

crates/vit/src/lib.rs:
crates/vit/src/baselines.rs:
crates/vit/src/block.rs:
crates/vit/src/checkpoint.rs:
crates/vit/src/config.rs:
crates/vit/src/loss.rs:
crates/vit/src/model.rs:
crates/vit/src/tokenizer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
