/root/repo/target/debug/deps/orbit_core-cefd362192ed4c76.d: crates/core/src/lib.rs crates/core/src/engines/mod.rs crates/core/src/engines/ddp.rs crates/core/src/engines/fsdp.rs crates/core/src/engines/hybrid_stop.rs crates/core/src/engines/pipeline.rs crates/core/src/engines/single.rs crates/core/src/engines/tp.rs crates/core/src/engines/trainer.rs crates/core/src/resilient.rs crates/core/src/scaler.rs crates/core/src/sharding.rs crates/core/src/stats.rs crates/core/src/tp_block.rs Cargo.toml

/root/repo/target/debug/deps/liborbit_core-cefd362192ed4c76.rmeta: crates/core/src/lib.rs crates/core/src/engines/mod.rs crates/core/src/engines/ddp.rs crates/core/src/engines/fsdp.rs crates/core/src/engines/hybrid_stop.rs crates/core/src/engines/pipeline.rs crates/core/src/engines/single.rs crates/core/src/engines/tp.rs crates/core/src/engines/trainer.rs crates/core/src/resilient.rs crates/core/src/scaler.rs crates/core/src/sharding.rs crates/core/src/stats.rs crates/core/src/tp_block.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/engines/mod.rs:
crates/core/src/engines/ddp.rs:
crates/core/src/engines/fsdp.rs:
crates/core/src/engines/hybrid_stop.rs:
crates/core/src/engines/pipeline.rs:
crates/core/src/engines/single.rs:
crates/core/src/engines/tp.rs:
crates/core/src/engines/trainer.rs:
crates/core/src/resilient.rs:
crates/core/src/scaler.rs:
crates/core/src/sharding.rs:
crates/core/src/stats.rs:
crates/core/src/tp_block.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
