/root/repo/target/debug/deps/perfmodel_cross_validation-5db2e94eda44cc7e.d: tests/perfmodel_cross_validation.rs

/root/repo/target/debug/deps/perfmodel_cross_validation-5db2e94eda44cc7e: tests/perfmodel_cross_validation.rs

tests/perfmodel_cross_validation.rs:
