/root/repo/target/debug/deps/orbit-722102165675a875.d: src/lib.rs

/root/repo/target/debug/deps/orbit-722102165675a875: src/lib.rs

src/lib.rs:
