/root/repo/target/debug/deps/proptest-7994d0a487416d7c.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-7994d0a487416d7c.rlib: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-7994d0a487416d7c.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
