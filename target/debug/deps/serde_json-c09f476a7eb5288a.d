/root/repo/target/debug/deps/serde_json-c09f476a7eb5288a.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-c09f476a7eb5288a.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
