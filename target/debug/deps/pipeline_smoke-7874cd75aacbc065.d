/root/repo/target/debug/deps/pipeline_smoke-7874cd75aacbc065.d: tests/pipeline_smoke.rs

/root/repo/target/debug/deps/pipeline_smoke-7874cd75aacbc065: tests/pipeline_smoke.rs

tests/pipeline_smoke.rs:
