/root/repo/target/debug/deps/engine_equivalence-3e07ded4daa7eb26.d: tests/engine_equivalence.rs

/root/repo/target/debug/deps/engine_equivalence-3e07ded4daa7eb26: tests/engine_equivalence.rs

tests/engine_equivalence.rs:
