/root/repo/target/debug/deps/orbit_comm-e04e74b755a74ed7.d: crates/comm/src/lib.rs crates/comm/src/clock.rs crates/comm/src/cluster.rs crates/comm/src/fault.rs crates/comm/src/group.rs crates/comm/src/memory.rs crates/comm/src/trace.rs

/root/repo/target/debug/deps/liborbit_comm-e04e74b755a74ed7.rlib: crates/comm/src/lib.rs crates/comm/src/clock.rs crates/comm/src/cluster.rs crates/comm/src/fault.rs crates/comm/src/group.rs crates/comm/src/memory.rs crates/comm/src/trace.rs

/root/repo/target/debug/deps/liborbit_comm-e04e74b755a74ed7.rmeta: crates/comm/src/lib.rs crates/comm/src/clock.rs crates/comm/src/cluster.rs crates/comm/src/fault.rs crates/comm/src/group.rs crates/comm/src/memory.rs crates/comm/src/trace.rs

crates/comm/src/lib.rs:
crates/comm/src/clock.rs:
crates/comm/src/cluster.rs:
crates/comm/src/fault.rs:
crates/comm/src/group.rs:
crates/comm/src/memory.rs:
crates/comm/src/trace.rs:
