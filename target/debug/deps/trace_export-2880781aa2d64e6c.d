/root/repo/target/debug/deps/trace_export-2880781aa2d64e6c.d: tests/trace_export.rs

/root/repo/target/debug/deps/trace_export-2880781aa2d64e6c: tests/trace_export.rs

tests/trace_export.rs:
