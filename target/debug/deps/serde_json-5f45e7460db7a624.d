/root/repo/target/debug/deps/serde_json-5f45e7460db7a624.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-5f45e7460db7a624.rlib: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-5f45e7460db7a624.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
