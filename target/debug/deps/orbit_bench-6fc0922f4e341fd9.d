/root/repo/target/debug/deps/orbit_bench-6fc0922f4e341fd9.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/common.rs crates/bench/src/experiments/fig10.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/fig6.rs crates/bench/src/experiments/fig7.rs crates/bench/src/experiments/fig8.rs crates/bench/src/experiments/fig9.rs crates/bench/src/experiments/qk_ablation.rs crates/bench/src/experiments/table1.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/liborbit_bench-6fc0922f4e341fd9.rlib: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/common.rs crates/bench/src/experiments/fig10.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/fig6.rs crates/bench/src/experiments/fig7.rs crates/bench/src/experiments/fig8.rs crates/bench/src/experiments/fig9.rs crates/bench/src/experiments/qk_ablation.rs crates/bench/src/experiments/table1.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/liborbit_bench-6fc0922f4e341fd9.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/common.rs crates/bench/src/experiments/fig10.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/fig6.rs crates/bench/src/experiments/fig7.rs crates/bench/src/experiments/fig8.rs crates/bench/src/experiments/fig9.rs crates/bench/src/experiments/qk_ablation.rs crates/bench/src/experiments/table1.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/common.rs:
crates/bench/src/experiments/fig10.rs:
crates/bench/src/experiments/fig5.rs:
crates/bench/src/experiments/fig6.rs:
crates/bench/src/experiments/fig7.rs:
crates/bench/src/experiments/fig8.rs:
crates/bench/src/experiments/fig9.rs:
crates/bench/src/experiments/qk_ablation.rs:
crates/bench/src/experiments/table1.rs:
crates/bench/src/report.rs:
