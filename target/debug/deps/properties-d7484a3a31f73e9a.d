/root/repo/target/debug/deps/properties-d7484a3a31f73e9a.d: tests/properties.rs

/root/repo/target/debug/deps/properties-d7484a3a31f73e9a: tests/properties.rs

tests/properties.rs:
