/root/repo/target/debug/deps/orbit_vit-54cf032e1a137a1a.d: crates/vit/src/lib.rs crates/vit/src/baselines.rs crates/vit/src/block.rs crates/vit/src/checkpoint.rs crates/vit/src/config.rs crates/vit/src/loss.rs crates/vit/src/model.rs crates/vit/src/tokenizer.rs

/root/repo/target/debug/deps/liborbit_vit-54cf032e1a137a1a.rlib: crates/vit/src/lib.rs crates/vit/src/baselines.rs crates/vit/src/block.rs crates/vit/src/checkpoint.rs crates/vit/src/config.rs crates/vit/src/loss.rs crates/vit/src/model.rs crates/vit/src/tokenizer.rs

/root/repo/target/debug/deps/liborbit_vit-54cf032e1a137a1a.rmeta: crates/vit/src/lib.rs crates/vit/src/baselines.rs crates/vit/src/block.rs crates/vit/src/checkpoint.rs crates/vit/src/config.rs crates/vit/src/loss.rs crates/vit/src/model.rs crates/vit/src/tokenizer.rs

crates/vit/src/lib.rs:
crates/vit/src/baselines.rs:
crates/vit/src/block.rs:
crates/vit/src/checkpoint.rs:
crates/vit/src/config.rs:
crates/vit/src/loss.rs:
crates/vit/src/model.rs:
crates/vit/src/tokenizer.rs:
