/root/repo/target/debug/deps/orbit_data-bdc909574584eacd.d: crates/data/src/lib.rs crates/data/src/catalog.rs crates/data/src/generator.rs crates/data/src/loader.rs crates/data/src/metrics.rs

/root/repo/target/debug/deps/liborbit_data-bdc909574584eacd.rlib: crates/data/src/lib.rs crates/data/src/catalog.rs crates/data/src/generator.rs crates/data/src/loader.rs crates/data/src/metrics.rs

/root/repo/target/debug/deps/liborbit_data-bdc909574584eacd.rmeta: crates/data/src/lib.rs crates/data/src/catalog.rs crates/data/src/generator.rs crates/data/src/loader.rs crates/data/src/metrics.rs

crates/data/src/lib.rs:
crates/data/src/catalog.rs:
crates/data/src/generator.rs:
crates/data/src/loader.rs:
crates/data/src/metrics.rs:
