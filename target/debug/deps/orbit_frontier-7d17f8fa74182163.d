/root/repo/target/debug/deps/orbit_frontier-7d17f8fa74182163.d: crates/frontier/src/lib.rs crates/frontier/src/dims.rs crates/frontier/src/machine.rs crates/frontier/src/mapping.rs crates/frontier/src/perfmodel.rs Cargo.toml

/root/repo/target/debug/deps/liborbit_frontier-7d17f8fa74182163.rmeta: crates/frontier/src/lib.rs crates/frontier/src/dims.rs crates/frontier/src/machine.rs crates/frontier/src/mapping.rs crates/frontier/src/perfmodel.rs Cargo.toml

crates/frontier/src/lib.rs:
crates/frontier/src/dims.rs:
crates/frontier/src/machine.rs:
crates/frontier/src/mapping.rs:
crates/frontier/src/perfmodel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
