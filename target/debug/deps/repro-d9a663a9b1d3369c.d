/root/repo/target/debug/deps/repro-d9a663a9b1d3369c.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-d9a663a9b1d3369c: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
