/root/repo/target/debug/deps/orbit_data-e4066fbf495272ce.d: crates/data/src/lib.rs crates/data/src/catalog.rs crates/data/src/generator.rs crates/data/src/loader.rs crates/data/src/metrics.rs Cargo.toml

/root/repo/target/debug/deps/liborbit_data-e4066fbf495272ce.rmeta: crates/data/src/lib.rs crates/data/src/catalog.rs crates/data/src/generator.rs crates/data/src/loader.rs crates/data/src/metrics.rs Cargo.toml

crates/data/src/lib.rs:
crates/data/src/catalog.rs:
crates/data/src/generator.rs:
crates/data/src/loader.rs:
crates/data/src/metrics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
