/root/repo/target/debug/deps/serde_stub_derive-19e47f1ef3f43792.d: /tmp/stubs/serde_stub_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_stub_derive-19e47f1ef3f43792.so: /tmp/stubs/serde_stub_derive/src/lib.rs

/tmp/stubs/serde_stub_derive/src/lib.rs:
