/root/repo/target/debug/deps/orbit_bench-fbc08d5d9f90c444.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/common.rs crates/bench/src/experiments/fig10.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/fig6.rs crates/bench/src/experiments/fig7.rs crates/bench/src/experiments/fig8.rs crates/bench/src/experiments/fig9.rs crates/bench/src/experiments/qk_ablation.rs crates/bench/src/experiments/table1.rs crates/bench/src/report.rs Cargo.toml

/root/repo/target/debug/deps/liborbit_bench-fbc08d5d9f90c444.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/common.rs crates/bench/src/experiments/fig10.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/fig6.rs crates/bench/src/experiments/fig7.rs crates/bench/src/experiments/fig8.rs crates/bench/src/experiments/fig9.rs crates/bench/src/experiments/qk_ablation.rs crates/bench/src/experiments/table1.rs crates/bench/src/report.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/common.rs:
crates/bench/src/experiments/fig10.rs:
crates/bench/src/experiments/fig5.rs:
crates/bench/src/experiments/fig6.rs:
crates/bench/src/experiments/fig7.rs:
crates/bench/src/experiments/fig8.rs:
crates/bench/src/experiments/fig9.rs:
crates/bench/src/experiments/qk_ablation.rs:
crates/bench/src/experiments/table1.rs:
crates/bench/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
