/root/repo/target/debug/deps/comm_bench-2d2c6120e5d63a4a.d: crates/bench/src/bin/comm_bench.rs

/root/repo/target/debug/deps/comm_bench-2d2c6120e5d63a4a: crates/bench/src/bin/comm_bench.rs

crates/bench/src/bin/comm_bench.rs:
