/root/repo/target/debug/deps/orbit_data-5b6492894ac71829.d: crates/data/src/lib.rs crates/data/src/catalog.rs crates/data/src/generator.rs crates/data/src/loader.rs crates/data/src/metrics.rs

/root/repo/target/debug/deps/liborbit_data-5b6492894ac71829.rlib: crates/data/src/lib.rs crates/data/src/catalog.rs crates/data/src/generator.rs crates/data/src/loader.rs crates/data/src/metrics.rs

/root/repo/target/debug/deps/liborbit_data-5b6492894ac71829.rmeta: crates/data/src/lib.rs crates/data/src/catalog.rs crates/data/src/generator.rs crates/data/src/loader.rs crates/data/src/metrics.rs

crates/data/src/lib.rs:
crates/data/src/catalog.rs:
crates/data/src/generator.rs:
crates/data/src/loader.rs:
crates/data/src/metrics.rs:
