/root/repo/target/debug/deps/collectives-f3d4d3d9d29caee9.d: crates/bench/benches/collectives.rs

/root/repo/target/debug/deps/collectives-f3d4d3d9d29caee9: crates/bench/benches/collectives.rs

crates/bench/benches/collectives.rs:
