/root/repo/target/debug/deps/orbit-f19d085ba89a8f47.d: src/lib.rs

/root/repo/target/debug/deps/orbit-f19d085ba89a8f47: src/lib.rs

src/lib.rs:
