/root/repo/target/debug/deps/serde_json-d40413fed226bc0a.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-d40413fed226bc0a.rlib: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-d40413fed226bc0a.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
