/root/repo/target/debug/deps/checkpoint_portability-c8f2adfb70ce93e2.d: tests/checkpoint_portability.rs

/root/repo/target/debug/deps/checkpoint_portability-c8f2adfb70ce93e2: tests/checkpoint_portability.rs

tests/checkpoint_portability.rs:
