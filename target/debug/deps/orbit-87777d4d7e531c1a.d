/root/repo/target/debug/deps/orbit-87777d4d7e531c1a.d: src/lib.rs

/root/repo/target/debug/deps/liborbit-87777d4d7e531c1a.rlib: src/lib.rs

/root/repo/target/debug/deps/liborbit-87777d4d7e531c1a.rmeta: src/lib.rs

src/lib.rs:
