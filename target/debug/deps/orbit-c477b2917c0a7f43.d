/root/repo/target/debug/deps/orbit-c477b2917c0a7f43.d: src/lib.rs

/root/repo/target/debug/deps/liborbit-c477b2917c0a7f43.rlib: src/lib.rs

/root/repo/target/debug/deps/liborbit-c477b2917c0a7f43.rmeta: src/lib.rs

src/lib.rs:
