/root/repo/target/debug/deps/serde-beb5101cf7a9d7c3.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-beb5101cf7a9d7c3.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-beb5101cf7a9d7c3.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
