/root/repo/target/debug/deps/orbit_frontier-e9af465a6a11ba40.d: crates/frontier/src/lib.rs crates/frontier/src/dims.rs crates/frontier/src/machine.rs crates/frontier/src/mapping.rs crates/frontier/src/perfmodel.rs

/root/repo/target/debug/deps/orbit_frontier-e9af465a6a11ba40: crates/frontier/src/lib.rs crates/frontier/src/dims.rs crates/frontier/src/machine.rs crates/frontier/src/mapping.rs crates/frontier/src/perfmodel.rs

crates/frontier/src/lib.rs:
crates/frontier/src/dims.rs:
crates/frontier/src/machine.rs:
crates/frontier/src/mapping.rs:
crates/frontier/src/perfmodel.rs:
