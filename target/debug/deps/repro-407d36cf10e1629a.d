/root/repo/target/debug/deps/repro-407d36cf10e1629a.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-407d36cf10e1629a: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
