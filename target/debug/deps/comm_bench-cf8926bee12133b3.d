/root/repo/target/debug/deps/comm_bench-cf8926bee12133b3.d: crates/bench/src/bin/comm_bench.rs Cargo.toml

/root/repo/target/debug/deps/libcomm_bench-cf8926bee12133b3.rmeta: crates/bench/src/bin/comm_bench.rs Cargo.toml

crates/bench/src/bin/comm_bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
