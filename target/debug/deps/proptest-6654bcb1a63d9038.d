/root/repo/target/debug/deps/proptest-6654bcb1a63d9038.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-6654bcb1a63d9038.rlib: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-6654bcb1a63d9038.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
