/root/repo/target/debug/deps/orbit_comm-7e47bd37981d4e5b.d: crates/comm/src/lib.rs crates/comm/src/clock.rs crates/comm/src/cluster.rs crates/comm/src/fault.rs crates/comm/src/group.rs crates/comm/src/memory.rs crates/comm/src/trace.rs

/root/repo/target/debug/deps/liborbit_comm-7e47bd37981d4e5b.rlib: crates/comm/src/lib.rs crates/comm/src/clock.rs crates/comm/src/cluster.rs crates/comm/src/fault.rs crates/comm/src/group.rs crates/comm/src/memory.rs crates/comm/src/trace.rs

/root/repo/target/debug/deps/liborbit_comm-7e47bd37981d4e5b.rmeta: crates/comm/src/lib.rs crates/comm/src/clock.rs crates/comm/src/cluster.rs crates/comm/src/fault.rs crates/comm/src/group.rs crates/comm/src/memory.rs crates/comm/src/trace.rs

crates/comm/src/lib.rs:
crates/comm/src/clock.rs:
crates/comm/src/cluster.rs:
crates/comm/src/fault.rs:
crates/comm/src/group.rs:
crates/comm/src/memory.rs:
crates/comm/src/trace.rs:
