/root/repo/target/debug/deps/orbit-925b359741cccc58.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liborbit-925b359741cccc58.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
