/root/repo/target/debug/deps/orbit_frontier-403b342ad0c46fb2.d: crates/frontier/src/lib.rs crates/frontier/src/dims.rs crates/frontier/src/machine.rs crates/frontier/src/mapping.rs crates/frontier/src/perfmodel.rs

/root/repo/target/debug/deps/liborbit_frontier-403b342ad0c46fb2.rlib: crates/frontier/src/lib.rs crates/frontier/src/dims.rs crates/frontier/src/machine.rs crates/frontier/src/mapping.rs crates/frontier/src/perfmodel.rs

/root/repo/target/debug/deps/liborbit_frontier-403b342ad0c46fb2.rmeta: crates/frontier/src/lib.rs crates/frontier/src/dims.rs crates/frontier/src/machine.rs crates/frontier/src/mapping.rs crates/frontier/src/perfmodel.rs

crates/frontier/src/lib.rs:
crates/frontier/src/dims.rs:
crates/frontier/src/machine.rs:
crates/frontier/src/mapping.rs:
crates/frontier/src/perfmodel.rs:
