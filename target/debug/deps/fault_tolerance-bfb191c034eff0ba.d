/root/repo/target/debug/deps/fault_tolerance-bfb191c034eff0ba.d: tests/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-bfb191c034eff0ba: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
