/root/repo/target/debug/deps/repro-fc3271ccf8e01d73.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-fc3271ccf8e01d73.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
