/root/repo/target/debug/deps/serde-5a51d15372099f56.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-5a51d15372099f56.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
