/root/repo/target/release/deps/orbit_bench-095e471fef9f3945.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/common.rs crates/bench/src/experiments/fig10.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/fig6.rs crates/bench/src/experiments/fig7.rs crates/bench/src/experiments/fig8.rs crates/bench/src/experiments/fig9.rs crates/bench/src/experiments/qk_ablation.rs crates/bench/src/experiments/table1.rs crates/bench/src/report.rs

/root/repo/target/release/deps/liborbit_bench-095e471fef9f3945.rlib: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/common.rs crates/bench/src/experiments/fig10.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/fig6.rs crates/bench/src/experiments/fig7.rs crates/bench/src/experiments/fig8.rs crates/bench/src/experiments/fig9.rs crates/bench/src/experiments/qk_ablation.rs crates/bench/src/experiments/table1.rs crates/bench/src/report.rs

/root/repo/target/release/deps/liborbit_bench-095e471fef9f3945.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/common.rs crates/bench/src/experiments/fig10.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/fig6.rs crates/bench/src/experiments/fig7.rs crates/bench/src/experiments/fig8.rs crates/bench/src/experiments/fig9.rs crates/bench/src/experiments/qk_ablation.rs crates/bench/src/experiments/table1.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/common.rs:
crates/bench/src/experiments/fig10.rs:
crates/bench/src/experiments/fig5.rs:
crates/bench/src/experiments/fig6.rs:
crates/bench/src/experiments/fig7.rs:
crates/bench/src/experiments/fig8.rs:
crates/bench/src/experiments/fig9.rs:
crates/bench/src/experiments/qk_ablation.rs:
crates/bench/src/experiments/table1.rs:
crates/bench/src/report.rs:
