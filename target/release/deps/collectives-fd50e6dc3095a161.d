/root/repo/target/release/deps/collectives-fd50e6dc3095a161.d: crates/bench/benches/collectives.rs

/root/repo/target/release/deps/collectives-fd50e6dc3095a161: crates/bench/benches/collectives.rs

crates/bench/benches/collectives.rs:
