/root/repo/target/release/deps/comm_bench-9b2373af0ee8c8fa.d: crates/bench/src/bin/comm_bench.rs

/root/repo/target/release/deps/comm_bench-9b2373af0ee8c8fa: crates/bench/src/bin/comm_bench.rs

crates/bench/src/bin/comm_bench.rs:
