/root/repo/target/release/deps/orbit_comm-e0b253a1e9cbd975.d: crates/comm/src/lib.rs crates/comm/src/clock.rs crates/comm/src/cluster.rs crates/comm/src/fault.rs crates/comm/src/group.rs crates/comm/src/memory.rs crates/comm/src/trace.rs

/root/repo/target/release/deps/liborbit_comm-e0b253a1e9cbd975.rlib: crates/comm/src/lib.rs crates/comm/src/clock.rs crates/comm/src/cluster.rs crates/comm/src/fault.rs crates/comm/src/group.rs crates/comm/src/memory.rs crates/comm/src/trace.rs

/root/repo/target/release/deps/liborbit_comm-e0b253a1e9cbd975.rmeta: crates/comm/src/lib.rs crates/comm/src/clock.rs crates/comm/src/cluster.rs crates/comm/src/fault.rs crates/comm/src/group.rs crates/comm/src/memory.rs crates/comm/src/trace.rs

crates/comm/src/lib.rs:
crates/comm/src/clock.rs:
crates/comm/src/cluster.rs:
crates/comm/src/fault.rs:
crates/comm/src/group.rs:
crates/comm/src/memory.rs:
crates/comm/src/trace.rs:
