/root/repo/target/release/deps/serde-8e6b0e66492bff6b.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-8e6b0e66492bff6b.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-8e6b0e66492bff6b.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
