/root/repo/target/release/deps/serde_stub_derive-68d23e8e64392bf5.d: /tmp/stubs/serde_stub_derive/src/lib.rs

/root/repo/target/release/deps/libserde_stub_derive-68d23e8e64392bf5.so: /tmp/stubs/serde_stub_derive/src/lib.rs

/tmp/stubs/serde_stub_derive/src/lib.rs:
