/root/repo/target/release/deps/orbit_frontier-6d368cf8d0d2e5b6.d: crates/frontier/src/lib.rs crates/frontier/src/dims.rs crates/frontier/src/machine.rs crates/frontier/src/mapping.rs crates/frontier/src/perfmodel.rs

/root/repo/target/release/deps/liborbit_frontier-6d368cf8d0d2e5b6.rlib: crates/frontier/src/lib.rs crates/frontier/src/dims.rs crates/frontier/src/machine.rs crates/frontier/src/mapping.rs crates/frontier/src/perfmodel.rs

/root/repo/target/release/deps/liborbit_frontier-6d368cf8d0d2e5b6.rmeta: crates/frontier/src/lib.rs crates/frontier/src/dims.rs crates/frontier/src/machine.rs crates/frontier/src/mapping.rs crates/frontier/src/perfmodel.rs

crates/frontier/src/lib.rs:
crates/frontier/src/dims.rs:
crates/frontier/src/machine.rs:
crates/frontier/src/mapping.rs:
crates/frontier/src/perfmodel.rs:
