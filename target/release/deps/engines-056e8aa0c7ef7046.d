/root/repo/target/release/deps/engines-056e8aa0c7ef7046.d: crates/bench/benches/engines.rs

/root/repo/target/release/deps/engines-056e8aa0c7ef7046: crates/bench/benches/engines.rs

crates/bench/benches/engines.rs:
