/root/repo/target/release/deps/repro-1de03e232f4eb7ca.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-1de03e232f4eb7ca: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
