/root/repo/target/release/deps/orbit_vit-4b3c5be45180eda6.d: crates/vit/src/lib.rs crates/vit/src/baselines.rs crates/vit/src/block.rs crates/vit/src/checkpoint.rs crates/vit/src/config.rs crates/vit/src/loss.rs crates/vit/src/model.rs crates/vit/src/tokenizer.rs

/root/repo/target/release/deps/liborbit_vit-4b3c5be45180eda6.rlib: crates/vit/src/lib.rs crates/vit/src/baselines.rs crates/vit/src/block.rs crates/vit/src/checkpoint.rs crates/vit/src/config.rs crates/vit/src/loss.rs crates/vit/src/model.rs crates/vit/src/tokenizer.rs

/root/repo/target/release/deps/liborbit_vit-4b3c5be45180eda6.rmeta: crates/vit/src/lib.rs crates/vit/src/baselines.rs crates/vit/src/block.rs crates/vit/src/checkpoint.rs crates/vit/src/config.rs crates/vit/src/loss.rs crates/vit/src/model.rs crates/vit/src/tokenizer.rs

crates/vit/src/lib.rs:
crates/vit/src/baselines.rs:
crates/vit/src/block.rs:
crates/vit/src/checkpoint.rs:
crates/vit/src/config.rs:
crates/vit/src/loss.rs:
crates/vit/src/model.rs:
crates/vit/src/tokenizer.rs:
