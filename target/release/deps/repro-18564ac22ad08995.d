/root/repo/target/release/deps/repro-18564ac22ad08995.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-18564ac22ad08995: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
