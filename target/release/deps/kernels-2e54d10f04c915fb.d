/root/repo/target/release/deps/kernels-2e54d10f04c915fb.d: crates/bench/benches/kernels.rs

/root/repo/target/release/deps/kernels-2e54d10f04c915fb: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:
