/root/repo/target/release/deps/orbit_core-e89c8a73c4f0c460.d: crates/core/src/lib.rs crates/core/src/engines/mod.rs crates/core/src/engines/ddp.rs crates/core/src/engines/fsdp.rs crates/core/src/engines/hybrid_stop.rs crates/core/src/engines/pipeline.rs crates/core/src/engines/single.rs crates/core/src/engines/tp.rs crates/core/src/engines/trainer.rs crates/core/src/resilient.rs crates/core/src/scaler.rs crates/core/src/sharding.rs crates/core/src/stats.rs crates/core/src/tp_block.rs

/root/repo/target/release/deps/liborbit_core-e89c8a73c4f0c460.rlib: crates/core/src/lib.rs crates/core/src/engines/mod.rs crates/core/src/engines/ddp.rs crates/core/src/engines/fsdp.rs crates/core/src/engines/hybrid_stop.rs crates/core/src/engines/pipeline.rs crates/core/src/engines/single.rs crates/core/src/engines/tp.rs crates/core/src/engines/trainer.rs crates/core/src/resilient.rs crates/core/src/scaler.rs crates/core/src/sharding.rs crates/core/src/stats.rs crates/core/src/tp_block.rs

/root/repo/target/release/deps/liborbit_core-e89c8a73c4f0c460.rmeta: crates/core/src/lib.rs crates/core/src/engines/mod.rs crates/core/src/engines/ddp.rs crates/core/src/engines/fsdp.rs crates/core/src/engines/hybrid_stop.rs crates/core/src/engines/pipeline.rs crates/core/src/engines/single.rs crates/core/src/engines/tp.rs crates/core/src/engines/trainer.rs crates/core/src/resilient.rs crates/core/src/scaler.rs crates/core/src/sharding.rs crates/core/src/stats.rs crates/core/src/tp_block.rs

crates/core/src/lib.rs:
crates/core/src/engines/mod.rs:
crates/core/src/engines/ddp.rs:
crates/core/src/engines/fsdp.rs:
crates/core/src/engines/hybrid_stop.rs:
crates/core/src/engines/pipeline.rs:
crates/core/src/engines/single.rs:
crates/core/src/engines/tp.rs:
crates/core/src/engines/trainer.rs:
crates/core/src/resilient.rs:
crates/core/src/scaler.rs:
crates/core/src/sharding.rs:
crates/core/src/stats.rs:
crates/core/src/tp_block.rs:
