/root/repo/target/release/deps/orbit-5407eeba379d7c29.d: src/lib.rs

/root/repo/target/release/deps/liborbit-5407eeba379d7c29.rlib: src/lib.rs

/root/repo/target/release/deps/liborbit-5407eeba379d7c29.rmeta: src/lib.rs

src/lib.rs:
