/root/repo/target/release/deps/serde_json-c54badb9c6f74a42.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-c54badb9c6f74a42.rlib: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-c54badb9c6f74a42.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
