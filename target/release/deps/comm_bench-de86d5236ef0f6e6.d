/root/repo/target/release/deps/comm_bench-de86d5236ef0f6e6.d: crates/bench/src/bin/comm_bench.rs

/root/repo/target/release/deps/comm_bench-de86d5236ef0f6e6: crates/bench/src/bin/comm_bench.rs

crates/bench/src/bin/comm_bench.rs:
