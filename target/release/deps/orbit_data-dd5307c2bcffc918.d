/root/repo/target/release/deps/orbit_data-dd5307c2bcffc918.d: crates/data/src/lib.rs crates/data/src/catalog.rs crates/data/src/generator.rs crates/data/src/loader.rs crates/data/src/metrics.rs

/root/repo/target/release/deps/liborbit_data-dd5307c2bcffc918.rlib: crates/data/src/lib.rs crates/data/src/catalog.rs crates/data/src/generator.rs crates/data/src/loader.rs crates/data/src/metrics.rs

/root/repo/target/release/deps/liborbit_data-dd5307c2bcffc918.rmeta: crates/data/src/lib.rs crates/data/src/catalog.rs crates/data/src/generator.rs crates/data/src/loader.rs crates/data/src/metrics.rs

crates/data/src/lib.rs:
crates/data/src/catalog.rs:
crates/data/src/generator.rs:
crates/data/src/loader.rs:
crates/data/src/metrics.rs:
