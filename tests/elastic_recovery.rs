//! Elastic-recovery acceptance tests: a world-8 run that loses three
//! ranks across two failures finishes via planner-chosen smaller
//! layouts with a post-recovery loss trajectory bit-identical to
//! uninterrupted runs at each replanned shape; a torn shard write is
//! never loaded (the store falls back a generation); killing each rank
//! at each step under every engine family still completes with
//! step-complete finite losses; and elastic serving reforms sharded
//! groups from the latest manifest with zero duplicate deliveries.

use orbit::comm::{Cluster, FaultPlan};
use orbit::core::{build_engine, ElasticTrainer, EngineSpec, Strategy, TrainOptions};
use orbit::serve::{BatchPolicy, ForecastRequest, ForecastServer, ServeConfig};
use orbit::tensor::init::Rng;
use orbit::tensor::kernels::AdamW;
use orbit::vit::{Batch, Checkpoint, ShardStore, VitConfig};
use std::fs;
use std::sync::Mutex;

fn make_batch(cfg: &VitConfig, n: usize, seed: u64) -> Batch {
    let mut rng = Rng::seed(seed);
    Batch {
        inputs: (0..n)
            .map(|_| {
                (0..cfg.dims.channels)
                    .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                    .collect()
            })
            .collect(),
        targets: (0..n)
            .map(|_| {
                (0..cfg.dims.out_channels)
                    .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                    .collect()
            })
            .collect(),
    }
}

/// `n` requests with normal-random images arriving `gap` seconds apart.
fn make_requests(cfg: &VitConfig, n: usize, gap: f64, seed: u64) -> Vec<ForecastRequest> {
    let mut rng = Rng::seed(seed);
    (0..n)
        .map(|i| {
            let images = (0..cfg.dims.channels)
                .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                .collect();
            ForecastRequest::new(i as u64, images, gap * i as f64)
        })
        .collect()
}

fn temp_store(tag: &str) -> ShardStore {
    let dir = std::env::temp_dir().join(format!("orbit_elastic_it_{tag}_{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    ShardStore::new(dir).unwrap()
}

/// A store holding committed generations from a short clean FSDP run —
/// the "latest manifest" elastic serving restores weights from.
fn trained_store(tag: &str) -> ShardStore {
    let cfg = VitConfig::test_tiny();
    let trainer = ElasticTrainer::new(Cluster::frontier(), temp_store(tag))
        .with_checkpoint_every(1)
        .with_allowed_strategies(&[Strategy::Fsdp]);
    let report = trainer
        .train(
            4,
            cfg,
            AdamW::default(),
            TrainOptions::none(),
            42,
            2,
            |step| make_batch(&cfg, 8, 100 + step),
        )
        .unwrap();
    assert_eq!(report.restarts, 0);
    trainer.store().clone()
}

/// The launch's reference trajectory: an *uninterrupted* run at the same
/// spec/world/options, restored from the same committed generation,
/// trained on the same per-step batches.
#[allow(clippy::too_many_arguments)]
fn reference_losses(
    spec: EngineSpec,
    world: usize,
    opts: TrainOptions,
    ck: &Checkpoint,
    start: u64,
    end: u64,
    cfg: &VitConfig,
    global_batch: usize,
) -> Vec<f32> {
    let stream: Mutex<Vec<f32>> = Mutex::new(Vec::new());
    let outcomes = Cluster::frontier().try_run(world, |ctx| {
        let mut engine = build_engine(ctx, spec, *cfg, AdamW::default(), opts, 42)?;
        engine.restore_checkpoint(ctx, ck)?;
        for step in start..end {
            ctx.begin_step(step)?;
            let stats = engine.train_step(ctx, &make_batch(cfg, global_batch, 100 + step))?;
            if ctx.rank == 0 {
                stream.lock().unwrap().push(stats.loss);
            }
        }
        Ok(())
    });
    assert!(
        outcomes.iter().all(|o| o.is_ok()),
        "reference run must not fail"
    );
    stream.into_inner().unwrap()
}

/// The headline acceptance test: world 8 loses rank 7 at step 2, then
/// ranks 2 and 3 of the relaunched group at step 4 — three ranks across
/// two failures. Training must finish through planner-chosen smaller
/// layouts, and every post-recovery loss must be bit-identical to an
/// uninterrupted run launched at the same replanned shape from the same
/// committed generation.
#[test]
fn world8_loses_three_ranks_and_recovers_bit_identically() {
    let cfg = VitConfig::test_tiny();
    let steps = 8u64;
    let store = temp_store("accept");
    let dir = store.dir().to_path_buf();
    let plan = FaultPlan::new().kill(7, 2).kill(2, 4).kill(3, 4);
    let cluster = Cluster::frontier().with_fault_plan(plan);
    let trainer = ElasticTrainer::new(cluster, store).with_checkpoint_every(2);
    let report = trainer
        .train(
            8,
            cfg,
            AdamW::default(),
            TrainOptions::none(),
            42,
            steps,
            |step| make_batch(&cfg, 8, 100 + step),
        )
        .unwrap();

    assert_eq!(report.restarts, 2);
    assert_eq!(report.launches.len(), 3);
    assert_eq!(report.losses.len(), steps as usize);
    assert!(report.losses.iter().all(|l| l.is_finite()));
    assert_eq!(trainer.cluster().failure_ledger().dead(), 3);

    // Every relaunch shrank below the initial world (8 % survivors != 0
    // forces the planner past the raw survivor counts 7 and 5).
    assert_eq!(report.launches[0].world, 8);
    for launch in &report.launches[1..] {
        assert!(launch.world < 8, "relaunch must shrink: {launch:?}");
    }

    for (i, launch) in report.launches.iter().enumerate().skip(1) {
        let generation = launch
            .restored_generation
            .expect("every relaunch restores a committed generation");
        let loaded = trainer.store().load_generation(generation).unwrap();
        assert_eq!(loaded.step, launch.start_step);
        let end = report
            .launches
            .get(i + 1)
            .map(|l| l.start_step)
            .unwrap_or(steps);
        let reference = reference_losses(
            launch.spec,
            launch.world,
            launch.opts,
            &loaded.checkpoint,
            launch.start_step,
            end,
            &cfg,
            8,
        );
        let got: Vec<u32> = report.losses[launch.start_step as usize..end as usize]
            .iter()
            .map(|l| l.to_bits())
            .collect();
        let want: Vec<u32> = reference.iter().map(|l| l.to_bits()).collect();
        assert_eq!(
            got, want,
            "launch {i} ({:?} x{}) must match its uninterrupted reference bit-for-bit",
            launch.spec, launch.world
        );
    }
    fs::remove_dir_all(dir).ok();
}

/// A torn write injected during capture leaves the newest manifest
/// pointing at a truncated shard. The loader must refuse that
/// generation outright and the relaunch must resume from the previous
/// committed one — a corrupt shard is never loaded.
#[test]
fn torn_write_generation_is_never_loaded() {
    let cfg = VitConfig::test_tiny();
    let store = temp_store("torn");
    let dir = store.dir().to_path_buf();
    // Rank 0's storage fault arms at step 3, so generation 4 (captured
    // after step 3) is torn; the kill at step 4 then forces a relaunch.
    let plan = FaultPlan::new().torn_write(0, 3).kill(1, 4);
    let cluster = Cluster::frontier().with_fault_plan(plan);
    let trainer = ElasticTrainer::new(cluster, store).with_checkpoint_every(1);
    let report = trainer
        .train(
            4,
            cfg,
            AdamW::default(),
            TrainOptions::none(),
            42,
            6,
            |step| make_batch(&cfg, 8, 100 + step),
        )
        .unwrap();
    assert_eq!(report.restarts, 1);
    assert_eq!(report.losses.len(), 6);
    assert!(report.losses.iter().all(|l| l.is_finite()));
    // The relaunch skipped torn generation 4 and resumed from 3.
    assert_eq!(report.launches[1].restored_generation, Some(3));
    assert_eq!(report.launches[1].start_step, 3);
    // Loading the torn generation directly must error, not return junk.
    assert!(trainer.store().load_generation(4).is_err());
    fs::remove_dir_all(dir).ok();
}

/// The sweep satellite, training half: world 8, one engine family per
/// sweep, killing each rank at each of two steps. Every combination must
/// recover elastically with a step-complete, finite loss trajectory.
#[test]
fn kill_sweep_every_rank_every_family_recovers() {
    let cfg = VitConfig::test_tiny();
    let steps = 4u64;
    for family in [Strategy::Ddp, Strategy::Fsdp, Strategy::HybridStop] {
        for rank in 0..8usize {
            for kill_step in [1u64, 3] {
                let store = temp_store(&format!("sweep_{family:?}_{rank}_{kill_step}"));
                let dir = store.dir().to_path_buf();
                let cluster =
                    Cluster::frontier().with_fault_plan(FaultPlan::new().kill(rank, kill_step));
                let trainer = ElasticTrainer::new(cluster, store)
                    .with_checkpoint_every(1)
                    .with_allowed_strategies(&[family]);
                let report = trainer
                    .train(
                        8,
                        cfg,
                        AdamW::default(),
                        TrainOptions::none(),
                        42,
                        steps,
                        |step| make_batch(&cfg, 8, 100 + step),
                    )
                    .unwrap_or_else(|e| panic!("{family:?} kill({rank},{kill_step}): {e}"));
                assert_eq!(
                    report.restarts, 1,
                    "{family:?} kill({rank},{kill_step}) must restart exactly once"
                );
                assert_eq!(
                    report.losses.len(),
                    steps as usize,
                    "{family:?} kill({rank},{kill_step}) must be step-complete"
                );
                assert!(
                    report.losses.iter().all(|l| l.is_finite()),
                    "{family:?} kill({rank},{kill_step}) produced a non-finite loss"
                );
                // One rank died, and 8 % 7 != 0, so every family lands on
                // a strictly smaller planner-chosen world.
                assert!(report.launches[1].world < 8);
                fs::remove_dir_all(dir).ok();
            }
        }
    }
}

/// The sweep satellite, serving half: on every served layout, kill each
/// rank on its first batch and serve elastically from a trained
/// manifest. Every request must get exactly one response — completed or
/// typed-failed — with zero duplicate deliveries.
#[test]
fn serve_kill_sweep_has_zero_duplicates() {
    let cfg = VitConfig::test_tiny();
    let store = trained_store("serve_sweep");
    let dir = store.dir().to_path_buf();
    // All requests pending at t=0 so every replica's first poll yields a
    // batch — the kill at batch 0 then fires on every layout.
    let n = 8;
    for (spec, world) in [
        (EngineSpec::Ddp, 4),
        (EngineSpec::TensorParallel, 2),
        (EngineSpec::Fsdp, 4),
    ] {
        for rank in 0..world {
            let server = ForecastServer::new(
                ServeConfig::new(spec, world, cfg).with_policy(BatchPolicy::immediate()),
            )
            .with_fault_plan(FaultPlan::new().kill(rank, 0));
            let outcome = server
                .serve_elastic(make_requests(&cfg, n, 0.0, 11), Some(&store))
                .unwrap_or_else(|e| panic!("{spec:?}x{world} kill({rank}): {e}"));
            assert_eq!(
                outcome.stats.duplicates, 0,
                "{spec:?}x{world} kill({rank}): duplicate delivery"
            );
            assert_eq!(
                outcome.responses.len(),
                n,
                "{spec:?}x{world} kill({rank}): every id answered exactly once"
            );
            assert_eq!(
                outcome.stats.completed + outcome.stats.failed,
                n,
                "{spec:?}x{world} kill({rank}): requests neither served nor failed"
            );
            assert_eq!(outcome.survivors, world - 1);
        }
    }
    fs::remove_dir_all(dir).ok();
}

/// Elastic serving's reformation path end to end: an FSDP x4 group loses
/// a member mid-request, reforms at the planner-chosen smaller world
/// restoring the same trained manifest, and drains the queue — all
/// requests completed, exactly once.
#[test]
fn sharded_group_reforms_from_manifest_and_drains() {
    let cfg = VitConfig::test_tiny();
    let store = trained_store("reform");
    let dir = store.dir().to_path_buf();
    let n = 8;
    let server = ForecastServer::new(
        ServeConfig::new(EngineSpec::Fsdp, 4, cfg).with_policy(BatchPolicy::immediate()),
    )
    .with_fault_plan(FaultPlan::new().kill(1, 1));
    let outcome = server
        .serve_elastic(make_requests(&cfg, n, 0.05, 7), Some(&store))
        .unwrap();
    assert_eq!(outcome.groups[0], "fsdpx4");
    assert!(
        outcome.groups.len() >= 2,
        "losing a shard member must reform the group: {:?}",
        outcome.groups
    );
    // The reformed group runs at a strictly smaller world.
    for g in &outcome.groups[1..] {
        let world: usize = g.rsplit('x').next().unwrap().parse().unwrap();
        assert!(
            world < 4,
            "reformed group must shrink: {:?}",
            outcome.groups
        );
    }
    assert_eq!(outcome.survivors, 3);
    assert_eq!(outcome.stats.completed, n);
    assert_eq!(outcome.stats.duplicates, 0);
    fs::remove_dir_all(dir).ok();
}

/// Elastic scale-up: ranks returning from repair are re-adopted. After a
/// shrink-to-survivors session, the replan is stuck below the original
/// world; reviving the repaired rank grows the next replan back to the
/// full world, and a fresh session serves there with no reformation.
#[test]
fn revived_ranks_are_readopted_at_larger_world() {
    use orbit::frontier::Planner;
    let cfg = VitConfig::test_tiny();
    let store = trained_store("revive");
    let dir = store.dir().to_path_buf();
    let server = ForecastServer::new(
        ServeConfig::new(EngineSpec::Fsdp, 4, cfg).with_policy(BatchPolicy::immediate()),
    )
    .with_fault_plan(FaultPlan::new().kill(1, 1));
    let first = server
        .serve_elastic(make_requests(&cfg, 8, 0.05, 7), Some(&store))
        .unwrap();
    assert_eq!(first.survivors, 3);

    // While the dead rank is in repair, every replan stays small.
    let planner = Planner::new(server.cluster().machine().clone());
    let servable = [
        Strategy::SingleDevice,
        Strategy::Ddp,
        Strategy::Fsdp,
        Strategy::TensorParallel,
    ];
    let budget = Some(server.cluster().mem_budget());
    let shrunk = planner
        .plan_for_survivors(
            &cfg.dims,
            server.cluster().survivors(4),
            12,
            budget,
            Some(&servable),
        )
        .unwrap();
    assert!(
        shrunk.gpus < 4,
        "planning over 3 survivors: {}",
        shrunk.gpus
    );

    // The repaired rank returns: the pool grows and so does the replan.
    assert_eq!(server.cluster().revive(1), 1);
    assert_eq!(server.cluster().survivors(4), 4);
    let grown = planner
        .plan_for_survivors(
            &cfg.dims,
            server.cluster().survivors(4),
            12,
            budget,
            Some(&servable),
        )
        .unwrap();
    assert!(
        grown.gpus > shrunk.gpus,
        "returned rank must grow the replan: {} -> {}",
        shrunk.gpus,
        grown.gpus
    );
    assert_eq!(grown.gpus, 4);

    // A fresh session on the revived cluster serves at the full world
    // again: one group, no reformation, every request answered once.
    let second = server
        .serve_elastic(make_requests(&cfg, 8, 0.05, 9), Some(&store))
        .unwrap();
    assert_eq!(second.groups, vec!["fsdpx4".to_string()]);
    assert_eq!(second.stats.completed, 8);
    assert_eq!(second.stats.duplicates, 0);
    assert_eq!(second.survivors, 4);
    fs::remove_dir_all(dir).ok();
}
