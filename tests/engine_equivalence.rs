//! The paper's correctness claim, tested across the whole engine zoo:
//! every parallelism strategy trains *exactly* like the single-device
//! reference (same losses, same parameters), for multiple steps, on a
//! non-trivial model.

use orbit::comm::Cluster;
use orbit::core::{
    build_engine, Engine, EngineSpec, FsdpEngine, HybridStopEngine, ParallelLayout, TrainOptions,
};
use orbit::tensor::init::Rng;
use orbit::tensor::kernels::AdamW;
use orbit::vit::loss::lat_weights;
use orbit::vit::{Batch, VitConfig, VitModel};

fn make_batch(cfg: &VitConfig, n: usize, seed: u64) -> Batch {
    let mut rng = Rng::seed(seed);
    Batch {
        inputs: (0..n)
            .map(|_| {
                (0..cfg.dims.channels)
                    .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                    .collect()
            })
            .collect(),
        targets: (0..n)
            .map(|_| {
                (0..cfg.dims.out_channels)
                    .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                    .collect()
            })
            .collect(),
    }
}

fn reference_losses(cfg: VitConfig, batch: &Batch, steps: usize) -> Vec<f32> {
    let w = lat_weights(cfg.dims.img_h);
    let opt = AdamW::default();
    let mut model = VitModel::init(cfg, 42);
    let mut state = model.init_adam_state();
    (0..steps)
        .map(|_| model.train_step(batch, &w, &opt, &mut state))
        .collect()
}

fn assert_close(label: &str, got: &[f32], want: &[f32], tol: f32) {
    for (i, (a, b)) in got.iter().zip(want).enumerate() {
        assert!(
            (a - b).abs() <= tol * b.abs().max(1.0),
            "{label}: step {i}: {a} vs {b}"
        );
    }
}

/// A slightly larger model than the unit tests use, so head-count and
/// layer-count asymmetries are exercised.
fn cfg() -> VitConfig {
    let mut c = VitConfig::ladder(0, 8);
    c.dims.img_h = 16;
    c.dims.img_w = 32;
    c.dims.patch = 4; // 4x8 = 32 tokens
    c
}

#[test]
fn all_engines_match_reference() {
    let cfg = cfg();
    let batch = make_batch(&cfg, 4, 3);
    let steps = 2;
    let want = reference_losses(cfg, &batch, steps);
    let opt = AdamW::default();
    let opts = TrainOptions::none();

    // The whole engine zoo behind one generic driver: each case is just a
    // strategy spec and the world size it runs at. Hybrid-STOP activates
    // all three orthogonal levels (2 tensor x 2 shard x 2 data).
    let cases: [(EngineSpec, usize); 6] = [
        (EngineSpec::Single, 1),
        (EngineSpec::Ddp, 4),
        (EngineSpec::Fsdp, 4),
        (EngineSpec::TensorParallel, 4), // 4 heads
        (EngineSpec::Pipeline, 2),       // 2 layers -> 1 per stage
        (EngineSpec::HybridStop(ParallelLayout::new(2, 2, 2)), 8),
    ];
    for (spec, world) in cases {
        let results = Cluster::frontier().run(world, |ctx| {
            let mut e: Box<dyn Engine> = build_engine(ctx, spec, cfg, opt, opts, 42).unwrap();
            (0..steps)
                .map(|_| e.train_step(ctx, &batch).unwrap().loss)
                .collect::<Vec<_>>()
        });
        // Every engine reports the same (global) loss on every rank.
        for ranks in &results {
            assert_close(spec.name(), ranks, &want, 1e-3);
        }
    }
}

#[test]
fn engines_match_reference_across_world_sizes() {
    // The DTensor refactor's acceptance bar: every engine stays
    // loss-identical to the single-device reference at worlds 1, 4 and 8
    // (tensor parallelism is capped at the 4 attention heads, so its
    // world-8 coverage is the tp=2 axis of the hybrid grid).
    let cfg = cfg();
    let batch = make_batch(&cfg, 8, 13);
    let steps = 2;
    let want = reference_losses(cfg, &batch, steps);
    let opt = AdamW::default();
    let opts = TrainOptions::none();

    let cases: [(EngineSpec, usize); 8] = [
        (EngineSpec::Single, 1),
        (EngineSpec::Ddp, 4),
        (EngineSpec::Ddp, 8),
        (EngineSpec::Fsdp, 4),
        (EngineSpec::Fsdp, 8),
        (EngineSpec::TensorParallel, 4),
        (EngineSpec::HybridStop(ParallelLayout::new(1, 2, 2)), 4),
        (EngineSpec::HybridStop(ParallelLayout::new(2, 2, 2)), 8),
    ];
    for (spec, world) in cases {
        let results = Cluster::frontier().run(world, |ctx| {
            let mut e: Box<dyn Engine> = build_engine(ctx, spec, cfg, opt, opts, 42).unwrap();
            (0..steps)
                .map(|_| e.train_step(ctx, &batch).unwrap().loss)
                .collect::<Vec<_>>()
        });
        for ranks in &results {
            assert_close(&format!("{}@{world}", spec.name()), ranks, &want, 1e-3);
        }
    }
}

#[test]
fn hybrid_stop_final_params_match_reference() {
    let cfg = cfg();
    let batch = make_batch(&cfg, 4, 5);
    let w = lat_weights(cfg.dims.img_h);
    let opt = AdamW::default();
    let mut reference = VitModel::init(cfg, 42);
    let mut state = reference.init_adam_state();
    for _ in 0..2 {
        reference.train_step(&batch, &w, &opt, &mut state);
    }
    let want = reference.flatten_params();

    let layout = ParallelLayout::new(4, 2, 1);
    let results = Cluster::frontier().run(8, |ctx| {
        let mut e = HybridStopEngine::new(ctx, layout, cfg, opt, TrainOptions::none(), 42).unwrap();
        for _ in 0..2 {
            e.train_step(ctx, &batch).unwrap();
        }
        e.gather_full_params(ctx).unwrap()
    });
    for params in &results {
        assert_eq!(params.len(), want.len());
        let max_err = params
            .iter()
            .zip(&want)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err < 1e-3, "max param error {max_err}");
    }
}

#[test]
fn hybrid_stop_tp1_fsdp_n_equals_layer_wrapped_fsdp() {
    // Hybrid-STOP degenerates to layer-wrapped FSDP at tp=1: its losses
    // must match vanilla FSDP's (same math, different gather granularity).
    let cfg = cfg();
    let batch = make_batch(&cfg, 4, 7);
    let opt = AdamW::default();
    let fsdp = Cluster::frontier().run(4, |ctx| {
        let mut e = FsdpEngine::new(ctx, cfg, opt, TrainOptions::none(), 42).unwrap();
        (0..2)
            .map(|_| e.train_step(ctx, &batch).unwrap().loss)
            .collect::<Vec<_>>()
    });
    let hs = Cluster::frontier().run(4, |ctx| {
        let layout = ParallelLayout::new(1, 4, 1);
        let opts = TrainOptions {
            layer_wrapping: true,
            ..TrainOptions::none()
        };
        let mut e = HybridStopEngine::new(ctx, layout, cfg, opt, opts, 42).unwrap();
        (0..2)
            .map(|_| e.train_step(ctx, &batch).unwrap().loss)
            .collect::<Vec<_>>()
    });
    assert_close("hs(tp=1) vs fsdp", &hs[0], &fsdp[0], 1e-3);
}

#[test]
fn checkpointed_hybrid_stop_matches_uncheckpointed() {
    let cfg = cfg();
    let batch = make_batch(&cfg, 2, 11);
    let opt = AdamW::default();
    let layout = ParallelLayout::new(2, 2, 1);
    let run = |ckpt: bool| {
        Cluster::frontier().run(4, |ctx| {
            let opts = TrainOptions {
                activation_checkpointing: ckpt,
                layer_wrapping: true,
                ..TrainOptions::none()
            };
            let mut e = HybridStopEngine::new(ctx, layout, cfg, opt, opts, 42).unwrap();
            (0..2)
                .map(|_| e.train_step(ctx, &batch).unwrap().loss)
                .collect::<Vec<_>>()
        })
    };
    let with = run(true);
    let without = run(false);
    assert_close("ckpt", &with[0], &without[0], 1e-4);
}
