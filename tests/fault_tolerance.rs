//! Fault-injection acceptance tests: killing a rank mid-step unblocks
//! every survivor with a typed `CommError::PeerFailure` (no deadlock, no
//! abort), stragglers and degraded links stay deterministic, injected OOM
//! surfaces as a typed failure, rendezvous timeouts fire instead of
//! hanging, and `ResilientTrainer` restarts from the last checkpoint
//! reproducing the uninterrupted loss trajectory.

use orbit::comm::{chrome_trace, Cluster, CommError, FaultPlan, SimError, TraceEvent};
use orbit::core::resilient::{AttemptSpec, ResilientTrainer};
use orbit::core::{EngineSpec, ParallelLayout, TrainOptions};
use orbit::tensor::init::Rng;
use orbit::tensor::kernels::AdamW;
use orbit::vit::{Batch, VitConfig};
use std::time::Duration;

fn make_batch(cfg: &VitConfig, n: usize, seed: u64) -> Batch {
    let mut rng = Rng::seed(seed);
    Batch {
        inputs: (0..n)
            .map(|_| {
                (0..cfg.dims.channels)
                    .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                    .collect()
            })
            .collect(),
        targets: (0..n)
            .map(|_| {
                (0..cfg.dims.out_channels)
                    .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                    .collect()
            })
            .collect(),
    }
}

/// The headline detection test: rank 2 is killed at step 1; every
/// survivor, blocked in the step's all-reduce, must return
/// `CommError::PeerFailure { rank: 2 }` — not deadlock, not panic.
#[test]
fn killed_rank_unblocks_all_survivors_with_peer_failure() {
    let cluster = Cluster::frontier().with_fault_plan(FaultPlan::new().kill(2, 1));
    let outcomes = cluster.try_run(4, |ctx| {
        let mut g = ctx.world_group();
        for step in 0..3u64 {
            ctx.begin_step(step)?;
            let mut clock = std::mem::take(&mut ctx.clock);
            let r = g.all_reduce_scalar(&mut clock, 1.0);
            ctx.clock = clock;
            r?;
        }
        Ok(ctx.rank)
    });
    assert!(matches!(
        outcomes[2].sim_error(),
        Some(SimError::Killed { rank: 2, step: 1 })
    ));
    for r in [0usize, 1, 3] {
        assert!(
            matches!(
                outcomes[r].sim_error(),
                Some(SimError::Comm(CommError::PeerFailure { rank: 2 }))
            ),
            "rank {r}: expected PeerFailure {{ rank: 2 }}, got {:?}",
            outcomes[r].failure()
        );
    }
}

/// A straggler's compute charges scale by the slowdown factor on its own
/// simulated clock only, and the fault shows up in its trace.
#[test]
fn straggler_slows_its_own_clock_and_is_traced() {
    let run = |plan: Option<FaultPlan>| -> Vec<(f64, Vec<_>)> {
        let mut cluster = Cluster::frontier();
        if let Some(p) = plan {
            cluster = cluster.with_fault_plan(p);
        }
        cluster
            .try_run(2, |ctx| {
                ctx.begin_step(0)?;
                ctx.clock.charge_compute(1e12, 1e12);
                Ok((ctx.clock.compute_seconds(), ctx.clock.take_events()))
            })
            .into_iter()
            .map(|o| o.ok().expect("no rank fails in this scenario"))
            .collect()
    };
    let clean = run(None);
    let mut slowed = run(Some(FaultPlan::new().slow(1, 0, 4.0)));
    let t0_clean = clean[0].0;
    let t1_clean = clean[1].0;
    let (t1, events) = slowed.pop().unwrap();
    let t0 = slowed.pop().unwrap().0;
    assert_eq!(t0, t0_clean, "rank 0 unaffected");
    assert!(
        (t1 - 4.0 * t1_clean).abs() < 1e-9,
        "straggler pays 4x: {t1} vs 4*{t1_clean}"
    );
    // The fault instant is in the trace stream and in the chrome export.
    assert!(events
        .iter()
        .any(|e| matches!(e.fault(), Some(label) if label.contains("slow rank 1"))));
    let json = chrome_trace(&[events]);
    assert!(json.contains("\"cat\":\"fault\""), "chrome export: {json}");
}

/// Degraded links slow communication deterministically: the collective
/// still returns the same data, total time grows, and two identical runs
/// report bit-identical simulated timelines.
#[test]
fn degraded_links_slow_comm_deterministically() {
    let run = |factor: Option<f64>| -> Vec<(f32, f64)> {
        let mut cluster = Cluster::frontier();
        if let Some(f) = factor {
            cluster = cluster.with_fault_plan(FaultPlan::new().degrade_links(0, 0, f));
        }
        cluster
            .try_run(2, |ctx| {
                ctx.begin_step(0)?;
                let mut g = ctx.world_group();
                let mut clock = std::mem::take(&mut ctx.clock);
                let data = vec![ctx.rank as f32 + 1.0; 1 << 16];
                let out = g.all_reduce(&mut clock, &data)?;
                ctx.clock = clock;
                Ok((out[0], ctx.clock.now()))
            })
            .into_iter()
            .map(|o| o.ok().expect("no rank fails in this scenario"))
            .collect()
    };
    let clean = run(None);
    let degraded_a = run(Some(16.0));
    let degraded_b = run(Some(16.0));
    for r in 0..2 {
        let (sum_clean, t_clean) = clean[r];
        let (sum_a, t_a) = degraded_a[r];
        let (sum_b, t_b) = degraded_b[r];
        assert_eq!(sum_a, sum_clean, "data unchanged by slow links");
        assert_eq!(sum_a, 3.0);
        assert_eq!(sum_a, sum_b);
        assert!(t_a > t_clean, "rank {r}: degraded {t_a} !> clean {t_clean}");
        assert_eq!(t_a.to_bits(), t_b.to_bits(), "deterministic timeline");
    }
}

/// An injected OOM poisons the next allocation: the victim fails with a
/// typed OOM error and its peer unblocks with `PeerFailure`.
#[test]
fn injected_oom_fails_rank_and_unblocks_peer() {
    let cfg = VitConfig::test_tiny();
    let batch = make_batch(&cfg, 2, 3);
    let cluster = Cluster::frontier().with_fault_plan(FaultPlan::new().oom(1, 0));
    let outcomes = cluster.try_run(2, |ctx| {
        ctx.begin_step(0)?;
        let mut engine = orbit::core::build_engine(
            ctx,
            EngineSpec::Ddp,
            cfg,
            AdamW::default(),
            TrainOptions::none(),
            42,
        )?;
        engine.train_step(ctx, &batch)?;
        Ok(())
    });
    assert!(
        matches!(outcomes[1].sim_error(), Some(SimError::Oom(_))),
        "rank 1 must OOM, got {:?}",
        outcomes[1].failure()
    );
    assert!(
        matches!(
            outcomes[0].sim_error(),
            Some(SimError::Comm(CommError::PeerFailure { rank: 1 }))
        ),
        "rank 0 must see PeerFailure, got {:?}",
        outcomes[0].failure()
    );
}

/// A rank that silently skips a collective trips the wall-clock rendezvous
/// timeout on its peer — the deadlock backstop for failure modes the
/// poison path cannot see.
#[test]
fn missing_peer_times_out_instead_of_deadlocking() {
    let cluster = Cluster::frontier().with_op_timeout(Duration::from_millis(200));
    let outcomes = cluster.try_run(2, |ctx| {
        if ctx.rank == 1 {
            return Ok(0.0); // never joins the collective
        }
        let mut g = ctx.world_group();
        let mut clock = std::mem::take(&mut ctx.clock);
        let r = g.all_reduce_scalar(&mut clock, 1.0);
        ctx.clock = clock;
        Ok(r?)
    });
    assert!(outcomes[1].is_ok());
    assert!(
        matches!(
            outcomes[0].sim_error(),
            Some(SimError::Comm(CommError::Timeout { .. }))
        ),
        "rank 0 must time out, got {:?}",
        outcomes[0].failure()
    );
}

/// Seeded fault plans are reproducible across the process boundary of two
/// cluster builds.
#[test]
fn seeded_fault_plans_reproduce() {
    let a = FaultPlan::seeded(7, 8, 20, 5);
    let b = FaultPlan::seeded(7, 8, 20, 5);
    assert_eq!(a.events(), b.events());
    assert_eq!(a.events().len(), 5);
    let c = FaultPlan::seeded(8, 8, 20, 5);
    assert_ne!(a.events(), c.events(), "different seed, different plan");
}

/// The headline recovery test: a DDP run killed mid-epoch restarts from
/// its last checkpoint and reproduces the uninterrupted loss trajectory
/// **bit-identically** (same layout, full precision: restore is a pure
/// copy and every step is deterministic).
#[test]
fn resilient_recovery_is_bit_identical_to_uninterrupted_run() {
    let cfg = VitConfig::test_tiny();
    let attempts = [AttemptSpec::new(EngineSpec::Ddp, 2)];
    let train = |cluster: Cluster| {
        ResilientTrainer::new(cluster)
            .with_checkpoint_every(2)
            .train(
                &attempts,
                cfg,
                AdamW::default(),
                TrainOptions::none(),
                42,
                6,
                |step| make_batch(&cfg, 2, 1000 + step),
            )
            .unwrap()
    };
    let uninterrupted = train(Cluster::frontier());
    assert_eq!(uninterrupted.restarts, 0);

    let interrupted = train(Cluster::frontier().with_fault_plan(FaultPlan::new().kill(1, 3)));
    assert_eq!(interrupted.restarts, 1);
    assert_eq!(interrupted.losses.len(), 6);
    let a: Vec<u32> = uninterrupted.losses.iter().map(|l| l.to_bits()).collect();
    let b: Vec<u32> = interrupted.losses.iter().map(|l| l.to_bits()).collect();
    assert_eq!(a, b, "recovered trajectory must be bit-identical");
    assert_eq!(
        uninterrupted.final_checkpoint, interrupted.final_checkpoint,
        "final model state identical too"
    );
}

/// Reshard-on-restart: a Hybrid-STOP 2x2x1 run killed mid-epoch restarts
/// under a *different* layout (1x2x2) from the same checkpoint and lands
/// on the same trajectory (cross-layout replay is exact up to f32
/// reduction-order effects).
#[test]
fn resilient_restart_reshards_hybrid_stop_layout() {
    let cfg = VitConfig::test_tiny();
    let steps = 5;
    let batch_fn = |step: u64| make_batch(&cfg, 4, 2000 + step);

    let reference = ResilientTrainer::new(Cluster::frontier())
        .with_checkpoint_every(2)
        .train(
            &[AttemptSpec::new(EngineSpec::Single, 1)],
            cfg,
            AdamW::default(),
            TrainOptions::none(),
            42,
            steps,
            batch_fn,
        )
        .unwrap();

    let attempts = [
        AttemptSpec::new(EngineSpec::HybridStop(ParallelLayout::new(2, 2, 1)), 4),
        AttemptSpec::new(EngineSpec::HybridStop(ParallelLayout::new(1, 2, 2)), 4),
    ];
    let report =
        ResilientTrainer::new(Cluster::frontier().with_fault_plan(FaultPlan::new().kill(3, 2)))
            .with_checkpoint_every(2)
            .train(
                &attempts,
                cfg,
                AdamW::default(),
                TrainOptions::none(),
                42,
                steps,
                batch_fn,
            )
            .unwrap();

    assert_eq!(report.restarts, 1);
    assert_eq!(
        report.launches,
        vec!["hybrid_stopx4".to_string(), "hybrid_stopx4".to_string()]
    );
    assert_eq!(report.losses.len(), steps as usize);
    for (i, (a, b)) in report.losses.iter().zip(&reference.losses).enumerate() {
        assert!(
            (a - b).abs() < 2e-3 * b.abs().max(1.0),
            "step {i}: resharded {a} vs reference {b}"
        );
    }
}

/// Fault instants survive into the chrome trace export from a real
/// engine-driven run.
#[test]
fn fault_events_appear_in_chrome_trace() {
    let cfg = VitConfig::test_tiny();
    let batch = make_batch(&cfg, 2, 5);
    let cluster = Cluster::frontier()
        .with_fault_plan(FaultPlan::new().slow(0, 0, 2.0).degrade_links(1, 1, 4.0));
    let outcomes = cluster.try_run(2, |ctx| {
        let mut engine = orbit::core::build_engine(
            ctx,
            EngineSpec::Ddp,
            cfg,
            AdamW::default(),
            TrainOptions::none(),
            42,
        )?;
        for step in 0..2u64 {
            ctx.begin_step(step)?;
            engine.train_step(ctx, &batch)?;
        }
        Ok(ctx.clock.take_events())
    });
    let logs: Vec<Vec<TraceEvent>> = outcomes
        .into_iter()
        .map(|o| o.ok().expect("no rank fails in this scenario"))
        .collect();
    let n_faults: usize = logs
        .iter()
        .flatten()
        .filter(|e| e.fault().is_some())
        .count();
    assert_eq!(n_faults, 2, "one instant per fired event");
    let json = chrome_trace(&logs);
    assert!(json.contains("\"cat\":\"fault\""));
    assert!(json.contains("slow rank 0"));
    assert!(json.contains("degrade links rank 1"));
}

/// Nonblocking handles meet fault injection: rank 1 dies at step 1 while
/// survivors hold *two* un-waited handles (an all-gather and a
/// reduce-scatter, waited out of issue order). Every survivor must come
/// back with `PeerFailure` naming the dead rank — never a hang, never a
/// leaked rendezvous slot corrupting a later step.
#[test]
fn killed_rank_with_unwaited_handles_never_hangs_survivors() {
    let cluster = Cluster::frontier().with_fault_plan(FaultPlan::new().kill(1, 1));
    let outcomes = cluster.try_run(3, |ctx| {
        let mut g = ctx.world_group();
        for step in 0..3u64 {
            ctx.begin_step(step)?;
            let mut clock = std::mem::take(&mut ctx.clock);
            let shard = vec![(ctx.rank + 1) as f32 * (step + 1) as f32; 8];
            let grads = vec![1.0f32; 9];
            let r = (|| {
                // Two collectives in flight at once, waited LIFO.
                let ag = g.all_gather_start(&clock, &shard, true)?;
                let rs = g.reduce_scatter_start(&clock, &grads)?;
                let mine = rs.wait(&mut clock)?;
                assert_eq!(mine.len(), 3);
                assert_eq!(mine[0], 3.0, "sum over three live ranks");
                let full = ag.wait(&mut clock)?;
                assert_eq!(full.len(), 24);
                Ok::<(), CommError>(())
            })();
            ctx.clock = clock;
            r?;
        }
        Ok(ctx.rank)
    });
    assert!(matches!(
        outcomes[1].sim_error(),
        Some(SimError::Killed { rank: 1, step: 1 })
    ));
    for r in [0usize, 2] {
        assert!(
            matches!(
                outcomes[r].sim_error(),
                Some(SimError::Comm(CommError::PeerFailure { rank: 1 }))
            ),
            "rank {r}: expected PeerFailure naming rank 1, got {:?}",
            outcomes[r].failure()
        );
    }
}

/// A seeded straggler under the pipelined Hybrid-STOP schedule: slowing
/// one rank stretches the simulated timeline but the prefetched gathers
/// still deliver the same data — losses stay bit-identical to the
/// straggler-free run.
#[test]
fn straggler_under_pipelined_hybrid_keeps_losses_bit_identical() {
    let cfg = VitConfig::test_tiny();
    let batch = make_batch(&cfg, 4, 11);
    let spec = EngineSpec::HybridStop(ParallelLayout::new(1, 2, 1));
    let opts = TrainOptions {
        layer_wrapping: true,
        prefetch: true,
        ..TrainOptions::none()
    };
    let run = |plan: Option<FaultPlan>| -> Vec<(Vec<u32>, f64)> {
        let mut cluster = Cluster::frontier();
        if let Some(p) = plan {
            cluster = cluster.with_fault_plan(p);
        }
        cluster
            .try_run(2, |ctx| {
                let mut e = orbit::core::build_engine(ctx, spec, cfg, AdamW::default(), opts, 42)?;
                let mut losses = Vec::new();
                for step in 0..2u64 {
                    ctx.begin_step(step)?;
                    losses.push(e.train_step(ctx, &batch)?.loss.to_bits());
                }
                Ok((losses, ctx.clock.now()))
            })
            .into_iter()
            .map(|o| o.ok().expect("stragglers don't fail ranks"))
            .collect()
    };
    let clean = run(None);
    let slowed = run(Some(FaultPlan::new().slow(1, 0, 8.0)));
    for r in 0..2 {
        assert_eq!(
            clean[r].0, slowed[r].0,
            "rank {r}: a straggler changes time, never data"
        );
    }
    assert!(
        slowed[1].1 > clean[1].1,
        "the straggler's timeline must stretch: {} !> {}",
        slowed[1].1,
        clean[1].1
    );
}
