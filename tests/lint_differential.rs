//! Static-vs-dynamic verifier agreement, plus seeded known-bad programs.
//!
//! For every engine × world of the bit-identity matrix
//! (`tests/verify_engines.rs`), the static `CommPlan` verdict must agree
//! with the dynamic schedule verifier: the symbolically-extracted program
//! is clean under `orbit::comm::analyze` (the lint passes), clean under
//! `orbit::comm::verify_schedule` replaying the *same* records (two
//! independent analyzers, one extraction), and the real simulated run is
//! clean under `Cluster::verify_run` — clean ↔ clean, with zero
//! simulation steps on the static path.
//!
//! Seeded known-bad programs (mismatched op order, uneven shard split,
//! over-budget memory) must produce the expected lint diagnostics, and —
//! where both analyzers can see the defect — both must flag it.

use orbit::comm::{analyze, verify_schedule, Cluster};
use orbit::core::lint::placeholder_batch;
use orbit::core::{build_engine, extract_comm_plan, EngineSpec, ParallelLayout, TrainOptions};
use orbit::frontier::FrontierMachine;
use orbit::tensor::kernels::AdamW;
use orbit::vit::VitConfig;

/// `test_tiny` adjusted so `spec` is constructible at `world` (mirrors
/// the adjustment in `tests/verify_engines.rs`).
fn cfg_for(spec: EngineSpec, world: usize) -> VitConfig {
    let mut cfg = VitConfig::test_tiny();
    match spec {
        EngineSpec::TensorParallel => cfg.dims.heads = cfg.dims.heads.max(world),
        EngineSpec::Pipeline => cfg.dims.layers = cfg.dims.layers.max(world),
        _ => {}
    }
    cfg
}

fn layout_for(world: usize) -> ParallelLayout {
    match world {
        1 => ParallelLayout::new(1, 1, 1),
        4 => ParallelLayout::new(2, 2, 1),
        8 => ParallelLayout::new(2, 2, 2),
        _ => panic!("unexpected world {world}"),
    }
}

/// The agreement check for one engine configuration: static extraction
/// verdict (both analyzers) and dynamic run verdict must all be clean.
fn assert_static_dynamic_agree(spec: EngineSpec, world: usize) {
    let cfg = cfg_for(spec, world);
    let machine = FrontierMachine::default();

    // Static path: symbolic extraction, no simulation steps.
    let plan = extract_comm_plan(&machine, world, spec, cfg, TrainOptions::none());
    assert!(
        plan.failures.is_empty(),
        "{} at world {world}: extraction failed: {:?}",
        spec.name(),
        plan.failures
    );
    let lint = analyze(&plan);
    let replayed = verify_schedule(plan.records());
    assert!(
        lint.is_clean(),
        "{} at world {world}: static lint findings:\n{lint}",
        spec.name()
    );
    assert!(
        replayed.is_clean(),
        "{} at world {world}: dynamic checker disagrees on the extracted records:\n{replayed}",
        spec.name()
    );

    // Dynamic path: a real verified run of the same configuration.
    let batch = placeholder_batch(&cfg, 8);
    let (_, dynamic) = Cluster::new(machine).verify_run(world, |ctx| {
        let mut e =
            build_engine(ctx, spec, cfg, AdamW::default(), TrainOptions::none(), 42).unwrap();
        e.train_step(ctx, &batch).unwrap();
    });
    assert!(
        dynamic.is_clean(),
        "{} at world {world}: dynamic run has findings:\n{dynamic}",
        spec.name()
    );
}

#[test]
fn single_device_agrees() {
    assert_static_dynamic_agree(EngineSpec::Single, 1);
}

#[test]
fn ddp_agrees_at_all_worlds() {
    for world in [1, 4, 8] {
        assert_static_dynamic_agree(EngineSpec::Ddp, world);
    }
}

#[test]
fn fsdp_agrees_at_all_worlds() {
    for world in [1, 4, 8] {
        assert_static_dynamic_agree(EngineSpec::Fsdp, world);
    }
}

#[test]
fn tensor_parallel_agrees_at_all_worlds() {
    for world in [1, 4, 8] {
        assert_static_dynamic_agree(EngineSpec::TensorParallel, world);
    }
}

#[test]
fn pipeline_agrees_at_all_worlds() {
    for world in [1, 4, 8] {
        assert_static_dynamic_agree(EngineSpec::Pipeline, world);
    }
}

#[test]
fn hybrid_stop_agrees_at_all_worlds() {
    for world in [1, 4, 8] {
        assert_static_dynamic_agree(EngineSpec::HybridStop(layout_for(world)), world);
    }
}

// --- Seeded known-bad programs -------------------------------------------

/// Mismatched collective order: rank 0 gathers then reduces, rank 1 the
/// reverse. Abstract collectives complete at issue, so the whole divergent
/// program records without hanging — and *both* analyzers must flag it.
#[test]
fn seeded_mismatched_op_order_is_flagged_by_both_analyzers() {
    let plan = Cluster::frontier().record_comm_plan(2, |ctx| {
        let mut g = ctx.world_group();
        let mut clock = std::mem::take(&mut ctx.clock);
        let data = [1.0f32; 4];
        if ctx.rank == 0 {
            g.all_gather(&mut clock, &data)?;
            g.all_reduce(&mut clock, &data)?;
        } else {
            g.all_reduce(&mut clock, &data)?;
            g.all_gather(&mut clock, &data)?;
        }
        ctx.clock = clock;
        Ok(())
    });
    assert!(
        plan.failures.is_empty(),
        "no rank should fail: {:?}",
        plan.failures
    );
    let lint = analyze(&plan);
    let msg = lint.to_string();
    assert!(msg.contains("collective mismatch"), "static: {msg}");
    assert!(msg.contains("rank 1"), "names the divergent rank: {msg}");
    assert!(msg.contains("group position 0"), "names the site: {msg}");
    let dynamic = verify_schedule(plan.records());
    assert!(
        !dynamic.is_clean(),
        "dynamic checker must agree the program is defective"
    );
}

/// Uneven shard split: rank 0 contributes 8 elements to an all-gather
/// where rank 1 contributes 6 — the shards cannot assemble one global
/// tensor.
#[test]
fn seeded_uneven_shard_split_is_a_coverage_gap() {
    let plan = Cluster::frontier().record_comm_plan(2, |ctx| {
        let mut g = ctx.world_group();
        let mut clock = std::mem::take(&mut ctx.clock);
        let data = vec![1.0f32; 8 - 2 * ctx.rank];
        g.all_gather(&mut clock, &data)?;
        ctx.clock = clock;
        Ok(())
    });
    let msg = analyze(&plan).to_string();
    assert!(msg.contains("shard coverage gap"), "got: {msg}");
    assert!(msg.contains("unequal shards"), "got: {msg}");
    let dynamic = verify_schedule(plan.records());
    assert!(
        !dynamic.is_clean(),
        "dynamic checker must agree the split is uneven"
    );
}

/// An uneven reduce-scatter payload (7 elements over 2 ranks) surfaces as
/// a coverage-gap diagnostic naming the exact division that fails.
#[test]
fn seeded_uneven_reduce_scatter_names_the_division() {
    use orbit::comm::{CommOp, ScheduleRecord};
    use std::collections::HashMap;
    let records = vec![
        ScheduleRecord::completed(0, vec![0, 1], CommOp::ReduceScatter, 7),
        ScheduleRecord::completed(1, vec![0, 1], CommOp::ReduceScatter, 7),
    ];
    let plan = orbit::comm::CommPlan::from_parts(
        2,
        u64::MAX,
        records,
        HashMap::new(),
        vec![0, 0],
        Vec::new(),
    );
    let msg = analyze(&plan).to_string();
    assert!(
        msg.contains("payload of 7 elements does not divide into 2 shards"),
        "got: {msg}"
    );
}

/// Over-budget memory: a rank whose peak allocation exceeds the device
/// budget is flagged by rank with both numbers — statically, without the
/// allocation ever OOMing the extraction.
#[test]
fn seeded_over_budget_memory_is_flagged() {
    let plan = Cluster::frontier()
        .with_device_capacity(1_000)
        .record_comm_plan(2, |ctx| {
            let bytes = if ctx.rank == 1 { 4_096 } else { 256 };
            let _a = ctx
                .device
                .alloc(bytes)
                .expect("lint extraction never enforces capacity mid-run");
            Ok(())
        });
    let msg = analyze(&plan).to_string();
    assert!(msg.contains("over budget"), "got: {msg}");
    assert!(msg.contains("rank 1"), "names the offending rank: {msg}");
    assert!(msg.contains("4096"), "names the peak: {msg}");
    assert!(msg.contains("1000"), "names the budget: {msg}");
}

/// The planner hook prunes statically-invalid candidates: with a check
/// that rejects everything, every candidate lands in `rejected` with the
/// diagnostic, and planning reports no feasible candidate.
#[test]
fn planner_prunes_candidates_the_static_check_rejects() {
    use orbit::frontier::planner::Planner;
    use std::sync::Arc;
    let dims = VitConfig::test_tiny().dims;
    let planner = Planner::new(FrontierMachine::default()).with_static_check(Arc::new(|c| {
        Err(format!(
            "orbit-lint: {:?} rejected for the test",
            c.strategy
        ))
    }));
    let err = planner
        .plan(&dims, 4, 8)
        .expect_err("everything was rejected");
    let _ = err; // NoFeasible
                 // With a passing check, planning succeeds and nothing is rejected.
    let planner = Planner::new(FrontierMachine::default()).with_static_check(Arc::new(|_| Ok(())));
    let plan = planner.plan(&dims, 4, 8).expect("all candidates pass");
    assert!(plan.rejected.is_empty());
    assert!(!plan.candidates.is_empty());
}

/// The real static check (symbolic extraction + lint) certifies the
/// planner's own candidates — wiring `planner_static_check` in prunes
/// nothing on a healthy codebase.
#[test]
fn real_static_check_keeps_all_planner_candidates() {
    use orbit::core::planner_static_check;
    use orbit::frontier::planner::Planner;
    use std::sync::Arc;
    let cfg = VitConfig::test_tiny();
    let machine = FrontierMachine::default();
    let baseline = Planner::new(machine.clone())
        .plan(&cfg.dims, 4, 8)
        .expect("feasible at 4 GPUs");
    let checked = Planner::new(machine.clone())
        .with_static_check(Arc::new(planner_static_check(machine, cfg)))
        .plan(&cfg.dims, 4, 8)
        .expect("still feasible with the lint check");
    assert!(
        checked.rejected.is_empty(),
        "lint rejected healthy candidates: {:?}",
        checked
            .rejected
            .iter()
            .map(|r| r.reason.clone())
            .collect::<Vec<_>>()
    );
    assert_eq!(baseline.candidates.len(), checked.candidates.len());
}
