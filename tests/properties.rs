//! Property-based tests (proptest) on the core mathematical invariants:
//! the Hybrid-STOP chain identities (paper Eqns. (2)/(3)), collective
//! semantics, shard partitioning, BF16 rounding, and metric bounds.

use orbit::comm::Cluster;
use orbit::core::GroupComm;
use orbit::data::metrics::{lat_weights, wacc};
use orbit::tensor::bf16::{bf16_to_f32, f32_to_bf16, round_bf16};
use orbit::tensor::dtensor::{flat_shard, flat_unshard, shard_columns, shard_rows};
use orbit::tensor::dtensor::{DTensor, DeviceMesh, Layout};
use orbit::tensor::init::Rng;
use orbit::tensor::kernels::{mha_backward_ws, mha_forward_path, QkNorm};
use orbit::tensor::{matmul, matmul_nt, matmul_tn, AttnPath, Precision, Tensor, Workspace};
use proptest::prelude::*;

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Paper Eqn. (2): x A B == sum_k (x A_{*,k})(B_{k,*}) for any shard
    /// count dividing the inner dimension.
    #[test]
    fn eqn2_chain_identity(
        x in tensor_strategy(3, 4),
        a in tensor_strategy(4, 8),
        b in tensor_strategy(8, 5),
        shards in prop::sample::select(vec![1usize, 2, 4, 8]),
    ) {
        let full = matmul(&matmul(&x, &a), &b);
        let mut acc = Tensor::zeros(3, 5);
        for k in 0..shards {
            let ak = shard_columns(&a, shards, k).unwrap();
            let bk = shard_rows(&b, shards, k).unwrap();
            acc.add_assign(&matmul(&matmul(&x, &ak), &bk));
        }
        prop_assert!(acc.allclose(&full, 1e-3, 1e-3));
    }

    /// Paper Eqn. (3): the gradient through the chain decomposes over the
    /// same shards: dX = sum_k dY B_{k,*}^T A_{*,k}^T.
    #[test]
    fn eqn3_gradient_identity(
        dy in tensor_strategy(3, 5),
        a in tensor_strategy(4, 8),
        b in tensor_strategy(8, 5),
        shards in prop::sample::select(vec![1usize, 2, 4]),
    ) {
        // Full: dX = dY B^T A^T.
        let full = matmul_nt(&matmul_nt(&dy, &b), &a);
        let mut acc = Tensor::zeros(3, 4);
        for k in 0..shards {
            let ak = shard_columns(&a, shards, k).unwrap();
            let bk = shard_rows(&b, shards, k).unwrap();
            acc.add_assign(&matmul_nt(&matmul_nt(&dy, &bk), &ak));
        }
        prop_assert!(acc.allclose(&full, 1e-3, 1e-3));
    }

    /// Flat sharding is a partition: unshard(concat(shards)) == original.
    #[test]
    fn flat_shard_partition(
        data in proptest::collection::vec(-10.0f32..10.0, 1..80),
        shards in 1usize..6,
    ) {
        let parts: Vec<Vec<f32>> = (0..shards).map(|k| flat_shard(&data, shards, k)).collect();
        // All shards equal length.
        for p in &parts {
            prop_assert_eq!(p.len(), parts[0].len());
        }
        let concat: Vec<f32> = parts.concat();
        prop_assert_eq!(flat_unshard(&concat, data.len()), data);
    }

    /// BF16 round-trip is idempotent and monotone.
    #[test]
    fn bf16_idempotent_and_monotone(a in -1e30f32..1e30, b in -1e30f32..1e30) {
        let ra = round_bf16(a);
        prop_assert_eq!(round_bf16(ra), ra, "idempotent");
        prop_assert_eq!(bf16_to_f32(f32_to_bf16(ra)), ra);
        let rb = round_bf16(b);
        if a <= b {
            prop_assert!(ra <= rb, "monotone: {} -> {}, {} -> {}", a, ra, b, rb);
        }
    }

    /// wACC is always within [-1, 1].
    #[test]
    fn wacc_bounded(
        p in tensor_strategy(6, 8),
        t in tensor_strategy(6, 8),
        c in tensor_strategy(6, 8),
    ) {
        let w = lat_weights(6);
        let a = wacc(&p, &t, &c, &w);
        prop_assert!((-1.0..=1.0).contains(&a) || a == 0.0, "wacc {}", a);
    }

    /// matmul transpose variants agree with explicit transposition.
    #[test]
    fn matmul_variants_consistent(
        a in tensor_strategy(3, 5),
        b in tensor_strategy(3, 4),
    ) {
        // A^T B via matmul_tn == transpose-then-multiply.
        let fast = matmul_tn(&a, &b);
        let slow = matmul(&a.transpose(), &b);
        prop_assert!(fast.allclose(&slow, 1e-4, 1e-4));
    }
}

/// Run both attention paths on identical inputs and return
/// `((y_ref, grads_ref), (y_fused, grads_fused))`.
#[allow(clippy::type_complexity)]
fn both_attention_paths(
    seed: u64,
    tokens: usize,
    kv_tokens: usize,
    heads: usize,
    d_head: usize,
    qk_norm: bool,
    prec: Precision,
) -> (
    (Tensor, orbit::tensor::kernels::MhaGrads),
    (Tensor, orbit::tensor::kernels::MhaGrads),
) {
    let d_model = heads * d_head;
    let mut rng = Rng::seed(seed);
    let q = rng.normal_tensor(tokens, d_model, 1.0);
    let k = rng.normal_tensor(kv_tokens, d_model, 1.0);
    let v = rng.normal_tensor(kv_tokens, d_model, 1.0);
    let dy = rng.normal_tensor(tokens, d_model, 1.0);
    let norm = qk_norm.then(|| QkNorm::identity(d_head));
    let ws = Workspace::new();
    let run = |path| {
        let (y, cache) = mha_forward_path(&q, &k, &v, heads, norm.as_ref(), prec, path, &ws);
        let grads = mha_backward_ws(&cache, norm.as_ref(), &dy, &ws);
        (y, grads)
    };
    (run(AttnPath::Reference), run(AttnPath::Fused))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The streaming fused kernel is numerically equivalent to the
    /// probs-materializing reference on random shapes: self- and
    /// cross-attention (kv length independent of T, exercising partial KV
    /// tiles), QK norm on/off, any head count dividing d_model.
    #[test]
    fn fused_matches_reference_attention(
        seed in 0u64..1_000,
        tokens in prop::sample::select(vec![3usize, 31, 64, 97, 160]),
        kv_tokens in prop::sample::select(vec![5usize, 64, 77, 128, 130]),
        heads in prop::sample::select(vec![1usize, 2, 4]),
        d_head in prop::sample::select(vec![4usize, 8, 16]),
        qk_norm in prop::sample::select(vec![false, true]),
    ) {
        let ((y_ref, g_ref), (y_fused, g_fused)) = both_attention_paths(
            seed, tokens, kv_tokens, heads, d_head, qk_norm, Precision::F32,
        );
        prop_assert!(y_fused.allclose(&y_ref, 1e-4, 1e-5), "forward diverged");
        prop_assert!(g_fused.dq.allclose(&g_ref.dq, 1e-3, 1e-4), "dq diverged");
        prop_assert!(g_fused.dk.allclose(&g_ref.dk, 1e-3, 1e-4), "dk diverged");
        prop_assert!(g_fused.dv.allclose(&g_ref.dv, 1e-3, 1e-4), "dv diverged");
        prop_assert_eq!(g_fused.dqk_norm.is_some(), qk_norm);
        if let (Some(f), Some(r)) = (&g_fused.dqk_norm, &g_ref.dqk_norm) {
            prop_assert!(f.0.allclose(&r.0, 1e-3, 1e-4), "dgamma_q diverged");
            prop_assert!(f.2.allclose(&r.2, 1e-3, 1e-4), "dgamma_k diverged");
        }
    }

    /// Same equivalence under BF16Mixed: both paths round inputs to bf16
    /// identically at entry, so they must still agree to the same
    /// tolerances after the shared rounding.
    #[test]
    fn fused_matches_reference_attention_bf16(
        seed in 0u64..1_000,
        tokens in prop::sample::select(vec![17usize, 64, 96]),
        heads in prop::sample::select(vec![2usize, 4]),
        qk_norm in prop::sample::select(vec![false, true]),
    ) {
        let ((y_ref, g_ref), (y_fused, g_fused)) = both_attention_paths(
            seed, tokens, tokens, heads, 8, qk_norm, Precision::BF16Mixed,
        );
        prop_assert!(y_fused.allclose(&y_ref, 1e-4, 1e-5), "forward diverged");
        prop_assert!(g_fused.dq.allclose(&g_ref.dq, 1e-3, 1e-4), "dq diverged");
        prop_assert!(g_fused.dk.allclose(&g_ref.dk, 1e-3, 1e-4), "dk diverged");
        prop_assert!(g_fused.dv.allclose(&g_ref.dv, 1e-3, 1e-4), "dv diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Collective semantics on the real threaded cluster: all-gather of
    /// random shards concatenates in rank order; reduce-scatter sums.
    #[test]
    fn collectives_random_sizes(
        world in prop::sample::select(vec![2usize, 3, 4]),
        chunk in 1usize..20,
    ) {
        let results = Cluster::frontier().run(world, |ctx| {
            let mut g = ctx.world_group();
            let mut clock = std::mem::take(&mut ctx.clock);
            let mine: Vec<f32> = (0..chunk).map(|i| (ctx.rank * 100 + i) as f32).collect();
            let gathered = g.all_gather(&mut clock, &mine).unwrap();
            let summed = g.all_reduce(&mut clock, &mine).unwrap();
            (gathered, summed)
        });
        let (gathered, _) = &results[0];
        prop_assert_eq!(gathered.len(), world * chunk);
        for r in 0..world {
            for i in 0..chunk {
                prop_assert_eq!(gathered[r * chunk + i], (r * 100 + i) as f32);
            }
        }
        // all_reduce sums rank-wise: element i = sum_r (r*100 + i).
        let (_, summed) = &results[0];
        for i in 0..chunk {
            let expect: f32 = (0..world).map(|r| (r * 100 + i) as f32).sum();
            prop_assert_eq!(summed[i], expect);
        }
        // Every rank sees identical results.
        for r in &results[1..] {
            prop_assert_eq!(&r.0, gathered);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// DTensor reshard roundtrip on the real threaded cluster: for every
    /// pair of non-Partial layouts, `A -> B -> A` lands bit-identically on
    /// the direct placement of the global tensor (reshards only move and
    /// slice data, so no tolerance is needed).
    #[test]
    fn reshard_roundtrips_are_bit_identical(
        world in prop::sample::select(vec![2usize, 4]),
        rows_per in 1usize..3,
        cols_per in 1usize..3,
    ) {
        let rows = rows_per * world;
        let cols = cols_per * world;
        let global = Tensor::from_vec(
            rows,
            cols,
            (0..rows * cols).map(|i| i as f32 - 7.0).collect(),
        );
        let layouts = [
            Layout::Replicate,
            Layout::Shard(0),
            Layout::Shard(1),
            Layout::ShardFlat,
        ];
        let results = Cluster::frontier().run(world, |ctx| {
            let mesh = DeviceMesh::one("x", ctx.world, ctx.rank);
            let mut group = ctx.world_group();
            let mut clock = std::mem::take(&mut ctx.clock);
            let mut ok = Vec::new();
            for from in layouts {
                for to in layouts {
                    let placed =
                        DTensor::from_global(&global, mesh.clone(), "x", from).unwrap();
                    let mut comm = GroupComm::new(&mut group, &mut clock);
                    let there = placed.reshard("x", to, &mut comm).unwrap();
                    let back = there.reshard("x", from, &mut comm).unwrap();
                    ok.push(
                        back.local().data() == placed.local().data()
                            && back.global_shape() == (rows, cols)
                            && back.layout_on("x").unwrap() == from,
                    );
                }
            }
            ctx.clock = clock;
            ok
        });
        for ranks in &results {
            prop_assert!(ranks.iter().all(|&b| b), "some roundtrip diverged: {:?}", ranks);
        }
    }

    /// Resolving a Partial over the real cluster: `Partial -> Replicate`
    /// is the element-wise sum of every rank's addend, and `Partial ->
    /// ShardFlat` is this rank's padded flat shard of that sum — exact
    /// for integer-valued addends regardless of reduction order.
    #[test]
    fn partial_resolution_matches_sum(
        world in prop::sample::select(vec![2usize, 3, 4]),
        len in 1usize..12,
    ) {
        let results = Cluster::frontier().run(world, |ctx| {
            let mesh = DeviceMesh::one("x", ctx.world, ctx.rank);
            let mut group = ctx.world_group();
            let mut clock = std::mem::take(&mut ctx.clock);
            let addend: Vec<f32> =
                (0..len).map(|i| ((ctx.rank + 1) * (i + 1)) as f32).collect();
            let make = || {
                DTensor::partial(
                    Tensor::from_vec(1, len, addend.clone()),
                    mesh.clone(),
                    "x",
                )
                .unwrap()
            };
            let mut comm = GroupComm::new(&mut group, &mut clock);
            let repl = make()
                .reshard("x", Layout::Replicate, &mut comm)
                .unwrap()
                .into_local()
                .into_vec();
            let flat = make()
                .reshard("x", Layout::ShardFlat, &mut comm)
                .unwrap()
                .into_local()
                .into_vec();
            ctx.clock = clock;
            (repl, flat)
        });
        let sum: Vec<f32> = (0..len)
            .map(|i| (0..world).map(|r| ((r + 1) * (i + 1)) as f32).sum())
            .collect();
        for (rank, (repl, flat)) in results.iter().enumerate() {
            prop_assert_eq!(repl, &sum);
            prop_assert_eq!(flat, &flat_shard(&sum, world, rank));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fleet response cache never serves stale weights: under any
    /// interleaving of inserts (including entries produced by an older
    /// generation, as an in-flight batch completing across an update
    /// would), lookups, eager route invalidations, and *missed*
    /// invalidations (a bare generation bump — the tag check alone must
    /// protect), a hit always carries the route's current generation,
    /// the LRU bound holds, and the hit/miss counters account for every
    /// lookup.
    #[test]
    fn response_cache_never_serves_stale(
        capacity in 1usize..6,
        ops in proptest::collection::vec(0u64..192, 1..200),
    ) {
        use orbit::fleet::{CacheKey, ResponseCache};
        let mut cache: ResponseCache<u64> = ResponseCache::new(capacity);
        let mut gens = [0u64; 3];
        let mut lookups = 0usize;
        for code in ops {
            // Decode (op, route, key kind, key value) from one draw:
            // 4 ops x 3 routes x 2 kinds x 8 values = 192 codes.
            let op = code % 4;
            let route = (code / 4 % 3) as usize;
            let exact = code / 12 % 2;
            let v = code / 24 % 8;
            let key = if exact == 1 {
                CacheKey::Exact(v)
            } else {
                CacheKey::Climatology { window: v }
            };
            match op {
                0 => {
                    // Insert tagged with the current generation, or (when
                    // v is odd) one generation behind — a straggler batch
                    // that finished after the route's weights advanced.
                    let tag = gens[route].saturating_sub(v % 2);
                    cache.insert(route, key, tag, tag);
                }
                1 => {
                    lookups += 1;
                    if let Some(tag) = cache.lookup(route, key, gens[route]) {
                        prop_assert_eq!(tag, gens[route], "stale serve");
                    }
                }
                2 => {
                    gens[route] += 1;
                    cache.invalidate_route(route, gens[route]);
                }
                _ => {
                    // Missed invalidation: the generation advances but
                    // nobody tells the cache.
                    gens[route] += 1;
                }
            }
            prop_assert!(cache.len() <= capacity, "LRU bound violated");
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits + s.misses, lookups);
        prop_assert!(s.stale_rejected <= s.misses);
    }
}
