//! Checkpoint portability: a checkpoint captured under one parallel layout
//! restores bit-exactly into *any* other layout — Hybrid-STOP to single
//! device, to DDP, and to a differently-factored Hybrid-STOP grid — and
//! survives a file round trip through the bulk binary format.

use orbit::comm::Cluster;
use orbit::core::{build_engine, EngineSpec, ParallelLayout, TrainOptions};
use orbit::tensor::init::Rng;
use orbit::tensor::kernels::AdamW;
use orbit::vit::{Batch, Checkpoint, VitConfig};

fn make_batch(cfg: &VitConfig, n: usize, seed: u64) -> Batch {
    let mut rng = Rng::seed(seed);
    Batch {
        inputs: (0..n)
            .map(|_| {
                (0..cfg.dims.channels)
                    .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                    .collect()
            })
            .collect(),
        targets: (0..n)
            .map(|_| {
                (0..cfg.dims.out_channels)
                    .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                    .collect()
            })
            .collect(),
    }
}

/// Train a few steps under `spec`, capture, and return the checkpoint
/// (identical on every rank — asserted here).
fn train_and_capture(spec: EngineSpec, world: usize, cfg: VitConfig, steps: u64) -> Checkpoint {
    let outcomes = Cluster::frontier().try_run(world, |ctx| {
        let mut engine = build_engine(ctx, spec, cfg, AdamW::default(), TrainOptions::none(), 42)?;
        for step in 0..steps {
            ctx.begin_step(step)?;
            engine.train_step(ctx, &make_batch(&cfg, 4, 500 + step))?;
        }
        engine.capture_checkpoint(ctx)
    });
    let mut cks: Vec<Checkpoint> = outcomes
        .into_iter()
        .map(|o| o.ok().expect("no faults in this run"))
        .collect();
    let first = cks.remove(0);
    for (r, ck) in cks.into_iter().enumerate() {
        assert_eq!(first, ck, "checkpoint must be identical on rank {}", r + 1);
    }
    first
}

/// Restore `ck` into `spec`, immediately re-capture, and return the result
/// — the round trip must be the identity for every layout.
fn restore_and_recapture(
    spec: EngineSpec,
    world: usize,
    cfg: VitConfig,
    ck: &Checkpoint,
) -> Checkpoint {
    let outcomes = Cluster::frontier().try_run(world, |ctx| {
        let mut engine = build_engine(ctx, spec, cfg, AdamW::default(), TrainOptions::none(), 7)?;
        engine.restore_checkpoint(ctx, ck)?;
        engine.capture_checkpoint(ctx)
    });
    outcomes
        .into_iter()
        .next()
        .unwrap()
        .ok()
        .expect("no faults in this run")
}

/// The headline portability test: a Hybrid-STOP 2x2x1 run interrupted
/// mid-epoch hands its checkpoint to a single device, a DDP pair, and a
/// re-factored Hybrid-STOP grid, and every layout reproduces it bit-exactly
/// on re-capture (restore followed by capture is a pure permutation).
#[test]
fn hybrid_checkpoint_restores_into_every_layout_bit_exactly() {
    let cfg = VitConfig::test_tiny();
    let hybrid = EngineSpec::HybridStop(ParallelLayout::new(2, 2, 1));
    let ck = train_and_capture(hybrid, 4, cfg, 3);
    assert!(ck.matches_config(&cfg));

    for (label, spec, world) in [
        ("single", EngineSpec::Single, 1),
        ("ddp", EngineSpec::Ddp, 2),
        ("fsdp", EngineSpec::Fsdp, 2),
        (
            "hybrid 1x2x2",
            EngineSpec::HybridStop(ParallelLayout::new(1, 2, 2)),
            4,
        ),
    ] {
        let round = restore_and_recapture(spec, world, cfg, &ck);
        assert_eq!(ck, round, "{label}: restore->capture must be the identity");
    }
}

/// GradScaler state rides along in the checkpoint: a mixed-precision run
/// captures `Some(state)`, the state survives restore into a *different*
/// engine (and a file round trip), and full-precision runs keep the field
/// `None`.
#[test]
fn grad_scaler_state_survives_capture_restore_across_engines() {
    let cfg = VitConfig::test_tiny();
    let amp = TrainOptions {
        mixed_precision: true,
        ..TrainOptions::none()
    };

    // Train three mixed-precision steps under DDP and capture.
    let outcomes = Cluster::frontier().try_run(2, |ctx| {
        let mut engine = build_engine(ctx, EngineSpec::Ddp, cfg, AdamW::default(), amp, 42)?;
        for step in 0..3u64 {
            ctx.begin_step(step)?;
            engine.train_step(ctx, &make_batch(&cfg, 4, 500 + step))?;
        }
        engine.capture_checkpoint(ctx)
    });
    let ck = outcomes
        .into_iter()
        .next()
        .unwrap()
        .ok()
        .expect("no faults in this run");
    let state = ck
        .scaler
        .expect("mixed-precision capture must record scaler state");
    assert!(state.scale > 0.0);

    // File round trip preserves the scaler section.
    let path = std::env::temp_dir().join(format!("orbit_scaler_test_{}.bin", std::process::id()));
    ck.save_to_path(&path).unwrap();
    let loaded = Checkpoint::load_from_path(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(
        loaded.scaler,
        Some(state),
        "scaler must survive the file format"
    );

    // Restore into an FSDP pair and immediately recapture: the scaler
    // state comes back unchanged.
    let outcomes = Cluster::frontier().try_run(2, |ctx| {
        let mut engine = build_engine(ctx, EngineSpec::Fsdp, cfg, AdamW::default(), amp, 7)?;
        engine.restore_checkpoint(ctx, &loaded)?;
        engine.capture_checkpoint(ctx)
    });
    let round = outcomes
        .into_iter()
        .next()
        .unwrap()
        .ok()
        .expect("no faults in this run");
    assert_eq!(
        round.scaler,
        Some(state),
        "restore -> capture must be the identity on scaler state"
    );

    // Full-precision runs don't carry scaler state.
    let plain = train_and_capture(EngineSpec::Single, 1, cfg, 1);
    assert!(plain.scaler.is_none(), "no scaler without mixed precision");
}

/// The same checkpoint survives the bulk binary file format, and training
/// continues identically from the loaded copy.
#[test]
fn checkpoint_file_roundtrip_then_resume_matches_in_memory_resume() {
    let cfg = VitConfig::test_tiny();
    let ck = train_and_capture(EngineSpec::Ddp, 2, cfg, 2);

    let path =
        std::env::temp_dir().join(format!("orbit_portability_test_{}.bin", std::process::id()));
    ck.save_to_path(&path).unwrap();
    let loaded = Checkpoint::load_from_path(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(ck, loaded, "file round trip must be exact");

    // Resume two more steps from the loaded checkpoint on a single device
    // and from the in-memory one under DDP: identical losses either way.
    let resume = |spec: EngineSpec, world: usize, ck: &Checkpoint| -> Vec<f32> {
        let outcomes = Cluster::frontier().try_run(world, |ctx| {
            let mut engine =
                build_engine(ctx, spec, cfg, AdamW::default(), TrainOptions::none(), 9)?;
            engine.restore_checkpoint(ctx, ck)?;
            let mut losses = Vec::new();
            for step in 2..4u64 {
                ctx.begin_step(step)?;
                losses.push(
                    engine
                        .train_step(ctx, &make_batch(&cfg, 4, 500 + step))?
                        .loss,
                );
            }
            Ok(losses)
        });
        outcomes
            .into_iter()
            .next()
            .unwrap()
            .ok()
            .expect("no faults in this run")
    };
    let from_file = resume(EngineSpec::Single, 1, &loaded);
    let from_memory = resume(EngineSpec::Ddp, 2, &ck);
    for (i, (a, b)) in from_file.iter().zip(&from_memory).enumerate() {
        assert!(
            (a - b).abs() < 1e-5 * b.abs().max(1.0),
            "resumed step {i}: single-from-file {a} vs ddp-from-memory {b}"
        );
    }
}
