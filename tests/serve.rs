//! Serving-layer acceptance tests: batched forwards are bit-identical to
//! the unbatched single-request path on every served layout, admission
//! control rejects beyond capacity, deadlines expire while queued,
//! mid-request rank kills re-queue onto surviving replicas with
//! exactly-once delivery, and serving sessions export span-bearing
//! schedules that verify clean.

use orbit::comm::{FaultPlan, TraceEvent};
use orbit::core::EngineSpec;
use orbit::serve::{
    BatchPolicy, ForecastRequest, ForecastServer, ServeConfig, ServeError, ServeOutcome,
};
use orbit::tensor::init::Rng;
use orbit::vit::VitConfig;

/// `n` requests with normal-random images arriving `gap` seconds apart.
fn make_requests(cfg: &VitConfig, n: usize, gap: f64, seed: u64) -> Vec<ForecastRequest> {
    let mut rng = Rng::seed(seed);
    (0..n)
        .map(|i| {
            let images = (0..cfg.dims.channels)
                .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                .collect();
            ForecastRequest::new(i as u64, images, gap * i as f64)
        })
        .collect()
}

fn serve_with(
    spec: EngineSpec,
    world: usize,
    policy: BatchPolicy,
    requests: Vec<ForecastRequest>,
) -> ServeOutcome {
    ForecastServer::new(ServeConfig::new(spec, world, VitConfig::test_tiny()).with_policy(policy))
        .serve(requests)
}

/// The headline numerics guarantee: grouping requests into dynamic
/// batches changes scheduling and latency, never the predictions. Serve
/// the same requests unbatched (one per forward) and batched and compare
/// every output tensor bit-for-bit, on every served layout.
#[test]
fn batched_forward_is_bit_identical_to_unbatched() {
    let cfg = VitConfig::test_tiny();
    for (spec, world) in [
        (EngineSpec::Single, 1),
        (EngineSpec::Ddp, 2),
        (EngineSpec::TensorParallel, 2),
        (EngineSpec::Fsdp, 2),
    ] {
        let n = 6;
        let unbatched = serve_with(
            spec,
            world,
            BatchPolicy::immediate(),
            make_requests(&cfg, n, 0.05, 11),
        );
        let batched = serve_with(
            spec,
            world,
            BatchPolicy::batched(3, 0.5),
            make_requests(&cfg, n, 0.05, 11),
        );
        assert_eq!(unbatched.stats.completed, n, "{spec:?} unbatched");
        assert_eq!(batched.stats.completed, n, "{spec:?} batched");
        assert!(
            batched.stats.batch_hist.keys().any(|&s| s > 1),
            "{spec:?}: the batched policy must actually form multi-request batches: {:?}",
            batched.stats.batch_hist
        );
        for (u, b) in unbatched.responses.iter().zip(&batched.responses) {
            assert_eq!(u.id, b.id);
            let (up, bp) = (u.result.as_ref().unwrap(), b.result.as_ref().unwrap());
            assert_eq!(up.len(), bp.len());
            for (ut, bt) in up.iter().zip(bp) {
                assert_eq!(
                    ut.data(),
                    bt.data(),
                    "{spec:?}: request {} prediction must be bit-identical",
                    u.id
                );
            }
        }
    }
}

/// Backpressure: a full admission queue rejects arrivals with
/// `Overloaded` instead of queueing unboundedly. 20 simultaneous
/// arrivals against capacity 4 admit exactly 4.
#[test]
fn admission_control_rejects_when_overloaded() {
    let cfg = VitConfig::test_tiny();
    let server = ForecastServer::new(ServeConfig::new(EngineSpec::Single, 1, cfg).with_capacity(4));
    let outcome = server.serve(make_requests(&cfg, 20, 0.0, 3));
    assert_eq!(outcome.stats.completed, 4);
    assert_eq!(outcome.stats.rejected_overload, 16);
    assert_eq!(outcome.stats.duplicates, 0);
    assert_eq!(outcome.responses.len(), 20, "every request gets an answer");
}

/// A request whose deadline passes while it lingers in the batcher is
/// rejected `DeadlineExceeded`; later requests are unaffected.
#[test]
fn deadlines_expire_while_queued() {
    let cfg = VitConfig::test_tiny();
    let mut requests = make_requests(&cfg, 2, 5.0, 5);
    requests[0] = requests[0].clone().with_deadline(1.0);
    let server = ForecastServer::new(
        ServeConfig::new(EngineSpec::Single, 1, cfg).with_policy(BatchPolicy::batched(4, 10.0)),
    );
    let outcome = server.serve(requests);
    assert_eq!(
        outcome.responses[0].result,
        Err(ServeError::DeadlineExceeded)
    );
    assert!(outcome.responses[1].is_ok());
    assert_eq!(outcome.stats.rejected_deadline, 1);
}

/// A replica killed mid-request (the fault fires at the batch boundary,
/// while it holds the lease) must not lose or duplicate responses: the
/// lease re-queues and a surviving replica serves it. Rank 1 dies on its
/// first batch, so every completed response comes from rank 0.
#[test]
fn killed_replica_requeues_onto_survivor() {
    let cfg = VitConfig::test_tiny();
    let n = 16;
    let server = ForecastServer::new(ServeConfig::new(EngineSpec::Ddp, 2, cfg).with_capacity(n))
        .with_fault_plan(FaultPlan::new().kill(1, 0));
    let outcome = server.serve(make_requests(&cfg, n, 0.0, 21));
    assert_eq!(outcome.stats.completed, n, "no request may be lost");
    assert_eq!(outcome.stats.duplicates, 0, "no request may be duplicated");
    assert_eq!(outcome.stats.failed, 0, "the survivor absorbs every retry");
    assert!(
        outcome.responses.iter().all(|r| r.replica == 0),
        "rank 1 dies on its first batch, so rank 0 serves everything"
    );
    assert!(outcome.survivors[0], "rank 0 must survive");
    // The fault-aware checker must explain the truncated schedule.
    if let Some(report) = server.cluster().last_verify_report() {
        assert!(report.is_clean(), "schedule must verify clean:\n{report}");
    }
}

/// Killing a shard of the only tensor-parallel replica mid-request takes
/// the whole replica down: already-served requests keep their responses,
/// the in-flight and remaining ones fail typed (`ReplicaFailure`),
/// nothing is duplicated, and the fault-truncated collective schedule
/// still verifies clean.
#[test]
fn tensor_parallel_shard_kill_fails_typed_and_verifies_clean() {
    let cfg = VitConfig::test_tiny();
    let server =
        ForecastServer::new(ServeConfig::new(EngineSpec::TensorParallel, 2, cfg).with_retries(0))
            .with_fault_plan(FaultPlan::new().kill(1, 1));
    let outcome = server.serve(make_requests(&cfg, 4, 1.0, 9));
    assert_eq!(outcome.responses.len(), 4, "every request gets an answer");
    assert_eq!(outcome.stats.duplicates, 0);
    assert!(
        outcome.responses[0].is_ok(),
        "batch 0 completes before the kill"
    );
    assert!(
        outcome.stats.failed > 0,
        "the dead replica's requests fail typed"
    );
    assert!(!outcome.survivors[1], "rank 1 must die at step 1");
    let report = server
        .cluster()
        .last_verify_report()
        .expect("test profile verifies schedules");
    assert!(
        report.is_clean(),
        "fault-truncated serving schedule must verify clean:\n{report}"
    );
}

/// Seeded fault sweep: whatever mix of kills, stragglers, and link
/// faults fires, every request id is answered exactly once.
#[test]
fn seeded_faults_preserve_exactly_once_delivery() {
    let cfg = VitConfig::test_tiny();
    for seed in 0..6 {
        let n = 8;
        let server =
            ForecastServer::new(ServeConfig::new(EngineSpec::Ddp, 3, cfg).with_capacity(n))
                .with_fault_plan(FaultPlan::seeded(seed, 3, 4, 2));
        let outcome = server.serve(make_requests(&cfg, n, 0.02, seed));
        assert_eq!(
            outcome.responses.len(),
            n,
            "seed {seed}: every request answered"
        );
        for (i, r) in outcome.responses.iter().enumerate() {
            assert_eq!(r.id, i as u64, "seed {seed}: responses keyed by id");
        }
        assert_eq!(outcome.stats.duplicates, 0, "seed {seed}: exactly-once");
        assert_eq!(
            outcome.stats.completed + outcome.stats.rejected(),
            n,
            "seed {seed}: answers partition into served and typed rejections"
        );
        if let Some(report) = server.cluster().last_verify_report() {
            assert!(report.is_clean(), "seed {seed}:\n{report}");
        }
    }
}

/// Serving sessions narrate themselves: request lifecycle spans land in
/// the trace next to the collectives, stats are internally consistent,
/// and the no-fault schedule verifies clean.
#[test]
fn serving_session_exports_spans_and_sane_stats() {
    let cfg = VitConfig::test_tiny();
    let server = ForecastServer::new(
        ServeConfig::new(EngineSpec::TensorParallel, 2, cfg)
            .with_policy(BatchPolicy::batched(2, 0.2)),
    );
    let outcome = server.serve(make_requests(&cfg, 5, 0.05, 13));
    let s = &outcome.stats;
    assert_eq!(s.completed, 5);
    assert!(s.p50_latency > 0.0);
    assert!(s.p50_latency <= s.p95_latency && s.p95_latency <= s.p99_latency);
    assert!(s.throughput > 0.0);
    assert!(s.mean_latency > 0.0);
    assert_eq!(
        s.batch_hist.values().sum::<usize>(),
        outcome
            .trace
            .iter()
            .flatten()
            .filter(|e| matches!(e, TraceEvent::Span { name, .. } if name.starts_with("batch x")))
            .count()
    );
    let leader_spans: Vec<&str> = outcome.trace[0]
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Span { name, .. } => Some(name.as_str()),
            _ => None,
        })
        .collect();
    for id in 0..5 {
        assert!(
            leader_spans
                .iter()
                .any(|n| *n == format!("req {id} queued")),
            "missing queued span for {id}: {leader_spans:?}"
        );
        assert!(
            leader_spans.iter().any(|n| *n == format!("req {id} serve")),
            "missing serve span for {id}: {leader_spans:?}"
        );
    }
    let report = server
        .cluster()
        .last_verify_report()
        .expect("test profile verifies schedules");
    assert!(report.is_clean(), "{report}");
}
