//! Every engine's collective choreography, certified clean by the
//! schedule verifier at worlds 1, 4, and 8.
//!
//! `Cluster::verify_run` replays each rank's issue stream through the
//! cross-rank consistency and liveness checks after the run: zero findings
//! means every collective matched in kind, order, payload, and wire bytes
//! across the group, every handle was waited, and nothing leaked — for all
//! six strategies, not just the ones a hand-written assertion happened to
//! cover.

use orbit::comm::Cluster;
use orbit::core::{build_engine, EngineSpec, ParallelLayout, TrainOptions};
use orbit::tensor::init::Rng;
use orbit::tensor::kernels::AdamW;
use orbit::vit::{Batch, VitConfig};

fn make_batch(cfg: &VitConfig, n: usize) -> Batch {
    let mut rng = Rng::seed(41);
    Batch {
        inputs: (0..n)
            .map(|_| {
                (0..cfg.dims.channels)
                    .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                    .collect()
            })
            .collect(),
        targets: (0..n)
            .map(|_| {
                (0..cfg.dims.out_channels)
                    .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                    .collect()
            })
            .collect(),
    }
}

/// `test_tiny` adjusted so `spec` is constructible at `world`: tensor
/// parallelism needs the world to divide the head count, and the pipeline
/// needs at least one layer per stage.
fn cfg_for(spec: EngineSpec, world: usize) -> VitConfig {
    let mut cfg = VitConfig::test_tiny();
    match spec {
        EngineSpec::TensorParallel => cfg.dims.heads = cfg.dims.heads.max(world),
        EngineSpec::Pipeline => cfg.dims.layers = cfg.dims.layers.max(world),
        _ => {}
    }
    cfg
}

/// Train `spec` for two steps on `world` ranks under full schedule
/// verification; assert the report is clean and the loss stream is
/// identical on every rank.
fn assert_clean_schedule(spec: EngineSpec, world: usize) {
    let cfg = cfg_for(spec, world);
    let batch = make_batch(&cfg, 8);
    let (losses, report) = Cluster::frontier().verify_run(world, |ctx| {
        let mut e =
            build_engine(ctx, spec, cfg, AdamW::default(), TrainOptions::none(), 42).unwrap();
        (0..2)
            .map(|_| e.train_step(ctx, &batch).unwrap().loss.to_bits())
            .collect::<Vec<u32>>()
    });
    assert!(
        report.is_clean(),
        "{} at world {world} has schedule findings:\n{report}",
        spec.name()
    );
    // Single-device ranks never touch a communicator; every other engine
    // must have left a full-world issue stream behind.
    if world > 1 && spec != EngineSpec::Single {
        assert!(report.ops > 0, "{} issued no collectives?", spec.name());
        assert_eq!(report.ranks, world);
    }
    for (rank, l) in losses.iter().enumerate() {
        assert_eq!(
            l,
            &losses[0],
            "{} rank {rank} reports a different loss stream",
            spec.name()
        );
    }
}

fn layout_for(world: usize) -> ParallelLayout {
    match world {
        1 => ParallelLayout::new(1, 1, 1),
        4 => ParallelLayout::new(2, 2, 1),
        8 => ParallelLayout::new(2, 2, 2),
        _ => panic!("no hybrid layout defined for world {world}"),
    }
}

#[test]
fn single_device_schedule_is_clean() {
    for world in [1, 4, 8] {
        assert_clean_schedule(EngineSpec::Single, world);
    }
}

#[test]
fn ddp_schedule_is_clean() {
    for world in [1, 4, 8] {
        assert_clean_schedule(EngineSpec::Ddp, world);
    }
}

#[test]
fn fsdp_schedule_is_clean() {
    for world in [1, 4, 8] {
        assert_clean_schedule(EngineSpec::Fsdp, world);
    }
}

#[test]
fn tensor_parallel_schedule_is_clean() {
    for world in [1, 4, 8] {
        assert_clean_schedule(EngineSpec::TensorParallel, world);
    }
}

#[test]
fn pipeline_schedule_is_clean() {
    for world in [1, 4, 8] {
        assert_clean_schedule(EngineSpec::Pipeline, world);
    }
}

#[test]
fn hybrid_stop_schedule_is_clean() {
    for world in [1, 4, 8] {
        assert_clean_schedule(EngineSpec::HybridStop(layout_for(world)), world);
    }
}

#[test]
fn checkpoint_roundtrip_schedule_is_clean() {
    // capture/restore are collectives too — they must verify clean, and
    // restoring into a different layout (the reshard-on-restart path) must
    // not desynchronize the schedule either.
    let cfg = VitConfig::test_tiny();
    let batch = make_batch(&cfg, 8);
    let (_, report) = Cluster::frontier().verify_run(4, |ctx| {
        let mut fsdp = build_engine(
            ctx,
            EngineSpec::Fsdp,
            cfg,
            AdamW::default(),
            TrainOptions::none(),
            42,
        )
        .unwrap();
        fsdp.train_step(ctx, &batch).unwrap();
        let ck = fsdp.capture_checkpoint(ctx).unwrap();
        let mut hybrid = build_engine(
            ctx,
            EngineSpec::HybridStop(ParallelLayout::new(2, 2, 1)),
            cfg,
            AdamW::default(),
            TrainOptions::none(),
            42,
        )
        .unwrap();
        hybrid.restore_checkpoint(ctx, &ck).unwrap();
        hybrid.train_step(ctx, &batch).unwrap().loss.to_bits()
    });
    assert!(report.is_clean(), "{report}");
}
