//! Known-bad collective schedules must produce their specific named
//! diagnostics — the verifier turning "timeout or wrong loss" into a
//! precise root cause.
//!
//! Each program here is a deliberate one-line mistake of the kind the
//! nonblocking `PendingCollective` path made easy to write: mismatched
//! collective kinds across ranks, a started-but-never-waited handle, a
//! shard geometry that cannot tile the partition, mixed-precision configs
//! that diverge, and a classic lock-order-style wait cycle.

use orbit::comm::{Cluster, CommError, SimError};
use std::time::Duration;

/// A cluster with verification pinned on (independent of build profile)
/// and a short rendezvous timeout so stuck programs fail fast.
fn verifying_cluster() -> Cluster {
    Cluster::frontier()
        .with_schedule_verification(true)
        .with_op_timeout(Duration::from_millis(500))
}

#[test]
fn mismatched_collective_kinds_are_diagnosed() {
    // Rank 0 issues all-gather, rank 1 issues reduce-scatter at the same
    // position of the same group — on real NCCL, a silent hang.
    let cluster = verifying_cluster();
    let outcomes = cluster.try_run(2, |ctx| {
        let mut g = ctx.world_group();
        let mut clock = std::mem::take(&mut ctx.clock);
        let r = if ctx.rank == 0 {
            g.all_gather(&mut clock, &[1.0, 2.0]).map(|_| ())
        } else {
            g.reduce_scatter(&mut clock, &[1.0, 2.0]).map(|_| ())
        };
        ctx.clock = clock;
        r.map_err(SimError::from)
    });
    // The runtime surfaces it as a failure (one rank panics on the slot
    // assert, the other observes the peer failure or times out)...
    assert!(outcomes.iter().any(|o| !o.is_ok()));
    // ...and the post-hoc report names the defect, the divergent rank,
    // and the call site.
    let report = cluster.last_verify_report().expect("verification was on");
    let text = report.to_string();
    assert!(!report.is_clean());
    assert!(
        text.contains("cross-rank schedule divergence"),
        "expected an OpKindMismatch diagnosis, got:\n{text}"
    );
    assert!(text.contains("at call #0"), "{text}");
    assert!(
        text.contains("rank 1 issued reduce_scatter") && text.contains("rank 0 issued all_gather"),
        "{text}"
    );
    assert!(text.contains("first divergent rank"), "{text}");
}

#[test]
fn leaked_pending_handle_is_diagnosed() {
    // Both ranks start an all-gather and drop the handle without wait();
    // the run itself completes (a later collective still works — the
    // Drop bookkeeping must not poison the rendezvous for survivors).
    let (sums, report) = verifying_cluster().verify_run(2, |ctx| {
        let mut g = ctx.world_group();
        let mut clock = std::mem::take(&mut ctx.clock);
        let h = g
            .all_gather_start(&clock, &[ctx.rank as f32], false)
            .unwrap();
        drop(h); // the one-line mistake
        let sum = g.all_reduce_scalar(&mut clock, 1.0).unwrap();
        ctx.clock = clock;
        sum
    });
    assert_eq!(sums, vec![2.0, 2.0], "later collectives still complete");
    let text = report.to_string();
    assert!(!report.is_clean());
    assert!(
        text.contains("leaked PendingCollective"),
        "expected a LeakedHandle diagnosis, got:\n{text}"
    );
    assert!(text.contains("without wait()"), "{text}");
    assert!(text.contains("all_gather (call #0"), "{text}");
}

#[test]
fn shard_coverage_gap_is_diagnosed() {
    // Rank-dependent all-gather contributions: the gathered layout cannot
    // tile a flat shard partition. The op itself "succeeds" (concatenation
    // is well-defined), which is exactly why it needs a checker.
    let (_, report) = verifying_cluster().verify_run(2, |ctx| {
        let mut g = ctx.world_group();
        let mut clock = std::mem::take(&mut ctx.clock);
        let shard = vec![1.0; 3 + ctx.rank]; // rank 0: 3 elements, rank 1: 4
        let gathered = g.all_gather(&mut clock, &shard).unwrap().to_vec();
        ctx.clock = clock;
        gathered
    });
    let text = report.to_string();
    assert!(!report.is_clean());
    assert!(
        text.contains("shard-coverage gap"),
        "expected a ShardCoverageGap diagnosis, got:\n{text}"
    );
    assert!(text.contains("unequal shard contributions"), "{text}");
    assert!(
        text.contains("rank 0: 3") && text.contains("rank 1: 4"),
        "{text}"
    );
}

#[test]
fn wire_byte_disagreement_is_diagnosed() {
    // Rank 1 "forgot" mixed precision: same op, same payload, different
    // bytes on the wire.
    let (_, report) = verifying_cluster().verify_run(2, |ctx| {
        let mut g = ctx.world_group();
        if ctx.rank == 0 {
            g.set_wire_bytes(2.0);
        }
        let mut clock = std::mem::take(&mut ctx.clock);
        g.all_reduce(&mut clock, &[1.0; 8]).unwrap();
        ctx.clock = clock;
    });
    let text = report.to_string();
    assert!(!report.is_clean());
    assert!(
        text.contains("wire-byte disagreement"),
        "expected a WireMismatch diagnosis, got:\n{text}"
    );
    assert!(text.contains("mixed-precision"), "{text}");
}

#[test]
fn wait_cycle_across_groups_is_diagnosed_as_deadlock() {
    // Three ranks, three two-rank groups, issued in cyclic order: rank 0
    // waits in {0,1}, rank 1 in {1,2}, rank 2 in {0,2}. Every rank times
    // out; the wait-for graph has the cycle 0 -> 1 -> 2 -> 0.
    let cluster = verifying_cluster();
    let outcomes = cluster.try_run(3, |ctx| {
        let ranks = match ctx.rank {
            0 => vec![0, 1],
            1 => vec![1, 2],
            _ => vec![0, 2],
        };
        let mut g = ctx.group(ranks);
        let mut clock = std::mem::take(&mut ctx.clock);
        let r = g.all_reduce_scalar(&mut clock, 1.0).map(|_| ());
        ctx.clock = clock;
        r.map_err(SimError::from)
    });
    assert!(outcomes.iter().all(|o| !o.is_ok()), "every rank is stuck");
    assert!(outcomes.iter().any(|o| {
        matches!(
            o.sim_error(),
            Some(SimError::Comm(CommError::Timeout { .. }))
        )
    }));
    let report = cluster.last_verify_report().expect("verification was on");
    let text = report.to_string();
    assert!(
        text.contains("would-deadlock cycle"),
        "expected a DeadlockCycle diagnosis, got:\n{text}"
    );
    assert!(text.contains("rank 0") && text.contains("rank 1") && text.contains("rank 2"));
    assert!(text.contains("blocked in all_reduce"), "{text}");
}

#[test]
fn skipped_collective_is_diagnosed_as_missing_op() {
    // Rank 1 issues one fewer all-reduce — the loop-bounds-off-by-one.
    let cluster = verifying_cluster();
    let outcomes = cluster.try_run(2, |ctx| {
        let mut g = ctx.world_group();
        let mut clock = std::mem::take(&mut ctx.clock);
        let steps = if ctx.rank == 0 { 2 } else { 1 };
        let mut r = Ok(());
        for _ in 0..steps {
            r = g.all_reduce_scalar(&mut clock, 1.0).map(|_| ());
            if r.is_err() {
                break;
            }
        }
        ctx.clock = clock;
        r.map_err(SimError::from)
    });
    assert!(
        !outcomes[0].is_ok(),
        "rank 0's second all-reduce never completes"
    );
    let report = cluster.last_verify_report().expect("verification was on");
    let text = report.to_string();
    assert!(
        text.contains("rank 1 issued only 1 op(s)") && text.contains("no counterpart"),
        "expected a MissingOp diagnosis, got:\n{text}"
    );
}

#[test]
fn clean_programs_report_clean() {
    let (results, report) = verifying_cluster().verify_run(4, |ctx| {
        let mut g = ctx.world_group();
        let mut clock = std::mem::take(&mut ctx.clock);
        let gathered = g
            .all_gather(&mut clock, &[ctx.rank as f32])
            .unwrap()
            .to_vec();
        let sum = g.all_reduce_scalar(&mut clock, 1.0).unwrap();
        g.barrier(&mut clock).unwrap();
        ctx.clock = clock;
        (gathered, sum)
    });
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.ops, 12);
    assert_eq!(report.ranks, 4);
    for (gathered, sum) in results {
        assert_eq!(gathered, vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(sum, 4.0);
    }
}

#[test]
fn run_panics_on_findings_when_verification_is_on() {
    // The debug-assertions-on runtime mode: a leaked handle inside a plain
    // `run()` must not pass silently.
    let result = std::panic::catch_unwind(|| {
        verifying_cluster().run(2, |ctx| {
            let mut g = ctx.world_group();
            let clock = std::mem::take(&mut ctx.clock);
            let h = g.all_gather_start(&clock, &[1.0], false).unwrap();
            drop(h);
            ctx.clock = clock;
        });
    });
    let err = result.expect_err("run() must panic on a leaked handle");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("schedule verification failed") && msg.contains("leaked PendingCollective"),
        "{msg}"
    );
}
