//! Cross-validation between the analytic Frontier model (used for the
//! at-scale Table I / Figs. 5-7 numbers) and the executable simulator:
//! where both can observe the same phenomenon at small scale, they must
//! agree on its *direction*.

use orbit::comm::Cluster;
use orbit::core::{Engine, FsdpEngine, HybridStopEngine, ParallelLayout, TrainOptions};
use orbit::frontier::{PerfModel, Strategy};
use orbit::tensor::init::Rng;
use orbit::tensor::kernels::AdamW;
use orbit::vit::{Batch, VitConfig};

fn make_batch(cfg: &VitConfig, n: usize) -> Batch {
    let mut rng = Rng::seed(13);
    Batch {
        inputs: (0..n)
            .map(|_| {
                (0..cfg.dims.channels)
                    .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                    .collect()
            })
            .collect(),
        targets: (0..n)
            .map(|_| {
                (0..cfg.dims.out_channels)
                    .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                    .collect()
            })
            .collect(),
    }
}

fn cfg() -> VitConfig {
    VitConfig::ladder(0, 8)
}

/// Run Hybrid-STOP at a layout and return (peak_mem, sim_time) of rank 0.
fn run_hs(layout: ParallelLayout, opts: TrainOptions, batch: &Batch) -> (u64, f64) {
    let results = Cluster::frontier().run(layout.world(), |ctx| {
        let mut e = HybridStopEngine::new(ctx, layout, cfg(), AdamW::default(), opts, 42).unwrap();
        let s = e.train_step(ctx, batch).unwrap();
        (s.peak_mem, s.sim_time)
    });
    results[0]
}

#[test]
fn both_agree_layer_wrapping_reduces_peak_memory() {
    let batch = make_batch(&cfg(), 4);
    let layout = ParallelLayout::new(2, 2, 1);
    let wrapped_opts = TrainOptions {
        layer_wrapping: true,
        ..TrainOptions::none()
    };
    // Simulator.
    let (peak_wrapped, _) = run_hs(layout, wrapped_opts, &batch);
    let (peak_unwrapped, _) = run_hs(layout, TrainOptions::none(), &batch);
    assert!(
        peak_wrapped < peak_unwrapped,
        "simulator: {peak_wrapped} !< {peak_unwrapped}"
    );
    // Analytic model (at paper scale).
    let pm = PerfModel::default();
    let dims = orbit::frontier::ModelDims::orbit_113b(48);
    let big = ParallelLayout::new(8, 64, 1);
    let m_wrapped = pm.memory(&dims, &big, Strategy::HybridStop, &wrapped_opts, 2);
    let m_unwrapped = pm.memory(&dims, &big, Strategy::HybridStop, &TrainOptions::none(), 2);
    assert!(m_wrapped.gather < m_unwrapped.gather);
}

#[test]
fn both_agree_hybrid_stop_beats_fsdp_peak() {
    let batch = make_batch(&cfg(), 4);
    // Simulator at world 4.
    let fsdp_peak = Cluster::frontier().run(4, |ctx| {
        let mut e =
            FsdpEngine::new(ctx, cfg(), AdamW::default(), TrainOptions::none(), 42).unwrap();
        e.train_step(ctx, &batch).unwrap().peak_mem
    })[0];
    let (hs_peak, _) = run_hs(
        ParallelLayout::new(2, 2, 1),
        TrainOptions {
            layer_wrapping: true,
            ..TrainOptions::none()
        },
        &batch,
    );
    assert!(hs_peak < fsdp_peak, "simulator: {hs_peak} !< {fsdp_peak}");
    // Analytic model.
    let pm = PerfModel::default();
    let dims = orbit::frontier::ModelDims::orbit_113b(48);
    let opts = TrainOptions::all_on();
    let vanilla = TrainOptions {
        layer_wrapping: false,
        ..opts
    };
    let m_fsdp = pm.memory(
        &dims,
        &ParallelLayout::new(1, 512, 1),
        Strategy::Fsdp,
        &vanilla,
        2,
    );
    let m_hs = pm.memory(
        &dims,
        &ParallelLayout::new(8, 64, 1),
        Strategy::HybridStop,
        &opts,
        2,
    );
    assert!(m_hs.total() < m_fsdp.total());
}

#[test]
fn both_agree_mixed_precision_cuts_compute_and_comm() {
    // At toy scale the simulated collectives are latency-dominated, so
    // total step time barely moves — but BF16 must strictly reduce both
    // the modeled compute seconds and the bandwidth component of comm.
    let batch = make_batch(&cfg(), 4);
    let layout = ParallelLayout::new(2, 2, 1);
    let mixed = TrainOptions {
        layer_wrapping: true,
        mixed_precision: true,
        ..TrainOptions::none()
    };
    let plain = TrainOptions {
        layer_wrapping: true,
        ..TrainOptions::none()
    };
    let run_parts = |opts: TrainOptions| {
        Cluster::frontier().run(layout.world(), |ctx| {
            let mut e =
                HybridStopEngine::new(ctx, layout, cfg(), AdamW::default(), opts, 42).unwrap();
            e.train_step(ctx, &batch).unwrap();
            (ctx.clock.compute_seconds(), ctx.clock.comm_seconds())
        })[0]
    };
    let (c_mixed, m_mixed) = run_parts(mixed);
    let (c_plain, m_plain) = run_parts(plain);
    assert!(
        c_mixed < 0.6 * c_plain,
        "simulator compute: {c_mixed} !< {c_plain}"
    );
    assert!(m_mixed < m_plain, "simulator comm: {m_mixed} !< {m_plain}");
    // Analytic model at paper scale agrees.
    let pm = PerfModel::default();
    let dims = orbit::frontier::ModelDims::orbit_113b(48);
    let big = ParallelLayout::new(8, 64, 1);
    let st_mixed = pm.step_time(&dims, &big, Strategy::HybridStop, &mixed, 2);
    let st_plain = pm.step_time(&dims, &big, Strategy::HybridStop, &plain, 2);
    assert!(st_mixed.compute < st_plain.compute);
    assert!(st_mixed.total() < st_plain.total());
}

#[test]
fn both_agree_sharding_reduces_persistent_memory_proportionally() {
    // Doubling the total shard count should roughly halve persistent
    // state in both views.
    let batch = make_batch(&cfg(), 8);
    let (p2, _) = run_hs(ParallelLayout::new(2, 1, 1), TrainOptions::none(), &batch);
    let (p4, _) = run_hs(ParallelLayout::new(2, 2, 1), TrainOptions::none(), &batch);
    // Peaks include activations (same in both), so only expect a drop.
    assert!(p4 < p2, "simulator: {p4} !< {p2}");
    let pm = PerfModel::default();
    let dims = orbit::frontier::ModelDims::orbit_113b(48);
    let m2 = pm.memory(
        &dims,
        &ParallelLayout::new(8, 32, 1),
        Strategy::HybridStop,
        &TrainOptions::all_on(),
        2,
    );
    let m4 = pm.memory(
        &dims,
        &ParallelLayout::new(8, 64, 1),
        Strategy::HybridStop,
        &TrainOptions::all_on(),
        2,
    );
    let ratio = m2.persistent as f64 / m4.persistent as f64;
    assert!(
        (ratio - 2.0).abs() < 0.05,
        "analytic persistent ratio {ratio}"
    );
}

#[test]
fn simulated_comm_time_tracks_analytic_collective_formulas() {
    // The simulator's clock charges the same ring formulas the analytic
    // model uses, so an isolated collective must agree almost exactly.
    use orbit::frontier::{FrontierMachine, LinkKind};
    let machine = FrontierMachine::default();
    let n = 1 << 16;
    let expect = machine.reduce_scatter_time(4, n as u64 * 4, LinkKind::IntraNode);
    let results = Cluster::new(machine).run(4, |ctx| {
        let mut g = ctx.world_group();
        let mut clock = std::mem::take(&mut ctx.clock);
        let buf = vec![1.0f32; n];
        let _ = g.reduce_scatter(&mut clock, &buf);
        clock.now()
    });
    for t in results {
        assert!(
            (t - expect).abs() < 0.05 * expect,
            "simulated {t} vs analytic {expect}"
        );
    }
}
