//! Per-step collective schedules, asserted from the comm event log.
//!
//! Every `ProcessGroup` collective records a `CommEvent` into its caller's
//! `SimClock`, so the communication *choreography* of each engine is
//! directly testable: DDP issues exactly one gradient all-reduce per step,
//! vanilla FSDP gathers the full model in one all-gather, and Hybrid-STOP
//! gathers one layer unit at a time (paper Fig. 2 vs 3).

use orbit::comm::{Cluster, CommOp, TraceEvent};
use orbit::core::{build_engine, EngineSpec, ParallelLayout, TrainOptions};
use orbit::tensor::init::Rng;
use orbit::tensor::kernels::AdamW;
use orbit::vit::{Batch, VitConfig, VitModel};

fn make_batch(cfg: &VitConfig, n: usize) -> Batch {
    let mut rng = Rng::seed(41);
    Batch {
        inputs: (0..n)
            .map(|_| {
                (0..cfg.dims.channels)
                    .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                    .collect()
            })
            .collect(),
        targets: (0..n)
            .map(|_| {
                (0..cfg.dims.out_channels)
                    .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                    .collect()
            })
            .collect(),
    }
}

/// Run `spec` for `steps` steps on `world` ranks and return rank 0's
/// comm events (compute intervals filtered out).
fn comm_events(
    spec: EngineSpec,
    world: usize,
    opts: TrainOptions,
    steps: usize,
) -> Vec<orbit::comm::CommEvent> {
    let cfg = VitConfig::test_tiny();
    let batch = make_batch(&cfg, 4);
    let mut logs = Cluster::frontier().run(world, |ctx| {
        let mut e = build_engine(ctx, spec, cfg, AdamW::default(), opts, 42).unwrap();
        for _ in 0..steps {
            e.train_step(ctx, &batch).unwrap();
        }
        ctx.clock.take_events()
    });
    logs.remove(0)
        .into_iter()
        .filter_map(|ev| match ev {
            TraceEvent::Comm(c) => Some(c),
            _ => None,
        })
        .collect()
}

#[test]
fn ddp_issues_exactly_one_gradient_all_reduce_per_step() {
    let steps = 3;
    let events = comm_events(EngineSpec::Ddp, 4, TrainOptions::none(), steps);
    // The gradient all-reduce carries the whole flat gradient; the only
    // other all-reduce is the scalar loss average (one element).
    let grad_reduces: Vec<_> = events
        .iter()
        .filter(|e| e.op == CommOp::AllReduce && e.elements > 1)
        .collect();
    assert_eq!(
        grad_reduces.len(),
        steps,
        "DDP must issue exactly one gradient all-reduce per step"
    );
    let param_count = VitModel::init(VitConfig::test_tiny(), 42).param_count();
    for e in &grad_reduces {
        assert!(
            e.elements >= param_count,
            "gradient all-reduce covers the full model: {} !>= {param_count}",
            e.elements
        );
    }
    // No all-gathers at all: DDP replicates parameters.
    assert!(
        events.iter().all(|e| e.op != CommOp::AllGather),
        "DDP never gathers parameters"
    );
}

#[test]
fn fsdp_gathers_the_full_model_in_one_all_gather_per_step() {
    let steps = 2;
    let world = 4;
    let events = comm_events(EngineSpec::Fsdp, world, TrainOptions::none(), steps);
    let gathers: Vec<_> = events
        .iter()
        .filter(|e| e.op == CommOp::AllGather)
        .collect();
    assert_eq!(
        gathers.len(),
        steps,
        "vanilla FSDP does one (full-model) all-gather per step"
    );
    // Each rank contributes its 1/N shard of the entire model.
    let param_count = VitModel::init(VitConfig::test_tiny(), 42).param_count();
    for g in &gathers {
        assert!(
            g.elements * world >= param_count,
            "the single gather spans the whole model: {} * {world} !>= {param_count}",
            g.elements
        );
    }
    // And one gradient reduce-scatter per step.
    let scatters = events
        .iter()
        .filter(|e| e.op == CommOp::ReduceScatter)
        .count();
    assert_eq!(scatters, steps);
}

#[test]
fn hybrid_stop_gathers_one_layer_unit_at_a_time() {
    let steps = 1;
    let world = 4;
    let layers = VitConfig::test_tiny().dims.layers;
    let opts = TrainOptions {
        layer_wrapping: true,
        ..TrainOptions::none()
    };
    let spec = EngineSpec::HybridStop(ParallelLayout::new(1, world, 1));
    let events = comm_events(spec, world, opts, steps);

    let gathers: Vec<_> = events
        .iter()
        .filter(|e| e.op == CommOp::AllGather)
        .collect();
    // Forward: front unit + each block unit; backward: each block unit
    // re-gathered. Never the whole model at once.
    assert_eq!(
        gathers.len(),
        1 + 2 * layers,
        "layer wrapping gathers per unit (front + {layers} blocks fwd + {layers} bwd)"
    );
    let param_count = VitModel::init(VitConfig::test_tiny(), 42).param_count();
    for g in &gathers {
        assert!(
            g.elements * world < param_count,
            "every Hybrid-STOP gather is a strict subset of the model: {} * {world} !< {param_count}",
            g.elements
        );
    }
    // Gradients leave by per-unit reduce-scatter (front + each block).
    let scatters = events
        .iter()
        .filter(|e| e.op == CommOp::ReduceScatter)
        .count();
    assert_eq!(scatters, 1 + layers);
}
