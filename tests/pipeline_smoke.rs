//! End-to-end pipeline: synthetic archive -> pre-train -> fine-tune ->
//! forecast skill, and the baseline zoo — the Figs. 8-10 machinery at
//! smoke-test size.

use orbit::data::loader::laptop_loader;
use orbit::data::metrics::{lat_weights, wacc};
use orbit::tensor::init::Rng;
use orbit::tensor::kernels::AdamW;
use orbit::vit::baselines::{damped_persistence, SpectralOperator};
use orbit::vit::{VitConfig, VitModel};

#[test]
fn pretrain_finetune_beats_climatology_at_one_day() {
    let loader = laptop_loader(99).with_lead(4);
    let cfg = VitConfig::ladder(0, 8);
    let w = lat_weights(cfg.dims.img_h);
    let opt = AdamW {
        lr: 1.5e-3,
        ..AdamW::default()
    };
    let mut model = VitModel::init(cfg, 42);
    let mut rng = Rng::seed(1);
    let mut state = model.init_adam_state();
    for _ in 0..50 {
        let b = loader.pretrain_batch(&mut rng, 8);
        model.train_step(&b, &w, &opt, &mut state);
    }
    let mut ft_state = model.init_adam_state();
    for _ in 0..30 {
        let b = loader.finetune_batch(&mut rng, 8);
        model.train_step(&b, &w, &opt, &mut ft_state);
    }
    let eval = loader.eval_batch(8);
    let clims = loader.output_climatologies();
    let mut mean_acc = 0.0;
    for (inputs, targets) in eval.inputs.iter().zip(&eval.targets) {
        let preds = model.predict(inputs);
        for v in 0..4 {
            mean_acc += wacc(&preds[v], &targets[v], &clims[v], &w) / (4.0 * eval.len() as f32);
        }
    }
    // Climatology scores 0; a trained 1-day forecast must show real skill.
    assert!(
        mean_acc > 0.15,
        "mean wACC {mean_acc} should beat climatology clearly"
    );
}

#[test]
fn skill_decays_with_lead_time() {
    // Persistence skill must decay monotonically-ish with lead: the
    // predictability-horizon structure the Fig. 9 comparisons rely on.
    let loader = laptop_loader(77);
    let w = lat_weights(32);
    let clims = loader.output_climatologies();
    let out_idx = loader.generator.catalog().output_indices();
    let mut accs = Vec::new();
    for lead in [1usize, 4, 120] {
        let l = loader.clone().with_lead(lead);
        let eval = l.eval_batch(6);
        let mut acc = 0.0;
        for (inputs, targets) in eval.inputs.iter().zip(&eval.targets) {
            for v in 0..4 {
                let p = damped_persistence(&inputs[out_idx[v]], &clims[v], lead, 1.0);
                acc += wacc(&p, &targets[v], &clims[v], &w) / (4.0 * eval.len() as f32);
            }
        }
        accs.push(acc);
    }
    // Wave autocorrelation oscillates at long leads, so we assert decay
    // in magnitude rather than strict monotonicity: near-perfect at one
    // step, clearly degraded at one day, near zero at a month.
    assert!(
        accs[0] > 0.9,
        "1-step persistence near-perfect: {}",
        accs[0]
    );
    assert!(accs[1] < accs[0], "1-day {} !< 1-step {}", accs[1], accs[0]);
    assert!(
        accs[2].abs() < accs[0],
        "30-day skill {} should be far below 1-step {}",
        accs[2],
        accs[0]
    );
}

#[test]
fn nwp_proxy_beats_persistence_at_two_weeks() {
    // The IFS-like proxy integrates the dynamics (with model error); raw
    // persistence freezes them. At 14 days the proxy must win.
    let loader = laptop_loader(55);
    let lead = 56;
    let l = loader.clone().with_lead(lead);
    let w = lat_weights(32);
    let clims = l.output_climatologies();
    let out_idx = l.generator.catalog().output_indices();
    let eval = l.eval_batch(6);
    let span = orbit::data::generator::STEPS_PER_YEAR - lead;
    let mut nwp = 0.0;
    let mut persist = 0.0;
    for (k, (inputs, targets)) in eval.inputs.iter().zip(&eval.targets).enumerate() {
        let t = l.test_year * orbit::data::generator::STEPS_PER_YEAR + k * span / eval.len();
        for v in 0..4 {
            let f = l.generator.nwp_forecast(out_idx[v], t, lead, 0.08);
            nwp += wacc(&f, &targets[v], &clims[v], &w) / (4.0 * eval.len() as f32);
            let p = damped_persistence(&inputs[out_idx[v]], &clims[v], lead, 1.0);
            persist += wacc(&p, &targets[v], &clims[v], &w) / (4.0 * eval.len() as f32);
        }
    }
    assert!(
        nwp > persist,
        "NWP proxy {nwp} should beat persistence {persist} at 14 days"
    );
}

#[test]
fn spectral_operator_learns_one_day_forecast() {
    let loader = laptop_loader(33).with_lead(4);
    let dims = VitConfig::ladder(0, 8).dims;
    let mut fcn = SpectralOperator::new(
        dims.img_h,
        dims.img_w,
        dims.channels,
        dims.channels,
        10,
        20,
        5,
    );
    let opt = AdamW {
        lr: 3e-3,
        ..AdamW::default()
    };
    let mut state = fcn.init_adam_state();
    let mut rng = Rng::seed(2);
    let mut losses = Vec::new();
    for _ in 0..400 {
        let b = loader.finetune_batch_full_state(&mut rng, 1);
        losses.push(fcn.train_step(&b.inputs[0], &b.targets[0], &opt, &mut state));
    }
    // Per-sample losses are noisy and the DCT-truncated operator has a
    // substantial irreducible floor (it cannot represent phase shifts
    // exactly — the FourCastNet-proxy's characteristic weakness), so
    // assert a clear absolute improvement between window averages.
    let head: f32 = losses[..40].iter().sum::<f32>() / 40.0;
    let tail: f32 = losses[losses.len() - 40..].iter().sum::<f32>() / 40.0;
    assert!(
        tail < head - 0.08,
        "spectral training should reduce loss: {head} -> {tail}"
    );
}

#[test]
fn rollout_preserves_shapes_and_finiteness() {
    let loader = laptop_loader(44).with_lead(4);
    let mut cfg = VitConfig::ladder(0, 8);
    cfg.dims.out_channels = cfg.dims.channels;
    let model = VitModel::init(cfg, 42);
    let eval = loader.eval_batch(1);
    let mut state = eval.inputs[0].clone();
    for _ in 0..5 {
        state = model.predict(&state);
        assert_eq!(state.len(), cfg.dims.channels);
        for img in &state {
            assert_eq!(img.shape(), (cfg.dims.img_h, cfg.dims.img_w));
            assert!(img.all_finite());
        }
    }
}
