//! Randomized schedule exploration: rerun real engine configurations under
//! seeded thread-schedule perturbation and assert the results are
//! *bit-identical* across every interleaving.
//!
//! `Cluster::with_schedule_perturbation(seed)` injects deterministic
//! yields and sub-millisecond sleeps into every rendezvous arrival path,
//! permuting which member arrives last at each collective (and therefore
//! which OS thread performs each reduction, picks up each slot, and posts
//! each wakeup). Because reductions sum in group-rank order regardless of
//! arrival order, the training math must not notice: any loss-bit
//! difference between seeds is a real schedule-sensitivity bug, and any
//! verifier finding under a permuted schedule is a latent race.

use orbit::comm::Cluster;
use orbit::core::{build_engine, EngineSpec, ParallelLayout, TrainOptions};
use orbit::tensor::init::Rng;
use orbit::tensor::kernels::AdamW;
use orbit::vit::{Batch, VitConfig};

const SEEDS: u64 = 16;
const STEPS: usize = 2;
const WORLD: usize = 4;

fn make_batch(cfg: &VitConfig, n: usize) -> Batch {
    let mut rng = Rng::seed(41);
    Batch {
        inputs: (0..n)
            .map(|_| {
                (0..cfg.dims.channels)
                    .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                    .collect()
            })
            .collect(),
        targets: (0..n)
            .map(|_| {
                (0..cfg.dims.out_channels)
                    .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                    .collect()
            })
            .collect(),
    }
}

/// Train `spec` under one schedule (unperturbed when `seed` is `None`)
/// with verification on; return rank 0's per-step loss bits.
fn losses_under(spec: EngineSpec, seed: Option<u64>) -> Vec<u32> {
    let cfg = VitConfig::test_tiny();
    let batch = make_batch(&cfg, 8);
    let mut cluster = Cluster::frontier().with_schedule_verification(true);
    if let Some(s) = seed {
        cluster = cluster.with_schedule_perturbation(s);
    }
    let (mut losses, report) = cluster.verify_run(WORLD, |ctx| {
        let mut e =
            build_engine(ctx, spec, cfg, AdamW::default(), TrainOptions::none(), 42).unwrap();
        (0..STEPS)
            .map(|_| e.train_step(ctx, &batch).unwrap().loss.to_bits())
            .collect::<Vec<u32>>()
    });
    assert!(
        report.is_clean(),
        "{} under seed {seed:?} has schedule findings:\n{report}",
        spec.name()
    );
    for l in &losses {
        assert_eq!(l, &losses[0], "ranks disagree under seed {seed:?}");
    }
    losses.swap_remove(0)
}

/// The exploration harness proper: a baseline schedule plus `SEEDS`
/// perturbed interleavings, all required to agree to the bit.
fn explore(spec: EngineSpec) {
    let baseline = losses_under(spec, None);
    assert_eq!(baseline.len(), STEPS);
    for seed in 0..SEEDS {
        let perturbed = losses_under(spec, Some(seed));
        assert_eq!(
            perturbed,
            baseline,
            "{} diverged under schedule seed {seed}: losses are \
             schedule-dependent",
            spec.name()
        );
    }
}

#[test]
fn fsdp_losses_are_schedule_independent() {
    explore(EngineSpec::Fsdp);
}

#[test]
fn hybrid_stop_losses_are_schedule_independent() {
    explore(EngineSpec::HybridStop(ParallelLayout::new(2, 2, 1)));
}

#[test]
fn distinct_seeds_produce_distinct_jitter_streams() {
    // Sanity on the harness itself: the perturbation is seed-deterministic
    // (same seed -> same decision stream) and seeds actually vary it —
    // otherwise "passes for 16 seeds" would test one schedule 16 times.
    use orbit::comm::SchedulePerturb;
    let stream = |seed: u64, rank: usize| {
        let p = SchedulePerturb::new(seed, rank);
        (0..64).map(|_| p.decision()).collect::<Vec<u64>>()
    };
    assert_eq!(stream(7, 0), stream(7, 0), "same seed must replay exactly");
    assert_ne!(stream(7, 0), stream(8, 0), "seeds must change the schedule");
    assert_ne!(stream(7, 0), stream(7, 1), "ranks must not share a stream");
}
