//! Chrome-trace export round-trip: run one Hybrid-STOP step on 4 simulated
//! ranks, serialize every rank's event log with `chrome_trace`, and verify
//! the JSON deserializes with events in simulated-time order and non-zero
//! wire bytes on every collective — the observable record of the paper's
//! Sec. III-B communication schedule.

use orbit::comm::{chrome_trace, Cluster, CommOp, TraceEvent};
use orbit::core::{build_engine, EngineSpec, ParallelLayout, TrainOptions};
use orbit::tensor::init::Rng;
use orbit::tensor::kernels::AdamW;
use orbit::vit::{Batch, VitConfig};

fn make_batch(cfg: &VitConfig, n: usize) -> Batch {
    let mut rng = Rng::seed(47);
    Batch {
        inputs: (0..n)
            .map(|_| {
                (0..cfg.dims.channels)
                    .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                    .collect()
            })
            .collect(),
        targets: (0..n)
            .map(|_| {
                (0..cfg.dims.out_channels)
                    .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                    .collect()
            })
            .collect(),
    }
}

#[test]
fn hybrid_stop_trace_round_trips_through_chrome_json() {
    let cfg = VitConfig::test_tiny();
    let batch = make_batch(&cfg, 4);
    let world = 4;
    let spec = EngineSpec::HybridStop(ParallelLayout::new(2, 2, 1));

    // One step on 4 ranks; each rank hands back its full event log.
    let per_rank = Cluster::frontier().run(world, |ctx| {
        let mut e =
            build_engine(ctx, spec, cfg, AdamW::default(), TrainOptions::none(), 42).unwrap();
        e.train_step(ctx, &batch).unwrap();
        ctx.clock.take_events()
    });
    let json = chrome_trace(&per_rank);

    let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    assert_eq!(v["displayTimeUnit"].as_str(), Some("ms"));
    let events = v["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty(), "a training step must produce events");

    let mut tids_seen = Vec::new();
    let mut last_ts = vec![f64::NEG_INFINITY; world];
    let mut comm_count = 0usize;
    let mut compute_count = 0usize;
    for ev in events {
        assert_eq!(ev["ph"].as_str(), Some("X"), "complete events only");
        let tid = ev["tid"].as_u64().expect("tid") as usize;
        assert!(tid < world, "tid {tid} out of range");
        if !tids_seen.contains(&tid) {
            tids_seen.push(tid);
        }
        // Within one rank's track the serializer emits events in program
        // order, which for a non-prefetched run is simulated-time order.
        let ts = ev["ts"].as_f64().expect("ts");
        let dur = ev["dur"].as_f64().expect("dur");
        assert!(ts >= last_ts[tid], "tid {tid}: ts {ts} went backwards");
        assert!(dur >= 0.0);
        last_ts[tid] = ts;

        let name = ev["name"].as_str().expect("name");
        match name {
            "compute" => {
                compute_count += 1;
                assert!(ev["args"]["flops"].as_f64().expect("flops") > 0.0);
            }
            "all_gather" | "reduce_scatter" | "all_reduce" | "broadcast" => {
                comm_count += 1;
                let wire = ev["args"]["wire_bytes"].as_f64().expect("wire_bytes");
                assert!(wire > 0.0, "{name} must move bytes on the wire");
                let ranks = ev["args"]["ranks"].as_array().expect("ranks");
                assert!(ranks.len() >= 2, "{name} spans a real group");
            }
            other => {
                // Point-to-point / barrier ops don't appear in this
                // engine's schedule.
                panic!("unexpected event {other}");
            }
        }
    }
    // All four ranks contribute a track, and both event kinds appear.
    assert_eq!(tids_seen.len(), world, "one Chrome-trace track per rank");
    assert!(comm_count > 0, "collectives must be traced");
    assert!(compute_count > 0, "compute intervals must be traced");
}

/// The pipelined Hybrid-STOP schedule is observable in the trace and
/// invisible in the numbers: with layer wrapping on, turning prefetch on
/// reproduces the blocking run's loss trajectory bit-for-bit, finishes no
/// later on the simulated clock, and leaves at least one prefetched
/// all-gather whose wire interval overlaps a compute interval — the next
/// block's shards are in flight while the current block is still busy.
#[test]
fn hybrid_prefetch_overlaps_compute_without_changing_losses() {
    let cfg = VitConfig::test_tiny();
    let batch = make_batch(&cfg, 4);
    let spec = EngineSpec::HybridStop(ParallelLayout::new(1, 2, 1));
    let run = |prefetch: bool| {
        Cluster::frontier().run(2, |ctx| {
            let opts = TrainOptions {
                layer_wrapping: true,
                prefetch,
                ..TrainOptions::none()
            };
            let mut e = build_engine(ctx, spec, cfg, AdamW::default(), opts, 42).unwrap();
            let losses: Vec<u32> = (0..3)
                .map(|_| e.train_step(ctx, &batch).unwrap().loss.to_bits())
                .collect();
            (losses, ctx.clock.now(), ctx.clock.take_events())
        })
    };
    let pipelined = run(true);
    let blocking = run(false);

    for r in 0..2 {
        assert_eq!(
            pipelined[r].0, blocking[r].0,
            "rank {r}: prefetch must change timing, never numerics"
        );
        assert!(
            pipelined[r].1 <= blocking[r].1,
            "rank {r}: overlap cannot make the step slower ({} !<= {})",
            pipelined[r].1,
            blocking[r].1
        );
    }

    // At least one prefetched all-gather is issued while a compute
    // interval is still running on the same rank's timeline.
    let events = &pipelined[0].2;
    let computes: Vec<(f64, f64)> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Compute { t_start, dur, .. } => Some((*t_start, *t_start + *dur)),
            _ => None,
        })
        .collect();
    let overlapped = events
        .iter()
        .filter_map(|e| e.comm())
        .filter(|c| c.op == CommOp::AllGather && c.prefetched)
        .any(|c| {
            computes
                .iter()
                .any(|&(s, end)| c.t_start < end && c.t_start + c.dur > s)
        });
    assert!(
        overlapped,
        "a prefetched all-gather must be in flight during compute"
    );
}
