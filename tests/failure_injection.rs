//! Failure-mode tests: simulated OOM surfaces as a typed error (never a
//! deadlock/panic) and the dynamic gradient scaler skips steps on
//! non-finite gradients, then recovers — the paper's BF16 safety net.

use orbit::comm::Cluster;
use orbit::core::{
    Engine, GradScaler, HybridStopEngine, ParallelLayout, SingleDeviceEngine, TrainOptions,
};
use orbit::tensor::init::Rng;
use orbit::tensor::kernels::AdamW;
use orbit::vit::{Batch, VitConfig, VitModel};

fn make_batch(cfg: &VitConfig, n: usize, scale: f32) -> Batch {
    let mut rng = Rng::seed(21);
    Batch {
        inputs: (0..n)
            .map(|_| {
                (0..cfg.dims.channels)
                    .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, scale))
                    .collect()
            })
            .collect(),
        targets: (0..n)
            .map(|_| {
                (0..cfg.dims.out_channels)
                    .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, scale))
                    .collect()
            })
            .collect(),
    }
}

#[test]
fn oom_at_construction_is_a_typed_error_on_every_rank() {
    let cfg = VitConfig::test_tiny();
    let results = Cluster::frontier()
        .with_device_capacity(1024)
        .run(4, |ctx| {
            let layout = ParallelLayout::new(2, 2, 1);
            HybridStopEngine::new(ctx, layout, cfg, AdamW::default(), TrainOptions::none(), 1).err()
        });
    for err in results {
        let err = err.expect("tiny capacity must OOM");
        assert_eq!(err.capacity, 1024);
        assert!(err.requested > 0);
    }
}

#[test]
fn oom_mid_step_reports_capacity_pressure() {
    // Enough memory for the persistent shards but not for the activation
    // allocation: the step itself must fail cleanly.
    let cfg = VitConfig::test_tiny();
    let batch = make_batch(&cfg, 2, 1.0);
    let persistent_bytes = {
        let mut m = VitModel::init(cfg, 1);
        16 * m.param_count() as u64
    };
    let results = Cluster::frontier()
        .with_device_capacity(persistent_bytes + 1024)
        .run(1, |ctx| {
            let mut e =
                SingleDeviceEngine::new(ctx, cfg, AdamW::default(), TrainOptions::none(), 1)
                    .expect("persistent state fits");
            e.train_step(ctx, &batch).err()
        });
    assert!(results[0].is_some(), "activation alloc must OOM");
}

#[test]
fn grad_scaler_skips_and_recovers_under_injected_overflow() {
    let mut scaler = GradScaler::with_scale(1024.0);
    // Healthy steps.
    for _ in 0..3 {
        let mut g = vec![1.0f32, -2.0];
        assert!(scaler.unscale_and_check(&mut g));
    }
    // Injected overflow: skip + backoff.
    let mut bad = vec![f32::INFINITY, 1.0];
    assert!(!scaler.unscale_and_check(&mut bad));
    assert_eq!(scaler.skipped_steps, 1);
    assert_eq!(scaler.scale(), 512.0);
    // Recovery: healthy steps proceed at the reduced scale.
    let mut g = vec![1.0f32];
    assert!(scaler.unscale_and_check(&mut g));
}

#[test]
fn mixed_precision_training_survives_extreme_inputs() {
    // Inputs large enough to stress BF16 dynamic range: training must not
    // produce NaN parameters; the scaler may skip steps but the run
    // completes and parameters stay finite.
    let cfg = VitConfig::test_tiny();
    let batch = make_batch(&cfg, 2, 50.0);
    let results = Cluster::frontier().run(2, |ctx| {
        let layout = ParallelLayout::new(1, 2, 1);
        let opts = TrainOptions {
            mixed_precision: true,
            layer_wrapping: true,
            ..TrainOptions::none()
        };
        let mut e = HybridStopEngine::new(ctx, layout, cfg, AdamW::default(), opts, 42).unwrap();
        let mut applied = 0;
        for _ in 0..4 {
            let s = e.train_step(ctx, &batch).unwrap();
            assert!(s.loss.is_finite(), "loss must stay finite");
            if s.applied {
                applied += 1;
            }
        }
        applied
    });
    // At least one step must eventually apply on every rank (the scaler
    // backs off until gradients are representable).
    for applied in results {
        assert!(applied >= 1, "training must make progress");
    }
}

#[test]
fn allocation_guard_frees_on_early_exit() {
    // An error path mid-step must not leak simulated memory.
    let results = Cluster::frontier()
        .with_device_capacity(10_000)
        .run(1, |ctx| {
            let before = ctx.device.in_use();
            {
                let _a = ctx.device.alloc(5000).unwrap();
                let err = ctx.device.alloc(8000);
                assert!(err.is_err());
            } // guard drops here
            ctx.device.in_use() == before
        });
    assert!(results[0]);
}
