//! Hybrid-STOP on a simulated 8-GPU cluster, verified against the
//! single-device reference.
//!
//! Demonstrates the paper's central claims in miniature:
//! - the distributed losses match the single-device reference exactly;
//! - the per-GPU persistent memory shrinks with the shard count;
//! - vanilla FSDP's transient full-model gather spikes peak memory, while
//!   Hybrid-STOP's layer-shard gathers keep it flat (paper Figs. 2 vs 3).
//!
//! ```text
//! cargo run --release --example hybrid_stop_demo
//! ```

use orbit::comm::Cluster;
use orbit::core::{Engine, FsdpEngine, HybridStopEngine, ParallelLayout, TrainOptions};
use orbit::tensor::init::Rng;
use orbit::tensor::kernels::AdamW;
use orbit::vit::loss::lat_weights;
use orbit::vit::{Batch, VitConfig, VitModel};

fn make_batch(cfg: &VitConfig, n: usize) -> Batch {
    let mut rng = Rng::seed(9);
    Batch {
        inputs: (0..n)
            .map(|_| {
                (0..cfg.dims.channels)
                    .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                    .collect()
            })
            .collect(),
        targets: (0..n)
            .map(|_| {
                (0..cfg.dims.out_channels)
                    .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                    .collect()
            })
            .collect(),
    }
}

fn main() {
    let cfg = VitConfig::ladder(0, 8);
    let batch = make_batch(&cfg, 8);
    let opt = AdamW::default();
    let steps = 3;

    // Single-device reference.
    let weights = lat_weights(cfg.dims.img_h);
    let mut reference = VitModel::init(cfg, 42);
    let mut state = reference.init_adam_state();
    let ref_losses: Vec<f32> = (0..steps)
        .map(|_| reference.train_step(&batch, &weights, &opt, &mut state))
        .collect();
    println!("single-device reference losses: {ref_losses:?}");

    // Hybrid-STOP on 8 simulated GPUs: tp=2 (in-node), fsdp=2 (cross-node),
    // ddp=2 (sub-clusters) — every level of paper Fig. 4 active at once.
    let layout = ParallelLayout::new(2, 2, 2);
    let results = Cluster::frontier().run(layout.world(), |ctx| {
        let mut engine = HybridStopEngine::new(ctx, layout, cfg, opt, TrainOptions::none(), 42)
            .expect("engine fits");
        let losses: Vec<f32> = (0..steps)
            .map(|_| engine.train_step(ctx, &batch).expect("step").loss)
            .collect();
        (losses, ctx.device.peak(), ctx.clock.now())
    });
    let (hs_losses, hs_peak, sim_t) = &results[0];
    println!("hybrid-STOP (tp=2,fsdp=2,ddp=2)     : {hs_losses:?}");
    println!(
        "  per-GPU peak memory: {:.2} MB, simulated time: {:.3} s",
        *hs_peak as f64 / 1e6,
        sim_t
    );
    for (a, b) in hs_losses.iter().zip(&ref_losses) {
        assert!(
            (a - b).abs() < 1e-3 * b.abs().max(1.0),
            "distributed != reference"
        );
    }
    println!("  losses match the reference (paper Eqns. (2)/(3) verified)");

    // Vanilla FSDP on 4 GPUs for the memory contrast.
    let fsdp_peak = Cluster::frontier().run(4, |ctx| {
        let mut engine = FsdpEngine::new(ctx, cfg, opt, TrainOptions::none(), 42).unwrap();
        engine.train_step(ctx, &batch).unwrap();
        ctx.device.peak()
    })[0];
    let hs4_peak = Cluster::frontier().run(4, |ctx| {
        let mut engine = HybridStopEngine::new(
            ctx,
            ParallelLayout::new(2, 2, 1),
            cfg,
            opt,
            TrainOptions::all_on(),
            42,
        )
        .unwrap();
        engine.train_step(ctx, &batch).unwrap();
        ctx.device.peak()
    })[0];
    println!(
        "\npeak memory on 4 GPUs: vanilla FSDP {:.2} MB vs Hybrid-STOP (all opts) {:.2} MB",
        fsdp_peak as f64 / 1e6,
        hs4_peak as f64 / 1e6
    );
    assert!(
        hs4_peak < fsdp_peak,
        "Hybrid-STOP must beat vanilla FSDP's peak"
    );
    println!("Hybrid-STOP avoids the full-model gather: lower peak, as in paper Fig. 3");
}
