//! Serve forecasts from a tensor-parallel replica and export the
//! session's Chrome trace — request lifecycle spans (queued / serve /
//! batch) interleaved with the TP forward's collectives — suitable for
//! `chrome://tracing`, Perfetto, or the `orbit-verify` schedule checker:
//!
//! ```text
//! cargo run --release --example serve -- /tmp/orbit_serve_trace.json
//! cargo run --release --bin orbit-verify -- /tmp/orbit_serve_trace.json
//! ```

use orbit::comm::chrome_trace;
use orbit::core::EngineSpec;
use orbit::serve::{BatchPolicy, ForecastRequest, ForecastServer, ServeConfig};
use orbit::tensor::init::Rng;
use orbit::vit::VitConfig;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "orbit_serve_trace.json".to_string());

    let cfg = VitConfig::test_tiny();
    let mut rng = Rng::seed(29);
    let requests: Vec<ForecastRequest> = (0..8)
        .map(|i| {
            let images = (0..cfg.dims.channels)
                .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                .collect();
            ForecastRequest::new(i as u64, images, 1e-4 * i as f64)
        })
        .collect();

    let server = ForecastServer::new(
        ServeConfig::new(EngineSpec::TensorParallel, 2, cfg)
            .with_policy(BatchPolicy::batched(4, 2e-4)),
    );
    let outcome = server.serve(requests);
    println!("serving stats: {}", outcome.stats);
    for r in &outcome.responses {
        println!(
            "  req {}: {} (latency {:.3e} s, batch of {})",
            r.id,
            if r.is_ok() { "ok" } else { "rejected" },
            r.timing.latency(),
            r.batch_size,
        );
    }
    assert_eq!(outcome.stats.duplicates, 0, "exactly-once serving");

    let json = chrome_trace(&outcome.trace);
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("wrote {} bytes to {path}", json.len());
}
