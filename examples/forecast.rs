//! Pre-train on the synthetic CMIP6 archive, fine-tune on the ERA5-like
//! reanalysis, and compare against simple baselines — the Fig. 9 pipeline
//! in miniature.
//!
//! ```text
//! cargo run --release --example forecast
//! ```

use orbit::data::loader::laptop_loader;
use orbit::data::metrics::{lat_weights, wacc};
use orbit::tensor::init::Rng;
use orbit::tensor::kernels::AdamW;
use orbit::vit::baselines::damped_persistence;
use orbit::vit::{VitConfig, VitModel};

fn main() {
    let lead_days = 7usize;
    let lead = lead_days * 4; // 6-hour steps
    let loader = laptop_loader(2024).with_lead(lead);
    let cfg = VitConfig::ladder(0, 8);
    let weights = lat_weights(cfg.dims.img_h);
    let opt = AdamW {
        lr: 1e-3,
        ..AdamW::default()
    };

    // Phase 1: pre-train on the multi-source CMIP6-like archive.
    let mut model = VitModel::init(cfg, 42);
    let mut state = model.init_adam_state();
    let mut rng = Rng::seed(5);
    println!("pre-training on 10 CMIP6-like sources...");
    for step in 0..80 {
        let batch = loader.pretrain_batch(&mut rng, 8);
        let loss = model.train_step(&batch, &weights, &opt, &mut state);
        if step % 20 == 0 {
            println!("  step {step:3}  wMSE {loss:.4}");
        }
    }

    // Phase 2: fine-tune on the ERA5-like reanalysis at the target lead.
    println!("fine-tuning on the ERA5-like reanalysis ({lead_days}-day lead)...");
    let mut ft_state = model.init_adam_state();
    for step in 0..60 {
        let batch = loader.finetune_batch(&mut rng, 8);
        let loss = model.train_step(&batch, &weights, &opt, &mut ft_state);
        if step % 20 == 0 {
            println!("  step {step:3}  wMSE {loss:.4}");
        }
    }

    // Phase 3: evaluate on the held-out test year vs baselines.
    let eval = loader.eval_batch(12);
    let clims = loader.output_climatologies();
    let out_idx = loader.generator.catalog().output_indices();
    let names = ["z500", "t850", "t2m", "u10"];
    println!("\n{lead_days}-day forecast wACC on the held-out year:");
    println!(
        "{:>6}  {:>8}  {:>12}  {:>11}",
        "var", "ORBIT", "persistence", "climatology"
    );
    for (v, name) in names.iter().enumerate() {
        let mut orbit_acc = 0.0;
        let mut persist_acc = 0.0;
        for (inputs, targets) in eval.inputs.iter().zip(&eval.targets) {
            let preds = model.predict(inputs);
            orbit_acc += wacc(&preds[v], &targets[v], &clims[v], &weights) / eval.len() as f32;
            let p = damped_persistence(&inputs[out_idx[v]], &clims[v], lead, 0.995);
            persist_acc += wacc(&p, &targets[v], &clims[v], &weights) / eval.len() as f32;
        }
        // Climatology scores exactly 0 by construction.
        println!(
            "{name:>6}  {orbit_acc:8.3}  {persist_acc:12.3}  {:11.3}",
            0.0
        );
    }
    println!("\n(climatology wACC is 0 by definition; beating persistence at a week's lead");
    println!(" requires actually learning the wave dynamics.)");
}
