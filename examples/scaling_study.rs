//! Frontier scaling study with the analytic performance model: what the
//! paper's Figs. 5-7 compute, as a library call.
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use orbit::frontier::{ModelDims, ParallelLayout, PerfModel, Strategy, TrainOptions};

fn main() {
    let model = PerfModel::default();
    let opts = TrainOptions::all_on();

    println!("=== Max trainable model size at 512 Frontier GPUs ===");
    for (name, strategy, opts) in [
        (
            "vanilla FSDP",
            Strategy::Fsdp,
            TrainOptions {
                layer_wrapping: false,
                ..opts
            },
        ),
        (
            "tensor parallelism",
            Strategy::TensorParallel,
            TrainOptions {
                activation_checkpointing: false,
                ..opts
            },
        ),
        ("Hybrid-STOP", Strategy::HybridStop, opts),
    ] {
        let (dims, p) = model.max_model(strategy, 512, &opts, 2, 48);
        println!(
            "  {name:20} {:6.1} B params  ({} embed x {} layers)",
            p as f64 / 1e9,
            dims.embed,
            dims.layers
        );
    }

    println!("\n=== 113 B model across the machine (48 channels, batch 2880) ===");
    let dims = ModelDims::orbit_113b(48);
    let base = ParallelLayout::new(8, 64, 1);
    for ddp in [1usize, 4, 16, 48, 96] {
        let layout = ParallelLayout::new(8, 64, ddp);
        let t =
            model.time_per_obs_at_global_batch(&dims, &layout, Strategy::HybridStop, &opts, 2880);
        let eff =
            model.scaling_efficiency(&dims, &base, &layout, Strategy::HybridStop, &opts, 2880);
        let pflops = model.flops_per_obs(&dims, &opts) / t / 1e15;
        println!(
            "  {:6} GPUs: {:>9.2e} s/obs, efficiency {:4.0}%, sustained {:5.0} PFLOPS",
            layout.world(),
            t,
            eff * 100.0,
            pflops
        );
    }

    println!("\n=== Memory anatomy of the 113 B model on 512 GPUs ===");
    let mem = model.memory(&dims, &base, Strategy::HybridStop, &opts, 2);
    println!(
        "  persistent (sharded weights+grads+Adam): {:6.2} GB",
        mem.persistent as f64 / 1e9
    );
    println!(
        "  transient layer-shard gather:            {:6.2} GB",
        mem.gather as f64 / 1e9
    );
    println!(
        "  activations (checkpointed):              {:6.2} GB",
        mem.activations as f64 / 1e9
    );
    println!(
        "  workspace:                               {:6.2} GB",
        mem.workspace as f64 / 1e9
    );
    println!(
        "  total of 64 GB capacity:                 {:6.2} GB",
        mem.total() as f64 / 1e9
    );
}
