//! Export a Chrome trace of one Hybrid-STOP training step, suitable for
//! `chrome://tracing`, Perfetto, or the `orbit-verify` schedule checker:
//!
//! ```text
//! cargo run --release --example export_trace -- /tmp/orbit_trace.json
//! cargo run --release --bin orbit-verify -- /tmp/orbit_trace.json
//! ```

use orbit::comm::{chrome_trace, Cluster};
use orbit::core::{build_engine, EngineSpec, ParallelLayout, TrainOptions};
use orbit::tensor::init::Rng;
use orbit::tensor::kernels::AdamW;
use orbit::vit::{Batch, VitConfig};

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "orbit_trace.json".to_string());

    let cfg = VitConfig::test_tiny();
    let mut rng = Rng::seed(47);
    let batch = Batch {
        inputs: (0..4)
            .map(|_| {
                (0..cfg.dims.channels)
                    .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                    .collect()
            })
            .collect(),
        targets: (0..4)
            .map(|_| {
                (0..cfg.dims.out_channels)
                    .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                    .collect()
            })
            .collect(),
    };

    let spec = EngineSpec::HybridStop(ParallelLayout::new(2, 2, 1));
    let per_rank = Cluster::frontier().run(4, |ctx| {
        let mut e =
            build_engine(ctx, spec, cfg, AdamW::default(), TrainOptions::none(), 42).unwrap();
        e.train_step(ctx, &batch).unwrap();
        ctx.clock.take_events()
    });

    let json = chrome_trace(&per_rank);
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("wrote {} bytes to {path}", json.len());
}
