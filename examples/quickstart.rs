//! Quickstart: train a small ORBIT ViT on synthetic climate data and make
//! a forecast.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use orbit::data::loader::laptop_loader;
use orbit::data::metrics::{lat_weights, wacc};
use orbit::tensor::init::Rng;
use orbit::tensor::kernels::AdamW;
use orbit::vit::{VitConfig, VitModel};

fn main() {
    // 1. Data: a deterministic synthetic climate archive (8 variables on a
    //    32x64 lat/lon grid; see orbit-data for the taxonomy).
    let loader = laptop_loader(7).with_lead(4); // 1-day forecasts
    let mut rng = Rng::seed(1);

    // 2. Model: the smallest rung of the ORBIT ladder (a ~0.17 M-parameter
    //    stand-in for the paper's 115 M config with the same shape ratios).
    let cfg = VitConfig::ladder(0, 8);
    let mut model = VitModel::init(cfg, 42);
    println!(
        "model: {} parameters ({} embed, {} layers, {} heads, {} channels)",
        model.param_count(),
        cfg.dims.embed,
        cfg.dims.layers,
        cfg.dims.heads,
        cfg.dims.channels
    );

    // 3. Train on the pre-training archive for a few hundred samples.
    let weights = lat_weights(cfg.dims.img_h);
    let opt = AdamW {
        lr: 1e-3,
        ..AdamW::default()
    };
    let mut state = model.init_adam_state();
    for step in 0..60 {
        let batch = loader.pretrain_batch(&mut rng, 8);
        let loss = model.train_step(&batch, &weights, &opt, &mut state);
        if step % 10 == 0 {
            println!("step {step:3}  wMSE {loss:.4}");
        }
    }

    // 4. Forecast the held-out test year and score with the paper's wACC
    //    metric (anomaly correlation vs climatology).
    let eval = loader.eval_batch(8);
    let clims = loader.output_climatologies();
    let names = ["z500", "t850", "t2m", "u10"];
    println!("\n1-day forecast skill (wACC, higher is better):");
    for (v, name) in names.iter().enumerate() {
        let mut acc = 0.0;
        for (inputs, targets) in eval.inputs.iter().zip(&eval.targets) {
            let preds = model.predict(inputs);
            acc += wacc(&preds[v], &targets[v], &clims[v], &weights) / eval.len() as f32;
        }
        println!("  {name}: {acc:.3}");
    }
}
