//! Distributed pre-training end to end: Hybrid-STOP on 8 simulated GPUs
//! consuming the synthetic CMIP6 archive — the full paper pipeline in one
//! binary (cluster + parallelism + model + data).
//!
//! ```text
//! cargo run --release --example distributed_pretrain
//! ```

use orbit::comm::Cluster;
use orbit::core::{Engine, HybridStopEngine, ParallelLayout, TrainOptions};
use orbit::data::loader::laptop_loader;
use orbit::tensor::init::Rng;
use orbit::tensor::kernels::AdamW;
use orbit::vit::VitConfig;

fn main() {
    let cfg = VitConfig::ladder(0, 8);
    let layout = ParallelLayout::new(2, 2, 2); // all three levels of Fig. 4
    let loader = laptop_loader(123).with_lead(4);
    let steps = 12;
    let global_batch = 8;

    // Pre-generate the batch schedule so every rank sees the same data
    // (the loader is deterministic, so this is cheap and exact).
    let mut rng = Rng::seed(55);
    let batches: Vec<_> = (0..steps)
        .map(|_| loader.pretrain_batch(&mut rng, global_batch))
        .collect();

    println!(
        "pre-training a {}-param ORBIT ViT on {} simulated GPUs (tp=2, fsdp=2, ddp=2)",
        cfg.dims.param_count(),
        layout.world()
    );
    let results = Cluster::frontier().run(layout.world(), |ctx| {
        let opts = TrainOptions::all_on();
        let mut engine = HybridStopEngine::new(
            ctx,
            layout,
            cfg,
            AdamW {
                lr: 1e-3,
                ..AdamW::default()
            },
            opts,
            42,
        )
        .expect("engine fits");
        let mut losses = Vec::new();
        for batch in &batches {
            let stats = engine.train_step(ctx, batch).expect("step");
            losses.push(stats.loss);
        }
        (
            losses,
            ctx.device.peak(),
            ctx.clock.now(),
            ctx.clock.comm_seconds(),
        )
    });

    let (losses, peak, sim_t, comm_t) = &results[0];
    println!("\nstep  wMSE (global batch {global_batch}, BF16 mixed precision, ckpt, prefetch)");
    for (i, l) in losses.iter().enumerate() {
        println!("{i:4}  {l:.4}");
    }
    println!(
        "\nper-GPU peak memory {:.2} MB | simulated Frontier time {:.3} s ({:.0}% comm)",
        *peak as f64 / 1e6,
        sim_t,
        100.0 * comm_t / sim_t.max(1e-12),
    );
    assert!(
        losses.last().unwrap() < losses.first().unwrap(),
        "distributed pre-training must reduce the loss"
    );
    println!("loss decreased across distributed training — pipeline verified");
}
