//! ORBIT-RS umbrella crate: re-exports the full workspace public API.
//!
//! See the README for a quickstart and DESIGN.md for the system inventory.

#![forbid(unsafe_code)]

pub use orbit_comm as comm;
pub use orbit_core as core;
pub use orbit_data as data;
pub use orbit_fleet as fleet;
pub use orbit_frontier as frontier;
pub use orbit_serve as serve;
pub use orbit_tensor as tensor;
pub use orbit_vit as vit;
