//! `orbit-verify`: check an exported Chrome trace for collective-schedule
//! defects.
//!
//! ```text
//! orbit-verify <trace.json>
//! ```
//!
//! The input is the JSON produced by `orbit::comm::chrome_trace` (the same
//! file `chrome://tracing` or Perfetto renders). Events with category
//! `comm` / `comm.prefetch` are replayed through the cross-rank schedule
//! checker (`orbit::comm::verify_schedule`): mismatched collective
//! kinds/orders within a group, payload-size and wire-byte disagreements,
//! shard-coverage gaps, group-membership violations, and unmatched
//! point-to-point traffic each produce a named diagnostic. An exported
//! trace only contains *completed* ops, so the liveness checks (leaks,
//! lost wakeups, deadlock cycles) run live inside the cluster instead —
//! see `Cluster::verify_run`.
//!
//! Exit status: 0 clean, 1 findings, 2 usage or parse error.

use orbit::comm::{verify_schedule, CommOp, ScheduleRecord};
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("orbit-verify: {msg}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        return fail("usage: orbit-verify <trace.json>");
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };
    let root: serde_json::Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => return fail(&format!("{path} is not valid JSON: {e}")),
    };
    let Some(events) = root.get("traceEvents").and_then(|v| v.as_array()) else {
        return fail(&format!(
            "{path} has no traceEvents array (not a Chrome trace?)"
        ));
    };

    let mut records: Vec<ScheduleRecord> = Vec::new();
    let mut skipped = 0usize;
    for ev in events {
        let cat = ev.get("cat").and_then(|v| v.as_str()).unwrap_or("");
        if cat != "comm" && cat != "comm.prefetch" {
            continue;
        }
        let parsed = (|| {
            let op = CommOp::from_name(ev.get("name")?.as_str()?)?;
            let rank = ev.get("tid")?.as_u64()? as usize;
            let args = ev.get("args")?;
            let ranks: Vec<usize> = args
                .get("ranks")?
                .as_array()?
                .iter()
                .map(|r| r.as_u64().map(|v| v as usize))
                .collect::<Option<_>>()?;
            let elements = args.get("elements")?.as_u64()? as usize;
            let wire_bytes = args.get("wire_bytes")?.as_f64()?;
            // ts is microseconds; records carry seconds.
            let t_issue = ev.get("ts")?.as_f64()? / 1e6;
            let mut r =
                ScheduleRecord::completed(rank, ranks, op, elements).with_wire_bytes(wire_bytes);
            r.t_issue = t_issue;
            Some(r)
        })();
        match parsed {
            Some(r) => records.push(r),
            None => skipped += 1,
        }
    }
    if skipped > 0 {
        eprintln!("orbit-verify: warning: skipped {skipped} malformed comm event(s)");
    }

    let report = verify_schedule(&records);
    print!("{report}");
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
