//! `orbit-lint`: statically certify the communication program of every
//! planner-emittable engine configuration — no simulation run.
//!
//! ```text
//! orbit-lint [--worlds 1,2,4,8] [--batch 8]
//! ```
//!
//! For each world size, every candidate the auto-parallel planner can
//! emit (strategy × layout × wrap/prefetch options) is driven through
//! symbolic extraction (`orbit::core::extract_comm_plan`): the engine is
//! built on abstract communicators and one step records its per-rank op
//! streams, layout transitions, and peak memory. The static passes
//! (`orbit::comm::analyze`) then check cross-rank collective matching,
//! deadlock freedom, layout soundness against the dtensor reshard
//! algebra, p2p balance, and the memory budget. Tensor-parallel and
//! pipeline shapes the planner's model shape cannot emit are linted
//! explicitly with adjusted head/layer counts, so all six engines are
//! covered at every world.
//!
//! Exit status: 0 every configuration clean, 1 findings, 2 usage error.

use orbit::comm::analyze;
use orbit::core::{extract_comm_plan, spec_for_plan, EngineSpec, TrainOptions};
use orbit::frontier::planner::Planner;
use orbit::frontier::FrontierMachine;
use orbit::vit::VitConfig;
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("orbit-lint: {msg}");
    ExitCode::from(2)
}

fn opts_tag(opts: &TrainOptions) -> String {
    let mut tags = Vec::new();
    if opts.layer_wrapping {
        tags.push("wrap");
    }
    if opts.prefetch {
        tags.push("prefetch");
    }
    if opts.mixed_precision {
        tags.push("bf16");
    }
    if tags.is_empty() {
        tags.push("base");
    }
    tags.join("+")
}

fn main() -> ExitCode {
    let mut worlds: Vec<usize> = vec![1, 2, 4, 8];
    let mut batch: usize = 8;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--worlds" => {
                let Some(list) = args.next() else {
                    return fail("--worlds needs a comma-separated list");
                };
                match list.split(',').map(str::parse).collect() {
                    Ok(w) => worlds = w,
                    Err(_) => return fail(&format!("bad world list {list:?}")),
                }
            }
            "--batch" => {
                let Some(b) = args.next().and_then(|b| b.parse().ok()) else {
                    return fail("--batch needs a positive integer");
                };
                batch = b;
            }
            other => return fail(&format!("unknown argument {other:?}")),
        }
    }

    let machine = FrontierMachine::default();
    let planner = Planner::new(machine.clone());
    let cfg = VitConfig::test_tiny();
    let mut checked = 0usize;
    let mut dirty = 0usize;

    let mut lint_one = |world: usize, spec: EngineSpec, cfg: VitConfig, opts: TrainOptions| {
        let plan = extract_comm_plan(&machine, world, spec, cfg, opts);
        let report = analyze(&plan);
        checked += 1;
        let verdict = if report.is_clean() { "PASS" } else { "FAIL" };
        println!(
            "{verdict}  world={world:<2} engine={:<15} opts={:<13} ops={}",
            spec.name(),
            opts_tag(&opts),
            plan.ops.len(),
        );
        if !report.is_clean() {
            dirty += 1;
            for line in report.to_string().lines() {
                println!("      {line}");
            }
        }
    };

    for &world in &worlds {
        if world == 0 {
            return fail("world sizes must be positive");
        }
        // Everything the planner can emit at this world: strategy x
        // layout x option variants, already memory-filtered.
        match planner.plan(&cfg.dims, world, batch) {
            Ok(plan) => {
                for cand in &plan.candidates {
                    lint_one(world, spec_for_plan(cand), cfg, cand.opts);
                }
            }
            Err(e) => {
                eprintln!("orbit-lint: planner has no candidates at world {world}: {e}");
            }
        }
        // Shapes the planner's tiny model blocks (tensor parallelism
        // needs heads % world == 0; the planner never proposes pipeline):
        // lint them against an adjusted config so the full engine matrix
        // is certified at every world.
        if !cfg.dims.heads.is_multiple_of(world) {
            let mut tp_cfg = cfg;
            tp_cfg.dims.heads = world;
            lint_one(
                world,
                EngineSpec::TensorParallel,
                tp_cfg,
                TrainOptions::none(),
            );
        }
        let mut pipe_cfg = cfg;
        pipe_cfg.dims.layers = pipe_cfg.dims.layers.max(world);
        lint_one(world, EngineSpec::Pipeline, pipe_cfg, TrainOptions::none());
    }

    println!("orbit-lint: {checked} configuration(s) checked, {dirty} with findings");
    if dirty == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
