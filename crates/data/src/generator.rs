//! Deterministic synthetic climate-field generation.
//!
//! Each variable's field at time `t` (6-hour steps) is
//!
//! ```text
//! field(x, y, t) = base(var, y)                          // climatology
//!                + sum_j A_j cos(k_j . (x,y) - w_j t + phi_j)   // planetary waves
//!                + eps * noise(var, t, x, y)              // unpredictable weather
//! ```
//!
//! The waves advect at source-specific speeds, so a model seeing time `t`
//! can genuinely predict `t + lead` (up to the noise floor) — the property
//! the fine-tuning experiments (paper Figs. 9/10) rely on. Ten "CMIP6
//! sources" perturb wave amplitudes and speeds (inter-model spread); the
//! "ERA5" source uses unperturbed dynamics plus observation noise.
//!
//! Every value is a pure function of `(seed, source, variable, time)`, so
//! the dataset is random-access and identical across ranks — no files.

use crate::catalog::{VarKind, VariableCatalog};
use orbit_tensor::Tensor;
use std::f32::consts::TAU;

/// The ten CMIP6 model sources used for pre-training (paper Sec. IV).
pub const CMIP6_SOURCES: [&str; 10] = [
    "MPI-ESM", "AWI-ESM", "HAMMOZ", "CMCC", "TAI-ESM", "NOR", "EC", "MIRO", "MRI", "NESM",
];

/// Source id for the ERA5-like reanalysis (fine-tuning data).
pub const ERA5_SOURCE: usize = 100;

/// Time steps per simulated year at 6-hour cadence.
pub const STEPS_PER_YEAR: usize = 1460;

/// Number of predictable planetary waves per variable.
const N_WAVES: usize = 4;
/// Number of unpredictable high-frequency components.
const N_NOISE: usize = 3;

/// SplitMix64: cheap, high-quality stateless hashing for parameters.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform f32 in [0, 1) from a hash key.
fn unit(key: u64) -> f32 {
    (mix(key) >> 40) as f32 / (1u64 << 24) as f32
}

/// The generator.
#[derive(Debug, Clone)]
pub struct ClimateGenerator {
    pub h: usize,
    pub w: usize,
    catalog: VariableCatalog,
    seed: u64,
}

struct Wave {
    amp: f32,
    kx: f32,
    ky: f32,
    omega: f32,
    phase: f32,
}

impl ClimateGenerator {
    pub fn new(h: usize, w: usize, catalog: VariableCatalog, seed: u64) -> Self {
        ClimateGenerator {
            h,
            w,
            catalog,
            seed,
        }
    }

    pub fn catalog(&self) -> &VariableCatalog {
        &self.catalog
    }

    /// Latitude (degrees) of row `y`.
    fn lat(&self, y: usize) -> f32 {
        -90.0 + 180.0 * (y as f32 + 0.5) / self.h as f32
    }

    /// Climatological base profile: variable-kind-specific latitude
    /// structure plus a fixed spatial texture (continents, orography).
    fn base_value(&self, var: usize, x: usize, y: usize) -> f32 {
        let lat = self.lat(y).to_radians();
        let kind = self.catalog.variables()[var].kind;
        let profile = match kind {
            // Temperature-like: warm equator, cold poles.
            VarKind::Surface | VarKind::Atmospheric { .. }
                if self.catalog.variables()[var].name.starts_with('t') =>
            {
                1.2 * lat.cos() - 0.4
            }
            // Zonal wind: mid-latitude jets of opposite sign.
            _ if self.catalog.variables()[var].name.starts_with('u') => (2.0 * lat).sin() * 0.9,
            // Geopotential: monotone pole-to-pole gradient.
            _ if self.catalog.variables()[var].name.starts_with('z') => lat.sin() * 0.8,
            _ => 0.5 * lat.cos(),
        };
        // Fixed per-variable texture (stationary "continents").
        let key = self.seed ^ mix(0xC0FFEE ^ var as u64);
        let tx = unit(key ^ 11) * 3.0 + 1.0;
        let ty = unit(key ^ 13) * 2.0 + 1.0;
        let texture = 0.15
            * (TAU * (tx * x as f32 / self.w as f32)).sin()
            * (TAU * (ty * y as f32 / self.h as f32)).cos();
        profile + texture
    }

    fn waves(&self, source: usize, var: usize, predictable: bool) -> Vec<Wave> {
        // ERA5 shares the "truth" wave set (source perturbation = 1);
        // CMIP6 sources perturb amplitude and speed.
        let (amp_factor, speed_factor) = if source == ERA5_SOURCE {
            (1.0, 1.0)
        } else {
            // Systematic inter-model spread: the ten sources are ordered
            // from slow/weak to fast/strong dynamics, so the mean of ALL
            // ten brackets the reanalysis while any 5-source subset
            // carries a bias — the mechanism that gives broader
            // pre-training its transfer advantage (paper Fig. 9: ORBIT's
            // 10 sources vs ClimaX's 5).
            let k = self.seed ^ mix(0x50_0000 ^ source as u64);
            let spread = (source.min(9)) as f32 / 9.0;
            (
                0.80 + 0.40 * spread + 0.10 * unit(k ^ 3),
                0.85 + 0.30 * spread + 0.05 * unit(k ^ 5),
            )
        };
        let n = if predictable { N_WAVES } else { N_NOISE };
        (0..n)
            .map(|j| {
                let key =
                    self.seed ^ mix((var as u64) << 20 | (j as u64) << 2 | u64::from(!predictable));
                let kx = (1 + (mix(key ^ 1) % 5)) as f32;
                let ky = (mix(key ^ 2) % 3) as f32;
                if predictable {
                    Wave {
                        amp: (0.25 + 0.35 * unit(key ^ 3)) * amp_factor,
                        kx,
                        ky,
                        // Advection: omega proportional to kx (non-dispersive
                        // zonal propagation), source-specific speed.
                        omega: 0.05 * kx * speed_factor * (1.0 + 0.5 * unit(key ^ 4)),
                        phase: TAU * unit(key ^ 5),
                    }
                } else {
                    Wave {
                        amp: 0.06 + 0.05 * unit(key ^ 3),
                        kx: kx + 3.0,
                        ky: ky + 2.0,
                        // Fast, incommensurate frequencies: effectively
                        // unpredictable at multi-step leads.
                        omega: 1.3 + 2.1 * unit(key ^ 4),
                        phase: TAU * unit(key ^ 5),
                    }
                }
            })
            .collect()
    }

    /// The field for `var` at time step `t` from `source`.
    pub fn field(&self, source: usize, var: usize, t: usize) -> Tensor {
        let kind = self.catalog.variables()[var].kind;
        let mut img = Tensor::zeros(self.h, self.w);
        // Static variables are time-invariant.
        let (pred, noise) = if kind == VarKind::Static {
            (Vec::new(), Vec::new())
        } else {
            (
                self.waves(source, var, true),
                self.waves(source, var, false),
            )
        };
        let tf = t as f32;
        for y in 0..self.h {
            for x in 0..self.w {
                let mut v = self.base_value(var, x, y);
                let xs = x as f32 / self.w as f32;
                let ys = y as f32 / self.h as f32;
                for wv in pred.iter().chain(&noise) {
                    v +=
                        wv.amp * (TAU * (wv.kx * xs + wv.ky * ys) - wv.omega * tf + wv.phase).cos();
                }
                // ERA5 carries observation noise (per-pixel, per-time).
                if source == ERA5_SOURCE && kind != VarKind::Static {
                    let key = self.seed
                        ^ mix((var as u64) << 40 ^ (t as u64) << 20 ^ (y as u64) << 8 ^ x as u64);
                    v += 0.05 * (unit(key) - 0.5);
                }
                img.set(y, x, v);
            }
        }
        img
    }

    /// All catalog variables at time `t` — one observation data point
    /// (`C` images of `H x W`).
    pub fn observation(&self, source: usize, t: usize) -> Vec<Tensor> {
        (0..self.catalog.len())
            .map(|v| self.field(source, v, t))
            .collect()
    }

    /// An "NWP model" forecast of `var` valid at `t + lead`: the ERA5
    /// predictable dynamics (climatology + planetary waves) integrated
    /// with a relative phase-speed error `speed_error` that grows the
    /// forecast error with lead time — the IFS-like baseline of Fig. 9.
    /// The unpredictable weather-noise component is (correctly) absent
    /// from the forecast.
    pub fn nwp_forecast(&self, var: usize, t: usize, lead: usize, speed_error: f32) -> Tensor {
        let mut img = Tensor::zeros(self.h, self.w);
        let waves = self.waves(ERA5_SOURCE, var, true);
        let valid = (t + lead) as f32;
        for y in 0..self.h {
            for x in 0..self.w {
                let mut v = self.base_value(var, x, y);
                let xs = x as f32 / self.w as f32;
                let ys = y as f32 / self.h as f32;
                for wv in &waves {
                    // Phase error accumulates only over the forecast lead:
                    // the analysis at t is exact.
                    let omega_model = wv.omega * (1.0 + speed_error);
                    let phase = TAU * (wv.kx * xs + wv.ky * ys)
                        - wv.omega * t as f32
                        - omega_model * lead as f32
                        + wv.phase;
                    let _ = valid;
                    v += wv.amp * phase.cos();
                }
                img.set(y, x, v);
            }
        }
        img
    }

    /// The time-mean climatology of a variable (the wave terms average
    /// out, leaving the base state) — used for anomaly metrics.
    pub fn climatology(&self, var: usize) -> Tensor {
        let mut img = Tensor::zeros(self.h, self.w);
        for y in 0..self.h {
            for x in 0..self.w {
                img.set(y, x, self.base_value(var, x, y));
            }
        }
        img
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator() -> ClimateGenerator {
        ClimateGenerator::new(16, 32, VariableCatalog::laptop_8(), 7)
    }

    #[test]
    fn deterministic_random_access() {
        let g = generator();
        assert_eq!(g.field(0, 5, 100), g.field(0, 5, 100));
        let g2 = ClimateGenerator::new(16, 32, VariableCatalog::laptop_8(), 7);
        assert_eq!(g.field(3, 2, 55), g2.field(3, 2, 55));
    }

    #[test]
    fn different_seeds_sources_vars_times_differ() {
        let g = generator();
        let base = g.field(0, 5, 100);
        assert_ne!(base, g.field(1, 5, 100), "sources differ");
        assert_ne!(base, g.field(0, 6, 100), "variables differ");
        assert_ne!(base, g.field(0, 5, 101), "times differ");
        let g2 = ClimateGenerator::new(16, 32, VariableCatalog::laptop_8(), 8);
        assert_ne!(base, g2.field(0, 5, 100), "seeds differ");
    }

    #[test]
    fn static_variables_are_time_invariant() {
        let g = generator();
        // Var 0 = orography (static).
        assert_eq!(g.field(0, 0, 1), g.field(0, 0, 999));
    }

    #[test]
    fn fields_are_bounded_and_finite() {
        let g = generator();
        for v in 0..g.catalog().len() {
            let f = g.field(ERA5_SOURCE, v, 123);
            assert!(f.all_finite());
            assert!(f.max_abs() < 10.0, "var {v} amplitude {}", f.max_abs());
        }
    }

    #[test]
    fn temporal_autocorrelation_decays_with_lead() {
        // Adjacent steps are more similar than distant steps: the
        // "predictability horizon" structure.
        let g = generator();
        let var = 5; // z_500 (dynamic)
        let a = g.field(0, var, 200);
        let near = g.field(0, var, 201);
        let far = g.field(0, var, 260);
        let d_near = a.sub(&near).norm();
        let d_far = a.sub(&far).norm();
        assert!(
            d_near < d_far,
            "1-step diff {d_near} should be smaller than 60-step diff {d_far}"
        );
    }

    #[test]
    fn climatology_approximates_time_mean() {
        let g = generator();
        let var = 5;
        let clim = g.climatology(var);
        // Average 64 well-separated snapshots; waves should cancel toward
        // the base state.
        let mut mean = Tensor::zeros(16, 32);
        let n = 64;
        for i in 0..n {
            mean.add_assign(&g.field(0, var, i * 37 + 11));
        }
        mean.scale(1.0 / n as f32);
        let err = mean.sub(&clim).norm() / clim.norm().max(1.0);
        assert!(err < 0.45, "relative deviation {err}");
    }

    #[test]
    fn nwp_forecast_error_grows_with_lead() {
        let g = generator();
        let var = 5; // z_500
        let t = 300;
        // Short lead beats long lead against the truth.
        let truth_1 = g.field(ERA5_SOURCE, var, t + 4);
        let fc_1 = g.nwp_forecast(var, t, 4, 0.03);
        let truth_56 = g.field(ERA5_SOURCE, var, t + 56);
        let fc_56 = g.nwp_forecast(var, t, 56, 0.03);
        let e1 = fc_1.sub(&truth_1).norm();
        let e56 = fc_56.sub(&truth_56).norm();
        assert!(
            e1 < e56,
            "1-step error {e1} should beat 56-step error {e56}"
        );
    }

    #[test]
    fn nwp_forecast_at_zero_lead_is_noise_free_analysis() {
        let g = generator();
        let var = 5;
        let t = 123;
        let fc = g.nwp_forecast(var, t, 0, 0.05);
        let truth = g.field(ERA5_SOURCE, var, t);
        // Differs only by obs noise + the unpredictable component
        // (bounded amplitude).
        let err = fc.sub(&truth).max_abs();
        assert!(err < 1.0, "analysis error {err} bounded by noise amplitude");
    }

    #[test]
    fn era5_noisier_than_cmip6_truth() {
        // Same dynamics, but ERA5 adds observation noise.
        let g = generator();
        let e1 = g.field(ERA5_SOURCE, 5, 42);
        // Rebuild without noise by comparing against a source with factors
        // (1,1) — approximate: the difference between two times should not
        // be pure noise. Just check ERA5 differs from every CMIP6 source.
        for s in 0..10 {
            assert_ne!(e1, g.field(s, 5, 42));
        }
    }
}
