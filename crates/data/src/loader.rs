//! Batched sampling: pre-training across CMIP6 sources, fine-tuning and
//! evaluation on the ERA5-like reanalysis with a year-based split
//! (paper Sec. IV: 1979-2018 train, 2019 validation, 2020 test).

use crate::catalog::VariableCatalog;
use crate::generator::{ClimateGenerator, CMIP6_SOURCES, ERA5_SOURCE, STEPS_PER_YEAR};
use orbit_tensor::init::Rng;
use orbit_vit::Batch;

/// Sampler producing (input @ t, target @ t + lead) pairs.
#[derive(Debug, Clone)]
pub struct DataLoader {
    pub generator: ClimateGenerator,
    /// Forecast lead in 6-hour steps (4 = 1 day, 56 = 14 days, 120 = 30 days).
    pub lead_steps: usize,
    /// Steps of simulated record per source available for pre-training.
    pub pretrain_steps: usize,
    /// Train/val/test years for the reanalysis split.
    pub train_years: std::ops::Range<usize>,
    pub val_year: usize,
    pub test_year: usize,
}

impl DataLoader {
    /// Loader over the given generator with a 1-day default lead.
    pub fn new(generator: ClimateGenerator) -> Self {
        DataLoader {
            generator,
            lead_steps: 4,
            pretrain_steps: 8 * STEPS_PER_YEAR,
            train_years: 0..4,
            val_year: 4,
            test_year: 5,
        }
    }

    /// Change the forecast lead (in 6-hour steps).
    pub fn with_lead(mut self, lead_steps: usize) -> Self {
        self.lead_steps = lead_steps;
        self
    }

    fn sample_pair(
        &self,
        source: usize,
        t: usize,
    ) -> (Vec<orbit_tensor::Tensor>, Vec<orbit_tensor::Tensor>) {
        let inputs = self.generator.observation(source, t);
        let out_idx = self.generator.catalog().output_indices();
        let targets = out_idx
            .iter()
            .map(|&v| self.generator.field(source, v, t + self.lead_steps))
            .collect();
        (inputs, targets)
    }

    /// A pre-training batch: random CMIP6 source and time per sample.
    pub fn pretrain_batch(&self, rng: &mut Rng, n: usize) -> Batch {
        self.pretrain_batch_sources(rng, n, CMIP6_SOURCES.len())
    }

    /// A pre-training batch restricted to the first `n_sources` CMIP6
    /// sources (ClimaX pre-trained on 5 of the 10; paper Sec. I).
    pub fn pretrain_batch_sources(&self, rng: &mut Rng, n: usize, n_sources: usize) -> Batch {
        assert!(n_sources >= 1 && n_sources <= CMIP6_SOURCES.len());
        let mut batch = Batch::default();
        for _ in 0..n {
            let source = rng.index(n_sources);
            let t = rng.index(self.pretrain_steps - self.lead_steps);
            let (i, o) = self.sample_pair(source, t);
            batch.inputs.push(i);
            batch.targets.push(o);
        }
        batch
    }

    /// A fine-tuning batch whose targets are the **full state** (all input
    /// channels) at `t + lead` — used to train autoregressive rollout
    /// baselines (Stormer-like, FourCastNet-like).
    pub fn finetune_batch_full_state(&self, rng: &mut Rng, n: usize) -> Batch {
        let lo = self.train_years.start * STEPS_PER_YEAR;
        let hi = self.train_years.end * STEPS_PER_YEAR - self.lead_steps;
        let mut batch = Batch::default();
        for _ in 0..n {
            let t = lo + rng.index(hi - lo);
            batch
                .inputs
                .push(self.generator.observation(ERA5_SOURCE, t));
            batch
                .targets
                .push(self.generator.observation(ERA5_SOURCE, t + self.lead_steps));
        }
        batch
    }

    /// A fine-tuning batch from the reanalysis training years.
    pub fn finetune_batch(&self, rng: &mut Rng, n: usize) -> Batch {
        let lo = self.train_years.start * STEPS_PER_YEAR;
        let hi = self.train_years.end * STEPS_PER_YEAR - self.lead_steps;
        let mut batch = Batch::default();
        for _ in 0..n {
            let t = lo + rng.index(hi - lo);
            let (i, o) = self.sample_pair(ERA5_SOURCE, t);
            batch.inputs.push(i);
            batch.targets.push(o);
        }
        batch
    }

    /// Evenly-spaced evaluation samples from the held-out test year.
    pub fn eval_batch(&self, n: usize) -> Batch {
        let lo = self.test_year * STEPS_PER_YEAR;
        let span = STEPS_PER_YEAR - self.lead_steps;
        let mut batch = Batch::default();
        for k in 0..n {
            let t = lo + k * span / n;
            let (i, o) = self.sample_pair(ERA5_SOURCE, t);
            batch.inputs.push(i);
            batch.targets.push(o);
        }
        batch
    }

    /// Validation samples from the validation year.
    pub fn val_batch(&self, n: usize) -> Batch {
        let lo = self.val_year * STEPS_PER_YEAR;
        let span = STEPS_PER_YEAR - self.lead_steps;
        let mut batch = Batch::default();
        for k in 0..n {
            let t = lo + k * span / n;
            let (i, o) = self.sample_pair(ERA5_SOURCE, t);
            batch.inputs.push(i);
            batch.targets.push(o);
        }
        batch
    }

    /// Per-output-variable climatologies (for wACC).
    pub fn output_climatologies(&self) -> Vec<orbit_tensor::Tensor> {
        self.generator
            .catalog()
            .output_indices()
            .iter()
            .map(|&v| self.generator.climatology(v))
            .collect()
    }
}

/// Standard loader for the laptop-scale experiments: 8 variables on a
/// 32 x 64 grid.
pub fn laptop_loader(seed: u64) -> DataLoader {
    DataLoader::new(ClimateGenerator::new(
        32,
        64,
        VariableCatalog::laptop_8(),
        seed,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loader() -> DataLoader {
        DataLoader::new(ClimateGenerator::new(8, 16, VariableCatalog::laptop_8(), 3))
    }

    #[test]
    fn batch_shapes() {
        let l = loader();
        let mut rng = Rng::seed(1);
        let b = l.pretrain_batch(&mut rng, 3);
        assert_eq!(b.len(), 3);
        assert_eq!(b.inputs[0].len(), 8, "8 input channels");
        assert_eq!(b.targets[0].len(), 4, "4 output variables");
        assert_eq!(b.inputs[0][0].shape(), (8, 16));
    }

    #[test]
    fn eval_and_train_come_from_disjoint_years() {
        let l = loader();
        let mut rng = Rng::seed(2);
        let train = l.finetune_batch(&mut rng, 2);
        let eval = l.eval_batch(2);
        // Different times => different dynamic fields. Compare a dynamic
        // channel (index 5 = z_500).
        assert_ne!(train.inputs[0][5], eval.inputs[0][5]);
    }

    #[test]
    fn eval_batches_are_deterministic() {
        let l = loader();
        let a = l.eval_batch(3);
        let b = l.eval_batch(3);
        assert_eq!(a.inputs[0][5], b.inputs[0][5]);
        assert_eq!(a.targets[2][1], b.targets[2][1]);
    }

    #[test]
    fn targets_are_future_fields_of_output_vars() {
        let l = loader();
        let b = l.eval_batch(1);
        let out_idx = l.generator.catalog().output_indices();
        let t0 = l.test_year * STEPS_PER_YEAR;
        let expect = l
            .generator
            .field(ERA5_SOURCE, out_idx[0], t0 + l.lead_steps);
        assert_eq!(b.targets[0][0], expect);
    }

    #[test]
    fn lead_configurable() {
        let short = loader().with_lead(1);
        let long = loader().with_lead(60);
        let bs = short.eval_batch(1);
        let bl = long.eval_batch(1);
        // Same input time, different target times.
        assert_eq!(bs.inputs[0][5], bl.inputs[0][5]);
        assert_ne!(bs.targets[0][0], bl.targets[0][0]);
    }

    #[test]
    fn climatologies_match_generator() {
        let l = loader();
        let clims = l.output_climatologies();
        assert_eq!(clims.len(), 4);
        let out_idx = l.generator.catalog().output_indices();
        assert_eq!(clims[0], l.generator.climatology(out_idx[0]));
    }
}
