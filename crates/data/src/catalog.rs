//! The ORBIT variable taxonomy (paper Sec. IV, "Pre-training Dataset"):
//! 91 variables = 3 static + 3 surface + 85 atmospheric (5 fields x 17
//! pressure levels), plus the 48-variable ClimaX subset.

use serde::{Deserialize, Serialize};

/// The 17 pressure levels (hPa) used for atmospheric variables.
pub const PRESSURE_LEVELS: [u32; 17] = [
    10, 20, 30, 50, 70, 100, 150, 200, 250, 300, 400, 500, 600, 700, 850, 925, 1000,
];

/// ClimaX's 7-level subset (48-variable configuration).
pub const CLIMAX_LEVELS: [u32; 7] = [50, 250, 500, 600, 700, 850, 925];

/// The five atmospheric field families.
pub const ATMO_FIELDS: [&str; 5] = ["z", "t", "u", "v", "q"];

/// Kind of climate variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VarKind {
    /// Time-invariant (orography, land-sea mask, soil type).
    Static,
    /// Surface variable (t2m, u10, v10).
    Surface,
    /// Atmospheric variable at a pressure level.
    Atmospheric { level_hpa: u32 },
}

/// One catalog entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Variable {
    /// Short name, e.g. `"t_850"` or `"t2m"`.
    pub name: String,
    pub kind: VarKind,
}

/// The ordered variable list a model trains on.
#[derive(Debug, Clone)]
pub struct VariableCatalog {
    vars: Vec<Variable>,
}

impl VariableCatalog {
    /// The full 91-variable ORBIT catalog.
    pub fn orbit_91() -> Self {
        let mut vars = Vec::with_capacity(91);
        for name in ["orography", "land_sea_mask", "soil_type"] {
            vars.push(Variable {
                name: name.to_string(),
                kind: VarKind::Static,
            });
        }
        for name in ["t2m", "u10", "v10"] {
            vars.push(Variable {
                name: name.to_string(),
                kind: VarKind::Surface,
            });
        }
        for field in ATMO_FIELDS {
            for level in PRESSURE_LEVELS {
                vars.push(Variable {
                    name: format!("{field}_{level}"),
                    kind: VarKind::Atmospheric { level_hpa: level },
                });
            }
        }
        VariableCatalog { vars }
    }

    /// The 48-variable ClimaX-style subset: statics + surface + 5 fields
    /// on 7 levels + extra near-surface levels of temperature and winds.
    pub fn climax_48() -> Self {
        let mut vars = Vec::with_capacity(48);
        for name in ["orography", "land_sea_mask", "soil_type"] {
            vars.push(Variable {
                name: name.to_string(),
                kind: VarKind::Static,
            });
        }
        for name in ["t2m", "u10", "v10"] {
            vars.push(Variable {
                name: name.to_string(),
                kind: VarKind::Surface,
            });
        }
        for field in ATMO_FIELDS {
            for level in CLIMAX_LEVELS {
                vars.push(Variable {
                    name: format!("{field}_{level}"),
                    kind: VarKind::Atmospheric { level_hpa: level },
                });
            }
        }
        // 3 + 3 + 35 = 41 so far; ClimaX rounds out with additional levels
        // of geopotential and humidity.
        for level in [100u32, 150, 200, 300, 400, 1000, 10] {
            vars.push(Variable {
                name: format!("z_{level}"),
                kind: VarKind::Atmospheric { level_hpa: level },
            });
        }
        VariableCatalog { vars }
    }

    /// The 8-variable laptop-scale catalog used by the scaled-down
    /// executable experiments: includes all four output variables.
    pub fn laptop_8() -> Self {
        let full = VariableCatalog::orbit_91();
        let names = [
            "orography",
            "land_sea_mask",
            "t2m",
            "u10",
            "v10",
            "z_500",
            "t_850",
            "q_700",
        ];
        VariableCatalog {
            vars: names
                .iter()
                .map(|n| full.vars[full.index_of(n).expect("known variable")].clone())
                .collect(),
        }
    }

    /// First `n` variables (laptop-scale subset used by examples/tests).
    pub fn subset(&self, n: usize) -> VariableCatalog {
        assert!(n <= self.vars.len());
        VariableCatalog {
            vars: self.vars[..n].to_vec(),
        }
    }

    pub fn len(&self) -> usize {
        self.vars.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    pub fn variables(&self) -> &[Variable] {
        &self.vars
    }

    /// Index of a variable by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.vars.iter().position(|v| v.name == name)
    }

    /// The paper's four output variables: z500, t850, t2m, u10. Returns
    /// their indices in this catalog (panics if absent).
    pub fn output_indices(&self) -> [usize; 4] {
        [
            self.index_of("z_500").expect("z_500 in catalog"),
            self.index_of("t_850").expect("t_850 in catalog"),
            self.index_of("t2m").expect("t2m in catalog"),
            self.index_of("u10").expect("u10 in catalog"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orbit_catalog_has_91_vars() {
        let c = VariableCatalog::orbit_91();
        assert_eq!(c.len(), 91);
        let statics = c
            .variables()
            .iter()
            .filter(|v| v.kind == VarKind::Static)
            .count();
        let surface = c
            .variables()
            .iter()
            .filter(|v| v.kind == VarKind::Surface)
            .count();
        assert_eq!(statics, 3);
        assert_eq!(surface, 3);
        assert_eq!(91 - statics - surface, 85, "85 atmospheric variables");
    }

    #[test]
    fn climax_catalog_has_48_vars() {
        assert_eq!(VariableCatalog::climax_48().len(), 48);
    }

    #[test]
    fn names_are_unique() {
        for c in [VariableCatalog::orbit_91(), VariableCatalog::climax_48()] {
            let mut names: Vec<&str> = c.variables().iter().map(|v| v.name.as_str()).collect();
            names.sort();
            let before = names.len();
            names.dedup();
            assert_eq!(names.len(), before, "duplicate variable names");
        }
    }

    #[test]
    fn output_variables_present_in_both() {
        for c in [VariableCatalog::orbit_91(), VariableCatalog::climax_48()] {
            let idx = c.output_indices();
            assert_eq!(c.variables()[idx[2]].name, "t2m");
            assert_eq!(c.variables()[idx[0]].name, "z_500");
        }
    }

    #[test]
    fn atmospheric_levels_cover_17() {
        let c = VariableCatalog::orbit_91();
        let t_levels: Vec<u32> = c
            .variables()
            .iter()
            .filter_map(|v| match v.kind {
                VarKind::Atmospheric { level_hpa } if v.name.starts_with("t_") => Some(level_hpa),
                _ => None,
            })
            .collect();
        assert_eq!(t_levels.len(), 17);
        assert_eq!(t_levels[0], 10);
        assert_eq!(t_levels[16], 1000);
    }

    #[test]
    fn laptop_catalog_supports_outputs() {
        let c = VariableCatalog::laptop_8();
        assert_eq!(c.len(), 8);
        let idx = c.output_indices();
        assert_eq!(c.variables()[idx[1]].name, "t_850");
    }

    #[test]
    fn subset_preserves_prefix() {
        let c = VariableCatalog::orbit_91().subset(8);
        assert_eq!(c.len(), 8);
        assert_eq!(c.variables()[0].name, "orography");
        assert_eq!(c.variables()[3].name, "t2m");
    }
}
