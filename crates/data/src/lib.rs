//! # orbit-data
//!
//! Synthetic Earth-system data: the stand-in for the CMIP6 pre-training
//! archive and the ERA5 fine-tuning reanalysis that the paper trains on
//! (both are multi-terabyte external datasets we cannot ship).
//!
//! The generator produces *statistically structured, learnable* fields
//! rather than white noise: each variable has a latitude-dependent
//! climatological base state, a set of planetary waves that advect in time
//! (so the future is predictable from the present), and an unpredictable
//! high-frequency "weather noise" floor. Ten "CMIP6 model sources" differ
//! in wave amplitudes/speeds (inter-model spread), and an "ERA5-like"
//! reanalysis source adds observation noise — preserving exactly the
//! pre-train-on-models / fine-tune-on-reanalysis structure of the paper.
//!
//! - [`catalog`]: the 91-variable taxonomy (3 static, 3 surface, 85
//!   atmospheric across 17 pressure levels) and the 48-variable ClimaX
//!   subset.
//! - [`generator`]: deterministic random-access field synthesis.
//! - [`loader`]: batched sampling with 6-hour cadence and lead-time pairs.
//! - [`metrics`]: latitude-weighted anomaly correlation (wACC) and RMSE.

#![forbid(unsafe_code)]

pub mod catalog;
pub mod generator;
pub mod loader;
pub mod metrics;

pub use catalog::VariableCatalog;
pub use generator::ClimateGenerator;
pub use loader::DataLoader;
