//! Evaluation metrics (paper Sec. IV, "Performance Metrics").
//!
//! The headline fine-tuning metric is the latitude-weighted Anomaly
//! Correlation Coefficient (wACC): the Pearson correlation between
//! predicted and observed *anomalies* (departures from climatology),
//! weighted by `cos(latitude)`. 1 = perfect, 0 = no better than
//! climatology, negative = anti-correlated.

use orbit_tensor::Tensor;
pub use orbit_vit::loss::lat_weights;

/// Latitude-weighted anomaly correlation coefficient between a prediction
/// and the truth, given the variable's climatology.
pub fn wacc(pred: &Tensor, truth: &Tensor, climatology: &Tensor, weights: &[f32]) -> f32 {
    assert_eq!(pred.shape(), truth.shape());
    assert_eq!(pred.shape(), climatology.shape());
    let (h, w) = pred.shape();
    assert_eq!(weights.len(), h);
    // Anomalies and their weighted means.
    let mut sum_w = 0.0f64;
    let mut mean_p = 0.0f64;
    let mut mean_t = 0.0f64;
    for (r, &wf) in weights.iter().enumerate() {
        let wr = wf as f64;
        for c in 0..w {
            let pa = (pred.get(r, c) - climatology.get(r, c)) as f64;
            let ta = (truth.get(r, c) - climatology.get(r, c)) as f64;
            mean_p += wr * pa;
            mean_t += wr * ta;
            sum_w += wr;
        }
    }
    mean_p /= sum_w;
    mean_t /= sum_w;
    let mut cov = 0.0f64;
    let mut var_p = 0.0f64;
    let mut var_t = 0.0f64;
    for (r, &wf) in weights.iter().enumerate() {
        let wr = wf as f64;
        for c in 0..w {
            let pa = (pred.get(r, c) - climatology.get(r, c)) as f64 - mean_p;
            let ta = (truth.get(r, c) - climatology.get(r, c)) as f64 - mean_t;
            cov += wr * pa * ta;
            var_p += wr * pa * pa;
            var_t += wr * ta * ta;
        }
    }
    if var_p <= 0.0 || var_t <= 0.0 {
        return 0.0;
    }
    (cov / (var_p.sqrt() * var_t.sqrt())) as f32
}

/// Latitude-weighted root-mean-square error.
pub fn wrmse(pred: &Tensor, truth: &Tensor, weights: &[f32]) -> f32 {
    let (h, w) = pred.shape();
    assert_eq!(truth.shape(), (h, w));
    assert_eq!(weights.len(), h);
    let mut total = 0.0f64;
    let mut sum_w = 0.0f64;
    for (r, &wf) in weights.iter().enumerate() {
        let wr = wf as f64;
        for c in 0..w {
            let d = (pred.get(r, c) - truth.get(r, c)) as f64;
            total += wr * d * d;
            sum_w += wr;
        }
    }
    ((total / sum_w) as f32).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbit_tensor::init::Rng;

    #[test]
    fn perfect_prediction_has_wacc_one() {
        let mut rng = Rng::seed(1);
        let truth = rng.normal_tensor(8, 16, 1.0);
        let clim = rng.normal_tensor(8, 16, 0.5);
        let w = lat_weights(8);
        let a = wacc(&truth.clone(), &truth, &clim, &w);
        assert!((a - 1.0).abs() < 1e-5, "wacc {a}");
    }

    #[test]
    fn anti_correlated_prediction_has_wacc_minus_one() {
        let mut rng = Rng::seed(2);
        let clim = Tensor::zeros(8, 16);
        let truth = rng.normal_tensor(8, 16, 1.0);
        let mut pred = truth.clone();
        pred.scale(-1.0);
        let w = lat_weights(8);
        let a = wacc(&pred, &truth, &clim, &w);
        assert!((a + 1.0).abs() < 1e-5, "wacc {a}");
    }

    #[test]
    fn climatology_prediction_scores_zero() {
        let mut rng = Rng::seed(3);
        let clim = rng.normal_tensor(8, 16, 1.0);
        let truth = rng.normal_tensor(8, 16, 1.0);
        let w = lat_weights(8);
        // Predicting exactly the climatology gives zero anomaly variance.
        let a = wacc(&clim.clone(), &truth, &clim, &w);
        assert_eq!(a, 0.0);
    }

    #[test]
    fn wacc_is_scale_invariant_in_anomaly_amplitude() {
        let mut rng = Rng::seed(4);
        let clim = Tensor::zeros(8, 16);
        let truth = rng.normal_tensor(8, 16, 1.0);
        let mut half = truth.clone();
        half.scale(0.5);
        let w = lat_weights(8);
        let a = wacc(&half, &truth, &clim, &w);
        assert!((a - 1.0).abs() < 1e-5, "correlation ignores amplitude: {a}");
    }

    #[test]
    fn wacc_bounded() {
        let mut rng = Rng::seed(5);
        let clim = rng.normal_tensor(8, 16, 1.0);
        let w = lat_weights(8);
        for i in 0..10 {
            let p = rng.normal_tensor(8, 16, 1.0 + i as f32 * 0.3);
            let t = rng.normal_tensor(8, 16, 1.0);
            let a = wacc(&p, &t, &clim, &w);
            assert!((-1.0..=1.0).contains(&a), "wacc {a} out of range");
        }
    }

    #[test]
    fn wrmse_zero_iff_equal_and_monotone() {
        let mut rng = Rng::seed(6);
        let t = rng.normal_tensor(8, 16, 1.0);
        let w = lat_weights(8);
        assert_eq!(wrmse(&t.clone(), &t, &w), 0.0);
        let mut near = t.clone();
        near.data_mut()[0] += 0.1;
        let mut far = t.clone();
        for v in far.data_mut() {
            *v += 1.0;
        }
        assert!(wrmse(&near, &t, &w) < wrmse(&far, &t, &w));
    }
}
