//! Frontier hardware constants (paper Sec. IV, "System Details").
//!
//! Each Frontier node has one 64-core EPYC CPU and 4 MI250X cards; every
//! card exposes 2 GCDs ("GPUs" throughout the paper), so a node has 8 GPUs
//! with 64 GB HBM each. GPUs within a node talk over Infinity Fabric
//! (50 GB/s); nodes talk over Slingshot-11 (100 GB/s per node, shared by
//! its GPUs).

use serde::{Deserialize, Serialize};

/// Which physical link a communication crosses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkKind {
    /// GPU-to-GPU within one node (Infinity Fabric).
    IntraNode,
    /// Node-to-node (Slingshot-11).
    InterNode,
}

/// Machine description used by both the simulator and the analytic model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrontierMachine {
    /// GPUs (MI250X GCDs) per node.
    pub gpus_per_node: usize,
    /// HBM capacity per GPU, bytes.
    pub mem_per_gpu: u64,
    /// Intra-node GPU-GPU bandwidth, bytes/s.
    pub intra_node_bw: f64,
    /// Inter-node injection bandwidth per node, bytes/s.
    pub inter_node_bw: f64,
    /// Per-message latency for intra-node transfers, seconds.
    pub intra_node_latency: f64,
    /// Per-message latency for inter-node transfers, seconds.
    pub inter_node_latency: f64,
    /// Peak BF16 throughput per GPU, FLOP/s.
    pub peak_bf16: f64,
    /// Peak FP32 throughput per GPU, FLOP/s.
    pub peak_fp32: f64,
    /// Sustained model-FLOPs utilization achieved by dense transformer
    /// training at healthy local batch sizes (calibrated so the analytic
    /// model lands near the paper's reported walltimes).
    pub mfu: f64,
    /// Fraction of GPU memory usable by the framework (the rest is
    /// runtime/allocator overhead).
    pub usable_mem_fraction: f64,
}

impl Default for FrontierMachine {
    fn default() -> Self {
        FrontierMachine {
            gpus_per_node: 8,
            mem_per_gpu: 64 * (1 << 30),
            intra_node_bw: 50e9,
            inter_node_bw: 100e9 / 8.0, // Slingshot 100 GB/s shared by 8 GPUs
            intra_node_latency: 5e-6,
            inter_node_latency: 20e-6,
            peak_bf16: 191.5e12, // MI250X GCD matrix BF16 peak
            peak_fp32: 47.9e12,  // MI250X GCD packed-FP32 peak
            mfu: 0.12,
            usable_mem_fraction: 0.9,
        }
    }
}

impl FrontierMachine {
    /// Node index that hosts a given GPU rank under block placement.
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.gpus_per_node
    }

    /// Link crossed by communication between two ranks.
    pub fn link_between(&self, a: usize, b: usize) -> LinkKind {
        if self.node_of(a) == self.node_of(b) {
            LinkKind::IntraNode
        } else {
            LinkKind::InterNode
        }
    }

    /// Bandwidth (bytes/s) of a link kind.
    pub fn bandwidth(&self, link: LinkKind) -> f64 {
        match link {
            LinkKind::IntraNode => self.intra_node_bw,
            LinkKind::InterNode => self.inter_node_bw,
        }
    }

    /// Latency (seconds) of a link kind.
    pub fn latency(&self, link: LinkKind) -> f64 {
        match link {
            LinkKind::IntraNode => self.intra_node_latency,
            LinkKind::InterNode => self.inter_node_latency,
        }
    }

    /// Usable memory per GPU after runtime overhead.
    pub fn usable_mem(&self) -> u64 {
        (self.mem_per_gpu as f64 * self.usable_mem_fraction) as u64
    }

    /// Time for a ring all-gather where each of `p` ranks contributes
    /// `shard_bytes`, over a link of the given kind: `(p-1)` steps each
    /// moving `shard_bytes`.
    pub fn all_gather_time(&self, p: usize, shard_bytes: u64, link: LinkKind) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let steps = (p - 1) as f64;
        steps * (self.latency(link) + shard_bytes as f64 / self.bandwidth(link))
    }

    /// Time for a ring reduce-scatter of a `total_bytes` buffer across `p`
    /// ranks: `(p-1)` steps each moving `total_bytes / p`.
    pub fn reduce_scatter_time(&self, p: usize, total_bytes: u64, link: LinkKind) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let steps = (p - 1) as f64;
        steps * (self.latency(link) + total_bytes as f64 / p as f64 / self.bandwidth(link))
    }

    /// Time for an all-reduce of `total_bytes` across `p` ranks: ring
    /// bandwidth term (`2 (p-1)/p * total` on the wire) plus
    /// tree-logarithmic latency (large groups switch to tree algorithms,
    /// so latency does not grow linearly in `p` — essential for the DDP
    /// reductions across thousands of replicas in Fig. 7).
    pub fn all_reduce_time(&self, p: usize, total_bytes: u64, link: LinkKind) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let bw_term = 2.0 * (p - 1) as f64 / p as f64 * total_bytes as f64 / self.bandwidth(link);
        let lat_term = 2.0 * (p as f64).log2().ceil() * self.latency(link);
        bw_term + lat_term
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_placement() {
        let m = FrontierMachine::default();
        assert_eq!(m.node_of(0), 0);
        assert_eq!(m.node_of(7), 0);
        assert_eq!(m.node_of(8), 1);
        assert_eq!(m.link_between(0, 7), LinkKind::IntraNode);
        assert_eq!(m.link_between(0, 8), LinkKind::InterNode);
    }

    #[test]
    fn intra_node_is_faster() {
        let m = FrontierMachine::default();
        assert!(m.bandwidth(LinkKind::IntraNode) > m.bandwidth(LinkKind::InterNode));
        assert!(m.latency(LinkKind::IntraNode) < m.latency(LinkKind::InterNode));
    }

    #[test]
    fn collective_times_scale_with_size() {
        let m = FrontierMachine::default();
        let t1 = m.all_reduce_time(8, 1 << 26, LinkKind::IntraNode);
        let t2 = m.all_reduce_time(8, 1 << 30, LinkKind::IntraNode);
        // Large messages are bandwidth-bound, so 16x bytes ~ 16x time.
        assert!(
            t2 > t1 * 12.0,
            "16x bytes should be ~16x time: {t1} vs {t2}"
        );
    }

    #[test]
    fn single_rank_collectives_are_free() {
        let m = FrontierMachine::default();
        assert_eq!(m.all_gather_time(1, 1 << 20, LinkKind::InterNode), 0.0);
        assert_eq!(m.all_reduce_time(1, 1 << 20, LinkKind::InterNode), 0.0);
        assert_eq!(m.reduce_scatter_time(1, 1 << 20, LinkKind::InterNode), 0.0);
    }

    #[test]
    fn all_reduce_at_most_gather_plus_scatter() {
        // All-reduce uses tree latency, so it can only beat the naive
        // reduce-scatter + all-gather composition; its bandwidth term
        // still dominates for large messages.
        let m = FrontierMachine::default();
        let p = 16;
        let bytes = 1u64 << 26;
        let ar = m.all_reduce_time(p, bytes, LinkKind::InterNode);
        let rs = m.reduce_scatter_time(p, bytes, LinkKind::InterNode);
        let ag = m.all_gather_time(p, bytes / p as u64, LinkKind::InterNode);
        assert!(ar <= rs + ag + 1e-9, "{ar} vs {}", rs + ag);
        let wire = 2.0 * (p - 1) as f64 / p as f64 * bytes as f64;
        assert!(
            ar >= wire / m.bandwidth(LinkKind::InterNode),
            "bandwidth bound"
        );
    }

    #[test]
    fn all_reduce_latency_grows_logarithmically() {
        let m = FrontierMachine::default();
        // Tiny message: latency-dominated; 4096 ranks should cost ~2x of
        // 64 ranks (log ratio 12/6), not 64x.
        let t64 = m.all_reduce_time(64, 4, LinkKind::InterNode);
        let t4096 = m.all_reduce_time(4096, 4, LinkKind::InterNode);
        assert!(t4096 < 3.0 * t64, "{t4096} vs {t64}");
    }

    #[test]
    fn usable_memory_below_capacity() {
        let m = FrontierMachine::default();
        assert!(m.usable_mem() < m.mem_per_gpu);
        assert!(m.usable_mem() > m.mem_per_gpu / 2);
    }
}
