//! Model dimension arithmetic: parameter counts, token counts, FLOPs.
//!
//! These closed forms are shared between the analytic performance model and
//! the executable ViT (whose actual parameter tensors are counted in tests
//! against [`ModelDims::param_count`] to keep the two in sync).

use serde::{Deserialize, Serialize};

/// Architectural dimensions of an ORBIT/ClimaX vision transformer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelDims {
    /// Embedding (model) dimension `d`.
    pub embed: usize,
    /// Number of transformer layers.
    pub layers: usize,
    /// Attention heads per layer.
    pub heads: usize,
    /// Number of input variable channels (48 or 91 in the paper).
    pub channels: usize,
    /// Square patch edge in pixels.
    pub patch: usize,
    /// Image height in pixels (128 at 1.40625 degrees).
    pub img_h: usize,
    /// Image width in pixels (256 at 1.40625 degrees).
    pub img_w: usize,
    /// Number of output variables predicted by the head.
    pub out_channels: usize,
}

impl ModelDims {
    /// The paper's 115 M-parameter configuration
    /// (1024 embedding, 8 layers, 16 heads).
    pub fn orbit_115m(channels: usize) -> Self {
        ModelDims::paper(1024, 8, 16, channels)
    }

    /// The paper's 1 B configuration (3072 embedding, 8 layers, 16 heads).
    pub fn orbit_1b(channels: usize) -> Self {
        ModelDims::paper(3072, 8, 16, channels)
    }

    /// The paper's 10 B configuration (8192 embedding, 11 layers, 32 heads).
    pub fn orbit_10b(channels: usize) -> Self {
        ModelDims::paper(8192, 11, 32, channels)
    }

    /// The paper's 113 B configuration (12288 embedding, 56 layers, 64 heads).
    pub fn orbit_113b(channels: usize) -> Self {
        ModelDims::paper(12288, 56, 64, channels)
    }

    /// A paper-scale config at full 1.40625-degree resolution with ClimaX's
    /// patch size 4 (128x256 image -> 32x64 = 2048 tokens).
    pub fn paper(embed: usize, layers: usize, heads: usize, channels: usize) -> Self {
        ModelDims {
            embed,
            layers,
            heads,
            channels,
            patch: 4,
            img_h: 128,
            img_w: 256,
            out_channels: 4,
        }
    }

    /// Number of spatial tokens after patchification.
    pub fn tokens(&self) -> usize {
        (self.img_h / self.patch) * (self.img_w / self.patch)
    }

    /// Per-head feature dimension.
    pub fn head_dim(&self) -> usize {
        self.embed / self.heads
    }

    /// Parameters of the per-variable tokenizer (one patch-embedding per
    /// channel, weight + bias).
    pub fn tokenizer_params(&self) -> u64 {
        let per_var = (self.patch * self.patch * self.embed + self.embed) as u64;
        per_var * self.channels as u64
    }

    /// Parameters of the channel cross-attention aggregation: learnable
    /// query + bias-free Q/K/V/O projections.
    pub fn aggregation_params(&self) -> u64 {
        let d = self.embed as u64;
        d + 4 * d * d
    }

    /// Positional embedding parameters.
    pub fn pos_embed_params(&self) -> u64 {
        (self.tokens() * self.embed) as u64
    }

    /// Parameters of one transformer block: QKV + output projection, 2-layer
    /// MLP with 4x expansion, two layernorms, QK layernorms.
    pub fn block_params(&self) -> u64 {
        let d = self.embed as u64;
        let attn = 4 * d * d + 4 * d; // Wq,Wk,Wv,Wo + biases
        let mlp = d * 4 * d + 4 * d + 4 * d * d + d; // d->4d, 4d->d
        let norms = 2 * 2 * d; // two pre-norms (gamma+beta)
        let qk_norm = 4 * (d / self.heads as u64); // gamma/beta for q and k
        attn + mlp + norms + qk_norm
    }

    /// Prediction-head parameters (embedding -> out_channels * patch^2).
    pub fn head_params(&self) -> u64 {
        let out = (self.out_channels * self.patch * self.patch) as u64;
        self.embed as u64 * out + out
    }

    /// Total parameter count.
    pub fn param_count(&self) -> u64 {
        self.tokenizer_params()
            + self.aggregation_params()
            + self.pos_embed_params()
            + self.block_params() * self.layers as u64
            + self.head_params()
    }

    /// Parameters of the largest single layer-wrapped unit (one transformer
    /// block) — the gather granularity under layer wrapping.
    pub fn max_layer_params(&self) -> u64 {
        self.block_params()
            .max(self.tokenizer_params())
            .max(self.aggregation_params())
    }

    /// Forward-pass FLOPs for one observation (one C x H x W sample).
    ///
    /// Matmul-dominated terms: each weight matrix contributes `2 * m * n`
    /// FLOPs per token it processes; attention adds the `T^2 d` score and
    /// value terms per layer.
    pub fn forward_flops(&self) -> u64 {
        let t = self.tokens() as u64;
        let d = self.embed as u64;
        let c = self.channels as u64;
        // Tokenizer: every channel embeds every token.
        let tok = 2 * c * t * (self.patch * self.patch) as u64 * d;
        // Aggregation: K/V projections over all C*T channel embeddings,
        // a query projection + output projection per spatial token, then a
        // 1-query cross-attention over C channels per token.
        let agg = 4 * c * t * d * d // K,V: 2 FLOPs * C*T rows * 2 d^2 mats
            + 4 * t * d * d // Q and O projections on T tokens
            + 4 * t * c * d; // scores + weighted value sum
                             // Transformer blocks: weights 2*block_params*T + attention 4*T^2*d.
        let blocks = self.layers as u64 * (2 * self.block_params() * t + 4 * t * t * d);
        let head = 2 * t * self.head_params();
        tok + agg + blocks + head
    }

    /// Training FLOPs per observation: backward is 2x forward; activation
    /// checkpointing re-runs the forward (x4/3 total -> modeled at call
    /// sites via [`crate::perfmodel::TrainOptions`]).
    pub fn train_flops(&self) -> u64 {
        3 * self.forward_flops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_param_counts_match_reported_sizes() {
        // The paper reports 115 M / 1 B / 10 B / 113 B. Our closed form
        // should land within ~15% of each label (the paper rounds).
        let cases = [
            (ModelDims::orbit_115m(48), 115e6),
            (ModelDims::orbit_1b(48), 1e9),
            (ModelDims::orbit_10b(48), 10e9),
            (ModelDims::orbit_113b(48), 113e9),
        ];
        for (dims, expect) in cases {
            let p = dims.param_count() as f64;
            let ratio = p / expect;
            assert!(
                (0.8..1.25).contains(&ratio),
                "{}-emb model: {p:.3e} params vs expected {expect:.1e} (ratio {ratio:.2})",
                dims.embed
            );
        }
    }

    #[test]
    fn tokens_at_paper_resolution() {
        let d = ModelDims::orbit_115m(48);
        assert_eq!(d.tokens(), 32 * 64);
        assert_eq!(d.head_dim(), 64);
    }

    #[test]
    fn params_grow_with_channels() {
        let a = ModelDims::orbit_115m(48);
        let b = ModelDims::orbit_115m(91);
        assert!(b.param_count() > a.param_count());
        // Only the tokenizer depends on channel count.
        assert_eq!(
            b.param_count() - a.param_count(),
            b.tokenizer_params() - a.tokenizer_params()
        );
    }

    #[test]
    fn block_params_dominated_by_12_d_squared() {
        let d = ModelDims::orbit_113b(48);
        let twelve_d2 = 12 * (d.embed as u64) * (d.embed as u64);
        let ratio = d.block_params() as f64 / twelve_d2 as f64;
        assert!((0.99..1.01).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn flops_scale_superlinearly_in_embed() {
        let small = ModelDims::paper(256, 4, 4, 8).forward_flops();
        let big = ModelDims::paper(512, 4, 4, 8).forward_flops();
        assert!(big > 3 * small, "doubling embed ~4x matmul flops");
    }

    #[test]
    fn train_flops_is_three_forwards() {
        let d = ModelDims::orbit_115m(48);
        assert_eq!(d.train_flops(), 3 * d.forward_flops());
    }

    #[test]
    fn max_layer_is_the_block_for_paper_models() {
        for dims in [ModelDims::orbit_1b(48), ModelDims::orbit_113b(91)] {
            assert_eq!(dims.max_layer_params(), dims.block_params());
        }
    }
}
