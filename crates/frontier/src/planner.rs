//! Auto-parallel planner: close the loop from the analytic performance
//! model back to an executable engine choice.
//!
//! Given a machine, a model, a GPU count and a global batch, the
//! [`Planner`] enumerates every *legal* parallelization the engines can
//! execute — DDP, vanilla FSDP, Megatron TP, and each `tp x fsdp x ddp`
//! factoring of Hybrid-STOP, crossed with the layer-wrapping and prefetch
//! options the paper ablates — filters out configurations that do not fit
//! in GPU memory, costs the survivors with [`PerfModel`], and returns them
//! ranked by predicted time-per-global-batch. `orbit_core::spec_for_plan`
//! turns the winner into an [`EngineSpec`](../../orbit_core) so the plan
//! is directly executable on the simulated cluster; the `plan_bench`
//! binary cross-checks the ranking against simulation.

use crate::dims::ModelDims;
use crate::machine::FrontierMachine;
use crate::mapping::{ParallelLayout, RankMapping};
use crate::perfmodel::{PerfModel, Strategy, TrainOptions};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One costed point in the parallelization search space.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanCandidate {
    pub strategy: Strategy,
    /// `tp x fsdp x ddp` factoring; degenerate axes are 1 for the
    /// single-axis strategies.
    pub layout: ParallelLayout,
    pub opts: TrainOptions,
    /// Predicted time for one global batch, seconds
    /// ([`PerfModel::epoch_relative_time`]).
    pub predicted: f64,
    /// Predicted peak per-GPU memory, bytes.
    pub predicted_mem: u64,
    /// True when every tensor-parallel group fits inside one node (the
    /// paper's Fig. 4 placement requirement; spilling costs dearly).
    pub tp_intra_node: bool,
}

/// Stable snake_case name of a strategy, matching
/// `orbit_core::EngineSpec::name` for the executable counterpart.
pub fn strategy_name(s: Strategy) -> &'static str {
    match s {
        Strategy::SingleDevice => "single_device",
        Strategy::Ddp => "ddp",
        Strategy::Fsdp => "fsdp",
        Strategy::TensorParallel => "tensor_parallel",
        Strategy::HybridStop => "hybrid_stop",
    }
}

/// The planner's output: every feasible candidate, ranked.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Plan {
    pub gpus: usize,
    pub global_batch: usize,
    /// The best candidate (lowest predicted time).
    pub chosen: PlanCandidate,
    /// All feasible candidates including the chosen one, ascending by
    /// predicted time.
    pub candidates: Vec<PlanCandidate>,
}

impl Plan {
    /// Engine name of the chosen strategy.
    pub fn chosen_name(&self) -> &'static str {
        strategy_name(self.chosen.strategy)
    }
}

/// No enumerated candidate fits in GPU memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    NoFeasible { gpus: usize, global_batch: usize },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::NoFeasible { gpus, global_batch } => write!(
                f,
                "no parallelization of this model fits on {gpus} GPUs \
                 at global batch {global_batch}"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// Enumerates and ranks parallelization candidates with a [`PerfModel`].
#[derive(Debug, Clone, Default)]
pub struct Planner {
    pub model: PerfModel,
}

impl Planner {
    pub fn new(machine: FrontierMachine) -> Self {
        Planner {
            model: PerfModel::new(machine),
        }
    }

    /// Number of data replicas a candidate runs — the divisor the global
    /// batch must split over (mirrors `PerfModel::replicas`).
    fn replicas(strategy: Strategy, layout: &ParallelLayout) -> usize {
        match strategy {
            Strategy::Ddp => layout.world(),
            Strategy::HybridStop => layout.ddp,
            _ => 1,
        }
    }

    /// The option variants worth searching for a candidate: wrap policy
    /// and prefetch only matter when there is an FSDP axis to shard over.
    fn opts_variants(strategy: Strategy, layout: &ParallelLayout) -> Vec<TrainOptions> {
        let has_fsdp_axis = match strategy {
            Strategy::Fsdp => layout.fsdp > 1,
            Strategy::HybridStop => layout.fsdp > 1,
            _ => false,
        };
        if has_fsdp_axis {
            vec![
                TrainOptions::none(),
                TrainOptions {
                    layer_wrapping: true,
                    ..TrainOptions::none()
                },
                TrainOptions {
                    layer_wrapping: true,
                    prefetch: true,
                    ..TrainOptions::none()
                },
            ]
        } else {
            vec![TrainOptions::none()]
        }
    }

    /// All legal `(strategy, layout)` points for `gpus` ranks: the global
    /// batch must divide over the data replicas, tensor parallelism must
    /// divide the head count, and a Hybrid-STOP layout must factor the
    /// world exactly.
    fn enumerate(
        &self,
        dims: &ModelDims,
        gpus: usize,
        global_batch: usize,
    ) -> Vec<(Strategy, ParallelLayout)> {
        let mut out = Vec::new();
        if gpus == 1 {
            out.push((Strategy::SingleDevice, ParallelLayout::new(1, 1, 1)));
            return out;
        }
        if global_batch % gpus == 0 {
            out.push((Strategy::Ddp, ParallelLayout::new(1, 1, gpus)));
        }
        out.push((Strategy::Fsdp, ParallelLayout::new(1, gpus, 1)));
        if dims.heads % gpus == 0 {
            out.push((Strategy::TensorParallel, ParallelLayout::new(gpus, 1, 1)));
        }
        for tp in (1..=gpus).filter(|t| gpus % t == 0 && dims.heads % t == 0) {
            let rest = gpus / tp;
            for fsdp in (1..=rest).filter(|f| rest % f == 0) {
                let ddp = rest / fsdp;
                if global_batch % ddp != 0 {
                    continue;
                }
                out.push((Strategy::HybridStop, ParallelLayout::new(tp, fsdp, ddp)));
            }
        }
        out
    }

    /// Enumerate, filter by memory, cost, and rank. The returned plan's
    /// `candidates` are ascending by predicted time; `chosen` is the head.
    pub fn plan(
        &self,
        dims: &ModelDims,
        gpus: usize,
        global_batch: usize,
    ) -> Result<Plan, PlanError> {
        let mut candidates = Vec::new();
        for (strategy, layout) in self.enumerate(dims, gpus, global_batch) {
            let local_batch = global_batch / Self::replicas(strategy, &layout);
            for opts in Self::opts_variants(strategy, &layout) {
                if !self.model.fits(dims, &layout, strategy, &opts, local_batch) {
                    continue;
                }
                let predicted = self
                    .model
                    .epoch_relative_time(dims, &layout, strategy, &opts, global_batch);
                let predicted_mem = self
                    .model
                    .memory(dims, &layout, strategy, &opts, local_batch)
                    .total();
                let tp_intra_node =
                    RankMapping::new(layout).tp_groups_intra_node(&self.model.machine);
                candidates.push(PlanCandidate {
                    strategy,
                    layout,
                    opts,
                    predicted,
                    predicted_mem,
                    tp_intra_node,
                });
            }
        }
        candidates.sort_by(|a, b| a.predicted.total_cmp(&b.predicted));
        let chosen = candidates
            .first()
            .cloned()
            .ok_or(PlanError::NoFeasible { gpus, global_batch })?;
        Ok(Plan {
            gpus,
            global_batch,
            chosen,
            candidates,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dims() -> ModelDims {
        // Mirrors VitConfig::test_tiny (orbit-vit depends on this crate,
        // so the dims are restated here).
        ModelDims {
            embed: 16,
            layers: 2,
            heads: 2,
            channels: 3,
            patch: 4,
            img_h: 8,
            img_w: 16,
            out_channels: 2,
        }
    }

    #[test]
    fn single_gpu_plans_single_device() {
        let plan = Planner::default().plan(&tiny_dims(), 1, 4).unwrap();
        assert_eq!(plan.chosen.strategy, Strategy::SingleDevice);
        assert_eq!(plan.chosen_name(), "single_device");
        assert_eq!(plan.candidates.len(), 1);
    }

    #[test]
    fn candidates_are_ranked_and_feasible() {
        let planner = Planner::default();
        let plan = planner.plan(&tiny_dims(), 8, 8).unwrap();
        assert!(plan.candidates.len() >= 3, "{}", plan.candidates.len());
        for pair in plan.candidates.windows(2) {
            assert!(pair[0].predicted <= pair[1].predicted);
        }
        assert_eq!(plan.chosen.predicted, plan.candidates[0].predicted);
        let usable = planner.model.machine.usable_mem();
        for c in &plan.candidates {
            assert!(c.predicted_mem <= usable);
        }
    }

    #[test]
    fn tensor_parallel_respects_head_count() {
        // 2 heads cannot split over 8 ranks: no pure-TP candidate, and no
        // hybrid candidate with tp > 2.
        let plan = Planner::default().plan(&tiny_dims(), 8, 8).unwrap();
        assert!(plan
            .candidates
            .iter()
            .all(|c| c.strategy != Strategy::TensorParallel));
        assert!(plan.candidates.iter().all(|c| c.layout.tp <= 2));
    }

    #[test]
    fn batch_must_divide_over_replicas() {
        // Global batch 6 over 4 GPUs: DDP (4 replicas) is illegal, but
        // hybrid layouts with ddp in {1, 2} still qualify.
        let plan = Planner::default().plan(&tiny_dims(), 4, 6).unwrap();
        assert!(plan.candidates.iter().all(|c| c.strategy != Strategy::Ddp));
        assert!(plan
            .candidates
            .iter()
            .all(|c| 6 % Planner::replicas(c.strategy, &c.layout) == 0));
    }

    #[test]
    fn hybrid_layouts_factor_the_world() {
        let plan = Planner::default().plan(&tiny_dims(), 8, 8).unwrap();
        for c in &plan.candidates {
            if c.strategy == Strategy::HybridStop {
                assert_eq!(c.layout.world(), 8);
            }
        }
    }

    #[test]
    fn oversized_model_yields_no_feasible_plan() {
        // The 113 B production model cannot fit on a single 64 GB GPU.
        let err = Planner::default()
            .plan(&ModelDims::orbit_113b(91), 1, 1)
            .unwrap_err();
        assert_eq!(
            err,
            PlanError::NoFeasible {
                gpus: 1,
                global_batch: 1
            }
        );
    }

    #[test]
    fn narrow_nodes_change_tp_placement() {
        // With 2-GPU nodes, a tp=2 group is intra-node but wider layouts
        // on 8 GPUs keep their FSDP members across nodes.
        let machine = FrontierMachine {
            gpus_per_node: 2,
            ..FrontierMachine::default()
        };
        let plan = Planner::new(machine).plan(&tiny_dims(), 8, 8).unwrap();
        for c in &plan.candidates {
            assert_eq!(c.tp_intra_node, c.layout.tp <= 2, "{:?}", c.layout);
        }
    }
}
