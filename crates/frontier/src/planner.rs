//! Auto-parallel planner: close the loop from the analytic performance
//! model back to an executable engine choice.
//!
//! Given a machine, a model, a GPU count and a global batch, the
//! [`Planner`] enumerates every *legal* parallelization the engines can
//! execute — DDP, vanilla FSDP, Megatron TP, and each `tp x fsdp x ddp`
//! factoring of Hybrid-STOP, crossed with the layer-wrapping and prefetch
//! options the paper ablates — filters out configurations that do not fit
//! in GPU memory, costs the survivors with [`PerfModel`], and returns them
//! ranked by predicted time-per-global-batch. `orbit_core::spec_for_plan`
//! turns the winner into an [`EngineSpec`](../../orbit_core) so the plan
//! is directly executable on the simulated cluster; the `plan_bench`
//! binary cross-checks the ranking against simulation.

use crate::dims::ModelDims;
use crate::machine::FrontierMachine;
use crate::mapping::{ParallelLayout, RankMapping};
use crate::perfmodel::{PerfModel, Strategy, TrainOptions};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One costed point in the parallelization search space.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanCandidate {
    pub strategy: Strategy,
    /// `tp x fsdp x ddp` factoring; degenerate axes are 1 for the
    /// single-axis strategies.
    pub layout: ParallelLayout,
    pub opts: TrainOptions,
    /// Predicted time for one global batch, seconds
    /// ([`PerfModel::epoch_relative_time`]).
    pub predicted: f64,
    /// Predicted peak per-GPU memory, bytes.
    pub predicted_mem: u64,
    /// True when every tensor-parallel group fits inside one node (the
    /// paper's Fig. 4 placement requirement; spilling costs dearly).
    pub tp_intra_node: bool,
}

/// Stable snake_case name of a strategy, matching
/// `orbit_core::EngineSpec::name` for the executable counterpart.
pub fn strategy_name(s: Strategy) -> &'static str {
    match s {
        Strategy::SingleDevice => "single_device",
        Strategy::Ddp => "ddp",
        Strategy::Fsdp => "fsdp",
        Strategy::TensorParallel => "tensor_parallel",
        Strategy::HybridStop => "hybrid_stop",
    }
}

/// The planner's output: every feasible candidate, ranked.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Plan {
    pub gpus: usize,
    pub global_batch: usize,
    /// The best candidate (lowest predicted time).
    pub chosen: PlanCandidate,
    /// All feasible candidates including the chosen one, ascending by
    /// predicted time.
    pub candidates: Vec<PlanCandidate>,
    /// Candidates that fit in memory but were pruned by the installed
    /// static check ([`Planner::with_static_check`]), with the check's
    /// actionable diagnostic. Empty without a check installed.
    pub rejected: Vec<RejectedCandidate>,
}

/// A candidate pruned by the planner's static check, with the reason —
/// e.g. an `orbit-lint` finding naming the offending rank/op/site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RejectedCandidate {
    pub candidate: PlanCandidate,
    pub reason: String,
}

impl Plan {
    /// Engine name of the chosen strategy.
    pub fn chosen_name(&self) -> &'static str {
        strategy_name(self.chosen.strategy)
    }
}

/// No enumerated candidate fits in GPU memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    NoFeasible { gpus: usize, global_batch: usize },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::NoFeasible { gpus, global_batch } => write!(
                f,
                "no parallelization of this model fits on {gpus} GPUs \
                 at global batch {global_batch}"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// A pluggable static validity check over one candidate: `Ok(())` keeps
/// it, `Err(reason)` prunes it into [`Plan::rejected`] with the reason.
/// The canonical implementation is `orbit_core::planner_static_check`,
/// which lints the candidate's communication program symbolically — the
/// closure indirection keeps this crate free of engine dependencies.
pub type StaticCheckFn = std::sync::Arc<dyn Fn(&PlanCandidate) -> Result<(), String> + Send + Sync>;

/// Enumerates and ranks parallelization candidates with a [`PerfModel`].
#[derive(Clone, Default)]
pub struct Planner {
    pub model: PerfModel,
    /// Optional static validity check applied to every memory-feasible
    /// candidate before costing (see [`Planner::with_static_check`]).
    static_check: Option<StaticCheckFn>,
}

impl fmt::Debug for Planner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Planner")
            .field("model", &self.model)
            .field("static_check", &self.static_check.is_some())
            .finish()
    }
}

impl Planner {
    pub fn new(machine: FrontierMachine) -> Self {
        Planner {
            model: PerfModel::new(machine),
            static_check: None,
        }
    }

    /// Install a static validity check: every candidate that passes the
    /// memory filter is handed to `check`, and a rejection removes it
    /// from the ranking with an actionable diagnostic in
    /// [`Plan::rejected`]. [`Planner::plan_for_survivors`] inherits the
    /// check through [`Planner::plan`].
    pub fn with_static_check(mut self, check: StaticCheckFn) -> Self {
        self.static_check = Some(check);
        self
    }

    /// Number of data replicas a candidate runs — the divisor the global
    /// batch must split over (mirrors `PerfModel::replicas`).
    fn replicas(strategy: Strategy, layout: &ParallelLayout) -> usize {
        match strategy {
            Strategy::Ddp => layout.world(),
            Strategy::HybridStop => layout.ddp,
            _ => 1,
        }
    }

    /// The option variants worth searching for a candidate: wrap policy
    /// and prefetch only matter when there is an FSDP axis to shard over.
    fn opts_variants(strategy: Strategy, layout: &ParallelLayout) -> Vec<TrainOptions> {
        let has_fsdp_axis = match strategy {
            Strategy::Fsdp => layout.fsdp > 1,
            Strategy::HybridStop => layout.fsdp > 1,
            _ => false,
        };
        // Every engine routes attention through the fused streaming kernel
        // (`AttnPath::Auto` in orbit-tensor), so all candidates are modeled
        // with the linear attention memory term rather than the quadratic
        // naive one — without this, long-sequence configs that actually run
        // fine would be rejected on modeled memory.
        let base = TrainOptions {
            fused_attention: true,
            ..TrainOptions::none()
        };
        if has_fsdp_axis {
            vec![
                base,
                TrainOptions {
                    layer_wrapping: true,
                    ..base
                },
                TrainOptions {
                    layer_wrapping: true,
                    prefetch: true,
                    ..base
                },
            ]
        } else {
            vec![base]
        }
    }

    /// All legal `(strategy, layout)` points for `gpus` ranks: the global
    /// batch must divide over the data replicas, tensor parallelism must
    /// divide the head count, and a Hybrid-STOP layout must factor the
    /// world exactly.
    fn enumerate(
        &self,
        dims: &ModelDims,
        gpus: usize,
        global_batch: usize,
    ) -> Vec<(Strategy, ParallelLayout)> {
        let mut out = Vec::new();
        if gpus == 1 {
            out.push((Strategy::SingleDevice, ParallelLayout::new(1, 1, 1)));
            return out;
        }
        if global_batch.is_multiple_of(gpus) {
            out.push((Strategy::Ddp, ParallelLayout::new(1, 1, gpus)));
        }
        out.push((Strategy::Fsdp, ParallelLayout::new(1, gpus, 1)));
        if dims.heads.is_multiple_of(gpus) {
            out.push((Strategy::TensorParallel, ParallelLayout::new(gpus, 1, 1)));
        }
        for tp in (1..=gpus).filter(|t| gpus.is_multiple_of(*t) && dims.heads.is_multiple_of(*t)) {
            let rest = gpus / tp;
            for fsdp in (1..=rest).filter(|f| rest.is_multiple_of(*f)) {
                let ddp = rest / fsdp;
                if !global_batch.is_multiple_of(ddp) {
                    continue;
                }
                out.push((Strategy::HybridStop, ParallelLayout::new(tp, fsdp, ddp)));
            }
        }
        out
    }

    /// Enumerate, filter by memory, cost, and rank. The returned plan's
    /// `candidates` are ascending by predicted time; `chosen` is the head.
    pub fn plan(
        &self,
        dims: &ModelDims,
        gpus: usize,
        global_batch: usize,
    ) -> Result<Plan, PlanError> {
        let mut candidates = Vec::new();
        let mut rejected = Vec::new();
        for (strategy, layout) in self.enumerate(dims, gpus, global_batch) {
            let local_batch = global_batch / Self::replicas(strategy, &layout);
            for opts in Self::opts_variants(strategy, &layout) {
                if !self.model.fits(dims, &layout, strategy, &opts, local_batch) {
                    continue;
                }
                let predicted =
                    self.model
                        .epoch_relative_time(dims, &layout, strategy, &opts, global_batch);
                let predicted_mem = self
                    .model
                    .memory(dims, &layout, strategy, &opts, local_batch)
                    .total();
                let tp_intra_node =
                    RankMapping::new(layout).tp_groups_intra_node(&self.model.machine);
                let candidate = PlanCandidate {
                    strategy,
                    layout,
                    opts,
                    predicted,
                    predicted_mem,
                    tp_intra_node,
                };
                if let Some(check) = &self.static_check {
                    if let Err(reason) = check(&candidate) {
                        rejected.push(RejectedCandidate { candidate, reason });
                        continue;
                    }
                }
                candidates.push(candidate);
            }
        }
        candidates.sort_by(|a, b| a.predicted.total_cmp(&b.predicted));
        let chosen = candidates
            .first()
            .cloned()
            .ok_or(PlanError::NoFeasible { gpus, global_batch })?;
        Ok(Plan {
            gpus,
            global_batch,
            chosen,
            candidates,
            rejected,
        })
    }

    /// The engine-level *data-parallel* width of a candidate: how many
    /// ways the engines slice the global batch. Broader than
    /// [`Planner::replicas`] (gradient replicas): FSDP holds one gradient
    /// replica but still partitions data across every rank, and its
    /// lockstep collectives require the batch to divide evenly.
    fn data_shards(strategy: Strategy, layout: &ParallelLayout) -> usize {
        match strategy {
            Strategy::SingleDevice | Strategy::TensorParallel => 1,
            Strategy::Ddp | Strategy::Fsdp => layout.world(),
            Strategy::HybridStop => layout.fsdp * layout.ddp,
        }
    }

    /// Replan for an elastic restart: the best *executable* plan at the
    /// largest world size `<= survivors`, additionally constrained to an
    /// explicit per-GPU memory budget (the failing cluster's devices may
    /// be configured tighter than the machine default) and, optionally, a
    /// subset of strategies — serving restricts to the inference-capable
    /// engines.
    ///
    /// Unlike [`Planner::plan`], candidates whose engine-level data
    /// partitioning does not divide the global batch are rejected (the
    /// engines' lockstep microbatch loops assert even splits), and when
    /// nothing is executable at exactly `survivors` ranks the search
    /// shrinks further — an awkward survivor count (say 5 ranks for a
    /// batch of 8) falls back to the largest world that works, leaving
    /// the spare survivors idle. World 1 always has a single-device
    /// candidate, so `Err(NoFeasible)` means nothing *fits in memory*
    /// under the constraints at any usable world size.
    pub fn plan_for_survivors(
        &self,
        dims: &ModelDims,
        survivors: usize,
        global_batch: usize,
        mem_budget: Option<u64>,
        allowed: Option<&[Strategy]>,
    ) -> Result<Plan, PlanError> {
        for world in (1..=survivors).rev() {
            let Ok(mut plan) = self.plan(dims, world, global_batch) else {
                continue;
            };
            plan.candidates.retain(|c| {
                global_batch.is_multiple_of(Self::data_shards(c.strategy, &c.layout))
                    && mem_budget.is_none_or(|b| c.predicted_mem <= b)
                    && allowed.is_none_or(|a| a.contains(&c.strategy))
            });
            if let Some(chosen) = plan.candidates.first().cloned() {
                plan.chosen = chosen;
                return Ok(plan);
            }
        }
        Err(PlanError::NoFeasible {
            gpus: survivors,
            global_batch,
        })
    }

    /// Size one replica group out of a shared rank pool: the best
    /// executable plan at the largest world `<= min(spare, max_world)`.
    /// A serving fleet calls this when it scales a route up — `spare` is
    /// what the pool can lend right now, and `max_world` caps how much of
    /// it one group may take so a single route cannot starve the rest of
    /// the fleet. Same constraint semantics as
    /// [`Planner::plan_for_survivors`].
    pub fn plan_for_pool(
        &self,
        dims: &ModelDims,
        spare: usize,
        max_world: usize,
        global_batch: usize,
        mem_budget: Option<u64>,
        allowed: Option<&[Strategy]>,
    ) -> Result<Plan, PlanError> {
        let cap = spare.min(max_world);
        if cap == 0 {
            return Err(PlanError::NoFeasible {
                gpus: 0,
                global_batch,
            });
        }
        self.plan_for_survivors(dims, cap, global_batch, mem_budget, allowed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dims() -> ModelDims {
        // Mirrors VitConfig::test_tiny (orbit-vit depends on this crate,
        // so the dims are restated here).
        ModelDims {
            embed: 16,
            layers: 2,
            heads: 2,
            channels: 3,
            patch: 4,
            img_h: 8,
            img_w: 16,
            out_channels: 2,
        }
    }

    #[test]
    fn single_gpu_plans_single_device() {
        let plan = Planner::default().plan(&tiny_dims(), 1, 4).unwrap();
        assert_eq!(plan.chosen.strategy, Strategy::SingleDevice);
        assert_eq!(plan.chosen_name(), "single_device");
        assert_eq!(plan.candidates.len(), 1);
    }

    #[test]
    fn candidates_are_ranked_and_feasible() {
        let planner = Planner::default();
        let plan = planner.plan(&tiny_dims(), 8, 8).unwrap();
        assert!(plan.candidates.len() >= 3, "{}", plan.candidates.len());
        for pair in plan.candidates.windows(2) {
            assert!(pair[0].predicted <= pair[1].predicted);
        }
        assert_eq!(plan.chosen.predicted, plan.candidates[0].predicted);
        let usable = planner.model.machine.usable_mem();
        for c in &plan.candidates {
            assert!(c.predicted_mem <= usable);
        }
    }

    #[test]
    fn tensor_parallel_respects_head_count() {
        // 2 heads cannot split over 8 ranks: no pure-TP candidate, and no
        // hybrid candidate with tp > 2.
        let plan = Planner::default().plan(&tiny_dims(), 8, 8).unwrap();
        assert!(plan
            .candidates
            .iter()
            .all(|c| c.strategy != Strategy::TensorParallel));
        assert!(plan.candidates.iter().all(|c| c.layout.tp <= 2));
    }

    #[test]
    fn batch_must_divide_over_replicas() {
        // Global batch 6 over 4 GPUs: DDP (4 replicas) is illegal, but
        // hybrid layouts with ddp in {1, 2} still qualify.
        let plan = Planner::default().plan(&tiny_dims(), 4, 6).unwrap();
        assert!(plan.candidates.iter().all(|c| c.strategy != Strategy::Ddp));
        assert!(plan
            .candidates
            .iter()
            .all(|c| 6 % Planner::replicas(c.strategy, &c.layout) == 0));
    }

    #[test]
    fn hybrid_layouts_factor_the_world() {
        let plan = Planner::default().plan(&tiny_dims(), 8, 8).unwrap();
        for c in &plan.candidates {
            if c.strategy == Strategy::HybridStop {
                assert_eq!(c.layout.world(), 8);
            }
        }
    }

    #[test]
    fn oversized_model_yields_no_feasible_plan() {
        // The 113 B production model cannot fit on a single 64 GB GPU.
        let err = Planner::default()
            .plan(&ModelDims::orbit_113b(91), 1, 1)
            .unwrap_err();
        assert_eq!(
            err,
            PlanError::NoFeasible {
                gpus: 1,
                global_batch: 1
            }
        );
    }

    #[test]
    fn survivor_replan_shrinks_and_respects_filters() {
        let planner = Planner::default();
        // 8 ranks lost 3: replan at 5. Batch 10 divides 5, so DDP stays
        // legal; FSDP is always a candidate at the odd world size.
        let plan = planner
            .plan_for_survivors(&tiny_dims(), 5, 10, None, None)
            .unwrap();
        assert_eq!(plan.gpus, 5);
        assert!(plan.candidates.iter().any(|c| c.strategy == Strategy::Fsdp));
        // Strategy filter: restrict to FSDP only.
        let only_fsdp = planner
            .plan_for_survivors(&tiny_dims(), 5, 10, None, Some(&[Strategy::Fsdp]))
            .unwrap();
        assert!(only_fsdp
            .candidates
            .iter()
            .all(|c| c.strategy == Strategy::Fsdp));
        assert_eq!(only_fsdp.chosen.strategy, Strategy::Fsdp);
        // A memory budget below every candidate's footprint is NoFeasible.
        let err = planner
            .plan_for_survivors(&tiny_dims(), 5, 10, Some(1), None)
            .unwrap_err();
        assert_eq!(
            err,
            PlanError::NoFeasible {
                gpus: 5,
                global_batch: 10
            }
        );
    }

    #[test]
    fn survivor_replan_shrinks_past_awkward_world_sizes() {
        // 6 survivors but a global batch of 8: no engine can split 8
        // samples over 6 (or 5) lockstep data shards with 2 heads, so the
        // planner leaves survivors idle and lands on 4 ranks.
        let plan = Planner::default()
            .plan_for_survivors(&tiny_dims(), 6, 8, None, None)
            .unwrap();
        assert_eq!(plan.gpus, 4);
        assert_eq!(
            8 % Planner::data_shards(plan.chosen.strategy, &plan.chosen.layout),
            0
        );
    }

    #[test]
    fn pool_plan_caps_one_group_at_max_world() {
        let planner = Planner::default();
        // 12 spare ranks but a per-group cap of 4: the group takes at
        // most 4, not the whole pool.
        let plan = planner
            .plan_for_pool(&tiny_dims(), 12, 4, 8, None, None)
            .unwrap();
        assert!(plan.gpus <= 4);
        // A drained pool (or a zero cap) is NoFeasible, not a panic.
        assert!(planner
            .plan_for_pool(&tiny_dims(), 0, 4, 8, None, None)
            .is_err());
        // The pool itself can be the binding constraint.
        let plan = planner
            .plan_for_pool(&tiny_dims(), 2, 8, 8, None, None)
            .unwrap();
        assert!(plan.gpus <= 2);
    }

    #[test]
    fn survivor_replan_to_one_rank_is_single_device() {
        let plan = Planner::default()
            .plan_for_survivors(&tiny_dims(), 1, 4, None, None)
            .unwrap();
        assert_eq!(plan.chosen.strategy, Strategy::SingleDevice);
    }

    #[test]
    fn narrow_nodes_change_tp_placement() {
        // With 2-GPU nodes, a tp=2 group is intra-node but wider layouts
        // on 8 GPUs keep their FSDP members across nodes.
        let machine = FrontierMachine {
            gpus_per_node: 2,
            ..FrontierMachine::default()
        };
        let plan = Planner::new(machine).plan(&tiny_dims(), 8, 8).unwrap();
        for c in &plan.candidates {
            assert_eq!(c.tp_intra_node, c.layout.tp <= 2, "{:?}", c.layout);
        }
    }
}
