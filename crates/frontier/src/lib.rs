//! # orbit-frontier
//!
//! A machine model of the Frontier supercomputer (OLCF) and an analytic
//! performance model for training ORBIT-class vision transformers on it.
//!
//! The real evaluation in the paper ran on up to 49,152 MI250X GCDs — scale
//! we cannot execute. This crate provides the pieces that let ORBIT-RS
//! reproduce the paper's at-scale numbers honestly:
//!
//! 1. [`machine`]: hardware constants (node topology, memory capacity, link
//!    bandwidths, peak throughput) taken from the paper's "System Details".
//! 2. [`mapping`]: the hierarchical rank-to-hardware placement of paper
//!    Fig. 4 (tensor-parallel groups inside a node, FSDP groups across
//!    nodes, DDP groups across sub-clusters).
//! 3. [`dims`] + [`perfmodel`]: closed-form parameter counts, memory
//!    footprints, FLOP counts, communication volumes and walltimes for every
//!    parallelism strategy and optimization combination the paper ablates.
//! 4. [`planner`]: the auto-parallel search that enumerates legal
//!    (strategy, layout, options) candidates, filters by memory, and ranks
//!    them with the perf model — closing the loop back to the engines.
//!
//! The executable simulator in `orbit-comm` uses the same constants, and the
//! integration tests cross-validate the closed forms against simulated runs
//! at small scale.

#![forbid(unsafe_code)]

pub mod dims;
pub mod machine;
pub mod mapping;
pub mod perfmodel;
pub mod planner;

pub use dims::ModelDims;
pub use machine::{FrontierMachine, LinkKind};
pub use mapping::{ParallelLayout, RankMapping};
pub use perfmodel::{MemoryBreakdown, PerfModel, Strategy, TrainOptions};
pub use planner::{Plan, PlanCandidate, PlanError, Planner, RejectedCandidate, StaticCheckFn};
