//! Analytic performance model: memory, FLOPs, communication, walltime.
//!
//! Every quantity is derived from first principles (parameter counts,
//! collective volumes, ring-algorithm costs on the Frontier link speeds)
//! with a small set of named calibration constants. The model is
//! cross-validated against the executable simulator in `orbit-comm` at
//! small scale (see the workspace integration tests), then extrapolated to
//! the paper's 512-49,152 GPU range to regenerate Table I and Figs. 5-7.
//!
//! # What each strategy costs
//!
//! | strategy       | persistent state | transient gather            | grad sync |
//! |----------------|------------------|-----------------------------|-----------|
//! | single / DDP   | `16 P`           | none                        | all-reduce `4P` (DDP) |
//! | vanilla FSDP   | `16 P / N`       | **full model** (Fig. 2 peak)| reduce-scatter |
//! | Megatron TP    | `16 P / tp`      | none (activations reduced)  | within-replica none |
//! | Hybrid-STOP    | `16 P / (tp*fsdp)`| one *layer shard* `/tp`    | reduce-scatter in FSDP group |
//!
//! The `16 P` persistent bytes are: bf16 weights (2) + bf16 grads (2) +
//! fp32 master weights (4) + Adam moments (8) under mixed precision, or
//! fp32 weights (4) + grads (4) + moments (8) without.

use crate::dims::ModelDims;
use crate::machine::{FrontierMachine, LinkKind};
use crate::mapping::ParallelLayout;
use serde::{Deserialize, Serialize};

/// Parallelism strategy being modeled (paper Figs. 2, 3, 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// One GPU, no parallelism.
    SingleDevice,
    /// Distributed data parallel: replicated model, gradient all-reduce.
    Ddp,
    /// Vanilla fully-sharded data parallel (full-model gather, Fig. 2).
    Fsdp,
    /// Megatron-style tensor parallelism (limited by attention heads).
    TensorParallel,
    /// The paper's Hybrid-STOP (Fig. 3) with optional DDP level (Fig. 4).
    HybridStop,
}

/// The four engineering optimizations ablated in Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainOptions {
    /// Shard/gather parameters one transformer block at a time.
    pub layer_wrapping: bool,
    /// BF16 mixed precision with dynamic gradient scaling.
    pub mixed_precision: bool,
    /// Prefetch the next shard gather during compute (hides FSDP comm).
    pub prefetch: bool,
    /// Recompute activations in the backward pass instead of storing them.
    pub activation_checkpointing: bool,
    /// Stream attention through fixed key/value tiles (the fused
    /// online-softmax kernel) instead of materializing the full
    /// `heads x T x T` score matrix. Turns the attention activation term
    /// from quadratic to linear in sequence length.
    pub fused_attention: bool,
}

impl TrainOptions {
    /// All optimizations enabled (the paper's production configuration).
    pub fn all_on() -> Self {
        TrainOptions {
            layer_wrapping: true,
            mixed_precision: true,
            prefetch: true,
            activation_checkpointing: true,
            fused_attention: true,
        }
    }

    /// No optimizations (Table I column 1).
    pub fn none() -> Self {
        TrainOptions {
            layer_wrapping: false,
            mixed_precision: false,
            prefetch: false,
            activation_checkpointing: false,
            fused_attention: false,
        }
    }
}

/// KV-tile rows held live by the fused attention kernel — mirrors
/// `KV_TILE` in `orbit-tensor`'s streaming kernel.
const ATTN_KV_TILE: f64 = 64.0;

/// Calibration constants: the handful of empirical knobs the first-principles
/// formulas need. Defaults are tuned so the modeled Table I column and the
/// Fig. 5/7 endpoints land near the paper's reported values; every other
/// number is derived.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Calibration {
    /// Sustained fraction of FP32 peak for transformer training kernels.
    /// NOTE: mfu_fp32/mfu_bf16 are *calibration* constants fitted to the
    /// paper's Table I columns 2-3, not datasheet claims: on MI250X the
    /// sustained BF16:FP32 ratio for these kernels is ~2x (the paper's
    /// 0.97 s -> 0.49 s step), far below the 8x peak ratio.
    pub mfu_fp32: f64,
    /// Sustained fraction of BF16 matrix peak (see `mfu_fp32` note).
    pub mfu_bf16: f64,
    /// Stored activation floats per token-feature per transformer layer
    /// without checkpointing.
    pub act_floats_per_layer: f64,
    /// Stored boundary floats per token-feature per layer *with*
    /// checkpointing (layer inputs kept for recompute).
    pub ckpt_boundary_floats: f64,
    /// Fraction of tensor-parallel all-reduce time hidden under compute.
    pub tp_overlap: f64,
    /// Exposed fraction of FSDP gather/reduce-scatter time *without*
    /// explicit prefetching (PyTorch FSDP already overlaps the next
    /// layer's forward gather implicitly).
    pub fsdp_exposure: f64,
    /// Exposed fraction with the paper's backward-prefetching enabled.
    pub fsdp_exposure_prefetch: f64,
    /// Per-layer allocator/workspace overhead bytes (fragmentation, RCCL
    /// buffers, kernel workspaces).
    pub workspace_per_layer: u64,
    /// Effective MFU penalty when activations exceed this fraction of
    /// usable memory (allocator thrash near the OOM cliff; reproduces the
    /// Table I speedup from enabling activation checkpointing).
    pub mem_pressure_threshold: f64,
    /// Throughput multiplier applied under memory pressure.
    pub mem_pressure_penalty: f64,
    /// Straggler/jitter amplification per log2(world): at scale, OS noise,
    /// network contention and load imbalance stretch every step by a
    /// factor `1 + c * log2(world)` (calibrated to the paper's 113 B
    /// strong-scaling efficiency at 49,152 GPUs).
    pub straggler_per_log2_world: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            mfu_fp32: 0.595,
            mfu_bf16: 0.295,
            act_floats_per_layer: 16.0,
            ckpt_boundary_floats: 2.0,
            tp_overlap: 0.7,
            fsdp_exposure: 0.25,
            fsdp_exposure_prefetch: 0.02,
            workspace_per_layer: 200 << 20,
            mem_pressure_threshold: 0.25,
            mem_pressure_penalty: 0.3,
            straggler_per_log2_world: 0.027,
        }
    }
}

/// Per-GPU memory footprint decomposition, bytes.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MemoryBreakdown {
    /// Sharded weights + grads + master copy + Adam moments.
    pub persistent: u64,
    /// Peak transient gather buffer (full model for vanilla FSDP; one layer
    /// shard for layer-wrapped Hybrid-STOP; zero for TP/DDP).
    pub gather: u64,
    /// Stored activations at peak.
    pub activations: u64,
    /// Allocator/workspace overhead.
    pub workspace: u64,
}

impl MemoryBreakdown {
    /// Total peak bytes.
    pub fn total(&self) -> u64 {
        self.persistent + self.gather + self.activations + self.workspace
    }
}

/// Per-step time decomposition, seconds.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TimeBreakdown {
    pub compute: f64,
    /// Exposed (non-overlapped) tensor-parallel activation reductions.
    pub tp_comm: f64,
    /// Exposed FSDP shard gather/reduce-scatter time.
    pub fsdp_comm: f64,
    /// Exposed DDP gradient all-reduce time.
    pub ddp_comm: f64,
}

impl TimeBreakdown {
    /// Total step walltime.
    pub fn total(&self) -> f64 {
        self.compute + self.tp_comm + self.fsdp_comm + self.ddp_comm
    }
}

/// The analytic performance model.
#[derive(Debug, Clone, Default)]
pub struct PerfModel {
    pub machine: FrontierMachine,
    pub calib: Calibration,
}

impl PerfModel {
    pub fn new(machine: FrontierMachine) -> Self {
        PerfModel {
            machine,
            calib: Calibration::default(),
        }
    }

    /// Number of ways the persistent parameter state is sharded.
    fn shard_ways(&self, layout: &ParallelLayout, strategy: Strategy) -> usize {
        match strategy {
            Strategy::SingleDevice | Strategy::Ddp => 1,
            Strategy::Fsdp => layout.fsdp,
            Strategy::TensorParallel => layout.tp,
            Strategy::HybridStop => layout.tp * layout.fsdp,
        }
    }

    /// Bytes per parameter of the compute-precision working copy.
    fn compute_bytes(&self, opts: &TrainOptions) -> u64 {
        if opts.mixed_precision {
            2
        } else {
            4
        }
    }

    /// Peak per-GPU memory for one training step.
    pub fn memory(
        &self,
        dims: &ModelDims,
        layout: &ParallelLayout,
        strategy: Strategy,
        opts: &TrainOptions,
        local_batch: usize,
    ) -> MemoryBreakdown {
        let p = dims.param_count();
        let ways = self.shard_ways(layout, strategy) as u64;
        let persistent = 16 * p / ways;
        let cb = self.compute_bytes(opts);

        // Transient gather: the Fig. 2 vs Fig. 3 distinction. Vanilla FSDP
        // temporarily materializes the FULL model (its scaling ceiling);
        // Hybrid-STOP gathers only its tensor-parallel shard, one layer at
        // a time under layer wrapping. A same-sized transient exists for
        // gradient reduce-scatter staging, hence the factor 2.
        let gather = match strategy {
            Strategy::SingleDevice | Strategy::Ddp | Strategy::TensorParallel => 0,
            Strategy::Fsdp => {
                let unit = if opts.layer_wrapping {
                    dims.max_layer_params()
                } else {
                    p
                };
                cb * unit
            }
            Strategy::HybridStop => {
                let unit = if opts.layer_wrapping {
                    dims.max_layer_params()
                } else {
                    p
                };
                cb * unit / layout.tp as u64
            }
        };

        let activations = self.activation_bytes(dims, layout, strategy, opts, local_batch);
        let workspace = self.calib.workspace_per_layer * dims.layers as u64;
        MemoryBreakdown {
            persistent,
            gather,
            activations,
            workspace,
        }
    }

    /// Stored activation bytes at peak for a local batch.
    fn activation_bytes(
        &self,
        dims: &ModelDims,
        layout: &ParallelLayout,
        strategy: Strategy,
        opts: &TrainOptions,
        local_batch: usize,
    ) -> u64 {
        // Gradient accumulation caps the *live* activation footprint at a
        // fixed microbatch regardless of the per-step local batch.
        let b = (local_batch.min(4)) as f64;
        let t = dims.tokens() as f64;
        let d = dims.embed as f64;
        let l = dims.layers as f64;
        let cb = self.compute_bytes(opts) as f64;
        // Tensor parallelism shards the wide intermediate activations
        // (per-head attention, 4d MLP hidden); the residual stream and
        // layer inputs stay replicated.
        let tp_shard = match strategy {
            Strategy::TensorParallel | Strategy::HybridStop => layout.tp as f64,
            _ => 1.0,
        };
        let per_layer = if opts.activation_checkpointing {
            // Boundary activations replicated, stored in fp32 so the
            // recompute is re-entrant regardless of compute precision.
            b * t * d * self.calib.ckpt_boundary_floats * 4.0
        } else {
            // Most stored activations are the wide intermediates that
            // tensor parallelism shards (QKV, attention probs, 4d MLP
            // hidden); only the residual stream stays replicated.
            let sharded = 0.875 * self.calib.act_floats_per_layer / tp_shard;
            let replicated = 0.125 * self.calib.act_floats_per_layer;
            b * t * d * (sharded + replicated) * cb
        };
        // Tokenizer/aggregation activations: C channel embeddings per token
        // before aggregation (dominant at 91 channels). Checkpointing also
        // covers the tokenizer — only the aggregated embedding is stored.
        let tokenizer = if opts.activation_checkpointing {
            b * t * d * cb
        } else {
            b * t * d * dims.channels as f64 * cb / tp_shard
        };
        // One live (recompute) layer when checkpointing.
        let live = if opts.activation_checkpointing {
            b * t * d * self.calib.act_floats_per_layer * cb / tp_shard
        } else {
            0.0
        };
        // Attention score state. The naive kernel materializes a
        // `heads x T x T` probability matrix per sample for the backward;
        // the fused streaming kernel keeps only one KV tile of scores plus
        // a logsumexp per row, in f32 regardless of compute precision.
        // Heads are what tensor parallelism shards, so the term divides by
        // `tp_shard` either way. Stored for every layer without
        // checkpointing, and for the single live (recompute) layer with it.
        let heads = dims.heads as f64 / tp_shard;
        let attn_per_layer = if opts.fused_attention {
            b * heads * t * (ATTN_KV_TILE + 1.0) * 4.0
        } else {
            b * heads * t * t * cb
        };
        let attn_layers = if opts.activation_checkpointing {
            1.0
        } else {
            l
        };
        (per_layer * l + tokenizer + live + attn_per_layer * attn_layers) as u64
    }

    /// True if the configuration fits in GPU memory.
    pub fn fits(
        &self,
        dims: &ModelDims,
        layout: &ParallelLayout,
        strategy: Strategy,
        opts: &TrainOptions,
        local_batch: usize,
    ) -> bool {
        // Megatron tensor parallelism cannot exceed the head count
        // (paper Sec. II); Hybrid-STOP has no such limit.
        if strategy == Strategy::TensorParallel && layout.tp > dims.heads {
            return false;
        }
        self.memory(dims, layout, strategy, opts, local_batch)
            .total()
            <= self.machine.usable_mem()
    }

    /// Sustained effective FLOP/s per GPU in the given precision, adjusted
    /// for memory pressure.
    fn effective_flops(&self, opts: &TrainOptions, mem: &MemoryBreakdown) -> f64 {
        let base = if opts.mixed_precision {
            self.machine.peak_bf16 * self.calib.mfu_bf16
        } else {
            self.machine.peak_fp32 * self.calib.mfu_fp32
        };
        // Activation checkpointing relieves allocator pressure (the
        // mechanism behind Table I's 0.40 s -> 0.17 s speedup): only
        // non-checkpointed runs carry the full activation footprint in the
        // allocator's hot path.
        let act = if opts.activation_checkpointing {
            0
        } else {
            mem.activations
        };
        let pressure = (act + mem.gather) as f64 / self.machine.usable_mem() as f64;
        if pressure > self.calib.mem_pressure_threshold {
            base * self.calib.mem_pressure_penalty
        } else {
            base
        }
    }

    /// Training FLOPs per observation including checkpoint recompute.
    pub fn flops_per_obs(&self, dims: &ModelDims, opts: &TrainOptions) -> f64 {
        let base = dims.train_flops() as f64;
        if opts.activation_checkpointing {
            base * 4.0 / 3.0
        } else {
            base
        }
    }

    /// Walltime decomposition for one optimizer step in which each model
    /// replica processes `local_batch` observations.
    pub fn step_time(
        &self,
        dims: &ModelDims,
        layout: &ParallelLayout,
        strategy: Strategy,
        opts: &TrainOptions,
        local_batch: usize,
    ) -> TimeBreakdown {
        let m = &self.machine;
        let mem = self.memory(dims, layout, strategy, opts, local_batch);
        let p = dims.param_count();
        let cb = self.compute_bytes(opts);
        let model_shards = self.shard_ways(layout, strategy).max(1) as f64;

        // Compute: the replica's FLOPs divided over the GPUs that share the
        // model (tp*fsdp for Hybrid-STOP; tp for TP; fsdp for FSDP; 1 for
        // DDP/single).
        let replica_gpus = match strategy {
            Strategy::SingleDevice | Strategy::Ddp => 1.0,
            Strategy::Fsdp => layout.fsdp as f64,
            Strategy::TensorParallel => layout.tp as f64,
            Strategy::HybridStop => (layout.tp * layout.fsdp) as f64,
        };
        let flops = local_batch as f64 * self.flops_per_obs(dims, opts);
        let compute = flops / (replica_gpus * self.effective_flops(opts, &mem));

        // Tensor-parallel activation all-reduces: 4 per layer per
        // micro-batch (2 sub-layers, forward + backward). Intra-node when
        // the TP group fits in a node (the Fig. 4 placement); a TP group
        // spilling across nodes pays Slingshot cost with full crowding —
        // the penalty behind Fig. 6's slow large-TP configurations.
        let tp_comm_raw = if matches!(strategy, Strategy::TensorParallel | Strategy::HybridStop)
            && layout.tp > 1
        {
            let act_bytes = (local_batch * dims.tokens() * dims.embed) as u64 * cb;
            let link = if layout.tp <= m.gpus_per_node {
                LinkKind::IntraNode
            } else {
                LinkKind::InterNode
            };
            4.0 * dims.layers as f64 * m.all_reduce_time(layout.tp, act_bytes, link)
        } else {
            0.0
        };
        // Compute/communication overlap for TP reductions is only
        // achievable over the in-node fabric; a TP group spilling across
        // nodes is fully exposed.
        let tp_overlap = if layout.tp <= m.gpus_per_node {
            self.calib.tp_overlap
        } else {
            0.0
        };
        let tp_comm = tp_comm_raw * (1.0 - tp_overlap);

        // FSDP shard traffic: per wrapped unit, 2 all-gathers (fwd + bwd)
        // and 1 reduce-scatter, across the FSDP group. Because FSDP group
        // members sit on *different nodes* (Fig. 4 mapping), each member
        // enjoys the full node injection bandwidth.
        let fsdp_comm_raw =
            if matches!(strategy, Strategy::Fsdp | Strategy::HybridStop) && layout.fsdp > 1 {
                let tp_div = if strategy == Strategy::HybridStop {
                    layout.tp as u64
                } else {
                    1
                };
                let units: u64 = if opts.layer_wrapping {
                    dims.layers as u64
                } else {
                    1
                };
                let unit_params = if opts.layer_wrapping { p / units } else { p };
                // FSDP members are spaced `tp` ranks apart, so a node hosts
                // `gpus_per_node / tp` members of the same FSDP group, which
                // share its injection bandwidth (full bandwidth at tp = 8).
                let crowding =
                    (m.gpus_per_node as f64 / layout.tp.min(m.gpus_per_node) as f64).max(1.0);
                let node_bw = m.inter_node_bw * m.gpus_per_node as f64 / crowding;
                let shard_bytes = (unit_params / tp_div / layout.fsdp as u64) * cb;
                let steps = (layout.fsdp - 1) as f64;
                let ag = steps * (m.inter_node_latency + shard_bytes as f64 / node_bw);
                units as f64 * 3.0 * ag
            } else {
                0.0
            };
        let fsdp_comm = fsdp_comm_raw
            * if opts.prefetch {
                self.calib.fsdp_exposure_prefetch
            } else {
                self.calib.fsdp_exposure
            };

        // DDP gradient all-reduce: once per step over each rank's owned
        // grad shard, across sub-clusters (inter-node, shared injection).
        let ddp_size = match strategy {
            Strategy::Ddp => layout.world(),
            Strategy::HybridStop => layout.ddp,
            _ => 1,
        };
        let ddp_comm = if ddp_size > 1 {
            let grad_bytes = (p as f64 / model_shards * cb as f64) as u64;
            m.all_reduce_time(ddp_size, grad_bytes, LinkKind::InterNode)
        } else {
            0.0
        };

        TimeBreakdown {
            compute,
            tp_comm,
            fsdp_comm,
            ddp_comm,
        }
    }

    /// Average walltime to process one observation on the whole machine:
    /// step time divided by the observations processed per step
    /// (`local_batch * number of data-parallel replicas`).
    pub fn time_per_obs(
        &self,
        dims: &ModelDims,
        layout: &ParallelLayout,
        strategy: Strategy,
        opts: &TrainOptions,
        local_batch: usize,
    ) -> f64 {
        let replicas = match strategy {
            Strategy::Ddp => layout.world(),
            Strategy::HybridStop => layout.ddp,
            _ => 1,
        };
        self.step_time(dims, layout, strategy, opts, local_batch)
            .total()
            * self.straggler_factor(layout.world())
            / (local_batch * replicas) as f64
    }

    /// Step-stretch factor from stragglers/jitter at a given world size.
    pub fn straggler_factor(&self, world: usize) -> f64 {
        1.0 + self.calib.straggler_per_log2_world * (world.max(1) as f64).log2()
    }

    /// Number of independent data replicas under a strategy.
    fn replicas(&self, layout: &ParallelLayout, strategy: Strategy) -> usize {
        match strategy {
            Strategy::Ddp => layout.world(),
            Strategy::HybridStop => layout.ddp,
            _ => 1,
        }
    }

    /// Sustained FLOP/s of the whole machine for this configuration.
    pub fn sustained_flops(
        &self,
        dims: &ModelDims,
        layout: &ParallelLayout,
        strategy: Strategy,
        opts: &TrainOptions,
        local_batch: usize,
    ) -> f64 {
        self.flops_per_obs(dims, opts)
            / self.time_per_obs(dims, layout, strategy, opts, local_batch)
    }

    /// Strong-scaling efficiency of `layout` relative to `base_layout`
    /// with a fixed global batch (paper Fig. 7 definition: speedup per
    /// added GPU relative to the 512-GPU baseline).
    pub fn scaling_efficiency(
        &self,
        dims: &ModelDims,
        base_layout: &ParallelLayout,
        layout: &ParallelLayout,
        strategy: Strategy,
        opts: &TrainOptions,
        global_batch: usize,
    ) -> f64 {
        let t_base = self.epoch_relative_time(dims, base_layout, strategy, opts, global_batch);
        let t = self.epoch_relative_time(dims, layout, strategy, opts, global_batch);
        let speedup = t_base / t;
        let gpu_ratio = layout.world() as f64 / base_layout.world() as f64;
        speedup / gpu_ratio
    }

    /// Time for one global batch (proxy for epoch time at fixed batch).
    ///
    /// Built from a unit step: compute and tensor-parallel reductions scale
    /// with the observations each *active* replica processes (fractional —
    /// replicas beyond the global batch size sit idle, which is what caps
    /// strong scaling for the small models in Fig. 7); the FSDP gathers and
    /// the DDP gradient reduction are paid once per optimizer step.
    pub fn epoch_relative_time(
        &self,
        dims: &ModelDims,
        layout: &ParallelLayout,
        strategy: Strategy,
        opts: &TrainOptions,
        global_batch: usize,
    ) -> f64 {
        let replicas = self.replicas(layout, strategy);
        let active = replicas.min(global_batch).max(1);
        let obs_per_active = global_batch as f64 / active as f64;
        let unit = self.step_time(dims, layout, strategy, opts, 1);
        ((unit.compute + unit.tp_comm) * obs_per_active + unit.fsdp_comm + unit.ddp_comm)
            * self.straggler_factor(layout.world())
    }

    /// Machine-wide walltime per observation at a fixed global batch,
    /// accounting for idle replicas (the Fig. 7 "T" metric).
    pub fn time_per_obs_at_global_batch(
        &self,
        dims: &ModelDims,
        layout: &ParallelLayout,
        strategy: Strategy,
        opts: &TrainOptions,
        global_batch: usize,
    ) -> f64 {
        self.epoch_relative_time(dims, layout, strategy, opts, global_batch) / global_batch as f64
    }

    /// The model family searched in Fig. 5: interpolates the paper's four
    /// presets by embedding width, then keeps growing depth past the 113 B
    /// config. Returns the dims at a scale index (monotone in parameters).
    pub fn family(scale: usize, channels: usize) -> ModelDims {
        // Embedding grows in steps of 512 from 512 to 12288, then layers
        // grow. Heads follow the paper's presets.
        let max_embed_steps = (12288 - 512) / 512;
        if scale <= max_embed_steps {
            let embed = 512 + 512 * scale;
            // The searched family caps at 32 heads: the paper's Fig. 5
            // tensor-parallel line saturating at 73 B is consistent with a
            // 32-way head limit in the searched configurations.
            let heads = if embed <= 3072 { 16 } else { 32 };
            // Depth ramps from 8 to 56 across the embed range, roughly
            // matching the presets (8 @ 1024-3072, 11 @ 8192, 56 @ 12288).
            let layers = if embed <= 3072 {
                8
            } else if embed <= 8192 {
                8 + (embed - 3072) / 1024
            } else {
                13 + (embed - 8192) * 43 / 4096
            };
            ModelDims::paper(embed, layers, heads, channels)
        } else {
            let extra = scale - max_embed_steps;
            ModelDims::paper(12288, 56 + 4 * extra, 32, channels)
        }
    }

    /// Largest model (by parameter count) of [`Self::family`] that fits on
    /// `gpus` GPUs under `strategy` — the Fig. 5 search. Returns the dims
    /// and its parameter count.
    pub fn max_model(
        &self,
        strategy: Strategy,
        gpus: usize,
        opts: &TrainOptions,
        local_batch: usize,
        channels: usize,
    ) -> (ModelDims, u64) {
        let mut best: Option<(ModelDims, u64)> = None;
        for scale in 0..200 {
            let dims = Self::family(scale, channels);
            let layout = self.best_layout_for(strategy, gpus, &dims);
            if self.fits(&dims, &layout, strategy, opts, local_batch) {
                let p = dims.param_count();
                if best.map(|(_, bp)| p > bp).unwrap_or(true) {
                    best = Some((dims, p));
                }
            }
        }
        best.unwrap_or((
            Self::family(0, channels),
            Self::family(0, channels).param_count(),
        ))
    }

    /// Canonical layout a strategy uses on `gpus` GPUs for the Fig. 5
    /// search: FSDP shards over everything, TP is capped by head count,
    /// Hybrid-STOP puts a node-sized TP group inside and FSDP across.
    pub fn best_layout_for(
        &self,
        strategy: Strategy,
        gpus: usize,
        dims: &ModelDims,
    ) -> ParallelLayout {
        match strategy {
            Strategy::SingleDevice => ParallelLayout::new(1, 1, 1),
            Strategy::Ddp => ParallelLayout::new(1, 1, gpus),
            Strategy::Fsdp => ParallelLayout::new(1, gpus, 1),
            Strategy::TensorParallel => ParallelLayout::new(gpus.min(dims.heads), 1, 1),
            Strategy::HybridStop => {
                let tp = gpus.min(self.machine.gpus_per_node);
                ParallelLayout::new(tp, (gpus / tp).max(1), 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PerfModel {
        PerfModel::default()
    }

    #[test]
    fn fsdp_peaks_above_hybrid_stop() {
        // The central memory claim of the paper (Figs. 2 vs 3): vanilla
        // FSDP's transient full-model gather dwarfs Hybrid-STOP's
        // layer-shard gather.
        let m = model();
        let dims = ModelDims::orbit_113b(48);
        let opts = TrainOptions::all_on();
        // Vanilla FSDP means no layer wrapping: the full model is gathered.
        let opts_vanilla = TrainOptions {
            layer_wrapping: false,
            ..opts
        };
        let fsdp = m.memory(
            &dims,
            &ParallelLayout::new(1, 512, 1),
            Strategy::Fsdp,
            &opts_vanilla,
            2,
        );
        let hs = m.memory(
            &dims,
            &ParallelLayout::new(8, 64, 1),
            Strategy::HybridStop,
            &opts,
            2,
        );
        assert!(
            fsdp.gather > 50 * hs.gather,
            "{} vs {}",
            fsdp.gather,
            hs.gather
        );
        assert!(fsdp.total() > hs.total());
    }

    #[test]
    fn layer_wrapping_cuts_gather_memory() {
        let m = model();
        let dims = ModelDims::orbit_113b(48);
        let mut opts = TrainOptions::all_on();
        let layout = ParallelLayout::new(8, 64, 1);
        let wrapped = m.memory(&dims, &layout, Strategy::HybridStop, &opts, 2);
        opts.layer_wrapping = false;
        let unwrapped = m.memory(&dims, &layout, Strategy::HybridStop, &opts, 2);
        assert!(unwrapped.gather > 40 * wrapped.gather);
    }

    #[test]
    fn checkpointing_cuts_activation_memory() {
        let m = model();
        let dims = ModelDims::orbit_10b(48);
        // Without tensor parallelism the full activation stack is stored,
        // so checkpointing saves the most there.
        let layout = ParallelLayout::new(1, 64, 1);
        let mut opts = TrainOptions::all_on();
        let with = m.memory(&dims, &layout, Strategy::HybridStop, &opts, 2);
        opts.activation_checkpointing = false;
        let without = m.memory(&dims, &layout, Strategy::HybridStop, &opts, 2);
        assert!(
            without.activations > 2 * with.activations,
            "{} !> 2x {}",
            without.activations,
            with.activations
        );
    }

    #[test]
    fn tp_cannot_exceed_heads_but_hybrid_can() {
        let m = model();
        let dims = ModelDims::paper(1024, 8, 4, 48); // only 4 heads
        let layout = ParallelLayout::new(8, 1, 1);
        let opts = TrainOptions::all_on();
        assert!(!m.fits(&dims, &layout, Strategy::TensorParallel, &opts, 2));
        assert!(m.fits(
            &dims,
            &ParallelLayout::new(8, 1, 1),
            Strategy::HybridStop,
            &opts,
            2
        ));
    }

    #[test]
    fn table1_unwrapped_113b_ooms() {
        // Table I column 1: no optimizations => OOM on 512 GPUs.
        let m = model();
        let dims = ModelDims::orbit_113b(48);
        let layout = ParallelLayout::new(8, 64, 1);
        assert!(!m.fits(
            &dims,
            &layout,
            Strategy::HybridStop,
            &TrainOptions::none(),
            2
        ));
        // With all optimizations it fits.
        assert!(m.fits(
            &dims,
            &layout,
            Strategy::HybridStop,
            &TrainOptions::all_on(),
            2
        ));
    }

    #[test]
    fn fused_attention_unlocks_long_sequences() {
        // ORBIT-2-style downscaling: shrinking the patch edge to 1 px
        // explodes the token count to 128*256 = 32768. The naive kernel's
        // heads x T x T probability matrix then dwarfs GPU memory even with
        // checkpointing (one live layer), while the fused kernel's
        // O(T * tile) state is negligible — `fits` must flip on the same
        // config when the attention plan changes.
        let m = model();
        let mut dims = ModelDims::paper(2048, 8, 32, 48);
        dims.patch = 1;
        let layout = ParallelLayout::new(1, 8, 1);
        let fused = TrainOptions::all_on();
        let naive = TrainOptions {
            fused_attention: false,
            ..TrainOptions::all_on()
        };
        let mem_naive = m.memory(&dims, &layout, Strategy::Fsdp, &naive, 2);
        let mem_fused = m.memory(&dims, &layout, Strategy::Fsdp, &fused, 2);
        assert!(
            mem_naive.activations > 8 * mem_fused.activations,
            "naive {} !>> fused {}",
            mem_naive.activations,
            mem_fused.activations
        );
        assert!(!m.fits(&dims, &layout, Strategy::Fsdp, &naive, 2));
        assert!(m.fits(&dims, &layout, Strategy::Fsdp, &fused, 2));
    }

    #[test]
    fn mixed_precision_speeds_up_compute() {
        let m = model();
        let dims = ModelDims::orbit_113b(48);
        let layout = ParallelLayout::new(8, 64, 1);
        let mut opts = TrainOptions::all_on();
        let fast = m.step_time(&dims, &layout, Strategy::HybridStop, &opts, 2);
        opts.mixed_precision = false;
        let slow = m.step_time(&dims, &layout, Strategy::HybridStop, &opts, 2);
        assert!(slow.compute > 1.5 * fast.compute);
    }

    #[test]
    fn prefetch_hides_fsdp_comm() {
        let m = model();
        let dims = ModelDims::orbit_113b(48);
        let layout = ParallelLayout::new(8, 64, 1);
        let mut opts = TrainOptions::all_on();
        opts.prefetch = false;
        let exposed = m.step_time(&dims, &layout, Strategy::HybridStop, &opts, 2);
        opts.prefetch = true;
        let hidden = m.step_time(&dims, &layout, Strategy::HybridStop, &opts, 2);
        assert!(hidden.fsdp_comm < exposed.fsdp_comm);
    }

    #[test]
    fn family_is_monotone_in_params() {
        let mut prev = 0;
        for scale in 0..60 {
            let p = PerfModel::family(scale, 48).param_count();
            assert!(p > prev, "family not monotone at scale {scale}");
            prev = p;
        }
    }

    #[test]
    fn fig5_ordering_fsdp_lt_tp_lt_hybrid() {
        // The paper's Fig. 5 headline at 512 GPUs: FSDP < TP < Hybrid-STOP.
        let m = model();
        let opts_hs = TrainOptions::all_on();
        // Vanilla FSDP: no layer wrapping (that is what makes it vanilla).
        let opts_fsdp = TrainOptions {
            layer_wrapping: false,
            ..TrainOptions::all_on()
        };
        // Megatron TP traditionally runs without full checkpointing.
        let opts_tp = TrainOptions {
            activation_checkpointing: false,
            ..TrainOptions::all_on()
        };
        let (_, p_fsdp) = m.max_model(Strategy::Fsdp, 512, &opts_fsdp, 2, 48);
        let (_, p_tp) = m.max_model(Strategy::TensorParallel, 512, &opts_tp, 2, 48);
        let (_, p_hs) = m.max_model(Strategy::HybridStop, 512, &opts_hs, 2, 48);
        assert!(p_fsdp < p_tp, "FSDP {p_fsdp} !< TP {p_tp}");
        assert!(p_tp < p_hs, "TP {p_tp} !< Hybrid-STOP {p_hs}");
        // Hybrid-STOP should exceed the 113 B production model.
        assert!(p_hs > 113_000_000_000, "Hybrid-STOP max {p_hs}");
    }

    #[test]
    fn efficiency_decreases_with_scale_but_stays_reasonable() {
        let m = model();
        let dims = ModelDims::orbit_113b(48);
        let opts = TrainOptions::all_on();
        let base = ParallelLayout::new(8, 64, 1);
        let big = ParallelLayout::new(8, 64, 96); // 49,152 GPUs
        let eff = m.scaling_efficiency(&dims, &base, &big, Strategy::HybridStop, &opts, 2880);
        assert!(eff > 0.3 && eff <= 1.05, "efficiency {eff}");
    }
}
