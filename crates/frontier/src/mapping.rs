//! Hierarchical rank placement (paper Fig. 4).
//!
//! Hybrid-STOP uses three orthogonal parallel group kinds with very
//! different communication profiles, so they are mapped to the machine
//! hierarchy by communication intensity:
//!
//! - **Tensor-parallel groups** reduce activations every layer (fine-grain,
//!   frequent) — mapped to GPUs *within one node* (Infinity Fabric).
//! - **FSDP groups** gather/reduce-scatter parameter shards once per layer
//!   (coarser) — mapped *across nodes*.
//! - **DDP groups** reduce gradients once per global batch — mapped across
//!   *sub-clusters*.
//!
//! The world is factored as `world = tp * fsdp * ddp`. Rank `r` decomposes
//! with `tp` fastest-varying (so consecutive ranks — which share a node —
//! form the tensor-parallel group), then `fsdp`, then `ddp`:
//! `r = ddp_idx * (fsdp * tp) + fsdp_idx * tp + tp_idx`.

use crate::machine::FrontierMachine;
use serde::{Deserialize, Serialize};

/// Sizes of the three orthogonal parallel group kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelLayout {
    /// Tensor-parallel group size (intra-node).
    pub tp: usize,
    /// FSDP group size (across nodes).
    pub fsdp: usize,
    /// DDP group count dimension (across sub-clusters).
    pub ddp: usize,
}

impl ParallelLayout {
    pub fn new(tp: usize, fsdp: usize, ddp: usize) -> Self {
        assert!(tp >= 1 && fsdp >= 1 && ddp >= 1, "group sizes must be >= 1");
        ParallelLayout { tp, fsdp, ddp }
    }

    /// Total world size `tp * fsdp * ddp`.
    pub fn world(&self) -> usize {
        self.tp * self.fsdp * self.ddp
    }

    /// Model parameters are sharded over `tp * fsdp` ranks.
    pub fn model_shards(&self) -> usize {
        self.tp * self.fsdp
    }
}

/// Decomposed coordinates of one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankCoords {
    pub tp_idx: usize,
    pub fsdp_idx: usize,
    pub ddp_idx: usize,
}

/// Placement of a [`ParallelLayout`] onto a machine.
#[derive(Debug, Clone)]
pub struct RankMapping {
    layout: ParallelLayout,
}

impl RankMapping {
    pub fn new(layout: ParallelLayout) -> Self {
        RankMapping { layout }
    }

    pub fn layout(&self) -> ParallelLayout {
        self.layout
    }

    /// Decompose a flat rank into (tp, fsdp, ddp) coordinates.
    pub fn coords(&self, rank: usize) -> RankCoords {
        assert!(rank < self.layout.world(), "rank {rank} out of range");
        let tp_idx = rank % self.layout.tp;
        let fsdp_idx = (rank / self.layout.tp) % self.layout.fsdp;
        let ddp_idx = rank / (self.layout.tp * self.layout.fsdp);
        RankCoords {
            tp_idx,
            fsdp_idx,
            ddp_idx,
        }
    }

    /// Flat rank from coordinates (inverse of [`Self::coords`]).
    pub fn rank_of(&self, c: RankCoords) -> usize {
        c.ddp_idx * self.layout.tp * self.layout.fsdp + c.fsdp_idx * self.layout.tp + c.tp_idx
    }

    /// Ranks in the same tensor-parallel group as `rank` (including it),
    /// in tp-index order.
    pub fn tp_group(&self, rank: usize) -> Vec<usize> {
        let c = self.coords(rank);
        (0..self.layout.tp)
            .map(|t| self.rank_of(RankCoords { tp_idx: t, ..c }))
            .collect()
    }

    /// Ranks in the same FSDP group as `rank`, in fsdp-index order.
    pub fn fsdp_group(&self, rank: usize) -> Vec<usize> {
        let c = self.coords(rank);
        (0..self.layout.fsdp)
            .map(|f| self.rank_of(RankCoords { fsdp_idx: f, ..c }))
            .collect()
    }

    /// Ranks in the same DDP (data-replica) group as `rank` — ranks holding
    /// the *same* model shard in different data replicas.
    pub fn ddp_group(&self, rank: usize) -> Vec<usize> {
        let c = self.coords(rank);
        (0..self.layout.ddp)
            .map(|d| self.rank_of(RankCoords { ddp_idx: d, ..c }))
            .collect()
    }

    /// True if every tensor-parallel group fits inside one node of the
    /// machine — the paper's placement requirement.
    pub fn tp_groups_intra_node(&self, machine: &FrontierMachine) -> bool {
        if self.layout.tp > machine.gpus_per_node {
            return false;
        }
        (0..self.layout.world()).all(|r| {
            let group = self.tp_group(r);
            let node = machine.node_of(group[0]);
            group.iter().all(|&g| machine.node_of(g) == node)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_roundtrip() {
        let m = RankMapping::new(ParallelLayout::new(4, 2, 3));
        for r in 0..24 {
            assert_eq!(m.rank_of(m.coords(r)), r);
        }
    }

    #[test]
    fn fig4_example_groups() {
        // Paper Fig. 4: 16 GPUs, tp=4, fsdp=2, ddp=2 (two nodes per DDP
        // group of 8 GPUs). GPUs 1 and 5 (0-indexed: 0 and 4) are an FSDP
        // pair with our tp-fastest layout of tp=4.
        let m = RankMapping::new(ParallelLayout::new(4, 2, 2));
        assert_eq!(m.tp_group(0), vec![0, 1, 2, 3]);
        assert_eq!(m.fsdp_group(0), vec![0, 4]);
        assert_eq!(m.ddp_group(0), vec![0, 8]);
        assert_eq!(m.tp_group(5), vec![4, 5, 6, 7]);
    }

    #[test]
    fn groups_partition_the_world() {
        let m = RankMapping::new(ParallelLayout::new(2, 4, 2));
        // Every rank appears in exactly one tp group.
        let mut seen = vec![0usize; 16];
        for r in 0..16 {
            if m.coords(r).tp_idx == 0 {
                for &g in &m.tp_group(r) {
                    seen[g] += 1;
                }
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
    }

    #[test]
    fn groups_are_mutually_orthogonal() {
        // A rank's tp, fsdp and ddp groups intersect pairwise exactly at
        // that rank — the "orthogonal" in Hybrid-STOP.
        let m = RankMapping::new(ParallelLayout::new(4, 4, 2));
        for r in [0usize, 5, 13, 31] {
            let tp: Vec<_> = m.tp_group(r);
            let fsdp: Vec<_> = m.fsdp_group(r);
            let ddp: Vec<_> = m.ddp_group(r);
            let inter = |a: &[usize], b: &[usize]| a.iter().filter(|x| b.contains(x)).count();
            assert_eq!(inter(&tp, &fsdp), 1);
            assert_eq!(inter(&tp, &ddp), 1);
            assert_eq!(inter(&fsdp, &ddp), 1);
        }
    }

    #[test]
    fn tp_maps_intra_node_when_it_divides_node_size() {
        let machine = FrontierMachine::default();
        for tp in [1usize, 2, 4, 8] {
            let m = RankMapping::new(ParallelLayout::new(tp, 4, 2));
            assert!(m.tp_groups_intra_node(&machine), "tp={tp}");
        }
        // tp larger than a node can never be intra-node.
        let m = RankMapping::new(ParallelLayout::new(16, 2, 1));
        assert!(!m.tp_groups_intra_node(&machine));
    }

    #[test]
    fn world_and_shard_counts() {
        let l = ParallelLayout::new(8, 64, 12);
        assert_eq!(l.world(), 6144);
        assert_eq!(l.model_shards(), 512);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_rank() {
        let m = RankMapping::new(ParallelLayout::new(2, 2, 2));
        let _ = m.coords(8);
    }
}
