//! `kernel_bench` — fused tiled attention vs the naive reference kernel.
//!
//! Sweeps sequence length x heads x precision and times the forward and
//! backward of both attention paths on identical inputs:
//!
//! * **naive** — `AttnPath::Reference`: materializes the `T x T` score
//!   matrix per head (matmul_nt -> scale -> softmax -> matmul), which is
//!   exactly the pre-fused-kernel implementation and remains the
//!   gradient-check oracle.
//! * **fused** — `AttnPath::Fused`: streaming KV tiles with online softmax,
//!   parallel over heads x query-row blocks, scratch from a pooled
//!   [`Workspace`] (zero steady-state allocation).
//!
//! Besides wall-clock, each cell records what the cache keeps *resident*
//! for the backward (`MhaCache::resident_bytes`): quadratic in `T` for
//! naive, linear for fused — the ratio must shrink as `T` grows.
//!
//! Writes `results/kernel_bench.json` (also under `--smoke`, which CI
//! asserts on). Usage:
//!
//! ```text
//! kernel_bench [--smoke]
//! ```

use orbit_bench::report::{print_table, write_json};
use orbit_tensor::init::Rng;
use orbit_tensor::kernels::attention::{mha_backward_ws, mha_forward_path, AttnPath};
use orbit_tensor::{Precision, Workspace};
use serde_json::json;
use std::hint::black_box;
use std::time::Instant;

const D_HEAD: usize = 64;

struct Cell {
    tokens: usize,
    heads: usize,
    prec: Precision,
}

fn prec_name(p: Precision) -> &'static str {
    match p {
        Precision::F32 => "f32",
        Precision::BF16Mixed => "bf16_mixed",
    }
}

struct Measurement {
    fwd_s: f64,
    bwd_s: f64,
    resident_bytes: usize,
    ws_peak_bytes: usize,
}

/// Time `iters` forward+backward pairs of one path after a warmup pair
/// (the warmup also fills the workspace pool, so the measured iterations
/// see the steady state the training loop runs in).
fn measure(cell: &Cell, path: AttnPath, iters: usize) -> Measurement {
    let d_model = cell.heads * D_HEAD;
    let mut rng = Rng::seed(4242 + cell.tokens as u64);
    let q = rng.normal_tensor(cell.tokens, d_model, 0.7);
    let k = rng.normal_tensor(cell.tokens, d_model, 0.7);
    let v = rng.normal_tensor(cell.tokens, d_model, 0.7);
    let dy = rng.normal_tensor(cell.tokens, d_model, 1.0);
    let ws = Workspace::new();

    let fwd = |ws: &Workspace| mha_forward_path(&q, &k, &v, cell.heads, None, cell.prec, path, ws);
    let (_, cache) = fwd(&ws);
    black_box(mha_backward_ws(&cache, None, &dy, &ws));
    let resident_bytes = cache.resident_bytes();
    ws.reset_peak();

    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(fwd(&ws).0);
    }
    let fwd_s = t0.elapsed().as_secs_f64() / iters as f64;

    let t1 = Instant::now();
    for _ in 0..iters {
        black_box(mha_backward_ws(&cache, None, &dy, &ws));
    }
    let bwd_s = t1.elapsed().as_secs_f64() / iters as f64;

    Measurement {
        fwd_s,
        bwd_s,
        resident_bytes,
        ws_peak_bytes: ws.peak_bytes(),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cells: Vec<Cell> = if smoke {
        vec![
            Cell {
                tokens: 256,
                heads: 8,
                prec: Precision::F32,
            },
            Cell {
                tokens: 512,
                heads: 8,
                prec: Precision::F32,
            },
            Cell {
                tokens: 1024,
                heads: 8,
                prec: Precision::F32,
            },
            Cell {
                tokens: 1024,
                heads: 8,
                prec: Precision::BF16Mixed,
            },
        ]
    } else {
        let mut v: Vec<Cell> = [256usize, 512, 1024, 2048]
            .iter()
            .flat_map(|&t| {
                [8usize, 16].iter().map(move |&h| Cell {
                    tokens: t,
                    heads: h,
                    prec: Precision::F32,
                })
            })
            .collect();
        v.push(Cell {
            tokens: 1024,
            heads: 8,
            prec: Precision::BF16Mixed,
        });
        v
    };

    let mut rows = Vec::new();
    let mut artifacts = Vec::new();
    let mut headline = None;
    for cell in &cells {
        let iters = if cell.tokens >= 2048 {
            3
        } else if cell.tokens >= 1024 {
            5
        } else {
            10
        };
        let naive = measure(cell, AttnPath::Reference, iters);
        let fused = measure(cell, AttnPath::Fused, iters);
        let fwd_speedup = naive.fwd_s / fused.fwd_s;
        let bwd_speedup = naive.bwd_s / fused.bwd_s;
        let resident_ratio = fused.resident_bytes as f64 / naive.resident_bytes as f64;
        if cell.tokens == 1024 && cell.heads == 8 && cell.prec == Precision::F32 {
            headline = Some(fwd_speedup);
        }
        rows.push(vec![
            cell.tokens.to_string(),
            cell.heads.to_string(),
            prec_name(cell.prec).to_string(),
            format!("{:.2}", naive.fwd_s * 1e3),
            format!("{:.2}", fused.fwd_s * 1e3),
            format!("{fwd_speedup:.2}x"),
            format!("{bwd_speedup:.2}x"),
            format!("{:.1}", naive.resident_bytes as f64 / (1 << 20) as f64),
            format!("{:.1}", fused.resident_bytes as f64 / (1 << 20) as f64),
            format!("{resident_ratio:.3}"),
        ]);
        artifacts.push(json!({
            "tokens": cell.tokens,
            "heads": cell.heads,
            "precision": prec_name(cell.prec),
            "naive_fwd_ms": naive.fwd_s * 1e3,
            "fused_fwd_ms": fused.fwd_s * 1e3,
            "naive_bwd_ms": naive.bwd_s * 1e3,
            "fused_bwd_ms": fused.bwd_s * 1e3,
            "fwd_speedup": fwd_speedup,
            "bwd_speedup": bwd_speedup,
            "naive_resident_bytes": naive.resident_bytes,
            "fused_resident_bytes": fused.resident_bytes,
            "resident_ratio": resident_ratio,
            "fused_ws_peak_bytes": fused.ws_peak_bytes,
        }));
    }

    print_table(
        "attention: naive (materialized probs) vs fused (streaming tiles)",
        &[
            "T",
            "heads",
            "prec",
            "naive fwd ms",
            "fused fwd ms",
            "fwd x",
            "bwd x",
            "naive res MB",
            "fused res MB",
            "res ratio",
        ],
        &rows,
    );
    if let Some(s) = headline {
        println!("\nheadline: T=1024 heads=8 f32 fused forward speedup: {s:.2}x");
    }

    let v = json!({
        "smoke": smoke,
        "d_head": D_HEAD,
        "note": "naive = AttnPath::Reference (materialized T x T probs, the \
                 pre-fused implementation); fused = streaming KV tiles with \
                 online softmax. resident_bytes is what each path's cache \
                 keeps live for the backward.",
        "headline_fwd_speedup_t1024_h8_f32": headline,
        "rows": artifacts,
    });
    write_json("kernel_bench", &v);
}
