//! `repro` — regenerate every table and figure of the ORBIT paper.
//!
//! Usage:
//! ```text
//! repro <experiment> [--quick]
//! repro all [--quick]
//! ```
//! Experiments: table1, fig5, fig6, fig7, fig8, fig9, fig10.
//! `--quick` trims the executable experiments to smoke-test size.

use orbit_bench::experiments::{fig10, fig5, fig6, fig7, fig8, fig9, qk_ablation, table1};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let which = if which.is_empty() || which.contains(&"all") {
        vec![
            "table1",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "qk_ablation",
        ]
    } else {
        which
    };
    for exp in which {
        let start = std::time::Instant::now();
        match exp {
            "table1" => drop(table1::run(quick)),
            "fig5" => drop(fig5::run(quick)),
            "fig6" => drop(fig6::run(quick)),
            "fig7" => drop(fig7::run(quick)),
            "fig8" => drop(fig8::run(quick)),
            "fig9" => drop(fig9::run(quick)),
            "fig10" => drop(fig10::run(quick)),
            "qk_ablation" => drop(qk_ablation::run(quick)),
            other => {
                eprintln!("unknown experiment: {other}");
                eprintln!("known: table1 fig5 fig6 fig7 fig8 fig9 fig10 qk_ablation all");
                std::process::exit(2);
            }
        }
        println!("[{exp}] done in {:.1}s", start.elapsed().as_secs_f64());
    }
}
