//! `elastic_bench` — sharded-checkpoint roundtrip throughput and an
//! elastic shrink-to-survivors recovery demonstration.
//!
//! Default (and `--smoke`, which only shrinks the workload): capture a
//! real checkpoint, write it as crash-consistent shard sets at several
//! shard counts (temp-file publish + manifest commit), reload each
//! generation through the full CRC-validated reassembly path, verify
//! bit-identity, and report write/read throughput; then run a world-4
//! training that loses a rank mid-run and recovers through the planner.
//! The grid lands in `results/elastic_bench.json` for CI to assert on.
//!
//! `--chaos SEED KIND` (KIND = kill | oom | torn_write): one seeded
//! elastic recovery run for the CI chaos matrix — derives the fault
//! site from SEED, asserts the run completes step-complete with finite
//! losses, and exits nonzero otherwise. Writes no artifact.
//!
//! ```text
//! elastic_bench [--smoke | --chaos SEED KIND]
//! ```

use orbit_bench::report::{print_table, write_json};
use orbit_comm::{Cluster, FaultPlan};
use orbit_core::{build_engine, ElasticTrainer, EngineSpec, TrainOptions};
use orbit_tensor::init::Rng;
use orbit_tensor::kernels::AdamW;
use orbit_vit::{Batch, Checkpoint, ShardData, ShardStore, VitConfig};
use serde_json::json;
use std::time::{Duration, Instant};

fn make_batch(cfg: &VitConfig, n: usize, seed: u64) -> Batch {
    let mut rng = Rng::seed(seed);
    Batch {
        inputs: (0..n)
            .map(|_| {
                (0..cfg.dims.channels)
                    .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                    .collect()
            })
            .collect(),
        targets: (0..n)
            .map(|_| {
                (0..cfg.dims.out_channels)
                    .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                    .collect()
            })
            .collect(),
    }
}

fn temp_store(tag: &str) -> ShardStore {
    let dir =
        std::env::temp_dir().join(format!("orbit_elastic_bench_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    ShardStore::new(dir).expect("create shard store")
}

/// A real checkpoint to shard: one optimizer step on the single-device
/// reference engine, so params, Adam moments, and step count are all
/// nontrivial.
fn capture_checkpoint(cfg: &VitConfig) -> Checkpoint {
    let outcomes = Cluster::frontier().try_run(1, |ctx| {
        let mut engine = build_engine(
            ctx,
            EngineSpec::Single,
            *cfg,
            AdamW::default(),
            TrainOptions::none(),
            42,
        )?;
        ctx.begin_step(0)?;
        engine.train_step(ctx, &make_batch(cfg, 4, 100))?;
        engine.capture_checkpoint(ctx)
    });
    outcomes
        .into_iter()
        .next()
        .and_then(|o| o.ok())
        .expect("single-device capture")
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Write `ck` as a `count`-shard generation, commit, and reload through
/// full validation. Returns (payload bytes, write seconds, read
/// seconds) and panics unless the reload is bit-identical.
fn roundtrip(
    store: &ShardStore,
    ck: &Checkpoint,
    generation: u64,
    count: usize,
) -> (usize, f64, f64) {
    let t0 = Instant::now();
    for index in 0..count {
        store
            .write_shard(
                generation,
                &ShardData::from_checkpoint(ck, index, count),
                None,
            )
            .expect("write shard");
    }
    let committed = store
        .commit(generation, ck.adam_step, count, Duration::from_secs(5))
        .expect("commit generation");
    assert!(committed, "all shards are on disk; commit must succeed");
    let write_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let loaded = store.load_generation(generation).expect("load generation");
    let read_s = t1.elapsed().as_secs_f64();

    let got = &loaded.checkpoint;
    assert_eq!(bits(&got.params), bits(&ck.params), "{count}-shard params");
    assert_eq!(bits(&got.adam_m), bits(&ck.adam_m), "{count}-shard adam_m");
    assert_eq!(bits(&got.adam_v), bits(&ck.adam_v), "{count}-shard adam_v");
    assert_eq!(got.adam_step, ck.adam_step);
    let bytes = (ck.params.len() + ck.adam_m.len() + ck.adam_v.len()) * 4;
    (bytes, write_s, read_s)
}

/// One seeded chaos-matrix cell: an elastic world-4 run with a fault of
/// `kind` at a seed-derived site must finish step-complete and finite.
fn chaos(seed: u64, kind: &str) {
    let cfg = VitConfig::test_tiny();
    let world = 4usize;
    let steps = 5u64;
    let rank = (seed as usize) % world;
    let step = 1 + seed % 3;
    let plan = match kind {
        "kill" => FaultPlan::new().kill(rank, step),
        "oom" => FaultPlan::new().oom(rank, step),
        // A torn write alone kills nobody: pair it with a kill one step
        // later so the relaunch must fall back past the torn generation.
        "torn_write" => FaultPlan::new()
            .torn_write(rank, step)
            .kill((rank + 1) % world, step + 1),
        other => panic!("unknown chaos kind {other:?} (kill | oom | torn_write)"),
    };
    let store = temp_store(&format!("chaos_{kind}_{seed}"));
    let dir = store.dir().to_path_buf();
    let trainer = ElasticTrainer::new(Cluster::frontier().with_fault_plan(plan), store)
        .with_checkpoint_every(1);
    let report = trainer
        .train(
            world,
            cfg,
            AdamW::default(),
            TrainOptions::none(),
            42,
            steps,
            |s| make_batch(&cfg, 8, 100 + s),
        )
        .expect("chaos run must recover");
    assert_eq!(report.losses.len(), steps as usize, "step-complete");
    assert!(report.losses.iter().all(|l| l.is_finite()), "finite losses");
    assert!(report.restarts >= 1, "the fault must actually fire");
    println!(
        "chaos ok: seed={seed} kind={kind} restarts={} launches={:?}",
        report.restarts,
        report
            .launches
            .iter()
            .map(|l| format!("{}x{}", l.spec.name(), l.world))
            .collect::<Vec<_>>()
    );
    std::fs::remove_dir_all(dir).ok();
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--chaos") {
        let seed: u64 = args[i + 1].parse().expect("--chaos SEED KIND");
        chaos(seed, &args[i + 2]);
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let cfg = VitConfig::test_tiny();

    // Sharded-checkpoint roundtrip: every shard count reassembles the
    // same bits; throughput is the honest cost of the temp-file publish
    // plus CRC validation on reload.
    let ck = capture_checkpoint(&cfg);
    let store = temp_store("roundtrip");
    let store_dir = store.dir().to_path_buf();
    let counts: &[usize] = if smoke { &[1, 4, 8] } else { &[1, 2, 4, 8, 16] };
    let mut rt_rows = Vec::new();
    let mut rt_json = Vec::new();
    for (i, &count) in counts.iter().enumerate() {
        let (bytes, write_s, read_s) = roundtrip(&store, &ck, (i + 1) as u64, count);
        let mb = bytes as f64 / 1e6;
        rt_rows.push(vec![
            count.to_string(),
            format!("{:.2}", mb),
            format!("{:.1}", mb / write_s),
            format!("{:.1}", mb / read_s),
        ]);
        rt_json.push(json!({
            "shards": count,
            "payload_bytes": bytes,
            "write_s": write_s,
            "read_s": read_s,
            "write_mbps": mb / write_s,
            "read_mbps": mb / read_s,
            "bit_identical": true,
        }));
    }
    std::fs::remove_dir_all(store_dir).ok();
    print_table(
        "elastic_bench: sharded checkpoint roundtrip",
        &["shards", "MB", "write MB/s", "read MB/s"],
        &rt_rows,
    );

    // Elastic recovery: a world-4 run loses rank 1 at step 2 and must
    // finish through a planner-chosen smaller layout.
    let steps = if smoke { 6u64 } else { 10 };
    let store = temp_store("recovery");
    let store_dir = store.dir().to_path_buf();
    let trainer = ElasticTrainer::new(
        Cluster::frontier().with_fault_plan(FaultPlan::new().kill(1, 2)),
        store,
    )
    .with_checkpoint_every(2);
    let t0 = Instant::now();
    let report = trainer
        .train(
            4,
            cfg,
            AdamW::default(),
            TrainOptions::none(),
            42,
            steps,
            |s| make_batch(&cfg, 8, 100 + s),
        )
        .expect("elastic recovery run");
    let wall_s = t0.elapsed().as_secs_f64();
    std::fs::remove_dir_all(store_dir).ok();
    assert_eq!(report.losses.len(), steps as usize);
    assert!(report.losses.iter().all(|l| l.is_finite()));
    let launches: Vec<_> = report
        .launches
        .iter()
        .map(|l| {
            json!({
                "engine": l.spec.name(),
                "world": l.world,
                "start_step": l.start_step,
                "restored_generation": l.restored_generation,
            })
        })
        .collect();
    println!(
        "recovery: {} steps, {} restart(s), {}",
        steps,
        report.restarts,
        report
            .launches
            .iter()
            .map(|l| format!("{}x{}@{}", l.spec.name(), l.world, l.start_step))
            .collect::<Vec<_>>()
            .join(" -> ")
    );

    let v = json!({
        "experiment": "elastic_bench",
        "smoke": smoke,
        "roundtrip": rt_json,
        "recovery": {
            "initial_world": 4,
            "steps": steps,
            "restarts": report.restarts,
            "launches": launches,
            "losses_finite": true,
            "wall_s": wall_s,
        },
    });
    write_json("elastic_bench", &v);
}
