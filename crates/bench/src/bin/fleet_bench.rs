//! `fleet_bench` — policy x load soak of the orbit-fleet subsystem.
//!
//! Probes per-variant service profiles (single-request and batch-of-4
//! service times) from the real engines, then soaks a two-variant fleet
//! — medium-res on single-rank groups, high-res on tensor-parallel
//! groups — across a **routing policy x offered load** grid under a
//! fault plan (a group kill and a model-generation update per route)
//! with autoscaling on. Each cell replays the same deterministic
//! workload so policies are directly comparable; a separate
//! rollout-traffic pair pits sticky sessions against round-robin on the
//! workload sticky routing exists for. Reports SLO-bucketed latency,
//! cache hit rates, and scaling history per cell, asserts the headline
//! invariants (exactly-once, zero stale serves) inline, and writes the
//! grid to `results/fleet_bench.json` (also under `--smoke`, which only
//! shrinks request counts so CI can assert on the artifact).
//!
//! ```text
//! fleet_bench [--smoke]
//! ```

use orbit_bench::report::{fmt_secs, print_table, write_json};
use orbit_core::EngineSpec;
use orbit_fleet::{
    AutoScalePolicy, Fleet, FleetConfig, FleetOutcome, FleetPlan, GenerationUpdate, GroupKill,
    ModelVariant, RouteSpec, ScaleDecision, ServiceProfile, WorkloadSpec,
};
use orbit_serve::{BatchPolicy, ForecastRequest, ForecastServer, RouteKind, ServeConfig};
use orbit_tensor::init::Rng;
use orbit_vit::VitConfig;
use serde_json::json;

fn probe_requests(cfg: &VitConfig, n: usize, seed: u64) -> Vec<ForecastRequest> {
    let mut rng = Rng::seed(seed);
    (0..n)
        .map(|i| {
            let images = (0..cfg.dims.channels)
                .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                .collect();
            ForecastRequest::new(i as u64, images, 0.0)
        })
        .collect()
}

/// Fit a batch-linear [`ServiceProfile`] for one layout from the real
/// engines: a lone request gives `time(1)` and four simultaneous
/// arrivals under a batch-of-4 policy give `time(4)`; the two points fix
/// the base and per-request slope the virtual-time fleet serves with.
fn probe_profile(cfg: &VitConfig, spec: EngineSpec, world: usize) -> ServiceProfile {
    let lone =
        ForecastServer::new(ServeConfig::new(spec, world, *cfg)).serve(probe_requests(cfg, 1, 7));
    assert_eq!(lone.stats.completed, 1, "probe must serve its request");
    let t1 = lone.stats.mean_latency;

    let batched = ForecastServer::new(
        ServeConfig::new(spec, world, *cfg).with_policy(BatchPolicy::batched(4, 10.0)),
    )
    .serve(probe_requests(cfg, 4, 9));
    assert_eq!(batched.stats.completed, 4, "probe must serve the batch");
    let t4 = batched.stats.mean_latency;

    // Degenerate fits (a batch as cheap as a lone request, or a
    // single-rank virtual service time that collapses to nanoseconds)
    // fall back to a conservative linear model so the gap and warmup
    // scales derived from the profile stay well conditioned.
    let per_request = ((t4 - t1) / 3.0).max(t1 * 0.05).max(1e-6);
    let base = (t1 - per_request).max(0.0);
    ServiceProfile::new(base, per_request)
}

/// Max sustainable request rate of one group at batch 4: the base cost
/// amortizes over the batch, the slope is paid per request.
fn group_capacity(service: &ServiceProfile) -> f64 {
    1.0 / (service.per_request + service.base / 4.0)
}

/// The two-variant fleet: medium-res on single-rank groups, high-res on
/// wider groups, both using `route` for batch placement.
fn fleet_config(
    model: VitConfig,
    profiles: &[(String, ServiceProfile, usize)],
    route: RouteKind,
    scale_tick: f64,
) -> FleetConfig {
    let routes = profiles
        .iter()
        .enumerate()
        .map(|(i, (name, service, group_world))| {
            RouteSpec::new(ModelVariant::new(name, model, i as u64 + 1), *service)
                .with_route(route)
                .with_batch(BatchPolicy::batched(4, 2.0 * service.time(1)))
                .with_capacity(1024)
                .with_groups(1, *group_world)
                .with_session_warmup(2.0 * service.time(1))
        })
        .collect();
    FleetConfig::new(routes, 12)
        .with_autoscale(
            AutoScalePolicy {
                high_depth_per_group: 8,
                low_depth: 1,
                cooldown: 2.0 * scale_tick,
                min_groups: 1,
                max_groups: 4,
            },
            scale_tick,
        )
        // A hit must be far cheaper than the cheapest route's service
        // time, or cached responses would dominate the latency curves.
        .with_cache(
            4096,
            0.1 * profiles
                .iter()
                .map(|(_, s, _)| s.time(1))
                .fold(f64::INFINITY, f64::min),
        )
}

/// Kills and generation updates spread across the run: each route loses
/// a serving group once and rolls its model forward once.
fn fault_plan(horizon: f64, routes: usize) -> FleetPlan {
    let mut plan = FleetPlan::default();
    for r in 0..routes {
        plan.kills.push(GroupKill {
            route: r,
            at: horizon * (0.3 + 0.2 * r as f64),
            repair_after: horizon * 0.05,
        });
        plan.updates.push(GenerationUpdate {
            route: r,
            at: horizon * (0.4 + 0.2 * r as f64),
            generation: 5 + r as u64,
        });
    }
    plan
}

/// Hard invariants every cell must satisfy, regardless of policy, load,
/// kills, or autoscaling.
fn assert_invariants(label: &str, n: usize, out: &FleetOutcome) {
    assert_eq!(out.responses.len(), n, "{label}: every id answered");
    assert_eq!(out.duplicates, 0, "{label}: exactly-once delivery");
    assert_eq!(out.unanswered, 0, "{label}: no request dropped");
    assert_eq!(out.stale_serves, 0, "{label}: zero stale cache serves");
}

fn outcome_json(out: &FleetOutcome) -> serde_json::Value {
    let ups = out
        .scale_events
        .iter()
        .filter(|e| e.decision == ScaleDecision::Up)
        .count();
    json!({
        "stats": out.stats.to_json(),
        "routes": out
            .routes
            .iter()
            .map(|r| {
                json!({
                    "name": r.name.clone(),
                    "policy": r.policy,
                    "generation": r.generation,
                    "cache_served": r.cache_served,
                    "groups_launched": r.groups_launched,
                    "kills": r.kills,
                    "stats": r.stats.to_json(),
                })
            })
            .collect::<Vec<_>>(),
        "cache": {
            "hits": out.cache.hits,
            "misses": out.cache.misses,
            "evictions": out.cache.evictions,
            "invalidated": out.cache.invalidated,
            "stale_rejected": out.cache.stale_rejected,
            "hit_rate": out.cache.hit_rate(),
        },
        "stale_serves": out.stale_serves,
        "duplicates": out.duplicates,
        "unanswered": out.unanswered,
        "kills_applied": out.kills_applied,
        "scale_ups": ups,
        "scale_downs": out.scale_events.len() - ups,
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let model = VitConfig::test_tiny();
    // Full mode sums past the million-request mark: 6 grid cells x 145k
    // plus the two 80k rollout cells.
    let grid_n = if smoke { 2_000 } else { 145_000 };
    let rollout_n = if smoke { 2_000 } else { 80_000 };

    // Service profiles from the real engines, per variant layout.
    let medium = probe_profile(&model, EngineSpec::Single, 1);
    let high = probe_profile(&model, EngineSpec::TensorParallel, 2);
    println!(
        "profiles: medium-res base {} + {}/req, high-res base {} + {}/req",
        fmt_secs(medium.base),
        fmt_secs(medium.per_request),
        fmt_secs(high.base),
        fmt_secs(high.per_request),
    );
    let profiles = vec![
        ("medium-res".to_string(), medium, 1usize),
        ("high-res".to_string(), high, 2usize),
    ];
    // Calibrate offered load against measured capacity. Traffic is
    // weighted by per-route capacity so both variants see comparable
    // utilization despite a ~100x spread in service time, and the gap
    // between workload *starts* accounts for a mixed start expanding to
    // 5.2 requests on average (60% are 8-step rollout sessions).
    let capacities: Vec<f64> = profiles.iter().map(|(_, p, _)| group_capacity(p)).collect();
    let total_capacity: f64 = capacities.iter().sum();
    let requests_per_start = 0.6 * 8.0 + 0.4;
    let avg_s1 = profiles.iter().map(|(_, p, _)| p.time(1)).sum::<f64>() / profiles.len() as f64;
    let scale_tick = 50.0 / total_capacity;

    let policies = [
        ("round_robin", RouteKind::RoundRobin),
        ("least_loaded", RouteKind::LeastLoaded),
        ("sticky", RouteKind::Sticky),
    ];
    // Offered load relative to one group per route: ~50% utilization
    // (light) and ~1.5x saturation (heavy), which forces scale-ups.
    let loads = [
        ("light", requests_per_start / (0.5 * total_capacity)),
        ("heavy", requests_per_start / (1.5 * total_capacity)),
    ];

    let mut rows_table = Vec::new();
    let mut rows_json = Vec::new();
    let mut total_requests = 0usize;
    for (load_name, mean_gap) in loads {
        // One workload per load level, replayed for every policy.
        let mut spec = WorkloadSpec::mixed(grid_n, profiles.len(), 41);
        spec.route_weights = capacities.clone();
        spec.mean_gap = mean_gap;
        spec.step_gap = 4.0 * avg_s1;
        let requests = spec.generate();
        let horizon = requests.last().expect("nonempty workload").t_arrival;
        for (policy_name, route) in policies {
            let cfg = fleet_config(model, &profiles, route, scale_tick);
            let out = Fleet::new(cfg).run(requests.clone(), fault_plan(horizon, profiles.len()));
            let label = format!("{policy_name}/{load_name}");
            assert_invariants(&label, grid_n, &out);
            assert!(
                out.cache.hits > 0,
                "{label}: climatology reuse must produce cache hits"
            );
            total_requests += grid_n;
            let s = &out.stats;
            rows_table.push(vec![
                policy_name.to_string(),
                load_name.to_string(),
                s.completed.to_string(),
                fmt_secs(s.p50_latency),
                fmt_secs(s.p95_latency),
                format!("{:.3}", out.cache.hit_rate()),
                out.kills_applied.to_string(),
                out.scale_events.len().to_string(),
                out.stale_serves.to_string(),
                out.duplicates.to_string(),
            ]);
            rows_json.push(json!({
                "policy": policy_name,
                "load": load_name,
                "mean_gap": mean_gap,
                "n_requests": grid_n,
                "outcome": outcome_json(&out),
            }));
        }
    }

    // Sticky vs. round-robin on pure rollout traffic with immediate
    // batching: every request routed by its own session, fixed three
    // groups, so the comparison isolates warm-state pinning. Every
    // start is an 8-step session, so the start gap is 8x the request
    // gap; ~15% base utilization keeps queueing light enough that the
    // per-session warmup cost (paid once per touched group) dominates.
    let s1 = medium.time(1);
    let mut rollout = WorkloadSpec::rollout(rollout_n, 1, 23);
    rollout.mean_gap = 8.0 * s1 / 0.45;
    rollout.step_gap = 24.0 * s1;
    let rollout_reqs = rollout.generate();
    let mut comparison: Vec<(String, serde_json::Value)> = Vec::new();
    let mut rollout_means = Vec::new();
    for (policy_name, route) in [
        ("sticky", RouteKind::Sticky),
        ("round_robin", RouteKind::RoundRobin),
    ] {
        let spec = RouteSpec::new(ModelVariant::new("medium-res", model, 1), medium)
            .with_route(route)
            .with_batch(BatchPolicy::immediate())
            .with_capacity(4096)
            .with_groups(3, 1)
            .with_session_warmup(8.0 * s1);
        let cfg = FleetConfig::new(vec![spec], 3)
            .with_autoscale(
                AutoScalePolicy {
                    high_depth_per_group: usize::MAX,
                    low_depth: 0,
                    cooldown: 1.0,
                    min_groups: 3,
                    max_groups: 3,
                },
                1.0,
            )
            .with_cache(4096, 0.1 * s1);
        let out = Fleet::new(cfg).run(rollout_reqs.clone(), FleetPlan::default());
        let label = format!("rollout/{policy_name}");
        assert_invariants(&label, rollout_n, &out);
        total_requests += rollout_n;
        rollout_means.push((policy_name, out.stats.mean_latency));
        comparison.push((policy_name.to_string(), outcome_json(&out)));
    }
    assert!(
        rollout_means[0].1 < rollout_means[1].1,
        "sticky ({}) must beat round-robin ({}) on rollout traffic",
        rollout_means[0].1,
        rollout_means[1].1,
    );
    println!(
        "rollout: sticky mean {} vs round-robin mean {}",
        fmt_secs(rollout_means[0].1),
        fmt_secs(rollout_means[1].1),
    );

    print_table(
        "fleet_bench: routing policy x offered load",
        &[
            "policy", "load", "done", "p50", "p95", "cache", "kills", "scales", "stale", "dups",
        ],
        &rows_table,
    );

    let v = json!({
        "experiment": "fleet_bench",
        "smoke": smoke,
        "profiles": profiles
            .iter()
            .map(|(name, p, world)| {
                json!({
                    "variant": name,
                    "base": p.base,
                    "per_request": p.per_request,
                    "group_world": world,
                })
            })
            .collect::<Vec<_>>(),
        "grid": rows_json,
        "rollout_comparison": comparison
            .iter()
            .map(|(name, v)| json!({ "policy": name, "outcome": v.clone() }))
            .collect::<Vec<_>>(),
        "total_requests": total_requests,
    });
    write_json("fleet_bench", &v);
}
