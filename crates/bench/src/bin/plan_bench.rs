//! `plan_bench` — does the auto-parallel planner pick a good plan?
//!
//! For each machine configuration, asks the [`Planner`] to rank every
//! legal parallelization of a tokens-heavy toy model on 8 GPUs, then
//! *executes* a subset of the candidates on the simulated cluster — the
//! chosen plan plus the worst-predicted candidates — and checks that the
//! plan the analytic model picked is also the fastest of the simulated
//! set. Writes `results/plan_bench.json` (always, including `--smoke`);
//! CI asserts the artifact has at least 3 candidate rows per machine and
//! that the chosen plan's simulated time beats every other simulated
//! candidate. Usage:
//!
//! ```text
//! plan_bench [--smoke]
//! ```

use orbit_bench::report::{print_table, write_json};
use orbit_comm::Cluster;
use orbit_core::{build_engine, spec_for_plan};
use orbit_frontier::planner::{strategy_name, PlanCandidate};
use orbit_frontier::{FrontierMachine, Planner};
use orbit_tensor::init::Rng;
use orbit_tensor::kernels::AdamW;
use orbit_vit::{Batch, VitConfig};
use serde_json::json;

const GPUS: usize = 8;
const GLOBAL_BATCH: usize = 8;

/// A small model whose *activations* dominate: 64x64 images at patch 4
/// give 256 tokens, so tensor-parallel activation reductions and FSDP
/// gathers are both visible in the simulated step time.
fn bench_cfg() -> VitConfig {
    let mut cfg = VitConfig::ladder(0, 8);
    cfg.dims.heads = 8; // head_dim 8: lets the planner consider tp up to 8
    cfg.dims.img_h = 64;
    cfg.dims.img_w = 64;
    cfg.dims.patch = 4;
    cfg
}

fn make_batch(cfg: &VitConfig, n: usize, seed: u64) -> Batch {
    let mut rng = Rng::seed(seed);
    Batch {
        inputs: (0..n)
            .map(|_| {
                (0..cfg.dims.channels)
                    .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                    .collect()
            })
            .collect(),
        targets: (0..n)
            .map(|_| {
                (0..cfg.dims.out_channels)
                    .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                    .collect()
            })
            .collect(),
    }
}

/// Execute a candidate on the simulated cluster and return the simulated
/// walltime of one global-batch step (max over ranks, averaged over
/// `steps`).
fn simulate(
    machine: &FrontierMachine,
    cand: &PlanCandidate,
    cfg: VitConfig,
    batch: &Batch,
    steps: usize,
) -> f64 {
    let spec = spec_for_plan(cand);
    let opts = cand.opts;
    let times = Cluster::new(machine.clone()).run(cand.layout.world(), |ctx| {
        let mut e = build_engine(ctx, spec, cfg, AdamW::default(), opts, 42).unwrap();
        (0..steps)
            .map(|_| e.train_step(ctx, batch).unwrap().sim_time)
            .sum::<f64>()
    });
    times.into_iter().fold(0.0, f64::max) / steps as f64
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let steps = if smoke { 1 } else { 2 };
    let cfg = bench_cfg();
    let batch = make_batch(&cfg, GLOBAL_BATCH, 3);

    let machines: [(&str, FrontierMachine); 2] = [
        ("frontier", FrontierMachine::default()),
        (
            // Narrow nodes: only 2 GPUs share a node, so wide
            // tensor-parallel groups spill onto the slow fabric and the
            // planner must prefer layouts the default machine tolerates.
            "narrow_nodes",
            FrontierMachine {
                gpus_per_node: 2,
                ..FrontierMachine::default()
            },
        ),
    ];

    let mut machine_reports = Vec::new();
    for (name, machine) in machines {
        let plan = Planner::new(machine.clone())
            .plan(&cfg.dims, GPUS, GLOBAL_BATCH)
            .expect("toy model must be plannable");
        let n = plan.candidates.len();
        assert!(n >= 3, "need at least 3 candidates, got {n}");

        // Simulating the full candidate set would be slow and redundant;
        // run the chosen plan and the 3 worst-predicted candidates — the
        // configurations a wrong ranking would most visibly misorder.
        let mut sim_set: Vec<usize> = vec![0];
        sim_set.extend((n.saturating_sub(3)..n).filter(|&i| i != 0));
        let mut simulated: Vec<Option<f64>> = vec![None; n];
        for &i in &sim_set {
            simulated[i] = Some(simulate(&machine, &plan.candidates[i], cfg, &batch, steps));
        }

        let chosen_sim = simulated[0].expect("chosen plan is always simulated");
        let worst_sim = simulated.iter().flatten().fold(0.0f64, |a, &b| a.max(b));
        let margin = worst_sim / chosen_sim;

        let mut rows = Vec::new();
        let mut row_json = Vec::new();
        for (i, c) in plan.candidates.iter().enumerate() {
            rows.push(vec![
                strategy_name(c.strategy).to_string(),
                format!("{}x{}x{}", c.layout.tp, c.layout.fsdp, c.layout.ddp),
                if c.opts.layer_wrapping { "wrap" } else { "-" }.to_string(),
                if c.opts.prefetch { "pf" } else { "-" }.to_string(),
                format!("{:.2e}", c.predicted),
                simulated[i]
                    .map(|s| format!("{s:.2e}"))
                    .unwrap_or_else(|| "-".to_string()),
                if i == 0 { "<- chosen" } else { "" }.to_string(),
            ]);
            row_json.push(json!({
                "strategy": strategy_name(c.strategy),
                "tp": c.layout.tp,
                "fsdp": c.layout.fsdp,
                "ddp": c.layout.ddp,
                "layer_wrapping": c.opts.layer_wrapping,
                "prefetch": c.opts.prefetch,
                "predicted": c.predicted,
                "predicted_mem": c.predicted_mem,
                "tp_intra_node": c.tp_intra_node,
                "simulated": simulated[i],
                "chosen": i == 0,
            }));
        }
        print_table(
            &format!("{name}: planner ranking vs simulation ({GPUS} GPUs, batch {GLOBAL_BATCH})"),
            &[
                "strategy",
                "layout",
                "wrap",
                "pf",
                "predicted",
                "simulated",
                "",
            ],
            &rows,
        );
        println!(
            "{name}: chosen {} {}x{}x{} beats worst simulated candidate by {margin:.1}x",
            plan.chosen_name(),
            plan.chosen.layout.tp,
            plan.chosen.layout.fsdp,
            plan.chosen.layout.ddp,
        );
        machine_reports.push(json!({
            "name": name,
            "gpus": GPUS,
            "global_batch": GLOBAL_BATCH,
            "chosen": strategy_name(plan.chosen.strategy),
            "margin": margin,
            "rows": row_json,
        }));
    }

    // Written in smoke mode too: CI asserts on this artifact.
    write_json("plan_bench", &json!({ "machines": machine_reports }));
}
