//! `comm_bench` — wall-clock cost of the collective data plane.
//!
//! Times three variants of all-gather and reduce-scatter on the real
//! thread-rendezvous cluster at several world sizes and message sizes:
//!
//! * **legacy** — a faithful reimplementation of the pre-zero-copy data
//!   plane: the last arriver materializes a full `Vec<f32>` *per member*
//!   (all-gather) or reduces serially (reduce-scatter) while holding the
//!   rendezvous lock, and every member picks up its own deep copy.
//! * **blocking** — the current data plane, called synchronously: one
//!   shared `Arc<[f32]>` result, reduction chunked outside the lock,
//!   members receive zero-copy `CommBuf` views.
//! * **pipelined** — the current data plane with depth-2 nonblocking
//!   issue (`*_start` for op `i+1` before `wait` on op `i`), the schedule
//!   the Hybrid-STOP engine uses to hide gather latency.
//!
//! Writes `results/comm_bench.json` (skipped under `--smoke`) with
//! per-configuration microseconds and speedups. Usage:
//!
//! ```text
//! comm_bench [--smoke]
//! ```

use orbit_bench::report::{print_table, write_json};
use orbit_comm::{Cluster, PendingCollective, ProcessGroup, RankCtx, SimClock};
use parking_lot::{Condvar, Mutex};
use serde_json::json;
use std::collections::HashMap;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Legacy data plane: per-member deep copies, work under the lock.
// ---------------------------------------------------------------------------

struct LegacySlot {
    contributions: Vec<Option<Vec<f32>>>,
    arrived: usize,
    done: bool,
    results: Vec<Option<Vec<f32>>>,
    picked: usize,
}

impl LegacySlot {
    fn new(p: usize) -> Self {
        LegacySlot {
            contributions: vec![None; p],
            arrived: 0,
            done: false,
            results: Vec::new(),
            picked: 0,
        }
    }
}

/// The pre-zero-copy rendezvous, shorn of clock accounting: deposit a
/// `Vec`, last arriver computes every member's owned result inside the
/// critical section, members take their copies out.
struct LegacyGroup {
    slots: Mutex<HashMap<u64, LegacySlot>>,
    cv: Condvar,
    p: usize,
}

impl LegacyGroup {
    fn new(p: usize) -> Self {
        LegacyGroup {
            slots: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
            p,
        }
    }

    fn exchange(
        &self,
        my_idx: usize,
        seq: u64,
        data: Vec<f32>,
        finish: impl FnOnce(&[Option<Vec<f32>>]) -> Vec<Option<Vec<f32>>>,
    ) -> Vec<f32> {
        let p = self.p;
        let mut slots = self.slots.lock();
        let slot = slots.entry(seq).or_insert_with(|| LegacySlot::new(p));
        slot.contributions[my_idx] = Some(data);
        slot.arrived += 1;
        if slot.arrived == p {
            slot.results = finish(&slot.contributions);
            slot.done = true;
            slot.contributions.iter_mut().for_each(|c| *c = None);
            self.cv.notify_all();
        } else {
            while !slots.get(&seq).map(|s| s.done).unwrap_or(false) {
                self.cv.wait(&mut slots);
            }
        }
        let slot = slots.get_mut(&seq).expect("slot present until pickup");
        let out = slot.results[my_idx].take().unwrap_or_default();
        slot.picked += 1;
        if slot.picked == p {
            slots.remove(&seq);
        }
        out
    }

    fn all_gather(&self, my_idx: usize, seq: u64, shard: &[f32]) -> Vec<f32> {
        self.exchange(my_idx, seq, shard.to_vec(), |contribs| {
            let mut full = Vec::new();
            for c in contribs {
                full.extend_from_slice(c.as_ref().expect("missing contribution"));
            }
            contribs.iter().map(|_| Some(full.clone())).collect()
        })
    }

    fn reduce_scatter(&self, my_idx: usize, seq: u64, full: &[f32]) -> Vec<f32> {
        let p = self.p;
        self.exchange(my_idx, seq, full.to_vec(), |contribs| {
            let mut sum = contribs[0].clone().expect("missing contribution");
            for c in &contribs[1..] {
                for (s, v) in sum.iter_mut().zip(c.as_ref().unwrap()) {
                    *s += v;
                }
            }
            let chunk = sum.len() / p;
            (0..p)
                .map(|i| Some(sum[i * chunk..(i + 1) * chunk].to_vec()))
                .collect()
        })
    }
}

// ---------------------------------------------------------------------------
// Measurement harness.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq)]
enum Op {
    AllGather,
    ReduceScatter,
}

impl Op {
    fn name(self) -> &'static str {
        match self {
            Op::AllGather => "all_gather",
            Op::ReduceScatter => "reduce_scatter",
        }
    }
}

/// Run `iters` ops per rank after one warmup op; return the slowest
/// rank's wall-clock seconds (the collective finishes when the last
/// member does).
fn time_legacy(world: usize, len: usize, iters: usize, op: Op) -> f64 {
    let group = Arc::new(LegacyGroup::new(world));
    let times = Cluster::frontier().run(world, |ctx: &mut RankCtx| {
        let idx = ctx.rank;
        let shard = vec![idx as f32; len / world];
        let full = vec![1.0f32; len];
        let mut seq = 0u64;
        let run_one = |seq: u64| match op {
            Op::AllGather => black_box(group.all_gather(idx, seq, &shard)[0]),
            Op::ReduceScatter => black_box(group.reduce_scatter(idx, seq, &full)[0]),
        };
        run_one(seq);
        seq += 1;
        let t0 = Instant::now();
        for _ in 0..iters {
            run_one(seq);
            seq += 1;
        }
        t0.elapsed().as_secs_f64()
    });
    times.into_iter().fold(0.0, f64::max)
}

fn time_current(world: usize, len: usize, iters: usize, op: Op, pipelined: bool) -> f64 {
    let times = Cluster::frontier().run(world, |ctx: &mut RankCtx| {
        let mut g = ctx.world_group();
        let mut clock = std::mem::take(&mut ctx.clock);
        let shard = vec![ctx.rank as f32; len / world];
        let full = vec![1.0f32; len];
        let start_one = |g: &mut ProcessGroup, clock: &SimClock| -> PendingCollective {
            match op {
                Op::AllGather => g.all_gather_start(clock, &shard, pipelined).unwrap(),
                Op::ReduceScatter => g.reduce_scatter_start(clock, &full).unwrap(),
            }
        };
        let run_blocking = |g: &mut ProcessGroup, clock: &mut SimClock| {
            let h = start_one(g, clock);
            black_box(h.wait(clock).unwrap()[0]);
        };
        run_blocking(&mut g, &mut clock);
        let t0 = Instant::now();
        if pipelined {
            // Depth-2: op i+1 is posted before op i is waited on, so the
            // rendezvous for the next op fills while this one drains.
            let mut prev: Option<PendingCollective> = None;
            for _ in 0..iters {
                let h = start_one(&mut g, &clock);
                if let Some(p) = prev.take() {
                    black_box(p.wait(&mut clock).unwrap()[0]);
                }
                prev = Some(h);
            }
            if let Some(p) = prev.take() {
                black_box(p.wait(&mut clock).unwrap()[0]);
            }
        } else {
            for _ in 0..iters {
                run_blocking(&mut g, &mut clock);
            }
        }
        let dt = t0.elapsed().as_secs_f64();
        ctx.clock = clock;
        dt
    });
    times.into_iter().fold(0.0, f64::max)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (iters, worlds, lens): (usize, Vec<usize>, Vec<usize>) = if smoke {
        (8, vec![2, 4], vec![4096])
    } else {
        (100, vec![2, 4, 8], vec![4096, 65536])
    };

    let mut rows = Vec::new();
    let mut artifacts = Vec::new();
    let mut headline = None;
    for op in [Op::AllGather, Op::ReduceScatter] {
        for &world in &worlds {
            for &len in &lens {
                let legacy = time_legacy(world, len, iters, op) / iters as f64;
                let blocking = time_current(world, len, iters, op, false) / iters as f64;
                let pipelined = time_current(world, len, iters, op, true) / iters as f64;
                let vs_blocking = legacy / blocking;
                let vs_pipelined = legacy / pipelined;
                if op == Op::AllGather && world == 8 && len == 65536 {
                    headline = Some(vs_pipelined);
                }
                rows.push(vec![
                    op.name().to_string(),
                    world.to_string(),
                    len.to_string(),
                    format!("{:.1}", legacy * 1e6),
                    format!("{:.1}", blocking * 1e6),
                    format!("{:.1}", pipelined * 1e6),
                    format!("{vs_blocking:.2}x"),
                    format!("{vs_pipelined:.2}x"),
                ]);
                artifacts.push(json!({
                    "op": op.name(),
                    "world": world,
                    "elements": len,
                    "legacy_us": legacy * 1e6,
                    "blocking_us": blocking * 1e6,
                    "pipelined_us": pipelined * 1e6,
                    "speedup_blocking_vs_legacy": vs_blocking,
                    "speedup_pipelined_vs_legacy": vs_pipelined,
                }));
            }
        }
    }

    print_table(
        "comm data plane: legacy copies vs zero-copy vs pipelined",
        &[
            "op",
            "world",
            "elems",
            "legacy us",
            "block us",
            "pipe us",
            "block x",
            "pipe x",
        ],
        &rows,
    );
    if let Some(s) = headline {
        println!("\nheadline: world-8 all-gather 65536 elems, pipelined vs legacy: {s:.2}x");
    }

    if !smoke {
        let v = json!({
            "iters_per_measurement": iters,
            "note": "per-op wall-clock; legacy = pre-zero-copy data plane \
                     (per-member deep copies, reduction under the rendezvous lock)",
            "headline_speedup_world8_all_gather_65536": headline,
            "rows": artifacts,
        });
        write_json("comm_bench", &v);
    }
}
