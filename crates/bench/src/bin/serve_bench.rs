//! `serve_bench` — latency/throughput sweep of the orbit-serve subsystem.
//!
//! Probes the single-request service time of the tiny ViT on the
//! frontier-calibrated cluster, then sweeps **offered load** (arrival
//! rates from well under to well over the service rate) against **batch
//! policy** (serve-immediately vs. two dynamic-batching configurations)
//! across the served layouts (single-device, DDP-replicated,
//! tensor-parallel). Reports p50/p95/p99 latency, throughput, and the
//! served batch-size histogram per cell, and writes the full grid to
//! `results/serve_bench.json` (also under `--smoke`, which only shrinks
//! the request count so CI can assert on the artifact).
//!
//! ```text
//! serve_bench [--smoke]
//! ```

use orbit_bench::report::{fmt_secs, print_table, write_json};
use orbit_core::EngineSpec;
use orbit_serve::{BatchPolicy, ForecastRequest, ForecastServer, ServeConfig};
use orbit_tensor::init::Rng;
use orbit_vit::VitConfig;
use serde_json::json;

fn make_requests(cfg: &VitConfig, n: usize, gap: f64, seed: u64) -> Vec<ForecastRequest> {
    let mut rng = Rng::seed(seed);
    (0..n)
        .map(|i| {
            let images = (0..cfg.dims.channels)
                .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                .collect();
            ForecastRequest::new(i as u64, images, gap * i as f64)
        })
        .collect()
}

/// Mean simulated service time of a lone request on `spec` (sparse
/// arrivals, no batching, no queueing) — the yardstick the layout's load
/// sweep is scaled by. Single-device forwards are pure compute;
/// tensor-parallel ones pay per-sublayer collective latency, so the two
/// differ by orders of magnitude and each layout must be stressed
/// relative to its own service rate.
fn probe_service_time(cfg: &VitConfig, spec: EngineSpec, world: usize) -> f64 {
    let server = ForecastServer::new(ServeConfig::new(spec, world, *cfg));
    // Arrivals 1000 s apart: each request is served alone and idle.
    let outcome = server.serve(make_requests(cfg, 4, 1000.0, 7));
    assert_eq!(outcome.stats.completed, 4, "probe must serve everything");
    outcome.stats.mean_latency
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cfg = VitConfig::test_tiny();
    let n = if smoke { 12 } else { 64 };

    let layouts = [
        ("single", EngineSpec::Single, 1usize),
        ("ddp", EngineSpec::Ddp, 2),
        ("tensor_parallel", EngineSpec::TensorParallel, 2),
    ];

    let mut probes = Vec::new();
    let mut rows_json = Vec::new();
    let mut rows_table = Vec::new();
    for (lname, spec, world) in layouts {
        let service = probe_service_time(&cfg, spec, world);
        println!(
            "{lname}: single-request service time {} s",
            fmt_secs(service)
        );
        probes.push(json!({ "layout": lname, "service_time": service }));

        // Offered load: arrival gaps from 4x the layout's service time
        // (light) through saturation to 4x overload.
        let gaps = [4.0 * service, service, 0.25 * service];
        let policies = [
            ("immediate", BatchPolicy::immediate()),
            ("batch4", BatchPolicy::batched(4, 2.0 * service)),
            ("batch8", BatchPolicy::batched(8, 8.0 * service)),
        ];
        for (pname, policy) in policies {
            for gap in gaps {
                let server = ForecastServer::new(
                    ServeConfig::new(spec, world, cfg)
                        .with_policy(policy)
                        .with_capacity(n),
                );
                let outcome = server.serve(make_requests(&cfg, n, gap, 13));
                let s = &outcome.stats;
                assert_eq!(s.duplicates, 0, "exactly-once serving");
                rows_table.push(vec![
                    lname.to_string(),
                    pname.to_string(),
                    format!("{:.0}", 1.0 / gap),
                    s.completed.to_string(),
                    fmt_secs(s.p50_latency),
                    fmt_secs(s.p95_latency),
                    fmt_secs(s.p99_latency),
                    format!("{:.0}", s.throughput),
                    format!("{:?}", s.batch_hist),
                ]);
                rows_json.push(json!({
                    "layout": lname,
                    "world": world,
                    "policy": pname,
                    "max_batch": policy.max_batch,
                    "max_linger": policy.max_linger,
                    "offered_gap": gap,
                    "offered_rate": 1.0 / gap,
                    "n_requests": n,
                    "stats": s.to_json(),
                }));
            }
        }
    }

    print_table(
        "serve_bench: offered load x batch policy",
        &[
            "layout", "policy", "req/s", "done", "p50", "p95", "p99", "tput", "batches",
        ],
        &rows_table,
    );

    let v = json!({
        "experiment": "serve_bench",
        "smoke": smoke,
        "service_times": probes,
        "n_requests": n,
        "rows": rows_json,
    });
    write_json("serve_bench", &v);
}
