//! # orbit-bench
//!
//! The benchmark harness regenerating every table and figure of the ORBIT
//! paper's evaluation (Sec. V). Run via the `repro` binary:
//!
//! ```text
//! cargo run --release -p orbit-bench --bin repro -- all
//! cargo run --release -p orbit-bench --bin repro -- fig7
//! cargo run --release -p orbit-bench --bin repro -- fig9 --quick
//! ```
//!
//! Each experiment prints the paper's rows next to our measured/modeled
//! values and writes a JSON artifact under `results/`. Experiments based
//! on the analytic Frontier model (Table I, Figs. 5-7) are exact and
//! instant; the executable experiments (Figs. 8-10) train scaled-down
//! models on the synthetic climate archive and take minutes.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod report;
