//! Table I: 113 B model walltime per observation on 512 GPUs under the
//! four optimization toggles (layer wrapping, mixed precision,
//! prefetching, activation checkpointing).
//!
//! Paper values: OOM / 0.97 s / 0.49 s / 0.40 s / 0.17 s.

use crate::report::{fmt_secs, print_table, write_json};
use orbit_frontier::{ModelDims, ParallelLayout, PerfModel, Strategy, TrainOptions};
use serde_json::json;

/// The five Table I columns, in paper order.
pub fn columns() -> Vec<(&'static str, TrainOptions)> {
    // Table I ablates the paper's four engineering optimizations; the fused
    // attention kernel is our addition and stays on in every column so the
    // modeled memory matches what the engines actually run.
    let col = |wrap, mixed, prefetch, ckpt| TrainOptions {
        layer_wrapping: wrap,
        mixed_precision: mixed,
        prefetch,
        activation_checkpointing: ckpt,
        fused_attention: true,
    };
    vec![
        ("none", col(false, false, false, false)),
        ("+wrap", col(true, false, false, false)),
        ("+mixed", col(true, true, false, false)),
        ("+prefetch", col(true, true, true, false)),
        ("+ckpt (all)", col(true, true, true, true)),
    ]
}

/// Modeled walltime per observation for one column (infinity = OOM).
pub fn modeled_walltime(model: &PerfModel, opts: &TrainOptions) -> f64 {
    let dims = ModelDims::orbit_113b(48);
    let layout = ParallelLayout::new(8, 64, 1);
    let batch = 2;
    if !model.fits(&dims, &layout, Strategy::HybridStop, opts, batch) {
        return f64::INFINITY;
    }
    model.time_per_obs(&dims, &layout, Strategy::HybridStop, opts, batch)
}

pub fn run(_quick: bool) -> serde_json::Value {
    let model = PerfModel::default();
    let paper = [f64::INFINITY, 0.97, 0.49, 0.40, 0.17];
    let mut rows = Vec::new();
    let mut artifacts = Vec::new();
    for ((name, opts), paper_t) in columns().into_iter().zip(paper) {
        let t = modeled_walltime(&model, &opts);
        rows.push(vec![
            name.to_string(),
            fmt_secs(paper_t),
            fmt_secs(t),
            if t.is_finite() && paper_t.is_finite() {
                format!("{:.2}x", t / paper_t)
            } else if t.is_finite() == paper_t.is_finite() {
                "match".to_string()
            } else {
                "MISMATCH".to_string()
            },
        ]);
        artifacts.push(json!({
            "column": name,
            "paper_walltime_s": if paper_t.is_finite() { Some(paper_t) } else { None },
            "modeled_walltime_s": if t.is_finite() { Some(t) } else { None },
            "oom": !t.is_finite(),
        }));
    }
    print_table(
        "Table I: 113B walltime/observation, 512 GPUs (paper vs modeled)",
        &["optimizations", "paper", "modeled", "ratio"],
        &rows,
    );
    let v = json!({ "experiment": "table1", "rows": artifacts });
    write_json("table1", &v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_columns_in_paper_order() {
        let cols = columns();
        assert_eq!(cols.len(), 5);
        // Column 0 ablates all four paper optimizations; fused attention is
        // our kernel-level addition and stays on in every column.
        assert_eq!(
            cols[0].1,
            TrainOptions {
                fused_attention: true,
                ..TrainOptions::none()
            }
        );
        assert_eq!(cols[4].1, TrainOptions::all_on());
    }

    #[test]
    fn each_optimization_strictly_helps() {
        let model = PerfModel::default();
        let times: Vec<f64> = columns()
            .iter()
            .map(|(_, o)| modeled_walltime(&model, o))
            .collect();
        assert!(times[0].is_infinite(), "no optimizations => OOM");
        for w in times[1..].windows(2) {
            assert!(
                w[1] < w[0],
                "each added optimization must reduce walltime: {w:?}"
            );
        }
    }

    #[test]
    fn modeled_column_values_within_2x_of_paper() {
        let model = PerfModel::default();
        let paper = [0.97, 0.49, 0.40, 0.17];
        for ((_, opts), p) in columns().into_iter().skip(1).zip(paper) {
            let t = modeled_walltime(&model, &opts);
            assert!((0.5..2.0).contains(&(t / p)), "modeled {t} vs paper {p}");
        }
    }
}
