//! Ablation: QK layer normalization (paper Sec. III-B, "Architecture
//! Optimization").
//!
//! The paper adopts QK layernorm from the 22 B ViT work to contain
//! attention-logit growth and prevent training-loss divergence. This
//! ablation reproduces the mechanism at executable scale:
//!
//! 1. **Logit growth**: with adversarially scaled activations, raw QK dot
//!    products explode with the activation scale while normalized ones
//!    stay bounded by the head dimension.
//! 2. **Training stability**: a learning-rate sweep comparing final loss
//!    with and without QK norm. At our tame 1/1000 scale the catastrophic
//!    divergence the paper saw at 22 B+ does not fully materialize — the
//!    logit-explosion mechanism in part 1 is the scale-dependent cause —
//!    so this part reports the observed losses rather than asserting a
//!    separation.

use super::common::{loader, orbit_cfg};
use crate::report::{print_table, write_json};
use orbit_tensor::init::Rng;
use orbit_tensor::kernels::attention::QkNorm;
use orbit_tensor::kernels::{layernorm, AdamW};
use orbit_tensor::matmul_nt;
use orbit_vit::loss::lat_weights;
use orbit_vit::VitModel;
use serde_json::json;

/// Max attention logit for raw vs QK-normalized activations at a given
/// activation scale.
fn logit_growth(scale: f32) -> (f32, f32) {
    let d = 32usize;
    let mut rng = Rng::seed(5);
    let q = rng.normal_tensor(16, d, scale);
    let k = rng.normal_tensor(16, d, scale);
    let raw = matmul_nt(&q, &k).max_abs();
    let n = QkNorm::identity(d);
    let (qn, _) = layernorm(&q, &n.gamma_q, &n.beta_q);
    let (kn, _) = layernorm(&k, &n.gamma_k, &n.beta_k);
    let normed = matmul_nt(&qn, &kn).max_abs();
    (raw, normed)
}

/// Train briefly at learning rate `lr`; returns (final_loss, diverged).
fn stability_run(qk_norm: bool, lr: f32, seed: u64) -> (f32, bool) {
    let mut cfg = orbit_cfg(0);
    cfg.qk_norm = qk_norm;
    let l = loader();
    let mut model = VitModel::init(cfg, seed);
    let w = lat_weights(cfg.dims.img_h);
    let opt = AdamW {
        lr,
        ..AdamW::default()
    };
    let mut state = model.init_adam_state();
    let mut rng = Rng::seed(seed ^ 0xABCD);
    let mut first = None;
    let mut last = f32::NAN;
    for _ in 0..40 {
        let b = l.pretrain_batch(&mut rng, 4);
        last = model.train_step(&b, &w, &opt, &mut state);
        first.get_or_insert(last);
        if !last.is_finite() {
            return (last, true);
        }
    }
    let diverged = !last.is_finite() || last > 2.0 * first.unwrap();
    (last, diverged)
}

pub fn run(quick: bool) -> serde_json::Value {
    // Part 1: logit growth.
    let mut rows = Vec::new();
    let mut logits = Vec::new();
    for scale in [1.0f32, 10.0, 100.0] {
        let (raw, normed) = logit_growth(scale);
        rows.push(vec![
            format!("{scale}"),
            format!("{raw:.1}"),
            format!("{normed:.1}"),
        ]);
        logits.push(json!({"scale": scale, "raw_max_logit": raw, "qknorm_max_logit": normed}));
    }
    print_table(
        "QK-norm ablation 1: max attention logit vs activation scale",
        &["act scale", "raw", "QK-normed"],
        &rows,
    );

    // Part 2: learning-rate sweep.
    let seeds: Vec<u64> = if quick { vec![1, 2] } else { vec![1, 2, 3] };
    let lrs: Vec<f32> = if quick {
        vec![1e-2]
    } else {
        vec![3e-3, 1e-2, 3e-2]
    };
    let mut sweep_rows = Vec::new();
    let mut runs = Vec::new();
    for &lr in &lrs {
        let mut sum_with = 0.0;
        let mut sum_without = 0.0;
        let mut div_with = 0;
        let mut div_without = 0;
        for &s in &seeds {
            let (lw, dw) = stability_run(true, lr, s);
            let (lo, dn) = stability_run(false, lr, s);
            sum_with += if lw.is_finite() { lw } else { 99.0 };
            sum_without += if lo.is_finite() { lo } else { 99.0 };
            div_with += usize::from(dw);
            div_without += usize::from(dn);
            runs.push(json!({"lr": lr, "seed": s,
                "with_qknorm": {"loss": lw, "diverged": dw},
                "without_qknorm": {"loss": lo, "diverged": dn}}));
        }
        sweep_rows.push(vec![
            format!("{lr:.0e}"),
            format!("{:.3}", sum_with / seeds.len() as f32),
            format!("{:.3}", sum_without / seeds.len() as f32),
            format!("{div_with}/{}", seeds.len()),
            format!("{div_without}/{}", seeds.len()),
        ]);
    }
    print_table(
        "QK-norm ablation 2: mean final loss and divergence count by learning rate",
        &["lr", "loss w/ QK", "loss w/o QK", "div w/", "div w/o"],
        &sweep_rows,
    );
    let v = json!({
        "experiment": "qk_ablation",
        "logit_growth": logits,
        "stability": { "runs": runs },
    });
    write_json("qk_ablation", &v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_logits_bounded_raw_logits_explode() {
        let (raw_small, norm_small) = logit_growth(1.0);
        let (raw_big, norm_big) = logit_growth(100.0);
        assert!(raw_big > 100.0 * raw_small, "raw logits track scale^2");
        // Normalized logits bounded by d regardless of scale.
        assert!(
            norm_small <= 33.0 && norm_big <= 33.0,
            "{norm_small} {norm_big}"
        );
    }
}
