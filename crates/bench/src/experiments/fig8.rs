//! Fig. 8: pre-training loss vs observations processed for the four model
//! sizes (48 channels, fixed global batch).
//!
//! Paper shape: the larger (10 B / 113 B) models start with higher loss
//! but converge faster per sample, crossing below the smaller models
//! after ~2 M observations. At our 1/1000 scale the same ordering is
//! expected after proportionally fewer samples.

use super::common::{loader, orbit_cfg, pretrain};
use crate::report::{print_table, write_json};
use orbit_vit::VitModel;
use serde_json::json;

pub fn run(quick: bool) -> serde_json::Value {
    let (n_samples, batch) = if quick { (320, 8) } else { (2048, 8) };
    let names = ["115M-proxy", "1B-proxy", "10B-proxy", "113B-proxy"];
    let l = loader();
    let mut curves = Vec::new();
    for (rung, name) in names.iter().enumerate() {
        let cfg = orbit_cfg(rung);
        let mut model = VitModel::init(cfg, 42 + rung as u64);
        let curve = pretrain(&mut model, &l, n_samples, batch, 10, 7 + rung as u64);
        println!(
            "[fig8] {} ({} params): first loss {:.4}, final loss {:.4}",
            name,
            cfg.dims.param_count(),
            curve.first().map(|c| c.1).unwrap_or(0.0),
            curve.last().map(|c| c.1).unwrap_or(0.0),
        );
        curves.push(curve);
    }
    // Print the loss at a few checkpoints.
    let checkpoints: Vec<usize> = (1..=8).map(|k| k * n_samples / 8).collect();
    let mut rows = Vec::new();
    for &cp in &checkpoints {
        let mut row = vec![cp.to_string()];
        for curve in &curves {
            let loss = curve
                .iter()
                .take_while(|(s, _)| *s <= cp)
                .last()
                .map(|(_, l)| *l)
                .unwrap_or(f32::NAN);
            row.push(format!("{loss:.4}"));
        }
        rows.push(row);
    }
    print_table(
        "Fig. 8: pre-training loss vs samples (paper: larger models converge faster, crossover ~2M samples)",
        &["samples", names[0], names[1], names[2], names[3]],
        &rows,
    );
    // Shape check: at the end, the largest model should be at or below the
    // smallest.
    let finals: Vec<f32> = curves.iter().map(|c| c.last().unwrap().1).collect();
    println!(
        "final losses: {:?} (largest <= smallest: {})",
        finals,
        finals[3] <= finals[0]
    );
    let v = json!({
        "experiment": "fig8",
        "global_batch": batch,
        "curves": names.iter().zip(&curves).map(|(n, c)| json!({
            "model": n,
            "samples": c.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            "loss": c.iter().map(|(_, l)| *l).collect::<Vec<_>>(),
        })).collect::<Vec<_>>(),
    });
    write_json("fig8", &v);
    v
}
