//! Fig. 10: fine-tuning data efficiency vs model size — ERA5 samples
//! needed for the 30-day fine-tuning task to converge.
//!
//! Paper: 115 M -> ~76 k samples, 1 B -> ~47 k (-38 %), 10 B -> ~32.8 k
//! (-57 %): larger pre-trained models converge with fewer samples. At our
//! scale we reproduce the *monotone decrease*.

use super::common::{eval_wacc, loader, mean4, orbit_cfg, pretrain, STEPS_PER_DAY};
use crate::report::{print_table, write_json};
use orbit_vit::VitModel;
use serde_json::json;

pub fn run(quick: bool) -> serde_json::Value {
    let (pre_n, max_ft, chunk, n_eval) = if quick {
        (256, 384, 64, 6)
    } else {
        (2048, 1536, 128, 12)
    };
    let batch = 8;
    let l = loader();
    let lead = l.clone().with_lead(30 * STEPS_PER_DAY);
    let names = ["115M-proxy", "1B-proxy", "10B-proxy"];

    // Fine-tune each model in chunks (one persistent optimizer state),
    // tracking the eval wACC curve.
    let mut curves: Vec<Vec<(usize, f32)>> = Vec::new();
    for (rung, name) in names.iter().enumerate() {
        let mut model = VitModel::init(orbit_cfg(rung), 42 + rung as u64);
        pretrain(&mut model, &l, pre_n, batch, 10, 500 + rung as u64);
        let o = super::common::opt();
        let mut state = model.init_adam_state();
        let w = orbit_vit::loss::lat_weights(model.cfg.dims.img_h);
        let mut rng = orbit_tensor::init::Rng::seed(600 + rung as u64);
        let mut curve = Vec::new();
        let mut seen = 0;
        while seen < max_ft {
            let mut done = 0;
            while done < chunk {
                let b = lead.finetune_batch(&mut rng, batch);
                model.train_step(&b, &w, &o, &mut state);
                done += batch;
            }
            seen += chunk;
            let acc = mean4(eval_wacc(&model, &lead, n_eval));
            curve.push((seen, acc));
        }
        println!(
            "[fig10] {}: wACC curve {:?}",
            name,
            curve
                .iter()
                .map(|(s, a)| format!("{s}:{a:.3}"))
                .collect::<Vec<_>>()
        );
        curves.push(curve);
    }

    // Convergence threshold: 95% of the *lowest* plateau, so every model
    // can reach it (the paper's "converged to similar values").
    let plateaus: Vec<f32> = curves.iter().map(|c| c.last().unwrap().1).collect();
    let threshold = 0.95 * plateaus.iter().cloned().fold(f32::INFINITY, f32::min);
    let converge_at: Vec<Option<usize>> = curves
        .iter()
        .map(|c| c.iter().find(|(_, a)| *a >= threshold).map(|(s, _)| *s))
        .collect();

    let paper = [76_000usize, 47_000, 32_800];
    let mut rows = Vec::new();
    let mut artifacts = Vec::new();
    for (i, name) in names.iter().enumerate() {
        rows.push(vec![
            name.to_string(),
            paper[i].to_string(),
            converge_at[i]
                .map(|s| s.to_string())
                .unwrap_or("n/a".into()),
            format!("{:.3}", plateaus[i]),
        ]);
        artifacts.push(json!({
            "model": name,
            "paper_samples": paper[i],
            "measured_samples": converge_at[i],
            "plateau_wacc": plateaus[i],
            "curve": curves[i].iter().map(|(s, a)| json!([s, a])).collect::<Vec<_>>(),
        }));
    }
    print_table(
        &format!("Fig. 10: samples to reach wACC {threshold:.3} on the 30-day task (paper: decreasing with size)"),
        &["model", "paper samples", "measured samples", "plateau wACC"],
        &rows,
    );
    let monotone = converge_at.windows(2).all(|w| match (w[0], w[1]) {
        (Some(a), Some(b)) => b <= a,
        _ => false,
    });
    println!("samples-to-converge decreases with model size: {monotone}");
    let v = json!({
        "experiment": "fig10",
        "threshold_wacc": threshold,
        "monotone_decrease": monotone,
        "rows": artifacts,
    });
    write_json("fig10", &v);
    v
}
