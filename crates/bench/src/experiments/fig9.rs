//! Fig. 9: wACC of ORBIT vs baselines for z500/t850/t2m/u10 at 1, 14 and
//! 30-day leads on the held-out test year.
//!
//! Proxies (see DESIGN.md): ORBIT = pre-trained ViT with QK-norm,
//! fine-tuned per lead, predicting all four variables jointly;
//! ClimaX = same ViT without QK-norm, pre-trained on 5 of 10 sources;
//! Stormer = task-specific full-state ViT trained at 1-day lead on
//! reanalysis only, rolled out autoregressively (1/14 days only);
//! FourCastNet = spectral operator, 1-day only; IFS = NWP proxy with
//! phase-speed model error (1/14 days only).
//!
//! Paper shape: parity among models at 1 day; at 14 days ORBIT beats IFS
//! (up to +52 %) and Stormer (up to +166 %); at 30 days ORBIT beats
//! ClimaX by up to ~9 %.

use super::common::{
    eval_wacc, eval_wacc_nwp, eval_wacc_rollout, finetune, finetune_full_state, loader, mean4,
    orbit_cfg, pretrain, STEPS_PER_DAY,
};
use crate::report::{print_table, write_json};
use orbit_data::metrics::{lat_weights, wacc};
use orbit_tensor::init::Rng;
use orbit_tensor::kernels::AdamW;
use orbit_vit::baselines::SpectralOperator;
use orbit_vit::VitModel;
use serde_json::json;

const VARS: [&str; 4] = ["z500", "t850", "t2m", "u10"];

pub fn run(quick: bool) -> serde_json::Value {
    let (pre_n, ft_n, n_eval) = if quick {
        (256, 192, 8)
    } else {
        (4096, 2048, 24)
    };
    let batch = 8;
    let l = loader();
    let leads_days = [1usize, 14, 30];
    let mut results: Vec<(String, usize, [f32; 4])> = Vec::new();

    // ---- ORBIT: pre-train once, fine-tune per lead. ----
    let mut orbit_base = VitModel::init(orbit_cfg(0), 42);
    pretrain(&mut orbit_base, &l, pre_n, batch, 10, 101);
    for &days in &leads_days {
        let ll = l.clone().with_lead(days * STEPS_PER_DAY);
        let mut m = orbit_base.clone();
        finetune(&mut m, &ll, ft_n, batch, 201 + days as u64);
        let a = eval_wacc(&m, &ll, n_eval);
        results.push(("ORBIT".into(), days, a));
    }

    // ---- ClimaX-like: no QK norm, 5 pre-training sources. ----
    let mut climax_cfg = orbit_cfg(0);
    climax_cfg.qk_norm = false;
    let mut climax_base = VitModel::init(climax_cfg, 43);
    pretrain(&mut climax_base, &l, pre_n, batch, 5, 102);
    for &days in &leads_days {
        let ll = l.clone().with_lead(days * STEPS_PER_DAY);
        let mut m = climax_base.clone();
        finetune(&mut m, &ll, ft_n, batch, 301 + days as u64);
        let a = eval_wacc(&m, &ll, n_eval);
        results.push(("ClimaX".into(), days, a));
    }

    // ---- Stormer-like: full-state, reanalysis-only, 1-day lead, rollout.
    let mut stormer_cfg = orbit_cfg(0);
    stormer_cfg.dims.out_channels = stormer_cfg.dims.channels;
    let mut stormer = VitModel::init(stormer_cfg, 44);
    let one_day = l.clone().with_lead(STEPS_PER_DAY);
    finetune_full_state(&mut stormer, &one_day, pre_n + ft_n, batch, 103);
    for &days in &[1usize, 14] {
        let a = eval_wacc_rollout(&stormer, &one_day, days, n_eval);
        results.push(("Stormer".into(), days, a));
    }

    // ---- FourCastNet-like: spectral operator, 1-day direct. ----
    let dims = orbit_cfg(0).dims;
    let mut fcn = SpectralOperator::new(
        dims.img_h,
        dims.img_w,
        dims.channels,
        dims.channels,
        12,
        24,
        45,
    );
    {
        let o = AdamW {
            lr: 5e-3,
            ..AdamW::default()
        };
        let mut state = fcn.init_adam_state();
        let mut rng = Rng::seed(104);
        let mut seen = 0;
        while seen < pre_n + ft_n {
            let b = one_day.finetune_batch_full_state(&mut rng, 1);
            fcn.train_step(&b.inputs[0], &b.targets[0], &o, &mut state);
            seen += 1;
        }
    }
    {
        // Direct 1-day evaluation on the output variables.
        let clims = one_day.output_climatologies();
        let out_idx = one_day.generator.catalog().output_indices();
        let w = lat_weights(dims.img_h);
        let eval = one_day.eval_batch(n_eval);
        let mut acc = [0.0f32; 4];
        for (images, targets) in eval.inputs.iter().zip(&eval.targets) {
            let preds = fcn.predict(images);
            for v in 0..4 {
                acc[v] += wacc(&preds[out_idx[v]], &targets[v], &clims[v], &w) / n_eval as f32;
            }
        }
        results.push(("FourCastNet".into(), 1, acc));
    }

    // ---- IFS-like: NWP proxy with 8% phase-speed error. ----
    for &days in &[1usize, 14] {
        let a = eval_wacc_nwp(&l, days * STEPS_PER_DAY, 0.08, n_eval);
        results.push(("IFS".into(), days, a));
    }

    // ---- Report. ----
    let mut rows = Vec::new();
    for (model, days, acc) in &results {
        let mut row = vec![model.clone(), format!("{days}d")];
        for v in acc {
            row.push(format!("{v:.3}"));
        }
        row.push(format!("{:.3}", mean4(*acc)));
        rows.push(row);
    }
    print_table(
        "Fig. 9: wACC by model and lead (paper: parity @1d; ORBIT > IFS > Stormer @14d; ORBIT >= ClimaX @30d)",
        &["model", "lead", VARS[0], VARS[1], VARS[2], VARS[3], "mean"],
        &rows,
    );
    let get = |m: &str, d: usize| {
        results
            .iter()
            .find(|(name, days, _)| name == m && *days == d)
            .map(|(_, _, a)| mean4(*a))
    };
    if let (Some(o14), Some(i14), Some(s14)) =
        (get("ORBIT", 14), get("IFS", 14), get("Stormer", 14))
    {
        println!(
            "14-day: ORBIT {o14:.3} vs IFS {i14:.3} (paper: ORBIT up to +52%) vs Stormer {s14:.3} (paper: +166%)"
        );
    }
    if let (Some(o30), Some(c30)) = (get("ORBIT", 30), get("ClimaX", 30)) {
        println!("30-day: ORBIT {o30:.3} vs ClimaX {c30:.3} (paper: ORBIT up to +9%)");
    }
    let v = json!({
        "experiment": "fig9",
        "rows": results.iter().map(|(m, d, a)| json!({
            "model": m,
            "lead_days": d,
            "wacc": { "z500": a[0], "t850": a[1], "t2m": a[2], "u10": a[3] },
        })).collect::<Vec<_>>(),
    });
    write_json("fig9", &v);
    v
}
