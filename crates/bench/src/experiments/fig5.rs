//! Fig. 5: maximal model size each parallelism scales to, 1-512 GPUs.
//!
//! Paper endpoints at 512 GPUs: FSDP 20 B, tensor parallelism 73 B,
//! Hybrid-STOP 143 B (batch 2, 48 channels).

use crate::report::{fmt_params, print_table, write_json};
use orbit_frontier::{PerfModel, Strategy, TrainOptions};
use serde_json::json;

/// Per-strategy option sets (see DESIGN.md): vanilla FSDP has no layer
/// wrapping (that is what makes it vanilla); Megatron TP runs without full
/// activation checkpointing; Hybrid-STOP uses all optimizations.
pub fn strategy_opts(strategy: Strategy) -> TrainOptions {
    match strategy {
        Strategy::Fsdp => TrainOptions {
            layer_wrapping: false,
            ..TrainOptions::all_on()
        },
        Strategy::TensorParallel => TrainOptions {
            activation_checkpointing: false,
            ..TrainOptions::all_on()
        },
        _ => TrainOptions::all_on(),
    }
}

pub fn run(_quick: bool) -> serde_json::Value {
    let model = PerfModel::default();
    let gpu_counts = [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512];
    let strategies = [
        ("FSDP", Strategy::Fsdp),
        ("TensorParallel", Strategy::TensorParallel),
        ("Hybrid-STOP", Strategy::HybridStop),
    ];
    let mut rows = Vec::new();
    let mut artifacts = Vec::new();
    for &gpus in &gpu_counts {
        let mut row = vec![gpus.to_string()];
        let mut entry = json!({ "gpus": gpus });
        for (name, strategy) in strategies {
            let opts = strategy_opts(strategy);
            let (_, p) = model.max_model(strategy, gpus, &opts, 2, 48);
            row.push(fmt_params(p));
            entry[name] = json!(p);
        }
        rows.push(row);
        artifacts.push(entry);
    }
    print_table(
        "Fig. 5: max model size vs GPUs (paper @512: FSDP 20B, TP 73B, Hybrid-STOP 143B)",
        &["gpus", "FSDP", "TP", "Hybrid-STOP"],
        &rows,
    );
    let v = json!({
        "experiment": "fig5",
        "paper_at_512": { "FSDP": 20e9, "TensorParallel": 73e9, "Hybrid-STOP": 143e9 },
        "rows": artifacts,
    });
    write_json("fig5", &v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_within_range_of_paper() {
        let model = PerfModel::default();
        let cases = [
            (Strategy::Fsdp, 20e9),
            (Strategy::TensorParallel, 73e9),
            (Strategy::HybridStop, 143e9),
        ];
        for (strategy, paper) in cases {
            let opts = strategy_opts(strategy);
            let (_, p) = model.max_model(strategy, 512, &opts, 2, 48);
            let ratio = p as f64 / paper;
            assert!(
                (0.6..1.6).contains(&ratio),
                "{strategy:?}: {p} vs {paper} ({ratio:.2})"
            );
        }
    }

    #[test]
    fn max_size_is_monotone_in_gpus_for_hybrid_stop() {
        let model = PerfModel::default();
        let opts = strategy_opts(Strategy::HybridStop);
        let mut prev = 0;
        for gpus in [1usize, 8, 64, 512] {
            let (_, p) = model.max_model(Strategy::HybridStop, gpus, &opts, 2, 48);
            assert!(p >= prev, "gpus={gpus}");
            prev = p;
        }
    }
}
