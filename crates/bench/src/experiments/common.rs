//! Shared training loops for the executable experiments (Figs. 8-10).
//!
//! All executable experiments run the *single-device reference* engine at
//! laptop scale — the distributed engines are proven equivalent to it by
//! the orbit-core test suite, so training curves transfer.

use orbit_data::generator::ERA5_SOURCE;
use orbit_data::loader::laptop_loader;
use orbit_data::metrics::wacc;
use orbit_data::DataLoader;
use orbit_tensor::init::Rng;
use orbit_tensor::kernels::{AdamState, AdamW};
use orbit_tensor::Tensor;
use orbit_vit::loss::lat_weights;
use orbit_vit::{VitConfig, VitModel};

/// 6-hour steps per forecast day.
pub const STEPS_PER_DAY: usize = 4;

/// A (samples_seen, loss) curve.
pub type Curve = Vec<(usize, f32)>;

/// Standard laptop loader for all executable experiments.
pub fn loader() -> DataLoader {
    laptop_loader(2024)
}

/// Default optimizer for the scaled experiments.
pub fn opt() -> AdamW {
    AdamW {
        lr: 1e-3,
        ..AdamW::default()
    }
}

/// Pre-train `model` on the synthetic CMIP6 archive (first `n_sources`
/// sources), returning the loss curve.
pub fn pretrain(
    model: &mut VitModel,
    loader: &DataLoader,
    n_samples: usize,
    batch: usize,
    n_sources: usize,
    seed: u64,
) -> Curve {
    let w = lat_weights(model.cfg.dims.img_h);
    let o = opt();
    let mut state = model.init_adam_state();
    let mut rng = Rng::seed(seed);
    let mut curve = Vec::new();
    let mut seen = 0;
    while seen < n_samples {
        let b = loader.pretrain_batch_sources(&mut rng, batch, n_sources);
        let loss = model.train_step(&b, &w, &o, &mut state);
        seen += batch;
        curve.push((seen, loss));
    }
    curve
}

/// Fine-tune `model` on the ERA5-like reanalysis at the loader's lead.
pub fn finetune(
    model: &mut VitModel,
    loader: &DataLoader,
    n_samples: usize,
    batch: usize,
    seed: u64,
) -> Curve {
    let w = lat_weights(model.cfg.dims.img_h);
    let o = opt();
    let mut state = model.init_adam_state();
    let mut rng = Rng::seed(seed);
    let mut curve = Vec::new();
    let mut seen = 0;
    while seen < n_samples {
        let b = loader.finetune_batch(&mut rng, batch);
        let loss = model.train_step(&b, &w, &o, &mut state);
        seen += batch;
        curve.push((seen, loss));
    }
    curve
}

/// Fine-tune a full-state (autoregressive) model: targets are all input
/// channels at `t + lead`.
pub fn finetune_full_state(
    model: &mut VitModel,
    loader: &DataLoader,
    n_samples: usize,
    batch: usize,
    seed: u64,
) -> Curve {
    assert_eq!(
        model.cfg.dims.out_channels, model.cfg.dims.channels,
        "full-state model must predict every input channel"
    );
    let w = lat_weights(model.cfg.dims.img_h);
    let o = opt();
    let mut state = model.init_adam_state();
    let mut rng = Rng::seed(seed);
    let mut curve = Vec::new();
    let mut seen = 0;
    while seen < n_samples {
        let b = loader.finetune_batch_full_state(&mut rng, batch);
        let loss = model.train_step(&b, &w, &o, &mut state);
        seen += batch;
        curve.push((seen, loss));
    }
    curve
}

/// Mean wACC per output variable of a direct-prediction model on the test
/// year at the loader's lead.
pub fn eval_wacc(model: &VitModel, loader: &DataLoader, n_eval: usize) -> [f32; 4] {
    let batch = loader.eval_batch(n_eval);
    let clims = loader.output_climatologies();
    let w = lat_weights(model.cfg.dims.img_h);
    let mut acc = [0.0f32; 4];
    for (images, targets) in batch.inputs.iter().zip(&batch.targets) {
        let preds = model.predict(images);
        for v in 0..4 {
            acc[v] += wacc(&preds[v], &targets[v], &clims[v], &w) / n_eval as f32;
        }
    }
    acc
}

/// Mean wACC of an autoregressive model rolled out `k` times (total lead
/// `k * loader.lead_steps`), evaluated on the four output variables.
pub fn eval_wacc_rollout(
    model: &VitModel,
    base_loader: &DataLoader,
    k: usize,
    n_eval: usize,
) -> [f32; 4] {
    assert_eq!(model.cfg.dims.out_channels, model.cfg.dims.channels);
    let long = base_loader.clone().with_lead(base_loader.lead_steps * k);
    let batch = long.eval_batch(n_eval);
    let clims = long.output_climatologies();
    let out_idx = long.generator.catalog().output_indices();
    let w = lat_weights(model.cfg.dims.img_h);
    let mut acc = [0.0f32; 4];
    for (images, targets) in batch.inputs.iter().zip(&batch.targets) {
        let mut state: Vec<Tensor> = images.clone();
        for _ in 0..k {
            state = model.predict(&state);
        }
        for v in 0..4 {
            acc[v] += wacc(&state[out_idx[v]], &targets[v], &clims[v], &w) / n_eval as f32;
        }
    }
    acc
}

/// Mean wACC of the IFS-like NWP proxy at `lead` steps.
pub fn eval_wacc_nwp(
    loader: &DataLoader,
    lead: usize,
    speed_error: f32,
    n_eval: usize,
) -> [f32; 4] {
    let l = loader.clone().with_lead(lead);
    let clims = l.output_climatologies();
    let out_idx = l.generator.catalog().output_indices();
    let w = lat_weights(l.generator.h);
    let batch = l.eval_batch(n_eval);
    let span = orbit_data::generator::STEPS_PER_YEAR - lead;
    let mut acc = [0.0f32; 4];
    for (k, targets) in batch.targets.iter().enumerate() {
        let t = l.test_year * orbit_data::generator::STEPS_PER_YEAR + k * span / n_eval;
        for v in 0..4 {
            let fc = l.generator.nwp_forecast(out_idx[v], t, lead, speed_error);
            acc[v] += wacc(&fc, &targets[v], &clims[v], &w) / n_eval as f32;
        }
    }
    acc
}

/// Mean wACC of damped persistence at `lead` steps.
pub fn eval_wacc_persistence(loader: &DataLoader, lead: usize, n_eval: usize) -> [f32; 4] {
    let l = loader.clone().with_lead(lead);
    let clims = l.output_climatologies();
    let out_idx = l.generator.catalog().output_indices();
    let w = lat_weights(l.generator.h);
    let batch = l.eval_batch(n_eval);
    let mut acc = [0.0f32; 4];
    for (images, targets) in batch.inputs.iter().zip(&batch.targets) {
        for v in 0..4 {
            let fc = orbit_vit::baselines::damped_persistence(
                &images[out_idx[v]],
                &clims[v],
                lead,
                0.99,
            );
            acc[v] += wacc(&fc, &targets[v], &clims[v], &w) / n_eval as f32;
        }
    }
    acc
}

/// The ORBIT-style config at ladder rung `rung` (direct 4-variable head).
pub fn orbit_cfg(rung: usize) -> VitConfig {
    VitConfig::ladder(rung, 8)
}

/// The mean of a 4-variable wACC array.
pub fn mean4(a: [f32; 4]) -> f32 {
    a.iter().sum::<f32>() / 4.0
}

/// Validate eval against the ERA5 source being present (sanity helper).
pub fn era5_source() -> usize {
    ERA5_SOURCE
}

/// Fresh Adam state helper for external training loops.
pub fn adam_state_for(model: &mut VitModel) -> AdamState {
    model.init_adam_state()
}
