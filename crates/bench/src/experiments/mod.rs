//! One module per paper table/figure. Each exposes
//! `run(quick: bool) -> serde_json::Value`: prints the comparison table
//! and returns the JSON artifact.

pub mod common;
pub mod fig10;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod qk_ablation;
pub mod table1;
