//! Fig. 7: strong scaling 512 -> 49,152 GPUs for the four model sizes at
//! 48 and 91 input channels: walltime per observation (T) and efficiency
//! relative to 512 GPUs (E), plus sustained FLOPS.
//!
//! Paper: efficiencies 44-82 % (48 ch) and 41-85 % (91 ch) at 49,152
//! GPUs; T(113 B, 48 ch) = 3e-3 s at 684 PFLOPS sustained;
//! T(10 B, 48 ch) = 1e-4 s at 1.6 EFLOPS.

use crate::report::{fmt_secs, print_table, write_json};
use orbit_frontier::{ModelDims, ParallelLayout, PerfModel, Strategy, TrainOptions};
use serde_json::json;

/// Model-shard layout per model size, mirroring the paper's hierarchical
/// configuration: a tensor-parallel group fills a node (tp = 8) and the
/// FSDP width grows with model size (1 for 115 M up to 64 for 113 B, i.e.
/// 512 model shards for the largest model as in Fig. 6's best split).
pub fn layout_for(dims: &ModelDims, gpus: usize, model: &PerfModel) -> Option<ParallelLayout> {
    let opts = TrainOptions::all_on();
    let p = dims.param_count();
    let fsdp = if p > 50_000_000_000 {
        64
    } else if p > 5_000_000_000 {
        8
    } else if p > 500_000_000 {
        2
    } else {
        1
    };
    let tp = 8;
    let shards = tp * fsdp;
    if !gpus.is_multiple_of(shards) || gpus < shards {
        return None;
    }
    let layout = ParallelLayout::new(tp, fsdp, gpus / shards);
    model
        .fits(dims, &layout, Strategy::HybridStop, &opts, 1)
        .then_some(layout)
}

pub fn run(_quick: bool) -> serde_json::Value {
    let model = PerfModel::default();
    let opts = TrainOptions::all_on();
    let global_batch = 2880usize;
    let gpu_counts = [512usize, 1024, 2048, 4096, 8192, 16384, 24576, 49152];
    type DimsFn = fn(usize) -> ModelDims;
    let sizes: [(&str, DimsFn); 4] = [
        ("115M", ModelDims::orbit_115m),
        ("1B", ModelDims::orbit_1b),
        ("10B", ModelDims::orbit_10b),
        ("113B", ModelDims::orbit_113b),
    ];
    let mut artifacts = Vec::new();
    for channels in [48usize, 91] {
        let mut rows = Vec::new();
        for (name, dims_fn) in sizes {
            let dims = dims_fn(channels);
            let base_layout = match layout_for(&dims, 512, &model) {
                Some(l) => l,
                None => continue,
            };
            for &gpus in &gpu_counts {
                // Keep the shard shape fixed (strong scaling adds replicas).
                let shards = base_layout.model_shards();
                let ddp = gpus / shards;
                if ddp == 0 || shards * ddp != gpus {
                    continue;
                }
                let layout = ParallelLayout::new(base_layout.tp, base_layout.fsdp, ddp);
                let t = model.time_per_obs_at_global_batch(
                    &dims,
                    &layout,
                    Strategy::HybridStop,
                    &opts,
                    global_batch,
                );
                let eff = model.scaling_efficiency(
                    &dims,
                    &ParallelLayout::new(base_layout.tp, base_layout.fsdp, 512 / shards.max(1)),
                    &layout,
                    Strategy::HybridStop,
                    &opts,
                    global_batch,
                );
                let pflops = model.flops_per_obs(&dims, &opts) / t / 1e15;
                rows.push(vec![
                    name.to_string(),
                    gpus.to_string(),
                    fmt_secs(t),
                    format!("{:.0}%", eff * 100.0),
                    format!("{pflops:.0}"),
                ]);
                artifacts.push(json!({
                    "channels": channels,
                    "model": name,
                    "gpus": gpus,
                    "walltime_per_obs_s": t,
                    "efficiency": eff,
                    "sustained_pflops": pflops,
                }));
            }
        }
        print_table(
            &format!(
                "Fig. 7: strong scaling, {channels} channels (paper @49k: eff {} ; T(113B)=3e-3s/684PF, T(10B)=1e-4s/1.6EF for 48ch)",
                if channels == 48 { "44-82%" } else { "41-85%" }
            ),
            &["model", "gpus", "T s/obs", "E", "PFLOPS"],
            &rows,
        );
    }
    let v = json!({
        "experiment": "fig7",
        "paper": {
            "eff_range_48ch": [0.44, 0.82],
            "eff_range_91ch": [0.41, 0.85],
            "t_113b_48ch_49k": 3e-3,
            "t_10b_48ch_49k": 1e-4,
            "pflops_113b": 684.0,
            "pflops_10b": 1600.0,
        },
        "rows": artifacts,
    });
    write_json("fig7", &v);
    v
}
