//! Fig. 6: walltime and per-GPU memory at 512 GPUs for the 113 B model
//! under different (FSDP x tensor) group-size splits, DDP = 1, batch 3.
//!
//! Paper: fastest at FSDP=64/TP=8 (0.33 s/observation), ~25x slower at
//! FSDP=2/TP=256; pure FSDP and pure TP run out of memory; memory rises
//! mildly as FSDP grows / TP shrinks.

use crate::report::{fmt_secs, print_table, write_json};
use orbit_frontier::{ModelDims, ParallelLayout, PerfModel, Strategy, TrainOptions};
use serde_json::json;

/// The (fsdp, tp) splits of 512 GPUs swept in the figure.
pub fn splits() -> Vec<(usize, usize)> {
    vec![
        (1, 512),
        (2, 256),
        (4, 128),
        (8, 64),
        (16, 32),
        (32, 16),
        (64, 8),
        (128, 4),
        (256, 2),
        (512, 1),
    ]
}

pub fn run(_quick: bool) -> serde_json::Value {
    let model = PerfModel::default();
    let dims = ModelDims::orbit_113b(48);
    let opts = TrainOptions::all_on();
    let batch = 3;
    let mut rows = Vec::new();
    let mut artifacts = Vec::new();
    let mut best: Option<(usize, usize, f64)> = None;
    for (fsdp, tp) in splits() {
        let layout = ParallelLayout::new(tp, fsdp, 1);
        // The pure ends degenerate to the single parallelisms the paper
        // says ran out of memory: tp=1 is plain (vanilla, full-gather)
        // FSDP, fsdp=1 is plain Megatron TP (head-limited).
        let (strategy, col_opts) = if tp == 1 {
            (
                Strategy::Fsdp,
                TrainOptions {
                    layer_wrapping: false,
                    ..opts
                },
            )
        } else if fsdp == 1 {
            (Strategy::TensorParallel, opts)
        } else {
            (Strategy::HybridStop, opts)
        };
        let fits = model.fits(&dims, &layout, strategy, &col_opts, batch);
        let mem = model.memory(&dims, &layout, strategy, &col_opts, batch);
        let t = if fits {
            model.time_per_obs(&dims, &layout, strategy, &col_opts, batch)
        } else {
            f64::INFINITY
        };
        if t.is_finite() && best.map(|(_, _, bt)| t < bt).unwrap_or(true) {
            best = Some((fsdp, tp, t));
        }
        rows.push(vec![
            format!("{fsdp}/{tp}"),
            fmt_secs(t),
            format!("{:.1}", mem.total() as f64 / 1e9),
        ]);
        artifacts.push(json!({
            "fsdp": fsdp,
            "tp": tp,
            "walltime_s": if fits { Some(t) } else { None },
            "oom": !fits,
            "memory_gb": mem.total() as f64 / 1e9,
        }));
    }
    print_table(
        "Fig. 6: 113B @ 512 GPUs, walltime & memory vs FSDP/TP split (paper best: 64/8 @ 0.33s)",
        &["fsdp/tp", "s per obs", "mem GB"],
        &rows,
    );
    if let Some((f, t, s)) = best {
        println!("fastest split: fsdp={f} tp={t} at {}", fmt_secs(s));
    }
    let v = json!({
        "experiment": "fig6",
        "paper_best": { "fsdp": 64, "tp": 8, "walltime_s": 0.33, "slowest_ratio": 25.0 },
        "rows": artifacts,
    });
    write_json("fig6", &v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_multiply_to_512() {
        for (fsdp, tp) in splits() {
            assert_eq!(fsdp * tp, 512);
        }
    }

    #[test]
    fn bowl_shape_with_oom_ends() {
        let v = run(true);
        let rows = v["rows"].as_array().unwrap();
        // Pure ends OOM.
        assert_eq!(rows.first().unwrap()["oom"], true);
        assert_eq!(rows.last().unwrap()["oom"], true);
        // The fastest interior split uses a node-sized-or-smaller TP group.
        let best = rows
            .iter()
            .filter(|r| r["walltime_s"].is_f64())
            .min_by(|a, b| {
                a["walltime_s"]
                    .as_f64()
                    .partial_cmp(&b["walltime_s"].as_f64())
                    .unwrap()
            })
            .unwrap();
        assert!(best["tp"].as_u64().unwrap() <= 8, "best split {best}");
    }
}
