//! Result reporting: aligned console tables + JSON artifacts.

use serde_json::Value;
use std::fs;
use std::path::Path;

/// Print a titled table with aligned columns.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Write a JSON artifact under `results/` (created on demand).
pub fn write_json(name: &str, value: &Value) {
    let dir = Path::new("results");
    if fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{name}.json"));
        if let Ok(s) = serde_json::to_string_pretty(value) {
            if fs::write(&path, s).is_ok() {
                println!("[artifact] wrote {}", path.display());
            }
        }
    }
}

/// Human-readable parameter count (e.g. `113.1B`).
pub fn fmt_params(p: u64) -> String {
    let pf = p as f64;
    if pf >= 1e9 {
        format!("{:.1}B", pf / 1e9)
    } else if pf >= 1e6 {
        format!("{:.1}M", pf / 1e6)
    } else {
        format!("{:.1}K", pf / 1e3)
    }
}

/// Human-readable seconds with scientific form for small values.
pub fn fmt_secs(t: f64) -> String {
    if t == f64::INFINITY {
        "OOM".to_string()
    } else if t < 0.01 {
        format!("{t:.1e}")
    } else {
        format!("{t:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_formatting() {
        assert_eq!(fmt_params(113_000_000_000), "113.0B");
        assert_eq!(fmt_params(115_000_000), "115.0M");
        assert_eq!(fmt_params(5_000), "5.0K");
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(fmt_secs(0.17), "0.170");
        assert_eq!(fmt_secs(3e-3), "3.0e-3");
        assert_eq!(fmt_secs(f64::INFINITY), "OOM");
    }
}
