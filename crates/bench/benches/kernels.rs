//! Kernel microbenchmarks: GEMM variants, layer kernels, precision modes.
//!
//! These measure the *host* substrate's throughput (the simulated GPUs'
//! actual compute), which is what bounds the executable experiments'
//! runtime — not the modeled Frontier numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orbit_tensor::init::Rng;
use orbit_tensor::kernels::{gelu, layernorm, linear, mha_forward, mha_forward_path, softmax_rows};
use orbit_tensor::{matmul_p, AttnPath, Precision, Tensor, Workspace};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 64, 128, 256] {
        let mut rng = Rng::seed(1);
        let a = rng.normal_tensor(n, n, 1.0);
        let b = rng.normal_tensor(n, n, 1.0);
        group.bench_with_input(BenchmarkId::new("f32", n), &n, |bch, _| {
            bch.iter(|| matmul_p(&a, &b, Precision::F32))
        });
        group.bench_with_input(BenchmarkId::new("bf16_mixed", n), &n, |bch, _| {
            bch.iter(|| matmul_p(&a, &b, Precision::BF16Mixed))
        });
    }
    group.finish();
}

fn bench_layer_kernels(c: &mut Criterion) {
    let mut rng = Rng::seed(2);
    let tokens = 128;
    let d = 256;
    let x = rng.normal_tensor(tokens, d, 1.0);
    let w = rng.normal_tensor(d, d, 0.02);
    let bias = Tensor::zeros(1, d);
    let gamma = Tensor::full(1, d, 1.0);
    let beta = Tensor::zeros(1, d);
    c.bench_function("linear_128x256", |b| {
        b.iter(|| linear(&x, &w, Some(&bias), Precision::F32))
    });
    c.bench_function("layernorm_128x256", |b| {
        b.iter(|| layernorm(&x, &gamma, &beta))
    });
    c.bench_function("gelu_128x256", |b| b.iter(|| gelu(&x)));
    c.bench_function("softmax_128x256", |b| b.iter(|| softmax_rows(&x)));
    let q = rng.normal_tensor(tokens, d, 1.0);
    let k = rng.normal_tensor(tokens, d, 1.0);
    let v = rng.normal_tensor(tokens, d, 1.0);
    c.bench_function("mha_8head_128tok", |b| {
        b.iter(|| mha_forward(&q, &k, &v, 8, None))
    });
}

fn bench_attention_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("attention_path");
    let ws = Workspace::new();
    for &tokens in &[256usize, 512] {
        let d = 512;
        let mut rng = Rng::seed(3);
        let q = rng.normal_tensor(tokens, d, 1.0);
        let k = rng.normal_tensor(tokens, d, 1.0);
        let v = rng.normal_tensor(tokens, d, 1.0);
        group.bench_with_input(BenchmarkId::new("reference", tokens), &tokens, |b, _| {
            b.iter(|| {
                mha_forward_path(
                    &q,
                    &k,
                    &v,
                    8,
                    None,
                    Precision::F32,
                    AttnPath::Reference,
                    &ws,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("fused", tokens), &tokens, |b, _| {
            b.iter(|| mha_forward_path(&q, &k, &v, 8, None, Precision::F32, AttnPath::Fused, &ws))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_layer_kernels, bench_attention_paths
}
criterion_main!(benches);
