//! Engine-level benchmarks: one optimizer step per parallelism strategy on
//! the tiny test model, plus the Table I optimization ablation at
//! executable scale (the ablation bench DESIGN.md calls out).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orbit_comm::Cluster;
use orbit_core::{
    build_engine, Engine, EngineSpec, HybridStopEngine, ParallelLayout, TrainOptions,
};
use orbit_tensor::init::Rng;
use orbit_tensor::kernels::AdamW;
use orbit_vit::{Batch, VitConfig};

fn make_batch(cfg: &VitConfig, n: usize) -> Batch {
    let mut rng = Rng::seed(7);
    Batch {
        inputs: (0..n)
            .map(|_| {
                (0..cfg.dims.channels)
                    .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                    .collect()
            })
            .collect(),
        targets: (0..n)
            .map(|_| {
                (0..cfg.dims.out_channels)
                    .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                    .collect()
            })
            .collect(),
    }
}

fn bench_engines(c: &mut Criterion) {
    let cfg = VitConfig::test_tiny();
    let batch = make_batch(&cfg, 4);
    let opt = AdamW::default();
    let opts = TrainOptions::none();
    let mut group = c.benchmark_group("train_step");

    // One generic body for the whole zoo: each case is a spec + world size.
    let cases: [(&str, EngineSpec, usize); 5] = [
        ("single_device", EngineSpec::Single, 1),
        ("ddp_w4", EngineSpec::Ddp, 4),
        ("fsdp_w4", EngineSpec::Fsdp, 4),
        ("tp_w2", EngineSpec::TensorParallel, 2),
        (
            "hybrid_stop_2x2",
            EngineSpec::HybridStop(ParallelLayout::new(2, 2, 1)),
            4,
        ),
    ];
    for (name, spec, world) in cases {
        group.bench_function(name, |b| {
            b.iter(|| {
                Cluster::frontier().run(world, |ctx| {
                    let mut e = build_engine(ctx, spec, cfg, opt, opts, 42).unwrap();
                    e.train_step(ctx, &batch).unwrap().loss
                })
            })
        });
    }
    group.finish();

    // Ablation: each Table I optimization toggled on the Hybrid-STOP
    // engine at executable scale.
    let mut ablation = c.benchmark_group("hybrid_stop_ablation");
    let columns: [(&str, TrainOptions); 4] = [
        (
            "wrap_only",
            TrainOptions {
                layer_wrapping: true,
                ..TrainOptions::none()
            },
        ),
        (
            "wrap_mixed",
            TrainOptions {
                layer_wrapping: true,
                mixed_precision: true,
                ..TrainOptions::none()
            },
        ),
        (
            "wrap_mixed_prefetch",
            TrainOptions {
                layer_wrapping: true,
                mixed_precision: true,
                prefetch: true,
                ..TrainOptions::none()
            },
        ),
        ("all_on", TrainOptions::all_on()),
    ];
    for (name, col_opts) in columns {
        ablation.bench_with_input(BenchmarkId::from_parameter(name), &col_opts, |b, &o| {
            b.iter(|| {
                Cluster::frontier().run(4, |ctx| {
                    let layout = ParallelLayout::new(2, 2, 1);
                    let mut e = HybridStopEngine::new(ctx, layout, cfg, opt, o, 42).unwrap();
                    e.train_step(ctx, &batch).unwrap().loss
                })
            })
        });
    }
    ablation.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engines
}
criterion_main!(benches);
