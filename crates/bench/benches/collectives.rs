//! Collective-operation benchmarks on the simulated cluster: the real
//! thread-rendezvous cost of all-gather / reduce-scatter / all-reduce at
//! several world sizes and message sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orbit_comm::{Cluster, PendingCollective};

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives");
    for &world in &[2usize, 4, 8] {
        for &len in &[1024usize, 65536] {
            group.bench_with_input(
                BenchmarkId::new(format!("all_reduce_w{world}"), len),
                &len,
                |b, &len| {
                    let cluster = Cluster::frontier();
                    b.iter(|| {
                        cluster.run(world, |ctx| {
                            let mut g = ctx.world_group();
                            let mut clock = std::mem::take(&mut ctx.clock);
                            let buf = vec![ctx.rank as f32; len];
                            let out = g.all_reduce(&mut clock, &buf).unwrap();
                            out[0]
                        })
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("all_gather_w{world}"), len),
                &len,
                |b, &len| {
                    let cluster = Cluster::frontier();
                    b.iter(|| {
                        cluster.run(world, |ctx| {
                            let mut g = ctx.world_group();
                            let mut clock = std::mem::take(&mut ctx.clock);
                            let buf = vec![ctx.rank as f32; len / world];
                            g.all_gather(&mut clock, &buf).unwrap().len()
                        })
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("reduce_scatter_w{world}"), len),
                &len,
                |b, &len| {
                    let cluster = Cluster::frontier();
                    b.iter(|| {
                        cluster.run(world, |ctx| {
                            let mut g = ctx.world_group();
                            let mut clock = std::mem::take(&mut ctx.clock);
                            let buf = vec![1.0f32; len];
                            g.reduce_scatter(&mut clock, &buf).unwrap().len()
                        })
                    })
                },
            );
        }
    }
    group.finish();
}

/// Nonblocking issue/wait: the depth-2 pipelined schedule the engines use
/// (post collective `i+1` before waiting on `i`), measured against the
/// blocking start-then-wait baseline above.
fn bench_nonblocking(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives_nonblocking");
    for &world in &[2usize, 4, 8] {
        for &len in &[1024usize, 65536] {
            group.bench_with_input(
                BenchmarkId::new(format!("all_gather_start_wait_w{world}"), len),
                &len,
                |b, &len| {
                    let cluster = Cluster::frontier();
                    b.iter(|| {
                        cluster.run(world, |ctx| {
                            let mut g = ctx.world_group();
                            let mut clock = std::mem::take(&mut ctx.clock);
                            let buf = vec![ctx.rank as f32; len / world];
                            let h = g.all_gather_start(&clock, &buf, false).unwrap();
                            h.wait(&mut clock).unwrap().len()
                        })
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("all_gather_pipelined_w{world}"), len),
                &len,
                |b, &len| {
                    let cluster = Cluster::frontier();
                    b.iter(|| {
                        cluster.run(world, |ctx| {
                            let mut g = ctx.world_group();
                            let mut clock = std::mem::take(&mut ctx.clock);
                            let buf = vec![ctx.rank as f32; len / world];
                            let mut total = 0usize;
                            let mut prev: Option<PendingCollective> = None;
                            for _ in 0..4 {
                                let h = g.all_gather_start(&clock, &buf, true).unwrap();
                                if let Some(p) = prev.take() {
                                    total += p.wait(&mut clock).unwrap().len();
                                }
                                prev = Some(h);
                            }
                            if let Some(p) = prev.take() {
                                total += p.wait(&mut clock).unwrap().len();
                            }
                            total
                        })
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("reduce_scatter_start_wait_w{world}"), len),
                &len,
                |b, &len| {
                    let cluster = Cluster::frontier();
                    b.iter(|| {
                        cluster.run(world, |ctx| {
                            let mut g = ctx.world_group();
                            let mut clock = std::mem::take(&mut ctx.clock);
                            let buf = vec![1.0f32; len];
                            let h = g.reduce_scatter_start(&clock, &buf).unwrap();
                            h.wait(&mut clock).unwrap().len()
                        })
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_collectives, bench_nonblocking
}
criterion_main!(benches);
