//! # orbit-core
//!
//! The ORBIT paper's contribution: **Hybrid Sharded Tensor-Data Orthogonal
//! Parallelism (Hybrid-STOP)** and the baseline parallelisms it is compared
//! against, implemented as executable training engines over the simulated
//! cluster in `orbit-comm`.
//!
//! The mathematical heart is paper Eqns. (1)-(3): a matrix chain
//! `y <- x A B` is exact under column-sharding `A` and row-sharding `B`:
//!
//! ```text
//! y = x A B = sum_k  (x A_{*,k}) B_{k,*}
//! dy/dx      = sum_k  B_{k,*}^T A_{*,k}^T
//! ```
//!
//! [`tp_block::TpBlock`] realizes this for the transformer block's two
//! sub-layers (attention: Wq/Wk/Wv column-sharded, Wo row-sharded; MLP: W1
//! column-sharded, W2 row-sharded), with partial activations summed by a
//! tensor-parallel all-reduce. [`engines::HybridStopEngine`] additionally
//! FSDP-shards each rank's tensor-parallel shard across nodes (gathering
//! one layer at a time — never the full model, unlike vanilla FSDP) and
//! adds an orthogonal DDP level across sub-clusters (paper Fig. 4).
//!
//! Every engine is tested for *gradient equivalence* against the
//! single-device reference model in `orbit-vit`: that is the correctness
//! claim of the paper, reproduced exactly.
//!
//! Every engine implements the object-safe [`engines::Engine`] trait and
//! delegates its shared step machinery to an [`engines::Trainer`]; generic
//! callers construct a `Box<dyn Engine>` via [`engines::build_engine`] with
//! an [`engines::EngineSpec`]. Concrete engines:
//! [`engines::SingleDeviceEngine`], [`engines::DdpEngine`],
//! [`engines::FsdpEngine`] (vanilla, full-model gather — the Fig. 2 peak
//! memory pathology), [`engines::TensorParallelEngine`] (Megatron-style,
//! head-limited), [`engines::PipelineEngine`] (GPipe-style),
//! [`engines::HybridStopEngine`].

#![forbid(unsafe_code)]

pub mod dcomm;
pub mod elastic;
pub mod engines;
pub mod lint;
pub mod resilient;
pub mod scaler;
pub mod stats;
pub mod tp_block;

pub use dcomm::{comm_err, GroupComm};
pub use elastic::{ElasticReport, ElasticTrainer, LaunchRecord};
pub use engines::{
    build_engine, spec_for_plan, DdpEngine, Engine, EngineSpec, FsdpEngine, HybridStopEngine,
    PipelineEngine, SingleDeviceEngine, TensorParallelEngine, Trainer,
};
pub use lint::{extract_comm_plan, lint_engine_spec, planner_static_check};
pub use resilient::{AttemptSpec, ResilientReport, ResilientTrainer};
pub use scaler::GradScaler;
pub use stats::StepStats;

// Re-export the shared strategy/layout/options vocabulary so users of the
// core crate do not need to depend on orbit-frontier directly.
pub use orbit_frontier::{ParallelLayout, Strategy, TrainOptions};
