//! Per-step observability shared by all engines.

use serde::{Deserialize, Serialize};

/// What one training step cost on one rank.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct StepStats {
    /// Global-batch training loss (identical on every rank after sync).
    pub loss: f32,
    /// L2 norm of the rank's owned (sharded) gradient.
    pub grad_norm: f32,
    /// Simulated walltime consumed by this step, seconds.
    pub sim_time: f64,
    /// Simulated peak device memory observed so far, bytes.
    pub peak_mem: u64,
    /// Whether the optimizer step ran (false = skipped by the grad scaler).
    pub applied: bool,
}

impl StepStats {
    /// Walltime per observation given how many observations the whole
    /// job processed this step.
    pub fn time_per_obs(&self, global_batch: usize) -> f64 {
        self.sim_time / global_batch.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_per_obs_divides() {
        let s = StepStats {
            sim_time: 1.0,
            ..StepStats::default()
        };
        assert!((s.time_per_obs(4) - 0.25).abs() < 1e-12);
        assert_eq!(StepStats::default().time_per_obs(0), 0.0);
    }
}
