//! Elastic shrink-to-survivors training.
//!
//! [`ElasticTrainer`] closes the loop that [`crate::ResilientTrainer`]
//! leaves open: instead of replaying a hand-written `AttemptSpec` list at
//! a fixed world size, every relaunch asks the auto-parallel planner for
//! the best engine layout that fits the ranks that are *still alive* —
//! the [`orbit_comm::FailureLedger`] says how many died — and restores
//! the last committed **sharded** checkpoint generation into that new
//! layout. Because shards reassemble into a layout-independent
//! [`Checkpoint`], shrinking from, say, FSDP×8 to Hybrid-STOP 2×3×1 is a
//! pure reshard of the saved values: the recovered loss trajectory is
//! bit-identical to an uninterrupted run launched at the replanned shape
//! from the same generation.
//!
//! Checkpointing is crash-consistent end to end (see
//! [`orbit_vit::sharded`]): each rank writes only its own shard every `k`
//! steps — FSDP ranks with **no gather at all** via
//! [`Engine::capture_shard`] — and rank 0 commits the generation's
//! manifest only after every shard file is visible. A rank that dies
//! mid-capture leaves an uncommitted (invisible) generation; a torn or
//! corrupt shard is caught by CRC on load, and the store falls back to
//! the previous committed generation. Storage faults injected by the
//! [`orbit_comm::FaultPlan`] (`torn_write` / `corrupt_shard`) flow
//! through [`orbit_comm::RankCtx::take_storage_fault`] into the shard
//! writer, so exactly those failure modes are exercised in tests.

use crate::engines::{build_engine, spec_for_plan, Engine, EngineSpec};
use crate::stats::StepStats;
use orbit_comm::{Cluster, RankOutcome, SimError, StorageFault};
use orbit_frontier::{Planner, Strategy, TrainOptions};
use orbit_tensor::kernels::AdamW;
use orbit_vit::{Batch, Checkpoint, ShardFault, ShardStore, VitConfig};
use std::sync::Mutex;
use std::time::Duration;

/// How long rank 0 polls for the full shard set before skipping a
/// generation's commit (a peer died mid-capture; its death surfaces as a
/// typed error at the next collective).
const COMMIT_TIMEOUT: Duration = Duration::from_secs(10);

/// One launch of the elastic loop: what the planner chose and where it
/// resumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchRecord {
    /// Engine the planner chose for this launch.
    pub spec: EngineSpec,
    /// Surviving world size the launch ran at.
    pub world: usize,
    /// First global step this launch executed.
    pub start_step: u64,
    /// Checkpoint generation restored at launch, `None` for a cold start.
    pub restored_generation: Option<u64>,
    /// The exact options the launch ran with (planner layout choices
    /// merged over the caller's precision choices) — what an
    /// uninterrupted reference run must use to reproduce the launch.
    pub opts: TrainOptions,
}

/// What an elastic run produced.
#[derive(Debug, Clone)]
pub struct ElasticReport {
    /// One loss per global step, `0..steps`, stitched across relaunches:
    /// a failed launch contributes only steps up to its last *committed*
    /// generation; the relaunch replays from there.
    pub losses: Vec<f32>,
    /// Number of relaunches (0 for an uninterrupted run).
    pub restarts: usize,
    /// Every launch in order — records the shrink-to-survivors
    /// transitions the planner chose.
    pub launches: Vec<LaunchRecord>,
    /// Full-model state after the final step.
    pub final_checkpoint: Checkpoint,
}

/// Shrink-to-survivors training with planner-chosen relaunch layouts and
/// crash-consistent sharded checkpoints.
pub struct ElasticTrainer {
    cluster: Cluster,
    store: ShardStore,
    checkpoint_every: u64,
    max_restarts: usize,
    allowed: Option<Vec<Strategy>>,
}

fn store_err(e: std::io::Error) -> SimError {
    SimError::State(format!("checkpoint store: {e}"))
}

fn to_shard_fault(f: StorageFault) -> ShardFault {
    match f {
        StorageFault::Torn => ShardFault::Torn,
        StorageFault::Corrupt => ShardFault::Corrupt,
    }
}

impl ElasticTrainer {
    /// Wrap a cluster (typically one carrying an
    /// [`orbit_comm::FaultPlan`]) and a shard store for its checkpoints.
    /// Defaults: checkpoint every 2 steps, at most 8 restarts, all
    /// strategies eligible.
    pub fn new(cluster: Cluster, store: ShardStore) -> Self {
        ElasticTrainer {
            cluster,
            store,
            checkpoint_every: 2,
            max_restarts: 8,
            allowed: None,
        }
    }

    /// Capture a sharded generation after every `k` completed steps
    /// (`k > 0`). The final step always commits a generation regardless.
    pub fn with_checkpoint_every(mut self, k: u64) -> Self {
        assert!(k > 0, "checkpoint interval must be positive");
        self.checkpoint_every = k;
        self
    }

    /// Give up (returning `Err`) after this many relaunches.
    pub fn with_max_restarts(mut self, n: usize) -> Self {
        self.max_restarts = n;
        self
    }

    /// Restrict the planner to these strategies — e.g. pin one engine
    /// family for a sweep, or the inference-capable subset for serving.
    pub fn with_allowed_strategies(mut self, allowed: &[Strategy]) -> Self {
        self.allowed = Some(allowed.to_vec());
        self
    }

    /// The shard store this trainer commits generations into.
    pub fn store(&self) -> &ShardStore {
        &self.store
    }

    /// The cluster this trainer launches on (e.g. to inspect the
    /// [`orbit_comm::FailureLedger`] after a run).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Plan the next launch for the current survivor count. Public so
    /// tests (and `orbit-serve`) can ask "what would the trainer do now"
    /// and launch an uninterrupted reference run at the same shape.
    pub fn plan_launch(
        &self,
        cfg: &VitConfig,
        initial_world: usize,
        global_batch: usize,
    ) -> Result<(EngineSpec, usize, TrainOptions), SimError> {
        let survivors = self.cluster.survivors(initial_world);
        if survivors == 0 {
            return Err(SimError::State("no surviving ranks to relaunch on".into()));
        }
        let planner = Planner::new(self.cluster.machine().clone());
        let plan = planner
            .plan_for_survivors(
                &cfg.dims,
                survivors,
                global_batch,
                Some(self.cluster.mem_budget()),
                self.allowed.as_deref(),
            )
            .map_err(|e| SimError::State(format!("elastic replan failed: {e}")))?;
        // The planner may shrink below the survivor count when the batch
        // cannot split over an awkward world size; spare survivors idle.
        Ok((spec_for_plan(&plan.chosen), plan.gpus, plan.chosen.opts))
    }

    /// Train for `steps` optimizer steps, shrinking to the survivors on
    /// every failure. `batch_fn` maps a global step index to its batch
    /// and must be deterministic — a replayed step must see the data of
    /// the original attempt. The caller's `opts` contribute the precision
    /// choice; the planner contributes `layer_wrapping`/`prefetch` per
    /// launch (they are layout decisions, not training semantics).
    #[allow(clippy::too_many_arguments)]
    pub fn train<F>(
        &self,
        initial_world: usize,
        cfg: VitConfig,
        opt: AdamW,
        opts: TrainOptions,
        seed: u64,
        steps: u64,
        batch_fn: F,
    ) -> Result<ElasticReport, SimError>
    where
        F: Fn(u64) -> Batch + Sync,
    {
        assert!(initial_world > 0, "need at least one rank");
        assert!(steps > 0, "need at least one step");
        let global_batch = batch_fn(0).len();
        let mut losses: Vec<f32> = Vec::new();
        let mut restarts = 0usize;
        let mut launches: Vec<LaunchRecord> = Vec::new();

        loop {
            let (spec, world, plan_opts) = self.plan_launch(&cfg, initial_world, global_batch)?;
            let run_opts = TrainOptions {
                mixed_precision: opts.mixed_precision,
                activation_checkpointing: opts.activation_checkpointing,
                ..plan_opts
            };
            // Restore state is loaded ONCE, host-side, before the launch:
            // this is also what exercises generation fallback after a torn
            // or corrupt shard write.
            let resume = self.store.load_latest().map_err(store_err)?;
            let start = resume.as_ref().map(|l| l.step).unwrap_or(0);
            launches.push(LaunchRecord {
                spec,
                world,
                start_step: start,
                restored_generation: resume.as_ref().map(|l| l.generation),
                opts: run_opts,
            });
            debug_assert_eq!(start as usize, losses.len());

            // Rank 0 streams (step, loss) pairs out of the launch; the
            // values are identical on every rank, so one writer suffices
            // and survives any *other* rank's death.
            let stream: Mutex<Vec<(u64, f32)>> = Mutex::new(Vec::new());
            let ck_every = self.checkpoint_every;
            let store = &self.store;
            let resume_ref = &resume;

            let outcomes: Vec<RankOutcome<Option<Checkpoint>>> =
                self.cluster.try_run(world, |ctx| {
                    let mut engine: Box<dyn Engine> =
                        build_engine(ctx, spec, cfg, opt, run_opts, seed)?;
                    if let Some(loaded) = resume_ref.as_ref() {
                        engine.restore_checkpoint(ctx, &loaded.checkpoint)?;
                    }
                    for step in start..steps {
                        ctx.begin_step(step)?;
                        let batch = batch_fn(step);
                        let stats: StepStats = engine.train_step(ctx, &batch)?;
                        if ctx.rank == 0 {
                            stream.lock().unwrap().push((step, stats.loss));
                        }
                        let done = step + 1;
                        if done % ck_every == 0 || done == steps {
                            // Generation number == global step: strictly
                            // increasing across relaunches, so fallback
                            // order is resume order.
                            let fault = ctx.take_storage_fault().map(to_shard_fault);
                            let shard = engine.capture_shard(ctx, ctx.rank, ctx.world)?;
                            store.write_shard(done, &shard, fault).map_err(store_err)?;
                            if ctx.rank == 0 {
                                // Ok(false) = a peer never wrote its shard
                                // (died mid-capture): skip the commit; the
                                // death surfaces at the next collective.
                                store
                                    .commit(done, done, ctx.world, COMMIT_TIMEOUT)
                                    .map_err(store_err)?;
                            }
                        }
                    }
                    let final_ck = engine.capture_checkpoint(ctx)?;
                    Ok((ctx.rank == 0).then_some(final_ck))
                });

            let stream = stream.into_inner().unwrap();

            if outcomes.iter().all(|o| o.is_ok()) {
                for (step, loss) in stream {
                    debug_assert_eq!(step as usize, losses.len());
                    losses.push(loss);
                }
                let final_checkpoint = outcomes
                    .into_iter()
                    .next()
                    .and_then(|o| o.ok())
                    .flatten()
                    .expect("rank 0 returns the final checkpoint");
                return Ok(ElasticReport {
                    losses,
                    restarts,
                    launches,
                    final_checkpoint,
                });
            }

            restarts += 1;
            if restarts > self.max_restarts {
                let cause = outcomes
                    .iter()
                    .find_map(|o| o.failure())
                    .map(|c| c.to_string())
                    .unwrap_or_else(|| "unknown".into());
                return Err(SimError::State(format!(
                    "gave up after {} restarts (last failure: {cause})",
                    self.max_restarts
                )));
            }
            // Keep only losses the relaunch will not replay: those below
            // the newest generation that will actually load (fallback
            // included — a torn gen g means the relaunch resumes at g-k).
            let committed = self
                .store
                .load_latest()
                .map_err(store_err)?
                .map(|l| l.step)
                .unwrap_or(0);
            for (step, loss) in stream {
                if step >= start && step < committed {
                    debug_assert_eq!(step as usize, losses.len());
                    losses.push(loss);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbit_comm::FaultPlan;
    use orbit_tensor::init::Rng;
    use std::fs;

    fn make_batch(cfg: &VitConfig, n: usize, seed: u64) -> Batch {
        let mut rng = Rng::seed(seed);
        Batch {
            inputs: (0..n)
                .map(|_| {
                    (0..cfg.dims.channels)
                        .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                        .collect()
                })
                .collect(),
            targets: (0..n)
                .map(|_| {
                    (0..cfg.dims.out_channels)
                        .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                        .collect()
                })
                .collect(),
        }
    }

    fn temp_store(tag: &str) -> ShardStore {
        let dir = std::env::temp_dir().join(format!("orbit_elastic_{tag}_{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        ShardStore::new(dir).unwrap()
    }

    #[test]
    fn uninterrupted_elastic_run_reports_all_steps() {
        let cfg = VitConfig::test_tiny();
        let store = temp_store("clean");
        let dir = store.dir().to_path_buf();
        let trainer = ElasticTrainer::new(Cluster::frontier(), store);
        let report = trainer
            .train(
                1,
                cfg,
                AdamW::default(),
                TrainOptions::none(),
                42,
                3,
                |step| make_batch(&cfg, 2, 100 + step),
            )
            .unwrap();
        assert_eq!(report.losses.len(), 3);
        assert_eq!(report.restarts, 0);
        assert_eq!(report.launches.len(), 1);
        assert_eq!(report.launches[0].spec, EngineSpec::Single);
        assert_eq!(report.launches[0].restored_generation, None);
        assert!(report.losses.iter().all(|l| l.is_finite() && *l > 0.0));
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn killed_rank_shrinks_world_via_planner() {
        let cfg = VitConfig::test_tiny();
        let store = temp_store("shrink");
        let dir = store.dir().to_path_buf();
        let cluster = Cluster::frontier().with_fault_plan(FaultPlan::new().kill(1, 2));
        let trainer = ElasticTrainer::new(cluster, store).with_checkpoint_every(1);
        let report = trainer
            .train(
                2,
                cfg,
                AdamW::default(),
                TrainOptions::none(),
                42,
                5,
                |step| make_batch(&cfg, 2, 100 + step),
            )
            .unwrap();
        assert_eq!(report.restarts, 1);
        assert_eq!(report.losses.len(), 5);
        assert_eq!(report.launches.len(), 2);
        assert_eq!(report.launches[0].world, 2);
        // One rank died: the planner must relaunch on the single survivor.
        assert_eq!(report.launches[1].world, 1);
        assert_eq!(report.launches[1].spec, EngineSpec::Single);
        // Steps 0 and 1 committed generations before the kill at step 2.
        assert_eq!(report.launches[1].restored_generation, Some(2));
        assert_eq!(report.launches[1].start_step, 2);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn torn_write_resumes_from_previous_generation() {
        let cfg = VitConfig::test_tiny();
        let store = temp_store("torn");
        let dir = store.dir().to_path_buf();
        // The torn write arms at step 3, so the newest generation before
        // the kill (gen 4, committed after step 3) carries a truncated
        // rank-0 shard. The relaunch must fall back to generation 3 and
        // replay step 3 — never loading the torn generation.
        let plan = FaultPlan::new().torn_write(0, 3).kill(1, 4);
        let cluster = Cluster::frontier().with_fault_plan(plan);
        let trainer = ElasticTrainer::new(cluster, store).with_checkpoint_every(1);
        let report = trainer
            .train(
                2,
                cfg,
                AdamW::default(),
                TrainOptions::none(),
                42,
                6,
                |step| make_batch(&cfg, 2, 100 + step),
            )
            .unwrap();
        assert_eq!(report.restarts, 1);
        assert_eq!(report.losses.len(), 6);
        assert_eq!(report.launches[1].restored_generation, Some(3));
        assert_eq!(report.launches[1].start_step, 3);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn strategy_pin_restricts_relaunch_family() {
        let cfg = VitConfig::test_tiny();
        let store = temp_store("pin");
        let dir = store.dir().to_path_buf();
        let cluster = Cluster::frontier().with_fault_plan(FaultPlan::new().kill(3, 2));
        let trainer = ElasticTrainer::new(cluster, store)
            .with_checkpoint_every(1)
            .with_allowed_strategies(&[Strategy::Fsdp]);
        let report = trainer
            .train(
                4,
                cfg,
                AdamW::default(),
                TrainOptions::none(),
                42,
                4,
                |step| make_batch(&cfg, 12, 100 + step),
            )
            .unwrap();
        assert_eq!(report.restarts, 1);
        assert_eq!(report.launches[0].spec, EngineSpec::Fsdp);
        assert_eq!(report.launches[1].spec, EngineSpec::Fsdp);
        assert_eq!(report.launches[1].world, 3);
        assert_eq!(report.losses.len(), 4);
        fs::remove_dir_all(dir).ok();
    }
}
