//! Dynamic gradient scaling for BF16 mixed precision (paper Sec. III-B).
//!
//! Gradients too small for bfloat16 flush to zero and gradients too large
//! overflow to infinity. The scaler multiplies the loss gradient by a large
//! factor before the backward pass, un-scales before the optimizer step,
//! and adapts: halve on non-finite gradients (and skip the step), double
//! after a run of clean steps — mirroring `torch.cuda.amp.GradScaler`.

use serde::{Deserialize, Serialize};

/// Default backoff floor for the dynamic scale: 2^-14.
pub const MIN_SCALE: f32 = 6.103_515_6e-5;

/// Dynamic loss/gradient scaler.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GradScaler {
    scale: f32,
    growth_factor: f32,
    backoff_factor: f32,
    growth_interval: u32,
    clean_steps: u32,
    /// Backoff floor: the scale never drops below this, so a burst of
    /// non-finite steps (e.g. after a fault-recovery restart) cannot
    /// drive it to zero. 2^-14 is the smallest bf16/fp16 normal exponent
    /// neighborhood worth scaling into.
    min_scale: f32,
    /// Total steps skipped due to non-finite gradients.
    pub skipped_steps: u64,
}

impl Default for GradScaler {
    fn default() -> Self {
        GradScaler {
            scale: 65536.0,
            growth_factor: 2.0,
            backoff_factor: 0.5,
            growth_interval: 200,
            clean_steps: 0,
            min_scale: MIN_SCALE,
            skipped_steps: 0,
        }
    }
}

impl GradScaler {
    /// Scaler with an explicit initial scale.
    pub fn with_scale(scale: f32) -> Self {
        GradScaler {
            scale,
            ..GradScaler::default()
        }
    }

    /// Current scale factor to apply to the loss gradient.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The backoff floor.
    pub fn min_scale(&self) -> f32 {
        self.min_scale
    }

    /// Un-scale gradients in place and decide whether the optimizer step
    /// should run. Returns `true` if gradients are finite (step proceeds);
    /// on `false` the step must be skipped and the scale has been backed
    /// off.
    pub fn unscale_and_check(&mut self, grads: &mut [f32]) -> bool {
        let inv = 1.0 / self.scale;
        let mut finite = true;
        for g in grads.iter_mut() {
            *g *= inv;
            if !g.is_finite() {
                finite = false;
            }
        }
        self.update(finite);
        finite
    }

    /// Clean steps accumulated toward the next scale growth.
    pub fn clean_steps(&self) -> u32 {
        self.clean_steps
    }

    /// Restore the dynamic state captured in a checkpoint, so a restarted
    /// run resumes the exact scale schedule (growth countdown included).
    pub fn restore_state(&mut self, scale: f32, clean_steps: u32, skipped_steps: u64) {
        self.scale = scale.max(self.min_scale);
        self.clean_steps = clean_steps;
        self.skipped_steps = skipped_steps;
    }

    /// Record the outcome of a step whose finiteness was established
    /// externally (e.g. via a collective across ranks). Adjusts the scale.
    pub fn update(&mut self, finite: bool) {
        if finite {
            self.clean_steps += 1;
            if self.clean_steps >= self.growth_interval {
                self.scale *= self.growth_factor;
                self.clean_steps = 0;
            }
        } else {
            self.scale = (self.scale * self.backoff_factor).max(self.min_scale);
            self.clean_steps = 0;
            self.skipped_steps += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_steps_grow_scale() {
        let mut s = GradScaler {
            growth_interval: 3,
            ..GradScaler::with_scale(8.0)
        };
        let g = vec![8.0f32, 16.0];
        for _ in 0..3 {
            assert!(s.unscale_and_check(&mut g.clone()));
        }
        assert_eq!(s.scale(), 16.0, "doubled after 3 clean steps");
        assert_eq!(s.skipped_steps, 0);
    }

    #[test]
    fn non_finite_backs_off_and_skips() {
        let mut s = GradScaler::with_scale(1024.0);
        let mut g = vec![1.0f32, f32::INFINITY];
        assert!(!s.unscale_and_check(&mut g));
        assert_eq!(s.scale(), 512.0);
        assert_eq!(s.skipped_steps, 1);
        // NaN also triggers.
        let mut g2 = vec![f32::NAN];
        assert!(!s.unscale_and_check(&mut g2));
        assert_eq!(s.scale(), 256.0);
    }

    #[test]
    fn unscale_divides_by_scale() {
        let mut s = GradScaler::with_scale(4.0);
        let mut g = vec![8.0f32, -2.0];
        assert!(s.unscale_and_check(&mut g));
        assert_eq!(g, vec![2.0, -0.5]);
    }

    #[test]
    fn scale_clamps_at_min_scale() {
        let mut s = GradScaler::with_scale(1.0);
        // A long burst of non-finite steps stops at the floor instead of
        // underflowing to zero.
        for _ in 0..200 {
            s.update(false);
        }
        assert_eq!(s.scale(), MIN_SCALE);
        assert!(s.scale() > 0.0);
    }

    #[test]
    fn scale_recovers_after_clamped_burst() {
        let mut s = GradScaler {
            growth_interval: 2,
            ..GradScaler::with_scale(1.0)
        };
        for _ in 0..100 {
            s.update(false);
        }
        assert_eq!(s.scale(), MIN_SCALE);
        // Clean steps double the scale back up from the floor.
        for _ in 0..2 {
            s.update(true);
        }
        assert_eq!(s.scale(), MIN_SCALE * 2.0);
        for _ in 0..60 {
            s.update(true);
        }
        assert!(s.scale() >= 1.0, "scale climbs back into normal range");
    }

    #[test]
    fn growth_counter_resets_on_backoff() {
        let mut s = GradScaler {
            growth_interval: 2,
            ..GradScaler::with_scale(8.0)
        };
        s.update(true);
        s.update(false); // resets clean streak, scale 4
        s.update(true);
        assert_eq!(
            s.scale(),
            4.0,
            "one clean step after backoff is not enough to grow"
        );
        s.update(true);
        assert_eq!(s.scale(), 8.0, "second clean step grows");
    }
}
