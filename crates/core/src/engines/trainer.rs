//! The shared training scaffold every engine delegates to.
//!
//! A [`Trainer`] owns the pieces that are identical across parallelism
//! strategies — the optimizer configuration, the [`GradScaler`], the
//! latitude loss weights, the performance [`Calibration`], and the data
//! replica coordinates — and provides the common step machinery: batch
//! partitioning, the per-sample forward/backward loop, mixed-precision
//! loss scaling and the cross-rank finiteness vote, gradient clipping,
//! simulated compute charging, and [`StepStats`] assembly. Engine files
//! keep only their distinct shard layout and collective choreography.

use crate::scaler::GradScaler;
use crate::stats::StepStats;
use orbit_comm::{Allocation, CommError, OomError, ProcessGroup, RankCtx, SimClock};
use orbit_frontier::perfmodel::Calibration;
use orbit_frontier::{FrontierMachine, ModelDims, TrainOptions};
use orbit_tensor::kernels::AdamW;
use orbit_tensor::{Precision, Tensor};
use orbit_vit::loss::{lat_weights, weighted_mse, weighted_mse_grad};
use orbit_vit::{Batch, ScalerState, VitConfig, VitModel};

use super::{local_batch, sustained_flops};

/// Switch the model config to BF16 compute when mixed precision is
/// requested. Every engine applies this before `VitModel::init`.
pub(crate) fn configure_precision(cfg: &mut VitConfig, opts: &TrainOptions) {
    if opts.mixed_precision {
        cfg.precision = Precision::BF16Mixed;
    }
}

/// L2 norm of a flat gradient vector (f64 accumulation).
pub(crate) fn norm(v: &[f32]) -> f32 {
    v.iter()
        .map(|&x| (x as f64) * (x as f64))
        .sum::<f64>()
        .sqrt() as f32
}

/// Shared per-rank training scaffold (see module docs).
pub struct Trainer {
    /// Optimizer configuration, shared by every engine's update rule.
    pub opt: AdamW,
    /// The Table I feature switches.
    pub opts: TrainOptions,
    /// Dynamic loss scaler (active only under `opts.mixed_precision`).
    pub scaler: GradScaler,
    /// Latitude loss weights for the model's grid.
    pub(crate) lat_w: Vec<f32>,
    calib: Calibration,
    /// Optional global-norm gradient clip threshold (off by default, so
    /// engines remain bit-equivalent to the unclipped reference).
    clip_norm: Option<f32>,
    replica_id: usize,
    n_replicas: usize,
    /// Committed checkpoint generation the current weights came from
    /// (== the global step at commit); 0 for fresh initialization.
    generation: u64,
}

impl Trainer {
    /// Scaffold for an engine that sees the whole batch (one data replica).
    pub fn new(cfg: &VitConfig, opt: AdamW, opts: TrainOptions) -> Self {
        Self::with_replicas(cfg, opt, opts, 0, 1)
    }

    /// Scaffold for data replica `replica_id` of `n_replicas`.
    pub fn with_replicas(
        cfg: &VitConfig,
        opt: AdamW,
        opts: TrainOptions,
        replica_id: usize,
        n_replicas: usize,
    ) -> Self {
        assert!(replica_id < n_replicas);
        Trainer {
            opt,
            opts,
            scaler: GradScaler::default(),
            lat_w: lat_weights(cfg.dims.img_h),
            calib: Calibration::default(),
            clip_norm: None,
            replica_id,
            n_replicas,
            generation: 0,
        }
    }

    /// Replace the default performance calibration (e.g. to sweep MFU
    /// assumptions without recompiling).
    pub fn with_calibration(mut self, calib: Calibration) -> Self {
        self.calib = calib;
        self
    }

    /// Enable global-norm gradient clipping at `max_norm`.
    pub fn with_clip_norm(mut self, max_norm: f32) -> Self {
        assert!(max_norm > 0.0);
        self.clip_norm = Some(max_norm);
        self
    }

    /// This replica's slice of the global batch. Lockstep engines need
    /// every replica to run the same number of microbatches, so an even
    /// split is asserted here (unlike the raw [`local_batch`], which
    /// supports uneven remainders).
    pub fn partition(&self, global: &Batch) -> Batch {
        assert!(!global.is_empty());
        assert_eq!(
            global.len() % self.n_replicas,
            0,
            "global batch {} must divide by {} replicas",
            global.len(),
            self.n_replicas
        );
        local_batch(global, self.replica_id, self.n_replicas)
    }

    /// Loss-gradient multiplier: the scaler's factor under mixed precision,
    /// otherwise 1.
    pub fn loss_scale(&self) -> f32 {
        if self.opts.mixed_precision {
            self.scaler.scale()
        } else {
            1.0
        }
    }

    /// wMSE gradient w.r.t. predictions, scaled by `scale * loss_scale` —
    /// the backward entry point shared by every engine.
    pub(crate) fn loss_grad(
        &self,
        preds: &[Tensor],
        targets: &[Tensor],
        scale: f32,
    ) -> Vec<Tensor> {
        let mut d = weighted_mse_grad(preds, targets, &self.lat_w);
        let s = scale * self.loss_scale();
        for g in &mut d {
            g.scale(s);
        }
        d
    }

    /// Charge the standard (dense, un-sharded model) activation memory for
    /// `n_samples` in-flight samples.
    pub(crate) fn alloc_activations(
        &self,
        ctx: &RankCtx,
        dims: &ModelDims,
        n_samples: usize,
    ) -> Result<Allocation, OomError> {
        let act_floats = if self.opts.activation_checkpointing {
            dims.tokens() * dims.embed * (dims.layers + 2)
        } else {
            dims.tokens() * dims.embed * (8 * dims.layers + dims.channels)
        };
        ctx.device.alloc((n_samples * act_floats) as u64 * 4)
    }

    /// Forward + backward over `local`, accumulating per-sample gradients
    /// into the model, each scaled by `1 / global_n` (and the loss scale
    /// under mixed precision). Returns this replica's loss contribution,
    /// already scaled by `1 / global_n`.
    pub(crate) fn microbatch_pass(
        &self,
        model: &mut VitModel,
        local: &Batch,
        global_n: usize,
    ) -> f32 {
        model.zero_grads();
        let scale = 1.0 / global_n as f32;
        let mut loss = 0.0f32;
        for (images, targets) in local.inputs.iter().zip(&local.targets) {
            if self.opts.activation_checkpointing {
                let (preds, boundaries) = model.forward_ckpt(images);
                loss += weighted_mse(&preds, targets, &self.lat_w) * scale;
                let d = self.loss_grad(&preds, targets, scale);
                model.backward_ckpt(images, &boundaries, &d);
            } else {
                let fwd = model.forward(images);
                loss += weighted_mse(&fwd.preds, targets, &self.lat_w) * scale;
                let d = self.loss_grad(&fwd.preds, targets, scale);
                model.backward(&fwd, &d);
            }
        }
        loss
    }

    /// Extra FLOPs multiplier when activation checkpointing recomputes the
    /// forward pass during backward.
    pub(crate) fn recompute_factor(&self) -> f64 {
        if self.opts.activation_checkpointing {
            4.0 / 3.0
        } else {
            1.0
        }
    }

    /// Training FLOPs per observation for an engine executing the whole
    /// model (fwd + bwd, plus checkpoint recompute).
    pub(crate) fn dense_flops_per_obs(&self, dims: &ModelDims) -> f64 {
        dims.train_flops() as f64 * self.recompute_factor()
    }

    /// Sustained per-GPU throughput under the trainer's calibration.
    pub fn sustained(&self, machine: &FrontierMachine) -> f64 {
        sustained_flops(machine, &self.calib, self.opts.mixed_precision)
    }

    /// Charge simulated compute time for `n_obs` observations.
    pub(crate) fn charge_compute(&self, ctx: &mut RankCtx, n_obs: usize, flops_per_obs: f64) {
        let sustained = self.sustained(ctx.machine());
        ctx.clock
            .charge_compute(n_obs as f64 * flops_per_obs, sustained);
    }

    /// Bytes per parameter moved by gathers / transient buffers (bf16 on
    /// the wire under mixed precision).
    pub(crate) fn param_bytes(&self) -> u64 {
        if self.opts.mixed_precision {
            2
        } else {
            4
        }
    }

    /// Mixed-precision epilogue for engines whose (all-reduced or local)
    /// gradients are identical on every participating rank: un-scale in
    /// place, decide finiteness locally, and update the scaler. Returns
    /// whether the optimizer step should run. No-op (`true`) outside mixed
    /// precision.
    pub(crate) fn unscale_local(&mut self, grads: &mut [f32]) -> bool {
        if !self.opts.mixed_precision {
            return true;
        }
        self.scaler.unscale_and_check(grads)
    }

    /// Mixed-precision epilogue for sharded gradients: un-scale every shard
    /// in place, agree on finiteness across `group` (any rank voting
    /// non-finite skips the step everywhere), and update the scaler.
    /// No-op (`true`) outside mixed precision — no collective is issued.
    pub(crate) fn unscale_synced(
        &mut self,
        clock: &mut SimClock,
        group: &mut ProcessGroup,
        shards: &mut [&mut [f32]],
    ) -> Result<bool, CommError> {
        if !self.opts.mixed_precision {
            return Ok(true);
        }
        let inv = 1.0 / self.scaler.scale();
        let mut nonfinite = 0.0f32;
        for shard in shards.iter_mut() {
            for g in shard.iter_mut() {
                *g *= inv;
                if !g.is_finite() {
                    nonfinite = 1.0;
                }
            }
        }
        let total = group.all_reduce_scalar(clock, nonfinite)?;
        let applied = total == 0.0;
        self.scaler.update(applied);
        Ok(applied)
    }

    /// Dynamic scaler state to attach to a checkpoint: `Some` only under
    /// mixed precision (other runs have no scale schedule to resume).
    pub(crate) fn scaler_state(&self) -> Option<ScalerState> {
        self.opts.mixed_precision.then(|| ScalerState {
            scale: self.scaler.scale(),
            clean_steps: self.scaler.clean_steps(),
            skipped_steps: self.scaler.skipped_steps,
        })
    }

    /// Resume the scale schedule recorded in a checkpoint, if any.
    pub(crate) fn restore_scaler(&mut self, state: Option<ScalerState>) {
        if let Some(s) = state {
            self.scaler
                .restore_state(s.scale, s.clean_steps, s.skipped_steps);
        }
    }

    /// Record the generation of the checkpoint the engine just restored
    /// (its `adam_step`, which the sharded store commits as the
    /// checkpoint generation). [`Engine::generation`] reports it so the
    /// serving layer can tag predictions for cache invalidation.
    ///
    /// [`Engine::generation`]: super::Engine::generation
    pub(crate) fn restore_generation(&mut self, generation: u64) {
        self.generation = generation;
    }

    /// The committed generation of the current weights (0 = fresh init).
    pub(crate) fn generation(&self) -> u64 {
        self.generation
    }

    /// Rescale factor that caps `grad_norm` at the configured clip
    /// threshold, if clipping is enabled and exceeded.
    pub(crate) fn clip_scale(&self, grad_norm: f32) -> Option<f32> {
        match self.clip_norm {
            Some(max) if grad_norm > max => Some(max / grad_norm),
            _ => None,
        }
    }

    /// Gradient norm with optional in-place clipping. Returns the pre-clip
    /// norm (what `StepStats::grad_norm` reports).
    pub(crate) fn clip_and_norm(&self, grads: &mut [f32]) -> f32 {
        let n = norm(grads);
        if let Some(s) = self.clip_scale(n) {
            for g in grads.iter_mut() {
                *g *= s;
            }
        }
        n
    }

    /// Assemble the step statistics every engine returns.
    pub(crate) fn finish_step(
        &self,
        ctx: &RankCtx,
        t0: f64,
        loss: f32,
        grad_norm: f32,
        applied: bool,
    ) -> StepStats {
        StepStats {
            loss,
            grad_norm,
            sim_time: ctx.clock.now() - t0,
            peak_mem: ctx.device.peak(),
            applied,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trainer(opts: TrainOptions) -> Trainer {
        Trainer::new(&VitConfig::test_tiny(), AdamW::default(), opts)
    }

    #[test]
    fn loss_scale_is_identity_without_mixed_precision() {
        assert_eq!(trainer(TrainOptions::none()).loss_scale(), 1.0);
        let t = trainer(TrainOptions {
            mixed_precision: true,
            ..TrainOptions::none()
        });
        assert_eq!(t.loss_scale(), t.scaler.scale());
    }

    #[test]
    fn clip_rescales_to_threshold() {
        let t = trainer(TrainOptions::none()).with_clip_norm(1.0);
        let mut g = vec![3.0f32, 4.0]; // norm 5
        let pre = t.clip_and_norm(&mut g);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((norm(&g) - 1.0).abs() < 1e-6, "clipped to unit norm");
        // Below the threshold nothing changes.
        let mut small = vec![0.3f32, 0.4];
        t.clip_and_norm(&mut small);
        assert_eq!(small, vec![0.3, 0.4]);
    }

    #[test]
    fn unclipped_norm_leaves_gradients_alone() {
        let t = trainer(TrainOptions::none());
        let mut g = vec![3.0f32, 4.0];
        assert!((t.clip_and_norm(&mut g) - 5.0).abs() < 1e-6);
        assert_eq!(g, vec![3.0, 4.0]);
    }

    #[test]
    fn unscale_local_without_mixed_is_a_no_op() {
        let mut t = trainer(TrainOptions::none());
        let mut g = vec![f32::INFINITY];
        assert!(t.unscale_local(&mut g), "non-mixed never skips");
        assert!(g[0].is_infinite(), "gradients untouched");
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn partition_rejects_uneven_batches() {
        let t = Trainer::with_replicas(
            &VitConfig::test_tiny(),
            AdamW::default(),
            TrainOptions::none(),
            0,
            2,
        );
        let g = Batch {
            inputs: vec![vec![Tensor::zeros(2, 2)]; 3],
            targets: vec![vec![Tensor::zeros(2, 2)]; 3],
        };
        let _ = t.partition(&g);
    }
}
