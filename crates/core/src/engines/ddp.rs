//! Distributed Data Parallelism: replicated model, partitioned data,
//! gradient all-reduce (paper Sec. III-B, "Hierarchical Parallelism" —
//! the outermost, least-communication level).

use crate::dcomm::{comm_err, GroupComm};
use crate::stats::StepStats;
use orbit_comm::{Allocation, ProcessGroup, RankCtx, SimError};
use orbit_frontier::TrainOptions;
use orbit_tensor::dtensor::{DTensor, DeviceMesh, Layout};
use orbit_tensor::kernels::{AdamState, AdamW};
use orbit_tensor::Tensor;
use orbit_vit::{Batch, Checkpoint, VitConfig, VitModel};

use super::trainer::{configure_precision, Trainer};
use super::Engine;

/// DDP over an explicit process group (usually the world).
pub struct DdpEngine {
    pub model: VitModel,
    group: ProcessGroup,
    /// One-axis `dp` mesh: parameters are `Replicate`, per-step gradients
    /// are born `Partial` and resolved by reshard.
    mesh: DeviceMesh,
    state: AdamState,
    trainer: Trainer,
    _persistent: Allocation,
}

impl DdpEngine {
    /// Build a replica on the calling rank. Every rank must use the same
    /// `seed` so replicas start identical.
    pub fn new(
        ctx: &RankCtx,
        mut cfg: VitConfig,
        opt: AdamW,
        opts: TrainOptions,
        seed: u64,
    ) -> Result<Self, orbit_comm::OomError> {
        configure_precision(&mut cfg, &opts);
        let mut model = VitModel::init(cfg, seed);
        let n = model.param_count() as u64;
        // Full replica: weights + grads + Adam moments on every GPU.
        let persistent = ctx.device.alloc(16 * n)?;
        let state = model.init_adam_state();
        let mut group = ctx.world_group();
        if opts.mixed_precision {
            group.set_wire_bytes(2.0);
        }
        Ok(DdpEngine {
            group,
            mesh: DeviceMesh::one("dp", ctx.world, ctx.rank),
            trainer: Trainer::with_replicas(&cfg, opt, opts, ctx.rank, ctx.world),
            model,
            state,
            _persistent: persistent,
        })
    }
}

impl Engine for DdpEngine {
    /// One training step over the *global* batch: each replica trains on
    /// its round-robin slice, then gradients are all-reduced — exactly one
    /// gradient all-reduce per step. Returns globally-synchronized stats.
    fn train_step(&mut self, ctx: &mut RankCtx, global: &Batch) -> Result<StepStats, SimError> {
        let local = self.trainer.partition(global);
        let dims = self.model.cfg.dims;
        let _act = self.trainer.alloc_activations(ctx, &dims, local.len())?;

        let t0 = ctx.clock.now();
        let local_loss = self
            .trainer
            .microbatch_pass(&mut self.model, &local, global.len());
        self.trainer
            .charge_compute(ctx, local.len(), self.trainer.dense_flops_per_obs(&dims));

        // Gradient synchronization: per-sample grads are already scaled by
        // 1/global_batch, so resolving the `Partial` layout (a sum) yields
        // the global-mean gradient on every rank.
        let grads = self.model.flatten_grads();
        let n = grads.len();
        let partial = DTensor::partial(Tensor::from_vec(1, n, grads), self.mesh.clone(), "dp")
            .expect("dp axis");
        let mut synced = {
            let mut comm = GroupComm::new(&mut self.group, &mut ctx.clock);
            partial
                .reshard("dp", Layout::Replicate, &mut comm)
                .map_err(comm_err)?
                .into_local()
                .into_vec()
        };

        // Finiteness must be agreed globally; the all-reduced gradient is
        // identical on every rank, so local inspection agrees.
        let applied = self.trainer.unscale_local(&mut synced);
        let grad_norm = self.trainer.clip_and_norm(&mut synced);
        if applied {
            self.model.load_flat_grads(&synced);
            self.model.adam_step(&self.trainer.opt, &mut self.state);
        }
        let loss = self.group.all_reduce_scalar(&mut ctx.clock, local_loss)?;
        Ok(self.trainer.finish_step(ctx, t0, loss, grad_norm, applied))
    }

    /// Inference-only forward on the *local* replica: parameters are
    /// replicated, so serving needs no collectives and each DDP rank can
    /// answer requests independently (the serving layer exploits exactly
    /// this for retry-on-surviving-replica).
    fn predict(
        &mut self,
        ctx: &mut RankCtx,
        inputs: &[Vec<orbit_tensor::Tensor>],
    ) -> Result<Vec<Vec<orbit_tensor::Tensor>>, SimError> {
        let dims = self.model.cfg.dims;
        let preds = self.model.predict_batch(inputs);
        self.trainer
            .charge_compute(ctx, inputs.len(), dims.forward_flops() as f64);
        Ok(preds)
    }

    /// Replicas are identical, so the checkpoint is captured locally — but
    /// a barrier keeps the call collective (every rank reaches the same
    /// step before any of them persists state).
    fn capture_checkpoint(&mut self, ctx: &mut RankCtx) -> Result<Checkpoint, SimError> {
        self.group.barrier(&mut ctx.clock)?;
        Ok(Checkpoint::capture(&mut self.model, &self.state)
            .with_scaler(self.trainer.scaler_state()))
    }

    fn restore_checkpoint(&mut self, ctx: &mut RankCtx, ck: &Checkpoint) -> Result<(), SimError> {
        self.group.barrier(&mut ctx.clock)?;
        ck.restore(&mut self.model, &mut self.state)
            .map_err(|e| SimError::State(e.to_string()))?;
        self.trainer.restore_scaler(ck.scaler);
        self.trainer.restore_generation(ck.adam_step);
        Ok(())
    }

    fn generation(&self) -> u64 {
        self.trainer.generation()
    }

    fn name(&self) -> &str {
        "ddp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbit_comm::Cluster;
    use orbit_tensor::init::Rng;
    use orbit_vit::loss::lat_weights;

    fn make_batch(cfg: &VitConfig, n: usize, seed: u64) -> Batch {
        let mut rng = Rng::seed(seed);
        Batch {
            inputs: (0..n)
                .map(|_| {
                    (0..cfg.dims.channels)
                        .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                        .collect()
                })
                .collect(),
            targets: (0..n)
                .map(|_| {
                    (0..cfg.dims.out_channels)
                        .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                        .collect()
                })
                .collect(),
        }
    }

    #[test]
    fn ddp_matches_single_device_losses() {
        let cfg = VitConfig::test_tiny();
        let batch = make_batch(&cfg, 4, 7);
        let opt = AdamW::default();
        let w = lat_weights(cfg.dims.img_h);

        let mut reference = VitModel::init(cfg, 42);
        let mut state = reference.init_adam_state();
        let ref_losses: Vec<f32> = (0..3)
            .map(|_| reference.train_step(&batch, &w, &opt, &mut state))
            .collect();

        for world in [1usize, 2, 4] {
            let results = Cluster::frontier().run(world, |ctx| {
                let mut e = DdpEngine::new(ctx, cfg, opt, TrainOptions::none(), 42).unwrap();
                (0..3)
                    .map(|_| e.train_step(ctx, &batch).unwrap().loss)
                    .collect::<Vec<_>>()
            });
            for losses in &results {
                for (a, b) in losses.iter().zip(&ref_losses) {
                    assert!(
                        (a - b).abs() < 5e-4 * b.abs().max(1.0),
                        "world={world}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn replicas_stay_in_sync() {
        let cfg = VitConfig::test_tiny();
        let batch = make_batch(&cfg, 2, 9);
        let results = Cluster::frontier().run(2, |ctx| {
            let mut e =
                DdpEngine::new(ctx, cfg, AdamW::default(), TrainOptions::none(), 1).unwrap();
            for _ in 0..2 {
                e.train_step(ctx, &batch).unwrap();
            }
            e.model.flatten_params()
        });
        assert_eq!(results[0], results[1], "replicas must remain bit-identical");
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn rejects_undividable_batch() {
        let cfg = VitConfig::test_tiny();
        let batch = make_batch(&cfg, 3, 9);
        Cluster::frontier().run(2, |ctx| {
            let mut e =
                DdpEngine::new(ctx, cfg, AdamW::default(), TrainOptions::none(), 1).unwrap();
            let _ = e.train_step(ctx, &batch);
        });
    }
}
