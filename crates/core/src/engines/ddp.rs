//! Distributed Data Parallelism: replicated model, partitioned data,
//! gradient all-reduce (paper Sec. III-B, "Hierarchical Parallelism" —
//! the outermost, least-communication level).

use crate::scaler::GradScaler;
use crate::stats::StepStats;
use orbit_comm::{Allocation, ProcessGroup, RankCtx};
use orbit_frontier::TrainOptions;
use orbit_tensor::kernels::{AdamState, AdamW};
use orbit_tensor::Precision;
use orbit_vit::loss::{lat_weights, weighted_mse, weighted_mse_grad};
use orbit_vit::{Batch, VitConfig, VitModel};

use super::{local_batch, sustained_flops};
use super::single::norm;

/// DDP over an explicit process group (usually the world).
pub struct DdpEngine {
    pub model: VitModel,
    group: ProcessGroup,
    state: AdamState,
    opt: AdamW,
    opts: TrainOptions,
    lat_w: Vec<f32>,
    scaler: GradScaler,
    replica_id: usize,
    n_replicas: usize,
    _persistent: Allocation,
}

impl DdpEngine {
    /// Build a replica on the calling rank. Every rank must use the same
    /// `seed` so replicas start identical.
    pub fn new(
        ctx: &RankCtx,
        mut cfg: VitConfig,
        opt: AdamW,
        opts: TrainOptions,
        seed: u64,
    ) -> Result<Self, orbit_comm::OomError> {
        if opts.mixed_precision {
            cfg.precision = Precision::BF16Mixed;
        }
        let mut model = VitModel::init(cfg, seed);
        let n = model.param_count() as u64;
        // Full replica: weights + grads + Adam moments on every GPU.
        let persistent = ctx.device.alloc(16 * n)?;
        let state = model.init_adam_state();
        let mut group = ctx.world_group();
        if opts.mixed_precision {
            group.set_wire_bytes(2.0);
        }
        Ok(DdpEngine {
            group,
            lat_w: lat_weights(cfg.dims.img_h),
            model,
            state,
            opt,
            opts,
            scaler: GradScaler::default(),
            replica_id: ctx.rank,
            n_replicas: ctx.world,
            _persistent: persistent,
        })
    }

    /// One training step over the *global* batch: each replica trains on
    /// its round-robin slice, then gradients are all-reduced. Returns
    /// globally-synchronized stats.
    pub fn train_step(
        &mut self,
        ctx: &mut RankCtx,
        global: &Batch,
    ) -> Result<StepStats, orbit_comm::OomError> {
        let global_n = global.len();
        assert_eq!(
            global_n % self.n_replicas,
            0,
            "global batch {global_n} must divide by {} replicas",
            self.n_replicas
        );
        let local = local_batch(global, self.replica_id, self.n_replicas);
        let dims = self.model.cfg.dims;
        let act_floats = if self.opts.activation_checkpointing {
            dims.tokens() * dims.embed * (dims.layers + 2)
        } else {
            dims.tokens() * dims.embed * (8 * dims.layers + dims.channels)
        };
        let _act = ctx.device.alloc((local.len() * act_floats) as u64 * 4)?;

        let t0 = ctx.clock.now();
        self.model.zero_grads();
        let scale = 1.0 / global_n as f32;
        let loss_scale = if self.opts.mixed_precision {
            self.scaler.scale()
        } else {
            1.0
        };
        let mut local_loss = 0.0f32;
        for (images, targets) in local.inputs.iter().zip(&local.targets) {
            if self.opts.activation_checkpointing {
                let (preds, boundaries) = self.model.forward_ckpt(images);
                local_loss += weighted_mse(&preds, targets, &self.lat_w) * scale;
                let mut d = weighted_mse_grad(&preds, targets, &self.lat_w);
                for g in &mut d {
                    g.scale(scale * loss_scale);
                }
                self.model.backward_ckpt(images, &boundaries, &d);
            } else {
                let fwd = self.model.forward(images);
                local_loss += weighted_mse(&fwd.preds, targets, &self.lat_w) * scale;
                let mut d = weighted_mse_grad(&fwd.preds, targets, &self.lat_w);
                for g in &mut d {
                    g.scale(scale * loss_scale);
                }
                self.model.backward(&fwd, &d);
            }
        }
        let per_obs = dims.train_flops() as f64
            * if self.opts.activation_checkpointing { 4.0 / 3.0 } else { 1.0 };
        ctx.clock.charge_compute(
            local.len() as f64 * per_obs,
            sustained_flops(ctx.machine(), self.opts.mixed_precision),
        );

        // Gradient synchronization: per-sample grads are already scaled by
        // 1/global_batch, so a plain sum yields the global-mean gradient.
        let grads = self.model.flatten_grads();
        let mut synced = self.group.all_reduce(&mut ctx.clock, &grads);

        let mut applied = true;
        if self.opts.mixed_precision {
            // Finiteness must be agreed globally; the all-reduced gradient
            // is identical on every rank, so local inspection agrees.
            applied = self.scaler.unscale_and_check(&mut synced);
        }
        let grad_norm = norm(&synced);
        if applied {
            self.model.load_flat_grads(&synced);
            self.model.adam_step(&self.opt, &mut self.state);
        }
        let loss = self.group.all_reduce_scalar(&mut ctx.clock, local_loss);
        Ok(StepStats {
            loss,
            grad_norm,
            sim_time: ctx.clock.now() - t0,
            peak_mem: ctx.device.peak(),
            applied,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbit_comm::Cluster;
    use orbit_tensor::init::Rng;

    fn make_batch(cfg: &VitConfig, n: usize, seed: u64) -> Batch {
        let mut rng = Rng::seed(seed);
        Batch {
            inputs: (0..n)
                .map(|_| {
                    (0..cfg.dims.channels)
                        .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                        .collect()
                })
                .collect(),
            targets: (0..n)
                .map(|_| {
                    (0..cfg.dims.out_channels)
                        .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                        .collect()
                })
                .collect(),
        }
    }

    #[test]
    fn ddp_matches_single_device_losses() {
        let cfg = VitConfig::test_tiny();
        let batch = make_batch(&cfg, 4, 7);
        let opt = AdamW::default();
        let w = lat_weights(cfg.dims.img_h);

        let mut reference = VitModel::init(cfg, 42);
        let mut state = reference.init_adam_state();
        let ref_losses: Vec<f32> = (0..3)
            .map(|_| reference.train_step(&batch, &w, &opt, &mut state))
            .collect();

        for world in [1usize, 2, 4] {
            let results = Cluster::frontier().run(world, |ctx| {
                let mut e = DdpEngine::new(ctx, cfg, opt, TrainOptions::none(), 42).unwrap();
                (0..3)
                    .map(|_| e.train_step(ctx, &batch).unwrap().loss)
                    .collect::<Vec<_>>()
            });
            for losses in &results {
                for (a, b) in losses.iter().zip(&ref_losses) {
                    assert!(
                        (a - b).abs() < 5e-4 * b.abs().max(1.0),
                        "world={world}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn replicas_stay_in_sync() {
        let cfg = VitConfig::test_tiny();
        let batch = make_batch(&cfg, 2, 9);
        let results = Cluster::frontier().run(2, |ctx| {
            let mut e = DdpEngine::new(ctx, cfg, AdamW::default(), TrainOptions::none(), 1).unwrap();
            for _ in 0..2 {
                e.train_step(ctx, &batch).unwrap();
            }
            e.model.flatten_params()
        });
        assert_eq!(results[0], results[1], "replicas must remain bit-identical");
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn rejects_undividable_batch() {
        let cfg = VitConfig::test_tiny();
        let batch = make_batch(&cfg, 3, 9);
        Cluster::frontier().run(2, |ctx| {
            let mut e = DdpEngine::new(ctx, cfg, AdamW::default(), TrainOptions::none(), 1).unwrap();
            let _ = e.train_step(ctx, &batch);
        });
    }
}
