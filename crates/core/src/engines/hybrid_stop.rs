//! Hybrid Sharded Tensor-Data Orthogonal Parallelism — the paper's
//! contribution (Sec. III, Figs. 3 and 4).
//!
//! Three orthogonal group kinds partition the world
//! (`world = tp * fsdp * ddp`, tp fastest-varying so TP groups sit inside
//! a node):
//!
//! - **Tensor parallel** (intra-node): block weights split in the
//!   alternating column/row shards of Eqn. (2); partial activations summed
//!   every sub-layer.
//! - **FSDP** (across nodes): each rank's *tensor-parallel shard* is
//!   further flat-sharded across the FSDP group. Before a layer runs, the
//!   group all-gathers that layer's TP shard — never the full model, which
//!   is the decisive memory advantage over vanilla FSDP (Fig. 2 vs 3).
//!   Gradients return by reduce-scatter.
//! - **DDP** (across sub-clusters): independent data replicas whose
//!   sharded gradients are all-reduced once per step.
//!
//! The four Table I optimizations are honored: layer wrapping (gather one
//! block at a time vs everything at once), BF16 mixed precision with
//! dynamic gradient scaling, gather prefetching (the next block's gather is
//! *issued* before the current block computes, so the rendezvous genuinely
//! proceeds in the background while this rank works, and its modeled time
//! is overlapped with compute on the simulated clock), and activation
//! checkpointing (boundaries only; block caches recomputed in the backward
//! pass).

use crate::dcomm::{comm_err, GroupComm};
use crate::stats::StepStats;
use crate::tp_block::TpBlock;
use orbit_comm::{Allocation, CommError, PendingCollective, ProcessGroup, RankCtx, SimError};
use orbit_frontier::{ParallelLayout, RankMapping, TrainOptions};
use orbit_tensor::dtensor::{flat_shard, padded_len};
use orbit_tensor::dtensor::{DTensor, DeviceMesh, Layout, PendingReshard};
use orbit_tensor::kernels::{AdamState, AdamW};
use orbit_tensor::Tensor;
use orbit_vit::loss::weighted_mse;
use orbit_vit::{Batch, Checkpoint, VitConfig, VitModel};

use super::tp::{
    assemble_reference, reshard_reference, sync_qk_grads, tp_flatten, tp_flatten_grads, tp_load,
    tp_load_grads,
};
use super::trainer::{configure_precision, norm, Trainer};
use super::Engine;

/// A unit gather in flight: the pending `ShardFlat -> Replicate` reshard
/// plus its transient allocation (gathered parameters + gradient staging
/// buffer).
struct InflightGather {
    unit: usize,
    pending: PendingReshard<PendingCollective>,
    alloc: Allocation,
}

/// The Hybrid-STOP training engine for one rank.
pub struct HybridStopEngine {
    layout: ParallelLayout,
    /// The full `tp x fsdp x ddp` device mesh this rank lives on (tp
    /// fastest-varying, paper Fig. 4). Weight shards live on the `fsdp`
    /// axis; gradient partials resolve on `fsdp` then `ddp`.
    mesh: DeviceMesh,
    /// Front-end + head (replicated across TP, FSDP-sharded at rest).
    pub front: VitModel,
    /// This rank's TP block shards (values refreshed by FSDP gathers).
    pub blocks: Vec<TpBlock>,
    /// Each unit's persistent parameters: `ShardFlat` DTensors over the
    /// mesh's `fsdp` axis (unit 0 = front-end/head, unit 1+l = block l;
    /// the "global" of each is this rank's TP shard flat).
    unit_params: Vec<DTensor>,
    /// Unsharded flat length of each unit (this rank's TP shard).
    unit_lens: Vec<usize>,
    states: Vec<AdamState>,
    tp_group: ProcessGroup,
    fsdp_group: ProcessGroup,
    ddp_group: ProcessGroup,
    world_group: ProcessGroup,
    trainer: Trainer,
    _persistent: Allocation,
}

impl HybridStopEngine {
    /// Build rank `ctx.rank`'s engine for the given layout
    /// (`layout.world()` must equal `ctx.world`; all ranks pass the same
    /// seed). `layout.tp` must divide the model's head count.
    pub fn new(
        ctx: &RankCtx,
        layout: ParallelLayout,
        mut cfg: VitConfig,
        opt: AdamW,
        opts: TrainOptions,
        seed: u64,
    ) -> Result<Self, orbit_comm::OomError> {
        assert_eq!(layout.world(), ctx.world, "layout/world mismatch");
        configure_precision(&mut cfg, &opts);
        let mapping = RankMapping::new(layout);
        let coords = mapping.coords(ctx.rank);
        let reference = VitModel::init(cfg, seed);
        let mut blocks: Vec<TpBlock> = reference
            .blocks
            .iter()
            .map(|b| TpBlock::from_reference(b, layout.tp, coords.tp_idx))
            .collect();
        let mut front = reference;
        front.blocks = Vec::new();

        // Flat units: [front, block 0, ..., block L-1].
        let mut unit_flats = vec![front.flatten_params()];
        for b in &mut blocks {
            unit_flats.push(tp_flatten(b));
        }
        let unit_lens: Vec<usize> = unit_flats.iter().map(|f| f.len()).collect();
        let mesh = DeviceMesh::grid(&[
            ("tp", layout.tp, coords.tp_idx),
            ("fsdp", layout.fsdp, coords.fsdp_idx),
            ("ddp", layout.ddp, coords.ddp_idx),
        ]);
        let fsdp_mesh = mesh.sub(&["fsdp"]).expect("fsdp axis");
        let unit_params: Vec<DTensor> = unit_flats
            .into_iter()
            .map(|f| {
                let n = f.len();
                DTensor::from_global(
                    &Tensor::from_vec(1, n, f),
                    fsdp_mesh.clone(),
                    "fsdp",
                    Layout::ShardFlat,
                )
                .expect("flat sharding is always legal")
            })
            .collect();
        let states: Vec<AdamState> = unit_params
            .iter()
            .map(|p| AdamState::new(p.local().len()))
            .collect();
        let total_shard: u64 = unit_params.iter().map(|p| p.local().len() as u64).sum();
        // Persistent: weights + grads + Adam moments of the owned shards
        // only — the Fig. 3 property.
        let persistent = ctx.device.alloc(16 * total_shard)?;

        let mut tp_group = ctx.group(mapping.tp_group(ctx.rank));
        let mut fsdp_group = ctx.group(mapping.fsdp_group(ctx.rank));
        let mut ddp_group = ctx.group(mapping.ddp_group(ctx.rank));
        if opts.mixed_precision {
            // Parameters, gradients and activations travel as bf16.
            tp_group.set_wire_bytes(2.0);
            fsdp_group.set_wire_bytes(2.0);
            ddp_group.set_wire_bytes(2.0);
        }
        Ok(HybridStopEngine {
            tp_group,
            fsdp_group,
            ddp_group,
            world_group: ctx.world_group(),
            layout,
            mesh,
            trainer: Trainer::with_replicas(
                &cfg,
                opt,
                opts,
                coords.ddp_idx * layout.fsdp + coords.fsdp_idx,
                layout.fsdp * layout.ddp,
            ),
            front,
            blocks,
            unit_params,
            unit_lens,
            states,
            _persistent: persistent,
        })
    }

    /// Reshard one unit's parameters to `Replicate` within the FSDP group
    /// and return the unsharded flat vector, charging a transient
    /// allocation.
    fn gather_unit(
        &mut self,
        ctx: &mut RankCtx,
        unit: usize,
        prefetched: bool,
    ) -> Result<(Vec<f32>, Allocation), SimError> {
        // Transient buffer: gathered parameters + a same-sized gradient
        // staging buffer for the backward reduce-scatter.
        let full = padded_len(self.unit_lens[unit], self.layout.fsdp) as u64;
        let alloc = ctx.device.alloc(2 * full * self.trainer.param_bytes())?;
        let prefetch = prefetched && self.trainer.opts.prefetch;
        let flat = {
            let mut comm = GroupComm::new(&mut self.fsdp_group, &mut ctx.clock);
            self.unit_params[unit]
                .reshard_start("fsdp", Layout::Replicate, &mut comm, prefetch)
                .map_err(comm_err)?
                .wait(&mut comm)
                .map_err(comm_err)?
                .into_local()
                .into_vec()
        };
        Ok((flat, alloc))
    }

    /// Issue one unit's FSDP parameter gather without blocking. The
    /// transient allocation is charged at issue time, so with pipelining
    /// the next unit's buffer is resident while the current unit computes
    /// — the memory cost of the overlap.
    fn gather_unit_start(
        &mut self,
        ctx: &mut RankCtx,
        unit: usize,
    ) -> Result<InflightGather, SimError> {
        let full = padded_len(self.unit_lens[unit], self.layout.fsdp) as u64;
        let alloc = ctx.device.alloc(2 * full * self.trainer.param_bytes())?;
        let pending = {
            let mut comm = GroupComm::new(&mut self.fsdp_group, &mut ctx.clock);
            self.unit_params[unit]
                .reshard_start(
                    "fsdp",
                    Layout::Replicate,
                    &mut comm,
                    self.trainer.opts.prefetch,
                )
                .map_err(comm_err)?
        };
        Ok(InflightGather {
            unit,
            pending,
            alloc,
        })
    }

    /// Complete an in-flight unit gather and return the unsharded flat
    /// parameters plus their transient allocation.
    fn gather_unit_finish(
        &mut self,
        ctx: &mut RankCtx,
        inflight: InflightGather,
    ) -> Result<(Vec<f32>, Allocation), SimError> {
        let flat = {
            let mut comm = GroupComm::new(&mut self.fsdp_group, &mut ctx.clock);
            inflight
                .pending
                .wait(&mut comm)
                .map_err(comm_err)?
                .into_local()
                .into_vec()
        };
        Ok((flat, inflight.alloc))
    }

    /// Resolve a unit's `Partial` gradient flat to `ShardFlat` within the
    /// FSDP group — a reduce-scatter, with the padding supplied by the
    /// layout lowering rather than hand-rolled here.
    fn scatter_grads(&mut self, ctx: &mut RankCtx, grads: Vec<f32>) -> Result<Vec<f32>, CommError> {
        let n = grads.len();
        let fsdp_mesh = self.mesh.sub(&["fsdp"]).expect("fsdp axis");
        let partial =
            DTensor::partial(Tensor::from_vec(1, n, grads), fsdp_mesh, "fsdp").expect("fsdp axis");
        let mut comm = GroupComm::new(&mut self.fsdp_group, &mut ctx.clock);
        Ok(partial
            .reshard("fsdp", Layout::ShardFlat, &mut comm)
            .map_err(comm_err)?
            .into_local()
            .into_vec())
    }

    /// FSDP-unshard one flat per unit from `shards` (this rank's FSDP
    /// shard of each unit, in the parameters' flat layout), then hand
    /// front + blocks to the shared TP reassembly. The same routine serves
    /// parameters and Adam moments.
    fn assemble_full(
        &mut self,
        ctx: &mut RankCtx,
        shards: &[&[f32]],
    ) -> Result<Vec<f32>, CommError> {
        let fsdp_mesh = self.mesh.sub(&["fsdp"]).expect("fsdp axis");
        let mut unit_flats = Vec::with_capacity(shards.len());
        for (unit, shard) in shards.iter().enumerate() {
            let t = DTensor::from_local_shard(
                Tensor::from_vec(1, shard.len(), shard.to_vec()),
                fsdp_mesh.clone(),
                "fsdp",
                Layout::ShardFlat,
                1,
                self.unit_lens[unit],
            )
            .expect("unit shard matches parameter layout");
            let mut comm = GroupComm::new(&mut self.fsdp_group, &mut ctx.clock);
            unit_flats.push(
                t.reshard("fsdp", Layout::Replicate, &mut comm)
                    .map_err(comm_err)?
                    .into_local()
                    .into_vec(),
            );
        }
        let front_flat = unit_flats.remove(0);
        assemble_reference(
            &self.front.cfg,
            &self.blocks,
            &mut self.tp_group,
            &mut ctx.clock,
            &front_flat,
            &unit_flats,
        )
    }

    /// Reconstruct the full (reference-ordered) parameter vector: FSDP
    /// gather each unit, TP all-gather block shards, and reassemble the
    /// column/row shards into full matrices. Used by tests and for
    /// checkpointing.
    pub fn gather_full_params(&mut self, ctx: &mut RankCtx) -> Result<Vec<f32>, CommError> {
        let shards: Vec<Vec<f32>> = self
            .unit_params
            .iter()
            .map(|p| p.local().data().to_vec())
            .collect();
        let refs: Vec<&[f32]> = shards.iter().map(|s| s.as_slice()).collect();
        self.assemble_full(ctx, &refs)
    }

    /// Expose the gradient flats for diagnostics (test support).
    pub fn load_grad_shards(&mut self, unit: usize, grads: &[f32]) {
        if unit == 0 {
            self.front.load_flat_grads(&grads[..self.unit_lens[0]]);
        } else {
            tp_load_grads(&mut self.blocks[unit - 1], &grads[..self.unit_lens[unit]]);
        }
    }
}

impl Engine for HybridStopEngine {
    /// One training step over the global batch. Global batch size must
    /// divide evenly by `fsdp * ddp` data replicas.
    fn train_step(&mut self, ctx: &mut RankCtx, global: &Batch) -> Result<StepStats, SimError> {
        let local = self.trainer.partition(global);
        let global_n = global.len();
        let b = local.len();
        let dims = self.front.cfg.dims;
        let layers = self.blocks.len();
        let t0 = ctx.clock.now();

        // Activation accounting: wide intermediates sharded by tp;
        // boundaries replicated; tokenizer stage checkpointable.
        let act_floats = if self.trainer.opts.activation_checkpointing {
            dims.tokens() * dims.embed * (layers + 2 + 8 / self.layout.tp)
        } else {
            dims.tokens() * dims.embed * (8 * layers / self.layout.tp + 2 * layers + dims.channels)
        };
        let _act = ctx.device.alloc((b * act_floats) as u64 * 4)?;

        self.front.zero_grads();
        for blk in &mut self.blocks {
            blk.zero_grads();
        }

        // ---- Parameter gathers (forward) ----
        // Layer wrapping gathers one unit at a time; without it, all units
        // are gathered at once and the combined transient allocation is
        // held for the entire step (the Table I column-1 OOM).
        let mut whole_model_allocs: Vec<Allocation> = Vec::new();
        if !self.trainer.opts.layer_wrapping {
            let mut gathered = Vec::with_capacity(1 + layers);
            for unit in 0..=layers {
                let (flat, alloc) = self.gather_unit(ctx, unit, false)?;
                gathered.push(flat);
                whole_model_allocs.push(alloc);
            }
            self.front.load_flat_params(&gathered[0]);
            for (l, flat) in gathered[1..].iter().enumerate() {
                tp_load(&mut self.blocks[l], flat);
            }
        }

        // With both layer wrapping and prefetch, gathers are pipelined:
        // block l+1's gather is *issued* before block l computes (forward
        // and backward-recompute), so the rendezvous — and, on the last
        // arriver, the concatenation — runs while this rank works.
        let pipeline = self.trainer.opts.layer_wrapping && self.trainer.opts.prefetch;
        let mut inflight: Option<InflightGather> = None;

        // Front-end always needed first and last: gather it (wrapped mode).
        let front_alloc = if self.trainer.opts.layer_wrapping {
            let (flat, alloc) = if pipeline {
                let front_gather = self.gather_unit_start(ctx, 0)?;
                if layers > 0 {
                    inflight = Some(self.gather_unit_start(ctx, 1)?);
                }
                self.gather_unit_finish(ctx, front_gather)?
            } else {
                self.gather_unit(ctx, 0, true)?
            };
            self.front.load_flat_params(&flat);
            Some(alloc)
        } else {
            None
        };

        let scale = 1.0 / global_n as f32;

        // Front-end forward for the whole local batch.
        let mut front_caches = Vec::with_capacity(b);
        let mut boundaries: Vec<Vec<Tensor>> = Vec::with_capacity(b);
        for images in &local.inputs {
            let (x0, fc) = self.front.front_forward(images);
            front_caches.push(fc);
            boundaries.push(vec![x0]);
        }

        // Blocks forward, one layer at a time across the batch so each
        // gather serves every sample (paper: "layer wrapping").
        let mut stored_caches: Vec<Vec<crate::tp_block::TpBlockCache>> = Vec::new();
        for l in 0..layers {
            let _unit_alloc = if self.trainer.opts.layer_wrapping {
                let (flat, alloc) = if pipeline {
                    let cur = inflight.take().expect("forward gather pipelined");
                    debug_assert_eq!(cur.unit, 1 + l);
                    if l + 1 < layers {
                        inflight = Some(self.gather_unit_start(ctx, 1 + l + 1)?);
                    }
                    self.gather_unit_finish(ctx, cur)?
                } else {
                    self.gather_unit(ctx, 1 + l, true)?
                };
                tp_load(&mut self.blocks[l], &flat);
                Some(alloc)
            } else {
                None
            };
            let mut layer_caches = Vec::with_capacity(b);
            for boundary in boundaries.iter_mut() {
                let x = boundary.last().expect("boundary present").clone();
                let (y, cache) = self.blocks[l].forward(&x, &mut self.tp_group, &mut ctx.clock)?;
                boundary.push(y);
                if !self.trainer.opts.activation_checkpointing {
                    layer_caches.push(cache);
                }
            }
            if !self.trainer.opts.activation_checkpointing {
                stored_caches.push(layer_caches);
            }
            // `_unit_alloc` drops here: parameters reshard after use.
        }

        // Backward re-gathers the deepest block first: issue it before the
        // head compute so the rendezvous overlaps the head + loss work.
        if pipeline && layers > 0 {
            inflight = Some(self.gather_unit_start(ctx, 1 + layers - 1)?);
        }

        // Head + loss + head backward (front params still resident).
        let mut local_loss = 0.0f32;
        let mut dys: Vec<Tensor> = Vec::with_capacity(b);
        for (s, boundary) in boundaries.iter().enumerate() {
            let top = boundary.last().expect("top boundary");
            let preds = self.front.head_forward(top);
            local_loss += weighted_mse(&preds, &local.targets[s], &self.trainer.lat_w) * scale;
            let d = self.trainer.loss_grad(&preds, &local.targets[s], scale);
            dys.push(self.front.head_backward(top, &d));
        }

        // Charge forward+backward compute for this rank's share.
        let per_obs =
            dims.train_flops() as f64 * self.trainer.recompute_factor() / self.layout.tp as f64;
        self.trainer.charge_compute(ctx, b, per_obs);

        // ---- Blocks backward (reverse layer order), with re-gather and
        // reduce-scatter per layer. ----
        let mut unit_grad_shards: Vec<Vec<f32>> = vec![Vec::new(); 1 + layers];
        for l in (0..layers).rev() {
            let _unit_alloc = if self.trainer.opts.layer_wrapping {
                let (flat, alloc) = if pipeline {
                    let cur = inflight.take().expect("backward gather pipelined");
                    debug_assert_eq!(cur.unit, 1 + l);
                    if l > 0 {
                        inflight = Some(self.gather_unit_start(ctx, 1 + l - 1)?);
                    }
                    self.gather_unit_finish(ctx, cur)?
                } else {
                    self.gather_unit(ctx, 1 + l, true)?
                };
                tp_load(&mut self.blocks[l], &flat);
                Some(alloc)
            } else {
                None
            };
            for s in 0..b {
                let cache = if self.trainer.opts.activation_checkpointing {
                    // Recompute this block's cache from the boundary
                    // (all ranks re-issue the same collectives).
                    let (_, cache) = self.blocks[l].forward(
                        &boundaries[s][l],
                        &mut self.tp_group,
                        &mut ctx.clock,
                    )?;
                    cache
                } else {
                    stored_caches[l].remove(0)
                };
                dys[s] =
                    self.blocks[l].backward(&cache, &dys[s], &mut self.tp_group, &mut ctx.clock)?;
            }
            sync_qk_grads(&mut self.blocks[l], &mut self.tp_group, &mut ctx.clock)?;
            // This layer's gradients are `Partial` over the FSDP axis:
            // resolve straight to `ShardFlat` (a reduce-scatter).
            let grads = tp_flatten_grads(&mut self.blocks[l]);
            unit_grad_shards[1 + l] = self.scatter_grads(ctx, grads)?;
        }

        // Front-end backward and its gradient reduce-scatter.
        for s in 0..b {
            self.front.front_backward(&front_caches[s], &dys[s]);
        }
        let front_grads = self.front.flatten_grads();
        unit_grad_shards[0] = self.scatter_grads(ctx, front_grads)?;
        drop(front_alloc);
        drop(whole_model_allocs);
        ctx.clock.flush_prefetch();

        // ---- DDP level: the owned gradient shards are still `Partial`
        // across data replicas; resolve to `Replicate` on the `ddp` axis.
        if self.layout.ddp > 1 {
            let ddp_mesh = self.mesh.sub(&["ddp"]).expect("ddp axis");
            for shard in unit_grad_shards.iter_mut() {
                let n = shard.len();
                let partial = DTensor::partial(
                    Tensor::from_vec(1, n, std::mem::take(shard)),
                    ddp_mesh.clone(),
                    "ddp",
                )
                .expect("ddp axis");
                let mut comm = GroupComm::new(&mut self.ddp_group, &mut ctx.clock);
                *shard = partial
                    .reshard("ddp", Layout::Replicate, &mut comm)
                    .map_err(comm_err)?
                    .into_local()
                    .into_vec();
            }
        }

        // ---- Mixed precision: unscale and agree on finiteness globally.
        let applied = {
            let mut shard_refs: Vec<&mut [f32]> = unit_grad_shards
                .iter_mut()
                .map(|s| s.as_mut_slice())
                .collect();
            self.trainer
                .unscale_synced(&mut ctx.clock, &mut self.world_group, &mut shard_refs)?
        };
        let grad_norm = {
            let n = norm(&unit_grad_shards.concat());
            if let Some(s) = self.trainer.clip_scale(n) {
                for shard in unit_grad_shards.iter_mut() {
                    for g in shard.iter_mut() {
                        *g *= s;
                    }
                }
            }
            n
        };

        // ---- Sharded optimizer step: each rank updates only its shards.
        if applied {
            for (unit, grads) in unit_grad_shards.iter().enumerate() {
                self.trainer.opt.step(
                    &mut self.states[unit],
                    self.unit_params[unit].local_mut().data_mut(),
                    grads,
                );
            }
        }

        // Loss: each TP rank computed the identical local loss, so the
        // world sum over-counts by tp.
        let loss = self
            .world_group
            .all_reduce_scalar(&mut ctx.clock, local_loss)?
            / self.layout.tp as f32;
        Ok(self.trainer.finish_step(ctx, t0, loss, grad_norm, applied))
    }

    /// Assemble the layout-independent checkpoint: FSDP all-gather + TP
    /// reassembly of the parameters and both Adam moments. Identical on
    /// every rank of any `tp x fsdp x ddp` layout, which is what makes
    /// restarting under a *different* layout possible.
    fn capture_checkpoint(&mut self, ctx: &mut RankCtx) -> Result<Checkpoint, SimError> {
        let params = self.gather_full_params(ctx)?;
        let m = {
            let shards: Vec<Vec<f32>> = self.states.iter().map(|s| s.m.clone()).collect();
            let refs: Vec<&[f32]> = shards.iter().map(|s| s.as_slice()).collect();
            self.assemble_full(ctx, &refs)?
        };
        let v = {
            let shards: Vec<Vec<f32>> = self.states.iter().map(|s| s.v.clone()).collect();
            let refs: Vec<&[f32]> = shards.iter().map(|s| s.as_slice()).collect();
            self.assemble_full(ctx, &refs)?
        };
        Ok(
            Checkpoint::from_parts(&self.front.cfg, params, m, v, self.states[0].step)
                .with_scaler(self.trainer.scaler_state()),
        )
    }

    /// Re-shard the checkpoint into this rank's layout: TP slice each
    /// block, then FSDP flat-shard every unit — parameters and both Adam
    /// moments. Restoring into the capturing layout is a pure permutation
    /// (bit-exact); restoring into a different layout only re-slices the
    /// same values.
    fn restore_checkpoint(&mut self, _ctx: &mut RankCtx, ck: &Checkpoint) -> Result<(), SimError> {
        if !ck.matches_config(&self.front.cfg) {
            return Err(SimError::State(
                "checkpoint fingerprint does not match model config".into(),
            ));
        }
        let cfg = self.front.cfg;
        let tp = self.layout.tp;
        let tp_idx = self.tp_group.local_index();
        let fsdp = self.layout.fsdp;
        let fsdp_idx = self.fsdp_group.local_index();
        // full reference flat -> per-unit flats in this rank's TP layout.
        let reshard_units = |full: &[f32]| -> Vec<Vec<f32>> {
            let (front, blocks) = reshard_reference(&cfg, tp, tp_idx, full);
            let mut units = vec![front];
            units.extend(blocks);
            units
        };
        let fsdp_mesh = self.mesh.sub(&["fsdp"]).expect("fsdp axis");
        for (unit, full) in reshard_units(&ck.params).into_iter().enumerate() {
            if full.len() != self.unit_lens[unit] {
                return Err(SimError::State(format!(
                    "unit {unit} shard length mismatch on restore"
                )));
            }
            let n = full.len();
            self.unit_params[unit] = DTensor::from_global(
                &Tensor::from_vec(1, n, full),
                fsdp_mesh.clone(),
                "fsdp",
                Layout::ShardFlat,
            )
            .expect("flat sharding is always legal");
        }
        let m_units: Vec<Vec<f32>> = reshard_units(&ck.adam_m)
            .iter()
            .map(|u| flat_shard(u, fsdp, fsdp_idx))
            .collect();
        let v_units: Vec<Vec<f32>> = reshard_units(&ck.adam_v)
            .iter()
            .map(|u| flat_shard(u, fsdp, fsdp_idx))
            .collect();
        for (unit, (m, v)) in m_units.into_iter().zip(v_units).enumerate() {
            self.states[unit].m = m;
            self.states[unit].v = v;
            self.states[unit].step = ck.adam_step;
        }
        self.trainer.restore_scaler(ck.scaler);
        self.trainer.restore_generation(ck.adam_step);
        Ok(())
    }

    fn generation(&self) -> u64 {
        self.trainer.generation()
    }

    fn name(&self) -> &str {
        "hybrid_stop"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbit_comm::Cluster;
    use orbit_tensor::init::Rng;
    use orbit_vit::loss::lat_weights;

    fn make_batch(cfg: &VitConfig, n: usize, seed: u64) -> Batch {
        let mut rng = Rng::seed(seed);
        Batch {
            inputs: (0..n)
                .map(|_| {
                    (0..cfg.dims.channels)
                        .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                        .collect()
                })
                .collect(),
            targets: (0..n)
                .map(|_| {
                    (0..cfg.dims.out_channels)
                        .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                        .collect()
                })
                .collect(),
        }
    }

    fn reference_run(cfg: VitConfig, batch: &Batch, steps: usize) -> (Vec<f32>, Vec<f32>) {
        let w = lat_weights(cfg.dims.img_h);
        let opt = AdamW::default();
        let mut model = VitModel::init(cfg, 42);
        let mut state = model.init_adam_state();
        let losses = (0..steps)
            .map(|_| model.train_step(batch, &w, &opt, &mut state))
            .collect();
        (losses, model.flatten_params())
    }

    /// The headline correctness test: Hybrid-STOP with every non-trivial
    /// layout reproduces the single-device reference losses AND parameters.
    #[test]
    fn hybrid_stop_matches_reference_across_layouts() {
        let cfg = VitConfig::test_tiny();
        let batch = make_batch(&cfg, 4, 17);
        let (ref_losses, ref_params) = reference_run(cfg, &batch, 2);

        for (tp, fsdp, ddp) in [
            (1, 1, 1),
            (2, 1, 1),
            (1, 2, 1),
            (1, 1, 2),
            (2, 2, 1),
            (2, 1, 2),
            (1, 2, 2),
            (2, 2, 2),
        ] {
            let layout = ParallelLayout::new(tp, fsdp, ddp);
            let results = Cluster::frontier().run(layout.world(), |ctx| {
                let mut e = HybridStopEngine::new(
                    ctx,
                    layout,
                    cfg,
                    AdamW::default(),
                    TrainOptions::none(),
                    42,
                )
                .unwrap();
                let losses: Vec<f32> = (0..2)
                    .map(|_| e.train_step(ctx, &batch).unwrap().loss)
                    .collect();
                let params = e.gather_full_params(ctx).unwrap();
                (losses, params)
            });
            for (losses, params) in &results {
                for (a, b) in losses.iter().zip(&ref_losses) {
                    assert!(
                        (a - b).abs() < 1e-3 * b.abs().max(1.0),
                        "tp={tp} fsdp={fsdp} ddp={ddp}: loss {a} vs {b}"
                    );
                }
                assert_eq!(
                    params.len(),
                    ref_params.len(),
                    "tp={tp} fsdp={fsdp} ddp={ddp}"
                );
                for (i, (a, b)) in params.iter().zip(&ref_params).enumerate() {
                    assert!(
                        (a - b).abs() < 1e-3 * b.abs().max(1e-2),
                        "tp={tp} fsdp={fsdp} ddp={ddp}: param {i}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn checkpointing_and_wrapping_preserve_losses() {
        let cfg = VitConfig::test_tiny();
        let batch = make_batch(&cfg, 2, 19);
        let (ref_losses, _) = reference_run(cfg, &batch, 2);
        let layout = ParallelLayout::new(2, 2, 1);
        for (wrap, ckpt) in [(true, true), (true, false), (false, true)] {
            let opts = TrainOptions {
                layer_wrapping: wrap,
                activation_checkpointing: ckpt,
                prefetch: wrap,
                ..TrainOptions::none()
            };
            let results = Cluster::frontier().run(4, |ctx| {
                let mut e =
                    HybridStopEngine::new(ctx, layout, cfg, AdamW::default(), opts, 42).unwrap();
                (0..2)
                    .map(|_| e.train_step(ctx, &batch).unwrap().loss)
                    .collect::<Vec<_>>()
            });
            for losses in &results {
                for (a, b) in losses.iter().zip(&ref_losses) {
                    assert!(
                        (a - b).abs() < 1e-3 * b.abs().max(1.0),
                        "wrap={wrap} ckpt={ckpt}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn layer_wrapping_lowers_peak_memory() {
        let cfg = VitConfig::test_tiny();
        let batch = make_batch(&cfg, 2, 23);
        let layout = ParallelLayout::new(2, 2, 1);
        let peak = |wrap: bool| {
            let opts = TrainOptions {
                layer_wrapping: wrap,
                ..TrainOptions::none()
            };
            Cluster::frontier().run(4, |ctx| {
                let mut e =
                    HybridStopEngine::new(ctx, layout, cfg, AdamW::default(), opts, 42).unwrap();
                e.train_step(ctx, &batch).unwrap().peak_mem
            })[0]
        };
        let wrapped = peak(true);
        let unwrapped = peak(false);
        assert!(
            wrapped < unwrapped,
            "layer wrapping must cut peak memory: {wrapped} !< {unwrapped}"
        );
    }

    #[test]
    fn mixed_precision_trains_and_stays_close() {
        let cfg = VitConfig::test_tiny();
        let batch = make_batch(&cfg, 2, 29);
        let (ref_losses, _) = reference_run(cfg, &batch, 3);
        let layout = ParallelLayout::new(2, 2, 1);
        let opts = TrainOptions::all_on();
        let results = Cluster::frontier().run(4, |ctx| {
            let mut e =
                HybridStopEngine::new(ctx, layout, cfg, AdamW::default(), opts, 42).unwrap();
            (0..3)
                .map(|_| {
                    let s = e.train_step(ctx, &batch).unwrap();
                    assert!(s.applied, "healthy grads should not be skipped");
                    s.loss
                })
                .collect::<Vec<_>>()
        });
        // BF16 rounding perturbs the trajectory, but losses stay close.
        for losses in &results {
            for (a, b) in losses.iter().zip(&ref_losses) {
                assert!((a - b).abs() < 0.05 * b.abs().max(1.0), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn persistent_memory_scales_down_with_sharding() {
        let cfg = VitConfig::test_tiny();
        let persist = |tp: usize, fsdp: usize| {
            let layout = ParallelLayout::new(tp, fsdp, 1);
            Cluster::frontier().run(layout.world(), |ctx| {
                let _e = HybridStopEngine::new(
                    ctx,
                    layout,
                    cfg,
                    AdamW::default(),
                    TrainOptions::none(),
                    42,
                )
                .unwrap();
                ctx.device.in_use()
            })[0]
        };
        let p11 = persist(1, 1);
        let p22 = persist(2, 2);
        // tp*fsdp = 4 shards the block weights ~4x (front-end only by fsdp).
        assert!(
            (p22 as f64) < 0.5 * p11 as f64,
            "sharded persistent {p22} should be well under {p11}"
        );
    }
}
