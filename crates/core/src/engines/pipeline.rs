//! Pipeline parallelism (GPipe-style) — the second baseline of the
//! paper's Sec. II comparison.
//!
//! The model is split into stages by *layer*: stage 0 owns the front-end
//! (tokenizer, aggregation, positional embedding), every stage owns a
//! contiguous slice of transformer blocks, and the last stage owns the
//! prediction head and the loss. Activations flow stage-to-stage with
//! point-to-point sends; gradients flow back the same way.
//!
//! Its defining limitation — the reason the paper contrasts it with
//! Hybrid-STOP — is that the stage count cannot exceed the layer count,
//! and pipeline bubbles waste time at small microbatch counts. Both are
//! observable here: construction asserts the stage bound, and the
//! simulated clock exposes the bubble.

use crate::stats::StepStats;
use orbit_comm::{Allocation, ProcessGroup, RankCtx, SimError};
use orbit_frontier::TrainOptions;
use orbit_tensor::kernels::{AdamState, AdamW};
use orbit_tensor::Tensor;
use orbit_vit::block::BlockCache;
use orbit_vit::loss::{weighted_mse, weighted_mse_grad};
use orbit_vit::model::FrontCache;
use orbit_vit::{Batch, Checkpoint, VitConfig, VitModel};

use super::trainer::Trainer;
use super::Engine;

/// One pipeline stage (rank `stage` of `n_stages`).
pub struct PipelineEngine {
    stage: usize,
    n_stages: usize,
    /// Full model structure; this stage only *uses and updates* its part
    /// (front-end on stage 0, its block slice, head on the last stage).
    model: VitModel,
    /// Layer range [lo, hi) owned by this stage.
    lo: usize,
    hi: usize,
    group: ProcessGroup,
    state: AdamState,
    trainer: Trainer,
    _persistent: Allocation,
}

impl PipelineEngine {
    /// Split the model into `ctx.world` stages. The stage count must not
    /// exceed the layer count — pipeline parallelism's structural limit.
    pub fn new(
        ctx: &RankCtx,
        cfg: VitConfig,
        opt: AdamW,
        opts: TrainOptions,
        seed: u64,
    ) -> Result<Self, orbit_comm::OomError> {
        let n_stages = ctx.world;
        assert!(
            n_stages <= cfg.dims.layers,
            "pipeline stages ({n_stages}) cannot exceed layers ({}) — the Sec. II limitation",
            cfg.dims.layers
        );
        let stage = ctx.rank;
        let model = VitModel::init(cfg, seed);
        // Contiguous block split, remainder to the early stages.
        let per = cfg.dims.layers / n_stages;
        let extra = cfg.dims.layers % n_stages;
        let lo = stage * per + stage.min(extra);
        let hi = lo + per + usize::from(stage < extra);
        // Persistent memory: owned blocks (+ front on stage 0, head on
        // the last stage).
        let d = cfg.dims;
        let mut owned: u64 = (hi - lo) as u64 * d.block_params();
        if stage == 0 {
            owned += d.tokenizer_params() + d.aggregation_params() + d.pos_embed_params();
        }
        if stage == n_stages - 1 {
            owned += d.head_params();
        }
        let persistent = ctx.device.alloc(16 * owned)?;
        let mut model = model;
        let state = AdamState::new(model.param_count());
        Ok(PipelineEngine {
            stage,
            n_stages,
            model,
            lo,
            hi,
            group: ctx.world_group(),
            state,
            trainer: Trainer::new(&cfg, opt, opts),
            _persistent: persistent,
        })
    }

    fn is_first(&self) -> bool {
        self.stage == 0
    }

    fn is_last(&self) -> bool {
        self.stage == self.n_stages - 1
    }

    /// Does this stage own parameter `name`? Blocks belong to their layer
    /// range; the head to the last stage; everything else (front-end) to
    /// stage 0. Mirrors the optimizer-step ownership rule in
    /// [`Engine::train_step`].
    fn owns(&self, name: &str) -> bool {
        if let Some(rest) = name.strip_prefix("block") {
            let idx: usize = rest
                .split('.')
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or(usize::MAX);
            (self.lo..self.hi).contains(&idx)
        } else if name.starts_with("head_") {
            self.is_last()
        } else {
            self.is_first()
        }
    }

    /// Per-parameter `(offset, len, owned)` ranges of the flat layout.
    fn ownership_ranges(&mut self) -> Vec<(usize, usize, bool)> {
        let mut ranges = Vec::new();
        let mut owned_names: Vec<(String, usize)> = Vec::new();
        self.model.visit_params(&mut |name, p| {
            owned_names.push((name.to_string(), p.len()));
        });
        let mut off = 0;
        for (name, n) in owned_names {
            ranges.push((off, n, self.owns(&name)));
            off += n;
        }
        ranges
    }
}

impl Engine for PipelineEngine {
    /// One GPipe step: all microbatch forwards, then all backwards, then a
    /// local optimizer step on the owned parameters. Every rank receives
    /// the whole batch; only stage 0 reads the inputs, only the last stage
    /// reads the targets. Returns the global loss on every rank.
    fn train_step(&mut self, ctx: &mut RankCtx, batch: &Batch) -> Result<StepStats, SimError> {
        assert!(!batch.is_empty());
        let b = batch.len();
        let dims = self.model.cfg.dims;
        let tokens = dims.tokens();
        let d = dims.embed;
        let t0 = ctx.clock.now();
        // Activation accounting: each stage stores caches for every
        // in-flight microbatch — the GPipe memory cost.
        let my_layers = self.hi - self.lo;
        let _act = ctx
            .device
            .alloc((b * tokens * d * (8 * my_layers + 2)) as u64 * 4)?;

        self.model.zero_grads();
        let scale = 1.0 / b as f32;

        // ---- Forward wave ----
        let mut front_caches: Vec<Option<FrontCache>> = Vec::new();
        let mut block_caches: Vec<Vec<BlockCache>> = Vec::new();
        let mut tops: Vec<Tensor> = Vec::new();
        let mut local_loss = 0.0f32;
        let mut d_tops: Vec<Tensor> = Vec::new();
        for s in 0..b {
            let mut x = if self.is_first() {
                let (x0, fc) = self.model.front_forward(&batch.inputs[s]);
                front_caches.push(Some(fc));
                x0
            } else {
                let data = self.group.recv(&mut ctx.clock, self.stage - 1)?;
                Tensor::from_vec(tokens, d, data)
            };
            let mut caches = Vec::with_capacity(self.hi - self.lo);
            for l in self.lo..self.hi {
                let (y, c) = self.model.blocks[l].forward(&x);
                caches.push(c);
                x = y;
            }
            block_caches.push(caches);
            if self.is_last() {
                let preds = self.model.head_forward(&x);
                local_loss += weighted_mse(&preds, &batch.targets[s], &self.trainer.lat_w) * scale;
                // No loss-scaling here: the pipeline baseline runs the
                // optimizer in full precision.
                let mut dp = weighted_mse_grad(&preds, &batch.targets[s], &self.trainer.lat_w);
                for g in &mut dp {
                    g.scale(scale);
                }
                d_tops.push(self.model.head_backward(&x, &dp));
                tops.push(x);
            } else {
                self.group.send(&mut ctx.clock, self.stage + 1, x.data())?;
            }
        }

        // ---- Backward wave ----
        for s in 0..b {
            let mut dy = if self.is_last() {
                d_tops[s].clone()
            } else {
                let data = self.group.recv(&mut ctx.clock, self.stage + 1)?;
                Tensor::from_vec(tokens, d, data)
            };
            for (l, cache) in (self.lo..self.hi).zip(block_caches[s].iter()).rev() {
                dy = self.model.blocks[l].backward(cache, &dy);
            }
            if self.is_first() {
                let fc = front_caches[s].take().expect("front cache");
                self.model.front_backward(&fc, &dy);
            } else {
                self.group.send(&mut ctx.clock, self.stage - 1, dy.data())?;
            }
        }
        drop(tops);

        // Compute charge: this stage's share of the FLOPs.
        let share = (self.hi - self.lo) as f64 / dims.layers as f64;
        self.trainer
            .charge_compute(ctx, b, dims.train_flops() as f64 * share);

        // ---- Local optimizer step on owned parameters only ----
        // (Grads of parameters owned by other stages are zero here; apply
        // the update selectively so weight decay does not touch them.)
        let lo = self.lo;
        let hi = self.hi;
        let stage_first = self.is_first();
        let stage_last = self.is_last();
        let opt = self.trainer.opt;
        let state = &mut self.state;
        let mut offset = 0usize;
        let mut grad_sq = 0.0f64;
        self.model.visit_params(&mut |name, p| {
            let owned = if name.starts_with("block") {
                let idx: usize = name
                    .trim_start_matches("block")
                    .split('.')
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(usize::MAX);
                (lo..hi).contains(&idx)
            } else if name.starts_with("head_") {
                stage_last
            } else {
                stage_first
            };
            let n = p.len();
            if owned {
                let mut vals = p.value.data().to_vec();
                // Slice the flat Adam state for this parameter's range.
                let mut sub = AdamState {
                    m: state.m[offset..offset + n].to_vec(),
                    v: state.v[offset..offset + n].to_vec(),
                    step: state.step,
                };
                opt.step(&mut sub, &mut vals, p.grad.data());
                state.m[offset..offset + n].copy_from_slice(&sub.m);
                state.v[offset..offset + n].copy_from_slice(&sub.v);
                p.value.data_mut().copy_from_slice(&vals);
                grad_sq += p
                    .grad
                    .data()
                    .iter()
                    .map(|&g| (g as f64) * (g as f64))
                    .sum::<f64>();
            }
            offset += n;
        });
        self.state.step += 1;

        // Share the loss: broadcast from the last stage.
        let loss_v = self
            .group
            .broadcast(&mut ctx.clock, &[local_loss], self.n_stages - 1)?;
        Ok(self
            .trainer
            .finish_step(ctx, t0, loss_v[0], grad_sq.sqrt() as f32, true))
    }

    /// Assemble the full checkpoint by summing stage contributions: each
    /// rank zeroes the parameter ranges it does not own (they are stale
    /// there — never updated), then one world all-reduce recovers every
    /// stage's authoritative values. Adam moments of non-owned ranges are
    /// already zero (the local optimizer never touches them), so they
    /// all-reduce directly.
    fn capture_checkpoint(&mut self, ctx: &mut RankCtx) -> Result<Checkpoint, SimError> {
        let ranges = self.ownership_ranges();
        let mut params = self.model.flatten_params();
        for &(off, n, owned) in &ranges {
            if !owned {
                params[off..off + n].fill(0.0);
            }
        }
        let params = self.group.all_reduce(&mut ctx.clock, &params)?.to_vec();
        let m = self
            .group
            .all_reduce(&mut ctx.clock, &self.state.m)?
            .to_vec();
        let v = self
            .group
            .all_reduce(&mut ctx.clock, &self.state.v)?
            .to_vec();
        Ok(
            Checkpoint::from_parts(&self.model.cfg, params, m, v, self.state.step)
                .with_scaler(self.trainer.scaler_state()),
        )
    }

    /// Load the full parameters everywhere (non-owned ranges act as frozen
    /// pass-through weights) but keep only the owned slices of the Adam
    /// moments, preserving the zero-moment invariant capture relies on.
    fn restore_checkpoint(&mut self, _ctx: &mut RankCtx, ck: &Checkpoint) -> Result<(), SimError> {
        if !ck.matches_config(&self.model.cfg) {
            return Err(SimError::State(
                "checkpoint fingerprint does not match model config".into(),
            ));
        }
        if ck.params.len() != self.state.m.len() {
            return Err(SimError::State(format!(
                "checkpoint has {} params, model expects {}",
                ck.params.len(),
                self.state.m.len()
            )));
        }
        self.model.load_flat_params(&ck.params);
        let ranges = self.ownership_ranges();
        let mut m = ck.adam_m.clone();
        let mut v = ck.adam_v.clone();
        for &(off, n, owned) in &ranges {
            if !owned {
                m[off..off + n].fill(0.0);
                v[off..off + n].fill(0.0);
            }
        }
        self.state.m = m;
        self.state.v = v;
        self.state.step = ck.adam_step;
        self.trainer.restore_scaler(ck.scaler);
        self.trainer.restore_generation(ck.adam_step);
        Ok(())
    }

    fn generation(&self) -> u64 {
        self.trainer.generation()
    }

    fn name(&self) -> &str {
        "pipeline"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbit_comm::Cluster;
    use orbit_tensor::init::Rng;
    use orbit_vit::loss::lat_weights;

    fn make_batch(cfg: &VitConfig, n: usize) -> Batch {
        let mut rng = Rng::seed(31);
        Batch {
            inputs: (0..n)
                .map(|_| {
                    (0..cfg.dims.channels)
                        .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                        .collect()
                })
                .collect(),
            targets: (0..n)
                .map(|_| {
                    (0..cfg.dims.out_channels)
                        .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                        .collect()
                })
                .collect(),
        }
    }

    #[test]
    fn pipeline_matches_reference() {
        let cfg = VitConfig::test_tiny(); // 2 layers -> up to 2 stages
        let batch = make_batch(&cfg, 3);
        let w = lat_weights(cfg.dims.img_h);
        let opt = AdamW::default();
        let mut reference = VitModel::init(cfg, 42);
        let mut state = reference.init_adam_state();
        let ref_losses: Vec<f32> = (0..3)
            .map(|_| reference.train_step(&batch, &w, &opt, &mut state))
            .collect();
        for stages in [1usize, 2] {
            let results = Cluster::frontier().run(stages, |ctx| {
                let mut e = PipelineEngine::new(ctx, cfg, opt, TrainOptions::none(), 42).unwrap();
                (0..3)
                    .map(|_| e.train_step(ctx, &batch).unwrap().loss)
                    .collect::<Vec<_>>()
            });
            for losses in &results {
                for (i, (a, b)) in losses.iter().zip(&ref_losses).enumerate() {
                    assert!(
                        (a - b).abs() < 1e-3 * b.abs().max(1.0),
                        "stages={stages} step {i}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn rejects_more_stages_than_layers() {
        let cfg = VitConfig::test_tiny(); // 2 layers
        Cluster::frontier().run(3, |ctx| {
            let _ = PipelineEngine::new(ctx, cfg, AdamW::default(), TrainOptions::none(), 1);
        });
    }

    #[test]
    fn stage_memory_smaller_than_whole_model() {
        let cfg = VitConfig::test_tiny();
        let whole = Cluster::frontier().run(1, |ctx| {
            let _e =
                PipelineEngine::new(ctx, cfg, AdamW::default(), TrainOptions::none(), 1).unwrap();
            ctx.device.in_use()
        })[0];
        let staged = Cluster::frontier().run(2, |ctx| {
            let _e =
                PipelineEngine::new(ctx, cfg, AdamW::default(), TrainOptions::none(), 1).unwrap();
            ctx.device.in_use()
        });
        for s in staged {
            assert!(s < whole, "stage persistent {s} !< whole {whole}");
        }
    }
}
