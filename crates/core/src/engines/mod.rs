//! Distributed training engines.
//!
//! Each engine is constructed *inside* a cluster rank closure (see
//! [`orbit_comm::Cluster::run`]) and drives the same ViT math as the
//! single-device reference, differing only in where parameters live and
//! which collectives synchronize them:
//!
//! | engine | parameters | gradients | data |
//! |---|---|---|---|
//! | [`SingleDeviceEngine`] | local | local | whole batch |
//! | [`DdpEngine`] | replicated | all-reduce | partitioned |
//! | [`FsdpEngine`] (vanilla) | flat-sharded 1/N, **full-model gather** per step | reduce-scatter | partitioned |
//! | [`TensorParallelEngine`] | column/row shards, never gathered | local to shard | replicated |
//! | [`HybridStopEngine`] | TP shards, FSDP-sharded, gathered **one layer at a time** | reduce-scatter + DDP all-reduce | partitioned across FSDP x DDP |

mod ddp;
mod fsdp;
mod hybrid_stop;
mod pipeline;
mod single;
mod tp;

pub use ddp::DdpEngine;
pub use fsdp::FsdpEngine;
pub use hybrid_stop::HybridStopEngine;
pub use pipeline::PipelineEngine;
pub use single::SingleDeviceEngine;
pub use tp::TensorParallelEngine;

use orbit_frontier::perfmodel::Calibration;
use orbit_vit::Batch;

/// Sustained per-GPU throughput used for simulated compute time.
pub(crate) fn sustained_flops(machine: &orbit_frontier::FrontierMachine, mixed: bool) -> f64 {
    let calib = Calibration::default();
    if mixed {
        machine.peak_bf16 * calib.mfu_bf16
    } else {
        machine.peak_fp32 * calib.mfu_fp32
    }
}

/// Slice a global batch into the local batch for data replica
/// `replica_id` of `n_replicas` (round-robin by sample index, so every
/// replica sees the same number of samples when the batch divides evenly).
pub fn local_batch(global: &Batch, replica_id: usize, n_replicas: usize) -> Batch {
    assert!(replica_id < n_replicas);
    let mut out = Batch::default();
    for (s, (inp, tgt)) in global.inputs.iter().zip(&global.targets).enumerate() {
        if s % n_replicas == replica_id {
            out.inputs.push(inp.clone());
            out.targets.push(tgt.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbit_tensor::Tensor;

    fn batch(n: usize) -> Batch {
        Batch {
            inputs: (0..n).map(|s| vec![Tensor::full(2, 2, s as f32)]).collect(),
            targets: (0..n).map(|s| vec![Tensor::full(2, 2, s as f32)]).collect(),
        }
    }

    #[test]
    fn local_batches_partition_global() {
        let g = batch(6);
        let parts: Vec<Batch> = (0..3).map(|r| local_batch(&g, r, 3)).collect();
        assert!(parts.iter().all(|p| p.len() == 2));
        // Sample 0 goes to replica 0, sample 1 to replica 1, etc.
        assert_eq!(parts[0].inputs[0][0].get(0, 0), 0.0);
        assert_eq!(parts[1].inputs[0][0].get(0, 0), 1.0);
        assert_eq!(parts[2].inputs[1][0].get(0, 0), 5.0);
    }

    #[test]
    fn single_replica_gets_everything() {
        let g = batch(4);
        let l = local_batch(&g, 0, 1);
        assert_eq!(l.len(), 4);
    }
}
