//! Distributed training engines.
//!
//! Every engine implements the object-safe [`Engine`] trait — one
//! [`Engine::train_step`] over the global batch — and delegates the shared
//! scaffold (batch partitioning, the microbatch forward/backward loop,
//! mixed-precision loss scaling, gradient clipping, simulated compute
//! charging, stats assembly) to a [`Trainer`]. Each engine file keeps only
//! its distinct shard layout and collective choreography:
//!
//! | engine ([`Engine::name`]) | parameters | gradients | data |
//! |---|---|---|---|
//! | [`SingleDeviceEngine`] (`single_device`) | local | local | whole batch |
//! | [`DdpEngine`] (`ddp`) | replicated | **one all-reduce per step** | partitioned |
//! | [`FsdpEngine`] (`fsdp`, vanilla) | flat-sharded 1/N, **full-model gather** per step | reduce-scatter | partitioned |
//! | [`TensorParallelEngine`] (`tensor_parallel`) | column/row shards, never gathered | local to shard | replicated |
//! | [`PipelineEngine`] (`pipeline`) | layer-partitioned stages | local to stage | whole batch, staged |
//! | [`HybridStopEngine`] (`hybrid_stop`) | TP shards, FSDP-sharded, gathered **one layer unit at a time** | reduce-scatter + DDP all-reduce | partitioned across FSDP x DDP |
//!
//! Engines are constructed *inside* a cluster rank closure (see
//! [`orbit_comm::Cluster::run`]), either directly by type or generically
//! through [`EngineSpec`] / [`build_engine`], which return a
//! `Box<dyn Engine>` so tests, benches, and examples dispatch over all
//! strategies with one code path.

mod ddp;
mod fsdp;
mod hybrid_stop;
mod pipeline;
mod single;
mod tp;
mod trainer;

pub use ddp::DdpEngine;
pub use fsdp::FsdpEngine;
pub use hybrid_stop::HybridStopEngine;
pub use pipeline::PipelineEngine;
pub use single::SingleDeviceEngine;
pub use tp::TensorParallelEngine;
pub use trainer::Trainer;

use crate::stats::StepStats;
use orbit_comm::{RankCtx, SimError};
use orbit_frontier::perfmodel::Calibration;
use orbit_frontier::planner::PlanCandidate;
use orbit_frontier::{FrontierMachine, ParallelLayout, Strategy, TrainOptions};
use orbit_tensor::kernels::AdamW;
use orbit_tensor::Tensor;
use orbit_vit::{Batch, Checkpoint, ShardData, VitConfig};

/// A distributed training engine: one parallelism strategy driving the
/// shared ViT math over the simulated cluster.
///
/// The trait is object-safe; generic callers hold a `Box<dyn Engine>` from
/// [`build_engine`] and stay agnostic of the strategy.
pub trait Engine {
    /// One optimizer step over the **global** batch. Every rank of the
    /// cluster must call this collectively with the same batch; the engine
    /// partitions data internally according to its data-replica layout.
    /// Returns globally-synchronized statistics. Fails with a typed
    /// [`SimError`] on simulated OOM or a communication failure (e.g. a
    /// peer died mid-collective) — never deadlocks or panics for those.
    fn train_step(&mut self, ctx: &mut RankCtx, batch: &Batch) -> Result<StepStats, SimError>;

    /// Assemble a layout-independent full-model [`Checkpoint`] (parameters
    /// plus Adam state) on every rank. Collective: all ranks must call it
    /// together. The result is identical across ranks, so any one of them
    /// can persist it, and it can be restored into *any* engine layout.
    fn capture_checkpoint(&mut self, ctx: &mut RankCtx) -> Result<Checkpoint, SimError>;

    /// Capture shard `index` of `count` of the sharded checkpoint format
    /// (`orbit_vit::sharded`): this rank's slice of the parameters and
    /// Adam moments plus the replicated scalar state. The default gathers
    /// a full [`Checkpoint`] and slices it — correct for every engine but
    /// paying the full-model gather. Engines whose persistent layout
    /// *already is* the requested slice (FSDP's `ShardFlat`) override this
    /// with a gather-free local copy. Collective in the default path: all
    /// ranks must call it together.
    fn capture_shard(
        &mut self,
        ctx: &mut RankCtx,
        index: usize,
        count: usize,
    ) -> Result<ShardData, SimError> {
        let ck = self.capture_checkpoint(ctx)?;
        Ok(ShardData::from_checkpoint(&ck, index, count))
    }

    /// Load a full-model [`Checkpoint`] into this engine's shard layout —
    /// the restart half of checkpoint/restart, including Hybrid-STOP's
    /// reshard-on-restart. Collective: all ranks must call it together.
    fn restore_checkpoint(&mut self, ctx: &mut RankCtx, ck: &Checkpoint) -> Result<(), SimError>;

    /// Inference-only forward over a batch of observations (each a vector
    /// of per-channel images), the serving path: no loss, no backward, no
    /// optimizer. Compute is charged at forward cost. Collective for
    /// sharded layouts — every rank of the engine's communicator must call
    /// it together with identical inputs, and each returns the full
    /// predictions. Engines without an inference path (pipeline,
    /// hybrid-STOP) return a typed [`SimError::State`].
    fn predict(
        &mut self,
        ctx: &mut RankCtx,
        inputs: &[Vec<Tensor>],
    ) -> Result<Vec<Vec<Tensor>>, SimError> {
        let _ = (ctx, inputs);
        Err(SimError::State(format!(
            "engine {} has no inference-only forward",
            self.name()
        )))
    }

    /// Model generation of the engine's current weights: the committed
    /// checkpoint generation they were restored from (the store commits
    /// `adam_step` as the generation, so this equals the global step at
    /// commit), or 0 for freshly initialized weights. The serving layer
    /// stamps predictions with it so response caches can refuse entries
    /// computed by superseded weights.
    fn generation(&self) -> u64 {
        0
    }

    /// Stable snake_case strategy name (used in reports and traces).
    fn name(&self) -> &str;
}

/// Which engine to build — the generic-dispatch counterpart of the
/// concrete `*Engine::new` constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineSpec {
    Single,
    Ddp,
    Fsdp,
    TensorParallel,
    Pipeline,
    HybridStop(ParallelLayout),
}

impl EngineSpec {
    /// The [`Engine::name`] the built engine will report.
    pub fn name(&self) -> &'static str {
        match self {
            EngineSpec::Single => "single_device",
            EngineSpec::Ddp => "ddp",
            EngineSpec::Fsdp => "fsdp",
            EngineSpec::TensorParallel => "tensor_parallel",
            EngineSpec::Pipeline => "pipeline",
            EngineSpec::HybridStop(_) => "hybrid_stop",
        }
    }
}

/// Check that `spec` is constructible on a `world`-rank cluster with this
/// model *before* any engine state is built, so an impossible request
/// fails with one clear [`SimError::State`] instead of a panic (or a
/// cryptic divide error) deep inside engine construction.
fn validate_spec(spec: &EngineSpec, world: usize, cfg: &VitConfig) -> Result<(), SimError> {
    match spec {
        EngineSpec::Single | EngineSpec::Ddp | EngineSpec::Fsdp => Ok(()),
        EngineSpec::TensorParallel => {
            if !cfg.dims.heads.is_multiple_of(world) {
                return Err(SimError::State(format!(
                    "tensor_parallel needs the head count to divide over the world: \
                     {} heads cannot split across {world} ranks",
                    cfg.dims.heads
                )));
            }
            Ok(())
        }
        EngineSpec::Pipeline => {
            if world > cfg.dims.layers {
                return Err(SimError::State(format!(
                    "pipeline needs at least one transformer layer per stage: \
                     {} layers cannot spread over {world} ranks",
                    cfg.dims.layers
                )));
            }
            Ok(())
        }
        EngineSpec::HybridStop(layout) => {
            if layout.world() != world {
                return Err(SimError::State(format!(
                    "hybrid_stop layout tp={} x fsdp={} x ddp={} covers {} ranks \
                     but the cluster has {world}",
                    layout.tp,
                    layout.fsdp,
                    layout.ddp,
                    layout.world()
                )));
            }
            if !cfg.dims.heads.is_multiple_of(layout.tp) {
                return Err(SimError::State(format!(
                    "hybrid_stop tensor-parallel degree {} does not divide the \
                     {} attention heads",
                    layout.tp, cfg.dims.heads
                )));
            }
            Ok(())
        }
    }
}

/// Construct the engine `spec` describes on the calling rank. All ranks
/// must pass the same spec and seed. The spec is validated against the
/// cluster world size and model shape first, so an infeasible request
/// fails with a clear [`SimError::State`] before any memory is charged.
///
/// In debug builds this additionally pre-flights the spec through the
/// static comm-plan analyzer (`orbit_comm::lint`) once per configuration
/// per process — a statically invalid program fails construction with the
/// first lint finding instead of hanging or diverging at runtime. Set
/// `ORBIT_LINT_PREFLIGHT=0` to opt out.
pub fn build_engine(
    ctx: &RankCtx,
    spec: EngineSpec,
    cfg: VitConfig,
    opt: AdamW,
    opts: TrainOptions,
    seed: u64,
) -> Result<Box<dyn Engine>, SimError> {
    validate_spec(&spec, ctx.world, &cfg)?;
    crate::lint::debug_preflight(ctx.machine(), ctx.world, &spec, &cfg, &opts)?;
    build_engine_inner(ctx, spec, cfg, opt, opts, seed)
}

/// [`build_engine`] without the debug pre-flight: validation plus
/// construction only. The lint extraction harness itself builds engines
/// through this entry point (the pre-flight would recurse).
pub(crate) fn build_engine_inner(
    ctx: &RankCtx,
    spec: EngineSpec,
    cfg: VitConfig,
    opt: AdamW,
    opts: TrainOptions,
    seed: u64,
) -> Result<Box<dyn Engine>, SimError> {
    validate_spec(&spec, ctx.world, &cfg)?;
    Ok(match spec {
        EngineSpec::Single => Box::new(SingleDeviceEngine::new(ctx, cfg, opt, opts, seed)?),
        EngineSpec::Ddp => Box::new(DdpEngine::new(ctx, cfg, opt, opts, seed)?),
        EngineSpec::Fsdp => Box::new(FsdpEngine::new(ctx, cfg, opt, opts, seed)?),
        EngineSpec::TensorParallel => {
            Box::new(TensorParallelEngine::new(ctx, cfg, opt, opts, seed)?)
        }
        EngineSpec::Pipeline => Box::new(PipelineEngine::new(ctx, cfg, opt, opts, seed)?),
        EngineSpec::HybridStop(layout) => {
            Box::new(HybridStopEngine::new(ctx, layout, cfg, opt, opts, seed)?)
        }
    })
}

/// The [`EngineSpec`] that executes a planner candidate: the bridge from
/// the analytic search in `orbit_frontier::planner` to the simulated
/// engines. Pipeline has no [`orbit_frontier::Strategy`] counterpart (the
/// planner never proposes it), so every candidate maps onto a spec.
pub fn spec_for_plan(candidate: &PlanCandidate) -> EngineSpec {
    match candidate.strategy {
        Strategy::SingleDevice => EngineSpec::Single,
        Strategy::Ddp => EngineSpec::Ddp,
        Strategy::Fsdp => EngineSpec::Fsdp,
        Strategy::TensorParallel => EngineSpec::TensorParallel,
        Strategy::HybridStop => EngineSpec::HybridStop(candidate.layout),
    }
}

/// Sustained per-GPU throughput used for simulated compute time, under an
/// explicit calibration (so experiments can sweep calibrations without
/// recompiling). Engines reach this through [`Trainer::sustained`].
pub(crate) fn sustained_flops(machine: &FrontierMachine, calib: &Calibration, mixed: bool) -> f64 {
    if mixed {
        machine.peak_bf16 * calib.mfu_bf16
    } else {
        machine.peak_fp32 * calib.mfu_fp32
    }
}

/// Slice a global batch into the local batch for data replica
/// `replica_id` of `n_replicas`, round-robin by sample index.
///
/// When the batch divides evenly every replica sees `global.len() /
/// n_replicas` samples. When it does not, the first `global.len() %
/// n_replicas` replicas receive one extra sample; **no sample is ever
/// dropped or duplicated** across the replicas. Engines whose collectives
/// need every replica in lockstep require the even case and assert it via
/// [`Trainer::partition`].
pub fn local_batch(global: &Batch, replica_id: usize, n_replicas: usize) -> Batch {
    assert!(replica_id < n_replicas);
    let mut out = Batch::default();
    for (s, (inp, tgt)) in global.inputs.iter().zip(&global.targets).enumerate() {
        if s % n_replicas == replica_id {
            out.inputs.push(inp.clone());
            out.targets.push(tgt.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbit_tensor::Tensor;

    fn batch(n: usize) -> Batch {
        Batch {
            inputs: (0..n).map(|s| vec![Tensor::full(2, 2, s as f32)]).collect(),
            targets: (0..n).map(|s| vec![Tensor::full(2, 2, s as f32)]).collect(),
        }
    }

    #[test]
    fn local_batches_partition_global() {
        let g = batch(6);
        let parts: Vec<Batch> = (0..3).map(|r| local_batch(&g, r, 3)).collect();
        assert!(parts.iter().all(|p| p.len() == 2));
        // Sample 0 goes to replica 0, sample 1 to replica 1, etc.
        assert_eq!(parts[0].inputs[0][0].get(0, 0), 0.0);
        assert_eq!(parts[1].inputs[0][0].get(0, 0), 1.0);
        assert_eq!(parts[2].inputs[1][0].get(0, 0), 5.0);
    }

    #[test]
    fn single_replica_gets_everything() {
        let g = batch(4);
        let l = local_batch(&g, 0, 1);
        assert_eq!(l.len(), 4);
    }

    #[test]
    fn uneven_batch_splits_without_dropping_samples() {
        // 7 samples over 3 replicas: the first 7 % 3 = 1 replica gets an
        // extra sample.
        let g = batch(7);
        let parts: Vec<Batch> = (0..3).map(|r| local_batch(&g, r, 3)).collect();
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        assert_eq!(sizes, vec![3, 2, 2], "remainder goes to the first replicas");
        // Every sample appears exactly once across all replicas.
        let mut seen: Vec<f32> = parts
            .iter()
            .flat_map(|p| p.inputs.iter().map(|t| t[0].get(0, 0)))
            .collect();
        seen.sort_by(f32::total_cmp);
        let expected: Vec<f32> = (0..7).map(|s| s as f32).collect();
        assert_eq!(seen, expected, "no sample dropped or duplicated");
    }

    #[test]
    fn engine_spec_names_are_stable() {
        assert_eq!(EngineSpec::Ddp.name(), "ddp");
        assert_eq!(
            EngineSpec::HybridStop(ParallelLayout::new(2, 2, 1)).name(),
            "hybrid_stop"
        );
    }

    /// Run `build_engine` with `spec` on a 4-rank cluster and assert every
    /// rank fails fast with a [`SimError::State`] whose message contains
    /// `needle`.
    fn assert_rejected(spec: EngineSpec, needle: &str) {
        let outcomes = orbit_comm::Cluster::frontier().try_run(4, |ctx| {
            // test_tiny has 2 heads and 2 layers, so every spec below is
            // infeasible at world 4 and must be rejected before any engine
            // state is built.
            build_engine(
                ctx,
                spec,
                VitConfig::test_tiny(),
                AdamW::default(),
                TrainOptions::none(),
                42,
            )
            .map(|_| ())
        });
        for outcome in &outcomes {
            match outcome.sim_error() {
                Some(SimError::State(msg)) => {
                    assert!(msg.contains(needle), "unexpected message: {msg}")
                }
                other => panic!("expected a State error, got {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_hybrid_layout_not_matching_world() {
        assert_rejected(
            EngineSpec::HybridStop(ParallelLayout::new(2, 2, 2)),
            "covers 8 ranks",
        );
    }

    #[test]
    fn rejects_tensor_parallel_exceeding_heads() {
        assert_rejected(EngineSpec::TensorParallel, "2 heads");
    }

    #[test]
    fn rejects_pipeline_with_more_stages_than_layers() {
        assert_rejected(EngineSpec::Pipeline, "2 layers");
    }

    #[test]
    fn plan_candidates_map_onto_specs() {
        use orbit_frontier::planner::Planner;
        let plan = Planner::new(FrontierMachine::default())
            .plan(&VitConfig::test_tiny().dims, 8, 8)
            .expect("a feasible plan at 8 GPUs");
        for cand in &plan.candidates {
            let spec = spec_for_plan(cand);
            if let EngineSpec::HybridStop(layout) = spec {
                assert_eq!(layout.world(), 8);
            }
        }
        assert_eq!(spec_for_plan(&plan.chosen).name(), plan.chosen_name());
    }
}
