//! Vanilla Fully Sharded Data Parallelism (paper Fig. 2).
//!
//! Parameters, gradients, and Adam moments are flat-sharded `1/N` per rank:
//! the persistent parameter state is a [`DTensor`] with `ShardFlat` layout
//! on a one-axis `fsdp` mesh. Each step, the **full model** is temporarily
//! resharded to `Replicate` for compute — the peak-memory pathology that
//! caps vanilla FSDP at ~20 B parameters in the paper's Fig. 5 — then the
//! `Partial` gradients reshard to `ShardFlat` (a reduce-scatter) so each
//! rank updates only its own shard.

use crate::dcomm::{comm_err, GroupComm};
use crate::stats::StepStats;
use orbit_comm::{Allocation, CommError, ProcessGroup, RankCtx, SimError};
use orbit_frontier::TrainOptions;
use orbit_tensor::dtensor::{flat_shard, padded_len};
use orbit_tensor::dtensor::{DTensor, DeviceMesh, Layout};
use orbit_tensor::kernels::{AdamState, AdamW};
use orbit_tensor::Tensor;
use orbit_vit::{config_fingerprint, Batch, Checkpoint, ShardData, VitConfig, VitModel};

use super::trainer::{configure_precision, Trainer};
use super::Engine;

/// Vanilla FSDP over the world group.
pub struct FsdpEngine {
    /// Model structure used for compute; its values are refreshed from the
    /// gathered parameters each step.
    pub model: VitModel,
    /// This rank's persistent parameter shard: `ShardFlat` over the `fsdp`
    /// mesh axis (padded flat layout, global shape `1 x param_len`).
    params: DTensor,
    state: AdamState,
    group: ProcessGroup,
    trainer: Trainer,
    param_len: usize,
    _persistent: Allocation,
}

impl FsdpEngine {
    /// Build rank `ctx.rank`'s shard. All ranks must pass the same seed.
    pub fn new(
        ctx: &RankCtx,
        mut cfg: VitConfig,
        opt: AdamW,
        opts: TrainOptions,
        seed: u64,
    ) -> Result<Self, orbit_comm::OomError> {
        configure_precision(&mut cfg, &opts);
        let mut model = VitModel::init(cfg, seed);
        let flat = model.flatten_params();
        let param_len = flat.len();
        let mesh = DeviceMesh::one("fsdp", ctx.world, ctx.rank);
        let params = DTensor::from_global(
            &Tensor::from_vec(1, param_len, flat),
            mesh,
            "fsdp",
            Layout::ShardFlat,
        )
        .expect("flat sharding is always legal");
        // Persistent: this rank's 1/N of weights+grads+Adam moments.
        let persistent = ctx.device.alloc(16 * params.local().len() as u64)?;
        let state = AdamState::new(params.local().len());
        let mut group = ctx.world_group();
        if opts.mixed_precision {
            group.set_wire_bytes(2.0);
        }
        Ok(FsdpEngine {
            group,
            trainer: Trainer::with_replicas(&cfg, opt, opts, ctx.rank, ctx.world),
            model,
            params,
            state,
            param_len,
            _persistent: persistent,
        })
    }

    /// Gather and return the current full parameter vector (for tests and
    /// checkpointing): `ShardFlat -> Replicate`.
    pub fn gather_full_params(&mut self, ctx: &mut RankCtx) -> Result<Vec<f32>, CommError> {
        let mut comm = GroupComm::new(&mut self.group, &mut ctx.clock);
        Ok(self
            .params
            .reshard("fsdp", Layout::Replicate, &mut comm)
            .map_err(comm_err)?
            .into_local()
            .into_vec())
    }

    /// Reshard an Adam-moment shard — which shares the parameters' flat
    /// layout — back to the full `1 x param_len` vector.
    fn gather_moment(&mut self, ctx: &mut RankCtx, shard: Vec<f32>) -> Result<Vec<f32>, CommError> {
        let n = shard.len();
        let t = DTensor::from_local_shard(
            Tensor::from_vec(1, n, shard),
            self.params.mesh().clone(),
            "fsdp",
            Layout::ShardFlat,
            1,
            self.param_len,
        )
        .expect("moment shard matches parameter layout");
        let mut comm = GroupComm::new(&mut self.group, &mut ctx.clock);
        Ok(t.reshard("fsdp", Layout::Replicate, &mut comm)
            .map_err(comm_err)?
            .into_local()
            .into_vec())
    }
}

impl Engine for FsdpEngine {
    /// One training step over the global batch.
    fn train_step(&mut self, ctx: &mut RankCtx, global: &Batch) -> Result<StepStats, SimError> {
        let local = self.trainer.partition(global);
        let t0 = ctx.clock.now();

        // ---- The vanilla-FSDP signature move: gather the FULL model. ----
        // A transient allocation the size of the whole model (parameters
        // now, matching gradients later) spikes the peak (Fig. 2).
        let full_padded = padded_len(self.param_len, self.group.size());
        let _gather_alloc = ctx
            .device
            .alloc(full_padded as u64 * self.trainer.param_bytes())?;
        let full = {
            let mut comm = GroupComm::new(&mut self.group, &mut ctx.clock);
            self.params
                .reshard_start(
                    "fsdp",
                    Layout::Replicate,
                    &mut comm,
                    self.trainer.opts.prefetch,
                )
                .map_err(comm_err)?
                .wait(&mut comm)
                .map_err(comm_err)?
        };
        self.model.load_flat_params(full.local().data());
        drop(full);

        let dims = self.model.cfg.dims;
        let _act = self.trainer.alloc_activations(ctx, &dims, local.len())?;
        // Full-size gradient buffer also lives transiently.
        let _grad_alloc = ctx
            .device
            .alloc(full_padded as u64 * self.trainer.param_bytes())?;

        let local_loss = self
            .trainer
            .microbatch_pass(&mut self.model, &local, global.len());
        self.trainer
            .charge_compute(ctx, local.len(), self.trainer.dense_flops_per_obs(&dims));
        ctx.clock.flush_prefetch();

        // Resolve the `Partial` gradients straight to `ShardFlat` — a
        // reduce-scatter: sum of data-parallel gradients, each rank keeps
        // its own shard. Issued nonblocking so the loss all-reduce (and on
        // slow arrivers, the peers' reduction work) proceeds while the
        // rendezvous completes.
        let grads = self.model.flatten_grads();
        let partial = DTensor::partial(
            Tensor::from_vec(1, self.param_len, grads),
            self.params.mesh().clone(),
            "fsdp",
        )
        .expect("fsdp axis");
        let pending = {
            let mut comm = GroupComm::new(&mut self.group, &mut ctx.clock);
            partial
                .reshard_start("fsdp", Layout::ShardFlat, &mut comm, false)
                .map_err(comm_err)?
        };
        let loss = self.group.all_reduce_scalar(&mut ctx.clock, local_loss)?;
        let mut shard_grads = {
            let mut comm = GroupComm::new(&mut self.group, &mut ctx.clock);
            pending
                .wait(&mut comm)
                .map_err(comm_err)?
                .into_local()
                .into_vec()
        };

        // Agree on finiteness across ranks: each inspects its shard.
        let applied = self.trainer.unscale_synced(
            &mut ctx.clock,
            &mut self.group,
            &mut [&mut shard_grads],
        )?;
        let grad_norm = self.trainer.clip_and_norm(&mut shard_grads);
        if applied {
            self.trainer.opt.step(
                &mut self.state,
                self.params.local_mut().data_mut(),
                &shard_grads,
            );
        }
        Ok(self.trainer.finish_step(ctx, t0, loss, grad_norm, applied))
    }

    /// Inference-only forward: the full parameter vector is transiently
    /// all-gathered (same peak-memory move as the training path, minus the
    /// gradient buffer), loaded into the local model structure, and the
    /// batch runs a plain local forward. Collective: every rank must call
    /// together with identical inputs; each returns the full predictions.
    fn predict(
        &mut self,
        ctx: &mut RankCtx,
        inputs: &[Vec<orbit_tensor::Tensor>],
    ) -> Result<Vec<Vec<orbit_tensor::Tensor>>, SimError> {
        let full_padded = padded_len(self.param_len, self.group.size());
        let _gather_alloc = ctx
            .device
            .alloc(full_padded as u64 * self.trainer.param_bytes())?;
        let full = self.gather_full_params(ctx)?;
        self.model.load_flat_params(&full);
        drop(full);
        let dims = self.model.cfg.dims;
        let preds = self.model.predict_batch(inputs);
        self.trainer
            .charge_compute(ctx, inputs.len(), dims.forward_flops() as f64);
        Ok(preds)
    }

    /// Reshard the parameter and Adam-moment shards to `Replicate` (three
    /// all-gathers). Identical on every rank (all shards flow to all ranks).
    fn capture_checkpoint(&mut self, ctx: &mut RankCtx) -> Result<Checkpoint, SimError> {
        let params = self.gather_full_params(ctx)?;
        let m_shard = self.state.m.clone();
        let m = self.gather_moment(ctx, m_shard)?;
        let v_shard = self.state.v.clone();
        let v = self.gather_moment(ctx, v_shard)?;
        Ok(
            Checkpoint::from_parts(&self.model.cfg, params, m, v, self.state.step)
                .with_scaler(self.trainer.scaler_state()),
        )
    }

    /// The gather-free fast path: when the requested slice is exactly this
    /// rank's persistent `ShardFlat` shard, copy it out locally — **no
    /// collective at all**, which is what makes sharded checkpointing
    /// scale (each of N ranks writes 1/N instead of gathering the full
    /// model N times). Any other slicing falls back to the generic
    /// gather-then-slice path.
    fn capture_shard(
        &mut self,
        ctx: &mut RankCtx,
        index: usize,
        count: usize,
    ) -> Result<ShardData, SimError> {
        if index == self.group.local_index() && count == self.group.size() {
            return Ok(ShardData::from_local_shards(
                index,
                count,
                config_fingerprint(&self.model.cfg),
                self.state.step,
                self.trainer.scaler_state(),
                self.param_len,
                self.params.local().data().to_vec(),
                self.state.m.clone(),
                self.state.v.clone(),
            ));
        }
        let ck = self.capture_checkpoint(ctx)?;
        Ok(ShardData::from_checkpoint(&ck, index, count))
    }

    /// Re-shard the full checkpoint onto this rank: 1/N slices of the
    /// parameters and both Adam moments. Shard padding is zero-filled by
    /// the `ShardFlat` lowering, matching a freshly trained shard
    /// bit-for-bit (pad positions only ever see zero gradients, so AdamW
    /// keeps them at 0).
    fn restore_checkpoint(&mut self, _ctx: &mut RankCtx, ck: &Checkpoint) -> Result<(), SimError> {
        if !ck.matches_config(&self.model.cfg) {
            return Err(SimError::State(
                "checkpoint fingerprint does not match model config".into(),
            ));
        }
        if ck.params.len() != self.param_len {
            return Err(SimError::State(format!(
                "checkpoint has {} params, model expects {}",
                ck.params.len(),
                self.param_len
            )));
        }
        let world = self.group.size();
        let me = self.group.local_index();
        self.params = DTensor::from_global(
            &Tensor::from_vec(1, self.param_len, ck.params.clone()),
            self.params.mesh().clone(),
            "fsdp",
            Layout::ShardFlat,
        )
        .expect("flat sharding is always legal");
        self.state.m = flat_shard(&ck.adam_m, world, me);
        self.state.v = flat_shard(&ck.adam_v, world, me);
        self.state.step = ck.adam_step;
        self.trainer.restore_scaler(ck.scaler);
        self.trainer.restore_generation(ck.adam_step);
        Ok(())
    }

    fn generation(&self) -> u64 {
        self.trainer.generation()
    }

    fn name(&self) -> &str {
        "fsdp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbit_comm::Cluster;
    use orbit_tensor::init::Rng;
    use orbit_vit::loss::lat_weights;

    fn make_batch(cfg: &VitConfig, n: usize, seed: u64) -> Batch {
        let mut rng = Rng::seed(seed);
        Batch {
            inputs: (0..n)
                .map(|_| {
                    (0..cfg.dims.channels)
                        .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                        .collect()
                })
                .collect(),
            targets: (0..n)
                .map(|_| {
                    (0..cfg.dims.out_channels)
                        .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                        .collect()
                })
                .collect(),
        }
    }

    #[test]
    fn fsdp_matches_single_device() {
        let cfg = VitConfig::test_tiny();
        let batch = make_batch(&cfg, 4, 11);
        let opt = AdamW::default();
        let w = lat_weights(cfg.dims.img_h);

        let mut reference = VitModel::init(cfg, 42);
        let mut state = reference.init_adam_state();
        let ref_losses: Vec<f32> = (0..3)
            .map(|_| reference.train_step(&batch, &w, &opt, &mut state))
            .collect();
        let ref_params = reference.flatten_params();

        let results = Cluster::frontier().run(4, |ctx| {
            let mut e = FsdpEngine::new(ctx, cfg, opt, TrainOptions::none(), 42).unwrap();
            let losses: Vec<f32> = (0..3)
                .map(|_| e.train_step(ctx, &batch).unwrap().loss)
                .collect();
            let params = e.gather_full_params(ctx).unwrap();
            (losses, params)
        });
        for (losses, params) in &results {
            for (a, b) in losses.iter().zip(&ref_losses) {
                assert!((a - b).abs() < 5e-4 * b.abs().max(1.0), "{a} vs {b}");
            }
            // The sharded optimizer reproduces the reference parameters.
            for (a, b) in params.iter().zip(&ref_params) {
                assert!((a - b).abs() < 5e-4 * b.abs().max(1e-3), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn local_capture_shard_matches_checkpoint_slicing() {
        // The gather-free path must produce the same bytes as gathering
        // the full checkpoint and slicing this rank's shard out of it.
        let cfg = VitConfig::test_tiny();
        let batch = make_batch(&cfg, 4, 7);
        let results = Cluster::frontier().run(4, |ctx| {
            let mut e =
                FsdpEngine::new(ctx, cfg, AdamW::default(), TrainOptions::none(), 3).unwrap();
            e.train_step(ctx, &batch).unwrap();
            let ck = e.capture_checkpoint(ctx).unwrap();
            let local = e.capture_shard(ctx, ctx.rank, ctx.world).unwrap();
            (ck, local)
        });
        for (rank, (ck, local)) in results.iter().enumerate() {
            let sliced = ShardData::from_checkpoint(ck, rank, 4);
            assert_eq!(&sliced, local, "rank {rank}");
        }
    }

    #[test]
    fn peak_memory_shows_full_model_gather() {
        // Persistent state is 1/N but peak includes the full gather: with
        // 4 ranks, peak must far exceed persistent.
        let cfg = VitConfig::test_tiny();
        let batch = make_batch(&cfg, 4, 1);
        let results = Cluster::frontier().run(4, |ctx| {
            let mut e =
                FsdpEngine::new(ctx, cfg, AdamW::default(), TrainOptions::none(), 1).unwrap();
            let persistent = ctx.device.in_use();
            let stats = e.train_step(ctx, &batch).unwrap();
            (persistent, stats.peak_mem)
        });
        for (persistent, peak) in results {
            assert!(
                peak as f64 > persistent as f64 * 1.4,
                "peak {peak} should spike well above persistent {persistent}"
            );
        }
    }
}
