//! Vanilla Fully Sharded Data Parallelism (paper Fig. 2).
//!
//! Parameters, gradients, and Adam moments are flat-sharded `1/N` per rank.
//! Each step, the **full model** is temporarily all-gathered for compute —
//! the peak-memory pathology that caps vanilla FSDP at ~20 B parameters in
//! the paper's Fig. 5 — then gradients are reduce-scattered so each rank
//! updates only its own shard.

use crate::scaler::GradScaler;
use crate::sharding::{flat_shard, flat_unshard, padded_len};
use crate::stats::StepStats;
use orbit_comm::{Allocation, ProcessGroup, RankCtx};
use orbit_frontier::TrainOptions;
use orbit_tensor::kernels::{AdamState, AdamW};
use orbit_tensor::Precision;
use orbit_vit::loss::{lat_weights, weighted_mse, weighted_mse_grad};
use orbit_vit::{Batch, VitConfig, VitModel};

use super::single::norm;
use super::{local_batch, sustained_flops};

/// Vanilla FSDP over the world group.
pub struct FsdpEngine {
    /// Model structure used for compute; its values are refreshed from the
    /// gathered parameters each step.
    pub model: VitModel,
    /// This rank's persistent parameter shard (padded flat layout).
    shard: Vec<f32>,
    state: AdamState,
    group: ProcessGroup,
    opt: AdamW,
    opts: TrainOptions,
    lat_w: Vec<f32>,
    scaler: GradScaler,
    replica_id: usize,
    n_replicas: usize,
    param_len: usize,
    _persistent: Allocation,
}

impl FsdpEngine {
    /// Build rank `ctx.rank`'s shard. All ranks must pass the same seed.
    pub fn new(
        ctx: &RankCtx,
        mut cfg: VitConfig,
        opt: AdamW,
        opts: TrainOptions,
        seed: u64,
    ) -> Result<Self, orbit_comm::OomError> {
        if opts.mixed_precision {
            cfg.precision = Precision::BF16Mixed;
        }
        let mut model = VitModel::init(cfg, seed);
        let flat = model.flatten_params();
        let param_len = flat.len();
        let shard = flat_shard(&flat, ctx.world, ctx.rank);
        // Persistent: this rank's 1/N of weights+grads+Adam moments.
        let persistent = ctx.device.alloc(16 * shard.len() as u64)?;
        let state = AdamState::new(shard.len());
        let mut group = ctx.world_group();
        if opts.mixed_precision {
            group.set_wire_bytes(2.0);
        }
        Ok(FsdpEngine {
            group,
            lat_w: lat_weights(cfg.dims.img_h),
            model,
            shard,
            state,
            opt,
            opts,
            scaler: GradScaler::default(),
            replica_id: ctx.rank,
            n_replicas: ctx.world,
            param_len,
            _persistent: persistent,
        })
    }

    /// One training step over the global batch.
    pub fn train_step(
        &mut self,
        ctx: &mut RankCtx,
        global: &Batch,
    ) -> Result<StepStats, orbit_comm::OomError> {
        let global_n = global.len();
        assert_eq!(
            global_n % self.n_replicas,
            0,
            "global batch {global_n} must divide by {} replicas",
            self.n_replicas
        );
        let local = local_batch(global, self.replica_id, self.n_replicas);
        let t0 = ctx.clock.now();

        // ---- The vanilla-FSDP signature move: gather the FULL model. ----
        // A transient allocation the size of the whole model (parameters
        // now, matching gradients later) spikes the peak (Fig. 2).
        let full_padded = padded_len(self.param_len, self.n_replicas);
        let bytes_per = if self.opts.mixed_precision { 2 } else { 4 };
        let _gather_alloc = ctx.device.alloc(full_padded as u64 * bytes_per)?;
        let full = if self.opts.prefetch {
            self.group.all_gather_prefetched(&mut ctx.clock, &self.shard)
        } else {
            self.group.all_gather(&mut ctx.clock, &self.shard)
        };
        self.model.load_flat_params(&flat_unshard(&full, self.param_len));
        drop(full);

        let dims = self.model.cfg.dims;
        let act_floats = if self.opts.activation_checkpointing {
            dims.tokens() * dims.embed * (dims.layers + 2)
        } else {
            dims.tokens() * dims.embed * (8 * dims.layers + dims.channels)
        };
        let _act = ctx.device.alloc((local.len() * act_floats) as u64 * 4)?;
        // Full-size gradient buffer also lives transiently.
        let _grad_alloc = ctx.device.alloc(full_padded as u64 * bytes_per)?;

        self.model.zero_grads();
        let scale = 1.0 / global_n as f32;
        let loss_scale = if self.opts.mixed_precision {
            self.scaler.scale()
        } else {
            1.0
        };
        let mut local_loss = 0.0f32;
        for (images, targets) in local.inputs.iter().zip(&local.targets) {
            if self.opts.activation_checkpointing {
                let (preds, boundaries) = self.model.forward_ckpt(images);
                local_loss += weighted_mse(&preds, targets, &self.lat_w) * scale;
                let mut d = weighted_mse_grad(&preds, targets, &self.lat_w);
                for g in &mut d {
                    g.scale(scale * loss_scale);
                }
                self.model.backward_ckpt(images, &boundaries, &d);
            } else {
                let fwd = self.model.forward(images);
                local_loss += weighted_mse(&fwd.preds, targets, &self.lat_w) * scale;
                let mut d = weighted_mse_grad(&fwd.preds, targets, &self.lat_w);
                for g in &mut d {
                    g.scale(scale * loss_scale);
                }
                self.model.backward(&fwd, &d);
            }
        }
        let per_obs = dims.train_flops() as f64
            * if self.opts.activation_checkpointing { 4.0 / 3.0 } else { 1.0 };
        ctx.clock.charge_compute(
            local.len() as f64 * per_obs,
            sustained_flops(ctx.machine(), self.opts.mixed_precision),
        );
        ctx.clock.flush_prefetch();

        // Reduce-scatter: sum of data-parallel gradients, each rank keeps
        // its own shard.
        let mut grads = self.model.flatten_grads();
        grads.resize(full_padded, 0.0);
        let mut shard_grads = self.group.reduce_scatter(&mut ctx.clock, &grads);
        drop(grads);

        let mut applied = true;
        if self.opts.mixed_precision {
            // Agree on finiteness across ranks: each inspects its shard.
            let inv = 1.0 / self.scaler.scale();
            let mut local_nonfinite = 0.0f32;
            for g in shard_grads.iter_mut() {
                *g *= inv;
                if !g.is_finite() {
                    local_nonfinite = 1.0;
                }
            }
            let total = self.group.all_reduce_scalar(&mut ctx.clock, local_nonfinite);
            applied = total == 0.0;
            self.scaler.update(applied);
        }
        let grad_norm = norm(&shard_grads);
        if applied {
            self.opt.step(&mut self.state, &mut self.shard, &shard_grads);
        }
        let loss = self.group.all_reduce_scalar(&mut ctx.clock, local_loss);
        Ok(StepStats {
            loss,
            grad_norm,
            sim_time: ctx.clock.now() - t0,
            peak_mem: ctx.device.peak(),
            applied,
        })
    }

    /// Gather and return the current full parameter vector (for tests and
    /// checkpointing).
    pub fn gather_full_params(&mut self, ctx: &mut RankCtx) -> Vec<f32> {
        let full = self.group.all_gather(&mut ctx.clock, &self.shard);
        flat_unshard(&full, self.param_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbit_comm::Cluster;
    use orbit_tensor::init::Rng;

    fn make_batch(cfg: &VitConfig, n: usize, seed: u64) -> Batch {
        let mut rng = Rng::seed(seed);
        Batch {
            inputs: (0..n)
                .map(|_| {
                    (0..cfg.dims.channels)
                        .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                        .collect()
                })
                .collect(),
            targets: (0..n)
                .map(|_| {
                    (0..cfg.dims.out_channels)
                        .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                        .collect()
                })
                .collect(),
        }
    }

    #[test]
    fn fsdp_matches_single_device() {
        let cfg = VitConfig::test_tiny();
        let batch = make_batch(&cfg, 4, 11);
        let opt = AdamW::default();
        let w = lat_weights(cfg.dims.img_h);

        let mut reference = VitModel::init(cfg, 42);
        let mut state = reference.init_adam_state();
        let ref_losses: Vec<f32> = (0..3)
            .map(|_| reference.train_step(&batch, &w, &opt, &mut state))
            .collect();
        let ref_params = reference.flatten_params();

        let results = Cluster::frontier().run(4, |ctx| {
            let mut e = FsdpEngine::new(ctx, cfg, opt, TrainOptions::none(), 42).unwrap();
            let losses: Vec<f32> = (0..3)
                .map(|_| e.train_step(ctx, &batch).unwrap().loss)
                .collect();
            let params = e.gather_full_params(ctx);
            (losses, params)
        });
        for (losses, params) in &results {
            for (a, b) in losses.iter().zip(&ref_losses) {
                assert!((a - b).abs() < 5e-4 * b.abs().max(1.0), "{a} vs {b}");
            }
            // The sharded optimizer reproduces the reference parameters.
            for (a, b) in params.iter().zip(&ref_params) {
                assert!((a - b).abs() < 5e-4 * b.abs().max(1e-3), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn peak_memory_shows_full_model_gather() {
        // Persistent state is 1/N but peak includes the full gather: with
        // 4 ranks, peak must far exceed persistent.
        let cfg = VitConfig::test_tiny();
        let batch = make_batch(&cfg, 4, 1);
        let results = Cluster::frontier().run(4, |ctx| {
            let mut e = FsdpEngine::new(ctx, cfg, AdamW::default(), TrainOptions::none(), 1).unwrap();
            let persistent = ctx.device.in_use();
            let stats = e.train_step(ctx, &batch).unwrap();
            (persistent, stats.peak_mem)
        });
        for (persistent, peak) in results {
            assert!(
                peak as f64 > persistent as f64 * 1.4,
                "peak {peak} should spike well above persistent {persistent}"
            );
        }
    }
}
