//! Megatron-style tensor parallelism (the paper's Sec. II baseline).
//!
//! Block weights are permanently sharded across the tensor-parallel group
//! (columns of Wq/Wk/Wv/W1 — i.e. a slice of heads and MLP hidden units —
//! rows of Wo/W2); activations are summed by all-reduce every sub-layer.
//! All ranks process the *same* data (one model replica). Scalability is
//! capped by the attention head count — the limitation Hybrid-STOP removes.

use crate::stats::StepStats;
use crate::tp_block::TpBlock;
use orbit_comm::{Allocation, ProcessGroup, RankCtx};
use orbit_frontier::TrainOptions;
use orbit_tensor::kernels::{AdamState, AdamW};
use orbit_vit::block::Param;
use orbit_vit::loss::weighted_mse;
use orbit_vit::{Batch, VitConfig, VitModel};

use super::trainer::{configure_precision, Trainer};
use super::Engine;

/// Flatten a TpBlock's parameter values in visit order.
pub(crate) fn tp_flatten(block: &mut TpBlock) -> Vec<f32> {
    let mut out = Vec::new();
    block.visit_params("", &mut |_, p: &mut Param| {
        out.extend_from_slice(p.value.data())
    });
    out
}

/// Flatten a TpBlock's gradients in visit order.
pub(crate) fn tp_flatten_grads(block: &mut TpBlock) -> Vec<f32> {
    let mut out = Vec::new();
    block.visit_params("", &mut |_, p: &mut Param| {
        out.extend_from_slice(p.grad.data())
    });
    out
}

/// Load a TpBlock's parameter values from a flat vector in visit order.
pub(crate) fn tp_load(block: &mut TpBlock, flat: &[f32]) {
    let mut off = 0;
    block.visit_params("", &mut |_, p: &mut Param| {
        let n = p.len();
        p.value.data_mut().copy_from_slice(&flat[off..off + n]);
        off += n;
    });
    assert_eq!(off, flat.len(), "flat length mismatch");
}

/// Load a TpBlock's gradients from a flat vector in visit order.
pub(crate) fn tp_load_grads(block: &mut TpBlock, flat: &[f32]) {
    let mut off = 0;
    block.visit_params("", &mut |_, p: &mut Param| {
        let n = p.len();
        p.grad.data_mut().copy_from_slice(&flat[off..off + n]);
        off += n;
    });
    assert_eq!(off, flat.len(), "flat length mismatch");
}

/// All-reduce the QK-norm parameter gradients across the tensor-parallel
/// group: each rank only saw its local heads, and the parameters are
/// shared across heads.
pub(crate) fn sync_qk_grads(
    block: &mut TpBlock,
    tp_group: &mut ProcessGroup,
    clock: &mut orbit_comm::SimClock,
) {
    if tp_group.size() <= 1 {
        return;
    }
    if let Some(qk) = block.qk.as_mut() {
        for p in qk.iter_mut() {
            let summed = tp_group.all_reduce(clock, p.grad.data());
            p.grad.data_mut().copy_from_slice(&summed);
        }
    }
}

/// Pure tensor parallelism over the world group (one model replica).
pub struct TensorParallelEngine {
    /// Front-end + head (replicated on every rank; `blocks` is empty).
    pub front: VitModel,
    /// This rank's tensor-parallel block shards.
    pub blocks: Vec<TpBlock>,
    tp_group: ProcessGroup,
    state: AdamState,
    trainer: Trainer,
    tp: usize,
    _persistent: Allocation,
}

impl TensorParallelEngine {
    /// Build rank `ctx.rank`'s shard; the whole world is one TP group.
    /// Requires `world` to divide the head count.
    pub fn new(
        ctx: &RankCtx,
        mut cfg: VitConfig,
        opt: AdamW,
        opts: TrainOptions,
        seed: u64,
    ) -> Result<Self, orbit_comm::OomError> {
        configure_precision(&mut cfg, &opts);
        let tp = ctx.world;
        let reference = VitModel::init(cfg, seed);
        let blocks: Vec<TpBlock> = reference
            .blocks
            .iter()
            .map(|b| TpBlock::from_reference(b, tp, ctx.rank))
            .collect();
        let mut front = reference;
        front.blocks = Vec::new();
        let mut n = front.param_count() as u64;
        for b in &blocks {
            let mut b = b.clone();
            n += tp_flatten(&mut b).len() as u64;
        }
        let persistent = ctx.device.alloc(16 * n)?;
        let state = AdamState::new(n as usize);
        let mut tp_group = ctx.world_group();
        if opts.mixed_precision {
            tp_group.set_wire_bytes(2.0);
        }
        Ok(TensorParallelEngine {
            tp_group,
            trainer: Trainer::new(&cfg, opt, opts),
            front,
            blocks,
            state,
            tp,
            _persistent: persistent,
        })
    }

    fn flatten_all(&mut self) -> (Vec<f32>, Vec<f32>) {
        let mut params = self.front.flatten_params();
        let mut grads = self.front.flatten_grads();
        for b in &mut self.blocks {
            params.extend(tp_flatten(b));
            grads.extend(tp_flatten_grads(b));
        }
        (params, grads)
    }

    fn load_all(&mut self, params: &[f32]) {
        let front_len = {
            let mut n = 0;
            self.front.visit_params(&mut |_, p| n += p.len());
            n
        };
        self.front.load_flat_params(&params[..front_len]);
        let mut off = front_len;
        for b in &mut self.blocks {
            let len = {
                let mut n = 0;
                b.visit_params("", &mut |_, p: &mut Param| n += p.len());
                n
            };
            tp_load(b, &params[off..off + len]);
            off += len;
        }
    }
}

impl Engine for TensorParallelEngine {
    /// One training step; every rank receives the same (whole) batch.
    fn train_step(
        &mut self,
        ctx: &mut RankCtx,
        batch: &Batch,
    ) -> Result<StepStats, orbit_comm::OomError> {
        assert!(!batch.is_empty());
        let dims = self.front.cfg.dims;
        let t0 = ctx.clock.now();
        // Activations: wide intermediates sharded /tp, residual replicated.
        let act_floats = dims.tokens()
            * dims.embed
            * (6 * dims.layers / self.tp + 2 * dims.layers + dims.channels);
        let _act = ctx.device.alloc((batch.len() * act_floats) as u64 * 4)?;

        self.front.zero_grads();
        for b in &mut self.blocks {
            b.zero_grads();
        }
        let scale = 1.0 / batch.len() as f32;
        let mut loss = 0.0f32;
        for (images, targets) in batch.inputs.iter().zip(&batch.targets) {
            let (x0, front_cache) = self.front.front_forward(images);
            let mut x = x0;
            let mut caches = Vec::with_capacity(self.blocks.len());
            for b in &self.blocks {
                let (y, c) = b.forward(&x, &mut self.tp_group, &mut ctx.clock);
                caches.push(c);
                x = y;
            }
            let preds = self.front.head_forward(&x);
            loss += weighted_mse(&preds, targets, &self.trainer.lat_w) * scale;
            let d = self.trainer.loss_grad(&preds, targets, scale);
            let mut dy = self.front.head_backward(&x, &d);
            for (b, c) in self.blocks.iter_mut().zip(caches.iter()).rev() {
                dy = b.backward(c, &dy, &mut self.tp_group, &mut ctx.clock);
            }
            self.front.front_backward(&front_cache, &dy);
        }
        // QK-norm grads are partial per head slice: sum across the group.
        for b in &mut self.blocks {
            sync_qk_grads(b, &mut self.tp_group, &mut ctx.clock);
        }
        // Compute: this rank executed ~1/tp of the block FLOPs plus the
        // replicated front-end.
        let per_obs = dims.train_flops() as f64 / self.tp as f64;
        self.trainer.charge_compute(ctx, batch.len(), per_obs);

        let (mut params, mut grads) = self.flatten_all();
        let applied =
            self.trainer
                .unscale_synced(&mut ctx.clock, &mut self.tp_group, &mut [&mut grads]);
        let grad_norm = self.trainer.clip_and_norm(&mut grads);
        if applied {
            self.trainer.opt.step(&mut self.state, &mut params, &grads);
            self.load_all(&params);
        }
        Ok(self.trainer.finish_step(ctx, t0, loss, grad_norm, applied))
    }

    fn name(&self) -> &str {
        "tensor_parallel"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbit_comm::Cluster;
    use orbit_tensor::init::Rng;
    use orbit_vit::loss::lat_weights;

    fn make_batch(cfg: &VitConfig, n: usize, seed: u64) -> Batch {
        let mut rng = Rng::seed(seed);
        Batch {
            inputs: (0..n)
                .map(|_| {
                    (0..cfg.dims.channels)
                        .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                        .collect()
                })
                .collect(),
            targets: (0..n)
                .map(|_| {
                    (0..cfg.dims.out_channels)
                        .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                        .collect()
                })
                .collect(),
        }
    }

    #[test]
    fn tp_matches_single_device_losses() {
        let cfg = VitConfig::test_tiny(); // 2 heads -> tp up to 2
        let batch = make_batch(&cfg, 2, 13);
        let opt = AdamW::default();
        let w = lat_weights(cfg.dims.img_h);
        let mut reference = VitModel::init(cfg, 42);
        let mut state = reference.init_adam_state();
        let ref_losses: Vec<f32> = (0..3)
            .map(|_| reference.train_step(&batch, &w, &opt, &mut state))
            .collect();
        for tp in [1usize, 2] {
            let results = Cluster::frontier().run(tp, |ctx| {
                let mut e =
                    TensorParallelEngine::new(ctx, cfg, opt, TrainOptions::none(), 42).unwrap();
                (0..3)
                    .map(|_| e.train_step(ctx, &batch).unwrap().loss)
                    .collect::<Vec<_>>()
            });
            for losses in &results {
                for (a, b) in losses.iter().zip(&ref_losses) {
                    assert!(
                        (a - b).abs() < 5e-4 * b.abs().max(1.0),
                        "tp={tp}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn tp_shards_reduce_persistent_memory() {
        let cfg = VitConfig::test_tiny();
        let persistent_1 = Cluster::frontier().run(1, |ctx| {
            let _e = TensorParallelEngine::new(ctx, cfg, AdamW::default(), TrainOptions::none(), 1)
                .unwrap();
            ctx.device.in_use()
        })[0];
        let persistent_2 = Cluster::frontier().run(2, |ctx| {
            let _e = TensorParallelEngine::new(ctx, cfg, AdamW::default(), TrainOptions::none(), 1)
                .unwrap();
            ctx.device.in_use()
        })[0];
        assert!(
            persistent_2 < persistent_1,
            "sharding must shrink per-rank state: {persistent_2} !< {persistent_1}"
        );
    }
}
