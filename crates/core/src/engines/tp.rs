//! Megatron-style tensor parallelism (the paper's Sec. II baseline).
//!
//! Block weights are permanently sharded across the tensor-parallel group
//! (columns of Wq/Wk/Wv/W1 — i.e. a slice of heads and MLP hidden units —
//! rows of Wo/W2); activations are summed by all-reduce every sub-layer.
//! All ranks process the *same* data (one model replica). Scalability is
//! capped by the attention head count — the limitation Hybrid-STOP removes.

use crate::dcomm::{comm_err, GroupComm};
use crate::stats::StepStats;
use crate::tp_block::TpBlock;
use orbit_comm::{Allocation, CommError, ProcessGroup, RankCtx, SimClock, SimError};
use orbit_frontier::TrainOptions;
use orbit_tensor::dtensor::{DTensor, Layout};
use orbit_tensor::kernels::{AdamState, AdamW};
use orbit_tensor::Tensor;
use orbit_vit::block::Param;
use orbit_vit::loss::weighted_mse;
use orbit_vit::{Batch, Checkpoint, VitConfig, VitModel};

use super::trainer::{configure_precision, Trainer};
use super::Engine;

/// Flatten a TpBlock's parameter values in visit order.
pub(crate) fn tp_flatten(block: &mut TpBlock) -> Vec<f32> {
    let mut out = Vec::new();
    block.visit_params("", &mut |_, p: &mut Param| {
        out.extend_from_slice(p.value.data())
    });
    out
}

/// Flatten a TpBlock's gradients in visit order.
pub(crate) fn tp_flatten_grads(block: &mut TpBlock) -> Vec<f32> {
    let mut out = Vec::new();
    block.visit_params("", &mut |_, p: &mut Param| {
        out.extend_from_slice(p.grad.data())
    });
    out
}

/// Load a TpBlock's parameter values from a flat vector in visit order.
pub(crate) fn tp_load(block: &mut TpBlock, flat: &[f32]) {
    let mut off = 0;
    block.visit_params("", &mut |_, p: &mut Param| {
        let n = p.len();
        p.value.data_mut().copy_from_slice(&flat[off..off + n]);
        off += n;
    });
    assert_eq!(off, flat.len(), "flat length mismatch");
}

/// Load a TpBlock's gradients from a flat vector in visit order.
pub(crate) fn tp_load_grads(block: &mut TpBlock, flat: &[f32]) {
    let mut off = 0;
    block.visit_params("", &mut |_, p: &mut Param| {
        let n = p.len();
        p.grad.data_mut().copy_from_slice(&flat[off..off + n]);
        off += n;
    });
    assert_eq!(off, flat.len(), "flat length mismatch");
}

/// All-reduce the QK-norm parameter gradients across the tensor-parallel
/// group: each rank only saw its local heads, and the parameters are
/// shared across heads.
pub(crate) fn sync_qk_grads(
    block: &mut TpBlock,
    tp_group: &mut ProcessGroup,
    clock: &mut SimClock,
) -> Result<(), CommError> {
    if tp_group.size() <= 1 {
        return Ok(());
    }
    let mesh = block.mesh.clone();
    if let Some(qk) = block.qk.as_mut() {
        for p in qk.iter_mut() {
            let partial = DTensor::partial(p.grad.clone(), mesh.clone(), "tp").expect("tp axis");
            let mut comm = GroupComm::new(tp_group, clock);
            p.grad = partial
                .reshard("tp", Layout::Replicate, &mut comm)
                .map_err(comm_err)?
                .into_local();
        }
    }
    Ok(())
}

/// Reassemble a full transformer block's flat parameters (reference visit
/// order) from all TP ranks' shard blocks.
pub(crate) fn reassemble_block(shards: &mut [TpBlock]) -> Vec<f32> {
    let tp = shards.len();
    // Collect (name, value) per shard in visit order.
    let mut per_shard: Vec<Vec<(String, Tensor)>> = Vec::with_capacity(tp);
    for s in shards.iter_mut() {
        let mut entries = Vec::new();
        s.visit_params("", &mut |name: &str, p: &mut Param| {
            entries.push((name.to_string(), p.value.clone()));
        });
        per_shard.push(entries);
    }
    let n_tensors = per_shard[0].len();
    let mut out = Vec::new();
    for t in 0..n_tensors {
        let name = per_shard[0][t].0.clone();
        let parts: Vec<&Tensor> = per_shard.iter().map(|s| &s[t].1).collect();
        let full = if TpBlock::is_replicated(&name) {
            parts[0].clone()
        } else if name.ends_with(".wo") || name.ends_with(".w2") {
            Tensor::concat_rows(&parts)
        } else {
            // Column-sharded: wq/bq/wk/bk/wv/bv/w1/b1.
            Tensor::concat_cols(&parts)
        };
        out.extend_from_slice(full.data());
    }
    out
}

/// Assemble a reference-ordered full flat vector from TP-sharded pieces:
/// `front_flat` is the replicated front-end/head flat (visit order: front
/// then head), `block_flats[l]` is this rank's TP-shard flat for block `l`.
/// All-gathers each block across the TP group, reassembles the column/row
/// shards into full matrices, and splices the head back after the blocks
/// (reference order). The same routine serves parameters and Adam moments
/// — any vector laid out like the parameters. Result is identical on every
/// rank.
pub(crate) fn assemble_reference(
    cfg: &VitConfig,
    blocks: &[TpBlock],
    tp_group: &mut ProcessGroup,
    clock: &mut SimClock,
    front_flat: &[f32],
    block_flats: &[Vec<f32>],
) -> Result<Vec<f32>, CommError> {
    let d = cfg.dims;
    let out_c = d.out_channels * d.patch * d.patch;
    let head_len = d.embed * out_c + out_c;
    let pre_len = front_flat.len() - head_len;
    let tp = tp_group.size();
    let mut full = Vec::new();
    full.extend_from_slice(&front_flat[..pre_len]);
    for (l, flat) in block_flats.iter().enumerate() {
        let all_tp = tp_group.all_gather(clock, flat)?;
        let shard_len = flat.len();
        // Load each TP rank's flat into a scratch TpBlock to recover
        // tensor shapes, then reassemble the full block tensors.
        let mut scratch: Vec<TpBlock> = (0..tp).map(|_| blocks[l].clone()).collect();
        for (k, s) in scratch.iter_mut().enumerate() {
            tp_load(s, &all_tp[k * shard_len..(k + 1) * shard_len]);
        }
        full.extend(reassemble_block(&mut scratch));
    }
    full.extend_from_slice(&front_flat[pre_len..]);
    Ok(full)
}

/// The inverse of [`assemble_reference`]: re-shard a reference-ordered full
/// flat vector into this TP rank's local layout. Returns the front
/// flat (front-end + head, visit order) and one TP-shard flat per block.
/// Pure slicing/permutation of the input values, so restoring into the
/// same layout that captured a checkpoint is bit-exact.
pub(crate) fn reshard_reference(
    cfg: &VitConfig,
    tp: usize,
    tp_idx: usize,
    full: &[f32],
) -> (Vec<f32>, Vec<Vec<f32>>) {
    // A scratch reference model recovers tensor shapes; every value is
    // overwritten by `full` before slicing.
    let mut reference = VitModel::init(*cfg, 0);
    reference.load_flat_params(full);
    let block_flats: Vec<Vec<f32>> = reference
        .blocks
        .iter()
        .map(|b| {
            let mut tb = TpBlock::from_reference(b, tp, tp_idx);
            tp_flatten(&mut tb)
        })
        .collect();
    let mut front = reference;
    front.blocks = Vec::new();
    (front.flatten_params(), block_flats)
}

/// Pure tensor parallelism over the world group (one model replica).
pub struct TensorParallelEngine {
    /// Front-end + head (replicated on every rank; `blocks` is empty).
    pub front: VitModel,
    /// This rank's tensor-parallel block shards.
    pub blocks: Vec<TpBlock>,
    tp_group: ProcessGroup,
    state: AdamState,
    trainer: Trainer,
    tp: usize,
    _persistent: Allocation,
}

impl TensorParallelEngine {
    /// Build rank `ctx.rank`'s shard; the whole world is one TP group.
    /// Requires `world` to divide the head count.
    pub fn new(
        ctx: &RankCtx,
        mut cfg: VitConfig,
        opt: AdamW,
        opts: TrainOptions,
        seed: u64,
    ) -> Result<Self, orbit_comm::OomError> {
        configure_precision(&mut cfg, &opts);
        let tp = ctx.world;
        let reference = VitModel::init(cfg, seed);
        let blocks: Vec<TpBlock> = reference
            .blocks
            .iter()
            .map(|b| TpBlock::from_reference(b, tp, ctx.rank))
            .collect();
        let mut front = reference;
        front.blocks = Vec::new();
        let mut n = front.param_count() as u64;
        for b in &blocks {
            let mut b = b.clone();
            n += tp_flatten(&mut b).len() as u64;
        }
        let persistent = ctx.device.alloc(16 * n)?;
        let state = AdamState::new(n as usize);
        let mut tp_group = ctx.world_group();
        if opts.mixed_precision {
            tp_group.set_wire_bytes(2.0);
        }
        Ok(TensorParallelEngine {
            tp_group,
            trainer: Trainer::new(&cfg, opt, opts),
            front,
            blocks,
            state,
            tp,
            _persistent: persistent,
        })
    }

    fn flatten_all(&mut self) -> (Vec<f32>, Vec<f32>) {
        let mut params = self.front.flatten_params();
        let mut grads = self.front.flatten_grads();
        for b in &mut self.blocks {
            params.extend(tp_flatten(b));
            grads.extend(tp_flatten_grads(b));
        }
        (params, grads)
    }

    fn load_all(&mut self, params: &[f32]) {
        let front_len = {
            let mut n = 0;
            self.front.visit_params(&mut |_, p| n += p.len());
            n
        };
        self.front.load_flat_params(&params[..front_len]);
        let mut off = front_len;
        for b in &mut self.blocks {
            let len = {
                let mut n = 0;
                b.visit_params("", &mut |_, p: &mut Param| n += p.len());
                n
            };
            tp_load(b, &params[off..off + len]);
            off += len;
        }
    }
}

impl Engine for TensorParallelEngine {
    /// One training step; every rank receives the same (whole) batch.
    fn train_step(&mut self, ctx: &mut RankCtx, batch: &Batch) -> Result<StepStats, SimError> {
        assert!(!batch.is_empty());
        let dims = self.front.cfg.dims;
        let t0 = ctx.clock.now();
        // Activations: wide intermediates sharded /tp, residual replicated.
        let act_floats = dims.tokens()
            * dims.embed
            * (6 * dims.layers / self.tp + 2 * dims.layers + dims.channels);
        let _act = ctx.device.alloc((batch.len() * act_floats) as u64 * 4)?;

        self.front.zero_grads();
        for b in &mut self.blocks {
            b.zero_grads();
        }
        let scale = 1.0 / batch.len() as f32;
        let mut loss = 0.0f32;
        for (images, targets) in batch.inputs.iter().zip(&batch.targets) {
            let (x0, front_cache) = self.front.front_forward(images);
            let mut x = x0;
            let mut caches = Vec::with_capacity(self.blocks.len());
            for b in &self.blocks {
                let (y, c) = b.forward(&x, &mut self.tp_group, &mut ctx.clock)?;
                caches.push(c);
                x = y;
            }
            let preds = self.front.head_forward(&x);
            loss += weighted_mse(&preds, targets, &self.trainer.lat_w) * scale;
            let d = self.trainer.loss_grad(&preds, targets, scale);
            let mut dy = self.front.head_backward(&x, &d);
            for (b, c) in self.blocks.iter_mut().zip(caches.iter()).rev() {
                dy = b.backward(c, &dy, &mut self.tp_group, &mut ctx.clock)?;
            }
            self.front.front_backward(&front_cache, &dy);
        }
        // QK-norm grads are partial per head slice: sum across the group.
        for b in &mut self.blocks {
            sync_qk_grads(b, &mut self.tp_group, &mut ctx.clock)?;
        }
        // Compute: this rank executed ~1/tp of the block FLOPs plus the
        // replicated front-end.
        let per_obs = dims.train_flops() as f64 / self.tp as f64;
        self.trainer.charge_compute(ctx, batch.len(), per_obs);

        let (mut params, mut grads) = self.flatten_all();
        let applied =
            self.trainer
                .unscale_synced(&mut ctx.clock, &mut self.tp_group, &mut [&mut grads])?;
        let grad_norm = self.trainer.clip_and_norm(&mut grads);
        if applied {
            self.trainer.opt.step(&mut self.state, &mut params, &grads);
            self.load_all(&params);
        }
        Ok(self.trainer.finish_step(ctx, t0, loss, grad_norm, applied))
    }

    /// Inference-only forward through the sharded blocks. Collective:
    /// every TP rank must call this together with identical inputs (the
    /// block forwards all-reduce activations every sub-layer); each rank
    /// returns the full predictions. Charges ~1/tp of the forward FLOPs.
    fn predict(
        &mut self,
        ctx: &mut RankCtx,
        inputs: &[Vec<Tensor>],
    ) -> Result<Vec<Vec<Tensor>>, SimError> {
        let dims = self.front.cfg.dims;
        let mut preds = Vec::with_capacity(inputs.len());
        for images in inputs {
            let (x0, _front_cache) = self.front.front_forward(images);
            let mut x = x0;
            for b in &self.blocks {
                let (y, _c) = b.forward(&x, &mut self.tp_group, &mut ctx.clock)?;
                x = y;
            }
            preds.push(self.front.head_forward(&x));
        }
        let per_obs = dims.forward_flops() as f64 / self.tp as f64;
        self.trainer.charge_compute(ctx, inputs.len(), per_obs);
        Ok(preds)
    }

    /// Assemble the full reference model: the front is replicated locally;
    /// blocks (parameters and Adam moments alike) are TP all-gathered and
    /// reassembled into reference order. Moments of TP-replicated tensors
    /// are identical across ranks (their gradients are synced every step),
    /// so taking one copy is exact.
    fn capture_checkpoint(&mut self, ctx: &mut RankCtx) -> Result<Checkpoint, SimError> {
        let front_len = self.front.flatten_params().len();
        let front_flat = self.front.flatten_params();
        let mut block_flats = Vec::with_capacity(self.blocks.len());
        for b in &mut self.blocks {
            block_flats.push(tp_flatten(b));
        }
        let cfg = self.front.cfg;
        let assemble = |vec: &[f32],
                        tp_group: &mut ProcessGroup,
                        blocks: &[TpBlock],
                        clock: &mut SimClock|
         -> Result<Vec<f32>, CommError> {
            // Split a local-layout flat [front, block 0, ..] into pieces.
            let front_part = &vec[..front_len];
            let mut parts = Vec::with_capacity(block_flats.len());
            let mut off = front_len;
            for f in &block_flats {
                parts.push(vec[off..off + f.len()].to_vec());
                off += f.len();
            }
            assemble_reference(&cfg, blocks, tp_group, clock, front_part, &parts)
        };
        let local: Vec<f32> = {
            let mut v = front_flat.clone();
            for f in &block_flats {
                v.extend_from_slice(f);
            }
            v
        };
        let params = assemble(&local, &mut self.tp_group, &self.blocks, &mut ctx.clock)?;
        let m = assemble(
            &self.state.m.clone(),
            &mut self.tp_group,
            &self.blocks,
            &mut ctx.clock,
        )?;
        let v = assemble(
            &self.state.v.clone(),
            &mut self.tp_group,
            &self.blocks,
            &mut ctx.clock,
        )?;
        Ok(Checkpoint::from_parts(&cfg, params, m, v, self.state.step)
            .with_scaler(self.trainer.scaler_state()))
    }

    /// Re-shard the full checkpoint into this rank's TP layout (front
    /// replicated, blocks column/row sliced) — parameters and both Adam
    /// moments.
    fn restore_checkpoint(&mut self, _ctx: &mut RankCtx, ck: &Checkpoint) -> Result<(), SimError> {
        if !ck.matches_config(&self.front.cfg) {
            return Err(SimError::State(
                "checkpoint fingerprint does not match model config".into(),
            ));
        }
        let cfg = self.front.cfg;
        let tp = self.tp;
        let tp_idx = self.tp_group.local_index();
        let reshard = |full: &[f32]| -> Vec<f32> {
            let (front, blocks) = reshard_reference(&cfg, tp, tp_idx, full);
            let mut local = front;
            for b in blocks {
                local.extend_from_slice(&b);
            }
            local
        };
        let params = reshard(&ck.params);
        self.load_all(&params);
        self.state.m = reshard(&ck.adam_m);
        self.state.v = reshard(&ck.adam_v);
        self.state.step = ck.adam_step;
        self.trainer.restore_scaler(ck.scaler);
        self.trainer.restore_generation(ck.adam_step);
        Ok(())
    }

    fn generation(&self) -> u64 {
        self.trainer.generation()
    }

    fn name(&self) -> &str {
        "tensor_parallel"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbit_comm::Cluster;
    use orbit_tensor::init::Rng;
    use orbit_vit::loss::lat_weights;

    fn make_batch(cfg: &VitConfig, n: usize, seed: u64) -> Batch {
        let mut rng = Rng::seed(seed);
        Batch {
            inputs: (0..n)
                .map(|_| {
                    (0..cfg.dims.channels)
                        .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                        .collect()
                })
                .collect(),
            targets: (0..n)
                .map(|_| {
                    (0..cfg.dims.out_channels)
                        .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                        .collect()
                })
                .collect(),
        }
    }

    #[test]
    fn tp_matches_single_device_losses() {
        let cfg = VitConfig::test_tiny(); // 2 heads -> tp up to 2
        let batch = make_batch(&cfg, 2, 13);
        let opt = AdamW::default();
        let w = lat_weights(cfg.dims.img_h);
        let mut reference = VitModel::init(cfg, 42);
        let mut state = reference.init_adam_state();
        let ref_losses: Vec<f32> = (0..3)
            .map(|_| reference.train_step(&batch, &w, &opt, &mut state))
            .collect();
        for tp in [1usize, 2] {
            let results = Cluster::frontier().run(tp, |ctx| {
                let mut e =
                    TensorParallelEngine::new(ctx, cfg, opt, TrainOptions::none(), 42).unwrap();
                (0..3)
                    .map(|_| e.train_step(ctx, &batch).unwrap().loss)
                    .collect::<Vec<_>>()
            });
            for losses in &results {
                for (a, b) in losses.iter().zip(&ref_losses) {
                    assert!(
                        (a - b).abs() < 5e-4 * b.abs().max(1.0),
                        "tp={tp}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn tp_shards_reduce_persistent_memory() {
        let cfg = VitConfig::test_tiny();
        let persistent_1 = Cluster::frontier().run(1, |ctx| {
            let _e = TensorParallelEngine::new(ctx, cfg, AdamW::default(), TrainOptions::none(), 1)
                .unwrap();
            ctx.device.in_use()
        })[0];
        let persistent_2 = Cluster::frontier().run(2, |ctx| {
            let _e = TensorParallelEngine::new(ctx, cfg, AdamW::default(), TrainOptions::none(), 1)
                .unwrap();
            ctx.device.in_use()
        })[0];
        assert!(
            persistent_2 < persistent_1,
            "sharding must shrink per-rank state: {persistent_2} !< {persistent_1}"
        );
    }
}
