//! Single-device reference engine with simulated accounting.

use crate::stats::StepStats;
use orbit_comm::{Allocation, RankCtx, SimError};
use orbit_frontier::TrainOptions;
use orbit_tensor::kernels::{AdamState, AdamW};
use orbit_vit::loss::weighted_mse;
use orbit_vit::Checkpoint;
use orbit_vit::{Batch, VitConfig, VitModel};

use super::trainer::{configure_precision, Trainer};
use super::Engine;

/// The single-device baseline: all parameters, gradients and optimizer
/// state on one GPU. Also the reference implementation every distributed
/// engine is validated against.
pub struct SingleDeviceEngine {
    pub model: VitModel,
    state: AdamState,
    trainer: Trainer,
    _persistent: Allocation,
}

impl SingleDeviceEngine {
    /// Build on the calling rank's device. Charges persistent memory
    /// (weights + grads + Adam moments).
    pub fn new(
        ctx: &RankCtx,
        mut cfg: VitConfig,
        opt: AdamW,
        opts: TrainOptions,
        seed: u64,
    ) -> Result<Self, orbit_comm::OomError> {
        configure_precision(&mut cfg, &opts);
        let mut model = VitModel::init(cfg, seed);
        let n = model.param_count() as u64;
        let persistent = ctx.device.alloc(16 * n)?;
        let state = model.init_adam_state();
        Ok(SingleDeviceEngine {
            trainer: Trainer::new(&cfg, opt, opts),
            model,
            state,
            _persistent: persistent,
        })
    }

    /// Evaluate mean wMSE over a batch without updating parameters.
    pub fn eval_loss(&self, batch: &Batch) -> f32 {
        let mut loss = 0.0;
        for (images, targets) in batch.inputs.iter().zip(&batch.targets) {
            let preds = self.model.predict(images);
            loss += weighted_mse(&preds, targets, &self.trainer.lat_w) / batch.len() as f32;
        }
        loss
    }
}

impl Engine for SingleDeviceEngine {
    /// One training step over `batch` (which is the whole global batch for
    /// this engine). Charges simulated compute time and activation memory.
    fn train_step(&mut self, ctx: &mut RankCtx, batch: &Batch) -> Result<StepStats, SimError> {
        assert!(!batch.is_empty());
        let dims = self.model.cfg.dims;
        let _act = self.trainer.alloc_activations(ctx, &dims, batch.len())?;

        let loss = self
            .trainer
            .microbatch_pass(&mut self.model, batch, batch.len());
        let t0 = ctx.clock.now();
        self.trainer
            .charge_compute(ctx, batch.len(), self.trainer.dense_flops_per_obs(&dims));

        let mut grads = self.model.flatten_grads();
        let applied = self.trainer.unscale_local(&mut grads);
        let grad_norm = self.trainer.clip_and_norm(&mut grads);
        if applied {
            self.model.load_flat_grads(&grads);
            self.model.adam_step(&self.trainer.opt, &mut self.state);
        }
        Ok(self.trainer.finish_step(ctx, t0, loss, grad_norm, applied))
    }

    /// Inference-only forward: the whole model is local, so serving needs
    /// no collectives. Charges forward-cost compute.
    fn predict(
        &mut self,
        ctx: &mut RankCtx,
        inputs: &[Vec<orbit_tensor::Tensor>],
    ) -> Result<Vec<Vec<orbit_tensor::Tensor>>, SimError> {
        let dims = self.model.cfg.dims;
        let preds = self.model.predict_batch(inputs);
        self.trainer
            .charge_compute(ctx, inputs.len(), dims.forward_flops() as f64);
        Ok(preds)
    }

    fn capture_checkpoint(&mut self, _ctx: &mut RankCtx) -> Result<Checkpoint, SimError> {
        Ok(Checkpoint::capture(&mut self.model, &self.state)
            .with_scaler(self.trainer.scaler_state()))
    }

    fn restore_checkpoint(&mut self, _ctx: &mut RankCtx, ck: &Checkpoint) -> Result<(), SimError> {
        ck.restore(&mut self.model, &mut self.state)
            .map_err(|e| SimError::State(e.to_string()))?;
        self.trainer.restore_scaler(ck.scaler);
        self.trainer.restore_generation(ck.adam_step);
        Ok(())
    }

    fn generation(&self) -> u64 {
        self.trainer.generation()
    }

    fn name(&self) -> &str {
        "single_device"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbit_comm::Cluster;
    use orbit_tensor::init::Rng;
    use orbit_tensor::Tensor;
    use orbit_vit::loss::lat_weights;

    fn make_batch(cfg: &VitConfig, n: usize, seed: u64) -> Batch {
        let mut rng = Rng::seed(seed);
        Batch {
            inputs: (0..n)
                .map(|_| {
                    (0..cfg.dims.channels)
                        .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                        .collect()
                })
                .collect(),
            targets: (0..n)
                .map(|_| {
                    (0..cfg.dims.out_channels)
                        .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                        .collect()
                })
                .collect(),
        }
    }

    #[test]
    fn runs_and_reports() {
        let cfg = VitConfig::test_tiny();
        let batch = make_batch(&cfg, 2, 1);
        let stats = Cluster::frontier().run(1, |ctx| {
            let mut e =
                SingleDeviceEngine::new(ctx, cfg, AdamW::default(), TrainOptions::none(), 42)
                    .unwrap();
            e.train_step(ctx, &batch).unwrap()
        });
        assert!(stats[0].loss > 0.0);
        assert!(stats[0].sim_time > 0.0);
        assert!(stats[0].peak_mem > 0);
        assert!(stats[0].applied);
    }

    #[test]
    fn checkpointing_gives_same_loss_lower_memory() {
        let cfg = VitConfig::test_tiny();
        let batch = make_batch(&cfg, 2, 1);
        let run = |ckpt: bool| {
            Cluster::frontier().run(1, |ctx| {
                let opts = TrainOptions {
                    activation_checkpointing: ckpt,
                    ..TrainOptions::none()
                };
                let mut e = SingleDeviceEngine::new(ctx, cfg, AdamW::default(), opts, 42).unwrap();
                e.train_step(ctx, &batch).unwrap()
            })[0]
        };
        let with = run(true);
        let without = run(false);
        assert!((with.loss - without.loss).abs() < 1e-5);
        assert!(
            with.peak_mem < without.peak_mem,
            "{} !< {}",
            with.peak_mem,
            without.peak_mem
        );
        assert!(with.sim_time > without.sim_time, "recompute costs time");
    }

    #[test]
    fn matches_reference_train_step() {
        // The engine and the bare VitModel::train_step agree on losses.
        let cfg = VitConfig::test_tiny();
        let batch = make_batch(&cfg, 2, 3);
        let w = lat_weights(cfg.dims.img_h);
        let opt = AdamW::default();
        let engine_losses = Cluster::frontier().run(1, |ctx| {
            let mut e = SingleDeviceEngine::new(ctx, cfg, opt, TrainOptions::none(), 42).unwrap();
            (0..3)
                .map(|_| e.train_step(ctx, &batch).unwrap().loss)
                .collect::<Vec<_>>()
        });
        let mut model = VitModel::init(cfg, 42);
        let mut state = model.init_adam_state();
        let ref_losses: Vec<f32> = (0..3)
            .map(|_| model.train_step(&batch, &w, &opt, &mut state))
            .collect();
        for (a, b) in engine_losses[0].iter().zip(&ref_losses) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn oom_is_reported_not_panicked() {
        let cfg = VitConfig::test_tiny();
        let result = Cluster::frontier().with_device_capacity(100).run(1, |ctx| {
            SingleDeviceEngine::new(ctx, cfg, AdamW::default(), TrainOptions::none(), 1)
                .err()
                .map(|e| e.capacity)
        });
        assert_eq!(result[0], Some(100));
        let _ = Tensor::zeros(1, 1);
    }
}
