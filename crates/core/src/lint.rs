//! Driving the static analyzer over real engines: symbolic extraction of
//! an [`EngineSpec`]'s communication program, the `build_engine` debug
//! pre-flight, and the planner's static-check hook.
//!
//! [`extract_comm_plan`] builds the requested engine inside
//! [`orbit_comm::Cluster::record_comm_plan`] and drives one training step
//! over a zero-filled placeholder batch. Collectives complete at issue
//! (no rendezvous, no simulated time from waits), so what comes back is
//! the engine's communication *program* — a
//! [`CommPlan`](orbit_comm::CommPlan) IR — not a simulation run.
//! [`lint_engine_spec`] then runs [`orbit_comm::analyze`]'s structural
//! passes over it.

use crate::engines::{build_engine_inner, spec_for_plan, EngineSpec};
use orbit_comm::lint::{analyze, CommPlan, LintReport};
use orbit_comm::Cluster;
use orbit_frontier::planner::PlanCandidate;
use orbit_frontier::{FrontierMachine, TrainOptions};
use orbit_tensor::kernels::AdamW;
use orbit_tensor::Tensor;
use orbit_vit::{Batch, VitConfig};
use std::collections::HashSet;
use std::sync::{Mutex, OnceLock};

/// Seed used for engine construction during extraction. The recorded
/// program is seed-independent (collective structure depends on shapes,
/// not values); any constant works.
const LINT_SEED: u64 = 42;

/// A zero-filled batch of `samples` observations shaped for `cfg` — the
/// placeholder data symbolic extraction drives engines with. `samples`
/// should be a multiple of every data-replica count the engine under
/// extraction can use; [`extract_comm_plan`] passes the world size, which
/// every layout's `fsdp x ddp` replica product divides.
pub fn placeholder_batch(cfg: &VitConfig, samples: usize) -> Batch {
    let zeros = |n: usize| {
        (0..samples)
            .map(|_| {
                (0..n)
                    .map(|_| Tensor::zeros(cfg.dims.img_h, cfg.dims.img_w))
                    .collect()
            })
            .collect()
    };
    Batch {
        inputs: zeros(cfg.dims.channels),
        targets: zeros(cfg.dims.out_channels),
    }
}

/// Symbolically extract the communication program of `spec` at `world`
/// ranks on `machine`: every rank builds the engine and runs one training
/// step against abstract communicators, recording op kind, payload shape,
/// layout transition, group, and issue site — without a simulation run.
/// Construction or step failures (including an infeasible spec) surface
/// as `ExtractionFailure` material in the plan, never as a panic.
pub fn extract_comm_plan(
    machine: &FrontierMachine,
    world: usize,
    spec: EngineSpec,
    cfg: VitConfig,
    opts: TrainOptions,
) -> CommPlan {
    let cluster = Cluster::new(machine.clone());
    let batch = placeholder_batch(&cfg, world);
    cluster.record_comm_plan(world, |ctx| {
        let mut engine = build_engine_inner(ctx, spec, cfg, AdamW::default(), opts, LINT_SEED)?;
        engine.train_step(ctx, &batch)?;
        Ok(())
    })
}

/// [`extract_comm_plan`] + [`analyze`]: the full static verdict on one
/// engine configuration. A clean report certifies the spec's collective
/// program is cross-rank consistent, deadlock-free, layout-sound,
/// p2p-balanced, and within the machine's memory budget.
pub fn lint_engine_spec(
    machine: &FrontierMachine,
    world: usize,
    spec: EngineSpec,
    cfg: VitConfig,
    opts: TrainOptions,
) -> LintReport {
    analyze(&extract_comm_plan(machine, world, spec, cfg, opts))
}

/// A static-check hook for [`orbit_frontier::planner::Planner::with_static_check`]:
/// lints each candidate's engine at the candidate's own world size and
/// rejects it with the first finding as the actionable reason. The
/// closure owns its machine and config copies, so the planner stays free
/// of any dependency on the engines.
pub fn planner_static_check(
    machine: FrontierMachine,
    cfg: VitConfig,
) -> impl Fn(&PlanCandidate) -> Result<(), String> + Send + Sync {
    move |candidate: &PlanCandidate| {
        let spec = spec_for_plan(candidate);
        let world = candidate.layout.world();
        let report = lint_engine_spec(&machine, world, spec, cfg, candidate.opts);
        match report.findings.first() {
            None => Ok(()),
            Some(finding) => Err(format!(
                "orbit-lint: {} at world {world}: {finding}",
                spec.name()
            )),
        }
    }
}

/// Debug-mode pre-flight for `build_engine`: before constructing the
/// requested engine for real, statically lint its communication program
/// once per (spec, world, shape, options) per process. A finding fails
/// construction with a [`SimError`](orbit_comm::SimError) naming it; a
/// clean verdict is memoized so repeated builds (every test, every
/// elastic relaunch) pay nothing. Opt out with `ORBIT_LINT_PREFLIGHT=0`.
/// Compiled-out (always `Ok`) in release builds.
pub(crate) fn debug_preflight(
    machine: &FrontierMachine,
    world: usize,
    spec: &EngineSpec,
    cfg: &VitConfig,
    opts: &TrainOptions,
) -> Result<(), orbit_comm::SimError> {
    if !cfg!(debug_assertions) {
        return Ok(());
    }
    if std::env::var_os("ORBIT_LINT_PREFLIGHT").is_some_and(|v| v == "0") {
        return Ok(());
    }
    let key = format!(
        "{spec:?}|{world}|{:?}|{}{}{}{}{}",
        cfg.dims,
        opts.layer_wrapping as u8,
        opts.mixed_precision as u8,
        opts.prefetch as u8,
        opts.activation_checkpointing as u8,
        opts.fused_attention as u8,
    );
    static CERTIFIED: OnceLock<Mutex<HashSet<String>>> = OnceLock::new();
    let certified = CERTIFIED.get_or_init(|| Mutex::new(HashSet::new()));
    // The lock is held across the nested extraction on purpose: every
    // rank of the outer launch funnels through here *before* issuing any
    // collective, so peers simply queue on the mutex until the first
    // rank's verdict is memoized — no outer rendezvous can be pending.
    let mut certified = certified.lock().unwrap_or_else(|e| e.into_inner());
    if certified.contains(&key) {
        return Ok(());
    }
    let report = lint_engine_spec(machine, world, *spec, *cfg, *opts);
    if !report.is_clean() {
        return Err(orbit_comm::SimError::State(format!(
            "static comm-plan preflight failed for {} at world {world}: {report}",
            spec.name()
        )));
    }
    certified.insert(key);
    Ok(())
}
