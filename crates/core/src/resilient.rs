//! Checkpoint/restart training on top of the fault-tolerant cluster.
//!
//! [`ResilientTrainer`] drives any [`Engine`] through a fixed number of
//! steps, capturing a layout-independent [`Checkpoint`] every `k` steps.
//! When a launch fails — a rank killed by the fault plan, a simulated OOM,
//! a severed link, a panic — every surviving rank unblocks with a typed
//! error ([`orbit_comm::CommError::PeerFailure`]), the launch reports
//! per-rank [`RankOutcome`]s, and the trainer relaunches from the last
//! *committed* checkpoint. Because checkpoints are reference-ordered full
//! flats, the relaunch may use a **different engine or layout** than the
//! attempt that wrote them — e.g. restarting Hybrid-STOP `2x2x1` as
//! `1x2x2`, or finishing a distributed run on a single device.
//!
//! Restoring into the *same* layout that captured a checkpoint is a pure
//! permutation of the saved values, so the recovered loss trajectory is
//! bit-identical to an uninterrupted run — including under mixed
//! precision: format-v2 (`ORBITCK2`) checkpoints carry the dynamic
//! [`crate::GradScaler`] state, and every engine's restore path resumes
//! the exact scale schedule (scale, clean-step counter, skip count) the
//! capture left off at, asserted by `scaler_schedule_survives_restart`
//! below.
//!
//! `ResilientTrainer` replays a *static* attempt list at caller-chosen
//! world sizes. [`crate::ElasticTrainer`] supersedes it when the world
//! should instead shrink to the surviving ranks with a planner-chosen
//! layout and crash-consistent sharded checkpoints.

use crate::engines::{build_engine, EngineSpec};
use crate::stats::StepStats;
use orbit_comm::{Cluster, RankOutcome, SimError};
use orbit_frontier::TrainOptions;
use orbit_tensor::kernels::AdamW;
use orbit_vit::{Batch, Checkpoint, VitConfig};
use std::sync::Mutex;

/// One launch configuration in the restart schedule: which engine to build
/// and on how many ranks. Attempt `i` after the `i`-th failure uses
/// `attempts[min(i, len-1)]`, so the last spec also covers any further
/// restarts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttemptSpec {
    pub spec: EngineSpec,
    pub world: usize,
}

impl AttemptSpec {
    pub fn new(spec: EngineSpec, world: usize) -> Self {
        AttemptSpec { spec, world }
    }
}

/// What a resilient run produced.
#[derive(Debug, Clone)]
pub struct ResilientReport {
    /// One loss per global step, `0..steps`, stitched across restarts: a
    /// failed attempt contributes only the steps up to its last committed
    /// checkpoint; the relaunch replays from there.
    pub losses: Vec<f32>,
    /// Number of relaunches (0 for an uninterrupted run).
    pub restarts: usize,
    /// `"{engine}x{world}"` per launch, in order — records reshard-on-
    /// restart transitions.
    pub launches: Vec<String>,
    /// Full-model state after the final step.
    pub final_checkpoint: Checkpoint,
}

/// Checkpoint-every-`k`-steps training with automatic restart from the
/// last committed checkpoint on failure.
pub struct ResilientTrainer {
    cluster: Cluster,
    checkpoint_every: u64,
    max_restarts: usize,
}

impl ResilientTrainer {
    /// Wrap a cluster (typically one carrying a
    /// [`orbit_comm::FaultPlan`]). Defaults: checkpoint every 2 steps, at
    /// most 8 restarts.
    pub fn new(cluster: Cluster) -> Self {
        ResilientTrainer {
            cluster,
            checkpoint_every: 2,
            max_restarts: 8,
        }
    }

    /// Capture a checkpoint after every `k` completed steps (`k > 0`).
    pub fn with_checkpoint_every(mut self, k: u64) -> Self {
        assert!(k > 0, "checkpoint interval must be positive");
        self.checkpoint_every = k;
        self
    }

    /// Give up (returning `Err`) after this many relaunches.
    pub fn with_max_restarts(mut self, n: usize) -> Self {
        self.max_restarts = n;
        self
    }

    /// Train for `steps` optimizer steps, restarting on failure. `batch_fn`
    /// maps a global step index to its batch and must be deterministic —
    /// a replayed step must see the data of the original attempt. All the
    /// usual engine requirements apply per launch (same seed everywhere,
    /// world compatible with the spec).
    #[allow(clippy::too_many_arguments)]
    pub fn train<F>(
        &self,
        attempts: &[AttemptSpec],
        cfg: VitConfig,
        opt: AdamW,
        opts: TrainOptions,
        seed: u64,
        steps: u64,
        batch_fn: F,
    ) -> Result<ResilientReport, SimError>
    where
        F: Fn(u64) -> Batch + Sync,
    {
        assert!(!attempts.is_empty(), "need at least one attempt spec");
        assert!(steps > 0, "need at least one step");
        let mut committed: Option<(u64, Checkpoint)> = None;
        let mut losses: Vec<f32> = Vec::new();
        let mut restarts = 0usize;
        let mut launches: Vec<String> = Vec::new();

        loop {
            let attempt = attempts[restarts.min(attempts.len() - 1)];
            launches.push(format!("{}x{}", attempt.spec.name(), attempt.world));
            // Rank 0 streams (step, loss) pairs and checkpoints out of the
            // launch; the values are identical on every rank, so one
            // writer suffices and survives any *other* rank's death.
            let stream: Mutex<Vec<(u64, f32)>> = Mutex::new(Vec::new());
            let saved: Mutex<Option<(u64, Checkpoint)>> = Mutex::new(None);
            let resume = committed.clone();

            let outcomes: Vec<RankOutcome<Option<Checkpoint>>> =
                self.cluster.try_run(attempt.world, |ctx| {
                    let mut engine = build_engine(ctx, attempt.spec, cfg, opt, opts, seed)?;
                    let start = match resume.as_ref() {
                        Some((step0, ck)) => {
                            engine.restore_checkpoint(ctx, ck)?;
                            *step0
                        }
                        None => 0,
                    };
                    for step in start..steps {
                        ctx.begin_step(step)?;
                        let batch = batch_fn(step);
                        let stats: StepStats = engine.train_step(ctx, &batch)?;
                        if ctx.rank == 0 {
                            stream.lock().unwrap().push((step, stats.loss));
                        }
                        let done = step + 1;
                        if done % self.checkpoint_every == 0 && done < steps {
                            let ck = engine.capture_checkpoint(ctx)?;
                            if ctx.rank == 0 {
                                *saved.lock().unwrap() = Some((done, ck));
                            }
                        }
                    }
                    let final_ck = engine.capture_checkpoint(ctx)?;
                    Ok((ctx.rank == 0).then_some(final_ck))
                });

            let committed_len = committed.as_ref().map(|(s, _)| *s).unwrap_or(0);
            let stream = stream.into_inner().unwrap();

            if outcomes.iter().all(|o| o.is_ok()) {
                for (step, loss) in stream {
                    if step >= committed_len {
                        debug_assert_eq!(step as usize, losses.len());
                        losses.push(loss);
                    }
                }
                let final_checkpoint = outcomes
                    .into_iter()
                    .next()
                    .and_then(|o| o.ok())
                    .flatten()
                    .expect("rank 0 returns the final checkpoint");
                return Ok(ResilientReport {
                    losses,
                    restarts,
                    launches,
                    final_checkpoint,
                });
            }

            restarts += 1;
            if restarts > self.max_restarts {
                let cause = outcomes
                    .iter()
                    .find_map(|o| o.failure())
                    .map(|c| c.to_string())
                    .unwrap_or_else(|| "unknown".into());
                return Err(SimError::State(format!(
                    "gave up after {} restarts (last failure: {cause})",
                    self.max_restarts
                )));
            }
            // Commit the newest checkpoint this attempt produced (if rank 0
            // survived long enough to store one) and keep only losses the
            // relaunch will not replay.
            if let Some((ck_step, ck)) = saved.into_inner().unwrap() {
                for (step, loss) in stream {
                    if step >= committed_len && step < ck_step {
                        debug_assert_eq!(step as usize, losses.len());
                        losses.push(loss);
                    }
                }
                committed = Some((ck_step, ck));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbit_comm::FaultPlan;
    use orbit_tensor::init::Rng;

    fn make_batch(cfg: &VitConfig, n: usize, seed: u64) -> Batch {
        let mut rng = Rng::seed(seed);
        Batch {
            inputs: (0..n)
                .map(|_| {
                    (0..cfg.dims.channels)
                        .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                        .collect()
                })
                .collect(),
            targets: (0..n)
                .map(|_| {
                    (0..cfg.dims.out_channels)
                        .map(|_| rng.normal_tensor(cfg.dims.img_h, cfg.dims.img_w, 1.0))
                        .collect()
                })
                .collect(),
        }
    }

    #[test]
    fn uninterrupted_run_reports_all_steps() {
        let cfg = VitConfig::test_tiny();
        let trainer = ResilientTrainer::new(Cluster::frontier());
        let report = trainer
            .train(
                &[AttemptSpec::new(EngineSpec::Single, 1)],
                cfg,
                AdamW::default(),
                TrainOptions::none(),
                42,
                3,
                |step| make_batch(&cfg, 2, 100 + step),
            )
            .unwrap();
        assert_eq!(report.losses.len(), 3);
        assert_eq!(report.restarts, 0);
        assert_eq!(report.launches, vec!["single_devicex1"]);
        assert!(report.losses.iter().all(|l| l.is_finite() && *l > 0.0));
    }

    #[test]
    fn killed_rank_triggers_restart_and_completes() {
        let cfg = VitConfig::test_tiny();
        let cluster = Cluster::frontier().with_fault_plan(FaultPlan::new().kill(1, 3));
        let trainer = ResilientTrainer::new(cluster).with_checkpoint_every(2);
        let report = trainer
            .train(
                &[AttemptSpec::new(EngineSpec::Ddp, 2)],
                cfg,
                AdamW::default(),
                TrainOptions::none(),
                42,
                5,
                |step| make_batch(&cfg, 2, 100 + step),
            )
            .unwrap();
        assert_eq!(report.restarts, 1);
        assert_eq!(report.losses.len(), 5);
        assert_eq!(report.launches.len(), 2);
    }

    #[test]
    fn scaler_schedule_survives_restart() {
        // A mixed-precision run that restarts must resume the loss-scale
        // schedule exactly where the committed checkpoint left it: the
        // final scaler state (and every loss) matches an uninterrupted
        // run bit for bit.
        let cfg = VitConfig::test_tiny();
        let opts = TrainOptions {
            mixed_precision: true,
            ..TrainOptions::none()
        };
        let run = |cluster: Cluster| {
            ResilientTrainer::new(cluster)
                .with_checkpoint_every(1)
                .train(
                    &[AttemptSpec::new(EngineSpec::Ddp, 2)],
                    cfg,
                    AdamW::default(),
                    opts,
                    42,
                    4,
                    |step| make_batch(&cfg, 2, 100 + step),
                )
                .unwrap()
        };
        let interrupted = run(Cluster::frontier().with_fault_plan(FaultPlan::new().kill(1, 2)));
        let clean = run(Cluster::frontier());
        assert_eq!(interrupted.restarts, 1);
        assert_eq!(clean.restarts, 0);
        let si = interrupted
            .final_checkpoint
            .scaler
            .expect("mixed precision captures scaler state");
        let sc = clean.final_checkpoint.scaler.unwrap();
        assert_eq!(si, sc, "scale schedule must survive the restart");
        let a: Vec<u32> = interrupted.losses.iter().map(|l| l.to_bits()).collect();
        let b: Vec<u32> = clean.losses.iter().map(|l| l.to_bits()).collect();
        assert_eq!(a, b, "restored trajectory must be bit-identical");
    }

    #[test]
    fn gives_up_after_max_restarts() {
        let cfg = VitConfig::test_tiny();
        // Kill rank 0 at step 0 of every attempt: two events, one restart
        // allowed under max_restarts = 1, third failure aborts... but the
        // plan only fires each event once, so use enough kills to outlast
        // the budget.
        let plan = FaultPlan::new().kill(0, 0).kill(1, 0).kill(0, 1);
        let cluster = Cluster::frontier().with_fault_plan(plan);
        let trainer = ResilientTrainer::new(cluster)
            .with_checkpoint_every(1)
            .with_max_restarts(1);
        let err = trainer
            .train(
                &[AttemptSpec::new(EngineSpec::Ddp, 2)],
                cfg,
                AdamW::default(),
                TrainOptions::none(),
                42,
                4,
                |step| make_batch(&cfg, 2, 100 + step),
            )
            .unwrap_err();
        assert!(matches!(err, SimError::State(msg) if msg.contains("gave up")));
    }
}
