//! The bridge between [`orbit_tensor::dtensor`]'s abstract
//! [`Collectives`] trait and the simulated cluster's `ProcessGroup`:
//! a [`GroupComm`] borrows one process group plus the rank's `SimClock`
//! and lowers reshard collectives onto the real nonblocking data plane
//! (`all_gather_start` / `reduce_scatter_start` / `all_reduce_start`),
//! so every reshard records through the schedule verifier exactly like a
//! hand-issued collective.
//!
//! (`orbit-comm` depends on `orbit-tensor`, so the trait lives tensor-side
//! and this adapter core-side — the dependency arrow cannot point the
//! other way.)

use orbit_comm::{CommError, PendingCollective, ProcessGroup, SimClock};
use orbit_tensor::dtensor::{Collectives, ReshardError, ReshardNote};

/// A [`Collectives`] implementation over one `ProcessGroup`. Borrows the
/// group and clock only for the duration of the reshard calls, so engines
/// can interleave reshards with direct collectives (e.g. the loss
/// all-reduce between a gradient reduce-scatter's start and wait).
pub struct GroupComm<'a> {
    group: &'a mut ProcessGroup,
    clock: &'a mut SimClock,
}

impl<'a> GroupComm<'a> {
    pub fn new(group: &'a mut ProcessGroup, clock: &'a mut SimClock) -> Self {
        GroupComm { group, clock }
    }
}

impl Collectives for GroupComm<'_> {
    type Error = CommError;
    type Pending = PendingCollective;

    fn size(&self) -> usize {
        self.group.size()
    }

    fn all_gather_start(
        &mut self,
        shard: &[f32],
        prefetch: bool,
    ) -> Result<PendingCollective, CommError> {
        self.group.all_gather_start(self.clock, shard, prefetch)
    }

    fn reduce_scatter_start(&mut self, full: &[f32]) -> Result<PendingCollective, CommError> {
        self.group.reduce_scatter_start(self.clock, full)
    }

    fn all_reduce_start(&mut self, buf: &[f32]) -> Result<PendingCollective, CommError> {
        self.group.all_reduce_start(self.clock, buf)
    }

    fn wait(&mut self, pending: PendingCollective) -> Result<Vec<f32>, CommError> {
        Ok(pending.wait(self.clock)?.to_vec())
    }

    fn annotate_reshard(&mut self, note: &ReshardNote) {
        // No-op on real runs; in lint-extraction mode the group tags the
        // next collective with the transition for the static layout pass.
        self.group.annotate_reshard(note.clone());
    }
}

/// Collapse a reshard error at an engine call site whose layout transition
/// is statically legal: a `Layout` arm there is a choreography bug (the
/// moral equivalent of the asserts the hand-rolled shard math used), so it
/// panics; only the communication failure propagates.
pub fn comm_err(e: ReshardError<CommError>) -> CommError {
    match e {
        ReshardError::Comm(c) => c,
        ReshardError::Layout(l) => panic!("illegal reshard in engine choreography: {l}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbit_comm::Cluster;
    use orbit_tensor::dtensor::{DTensor, DeviceMesh, Layout};
    use orbit_tensor::Tensor;

    #[test]
    fn reshard_lowers_onto_real_collectives() {
        // Shard(1) -> Replicate over a real 2-rank group reassembles the
        // global tensor on both ranks, through the simulated data plane.
        let global = Tensor::from_vec(2, 4, (0..8).map(|i| i as f32).collect());
        let g2 = global.clone();
        let results = Cluster::frontier().run(2, move |ctx| {
            let mut group = ctx.world_group();
            let mut clock = std::mem::take(&mut ctx.clock);
            let mesh = DeviceMesh::one("x", ctx.world, ctx.rank);
            let sharded = DTensor::from_global(&g2, mesh, "x", Layout::Shard(1)).unwrap();
            let mut comm = GroupComm::new(&mut group, &mut clock);
            let repl = sharded.reshard("x", Layout::Replicate, &mut comm).unwrap();
            repl.into_local()
        });
        for r in &results {
            assert_eq!(r, &global);
        }
    }

    #[test]
    fn partial_to_shard_flat_is_a_padded_reduce_scatter() {
        // 5 elements over 2 ranks: padded to 6, chunks of 3; rank r holds
        // addend r+1 everywhere, so the summed shard is all 3s (padding
        // positions sum to 0).
        let results = Cluster::frontier().run(2, |ctx| {
            let mut group = ctx.world_group();
            let mut clock = std::mem::take(&mut ctx.clock);
            let mesh = DeviceMesh::one("x", ctx.world, ctx.rank);
            let addend = Tensor::full(1, 5, (ctx.rank + 1) as f32);
            let p = DTensor::partial(addend, mesh, "x").unwrap();
            let mut comm = GroupComm::new(&mut group, &mut clock);
            let shard = p.reshard("x", Layout::ShardFlat, &mut comm).unwrap();
            shard.into_local().into_vec()
        });
        assert_eq!(results[0], vec![3.0, 3.0, 3.0]);
        assert_eq!(results[1], vec![3.0, 3.0, 0.0], "tail chunk keeps padding");
    }
}
