//! Tensor-parallel transformer block: the executable form of paper
//! Eqns. (2)/(3) and Fig. 3.
//!
//! Per block, each tensor-parallel rank holds:
//!
//! - **column shards** of the chain's `A` matrices — `Wq`, `Wk`, `Wv`
//!   (a contiguous slice of attention heads) and the MLP's `W1`;
//! - **row shards** of the chain's `B` matrices — `Wo` and `W2`;
//! - replicated copies of the small vectors (layernorm scales, the
//!   row-sharded layers' biases, QK-norm parameters).
//!
//! The forward computes each rank's partial `x A_{*,k} B_{k,*}` and sums
//! partials with a tensor-parallel all-reduce (Eqn. (2)); the backward
//! computes each rank's `dY B_{k,*}^T A_{*,k}^T` contribution to `dX` and
//! all-reduces those (Eqn. (3)). Weight gradients stay local to the shard.

use orbit_comm::{CommError, ProcessGroup, SimClock};
use orbit_tensor::dtensor::{DTensor, DeviceMesh, Layout};
use orbit_tensor::kernels::attention::{mha_backward, mha_forward, MhaCache, QkNorm};
use orbit_tensor::kernels::{
    gelu, gelu_backward, layernorm, layernorm_backward, linear, linear_backward, LayerNormCache,
};
use orbit_tensor::{Precision, Tensor};
use orbit_vit::block::{Param, TransformerBlock};

use crate::dcomm::{comm_err, GroupComm};

/// One rank's tensor-parallel shard of a transformer block.
#[derive(Debug, Clone)]
pub struct TpBlock {
    pub ln1_gamma: Param,
    pub ln1_beta: Param,
    pub wq: Param,
    pub bq: Param,
    pub wk: Param,
    pub bk: Param,
    pub wv: Param,
    pub bv: Param,
    pub wo: Param,
    pub bo: Param,
    pub ln2_gamma: Param,
    pub ln2_beta: Param,
    pub w1: Param,
    pub b1: Param,
    pub w2: Param,
    pub b2: Param,
    pub qk: Option<[Param; 4]>,
    pub heads_local: usize,
    pub tp: usize,
    pub precision: Precision,
    /// One-axis `tp` mesh this shard lives on: weight layouts are
    /// `Shard(1)` (Wq/Wk/Wv/W1 + their biases), `Shard(0)` (Wo/W2), or
    /// `Replicate` (norms, bo/b2, QK-norm); partial activations resolve
    /// `Partial -> Replicate` through it.
    pub mesh: DeviceMesh,
}

/// Forward cache for [`TpBlock::backward`].
pub struct TpBlockCache {
    ln1: LayerNormCache,
    z1: Tensor,
    mha: MhaCache,
    a_loc: Tensor,
    dh_source: Tensor, // h (post-attention residual)
    ln2: LayerNormCache,
    z2: Tensor,
    u_loc: Tensor,
    g_loc: Tensor,
}

impl TpBlock {
    /// Slice rank `tp_idx`'s shard out of a full reference block. The head
    /// count must divide evenly by `tp` so column shards align with head
    /// boundaries.
    pub fn from_reference(full: &TransformerBlock, tp: usize, tp_idx: usize) -> Self {
        assert_eq!(
            full.heads % tp,
            0,
            "tensor parallelism {tp} must divide head count {}",
            full.heads
        );
        let mesh = DeviceMesh::one("tp", tp, tp_idx);
        // Column/row shards are DTensor lowerings of the full weights; the
        // head-divisibility assert above guarantees even splits (embed is a
        // multiple of heads, heads a multiple of tp).
        let shard_p_cols = |p: &Param| {
            Param::new(
                DTensor::from_global(&p.value, mesh.clone(), "tp", Layout::Shard(1))
                    .expect("head-aligned column shard")
                    .into_local(),
            )
        };
        let shard_p_rows = |p: &Param| {
            Param::new(
                DTensor::from_global(&p.value, mesh.clone(), "tp", Layout::Shard(0))
                    .expect("head-aligned row shard")
                    .into_local(),
            )
        };
        let repl = |p: &Param| Param::new(p.value.clone());
        TpBlock {
            ln1_gamma: repl(&full.ln1_gamma),
            ln1_beta: repl(&full.ln1_beta),
            wq: shard_p_cols(&full.wq),
            bq: shard_p_cols(&full.bq),
            wk: shard_p_cols(&full.wk),
            bk: shard_p_cols(&full.bk),
            wv: shard_p_cols(&full.wv),
            bv: shard_p_cols(&full.bv),
            wo: shard_p_rows(&full.wo),
            bo: repl(&full.bo),
            ln2_gamma: repl(&full.ln2_gamma),
            ln2_beta: repl(&full.ln2_beta),
            w1: shard_p_cols(&full.w1),
            b1: shard_p_cols(&full.b1),
            w2: shard_p_rows(&full.w2),
            b2: repl(&full.b2),
            qk: full
                .qk
                .as_ref()
                .map(|qk| [repl(&qk[0]), repl(&qk[1]), repl(&qk[2]), repl(&qk[3])]),
            heads_local: full.heads / tp,
            tp,
            precision: full.precision,
            mesh: mesh.clone(),
        }
    }

    /// Resolve a `Partial` activation across the `tp` mesh axis — the
    /// Eqn. (2)/(3) partial sum — to a replicated tensor.
    fn tp_sum(
        &self,
        part: Tensor,
        tp_group: &mut ProcessGroup,
        clock: &mut SimClock,
    ) -> Result<Tensor, CommError> {
        let partial = DTensor::partial(part, self.mesh.clone(), "tp").expect("tp axis");
        let mut comm = GroupComm::new(tp_group, clock);
        Ok(partial
            .reshard("tp", Layout::Replicate, &mut comm)
            .map_err(comm_err)?
            .into_local())
    }

    fn qk_norm_ref(&self) -> Option<QkNorm> {
        self.qk.as_ref().map(|[gq, bq, gk, bk]| QkNorm {
            gamma_q: gq.value.clone(),
            beta_q: bq.value.clone(),
            gamma_k: gk.value.clone(),
            beta_k: bk.value.clone(),
        })
    }

    /// Forward for one sequence; `tp_group` sums the partial activations.
    /// Fails when a tensor-parallel peer died mid-rendezvous.
    pub fn forward(
        &self,
        x: &Tensor,
        tp_group: &mut ProcessGroup,
        clock: &mut SimClock,
    ) -> Result<(Tensor, TpBlockCache), CommError> {
        let p = self.precision;
        let (tokens, _) = x.shape();
        let (z1, ln1) = layernorm(x, &self.ln1_gamma.value, &self.ln1_beta.value);
        // Column-sharded projections: this rank computes its heads only.
        let q = linear(&z1, &self.wq.value, Some(&self.bq.value), p);
        let k = linear(&z1, &self.wk.value, Some(&self.bk.value), p);
        let v = linear(&z1, &self.wv.value, Some(&self.bv.value), p);
        let norm = self.qk_norm_ref();
        let (a_loc, mha) = mha_forward(&q, &k, &v, self.heads_local, norm.as_ref());
        // Row-sharded output projection -> `Partial -> Replicate` reshard
        // (Eqn. (2): sum_k x A_{*,k} B_{k,*}).
        let o_part = linear(&a_loc, &self.wo.value, None, p);
        let mut attn_out = self.tp_sum(o_part, tp_group, clock)?;
        for r in 0..tokens {
            for (vv, &b) in attn_out.row_mut(r).iter_mut().zip(self.bo.value.row(0)) {
                *vv += b;
            }
        }
        let h = x.add(&attn_out);
        let (z2, ln2) = layernorm(&h, &self.ln2_gamma.value, &self.ln2_beta.value);
        let u_loc = linear(&z2, &self.w1.value, Some(&self.b1.value), p);
        let g_loc = gelu(&u_loc);
        let m_part = linear(&g_loc, &self.w2.value, None, p);
        let mut mlp_out = self.tp_sum(m_part, tp_group, clock)?;
        for r in 0..tokens {
            for (vv, &b) in mlp_out.row_mut(r).iter_mut().zip(self.b2.value.row(0)) {
                *vv += b;
            }
        }
        let y = h.add(&mlp_out);
        Ok((
            y,
            TpBlockCache {
                ln1,
                z1,
                mha,
                a_loc,
                dh_source: h,
                ln2,
                z2,
                u_loc,
                g_loc,
            },
        ))
    }

    /// Backward for one sequence. Accumulates this rank's shard gradients
    /// and returns the full `dL/dx` (identical on every tensor-parallel
    /// rank after the Eqn. (3) all-reduces).
    pub fn backward(
        &mut self,
        cache: &TpBlockCache,
        dy: &Tensor,
        tp_group: &mut ProcessGroup,
        clock: &mut SimClock,
    ) -> Result<Tensor, CommError> {
        let (tokens, d) = dy.shape();
        let _ = &cache.dh_source;
        // MLP: y = h + (g_loc W2_loc summed) + b2.
        let g2 = linear_backward(&cache.g_loc, &self.w2.value, dy, false);
        self.w2.accumulate(&g2.dw);
        // b2 is replicated: every rank computes the identical row-sum grad.
        let mut db2 = Tensor::zeros(1, d);
        for r in 0..tokens {
            for (acc, &v) in db2.row_mut(0).iter_mut().zip(dy.row(r)) {
                *acc += v;
            }
        }
        self.b2.accumulate(&db2);
        let du = gelu_backward(&cache.u_loc, &g2.dx);
        let g1 = linear_backward(&cache.z2, &self.w1.value, &du, true);
        self.w1.accumulate(&g1.dw);
        self.b1.accumulate(&g1.db.expect("bias grad"));
        // dz2 partials sum across the group (Eqn. (3)).
        let dz2 = self.tp_sum(g1.dx, tp_group, clock)?;
        let ln2g = layernorm_backward(&cache.ln2, &self.ln2_gamma.value, &dz2);
        self.ln2_gamma.accumulate(&ln2g.dgamma);
        self.ln2_beta.accumulate(&ln2g.dbeta);
        let mut dh = dy.clone();
        dh.add_assign(&ln2g.dx);

        // Attention: h = x + (a_loc Wo_loc summed) + bo.
        let go = linear_backward(&cache.a_loc, &self.wo.value, &dh, false);
        self.wo.accumulate(&go.dw);
        let mut dbo = Tensor::zeros(1, d);
        for r in 0..tokens {
            for (acc, &v) in dbo.row_mut(0).iter_mut().zip(dh.row(r)) {
                *acc += v;
            }
        }
        self.bo.accumulate(&dbo);
        let norm = self.qk_norm_ref();
        let mg = mha_backward(&cache.mha, norm.as_ref(), &go.dx);
        if let (Some(qk), Some((dgq, dbq, dgk, dbk))) = (self.qk.as_mut(), mg.dqk_norm) {
            // QK-norm params are shared across heads; this rank only saw
            // its local heads, so these grads are partial. The engine
            // all-reduces them across the tensor-parallel group at step end.
            qk[0].accumulate(&dgq);
            qk[1].accumulate(&dbq);
            qk[2].accumulate(&dgk);
            qk[3].accumulate(&dbk);
        }
        let gq = linear_backward(&cache.z1, &self.wq.value, &mg.dq, true);
        self.wq.accumulate(&gq.dw);
        self.bq.accumulate(&gq.db.expect("bias grad"));
        let gk = linear_backward(&cache.z1, &self.wk.value, &mg.dk, true);
        self.wk.accumulate(&gk.dw);
        self.bk.accumulate(&gk.db.expect("bias grad"));
        let gv = linear_backward(&cache.z1, &self.wv.value, &mg.dv, true);
        self.wv.accumulate(&gv.dw);
        self.bv.accumulate(&gv.db.expect("bias grad"));
        let mut dz1_part = gq.dx;
        dz1_part.add_assign(&gk.dx);
        dz1_part.add_assign(&gv.dx);
        let dz1 = self.tp_sum(dz1_part, tp_group, clock)?;
        let ln1g = layernorm_backward(&cache.ln1, &self.ln1_gamma.value, &dz1);
        self.ln1_gamma.accumulate(&ln1g.dgamma);
        self.ln1_beta.accumulate(&ln1g.dbeta);
        let mut dx = dh;
        dx.add_assign(&ln1g.dx);
        Ok(dx)
    }

    /// Visit this shard's parameters in the same deterministic order as
    /// [`TransformerBlock::visit_params`] (shapes differ, order matches —
    /// the invariant the FSDP flattening relies on).
    pub fn visit_params(&mut self, prefix: &str, v: &mut dyn FnMut(&str, &mut Param)) {
        let mut emit = |name: &str, p: &mut Param| v(&format!("{prefix}.{name}"), p);
        emit("ln1_gamma", &mut self.ln1_gamma);
        emit("ln1_beta", &mut self.ln1_beta);
        emit("wq", &mut self.wq);
        emit("bq", &mut self.bq);
        emit("wk", &mut self.wk);
        emit("bk", &mut self.bk);
        emit("wv", &mut self.wv);
        emit("bv", &mut self.bv);
        emit("wo", &mut self.wo);
        emit("bo", &mut self.bo);
        emit("ln2_gamma", &mut self.ln2_gamma);
        emit("ln2_beta", &mut self.ln2_beta);
        emit("w1", &mut self.w1);
        emit("b1", &mut self.b1);
        emit("w2", &mut self.w2);
        emit("b2", &mut self.b2);
        if let Some(qk) = self.qk.as_mut() {
            let names = ["qk_gamma_q", "qk_beta_q", "qk_gamma_k", "qk_beta_k"];
            for (n, p) in names.iter().zip(qk.iter_mut()) {
                emit(n, p);
            }
        }
    }

    /// Zero all gradient accumulators.
    pub fn zero_grads(&mut self) {
        self.visit_params("", &mut |_, p| p.zero_grad());
    }

    /// Which parameters are replicated across the tensor-parallel group
    /// (by suffix name), used by engines to decide gradient handling.
    pub fn is_replicated(name: &str) -> bool {
        name.ends_with("ln1_gamma")
            || name.ends_with("ln1_beta")
            || name.ends_with("ln2_gamma")
            || name.ends_with("ln2_beta")
            || name.ends_with("bo")
            || name.ends_with("b2")
            || name.contains("qk_")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbit_comm::Cluster;
    use orbit_tensor::dtensor::{shard_columns, shard_rows};
    use orbit_tensor::init::Rng;
    use orbit_vit::config::VitConfig;

    /// Distributed forward+backward must match the reference block exactly
    /// (up to f32 reduction order).
    #[test]
    fn tp_block_matches_reference() {
        let cfg = VitConfig::test_tiny();
        let mut rng = Rng::seed(42);
        let mut reference = TransformerBlock::init(&cfg, &mut rng);
        let x = rng.normal_tensor(cfg.tokens(), cfg.dims.embed, 1.0);
        let dy = rng.normal_tensor(cfg.tokens(), cfg.dims.embed, 1.0);
        let (y_ref, cache_ref) = reference.forward(&x);
        let dx_ref = reference.backward(&cache_ref, &dy);

        for tp in [1usize, 2] {
            let results = Cluster::frontier().run(tp, |ctx| {
                let mut block = TpBlock::from_reference(&reference, tp, ctx.rank);
                let mut group = ctx.world_group();
                let mut clock = SimClock::new();
                let (y, cache) = block.forward(&x, &mut group, &mut clock).unwrap();
                let dx = block.backward(&cache, &dy, &mut group, &mut clock).unwrap();
                (y, dx, block.w1.grad.clone(), block.w2.grad.clone())
            });
            for (rank, (y, dx, dw1, dw2)) in results.iter().enumerate() {
                assert!(
                    y.allclose(&y_ref, 1e-4, 1e-5),
                    "tp={tp} rank={rank} forward"
                );
                assert!(dx.allclose(&dx_ref, 1e-4, 1e-5), "tp={tp} rank={rank} dx");
                // Shard grads equal the corresponding slices of the
                // reference grads.
                let w1_ref = shard_columns(&reference.w1.grad, tp, rank).unwrap();
                let w2_ref = shard_rows(&reference.w2.grad, tp, rank).unwrap();
                assert!(dw1.allclose(&w1_ref, 1e-4, 1e-5), "tp={tp} rank={rank} dw1");
                assert!(dw2.allclose(&w2_ref, 1e-4, 1e-5), "tp={tp} rank={rank} dw2");
            }
        }
    }

    #[test]
    fn qk_norm_grads_sum_to_reference_across_ranks() {
        let cfg = VitConfig::test_tiny();
        let mut rng = Rng::seed(7);
        let mut reference = TransformerBlock::init(&cfg, &mut rng);
        let x = rng.normal_tensor(cfg.tokens(), cfg.dims.embed, 1.0);
        let dy = rng.normal_tensor(cfg.tokens(), cfg.dims.embed, 1.0);
        let (_, cache_ref) = reference.forward(&x);
        let _ = reference.backward(&cache_ref, &dy);
        let ref_qk_grad = reference.qk.as_ref().unwrap()[0].grad.clone();

        let tp = 2;
        let results = Cluster::frontier().run(tp, |ctx| {
            let mut block = TpBlock::from_reference(&reference, tp, ctx.rank);
            let mut group = ctx.world_group();
            let mut clock = SimClock::new();
            let (_, cache) = block.forward(&x, &mut group, &mut clock).unwrap();
            let _ = block.backward(&cache, &dy, &mut group, &mut clock).unwrap();
            block.qk.as_ref().unwrap()[0].grad.clone()
        });
        let summed = results[0].add(&results[1]);
        assert!(summed.allclose(&ref_qk_grad, 1e-4, 1e-5));
    }

    #[test]
    fn visit_order_matches_reference_block() {
        let cfg = VitConfig::test_tiny();
        let mut rng = Rng::seed(9);
        let mut reference = TransformerBlock::init(&cfg, &mut rng);
        let mut tp = TpBlock::from_reference(&reference, 2, 0);
        let mut ref_names = Vec::new();
        reference.visit_params("b", &mut |n: &str, _: &mut Param| {
            ref_names.push(n.to_string())
        });
        let mut tp_names = Vec::new();
        tp.visit_params("b", &mut |n, _| tp_names.push(n.to_string()));
        assert_eq!(ref_names, tp_names);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_tp_beyond_heads() {
        let cfg = VitConfig::test_tiny(); // 2 heads
        let mut rng = Rng::seed(1);
        let reference = TransformerBlock::init(&cfg, &mut rng);
        let _ = TpBlock::from_reference(&reference, 4, 0);
    }

    #[test]
    fn replicated_name_classification() {
        assert!(TpBlock::is_replicated("b.ln1_gamma"));
        assert!(TpBlock::is_replicated("b.qk_gamma_q"));
        assert!(TpBlock::is_replicated("b.bo"));
        assert!(!TpBlock::is_replicated("b.wq"));
        assert!(!TpBlock::is_replicated("b.w2"));
        // bq (sharded) must not be confused with bo/b2 (replicated).
        assert!(!TpBlock::is_replicated("b.bq"));
    }
}
