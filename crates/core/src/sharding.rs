//! Shard arithmetic: the alternating column/row splits of paper Eqn. (2)
//! and flat-vector sharding for the FSDP dimension.
//!
//! The implementations live in [`orbit_tensor::dtensor`] — the layout
//! algebra underneath [`orbit_tensor::DTensor`] — so that engines and
//! distributed tensors agree on one copy of the padding/split math. This
//! module re-exports them under their historical `orbit_core::sharding`
//! names. Note `shard_columns`/`shard_rows` now return a typed
//! [`LayoutError`] on uneven splits instead of panicking.

pub use orbit_tensor::dtensor::{
    flat_shard, flat_shard_range, flat_unshard, padded_len, shard_columns, shard_rows, LayoutError,
};

#[cfg(test)]
mod tests {
    use super::*;
    use orbit_tensor::init::Rng;
    use orbit_tensor::Tensor;

    #[test]
    fn column_shards_partition() {
        let mut rng = Rng::seed(1);
        let a = rng.normal_tensor(4, 8, 1.0);
        let parts: Vec<Tensor> = (0..4).map(|k| shard_columns(&a, 4, k).unwrap()).collect();
        let whole = Tensor::concat_cols(&parts.iter().collect::<Vec<_>>());
        assert_eq!(whole, a);
    }

    #[test]
    fn row_shards_partition() {
        let mut rng = Rng::seed(2);
        let b = rng.normal_tensor(8, 3, 1.0);
        let parts: Vec<Tensor> = (0..2).map(|k| shard_rows(&b, 2, k).unwrap()).collect();
        assert_eq!(Tensor::concat_rows(&parts.iter().collect::<Vec<_>>()), b);
    }

    #[test]
    fn rejects_uneven_columns_with_typed_error() {
        let a = Tensor::zeros(2, 7);
        assert_eq!(
            shard_columns(&a, 2, 0),
            Err(LayoutError::UnevenSplit {
                extent: 7,
                shards: 2,
                dim: 1
            })
        );
    }

    #[test]
    fn flat_shard_roundtrip_with_padding() {
        let data: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let shards: Vec<Vec<f32>> = (0..4).map(|k| flat_shard(&data, 4, k)).collect();
        // Each shard is ceil(10/4)=3 long; total 12 with 2 pad zeros.
        assert!(shards.iter().all(|s| s.len() == 3));
        let concat: Vec<f32> = shards.concat();
        assert_eq!(flat_unshard(&concat, 10), data);
        assert_eq!(concat[10], 0.0);
        assert_eq!(concat[11], 0.0);
    }

    #[test]
    fn flat_shard_exact_division() {
        let data: Vec<f32> = (0..8).map(|i| i as f32).collect();
        assert_eq!(flat_shard(&data, 2, 0), vec![0., 1., 2., 3.]);
        assert_eq!(flat_shard(&data, 2, 1), vec![4., 5., 6., 7.]);
    }

    #[test]
    fn ranges_cover_without_overlap() {
        let len = 23;
        let shards = 5;
        let mut covered = vec![false; len];
        for k in 0..shards {
            let (s, e) = flat_shard_range(len, shards, k);
            for item in covered.iter_mut().take(e).skip(s) {
                assert!(!*item, "overlap");
                *item = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "gap in coverage");
    }
}
