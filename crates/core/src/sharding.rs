//! Shard arithmetic: the alternating column/row splits of paper Eqn. (2)
//! and flat-vector sharding for the FSDP dimension.

use orbit_tensor::Tensor;

/// Column shard `A_{*,k}` of a weight matrix (paper Eqn. (2)). Requires
/// the column count to divide evenly by `shards`.
pub fn shard_columns(a: &Tensor, shards: usize, k: usize) -> Tensor {
    assert!(k < shards, "shard index {k} out of {shards}");
    assert_eq!(
        a.cols() % shards,
        0,
        "{} columns not divisible by {shards} shards",
        a.cols()
    );
    let w = a.cols() / shards;
    a.slice_cols(k * w, (k + 1) * w)
}

/// Row shard `B_{k,*}` of a weight matrix (paper Eqn. (2)).
pub fn shard_rows(b: &Tensor, shards: usize, k: usize) -> Tensor {
    assert!(k < shards, "shard index {k} out of {shards}");
    assert_eq!(
        b.rows() % shards,
        0,
        "{} rows not divisible by {shards} shards",
        b.rows()
    );
    let h = b.rows() / shards;
    b.slice_rows(k * h, (k + 1) * h)
}

/// Padded length so a flat vector divides evenly into `shards` chunks.
pub fn padded_len(len: usize, shards: usize) -> usize {
    len.div_ceil(shards) * shards
}

/// This shard's `[start, end)` range of a flat vector padded to `shards`
/// equal chunks. Tail shards beyond the data are empty ranges.
pub fn flat_shard_range(len: usize, shards: usize, k: usize) -> (usize, usize) {
    assert!(k < shards);
    let chunk = padded_len(len, shards) / shards;
    let start = (k * chunk).min(len);
    let end = ((k + 1) * chunk).min(len);
    (start, end)
}

/// Extract shard `k` of a flat vector, zero-padding the tail shard.
pub fn flat_shard(data: &[f32], shards: usize, k: usize) -> Vec<f32> {
    let chunk = padded_len(data.len(), shards) / shards;
    let (start, end) = flat_shard_range(data.len(), shards, k);
    let mut out = Vec::with_capacity(chunk);
    out.extend_from_slice(&data[start..end]);
    out.resize(chunk, 0.0);
    out
}

/// Reassemble a flat vector of original length `len` from concatenated
/// equal shards (inverse of [`flat_shard`] across all `k`).
pub fn flat_unshard(concatenated: &[f32], len: usize) -> Vec<f32> {
    assert!(concatenated.len() >= len, "missing shard data");
    concatenated[..len].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbit_tensor::init::Rng;

    #[test]
    fn column_shards_partition() {
        let mut rng = Rng::seed(1);
        let a = rng.normal_tensor(4, 8, 1.0);
        let parts: Vec<Tensor> = (0..4).map(|k| shard_columns(&a, 4, k)).collect();
        let whole = Tensor::concat_cols(&parts.iter().collect::<Vec<_>>());
        assert_eq!(whole, a);
    }

    #[test]
    fn row_shards_partition() {
        let mut rng = Rng::seed(2);
        let b = rng.normal_tensor(8, 3, 1.0);
        let parts: Vec<Tensor> = (0..2).map(|k| shard_rows(&b, 2, k)).collect();
        assert_eq!(Tensor::concat_rows(&parts.iter().collect::<Vec<_>>()), b);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_uneven_columns() {
        let a = Tensor::zeros(2, 7);
        let _ = shard_columns(&a, 2, 0);
    }

    #[test]
    fn flat_shard_roundtrip_with_padding() {
        let data: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let shards: Vec<Vec<f32>> = (0..4).map(|k| flat_shard(&data, 4, k)).collect();
        // Each shard is ceil(10/4)=3 long; total 12 with 2 pad zeros.
        assert!(shards.iter().all(|s| s.len() == 3));
        let concat: Vec<f32> = shards.concat();
        assert_eq!(flat_unshard(&concat, 10), data);
        assert_eq!(concat[10], 0.0);
        assert_eq!(concat[11], 0.0);
    }

    #[test]
    fn flat_shard_exact_division() {
        let data: Vec<f32> = (0..8).map(|i| i as f32).collect();
        assert_eq!(flat_shard(&data, 2, 0), vec![0., 1., 2., 3.]);
        assert_eq!(flat_shard(&data, 2, 1), vec![4., 5., 6., 7.]);
    }

    #[test]
    fn ranges_cover_without_overlap() {
        let len = 23;
        let shards = 5;
        let mut covered = vec![false; len];
        for k in 0..shards {
            let (s, e) = flat_shard_range(len, shards, k);
            for item in covered.iter_mut().take(e).skip(s) {
                assert!(!*item, "overlap");
                *item = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "gap in coverage");
    }
}
