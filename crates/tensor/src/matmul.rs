//! Blocked, rayon-parallel GEMM.
//!
//! Each simulated GPU executes its shard's matmuls through these kernels.
//! The loop order is `i-k-j` (output-row outer, reduction middle, output-col
//! inner) so the innermost loop streams both `B`'s row and `C`'s row — the
//! cache-friendly order for row-major data — and the output rows are
//! distributed over the rayon pool.

use crate::bf16::{round_bf16, Precision};
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Rows below which the parallel dispatch overhead exceeds the win.
const PAR_THRESHOLD: usize = 8;

/// `C = A * B` where `A` is `m x k` and `B` is `k x n`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    matmul_p(a, b, Precision::F32)
}

/// `C = A * B` with the given precision mode.
///
/// In [`Precision::BF16Mixed`], every input element is rounded through
/// bfloat16 before use while the accumulator stays f32 — matching the
/// MI250X BF16 MFMA pipeline the paper runs on.
pub fn matmul_p(a: &Tensor, b: &Tensor, prec: Precision) -> Tensor {
    let (m, k) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "matmul inner dim mismatch: {k} vs {k2}");
    let mut c = Tensor::zeros(m, n);
    let bd = b.data();
    let ad = a.data();

    let body = |(i, crow): (usize, &mut [f32])| {
        let arow = &ad[i * k..(i + 1) * k];
        match prec {
            Precision::F32 => {
                for (kk, &av) in arow.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let brow = &bd[kk * n..(kk + 1) * n];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += av * bv;
                    }
                }
            }
            Precision::BF16Mixed => {
                for (kk, &av_raw) in arow.iter().enumerate() {
                    let av = round_bf16(av_raw);
                    if av == 0.0 {
                        continue;
                    }
                    let brow = &bd[kk * n..(kk + 1) * n];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += av * round_bf16(bv);
                    }
                }
            }
        }
    };

    if m >= PAR_THRESHOLD {
        c.data_mut().par_chunks_mut(n).enumerate().for_each(body);
    } else {
        c.data_mut().chunks_mut(n).enumerate().for_each(body);
    }
    c
}

/// `C = A^T * B` where `A` is `k x m` and `B` is `k x n` (no explicit
/// transpose materialized). This is the gradient kernel `dW = X^T dY`.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "matmul_tn inner dim mismatch: {k} vs {k2}");
    let ad = a.data();
    let bd = b.data();
    let mut c = Tensor::zeros(m, n);
    // Accumulate rank-1 updates serially over k, parallelizing each update's
    // output rows; serial-k keeps determinism (no atomic float adds).
    if m >= PAR_THRESHOLD {
        c.data_mut()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, crow)| {
                for kk in 0..k {
                    let av = ad[kk * m + i];
                    if av == 0.0 {
                        continue;
                    }
                    let brow = &bd[kk * n..(kk + 1) * n];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += av * bv;
                    }
                }
            });
    } else {
        for i in 0..m {
            let crow = &mut c.data_mut()[i * n..(i + 1) * n];
            for kk in 0..k {
                let av = ad[kk * m + i];
                if av == 0.0 {
                    continue;
                }
                let brow = &bd[kk * n..(kk + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            }
        }
    }
    c
}

/// `C = A * B^T` where `A` is `m x k` and `B` is `n x k`. This is the
/// gradient kernel `dX = dY W^T` and the attention-score kernel `Q K^T`.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let (n, k2) = b.shape();
    assert_eq!(k, k2, "matmul_nt inner dim mismatch: {k} vs {k2}");
    let ad = a.data();
    let bd = b.data();
    let mut c = Tensor::zeros(m, n);
    let body = |(i, crow): (usize, &mut [f32])| {
        let arow = &ad[i * k..(i + 1) * k];
        for (j, cv) in crow.iter_mut().enumerate() {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            *cv = acc;
        }
    };
    if m >= PAR_THRESHOLD {
        c.data_mut().par_chunks_mut(n).enumerate().for_each(body);
    } else {
        c.data_mut().chunks_mut(n).enumerate().for_each(body);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Rng;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = a.shape();
        let n = b.cols();
        let mut c = Tensor::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for kk in 0..k {
                    s += a.get(i, kk) * b.get(kk, j);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    #[test]
    fn matches_naive_small() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c, naive(&a, &b));
        assert_eq!(c.get(0, 0), 58.0);
        assert_eq!(c.get(1, 1), 154.0);
    }

    #[test]
    fn matches_naive_random_rectangular() {
        let mut rng = Rng::seed(7);
        for &(m, k, n) in &[
            (5usize, 9usize, 4usize),
            (17, 3, 23),
            (32, 32, 32),
            (1, 64, 1),
        ] {
            let a = rng.normal_tensor(m, k, 1.0);
            let b = rng.normal_tensor(k, n, 1.0);
            let c = matmul(&a, &b);
            assert!(c.allclose(&naive(&a, &b), 1e-5, 1e-5), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn tn_equals_explicit_transpose() {
        let mut rng = Rng::seed(11);
        let a = rng.normal_tensor(6, 5, 1.0);
        let b = rng.normal_tensor(6, 7, 1.0);
        let fast = matmul_tn(&a, &b);
        let slow = matmul(&a.transpose(), &b);
        assert!(fast.allclose(&slow, 1e-5, 1e-6));
    }

    #[test]
    fn nt_equals_explicit_transpose() {
        let mut rng = Rng::seed(13);
        let a = rng.normal_tensor(6, 5, 1.0);
        let b = rng.normal_tensor(7, 5, 1.0);
        let fast = matmul_nt(&a, &b);
        let slow = matmul(&a, &b.transpose());
        assert!(fast.allclose(&slow, 1e-5, 1e-6));
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Rng::seed(3);
        let a = rng.normal_tensor(9, 9, 1.0);
        assert!(matmul(&a, &Tensor::eye(9)).allclose(&a, 1e-6, 1e-6));
        assert!(matmul(&Tensor::eye(9), &a).allclose(&a, 1e-6, 1e-6));
    }

    #[test]
    fn bf16_mode_differs_but_stays_close() {
        let mut rng = Rng::seed(5);
        let a = rng.normal_tensor(16, 16, 1.0);
        let b = rng.normal_tensor(16, 16, 1.0);
        let exact = matmul(&a, &b);
        let mixed = matmul_p(&a, &b, Precision::BF16Mixed);
        // bf16 keeps ~2-3 decimal digits; relative error should be small but
        // generally nonzero.
        assert!(mixed.allclose(&exact, 0.05, 0.05));
        assert_ne!(mixed, exact);
    }

    #[test]
    fn column_shard_sum_identity_eqn2() {
        // The heart of Hybrid-STOP (paper Eqn. (2)):
        //   x A B == sum_k x A_{*,k} B_{k,*}
        let mut rng = Rng::seed(17);
        let x = rng.normal_tensor(4, 6, 1.0);
        let a = rng.normal_tensor(6, 8, 1.0);
        let b = rng.normal_tensor(8, 5, 1.0);
        let full = matmul(&matmul(&x, &a), &b);
        for shards in [1usize, 2, 4, 8] {
            let mut acc = Tensor::zeros(4, 5);
            let w = 8 / shards;
            for s in 0..shards {
                let ak = a.slice_cols(s * w, (s + 1) * w);
                let bk = b.slice_rows(s * w, (s + 1) * w);
                acc.add_assign(&matmul(&matmul(&x, &ak), &bk));
            }
            assert!(acc.allclose(&full, 1e-4, 1e-4), "shards={shards}");
        }
    }
}
