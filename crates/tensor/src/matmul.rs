//! Blocked, packed, rayon-parallel GEMM.
//!
//! Each simulated GPU executes its shard's matmuls through these kernels.
//! Two code paths share every kernel:
//!
//! - a **legacy** `i-k-j` loop (output-row outer, reduction middle, output-col
//!   inner) for small problems, where the innermost loop streams both `B`'s
//!   row and `C`'s row — the cache-friendly order for row-major data;
//! - a **packed** path for large problems that first copies `B` into
//!   contiguous `KC x NC` panels (GEBP-style), then drives a 4x-unrolled
//!   inner kernel over `MC`-row chunks of `A`/`C` distributed across the
//!   rayon pool.
//!
//! Determinism is sacred here: for every output element the packed path
//! performs *exactly* the same additions in *exactly* the same (ascending
//! `k`) order as the legacy path, including the `a == 0.0` skip, so the two
//! paths are bit-identical and path selection can depend on shape without
//! perturbing any engine-equivalence test. Parallel dispatch is **work-based**
//! (`m*k*n` mul-adds) rather than row-based, so tall-skinny and short-wide
//! shapes both dispatch sensibly.

use crate::bf16::{round_bf16, Precision};
use crate::tensor::Tensor;
use crate::workspace::Workspace;
use rayon::prelude::*;

/// Mul-adds above which parallel dispatch overhead pays for itself.
const PAR_MIN_WORK: usize = 1 << 15;
/// Mul-adds above which panel-packing `B` pays for itself.
const PACK_MIN_WORK: usize = 1 << 17;
/// Minimum output rows for the packed path (packing amortizes across rows).
const PACK_MIN_ROWS: usize = 8;
/// Output-row chunk per rayon task in the packed path.
const MC: usize = 64;
/// Reduction-dimension panel height.
const KC: usize = 128;
/// Output-column panel width.
const NC: usize = 256;

#[inline]
fn use_parallel(m: usize, k: usize, n: usize) -> bool {
    m >= 2 && m.saturating_mul(k).saturating_mul(n) >= PAR_MIN_WORK
}

#[inline]
fn use_packed(m: usize, k: usize, n: usize) -> bool {
    m >= PACK_MIN_ROWS && m.saturating_mul(k).saturating_mul(n) >= PACK_MIN_WORK
}

/// `C = A * B` where `A` is `m x k` and `B` is `k x n`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    matmul_p(a, b, Precision::F32)
}

/// `C = A * B` with the given precision mode.
///
/// In [`Precision::BF16Mixed`], every input element is rounded through
/// bfloat16 before use while the accumulator stays f32 — matching the
/// MI250X BF16 MFMA pipeline the paper runs on. The packed path rounds `B`
/// once at pack time (rounding is idempotent, so this is bit-identical to
/// rounding at every use).
pub fn matmul_p(a: &Tensor, b: &Tensor, prec: Precision) -> Tensor {
    let (m, k) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "matmul inner dim mismatch: {k} vs {k2}");
    let mut c = Tensor::zeros(m, n);
    if use_packed(m, k, n) {
        gemm_nn_packed(a.data(), b.data(), c.data_mut(), m, k, n, prec);
    } else {
        gemm_nn_legacy(a.data(), b.data(), c.data_mut(), m, k, n, prec);
    }
    c
}

/// Legacy `i-k-j` kernel; rows go parallel when the work warrants it.
fn gemm_nn_legacy(
    ad: &[f32],
    bd: &[f32],
    cd: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    prec: Precision,
) {
    let body = |(i, crow): (usize, &mut [f32])| {
        let arow = &ad[i * k..(i + 1) * k];
        match prec {
            Precision::F32 => {
                for (kk, &av) in arow.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let brow = &bd[kk * n..(kk + 1) * n];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += av * bv;
                    }
                }
            }
            Precision::BF16Mixed => {
                for (kk, &av_raw) in arow.iter().enumerate() {
                    let av = round_bf16(av_raw);
                    if av == 0.0 {
                        continue;
                    }
                    let brow = &bd[kk * n..(kk + 1) * n];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += av * round_bf16(bv);
                    }
                }
            }
        }
    };
    if use_parallel(m, k, n) {
        cd.par_chunks_mut(n).enumerate().for_each(body);
    } else {
        cd.chunks_mut(n).enumerate().for_each(body);
    }
}

/// Packed GEBP kernel: `B` is copied into contiguous `KC x NC` panels once,
/// then `MC`-row chunks of `C` are filled in parallel. Additions per output
/// element happen in ascending-`k` order with the `a == 0.0` skip — exactly
/// the legacy order — so the result is bit-identical to the legacy path.
fn gemm_nn_packed(
    ad: &[f32],
    bd: &[f32],
    cd: &mut [f32],
    _m: usize,
    k: usize,
    n: usize,
    prec: Precision,
) {
    let ws = Workspace::global();
    let mut packed = ws.take(k * n);
    // Panel (J, Kb) starts at `k*j0 + k0*ncw`: all columns left of this panel
    // occupy `k*j0` slots and earlier k-panels of this column block occupy
    // `k0*ncw` — a closed form both pack and compute derive independently.
    for j0 in (0..n).step_by(NC) {
        let ncw = NC.min(n - j0);
        for k0 in (0..k).step_by(KC) {
            let kcw = KC.min(k - k0);
            let base = k * j0 + k0 * ncw;
            for kk in 0..kcw {
                let src = &bd[(k0 + kk) * n + j0..(k0 + kk) * n + j0 + ncw];
                let dst = &mut packed[base + kk * ncw..base + (kk + 1) * ncw];
                match prec {
                    Precision::F32 => dst.copy_from_slice(src),
                    Precision::BF16Mixed => {
                        for (d, &s) in dst.iter_mut().zip(src) {
                            *d = round_bf16(s);
                        }
                    }
                }
            }
        }
    }

    let packed_ref = &packed;
    cd.par_chunks_mut(MC * n)
        .enumerate()
        .for_each(|(chunk, cchunk)| {
            let i0 = chunk * MC;
            let rows = cchunk.len() / n;
            for j0 in (0..n).step_by(NC) {
                let ncw = NC.min(n - j0);
                for k0 in (0..k).step_by(KC) {
                    let kcw = KC.min(k - k0);
                    let panel = &packed_ref[k * j0 + k0 * ncw..k * j0 + k0 * ncw + kcw * ncw];
                    for i in 0..rows {
                        let arow = &ad[(i0 + i) * k + k0..(i0 + i) * k + k0 + kcw];
                        let crow = &mut cchunk[i * n + j0..i * n + j0 + ncw];
                        gebp_row(arow, panel, crow, kcw, ncw, prec);
                    }
                }
            }
        });
    ws.put(packed);
}

/// One row of the packed micro-kernel: `crow += arow * panel`, 4x-unrolled
/// over `k`, keeping each `C` element in a register across the 4 lanes.
/// Additions stay in ascending-`k` order; zero `a` values are skipped.
#[inline]
fn gebp_row(
    arow: &[f32],
    panel: &[f32],
    crow: &mut [f32],
    kcw: usize,
    ncw: usize,
    prec: Precision,
) {
    let load = |v: f32| match prec {
        Precision::F32 => v,
        Precision::BF16Mixed => round_bf16(v),
    };
    let mut kk = 0;
    while kk + 4 <= kcw {
        let a0 = load(arow[kk]);
        let a1 = load(arow[kk + 1]);
        let a2 = load(arow[kk + 2]);
        let a3 = load(arow[kk + 3]);
        let b0 = &panel[kk * ncw..(kk + 1) * ncw];
        let b1 = &panel[(kk + 1) * ncw..(kk + 2) * ncw];
        let b2 = &panel[(kk + 2) * ncw..(kk + 3) * ncw];
        let b3 = &panel[(kk + 3) * ncw..(kk + 4) * ncw];
        if a0 != 0.0 && a1 != 0.0 && a2 != 0.0 && a3 != 0.0 {
            for j in 0..ncw {
                let mut cj = crow[j];
                cj += a0 * b0[j];
                cj += a1 * b1[j];
                cj += a2 * b2[j];
                cj += a3 * b3[j];
                crow[j] = cj;
            }
        } else {
            // Preserve the zero-skip semantics lane by lane.
            for (al, bl) in [(a0, b0), (a1, b1), (a2, b2), (a3, b3)] {
                if al == 0.0 {
                    continue;
                }
                for (cv, &bv) in crow.iter_mut().zip(bl) {
                    *cv += al * bv;
                }
            }
        }
        kk += 4;
    }
    while kk < kcw {
        let av = load(arow[kk]);
        if av != 0.0 {
            let brow = &panel[kk * ncw..(kk + 1) * ncw];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
        kk += 1;
    }
}

/// `C = A^T * B` where `A` is `k x m` and `B` is `k x n` (no explicit
/// transpose materialized). This is the gradient kernel `dW = X^T dY`.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "matmul_tn inner dim mismatch: {k} vs {k2}");
    let ad = a.data();
    let bd = b.data();
    let mut c = Tensor::zeros(m, n);
    // Each output row accumulates serially over k, parallelizing across
    // output rows; serial-k keeps determinism (no atomic float adds).
    let body = |(i, crow): (usize, &mut [f32])| {
        for kk in 0..k {
            let av = ad[kk * m + i];
            if av == 0.0 {
                continue;
            }
            let brow = &bd[kk * n..(kk + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    };
    if use_parallel(m, k, n) {
        c.data_mut().par_chunks_mut(n).enumerate().for_each(body);
    } else {
        c.data_mut().chunks_mut(n).enumerate().for_each(body);
    }
    c
}

/// `C = A * B^T` where `A` is `m x k` and `B` is `n x k`. This is the
/// gradient kernel `dX = dY W^T` and the attention-score kernel `Q K^T`.
///
/// The packed path interleaves 4 rows of `B` lane-by-lane so the inner loop
/// computes 4 independent dot products at once (vectorizable across lanes);
/// each dot product still accumulates in ascending-`k` order with a single
/// accumulator, bit-identical to the legacy scalar dot.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let (n, k2) = b.shape();
    assert_eq!(k, k2, "matmul_nt inner dim mismatch: {k} vs {k2}");
    let mut c = Tensor::zeros(m, n);
    if use_packed(m, k, n) {
        gemm_nt_packed(a.data(), b.data(), c.data_mut(), m, k, n);
    } else {
        gemm_nt_legacy(a.data(), b.data(), c.data_mut(), m, k, n);
    }
    c
}

fn gemm_nt_legacy(ad: &[f32], bd: &[f32], cd: &mut [f32], m: usize, k: usize, n: usize) {
    let body = |(i, crow): (usize, &mut [f32])| {
        let arow = &ad[i * k..(i + 1) * k];
        for (j, cv) in crow.iter_mut().enumerate() {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            *cv = acc;
        }
    };
    if use_parallel(m, k, n) {
        cd.par_chunks_mut(n).enumerate().for_each(body);
    } else {
        cd.chunks_mut(n).enumerate().for_each(body);
    }
}

/// Lane width of the packed NT kernel: 4 rows of `B` share the inner loop.
const NT_LANES: usize = 4;

fn gemm_nt_packed(ad: &[f32], bd: &[f32], cd: &mut [f32], m: usize, k: usize, n: usize) {
    let ws = Workspace::global();
    let mut packed = ws.take(k * n);
    // Group `B` rows in fours; group `g` (rows j0..j0+lanes) lives at
    // `j0 * k`, stored lane-interleaved: packed[j0*k + kk*lanes + l].
    for j0 in (0..n).step_by(NT_LANES) {
        let lanes = NT_LANES.min(n - j0);
        let dst = &mut packed[j0 * k..j0 * k + lanes * k];
        for l in 0..lanes {
            let src = &bd[(j0 + l) * k..(j0 + l + 1) * k];
            for (kk, &v) in src.iter().enumerate() {
                dst[kk * lanes + l] = v;
            }
        }
    }

    let packed_ref = &packed;
    let body = |(i, crow): (usize, &mut [f32])| {
        let arow = &ad[i * k..(i + 1) * k];
        for j0 in (0..n).step_by(NT_LANES) {
            let lanes = NT_LANES.min(n - j0);
            let panel = &packed_ref[j0 * k..j0 * k + lanes * k];
            if lanes == NT_LANES {
                let mut acc = [0.0f32; NT_LANES];
                let mut kk = 0;
                while kk + 4 <= k {
                    let a0 = arow[kk];
                    let a1 = arow[kk + 1];
                    let a2 = arow[kk + 2];
                    let a3 = arow[kk + 3];
                    let p = &panel[kk * NT_LANES..(kk + 4) * NT_LANES];
                    for (l, s) in acc.iter_mut().enumerate() {
                        let mut sl = *s;
                        sl += a0 * p[l];
                        sl += a1 * p[NT_LANES + l];
                        sl += a2 * p[2 * NT_LANES + l];
                        sl += a3 * p[3 * NT_LANES + l];
                        *s = sl;
                    }
                    kk += 4;
                }
                while kk < k {
                    let av = arow[kk];
                    let p = &panel[kk * NT_LANES..(kk + 1) * NT_LANES];
                    for (l, s) in acc.iter_mut().enumerate() {
                        *s += av * p[l];
                    }
                    kk += 1;
                }
                crow[j0..j0 + NT_LANES].copy_from_slice(&acc);
            } else {
                for l in 0..lanes {
                    let mut acc = 0.0f32;
                    for (kk, &av) in arow.iter().enumerate() {
                        acc += av * panel[kk * lanes + l];
                    }
                    crow[j0 + l] = acc;
                }
            }
        }
    };
    if use_parallel(m, k, n) {
        cd.par_chunks_mut(n).enumerate().for_each(body);
    } else {
        cd.chunks_mut(n).enumerate().for_each(body);
    }
    ws.put(packed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Rng;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = a.shape();
        let n = b.cols();
        let mut c = Tensor::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for kk in 0..k {
                    s += a.get(i, kk) * b.get(kk, j);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    #[test]
    fn matches_naive_small() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c, naive(&a, &b));
        assert_eq!(c.get(0, 0), 58.0);
        assert_eq!(c.get(1, 1), 154.0);
    }

    #[test]
    fn matches_naive_random_rectangular() {
        let mut rng = Rng::seed(7);
        for &(m, k, n) in &[
            (5usize, 9usize, 4usize),
            (17, 3, 23),
            (32, 32, 32),
            (1, 64, 1),
        ] {
            let a = rng.normal_tensor(m, k, 1.0);
            let b = rng.normal_tensor(k, n, 1.0);
            let c = matmul(&a, &b);
            assert!(c.allclose(&naive(&a, &b), 1e-5, 1e-5), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn packed_path_is_bit_identical_to_legacy() {
        // The engine bit-identity suites rely on path selection never
        // changing numerics: packed and legacy must agree to the bit,
        // including the a == 0.0 skip semantics.
        let mut rng = Rng::seed(19);
        for &(m, k, n) in &[(16usize, 130usize, 257usize), (64, 96, 300), (9, 500, 40)] {
            let mut a = rng.normal_tensor(m, k, 1.0);
            // Sprinkle exact zeros to exercise the skip lanes.
            for (idx, v) in a.data_mut().iter_mut().enumerate() {
                if idx % 7 == 0 {
                    *v = 0.0;
                }
            }
            let b = rng.normal_tensor(k, n, 1.0);
            for prec in [Precision::F32, Precision::BF16Mixed] {
                let mut c_packed = Tensor::zeros(m, n);
                let mut c_legacy = Tensor::zeros(m, n);
                gemm_nn_packed(a.data(), b.data(), c_packed.data_mut(), m, k, n, prec);
                gemm_nn_legacy(a.data(), b.data(), c_legacy.data_mut(), m, k, n, prec);
                assert_eq!(c_packed, c_legacy, "{m}x{k}x{n} {prec:?}");
            }
            let mut c_packed = Tensor::zeros(m, n);
            let mut c_legacy = Tensor::zeros(m, n);
            let bt = rng.normal_tensor(n, k, 1.0);
            gemm_nt_packed(a.data(), bt.data(), c_packed.data_mut(), m, k, n);
            gemm_nt_legacy(a.data(), bt.data(), c_legacy.data_mut(), m, k, n);
            assert_eq!(c_packed, c_legacy, "nt {m}x{k}x{n}");
        }
    }

    #[test]
    fn shape_sweep_tall_skinny_and_short_wide() {
        // Work-based dispatch must stay correct across shapes that the old
        // rows-based threshold classified badly: tall-skinny (many rows,
        // tiny work) and short-wide (few rows, huge work).
        let mut rng = Rng::seed(23);
        for &(m, k, n) in &[
            (1024usize, 4usize, 4usize), // tall-skinny: rows >> work/row
            (257, 3, 5),
            (3, 129, 257), // short-wide: few rows, wide panels
            (4, 300, 300), // crosses PAR_MIN_WORK with m < old PAR_THRESHOLD
            (2, 70, 70),
            (8, 64, 512), // crosses PACK_MIN_WORK exactly at PACK_MIN_ROWS
            (100, 100, 100),
        ] {
            let a = rng.normal_tensor(m, k, 1.0);
            let b = rng.normal_tensor(k, n, 1.0);
            assert!(
                matmul(&a, &b).allclose(&naive(&a, &b), 1e-4, 1e-4),
                "nn {m}x{k}x{n}"
            );
            let bt = rng.normal_tensor(n, k, 1.0);
            assert!(
                matmul_nt(&a, &bt).allclose(&naive(&a, &bt.transpose()), 1e-4, 1e-4),
                "nt {m}x{k}x{n}"
            );
            let at = rng.normal_tensor(k, m, 1.0);
            assert!(
                matmul_tn(&at, &b).allclose(&naive(&at.transpose(), &b), 1e-4, 1e-4),
                "tn {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn tn_equals_explicit_transpose() {
        let mut rng = Rng::seed(11);
        let a = rng.normal_tensor(6, 5, 1.0);
        let b = rng.normal_tensor(6, 7, 1.0);
        let fast = matmul_tn(&a, &b);
        let slow = matmul(&a.transpose(), &b);
        assert!(fast.allclose(&slow, 1e-5, 1e-6));
    }

    #[test]
    fn nt_equals_explicit_transpose() {
        let mut rng = Rng::seed(13);
        let a = rng.normal_tensor(6, 5, 1.0);
        let b = rng.normal_tensor(7, 5, 1.0);
        let fast = matmul_nt(&a, &b);
        let slow = matmul(&a, &b.transpose());
        assert!(fast.allclose(&slow, 1e-5, 1e-6));
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Rng::seed(3);
        let a = rng.normal_tensor(9, 9, 1.0);
        assert!(matmul(&a, &Tensor::eye(9)).allclose(&a, 1e-6, 1e-6));
        assert!(matmul(&Tensor::eye(9), &a).allclose(&a, 1e-6, 1e-6));
    }

    #[test]
    fn bf16_mode_differs_but_stays_close() {
        let mut rng = Rng::seed(5);
        let a = rng.normal_tensor(16, 16, 1.0);
        let b = rng.normal_tensor(16, 16, 1.0);
        let exact = matmul(&a, &b);
        let mixed = matmul_p(&a, &b, Precision::BF16Mixed);
        // bf16 keeps ~2-3 decimal digits; relative error should be small but
        // generally nonzero.
        assert!(mixed.allclose(&exact, 0.05, 0.05));
        assert_ne!(mixed, exact);
    }

    #[test]
    fn column_shard_sum_identity_eqn2() {
        // The heart of Hybrid-STOP (paper Eqn. (2)):
        //   x A B == sum_k x A_{*,k} B_{k,*}
        let mut rng = Rng::seed(17);
        let x = rng.normal_tensor(4, 6, 1.0);
        let a = rng.normal_tensor(6, 8, 1.0);
        let b = rng.normal_tensor(8, 5, 1.0);
        let full = matmul(&matmul(&x, &a), &b);
        for shards in [1usize, 2, 4, 8] {
            let mut acc = Tensor::zeros(4, 5);
            let w = 8 / shards;
            for s in 0..shards {
                let ak = a.slice_cols(s * w, (s + 1) * w);
                let bk = b.slice_rows(s * w, (s + 1) * w);
                acc.add_assign(&matmul(&matmul(&x, &ak), &bk));
            }
            assert!(acc.allclose(&full, 1e-4, 1e-4), "shards={shards}");
        }
    }
}
