//! Deterministic parameter initialization.
//!
//! Every stochastic choice in ORBIT-RS flows through a seeded [`Rng`] so that
//! single-device and distributed runs can be initialized identically — a
//! precondition for the gradient-equivalence tests that validate Hybrid-STOP.

use crate::tensor::Tensor;
use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr_shim::Normal;

/// Minimal normal-distribution sampler (Box-Muller) so we do not need the
/// `rand_distr` crate: `rand` itself only ships uniform distributions.
mod rand_distr_shim {
    use rand::Rng;

    /// Normal distribution via the Box-Muller transform.
    #[derive(Clone, Copy, Debug)]
    pub struct Normal {
        pub mean: f32,
        pub std: f32,
    }

    impl Normal {
        pub fn new(mean: f32, std: f32) -> Self {
            Normal { mean, std }
        }
    }

    impl rand::distributions::Distribution<f32> for Normal {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            // Box-Muller: two uniforms -> one standard normal.
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
            self.mean + self.std * z
        }
    }
}

/// Seeded RNG for deterministic initialization and data generation.
pub struct Rng {
    inner: StdRng,
    /// Root seed retained so derived streams depend on it.
    stream_seed: u64,
}

impl Rng {
    /// Construct from a fixed seed.
    pub fn seed(seed: u64) -> Self {
        Rng {
            inner: StdRng::seed_from_u64(seed),
            stream_seed: seed,
        }
    }

    /// Derive an independent stream for a sub-component (`label` mixes the
    /// stream so layers get uncorrelated parameters from one master seed,
    /// while different master seeds give entirely different streams).
    pub fn derive(&self, label: u64) -> Rng {
        // SplitMix-style mixing of (seed, label) into a new seed.
        let mut z = self
            .stream_seed
            .rotate_left(17)
            .wrapping_add(label)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Rng::seed(z ^ (z >> 31))
    }

    /// One standard-normal sample scaled by `std`.
    pub fn normal(&mut self, std: f32) -> f32 {
        Normal::new(0.0, std).sample(&mut self.inner)
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        use rand::Rng as _;
        self.inner.gen_range(lo..hi)
    }

    /// Uniform integer in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        use rand::Rng as _;
        self.inner.gen_range(0..n)
    }

    /// `rows x cols` tensor of N(0, std^2) samples.
    pub fn normal_tensor(&mut self, rows: usize, cols: usize, std: f32) -> Tensor {
        let dist = Normal::new(0.0, std);
        let data = (0..rows * cols)
            .map(|_| dist.sample(&mut self.inner))
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    /// Truncated-normal init (|z| <= 2 std), the ViT convention for
    /// embeddings and attention projections.
    pub fn trunc_normal_tensor(&mut self, rows: usize, cols: usize, std: f32) -> Tensor {
        let dist = Normal::new(0.0, std);
        let data = (0..rows * cols)
            .map(|_| loop {
                let v = dist.sample(&mut self.inner);
                if v.abs() <= 2.0 * std {
                    break v;
                }
            })
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    /// Xavier/Glorot-uniform init for linear layers.
    pub fn xavier_tensor(&mut self, fan_in: usize, fan_out: usize) -> Tensor {
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        let data = (0..fan_in * fan_out)
            .map(|_| self.uniform(-bound, bound))
            .collect();
        Tensor::from_vec(fan_in, fan_out, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed(42);
        let mut b = Rng::seed(42);
        let ta = a.normal_tensor(4, 4, 1.0);
        let tb = b.normal_tensor(4, 4, 1.0);
        assert_eq!(ta, tb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed(1);
        let mut b = Rng::seed(2);
        assert_ne!(a.normal_tensor(4, 4, 1.0), b.normal_tensor(4, 4, 1.0));
    }

    #[test]
    fn derive_is_deterministic_and_distinct() {
        let base = Rng::seed(7);
        let mut d1 = base.derive(1);
        let mut d1b = Rng::seed(7).derive(1);
        let mut d2 = base.derive(2);
        let t1 = d1.normal_tensor(2, 2, 1.0);
        assert_eq!(t1, d1b.normal_tensor(2, 2, 1.0));
        assert_ne!(t1, d2.normal_tensor(2, 2, 1.0));
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let mut rng = Rng::seed(99);
        let t = rng.normal_tensor(200, 200, 2.0);
        assert!(t.mean().abs() < 0.05, "mean {}", t.mean());
        let var = t.data().iter().map(|v| v * v).sum::<f32>() / t.len() as f32;
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn trunc_normal_is_truncated() {
        let mut rng = Rng::seed(5);
        let t = rng.trunc_normal_tensor(100, 100, 0.5);
        assert!(t.max_abs() <= 1.0 + 1e-6);
    }

    #[test]
    fn xavier_bound_respected() {
        let mut rng = Rng::seed(5);
        let t = rng.xavier_tensor(64, 32);
        let bound = (6.0f32 / 96.0).sqrt();
        assert!(t.max_abs() <= bound + 1e-6);
        assert_eq!(t.shape(), (64, 32));
    }

    #[test]
    fn uniform_range_and_index() {
        let mut rng = Rng::seed(8);
        for _ in 0..100 {
            let v = rng.uniform(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&v));
            assert!(rng.index(10) < 10);
        }
    }
}
