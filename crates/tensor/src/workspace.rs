//! Reusable scratch arena for compute kernels.
//!
//! Every simulated GPU runs its kernels on the host CPU, so a training step
//! that allocates fresh `Vec<f32>` scratch inside each kernel call spends a
//! measurable fraction of its wall-clock in the allocator and loses cache
//! residency between steps. A [`Workspace`] is a pool of `Vec<f32>` buffers:
//! kernels [`take`](Workspace::take) a zeroed buffer of the length they need
//! and [`put`](Workspace::put) it back when done, so steady-state steps reuse
//! the same allocations instead of minting new ones.
//!
//! Lifetime rules:
//! - A buffer taken from a workspace must be returned to the *same*
//!   workspace (`Workspace` is cheaply clonable and clones share the pool).
//! - Buffers are zero-filled on `take`, so pooling never changes numerics —
//!   a kernel behaves identically whether its scratch is fresh or recycled.
//! - The pool is thread-safe; rayon worker closures may take/put
//!   concurrently. Accounting (outstanding/peak bytes) is exact even under
//!   concurrency because it is updated atomically at take/put boundaries.
//!
//! The peak-byte accounting doubles as the measurement hook for the
//! streaming-attention memory claim: the fused kernel's scratch high-water
//! mark must stay `o(T^2)` in the sequence length (see the long-sequence
//! test in `kernels::attention` and `kernel_bench`).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Maximum number of idle buffers kept in the pool; returning more drops the
/// smallest excess buffer instead of hoarding memory without bound.
const MAX_POOLED: usize = 64;

#[derive(Debug, Default)]
struct Inner {
    pool: Mutex<Vec<Vec<f32>>>,
    /// Bytes currently lent out via `take` and not yet returned.
    outstanding: AtomicUsize,
    /// High-water mark of `outstanding` since creation / last reset.
    peak: AtomicUsize,
    /// `take` calls served from a pooled buffer with sufficient capacity.
    hits: AtomicUsize,
    /// `take` calls that had to (re)allocate.
    misses: AtomicUsize,
}

/// A shared, thread-safe pool of reusable `f32` scratch buffers.
///
/// Cloning a `Workspace` is cheap and shares the underlying pool, which is
/// how one arena gets threaded through a model's blocks and the rayon tasks
/// they spawn.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    inner: Arc<Inner>,
}

impl Workspace {
    /// A fresh, empty workspace.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Process-wide fallback workspace used by kernel entry points that are
    /// not (yet) threaded through an explicit arena.
    pub fn global() -> &'static Workspace {
        static GLOBAL: OnceLock<Workspace> = OnceLock::new();
        GLOBAL.get_or_init(Workspace::new)
    }

    /// Borrow a zero-filled buffer of exactly `len` elements.
    ///
    /// Prefers the pooled buffer with the smallest sufficient capacity
    /// (best fit); falls back to growing an existing buffer or allocating.
    pub fn take(&self, len: usize) -> Vec<f32> {
        let mut buf = {
            let mut pool = self.inner.pool.lock().expect("workspace pool poisoned");
            let best = pool
                .iter()
                .enumerate()
                .filter(|(_, b)| b.capacity() >= len)
                .min_by_key(|(_, b)| b.capacity())
                .map(|(i, _)| i);
            match best {
                Some(i) => {
                    self.inner.hits.fetch_add(1, Ordering::Relaxed);
                    pool.swap_remove(i)
                }
                None => {
                    self.inner.misses.fetch_add(1, Ordering::Relaxed);
                    // Recycle the largest existing buffer's allocation if any
                    // (it will grow), else start fresh.
                    pool.pop().unwrap_or_default()
                }
            }
        };
        buf.clear();
        buf.resize(len, 0.0);
        let bytes = len * std::mem::size_of::<f32>();
        let now = self.inner.outstanding.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.inner.peak.fetch_max(now, Ordering::Relaxed);
        buf
    }

    /// Return a buffer previously obtained from [`take`](Workspace::take).
    pub fn put(&self, buf: Vec<f32>) {
        let bytes = buf.len() * std::mem::size_of::<f32>();
        self.inner.outstanding.fetch_sub(bytes, Ordering::Relaxed);
        if buf.capacity() == 0 {
            return;
        }
        let mut pool = self.inner.pool.lock().expect("workspace pool poisoned");
        pool.push(buf);
        if pool.len() > MAX_POOLED {
            // Drop the smallest buffer: big ones are the expensive ones to
            // re-create.
            if let Some(i) = pool
                .iter()
                .enumerate()
                .min_by_key(|(_, b)| b.capacity())
                .map(|(i, _)| i)
            {
                pool.swap_remove(i);
            }
        }
    }

    /// Bytes currently lent out and not yet returned.
    pub fn outstanding_bytes(&self) -> usize {
        self.inner.outstanding.load(Ordering::Relaxed)
    }

    /// High-water mark of outstanding bytes since creation or the last
    /// [`reset_peak`](Workspace::reset_peak).
    pub fn peak_bytes(&self) -> usize {
        self.inner.peak.load(Ordering::Relaxed)
    }

    /// Reset the high-water mark to the current outstanding level.
    pub fn reset_peak(&self) {
        self.inner
            .peak
            .store(self.outstanding_bytes(), Ordering::Relaxed);
    }

    /// Total capacity bytes parked in the idle pool.
    pub fn pooled_bytes(&self) -> usize {
        let pool = self.inner.pool.lock().expect("workspace pool poisoned");
        pool.iter()
            .map(|b| b.capacity() * std::mem::size_of::<f32>())
            .sum()
    }

    /// `take` calls served without allocating (pool hit).
    pub fn hits(&self) -> usize {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// `take` calls that had to allocate or grow a buffer.
    pub fn misses(&self) -> usize {
        self.inner.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zero_filled_even_when_recycled() {
        let ws = Workspace::new();
        let mut b = ws.take(16);
        b.iter_mut().for_each(|v| *v = 7.0);
        ws.put(b);
        let b2 = ws.take(8);
        assert_eq!(b2.len(), 8);
        assert!(b2.iter().all(|&v| v == 0.0));
        ws.put(b2);
    }

    #[test]
    fn steady_state_reuses_allocations() {
        let ws = Workspace::new();
        // Warm up: one round trip allocates.
        let b = ws.take(1024);
        ws.put(b);
        let misses_before = ws.misses();
        for _ in 0..100 {
            let b = ws.take(1024);
            ws.put(b);
        }
        assert_eq!(ws.misses(), misses_before, "steady state must not allocate");
        assert!(ws.hits() >= 100);
    }

    #[test]
    fn peak_accounting_tracks_concurrent_high_water() {
        let ws = Workspace::new();
        let a = ws.take(256); // 1 KiB
        let b = ws.take(256); // 1 KiB more
        assert_eq!(ws.outstanding_bytes(), 2048);
        assert_eq!(ws.peak_bytes(), 2048);
        ws.put(a);
        ws.put(b);
        assert_eq!(ws.outstanding_bytes(), 0);
        assert_eq!(ws.peak_bytes(), 2048, "peak survives returns");
        ws.reset_peak();
        assert_eq!(ws.peak_bytes(), 0);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let ws = Workspace::new();
        let small = ws.take(8);
        let big = ws.take(4096);
        ws.put(small);
        ws.put(big);
        // Asking for 8 must grab the 8-capacity buffer, leaving the big one.
        let b = ws.take(8);
        assert!(b.capacity() < 4096);
        ws.put(b);
    }

    #[test]
    fn pool_is_bounded() {
        let ws = Workspace::new();
        let bufs: Vec<_> = (0..2 * MAX_POOLED).map(|i| ws.take(i + 1)).collect();
        for b in bufs {
            ws.put(b);
        }
        let pool = ws.inner.pool.lock().unwrap();
        assert!(pool.len() <= MAX_POOLED);
    }

    #[test]
    fn clones_share_the_pool() {
        let ws = Workspace::new();
        let ws2 = ws.clone();
        let b = ws.take(64);
        ws2.put(b);
        assert_eq!(ws.outstanding_bytes(), 0);
        let _ = ws2.take(64); // served from the buffer ws allocated
        assert_eq!(ws2.hits(), 1);
    }
}
