//! Layout-aware distributed tensors (`DTensor`) over a named device mesh.
//!
//! Every parallel engine in `orbit-core` used to hand-roll its own shard
//! math (column/row splits for tensor parallelism, padded flat shards for
//! FSDP, pending-reduce gradient buffers for DDP). This module makes the
//! layout *declarative*, veScale-style: a [`DTensor`] wraps a local
//! [`Tensor`] plus one [`Layout`] per axis of a named [`DeviceMesh`], and
//! [`DTensor::reshard`] is the single first-class op that moves a tensor
//! between layouts. Resharding lowers onto exactly the nonblocking
//! collectives the engines already issue (`all_gather_start` /
//! `reduce_scatter_start` / `all_reduce_start`), through the
//! [`Collectives`] trait — so the collective payloads, issue order and
//! padding are bit-identical to the hand-rolled versions, and the
//! schedule verifier observes an unchanged issue stream.
//!
//! The shard arithmetic itself (`shard_columns`/`shard_rows` for paper
//! Eqn. (2) splits, `flat_shard`/`flat_unshard`/`padded_len` for FSDP flat
//! parameter shards) lives here as the module's layout algebra; engines
//! import it from this module directly.
//!
//! # Layout algebra
//!
//! A placement on one mesh axis of size `n` (this rank at index `k`):
//!
//! - [`Layout::Replicate`] — every rank holds the full tensor.
//! - [`Layout::Shard(d)`] — the tensor is split along dimension `d`
//!   (0 = rows, 1 = cols) into `n` equal slices; rank `k` holds slice `k`.
//! - [`Layout::ShardFlat`] — the tensor's row-major data, zero-padded to a
//!   multiple of `n`, is split into `n` equal flat chunks (the FSDP unit).
//! - [`Layout::Partial`] — every rank holds an unreduced addend; the
//!   logical tensor is the element-wise sum over the axis (a gradient
//!   before its reduction).
//!
//! At most one mesh axis may be non-[`Layout::Replicate`] at a time;
//! resharding transitions exactly the named axis.

use crate::tensor::Tensor;
use std::fmt;

// ---------------------------------------------------------------------------
// Layouts and errors
// ---------------------------------------------------------------------------

/// Placement of a tensor on one mesh axis. See the module docs for the
/// algebra.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Full copy on every rank of the axis.
    Replicate,
    /// Split along dimension `0` (rows) or `1` (cols) into equal slices.
    Shard(usize),
    /// Row-major data padded to a multiple of the axis size and split into
    /// equal flat chunks.
    ShardFlat,
    /// Unreduced addend: the logical tensor is the sum over the axis.
    Partial,
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Layout::Replicate => write!(f, "replicate"),
            Layout::Shard(d) => write!(f, "shard({d})"),
            Layout::ShardFlat => write!(f, "shard_flat"),
            Layout::Partial => write!(f, "partial"),
        }
    }
}

/// A typed layout violation — the replacement for the panics the old
/// hand-rolled shard helpers raised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// The named mesh axis does not exist.
    UnknownAxis { axis: String },
    /// A dimension's extent does not divide into the requested shard count.
    UnevenSplit {
        extent: usize,
        shards: usize,
        dim: usize,
    },
    /// `Shard(d)` with `d` outside the 2-D tensor (only 0 and 1 exist).
    BadDim { dim: usize },
    /// Shard index out of range for the shard count.
    ShardIndex { index: usize, shards: usize },
    /// The communicator's size does not match the mesh axis being
    /// resharded over.
    CommSizeMismatch {
        axis: String,
        expected: usize,
        got: usize,
    },
    /// No lowering exists for this transition (e.g. anything →
    /// [`Layout::Partial`], or sharding a second axis while another is
    /// already non-replicated).
    IllegalReshard { from: Layout, to: Layout },
    /// A local shard's shape is inconsistent with the claimed layout and
    /// global shape.
    ShapeMismatch {
        expected: (usize, usize),
        got: (usize, usize),
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::UnknownAxis { axis } => write!(f, "unknown mesh axis {axis:?}"),
            LayoutError::UnevenSplit {
                extent,
                shards,
                dim,
            } => write!(
                f,
                "dimension {dim} extent {extent} not divisible by {shards} shards"
            ),
            LayoutError::BadDim { dim } => {
                write!(f, "shard dimension {dim} out of range for a 2-D tensor")
            }
            LayoutError::ShardIndex { index, shards } => {
                write!(f, "shard index {index} out of {shards}")
            }
            LayoutError::CommSizeMismatch {
                axis,
                expected,
                got,
            } => write!(
                f,
                "communicator size {got} does not match mesh axis {axis:?} of size {expected}"
            ),
            LayoutError::IllegalReshard { from, to } => {
                write!(f, "no reshard lowering from {from} to {to}")
            }
            LayoutError::ShapeMismatch { expected, got } => write!(
                f,
                "local shape {}x{} inconsistent with layout (expected {}x{})",
                got.0, got.1, expected.0, expected.1
            ),
        }
    }
}

impl std::error::Error for LayoutError {}

/// A reshard failure: either the transition was illegal ([`LayoutError`])
/// or the lowered collective failed (`E`, the communicator's error type).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReshardError<E> {
    Layout(LayoutError),
    Comm(E),
}

impl<E> From<LayoutError> for ReshardError<E> {
    fn from(e: LayoutError) -> Self {
        ReshardError::Layout(e)
    }
}

impl<E: fmt::Display> fmt::Display for ReshardError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReshardError::Layout(e) => write!(f, "{e}"),
            ReshardError::Comm(e) => write!(f, "{e}"),
        }
    }
}

impl<E: fmt::Debug + fmt::Display> std::error::Error for ReshardError<E> {}

// ---------------------------------------------------------------------------
// Shard arithmetic (the layout algebra's kernels)
// ---------------------------------------------------------------------------

/// Column shard `k` of `shards` (paper Eqn. (2): `A_{*,k}`). The column
/// count must divide evenly.
pub fn shard_columns(a: &Tensor, shards: usize, k: usize) -> Result<Tensor, LayoutError> {
    if k >= shards {
        return Err(LayoutError::ShardIndex { index: k, shards });
    }
    if !a.cols().is_multiple_of(shards) {
        return Err(LayoutError::UnevenSplit {
            extent: a.cols(),
            shards,
            dim: 1,
        });
    }
    let w = a.cols() / shards;
    Ok(a.slice_cols(k * w, (k + 1) * w))
}

/// Row shard `k` of `shards` (paper Eqn. (2): `B_{k,*}`). The row count
/// must divide evenly.
pub fn shard_rows(a: &Tensor, shards: usize, k: usize) -> Result<Tensor, LayoutError> {
    if k >= shards {
        return Err(LayoutError::ShardIndex { index: k, shards });
    }
    if !a.rows().is_multiple_of(shards) {
        return Err(LayoutError::UnevenSplit {
            extent: a.rows(),
            shards,
            dim: 0,
        });
    }
    let h = a.rows() / shards;
    Ok(a.slice_rows(k * h, (k + 1) * h))
}

/// Length of `len` elements padded up to a multiple of `shards` — the
/// padded flat length FSDP-style sharding distributes.
pub fn padded_len(len: usize, shards: usize) -> usize {
    len.div_ceil(shards) * shards
}

/// Half-open range `[start, end)` of the original (unpadded) data covered
/// by flat shard `k` of `shards`. Clamped to `len`, so trailing shards
/// that are pure padding get an empty range.
pub fn flat_shard_range(len: usize, shards: usize, k: usize) -> (usize, usize) {
    let chunk = padded_len(len, shards) / shards;
    let start = (k * chunk).min(len);
    let end = ((k + 1) * chunk).min(len);
    (start, end)
}

/// Flat shard `k` of `shards`: the data is zero-padded to
/// [`padded_len`] and split into equal chunks, so every shard has the
/// same length and `concat(shards)[..len] == data`.
pub fn flat_shard(data: &[f32], shards: usize, k: usize) -> Vec<f32> {
    let chunk = padded_len(data.len(), shards) / shards;
    let (start, end) = flat_shard_range(data.len(), shards, k);
    let mut out = Vec::with_capacity(chunk);
    out.extend_from_slice(&data[start..end]);
    out.resize(chunk, 0.0);
    out
}

/// Inverse of [`flat_shard`]: trim the rank-ordered concatenation of all
/// shards back to the original `len` (dropping the zero padding).
pub fn flat_unshard(concatenated: &[f32], len: usize) -> Vec<f32> {
    assert!(concatenated.len() >= len, "missing shard data");
    concatenated[..len].to_vec()
}

// ---------------------------------------------------------------------------
// Static legality queries
// ---------------------------------------------------------------------------

/// Whether a reshard lowering exists from `from` to `to`, without any
/// tensor or mesh in hand — the static half of the checks
/// [`DTensor::reshard_start`] performs, exposed so analyzers (the
/// `orbit-lint` layout pass) can validate a recorded transition against
/// the same algebra the runtime enforces. `Shard` dims beyond the 2-D
/// tensor are [`LayoutError::BadDim`]; any transition *into*
/// [`Layout::Partial`] other than the identity is
/// [`LayoutError::IllegalReshard`].
pub fn reshard_legal(from: Layout, to: Layout) -> Result<(), LayoutError> {
    if let Layout::Shard(d) = to {
        if d > 1 {
            return Err(LayoutError::BadDim { dim: d });
        }
    }
    if let Layout::Shard(d) = from {
        if d > 1 {
            return Err(LayoutError::BadDim { dim: d });
        }
    }
    if to == from {
        return Ok(());
    }
    if to == Layout::Partial {
        return Err(LayoutError::IllegalReshard { from, to });
    }
    Ok(())
}

/// Whether a `global_rows x global_cols` tensor admits `layout` over `n`
/// shards: `Shard(d)` requires the dimension's extent to divide evenly
/// ([`LayoutError::UnevenSplit`] otherwise); `ShardFlat` always splits
/// (it pads); `Replicate`/`Partial` place the full tensor everywhere.
pub fn split_legal(
    layout: Layout,
    global_rows: usize,
    global_cols: usize,
    n: usize,
) -> Result<(), LayoutError> {
    match layout {
        Layout::Replicate | Layout::Partial | Layout::ShardFlat => Ok(()),
        Layout::Shard(0) => {
            if global_rows.is_multiple_of(n) {
                Ok(())
            } else {
                Err(LayoutError::UnevenSplit {
                    extent: global_rows,
                    shards: n,
                    dim: 0,
                })
            }
        }
        Layout::Shard(1) => {
            if global_cols.is_multiple_of(n) {
                Ok(())
            } else {
                Err(LayoutError::UnevenSplit {
                    extent: global_cols,
                    shards: n,
                    dim: 1,
                })
            }
        }
        Layout::Shard(d) => Err(LayoutError::BadDim { dim: d }),
    }
}

// ---------------------------------------------------------------------------
// Device mesh
// ---------------------------------------------------------------------------

/// One named axis of a device mesh, as seen from the calling rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeshAxis {
    /// Axis name (e.g. `"tp"`, `"fsdp"`, `"ddp"`).
    pub name: String,
    /// Number of ranks along the axis.
    pub size: usize,
    /// This rank's coordinate along the axis.
    pub index: usize,
}

/// A named multi-axis device mesh, from the calling rank's point of view:
/// each axis carries its size and this rank's coordinate. A 1-axis mesh
/// describes a flat process group; Hybrid-STOP's orthogonal tp × fsdp ×
/// ddp grid is a 3-axis mesh whose per-axis sub-meshes map onto the
/// engine's per-axis communicators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceMesh {
    axes: Vec<MeshAxis>,
}

impl DeviceMesh {
    /// A 1-axis mesh.
    pub fn one(name: &str, size: usize, index: usize) -> Self {
        DeviceMesh::grid(&[(name, size, index)])
    }

    /// A multi-axis mesh from `(name, size, this rank's index)` triples.
    /// Names must be unique, sizes >= 1, indices in range.
    pub fn grid(axes: &[(&str, usize, usize)]) -> Self {
        let mut out: Vec<MeshAxis> = Vec::with_capacity(axes.len());
        for &(name, size, index) in axes {
            assert!(size >= 1, "mesh axis {name:?} must have size >= 1");
            assert!(
                index < size,
                "mesh axis {name:?} index {index} out of {size}"
            );
            assert!(
                out.iter().all(|a| a.name != name),
                "duplicate mesh axis {name:?}"
            );
            out.push(MeshAxis {
                name: name.to_string(),
                size,
                index,
            });
        }
        DeviceMesh { axes: out }
    }

    /// All axes, in construction order.
    pub fn axes(&self) -> &[MeshAxis] {
        &self.axes
    }

    /// Look up an axis by name.
    pub fn axis(&self, name: &str) -> Result<&MeshAxis, LayoutError> {
        self.axes
            .iter()
            .find(|a| a.name == name)
            .ok_or_else(|| LayoutError::UnknownAxis {
                axis: name.to_string(),
            })
    }

    /// Position of an axis in [`Self::axes`].
    fn axis_pos(&self, name: &str) -> Result<usize, LayoutError> {
        self.axes
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| LayoutError::UnknownAxis {
                axis: name.to_string(),
            })
    }

    /// The sub-mesh consisting of the named axes (in the given order) —
    /// e.g. the `"fsdp"` line of a 3-axis Hybrid-STOP grid.
    pub fn sub(&self, names: &[&str]) -> Result<DeviceMesh, LayoutError> {
        let mut axes = Vec::with_capacity(names.len());
        for &n in names {
            axes.push(self.axis(n)?.clone());
        }
        Ok(DeviceMesh { axes })
    }
}

// ---------------------------------------------------------------------------
// Collectives abstraction
// ---------------------------------------------------------------------------

/// The communicator a reshard lowers onto: one process group spanning
/// exactly the mesh axis being resharded. `orbit-core` implements this
/// for `ProcessGroup` + `SimClock` (its `GroupComm` adapter), so reshards
/// issue the same nonblocking collectives — and record through the same
/// schedule verifier — as the hand-written engines did.
///
/// Split into `*_start` + [`Collectives::wait`] so a reshard can stay
/// in flight (prefetched) while compute proceeds, exactly like a raw
/// `PendingCollective`.
pub trait Collectives {
    /// Communication failure type (e.g. `CommError`).
    type Error;
    /// In-flight operation handle (e.g. `PendingCollective`).
    type Pending;

    /// Number of ranks in the communicator.
    fn size(&self) -> usize;

    /// Nonblocking all-gather of equal-length shards; the waited result is
    /// the rank-ordered concatenation. `prefetch` queues the modeled time
    /// for overlap with subsequent compute.
    fn all_gather_start(
        &mut self,
        shard: &[f32],
        prefetch: bool,
    ) -> Result<Self::Pending, Self::Error>;

    /// Nonblocking reduce-scatter of a full-length buffer (length must
    /// divide by [`Self::size`]); the waited result is this rank's chunk
    /// of the element-wise sum.
    fn reduce_scatter_start(&mut self, full: &[f32]) -> Result<Self::Pending, Self::Error>;

    /// Nonblocking all-reduce (sum); the waited result is the full sum.
    fn all_reduce_start(&mut self, buf: &[f32]) -> Result<Self::Pending, Self::Error>;

    /// Block until `pending` completes and return this rank's result.
    fn wait(&mut self, pending: Self::Pending) -> Result<Vec<f32>, Self::Error>;

    /// Attach layout-transition metadata to the *next* collective this
    /// communicator issues. [`DTensor::reshard_start`] calls this just
    /// before lowering onto a collective so recording backends (the
    /// `orbit-lint` abstract communicator) can tag the op with the
    /// reshard it implements; real communicators ignore it.
    fn annotate_reshard(&mut self, note: &ReshardNote) {
        let _ = note;
    }
}

/// The layout transition a collective implements, as seen by one rank —
/// recorded by lint-mode communicators via
/// [`Collectives::annotate_reshard`] so the static layout pass can check
/// every recorded transition against the reshard algebra
/// ([`reshard_legal`], [`split_legal`]) and across ranks.
#[derive(Debug, Clone, PartialEq)]
pub struct ReshardNote {
    /// Mesh axis being resharded.
    pub axis: String,
    /// Layout before the transition.
    pub from: Layout,
    /// Layout after the transition.
    pub to: Layout,
    /// Size of the mesh axis (number of shards).
    pub ranks: usize,
    /// This rank's coordinate along the axis.
    pub coord: usize,
    /// Global tensor rows.
    pub global_rows: usize,
    /// Global tensor columns.
    pub global_cols: usize,
}

// ---------------------------------------------------------------------------
// DTensor
// ---------------------------------------------------------------------------

/// A distributed tensor: this rank's local shard plus the layout metadata
/// ([`DeviceMesh`] + one [`Layout`] per axis) describing how the global
/// tensor is placed. Constructed either from the global value
/// ([`DTensor::from_global`]) or from an existing local shard
/// ([`DTensor::from_local_shard`], [`DTensor::partial`]).
#[derive(Debug, Clone)]
pub struct DTensor {
    local: Tensor,
    mesh: DeviceMesh,
    placements: Vec<Layout>,
    global_rows: usize,
    global_cols: usize,
}

impl DTensor {
    /// A tensor replicated on every axis of the mesh.
    pub fn replicated(t: Tensor, mesh: DeviceMesh) -> Self {
        let placements = vec![Layout::Replicate; mesh.axes().len()];
        let (r, c) = t.shape();
        DTensor {
            local: t,
            mesh,
            placements,
            global_rows: r,
            global_cols: c,
        }
    }

    /// An unreduced addend on `axis` (a gradient awaiting its reduction):
    /// the logical tensor is the element-wise sum of every rank's `local`.
    pub fn partial(local: Tensor, mesh: DeviceMesh, axis: &str) -> Result<Self, LayoutError> {
        let pos = mesh.axis_pos(axis)?;
        let mut placements = vec![Layout::Replicate; mesh.axes().len()];
        placements[pos] = Layout::Partial;
        let (r, c) = local.shape();
        Ok(DTensor {
            local,
            mesh,
            placements,
            global_rows: r,
            global_cols: c,
        })
    }

    /// Place a globally-known tensor onto `axis` with `layout`, computing
    /// this rank's local shard. [`Layout::Partial`] cannot be constructed
    /// from a global value (use [`DTensor::partial`]).
    pub fn from_global(
        global: &Tensor,
        mesh: DeviceMesh,
        axis: &str,
        layout: Layout,
    ) -> Result<Self, LayoutError> {
        let pos = mesh.axis_pos(axis)?;
        let (n, k) = {
            let a = &mesh.axes()[pos];
            (a.size, a.index)
        };
        let local = match layout {
            Layout::Replicate => global.clone(),
            Layout::Shard(0) => shard_rows(global, n, k)?,
            Layout::Shard(1) => shard_columns(global, n, k)?,
            Layout::Shard(d) => return Err(LayoutError::BadDim { dim: d }),
            Layout::ShardFlat => {
                let chunk = flat_shard(global.data(), n, k);
                Tensor::from_vec(1, chunk.len(), chunk)
            }
            Layout::Partial => {
                return Err(LayoutError::IllegalReshard {
                    from: Layout::Replicate,
                    to: Layout::Partial,
                })
            }
        };
        let mut placements = vec![Layout::Replicate; mesh.axes().len()];
        placements[pos] = layout;
        Ok(DTensor {
            local,
            mesh,
            placements,
            global_rows: global.rows(),
            global_cols: global.cols(),
        })
    }

    /// Adopt an existing local shard as `layout` on `axis` of a tensor
    /// whose global shape is `global_rows x global_cols`, validating that
    /// the shard's shape is consistent with the claim.
    pub fn from_local_shard(
        local: Tensor,
        mesh: DeviceMesh,
        axis: &str,
        layout: Layout,
        global_rows: usize,
        global_cols: usize,
    ) -> Result<Self, LayoutError> {
        let pos = mesh.axis_pos(axis)?;
        let n = mesh.axes()[pos].size;
        let expected = match layout {
            Layout::Replicate | Layout::Partial => (global_rows, global_cols),
            Layout::Shard(0) => {
                if !global_rows.is_multiple_of(n) {
                    return Err(LayoutError::UnevenSplit {
                        extent: global_rows,
                        shards: n,
                        dim: 0,
                    });
                }
                (global_rows / n, global_cols)
            }
            Layout::Shard(1) => {
                if !global_cols.is_multiple_of(n) {
                    return Err(LayoutError::UnevenSplit {
                        extent: global_cols,
                        shards: n,
                        dim: 1,
                    });
                }
                (global_rows, global_cols / n)
            }
            Layout::Shard(d) => return Err(LayoutError::BadDim { dim: d }),
            Layout::ShardFlat => (1, padded_len(global_rows * global_cols, n) / n),
        };
        if local.shape() != expected {
            return Err(LayoutError::ShapeMismatch {
                expected,
                got: local.shape(),
            });
        }
        let mut placements = vec![Layout::Replicate; mesh.axes().len()];
        placements[pos] = layout;
        Ok(DTensor {
            local,
            mesh,
            placements,
            global_rows,
            global_cols,
        })
    }

    /// This rank's local shard.
    pub fn local(&self) -> &Tensor {
        &self.local
    }

    /// Mutable access to the local shard (e.g. for an in-place optimizer
    /// step on an FSDP parameter shard).
    pub fn local_mut(&mut self) -> &mut Tensor {
        &mut self.local
    }

    /// Consume into the local shard.
    pub fn into_local(self) -> Tensor {
        self.local
    }

    /// The mesh this tensor is placed on.
    pub fn mesh(&self) -> &DeviceMesh {
        &self.mesh
    }

    /// The global (logical) shape.
    pub fn global_shape(&self) -> (usize, usize) {
        (self.global_rows, self.global_cols)
    }

    /// The placement on the named axis.
    pub fn layout_on(&self, axis: &str) -> Result<Layout, LayoutError> {
        Ok(self.placements[self.mesh.axis_pos(axis)?])
    }

    /// Blocking reshard: [`DTensor::reshard_start`] + wait.
    pub fn reshard<C: Collectives>(
        &self,
        axis: &str,
        to: Layout,
        comm: &mut C,
    ) -> Result<DTensor, ReshardError<C::Error>> {
        self.reshard_start(axis, to, comm, false)?.wait(comm)
    }

    /// Start a reshard of the named axis to layout `to`, lowering onto
    /// `comm` (which must span exactly that axis). Purely local
    /// transitions (e.g. `Replicate → Shard`) complete immediately;
    /// communicating ones return with the collective in flight —
    /// `prefetch` applies to gather-based lowerings and queues the
    /// modeled time for compute overlap.
    ///
    /// Lowering table (axis size `n`, this rank `k`):
    ///
    /// | from \ to        | `Replicate`           | `Shard(d)`              | `ShardFlat`               |
    /// |------------------|-----------------------|-------------------------|---------------------------|
    /// | `Replicate`      | copy                  | local slice             | local `flat_shard`        |
    /// | `Shard(d)`       | all-gather            | all-gather + slice      | all-gather + `flat_shard` |
    /// | `ShardFlat`      | all-gather (trim pad) | all-gather + slice      | copy                      |
    /// | `Partial`        | all-reduce            | all-reduce + slice      | pad + reduce-scatter      |
    ///
    /// Any transition *into* `Partial` (other than `Partial → Partial`,
    /// a copy) is illegal, as is resharding an axis while a different
    /// axis is non-replicated.
    pub fn reshard_start<C: Collectives>(
        &self,
        axis: &str,
        to: Layout,
        comm: &mut C,
        prefetch: bool,
    ) -> Result<PendingReshard<C::Pending>, ReshardError<C::Error>> {
        let pos = self.mesh.axis_pos(axis)?;
        let ax = &self.mesh.axes()[pos];
        let (n, k) = (ax.size, ax.index);
        if comm.size() != n {
            return Err(LayoutError::CommSizeMismatch {
                axis: axis.to_string(),
                expected: n,
                got: comm.size(),
            }
            .into());
        }
        let from = self.placements[pos];
        // Only the named axis transitions; every other axis must be
        // replicated (a Partial elsewhere would be silently mis-summed by
        // a gather here).
        for (i, p) in self.placements.iter().enumerate() {
            if i != pos && *p != Layout::Replicate {
                return Err(LayoutError::IllegalReshard { from, to }.into());
            }
        }
        if let Layout::Shard(d) = to {
            if d > 1 {
                return Err(LayoutError::BadDim { dim: d }.into());
            }
        }
        if to == from {
            return Ok(PendingReshard {
                inner: Inner::Ready(self.clone()),
            });
        }
        if to == Layout::Partial {
            return Err(LayoutError::IllegalReshard { from, to }.into());
        }

        let mut placements = self.placements.clone();
        placements[pos] = to;
        // Transition metadata for recording communicators — attached just
        // before each collective lowering below (local transitions issue
        // nothing, so nothing to annotate).
        let note = ReshardNote {
            axis: axis.to_string(),
            from,
            to,
            ranks: n,
            coord: k,
            global_rows: self.global_rows,
            global_cols: self.global_cols,
        };
        let meta = OutMeta {
            mesh: self.mesh.clone(),
            placements,
            axis_pos: pos,
            target: to,
            global_rows: self.global_rows,
            global_cols: self.global_cols,
        };

        match from {
            // Purely local: the full value is already here.
            Layout::Replicate => {
                let local = match to {
                    Layout::Shard(0) => shard_rows(&self.local, n, k)?,
                    Layout::Shard(1) => shard_columns(&self.local, n, k)?,
                    Layout::ShardFlat => {
                        let chunk = flat_shard(self.local.data(), n, k);
                        Tensor::from_vec(1, chunk.len(), chunk)
                    }
                    _ => unreachable!("same-layout and Partial handled above"),
                };
                Ok(PendingReshard {
                    inner: Inner::Ready(DTensor {
                        local,
                        mesh: meta.mesh,
                        placements: meta.placements,
                        global_rows: meta.global_rows,
                        global_cols: meta.global_cols,
                    }),
                })
            }
            // Gather-based: reassemble the full tensor, then (in wait)
            // apply the target placement locally.
            Layout::Shard(d) => {
                if d > 1 {
                    return Err(LayoutError::BadDim { dim: d }.into());
                }
                comm.annotate_reshard(&note);
                let pending = comm
                    .all_gather_start(self.local.data(), prefetch)
                    .map_err(ReshardError::Comm)?;
                Ok(PendingReshard {
                    inner: Inner::Comm {
                        pending,
                        post: Post::GatherDim(d),
                        meta,
                    },
                })
            }
            Layout::ShardFlat => {
                comm.annotate_reshard(&note);
                let pending = comm
                    .all_gather_start(self.local.data(), prefetch)
                    .map_err(ReshardError::Comm)?;
                Ok(PendingReshard {
                    inner: Inner::Comm {
                        pending,
                        post: Post::GatherFlat,
                        meta,
                    },
                })
            }
            // Reduction-based.
            Layout::Partial => match to {
                Layout::ShardFlat => {
                    // The padded reduce-scatter the FSDP/Hybrid-STOP
                    // gradient paths issued by hand: pad the addend to a
                    // multiple of n with zeros, scatter the sum.
                    let mut padded = self.local.data().to_vec();
                    padded.resize(padded_len(padded.len(), n), 0.0);
                    comm.annotate_reshard(&note);
                    let pending = comm
                        .reduce_scatter_start(&padded)
                        .map_err(ReshardError::Comm)?;
                    Ok(PendingReshard {
                        inner: Inner::Comm {
                            pending,
                            post: Post::ReduceScatter,
                            meta,
                        },
                    })
                }
                _ => {
                    comm.annotate_reshard(&note);
                    let pending = comm
                        .all_reduce_start(self.local.data())
                        .map_err(ReshardError::Comm)?;
                    Ok(PendingReshard {
                        inner: Inner::Comm {
                            pending,
                            post: Post::Reduce,
                            meta,
                        },
                    })
                }
            },
        }
    }
}

/// How a waited collective result is turned back into a tensor.
#[derive(Debug, Clone, Copy)]
enum Post {
    /// Buffer is the rank-ordered concatenation of `Shard(dim)` slices.
    GatherDim(usize),
    /// Buffer is the rank-ordered concatenation of padded flat chunks.
    GatherFlat,
    /// Buffer is the full element-wise sum.
    Reduce,
    /// Buffer is this rank's flat chunk of the sum — already the target.
    ReduceScatter,
}

/// Output metadata carried through an in-flight reshard.
#[derive(Debug, Clone)]
struct OutMeta {
    mesh: DeviceMesh,
    placements: Vec<Layout>,
    axis_pos: usize,
    target: Layout,
    global_rows: usize,
    global_cols: usize,
}

enum Inner<P> {
    Ready(DTensor),
    Comm {
        pending: P,
        post: Post,
        meta: OutMeta,
    },
}

/// An in-flight reshard: holds the pending collective (if any) plus the
/// metadata to assemble the target [`DTensor`] on
/// [`PendingReshard::wait`]. Dropping it un-waited leaks the underlying
/// handle — exactly like a raw `PendingCollective`, and flagged by the
/// same schedule verifier.
pub struct PendingReshard<P> {
    inner: Inner<P>,
}

impl<P> PendingReshard<P> {
    /// Complete the reshard: wait for the lowered collective (when one
    /// was needed) and assemble this rank's shard of the target layout.
    pub fn wait<C: Collectives<Pending = P>>(
        self,
        comm: &mut C,
    ) -> Result<DTensor, ReshardError<C::Error>> {
        let (pending, post, meta) = match self.inner {
            Inner::Ready(t) => return Ok(t),
            Inner::Comm {
                pending,
                post,
                meta,
            } => (pending, post, meta),
        };
        let mut buf = comm.wait(pending).map_err(ReshardError::Comm)?;
        let ax = &meta.mesh.axes()[meta.axis_pos];
        let (n, k) = (ax.size, ax.index);
        let (rows, cols) = (meta.global_rows, meta.global_cols);

        if let Post::ReduceScatter = post {
            // The chunk *is* the ShardFlat local.
            let local = Tensor::from_vec(1, buf.len(), buf);
            return Ok(DTensor {
                local,
                mesh: meta.mesh,
                placements: meta.placements,
                global_rows: rows,
                global_cols: cols,
            });
        }

        // Reassemble the full (replicated) tensor...
        let full = match post {
            Post::GatherDim(0) => Tensor::from_vec(rows, cols, buf),
            Post::GatherDim(_) => {
                let chunk = rows * (cols / n);
                let parts: Vec<Tensor> = (0..n)
                    .map(|i| {
                        Tensor::from_vec(rows, cols / n, buf[i * chunk..(i + 1) * chunk].to_vec())
                    })
                    .collect();
                Tensor::concat_cols(&parts.iter().collect::<Vec<_>>())
            }
            Post::GatherFlat => {
                buf.truncate(rows * cols);
                Tensor::from_vec(rows, cols, buf)
            }
            Post::Reduce => Tensor::from_vec(rows, cols, buf),
            Post::ReduceScatter => unreachable!("returned above"),
        };
        // ...then apply the target placement locally.
        let local = match meta.target {
            Layout::Replicate => full,
            Layout::Shard(0) => shard_rows(&full, n, k)?,
            Layout::Shard(1) => shard_columns(&full, n, k)?,
            Layout::ShardFlat => {
                let chunk = flat_shard(full.data(), n, k);
                Tensor::from_vec(1, chunk.len(), chunk)
            }
            Layout::Shard(d) => return Err(LayoutError::BadDim { dim: d }.into()),
            Layout::Partial => {
                return Err(LayoutError::IllegalReshard {
                    from: Layout::Replicate,
                    to: Layout::Partial,
                }
                .into())
            }
        };
        Ok(DTensor {
            local,
            mesh: meta.mesh,
            placements: meta.placements,
            global_rows: rows,
            global_cols: cols,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A single-process communicator standing in for `n` ranks: the test
    /// supplies every rank's would-be contribution, and collectives are
    /// evaluated arithmetically. The real threaded-cluster semantics are
    /// covered by `tests/properties.rs`.
    struct FakeComm {
        n: usize,
        me: usize,
        contrib: Vec<Vec<f32>>,
    }

    enum FakePending {
        Gather,
        Reduce,
        Scatter,
    }

    impl Collectives for FakeComm {
        type Error = String;
        type Pending = FakePending;

        fn size(&self) -> usize {
            self.n
        }

        fn all_gather_start(
            &mut self,
            shard: &[f32],
            _prefetch: bool,
        ) -> Result<FakePending, String> {
            assert_eq!(shard, self.contrib[self.me].as_slice(), "posted shard");
            Ok(FakePending::Gather)
        }

        fn reduce_scatter_start(&mut self, full: &[f32]) -> Result<FakePending, String> {
            assert_eq!(full, self.contrib[self.me].as_slice(), "posted buffer");
            assert_eq!(full.len() % self.n, 0, "reduce_scatter divisibility");
            Ok(FakePending::Scatter)
        }

        fn all_reduce_start(&mut self, buf: &[f32]) -> Result<FakePending, String> {
            assert_eq!(buf, self.contrib[self.me].as_slice(), "posted buffer");
            Ok(FakePending::Reduce)
        }

        fn wait(&mut self, pending: FakePending) -> Result<Vec<f32>, String> {
            let sum = || {
                let mut s = self.contrib[0].clone();
                for c in &self.contrib[1..] {
                    for (a, b) in s.iter_mut().zip(c) {
                        *a += b;
                    }
                }
                s
            };
            Ok(match pending {
                FakePending::Gather => self.contrib.concat(),
                FakePending::Reduce => sum(),
                FakePending::Scatter => {
                    let s = sum();
                    let chunk = s.len() / self.n;
                    s[self.me * chunk..(self.me + 1) * chunk].to_vec()
                }
            })
        }
    }

    fn global_4x4() -> Tensor {
        Tensor::from_vec(4, 4, (0..16).map(|i| i as f32).collect())
    }

    #[test]
    fn shard_helpers_partition_and_reject() {
        let t = global_4x4();
        let left = shard_columns(&t, 2, 0).unwrap();
        let right = shard_columns(&t, 2, 1).unwrap();
        assert_eq!(Tensor::concat_cols(&[&left, &right]), t);
        let top = shard_rows(&t, 2, 0).unwrap();
        let bottom = shard_rows(&t, 2, 1).unwrap();
        assert_eq!(Tensor::concat_rows(&[&top, &bottom]), t);
        assert!(matches!(
            shard_columns(&t, 3, 0),
            Err(LayoutError::UnevenSplit { shards: 3, .. })
        ));
        assert!(matches!(
            shard_rows(&t, 2, 2),
            Err(LayoutError::ShardIndex {
                index: 2,
                shards: 2
            })
        ));
    }

    #[test]
    fn flat_shard_roundtrip_with_padding() {
        let data: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let parts: Vec<Vec<f32>> = (0..4).map(|k| flat_shard(&data, 4, k)).collect();
        assert!(parts.iter().all(|p| p.len() == 3));
        assert_eq!(flat_unshard(&parts.concat(), 10), data);
        assert_eq!(padded_len(10, 4), 12);
        assert_eq!(flat_shard_range(10, 4, 3), (9, 10));
    }

    #[test]
    fn local_lowerings_match_shard_helpers() {
        let t = global_4x4();
        for (layout, k) in [
            (Layout::Shard(0), 1usize),
            (Layout::Shard(1), 0),
            (Layout::ShardFlat, 1),
        ] {
            let mesh = DeviceMesh::one("x", 2, k);
            let placed = DTensor::from_global(&t, mesh.clone(), "x", layout).unwrap();
            let repl = DTensor::replicated(t.clone(), mesh);
            // Replicate -> layout is purely local; no comm needed.
            let mut comm = FakeComm {
                n: 2,
                me: k,
                contrib: vec![vec![], vec![]],
            };
            let resharded = repl.reshard("x", layout, &mut comm).unwrap();
            assert_eq!(resharded.local(), placed.local(), "{layout}");
            assert_eq!(resharded.layout_on("x").unwrap(), layout);
            assert_eq!(resharded.global_shape(), (4, 4));
        }
    }

    #[test]
    fn gather_lowerings_reassemble_the_global() {
        let t = global_4x4();
        for from in [Layout::Shard(0), Layout::Shard(1), Layout::ShardFlat] {
            let shards: Vec<DTensor> = (0..2)
                .map(|k| DTensor::from_global(&t, DeviceMesh::one("x", 2, k), "x", from).unwrap())
                .collect();
            let contrib: Vec<Vec<f32>> = shards.iter().map(|s| s.local().data().to_vec()).collect();
            for (k, s) in shards.iter().enumerate() {
                let mut comm = FakeComm {
                    n: 2,
                    me: k,
                    contrib: contrib.clone(),
                };
                let repl = s.reshard("x", Layout::Replicate, &mut comm).unwrap();
                assert_eq!(repl.local(), &t, "{from} -> replicate on rank {k}");
                // And a transition straight to a *different* shard layout.
                let to = if from == Layout::ShardFlat {
                    Layout::Shard(0)
                } else {
                    Layout::ShardFlat
                };
                let direct = s.reshard("x", to, &mut comm).unwrap();
                let expect = DTensor::from_global(&t, DeviceMesh::one("x", 2, k), "x", to).unwrap();
                assert_eq!(direct.local(), expect.local(), "{from} -> {to} on rank {k}");
            }
        }
    }

    #[test]
    fn partial_resolution_sums_and_scatters() {
        // Rank r holds addend full of (r+1); the logical tensor is the sum.
        let addends: Vec<Tensor> = (0..2).map(|r| Tensor::full(2, 3, (r + 1) as f32)).collect();
        let contrib: Vec<Vec<f32>> = addends.iter().map(|t| t.data().to_vec()).collect();
        for (k, addend) in addends.iter().enumerate() {
            let p = DTensor::partial(addend.clone(), DeviceMesh::one("x", 2, k), "x").unwrap();
            let mut comm = FakeComm {
                n: 2,
                me: k,
                contrib: contrib.clone(),
            };
            let repl = p.reshard("x", Layout::Replicate, &mut comm).unwrap();
            assert_eq!(repl.local(), &Tensor::full(2, 3, 3.0));
            // Partial -> ShardFlat pads 6 elements to 6 (already even) and
            // reduce-scatters; rank k gets chunk k of the sum.
            let mut padded = addends[k].data().to_vec();
            padded.resize(padded_len(6, 2), 0.0);
            let mut comm = FakeComm {
                n: 2,
                me: k,
                contrib: vec![padded.clone(), padded],
            };
            let p = DTensor::partial(addends[k].clone(), DeviceMesh::one("x", 2, k), "x").unwrap();
            let sc = p.reshard("x", Layout::ShardFlat, &mut comm).unwrap();
            assert_eq!(sc.local().len(), 3);
            assert_eq!(sc.layout_on("x").unwrap(), Layout::ShardFlat);
        }
    }

    #[test]
    fn illegal_transitions_are_typed_errors() {
        let t = global_4x4();
        let mesh = DeviceMesh::one("x", 2, 0);
        let mut comm = FakeComm {
            n: 2,
            me: 0,
            contrib: vec![vec![], vec![]],
        };
        let repl = DTensor::replicated(t.clone(), mesh.clone());
        assert!(matches!(
            repl.reshard("x", Layout::Partial, &mut comm),
            Err(ReshardError::Layout(LayoutError::IllegalReshard { .. }))
        ));
        assert!(matches!(
            repl.reshard("y", Layout::Replicate, &mut comm),
            Err(ReshardError::Layout(LayoutError::UnknownAxis { .. }))
        ));
        assert!(matches!(
            repl.reshard("x", Layout::Shard(2), &mut comm),
            Err(ReshardError::Layout(LayoutError::BadDim { dim: 2 }))
        ));
        // Comm size must match the axis.
        let mut small = FakeComm {
            n: 3,
            me: 0,
            contrib: vec![vec![]; 3],
        };
        assert!(matches!(
            repl.reshard("x", Layout::Shard(0), &mut small),
            Err(ReshardError::Layout(LayoutError::CommSizeMismatch { .. }))
        ));
        // from_global cannot build a Partial, and uneven splits are typed.
        assert!(DTensor::from_global(&t, mesh.clone(), "x", Layout::Partial).is_err());
        let odd = Tensor::zeros(3, 3);
        assert!(matches!(
            DTensor::from_global(&odd, mesh, "x", Layout::Shard(1)),
            Err(LayoutError::UnevenSplit { .. })
        ));
    }

    #[test]
    fn second_sharded_axis_is_rejected() {
        // A tensor already sharded on "a" cannot be resharded on "b":
        // only one non-replicated axis at a time.
        let t = global_4x4();
        let mesh = DeviceMesh::grid(&[("a", 2, 0), ("b", 2, 1)]);
        let sh = DTensor::from_global(&t, mesh, "a", Layout::Shard(0)).unwrap();
        let mut comm = FakeComm {
            n: 2,
            me: 1,
            contrib: vec![vec![], vec![]],
        };
        assert!(matches!(
            sh.reshard("b", Layout::Shard(1), &mut comm),
            Err(ReshardError::Layout(LayoutError::IllegalReshard { .. }))
        ));
    }

    #[test]
    fn mesh_sub_and_axis_lookup() {
        let mesh = DeviceMesh::grid(&[("tp", 2, 1), ("fsdp", 4, 2), ("ddp", 2, 0)]);
        let fsdp = mesh.sub(&["fsdp"]).unwrap();
        assert_eq!(fsdp.axes().len(), 1);
        assert_eq!(fsdp.axes()[0].size, 4);
        assert_eq!(fsdp.axes()[0].index, 2);
        assert!(mesh.sub(&["pp"]).is_err());
        assert_eq!(mesh.axis("tp").unwrap().index, 1);
    }

    #[test]
    fn same_layout_reshard_is_a_copy() {
        let t = global_4x4();
        let mesh = DeviceMesh::one("x", 2, 0);
        let sh = DTensor::from_global(&t, mesh, "x", Layout::Shard(1)).unwrap();
        let mut comm = FakeComm {
            n: 2,
            me: 0,
            contrib: vec![vec![], vec![]],
        };
        let same = sh.reshard("x", Layout::Shard(1), &mut comm).unwrap();
        assert_eq!(same.local(), sh.local());
    }

    #[test]
    fn world_one_axes_degenerate_to_local_ops() {
        // On a size-1 axis every layout holds the whole tensor and the
        // collective lowerings are exercised with n = 1.
        let t = global_4x4();
        let mesh = DeviceMesh::one("x", 1, 0);
        for layout in [Layout::Shard(0), Layout::Shard(1), Layout::ShardFlat] {
            let placed = DTensor::from_global(&t, mesh.clone(), "x", layout).unwrap();
            let mut comm = FakeComm {
                n: 1,
                me: 0,
                contrib: vec![placed.local().data().to_vec()],
            };
            let back = placed.reshard("x", Layout::Replicate, &mut comm).unwrap();
            assert_eq!(back.local(), &t, "{layout}");
        }
        let p = DTensor::partial(t.clone(), mesh, "x").unwrap();
        let mut comm = FakeComm {
            n: 1,
            me: 0,
            contrib: vec![t.data().to_vec()],
        };
        assert_eq!(
            p.reshard("x", Layout::Replicate, &mut comm)
                .unwrap()
                .local(),
            &t
        );
    }
}
