//! The [`Tensor`] matrix type.
//!
//! ORBIT's layers all reduce to 2-D matrix algebra over a flattened
//! `(batch * tokens) x features` layout, so a row-major 2-D matrix is the
//! only shape this crate needs. Higher-rank views (batch of images, per-head
//! attention) are carried as explicit loops over row blocks by the kernels.

use crate::bf16::round_bf16;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}x{})", self.rows, self.cols)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Tensor {
    /// A `rows x cols` tensor of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A `rows x cols` tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Build from a row-major data vector. Panics if the length mismatches.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} != {rows}x{cols}",
            data.len()
        );
        Tensor { rows, cols, data }
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(n, n);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bytes of storage at f32 precision.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.data.len() * 4
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Raw row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the raw data vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reinterpret as a different `rows x cols` with the same element count.
    pub fn reshape(mut self, rows: usize, cols: usize) -> Self {
        assert_eq!(self.data.len(), rows * cols, "reshape size mismatch");
        self.rows = rows;
        self.cols = cols;
        self
    }

    /// Copy of columns `[c0, c1)` — used to build *column shards* of a weight
    /// matrix `A` (paper Eqn. (2): `A_{*,k}`).
    pub fn slice_cols(&self, c0: usize, c1: usize) -> Tensor {
        assert!(c0 <= c1 && c1 <= self.cols, "column slice out of range");
        let w = c1 - c0;
        let mut out = Tensor::zeros(self.rows, w);
        for r in 0..self.rows {
            out.data[r * w..(r + 1) * w]
                .copy_from_slice(&self.data[r * self.cols + c0..r * self.cols + c1]);
        }
        out
    }

    /// Copy of rows `[r0, r1)` — used to build *row shards* of a weight
    /// matrix `B` (paper Eqn. (2): `B_{k,*}`).
    pub fn slice_rows(&self, r0: usize, r1: usize) -> Tensor {
        assert!(r0 <= r1 && r1 <= self.rows, "row slice out of range");
        Tensor {
            rows: r1 - r0,
            cols: self.cols,
            data: self.data[r0 * self.cols..r1 * self.cols].to_vec(),
        }
    }

    /// Concatenate along columns (all inputs must share the row count).
    pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty());
        let rows = parts[0].rows;
        assert!(
            parts.iter().all(|p| p.rows == rows),
            "row mismatch in concat_cols"
        );
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Tensor::zeros(rows, cols);
        for r in 0..rows {
            let mut off = 0;
            for p in parts {
                out.data[r * cols + off..r * cols + off + p.cols].copy_from_slice(p.row(r));
                off += p.cols;
            }
        }
        out
    }

    /// Concatenate along rows (all inputs must share the column count).
    pub fn concat_rows(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty());
        let cols = parts[0].cols;
        assert!(
            parts.iter().all(|p| p.cols == cols),
            "col mismatch in concat_rows"
        );
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Tensor { rows, cols, data }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Element-wise `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Element-wise sum, returning a new tensor.
    pub fn add(&self, other: &Tensor) -> Tensor {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// Element-wise difference, returning a new tensor.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place scalar multiply.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Element-wise product (Hadamard), returning a new tensor.
    pub fn hadamard(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Sum of all elements (f64 accumulation for determinism across sizes).
    pub fn sum(&self) -> f32 {
        self.data.iter().map(|&v| v as f64).sum::<f64>() as f32
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
            .sqrt() as f32
    }

    /// Largest absolute element (0 for empty tensors).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// True if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Round every element through bfloat16 (see [`crate::bf16`]).
    pub fn to_bf16_precision(&self) -> Tensor {
        let data = self.data.iter().map(|&v| round_bf16(v)).collect();
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Maximum absolute element-wise difference to `other`.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0f32, |m, (a, b)| m.max((a - b).abs()))
    }

    /// Relative closeness check used pervasively by the equivalence tests:
    /// `|a-b| <= atol + rtol * |b|` element-wise.
    pub fn allclose(&self, other: &Tensor, rtol: f32, atol: f32) -> bool {
        if self.shape() != other.shape() {
            return false;
        }
        self.data
            .iter()
            .zip(&other.data)
            .all(|(a, b)| (a - b).abs() <= atol + rtol * b.abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let t = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.get(0, 0), 1.0);
        assert_eq!(t.get(1, 2), 6.0);
        assert_eq!(t.row(1), &[4., 5., 6.]);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_length_checked() {
        let _ = Tensor::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn slices_partition_the_matrix() {
        let t = Tensor::from_vec(2, 4, (0..8).map(|i| i as f32).collect());
        let left = t.slice_cols(0, 2);
        let right = t.slice_cols(2, 4);
        assert_eq!(Tensor::concat_cols(&[&left, &right]), t);
        let top = t.slice_rows(0, 1);
        let bottom = t.slice_rows(1, 2);
        assert_eq!(Tensor::concat_rows(&[&top, &bottom]), t);
    }

    #[test]
    fn transpose_involution() {
        let t = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.transpose().transpose(), t);
        assert_eq!(t.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn arithmetic() {
        let a = Tensor::from_vec(1, 3, vec![1., 2., 3.]);
        let b = Tensor::from_vec(1, 3, vec![10., 20., 30.]);
        assert_eq!(a.add(&b).data(), &[11., 22., 33.]);
        assert_eq!(b.sub(&a).data(), &[9., 18., 27.]);
        assert_eq!(a.hadamard(&b).data(), &[10., 40., 90.]);
        let mut c = a.clone();
        c.axpy(2.0, &b);
        assert_eq!(c.data(), &[21., 42., 63.]);
        assert_eq!(a.sum(), 6.0);
        assert!((a.norm() - 14f32.sqrt()).abs() < 1e-6);
        assert_eq!(b.max_abs(), 30.0);
    }

    #[test]
    fn eye_is_identity_under_hadamard_sum() {
        let i = Tensor::eye(4);
        assert_eq!(i.sum(), 4.0);
        assert_eq!(i.get(2, 2), 1.0);
        assert_eq!(i.get(2, 3), 0.0);
    }

    #[test]
    fn allclose_tolerances() {
        let a = Tensor::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Tensor::from_vec(1, 2, vec![1.0 + 1e-6, 2.0 - 1e-6]);
        assert!(a.allclose(&b, 1e-5, 1e-5));
        assert!(!a.allclose(&b, 0.0, 1e-8));
        let c = Tensor::zeros(2, 1);
        assert!(!a.allclose(&c, 1.0, 1.0), "shape mismatch is never close");
    }

    #[test]
    fn finite_detection() {
        let mut t = Tensor::zeros(2, 2);
        assert!(t.all_finite());
        t.set(1, 1, f32::NAN);
        assert!(!t.all_finite());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(2, 3, (0..6).map(|i| i as f32).collect());
        let r = t.clone().reshape(3, 2);
        assert_eq!(r.shape(), (3, 2));
        assert_eq!(r.data(), t.data());
    }

    #[test]
    fn bf16_rounding_applies_elementwise() {
        let t = Tensor::from_vec(1, 2, vec![1.0 + 2f32.powi(-12), 1.0]);
        let r = t.to_bf16_precision();
        assert_eq!(r.get(0, 0), 1.0, "sub-epsilon offset rounds away");
        assert_eq!(r.get(0, 1), 1.0);
    }
}
