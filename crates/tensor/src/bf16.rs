//! Software bfloat16.
//!
//! Frontier's MI250X GPUs execute ORBIT's matmuls in BF16 with F32
//! accumulation (paper Sec. III-B, "Mixed-Precision"). We emulate exactly
//! that: values are rounded to the nearest representable bfloat16 before a
//! kernel consumes them, while accumulation stays in f32. This reproduces the
//! numerical behaviour that motivates the paper's dynamic gradient scaling
//! (small gradients flush to zero in BF16; large ones overflow).

use serde::{Deserialize, Serialize};

/// Numeric precision mode for compute kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Precision {
    /// Plain IEEE f32 throughout.
    #[default]
    F32,
    /// BF16 inputs with f32 accumulation — the paper's mixed-precision mode.
    BF16Mixed,
}

impl Precision {
    /// Bytes used to store one activation/parameter element in this mode.
    #[inline]
    pub fn bytes_per_element(self) -> usize {
        match self {
            Precision::F32 => 4,
            Precision::BF16Mixed => 2,
        }
    }
}

/// Convert an `f32` to its bfloat16 bit pattern using round-to-nearest-even.
///
/// NaN payloads are canonicalized so a NaN never rounds to infinity.
#[inline]
pub fn f32_to_bf16(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        // Canonical quiet NaN, preserving the sign bit.
        return ((bits >> 16) as u16 & 0x8000) | 0x7FC1;
    }
    // Round to nearest even: add half of the dropped ulp, plus the parity bit.
    let round_bit = (bits >> 16) & 1;
    let rounded = bits.wrapping_add(0x7FFF + round_bit);
    (rounded >> 16) as u16
}

/// Convert a bfloat16 bit pattern back to `f32` (exact).
#[inline]
pub fn bf16_to_f32(h: u16) -> f32 {
    f32::from_bits((h as u32) << 16)
}

/// Round an `f32` through bfloat16 (the value a BF16 kernel would consume).
#[inline]
pub fn round_bf16(x: f32) -> f32 {
    bf16_to_f32(f32_to_bf16(x))
}

/// Smallest positive *normal* bfloat16 value. Gradients below roughly this
/// magnitude are at risk of flushing to zero — the pathology the paper's
/// dynamic gradient scaler exists to avoid.
pub const BF16_MIN_NORMAL: f32 = 1.175_494_4e-38;

/// Largest finite bfloat16 value; values above overflow to infinity.
pub const BF16_MAX: f32 = 3.389_531_4e38;

/// Machine epsilon of bfloat16 (8 explicit mantissa bits).
pub const BF16_EPSILON: f32 = 0.007_812_5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_round_trip() {
        for &v in &[0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, -4.0, 0.25, 65280.0] {
            assert_eq!(round_bf16(v), v, "{v} should be exactly representable");
        }
    }

    #[test]
    fn round_to_nearest_even_ties() {
        // 1.0 + 2^-9 is exactly halfway between 1.0 and 1.0 + 2^-8: ties go
        // to the even mantissa, i.e. 1.0.
        let halfway = 1.0 + 2f32.powi(-9);
        assert_eq!(round_bf16(halfway), 1.0);
        // 1.0 + 3*2^-9 is halfway between 1 + 2^-8 and 1 + 2^-7; even is the
        // latter.
        let halfway_up = 1.0 + 3.0 * 2f32.powi(-9);
        assert_eq!(round_bf16(halfway_up), 1.0 + 2f32.powi(-7));
    }

    #[test]
    fn rounding_error_is_bounded_by_epsilon() {
        let mut x = 1e-30f32;
        while x < 1e30 {
            let r = round_bf16(x);
            assert!(
                (r - x).abs() <= x.abs() * BF16_EPSILON,
                "|{r} - {x}| too large"
            );
            x *= 1.7;
        }
    }

    #[test]
    fn infinities_and_nan() {
        assert_eq!(round_bf16(f32::INFINITY), f32::INFINITY);
        assert_eq!(round_bf16(f32::NEG_INFINITY), f32::NEG_INFINITY);
        assert!(round_bf16(f32::NAN).is_nan());
        // Overflow beyond BF16_MAX becomes infinity: the largest finite f32
        // is not representable in bf16 and rounds up.
        assert_eq!(round_bf16(f32::MAX), f32::INFINITY);
    }

    #[test]
    fn tiny_values_flush_toward_zero_region() {
        // Values far below the normal range lose precision; the scaler's
        // existence depends on this behaviour being real.
        let tiny = 1e-45f32;
        let r = round_bf16(tiny);
        assert!(r.abs() < BF16_MIN_NORMAL);
    }

    #[test]
    fn sign_preserved() {
        assert!(round_bf16(-std::f32::consts::PI).is_sign_negative());
        assert!(round_bf16(std::f32::consts::PI).is_sign_positive());
        assert!(round_bf16(-0.0).is_sign_negative());
    }

    #[test]
    fn precision_bytes() {
        assert_eq!(Precision::F32.bytes_per_element(), 4);
        assert_eq!(Precision::BF16Mixed.bytes_per_element(), 2);
    }

    #[test]
    fn max_value_is_finite_in_bf16() {
        assert_eq!(round_bf16(BF16_MAX), BF16_MAX);
        assert!(round_bf16(BF16_MAX).is_finite());
    }
}
