//! LayerNorm with backward.
//!
//! Used both as the standard pre-norm of each transformer sub-layer and as
//! the paper's *QK layer normalization* (Sec. III-B, "Architecture
//! Optimization"): normalizing queries and keys before the scaled dot
//! product bounds the attention-logit growth that made the 22 B ViT of
//! Dehghani et al. diverge.

use crate::tensor::Tensor;

/// Values cached by [`layernorm`] for the backward pass.
#[derive(Debug, Clone)]
pub struct LayerNormCache {
    /// Normalized activations `x_hat` (before scale/shift).
    pub xhat: Tensor,
    /// Per-row reciprocal standard deviation.
    pub rstd: Vec<f32>,
}

impl LayerNormCache {
    /// Number of f32 values this cache keeps resident for the backward.
    pub fn resident_floats(&self) -> usize {
        self.xhat.len() + self.rstd.len()
    }
}

/// Gradients produced by [`layernorm_backward`].
#[derive(Debug, Clone)]
pub struct LayerNormGrads {
    pub dx: Tensor,
    /// Gradient for gamma (1 x features).
    pub dgamma: Tensor,
    /// Gradient for beta (1 x features).
    pub dbeta: Tensor,
}

pub const LN_EPS: f32 = 1e-5;

/// Row-wise layer normalization: `y = gamma * (x - mean)/std + beta`.
pub fn layernorm(x: &Tensor, gamma: &Tensor, beta: &Tensor) -> (Tensor, LayerNormCache) {
    let (rows, cols) = x.shape();
    assert_eq!(gamma.shape(), (1, cols), "layernorm gamma shape");
    assert_eq!(beta.shape(), (1, cols), "layernorm beta shape");
    let mut y = Tensor::zeros(rows, cols);
    let mut xhat = Tensor::zeros(rows, cols);
    let mut rstd = vec![0.0f32; rows];
    for (r, slot) in rstd.iter_mut().enumerate() {
        let row = x.row(r);
        let mean = row.iter().sum::<f32>() / cols as f32;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
        let rs = 1.0 / (var + LN_EPS).sqrt();
        *slot = rs;
        for (c, &xv) in row.iter().enumerate() {
            let xh = (xv - mean) * rs;
            xhat.set(r, c, xh);
            y.set(r, c, gamma.get(0, c) * xh + beta.get(0, c));
        }
    }
    (y, LayerNormCache { xhat, rstd })
}

/// Backward of [`layernorm`].
pub fn layernorm_backward(cache: &LayerNormCache, gamma: &Tensor, dy: &Tensor) -> LayerNormGrads {
    let (rows, cols) = cache.xhat.shape();
    assert_eq!(dy.shape(), (rows, cols), "layernorm backward dy shape");
    let mut dx = Tensor::zeros(rows, cols);
    let mut dgamma = Tensor::zeros(1, cols);
    let mut dbeta = Tensor::zeros(1, cols);
    for r in 0..rows {
        let xh = cache.xhat.row(r);
        let dyr = dy.row(r);
        // dL/dxhat = dy * gamma
        let dxhat: Vec<f32> = (0..cols).map(|c| dyr[c] * gamma.get(0, c)).collect();
        let sum_dxhat: f32 = dxhat.iter().sum();
        let sum_dxhat_xhat: f32 = dxhat.iter().zip(xh).map(|(a, b)| a * b).sum();
        let n = cols as f32;
        let rs = cache.rstd[r];
        for c in 0..cols {
            // Standard fused layernorm backward formula.
            let v = (n * dxhat[c] - sum_dxhat - xh[c] * sum_dxhat_xhat) * rs / n;
            dx.set(r, c, v);
            dgamma.set(0, c, dgamma.get(0, c) + dyr[c] * xh[c]);
            dbeta.set(0, c, dbeta.get(0, c) + dyr[c]);
        }
    }
    LayerNormGrads { dx, dgamma, dbeta }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Rng;
    use crate::kernels::fd::{assert_grad_close, numerical_grad};

    #[test]
    fn output_is_normalized() {
        let mut rng = Rng::seed(51);
        let x = rng.normal_tensor(4, 64, 3.0);
        let gamma = Tensor::full(1, 64, 1.0);
        let beta = Tensor::zeros(1, 64);
        let (y, _) = layernorm(&x, &gamma, &beta);
        for r in 0..4 {
            let mean: f32 = y.row(r).iter().sum::<f32>() / 64.0;
            let var: f32 = y
                .row(r)
                .iter()
                .map(|v| (v - mean) * (v - mean))
                .sum::<f32>()
                / 64.0;
            assert!(mean.abs() < 1e-5, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn gamma_beta_applied() {
        let x = Tensor::from_vec(1, 2, vec![-1.0, 1.0]);
        let gamma = Tensor::from_vec(1, 2, vec![2.0, 2.0]);
        let beta = Tensor::from_vec(1, 2, vec![10.0, 10.0]);
        let (y, _) = layernorm(&x, &gamma, &beta);
        // x normalizes to (-1, 1) (up to eps), then scale 2 shift 10.
        assert!((y.get(0, 0) - 8.0).abs() < 1e-2);
        assert!((y.get(0, 1) - 12.0).abs() < 1e-2);
    }

    #[test]
    fn grads_match_fd() {
        let mut rng = Rng::seed(53);
        let x = rng.normal_tensor(3, 6, 1.0);
        let gamma = rng.normal_tensor(1, 6, 0.5).add(&Tensor::full(1, 6, 1.0));
        let beta = rng.normal_tensor(1, 6, 0.5);
        let m = rng.normal_tensor(3, 6, 1.0);
        let loss =
            |x_: &Tensor, g_: &Tensor, b_: &Tensor| layernorm(x_, g_, b_).0.hadamard(&m).sum();
        let (_, cache) = layernorm(&x, &gamma, &beta);
        let g = layernorm_backward(&cache, &gamma, &m);
        assert_grad_close(
            &g.dx,
            &numerical_grad(&x, |x_| loss(x_, &gamma, &beta), 1e-3),
            3e-2,
        );
        assert_grad_close(
            &g.dgamma,
            &numerical_grad(&gamma, |g_| loss(&x, g_, &beta), 1e-3),
            3e-2,
        );
        assert_grad_close(
            &g.dbeta,
            &numerical_grad(&beta, |b_| loss(&x, &gamma, b_), 1e-3),
            3e-2,
        );
    }

    #[test]
    fn qk_norm_bounds_logits() {
        // The paper's motivation: normalized q,k keep dot products bounded
        // by the feature count regardless of input scale.
        let mut rng = Rng::seed(57);
        let d = 32usize;
        let gamma = Tensor::full(1, d, 1.0);
        let beta = Tensor::zeros(1, d);
        let q_raw = rng.normal_tensor(8, d, 100.0); // exploded activations
        let k_raw = rng.normal_tensor(8, d, 100.0);
        let (q, _) = layernorm(&q_raw, &gamma, &beta);
        let (k, _) = layernorm(&k_raw, &gamma, &beta);
        let logits = crate::matmul::matmul_nt(&q, &k);
        // |q_i . k_j| <= |q||k| = d after normalization (Cauchy-Schwarz).
        assert!(logits.max_abs() <= d as f32 + 1.0);
        let raw_logits = crate::matmul::matmul_nt(&q_raw, &k_raw);
        assert!(
            raw_logits.max_abs() > 10.0 * d as f32,
            "raw logits should explode"
        );
    }
}
