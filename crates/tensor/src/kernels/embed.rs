//! Patch tokenization: unfold an image into flattened patches and fold
//! patch gradients back.
//!
//! ClimaX/ORBIT tokenize *each climate variable independently* (paper
//! Fig. 1): an `H x W` field becomes `(H/p)*(W/p)` tokens of `p*p` pixels,
//! which a per-variable linear layer then embeds. Unfold/fold are exact
//! inverses, so the patch-embedding backward is `fold(unfold-grad)`.

use crate::tensor::Tensor;

/// Unfold an `H x W` image into `(H/p * W/p) x (p*p)` patch rows.
/// Patches are ordered row-major over the patch grid; pixels within a patch
/// are row-major too.
pub fn unfold_patches(img: &Tensor, p: usize) -> Tensor {
    let (h, w) = img.shape();
    assert!(
        p > 0 && h % p == 0 && w % p == 0,
        "patch {p} must divide {h}x{w}"
    );
    let gh = h / p;
    let gw = w / p;
    let mut out = Tensor::zeros(gh * gw, p * p);
    for gy in 0..gh {
        for gx in 0..gw {
            let row = gy * gw + gx;
            for py in 0..p {
                let src = &img.row(gy * p + py)[gx * p..gx * p + p];
                out.row_mut(row)[py * p..py * p + p].copy_from_slice(src);
            }
        }
    }
    out
}

/// Inverse of [`unfold_patches`]: fold `(gh*gw) x (p*p)` patch rows back
/// into an `h x w` image. Used to reconstruct prediction images and to
/// backpropagate patch gradients onto pixel gradients.
pub fn fold_patches(patches: &Tensor, p: usize, h: usize, w: usize) -> Tensor {
    assert!(h.is_multiple_of(p) && w.is_multiple_of(p));
    let gh = h / p;
    let gw = w / p;
    assert_eq!(patches.shape(), (gh * gw, p * p), "fold_patches shape");
    let mut img = Tensor::zeros(h, w);
    for gy in 0..gh {
        for gx in 0..gw {
            let row = gy * gw + gx;
            for py in 0..p {
                let dst = &mut img.row_mut(gy * p + py)[gx * p..gx * p + p];
                dst.copy_from_slice(&patches.row(row)[py * p..py * p + p]);
            }
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Rng;

    #[test]
    fn unfold_fold_roundtrip() {
        let mut rng = Rng::seed(83);
        for &(h, w, p) in &[(4usize, 8usize, 2usize), (8, 8, 4), (6, 9, 3), (2, 2, 1)] {
            let img = rng.normal_tensor(h, w, 1.0);
            let patches = unfold_patches(&img, p);
            assert_eq!(patches.shape(), ((h / p) * (w / p), p * p));
            assert_eq!(fold_patches(&patches, p, h, w), img);
        }
    }

    #[test]
    fn patch_layout_is_row_major() {
        // 4x4 image with values 0..16, patch 2: first patch is the top-left
        // 2x2 block in row-major order.
        let img = Tensor::from_vec(4, 4, (0..16).map(|i| i as f32).collect());
        let p = unfold_patches(&img, 2);
        assert_eq!(p.row(0), &[0., 1., 4., 5.]);
        assert_eq!(p.row(1), &[2., 3., 6., 7.]);
        assert_eq!(p.row(2), &[8., 9., 12., 13.]);
        assert_eq!(p.row(3), &[10., 11., 14., 15.]);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_nondividing_patch() {
        let img = Tensor::zeros(5, 4);
        let _ = unfold_patches(&img, 2);
    }

    #[test]
    fn fold_is_linear() {
        // fold(a + b) = fold(a) + fold(b): required for it to be a valid
        // gradient router.
        let mut rng = Rng::seed(89);
        let a = rng.normal_tensor(4, 4, 1.0);
        let b = rng.normal_tensor(4, 4, 1.0);
        let sum = fold_patches(&a.add(&b), 2, 4, 4);
        let parts = fold_patches(&a, 2, 4, 4).add(&fold_patches(&b, 2, 4, 4));
        assert_eq!(sum, parts);
    }
}
