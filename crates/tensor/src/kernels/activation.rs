//! GeLU and row-softmax with backward passes.
//!
//! The paper's feed-forward sub-layer is `GeLU(x A) B` and the attention
//! sub-layer is `softmax(Q K^T) V`; both nonlinearities sit *between* the
//! two sharded matrices of the Hybrid-STOP chain, which is why the chain
//! identity of Eqn. (2) still applies around them.

use crate::tensor::Tensor;

/// Exact GeLU using the error function: `gelu(x) = x * Phi(x)`.
///
/// We evaluate `Phi` through the tanh approximation used by the original
/// ViT/GPT codebases (and ClimaX), which is what "GeLU" means in the paper.
#[inline]
pub fn gelu_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044_715 * x * x * x)).tanh())
}

/// Derivative of [`gelu_scalar`].
#[inline]
pub fn gelu_grad_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = x * x * x;
    let inner = C * (x + 0.044_715 * x3);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044_715 * x * x)
}

/// Element-wise GeLU.
pub fn gelu(x: &Tensor) -> Tensor {
    let data = x.data().iter().map(|&v| gelu_scalar(v)).collect();
    Tensor::from_vec(x.rows(), x.cols(), data)
}

/// Backward of [`gelu`]: `dx = dy * gelu'(x)`.
pub fn gelu_backward(x: &Tensor, dy: &Tensor) -> Tensor {
    assert_eq!(x.shape(), dy.shape(), "gelu_backward shape mismatch");
    let data = x
        .data()
        .iter()
        .zip(dy.data())
        .map(|(&xv, &dv)| dv * gelu_grad_scalar(xv))
        .collect();
    Tensor::from_vec(x.rows(), x.cols(), data)
}

/// Numerically-stable softmax applied independently to each row.
pub fn softmax_rows(x: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(x.rows(), x.cols());
    for r in 0..x.rows() {
        let row = x.row(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        let orow = out.row_mut(r);
        for (o, &v) in orow.iter_mut().zip(row) {
            let e = (v - max).exp();
            *o = e;
            sum += e;
        }
        let inv = 1.0 / sum;
        for o in orow.iter_mut() {
            *o *= inv;
        }
    }
    out
}

/// Backward of [`softmax_rows`] given the *forward output* `y`:
/// `dx_i = y_i * (dy_i - sum_j dy_j y_j)` per row.
pub fn softmax_rows_backward(y: &Tensor, dy: &Tensor) -> Tensor {
    assert_eq!(y.shape(), dy.shape(), "softmax backward shape mismatch");
    let mut dx = Tensor::zeros(y.rows(), y.cols());
    for r in 0..y.rows() {
        let yr = y.row(r);
        let dr = dy.row(r);
        let dot: f32 = yr.iter().zip(dr).map(|(a, b)| a * b).sum();
        for ((o, &yv), &dv) in dx.row_mut(r).iter_mut().zip(yr).zip(dr) {
            *o = yv * (dv - dot);
        }
    }
    dx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Rng;
    use crate::kernels::fd::{assert_grad_close, numerical_grad};

    #[test]
    fn gelu_known_values() {
        assert_eq!(gelu_scalar(0.0), 0.0);
        assert!((gelu_scalar(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu_scalar(-1.0) + 0.1588).abs() < 1e-3);
        // Large positive -> identity; large negative -> 0.
        assert!((gelu_scalar(10.0) - 10.0).abs() < 1e-4);
        assert!(gelu_scalar(-10.0).abs() < 1e-4);
    }

    #[test]
    fn gelu_grad_matches_fd() {
        let mut rng = Rng::seed(41);
        let x = rng.normal_tensor(4, 5, 1.5);
        let dy = Tensor::full(4, 5, 1.0);
        let g = gelu_backward(&x, &dy);
        let n = numerical_grad(&x, |x_| gelu(x_).sum(), 1e-3);
        assert_grad_close(&g, &n, 1e-2);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_stable() {
        let x = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0]);
        let y = softmax_rows(&x);
        for r in 0..2 {
            let s: f32 = y.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "row {r} sums to {s}");
        }
        // Huge logits don't overflow thanks to max subtraction.
        assert!(y.all_finite());
        assert!((y.get(1, 0) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_monotone_in_logits() {
        let x = Tensor::from_vec(1, 3, vec![0.0, 1.0, 2.0]);
        let y = softmax_rows(&x);
        assert!(y.get(0, 0) < y.get(0, 1));
        assert!(y.get(0, 1) < y.get(0, 2));
    }

    #[test]
    fn softmax_grad_matches_fd() {
        let mut rng = Rng::seed(43);
        let x = rng.normal_tensor(3, 4, 1.0);
        let m = rng.normal_tensor(3, 4, 1.0);
        let y = softmax_rows(&x);
        let dy = m.clone();
        let g = softmax_rows_backward(&y, &dy);
        let n = numerical_grad(&x, |x_| softmax_rows(x_).hadamard(&m).sum(), 1e-3);
        assert_grad_close(&g, &n, 2e-2);
    }

    #[test]
    fn softmax_grad_orthogonal_to_ones() {
        // Softmax output lives on the simplex, so its Jacobian annihilates
        // constant shifts: each row of dx must sum to ~0.
        let mut rng = Rng::seed(47);
        let x = rng.normal_tensor(5, 7, 2.0);
        let dy = rng.normal_tensor(5, 7, 1.0);
        let dx = softmax_rows_backward(&softmax_rows(&x), &dy);
        for r in 0..5 {
            let s: f32 = dx.row(r).iter().sum();
            assert!(s.abs() < 1e-5, "row {r} grad sum {s}");
        }
    }
}
