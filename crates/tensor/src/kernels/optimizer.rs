//! AdamW optimizer operating on flat parameter slices.
//!
//! Operating on raw slices (rather than on model structs) is deliberate:
//! FSDP and Hybrid-STOP keep *shards* of the flat parameter vector, and the
//! optimizer state must shard identically (each rank owns the Adam moments
//! of exactly its shard — the memory term the Fig. 5/6 model accounts for).

use serde::{Deserialize, Serialize};

/// AdamW hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AdamW {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub weight_decay: f32,
}

impl Default for AdamW {
    fn default() -> Self {
        AdamW {
            lr: 5e-4,
            beta1: 0.9,
            beta2: 0.95,
            eps: 1e-8,
            weight_decay: 1e-5,
        }
    }
}

/// Per-parameter-group Adam moments (same length as the owned shard).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdamState {
    pub m: Vec<f32>,
    pub v: Vec<f32>,
    pub step: u64,
}

impl AdamState {
    /// Zero-initialized state for `n` parameters.
    pub fn new(n: usize) -> Self {
        AdamState {
            m: vec![0.0; n],
            v: vec![0.0; n],
            step: 0,
        }
    }

    /// Bytes of optimizer state per parameter (two f32 moments) — used by
    /// the memory model.
    pub const BYTES_PER_PARAM: usize = 8;
}

impl AdamW {
    /// Apply one AdamW update to `params` given `grads`, advancing `state`.
    ///
    /// All three slices must be the same length (the rank's owned shard).
    pub fn step(&self, state: &mut AdamState, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        assert_eq!(params.len(), state.m.len(), "param/state length mismatch");
        state.step += 1;
        let t = state.step as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        for i in 0..params.len() {
            let g = grads[i];
            state.m[i] = self.beta1 * state.m[i] + (1.0 - self.beta1) * g;
            state.v[i] = self.beta2 * state.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = state.m[i] / bc1;
            let v_hat = state.v[i] / bc2;
            // Decoupled weight decay (AdamW).
            params[i] -=
                self.lr * (m_hat / (v_hat.sqrt() + self.eps) + self.weight_decay * params[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descends_a_quadratic() {
        // Minimize f(x) = (x - 3)^2; gradient 2(x-3).
        let opt = AdamW {
            lr: 0.1,
            weight_decay: 0.0,
            ..AdamW::default()
        };
        let mut state = AdamState::new(1);
        let mut x = vec![0.0f32];
        for _ in 0..300 {
            let g = vec![2.0 * (x[0] - 3.0)];
            opt.step(&mut state, &mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 0.05, "x = {}", x[0]);
    }

    #[test]
    fn first_step_is_signed_lr() {
        // With bias correction, the first Adam step has magnitude ~lr in the
        // gradient's direction.
        let opt = AdamW {
            lr: 0.01,
            weight_decay: 0.0,
            ..AdamW::default()
        };
        let mut state = AdamState::new(2);
        let mut x = vec![1.0f32, -1.0];
        opt.step(&mut state, &mut x, &[0.5, -0.5]);
        assert!((x[0] - (1.0 - 0.01)).abs() < 1e-4);
        assert!((x[1] - (-1.0 + 0.01)).abs() < 1e-4);
    }

    #[test]
    fn weight_decay_shrinks_params_without_gradient() {
        let opt = AdamW {
            lr: 0.1,
            weight_decay: 0.1,
            ..AdamW::default()
        };
        let mut state = AdamState::new(1);
        let mut x = vec![10.0f32];
        for _ in 0..10 {
            opt.step(&mut state, &mut x, &[0.0]);
        }
        assert!(x[0] < 10.0 && x[0] > 8.0, "decay only: {}", x[0]);
    }

    #[test]
    fn sharded_update_equals_full_update() {
        // Running AdamW on two halves independently must equal running it on
        // the whole vector — the invariant that makes sharded optimizer
        // state (FSDP / Hybrid-STOP) exact.
        let opt = AdamW::default();
        let params: Vec<f32> = (0..8).map(|i| i as f32 * 0.3 - 1.0).collect();
        let grads: Vec<f32> = (0..8).map(|i| (i as f32).sin()).collect();

        let mut full = params.clone();
        let mut s_full = AdamState::new(8);
        opt.step(&mut s_full, &mut full, &grads);
        opt.step(&mut s_full, &mut full, &grads);

        let mut lo = params[..4].to_vec();
        let mut hi = params[4..].to_vec();
        let mut s_lo = AdamState::new(4);
        let mut s_hi = AdamState::new(4);
        for _ in 0..2 {
            opt.step(&mut s_lo, &mut lo, &grads[..4]);
            opt.step(&mut s_hi, &mut hi, &grads[4..]);
        }
        let recombined: Vec<f32> = lo.into_iter().chain(hi).collect();
        for (a, b) in full.iter().zip(&recombined) {
            assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_lengths() {
        let opt = AdamW::default();
        let mut state = AdamState::new(2);
        let mut x = vec![0.0f32; 2];
        opt.step(&mut state, &mut x, &[0.0]);
    }
}
