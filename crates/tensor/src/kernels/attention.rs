//! Multi-head scaled dot-product attention with optional QK layer
//! normalization, in two interchangeable implementations:
//!
//! - **Fused** (`AttnPath::Fused`): a flash-attention-style streaming kernel.
//!   Keys/values are consumed in fixed-size tiles ([`KV_TILE`] rows) with an
//!   online-softmax recurrence (running row max `m` and normalizer `l`), so
//!   the `T x T_kv` probability matrix is never materialized. Work is
//!   parallel over `heads x query-row blocks` ([`QUERY_BLOCK`] rows each);
//!   every task writes to its own fixed-stride slot of one pooled
//!   [`Workspace`] buffer, which is demuxed sequentially afterwards — no
//!   reduction races, no allocation in the steady state, and a fixed
//!   summation order that makes runs bit-reproducible.
//! - **Reference** (`AttnPath::Reference`): the straightforward
//!   materialize-the-probs path. Its cached `probs` make the backward a
//!   plain chain rule, which is what the finite-difference gradient checks
//!   exercise; it is also the "naive" baseline `kernel_bench` measures the
//!   fused kernel against.
//!
//! `AttnPath::Auto` (what the legacy [`mha_forward`] entry point uses) picks
//! the fused path when the score matrix is large enough to matter
//! (`tokens * kv_tokens >= FUSED_MIN_CELLS`) and the reference path
//! otherwise. The switch depends only on the *token* geometry — tensor
//! parallelism shards heads, never tokens, so every engine takes the same
//! path at the same model shape and cross-engine bit-identity is preserved.
//!
//! The fused backward recomputes probabilities from the cached logsumexp
//! (`lse = m + ln l`) instead of storing them: sweep A owns `dq` blocks,
//! sweep B owns `dk`/`dv` tiles, both looping the opposite axis serially in
//! ascending order so gradient summation order is fixed.
//!
//! QK layer normalization is the paper's "Architecture Optimization"
//! (Sec. III-B): it bounds attention-logit growth and prevents the training
//! divergence reported for the 22 B ViT. Both paths support it.

use crate::bf16::Precision;
use crate::kernels::activation::{softmax_rows, softmax_rows_backward};
use crate::kernels::norm::{layernorm, layernorm_backward, LayerNormCache};
use crate::matmul::{matmul, matmul_nt, matmul_tn};
use crate::tensor::Tensor;
use crate::workspace::Workspace;
use rayon::prelude::*;

/// Query rows processed per fused task. Fixed: part of the determinism
/// contract (the parallel decomposition never depends on thread count).
pub const QUERY_BLOCK: usize = 32;

/// Key/value rows consumed per streaming tile. Fixed, same contract.
pub const KV_TILE: usize = 64;

/// `Auto` routes to the fused path when `tokens * kv_tokens` reaches this
/// many score cells (128 x 128). Below it the reference path's simplicity
/// wins and tiny test shapes keep their historical byte-exact results.
pub const FUSED_MIN_CELLS: usize = 128 * 128;

/// Which attention implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttnPath {
    /// Pick fused vs reference from the token geometry (see
    /// [`FUSED_MIN_CELLS`]). This is what the legacy entry points use.
    Auto,
    /// Streaming tiled kernel with online softmax; backward recomputes.
    Fused,
    /// Materialized-probs path; backward uses the cached probabilities.
    Reference,
}

impl AttnPath {
    fn resolve(self, tokens: usize, kv_tokens: usize) -> AttnPath {
        match self {
            AttnPath::Auto => {
                if tokens.saturating_mul(kv_tokens) >= FUSED_MIN_CELLS {
                    AttnPath::Fused
                } else {
                    AttnPath::Reference
                }
            }
            p => p,
        }
    }
}

/// Optional QK-normalization parameters (shared across heads; `1 x d_head`).
#[derive(Debug, Clone)]
pub struct QkNorm {
    pub gamma_q: Tensor,
    pub beta_q: Tensor,
    pub gamma_k: Tensor,
    pub beta_k: Tensor,
}

impl QkNorm {
    /// Identity-initialized QK normalization for `d_head` features.
    pub fn identity(d_head: usize) -> Self {
        QkNorm {
            gamma_q: Tensor::full(1, d_head, 1.0),
            beta_q: Tensor::zeros(1, d_head),
            gamma_k: Tensor::full(1, d_head, 1.0),
            beta_k: Tensor::zeros(1, d_head),
        }
    }
}

/// Per-head state cached by the reference path for its backward.
struct RefHead {
    q: Tensor,
    k: Tensor,
    v: Tensor,
    probs: Tensor,
    ln_q: Option<LayerNormCache>,
    ln_k: Option<LayerNormCache>,
}

/// State cached by the fused path: (possibly normalized) activations in
/// head-column layout plus the per-row logsumexp needed to recompute
/// probabilities tile by tile. `O(T * d_model)` — no `T x T_kv` term.
struct FusedState {
    /// Normalized (or raw) Q/K and V, full width, head-column layout.
    q: Tensor,
    k: Tensor,
    v: Tensor,
    /// Forward output, needed for `D = rowsum(dO . O)` in the backward.
    o: Tensor,
    /// `lse[h * tokens + i] = m_i + ln(l_i)` for head `h`, query row `i`.
    lse: Vec<f32>,
    ln_q: Option<Vec<LayerNormCache>>,
    ln_k: Option<Vec<LayerNormCache>>,
}

enum CacheState {
    Reference(Vec<RefHead>),
    Fused(Box<FusedState>),
}

/// Cache returned by [`mha_forward`].
pub struct MhaCache {
    state: CacheState,
    d_head: usize,
    heads: usize,
    qk_norm: bool,
}

impl MhaCache {
    /// Which path produced this cache (what the backward will take).
    pub fn path(&self) -> AttnPath {
        match self.state {
            CacheState::Reference(_) => AttnPath::Reference,
            CacheState::Fused(_) => AttnPath::Fused,
        }
    }

    /// Bytes of activation state this cache keeps resident for the backward
    /// pass. The reference path carries a `tokens x kv_tokens` probs matrix
    /// per head; the fused path carries only `O(T * d_model)` activations
    /// plus one logsumexp scalar per (head, row).
    pub fn resident_bytes(&self) -> usize {
        let f = std::mem::size_of::<f32>();
        match &self.state {
            CacheState::Reference(heads) => heads
                .iter()
                .map(|h| {
                    (h.q.len()
                        + h.k.len()
                        + h.v.len()
                        + h.probs.len()
                        + h.ln_q.as_ref().map_or(0, |c| c.resident_floats())
                        + h.ln_k.as_ref().map_or(0, |c| c.resident_floats()))
                        * f
                })
                .sum(),
            CacheState::Fused(s) => {
                let ln = s
                    .ln_q
                    .iter()
                    .chain(s.ln_k.iter())
                    .flat_map(|v| v.iter())
                    .map(|c| c.resident_floats())
                    .sum::<usize>();
                (s.q.len() + s.k.len() + s.v.len() + s.o.len() + s.lse.len() + ln) * f
            }
        }
    }
}

/// Gradients returned by [`mha_backward`].
pub struct MhaGrads {
    pub dq: Tensor,
    pub dk: Tensor,
    pub dv: Tensor,
    /// QK-norm parameter grads, present iff QK norm was used:
    /// (dgamma_q, dbeta_q, dgamma_k, dbeta_k).
    pub dqk_norm: Option<(Tensor, Tensor, Tensor, Tensor)>,
}

/// Deterministic fast `e^x` used only inside the fused kernel.
///
/// Round-to-nearest via the 2^23 magic constant (no `floor` call), a
/// degree-5 polynomial for `2^f` on `f in [-0.5, 0.5]`, and bit-assembled
/// `2^n` scaling. Pure f32 arithmetic — no libm, branch-free, identical
/// results on every run and every thread decomposition, and ~5x cheaper
/// than libm `exp` in the tiled inner loop. Max relative error ~5e-6,
/// far inside the fused-vs-reference equivalence tolerances.
#[inline(always)]
fn fast_exp(x: f32) -> f32 {
    const LOG2E: f32 = std::f32::consts::LOG2_E;
    const MAGIC: f32 = 12_582_912.0; // 1.5 * 2^23
                                     // Clamp keeps the assembled exponent in normal-f32 range; e^{-87} is
                                     // already below the smallest normal, so the clamp only changes values
                                     // that round to zero anyway.
    let y = (x * LOG2E).clamp(-126.0, 126.0);
    let z = y + MAGIC;
    let n = (z.to_bits() as i32).wrapping_sub(MAGIC.to_bits() as i32);
    let f = y - n as f32; // in [-0.5, 0.5]
                          // exp2 minimax polynomial on [-0.5, 0.5].
    let p = 1.0
        + f * (std::f32::consts::LN_2
            + f * (0.240_226_5 + f * (0.055_504_11 + f * (0.009_618_129 + f * 0.001_333_355_8))));
    let scale = f32::from_bits(((n + 127) as u32) << 23);
    p * scale
}

/// Pack `tlen` rows of one head's KV tile into a transposed
/// `d_head x KV_TILE` panel (`dst[d * KV_TILE + j] = src[t0 + j][c0 + d]`)
/// so the streaming loops below read the key axis contiguously. Packing is
/// ~3% of the tile's flops and turns every inner loop into unit-stride
/// SIMD-friendly code.
#[inline(always)]
fn pack_tile_t(
    src: &[f32],
    t0: usize,
    tlen: usize,
    d_model: usize,
    c0: usize,
    d_head: usize,
    dst: &mut [f32],
) {
    for j in 0..tlen {
        let row = &src[(t0 + j) * d_model + c0..(t0 + j) * d_model + c0 + d_head];
        for (d, &x) in row.iter().enumerate() {
            dst[d * KV_TILE + j] = x;
        }
    }
}

/// `srow[j] = scale * <x_i, y_j>` against a packed transposed tile, as
/// rank-1 updates over the contiguous key axis with ascending-`d`
/// accumulation — a fixed summation order, so results are independent of
/// the parallel decomposition.
#[inline(always)]
fn scores_from_packed(xrow: &[f32], yt: &[f32], tlen: usize, scale: f32, srow: &mut [f32]) {
    const STRIP: usize = 32;
    if tlen == KV_TILE {
        // Full-tile fast path: const-width local accumulators the compiler
        // keeps in vector registers across the whole `d` loop (the
        // arithmetic and its order are identical to the general path).
        for strip in 0..KV_TILE / STRIP {
            let off = strip * STRIP;
            let mut acc = [0.0f32; STRIP];
            for (d, &xv) in xrow.iter().enumerate() {
                let ytrow: &[f32; STRIP] = (&yt[d * KV_TILE + off..d * KV_TILE + off + STRIP])
                    .try_into()
                    .unwrap();
                for (a, &yv) in acc.iter_mut().zip(ytrow.iter()) {
                    *a += xv * yv;
                }
            }
            for (s, &a) in srow[off..off + STRIP].iter_mut().zip(acc.iter()) {
                *s = a * scale;
            }
        }
        return;
    }
    let srow = &mut srow[..tlen];
    for x in srow.iter_mut() {
        *x = 0.0;
    }
    for (d, &xv) in xrow.iter().enumerate() {
        let ytrow = &yt[d * KV_TILE..d * KV_TILE + tlen];
        for (s, &yv) in srow.iter_mut().zip(ytrow) {
            *s += xv * yv;
        }
    }
    for s in srow.iter_mut() {
        *s *= scale;
    }
}

/// Two query rows against one packed panel: each panel row is loaded once
/// and feeds both rows' accumulator chains, doubling arithmetic intensity.
/// Per-row arithmetic and summation order are identical to
/// [`scores_from_packed`].
#[inline(always)]
fn scores2_from_packed(
    x0: &[f32],
    x1: &[f32],
    yt: &[f32],
    tlen: usize,
    scale: f32,
    s0: &mut [f32],
    s1: &mut [f32],
) {
    const STRIP: usize = 32;
    if tlen == KV_TILE {
        // Strip-mine the key axis so both rows' accumulators fit in vector
        // registers at once (2 x 32 lanes; 2 x 64 would spill).
        for strip in 0..KV_TILE / STRIP {
            let off = strip * STRIP;
            let mut a0 = [0.0f32; STRIP];
            let mut a1 = [0.0f32; STRIP];
            for d in 0..x0.len() {
                let (v0, v1) = (x0[d], x1[d]);
                let ytrow: &[f32; STRIP] = (&yt[d * KV_TILE + off..d * KV_TILE + off + STRIP])
                    .try_into()
                    .unwrap();
                for t in 0..STRIP {
                    a0[t] += v0 * ytrow[t];
                    a1[t] += v1 * ytrow[t];
                }
            }
            for t in 0..STRIP {
                s0[off + t] = a0[t] * scale;
                s1[off + t] = a1[t] * scale;
            }
        }
        return;
    }
    scores_from_packed(x0, yt, tlen, scale, s0);
    scores_from_packed(x1, yt, tlen, scale, s1);
}

/// `acc[d] += sum_j w[j] * rows[t0 + j][c0 + d]`, key axis blocked by 4 for
/// instruction-level parallelism. The 4-wide groups are summed in a fixed
/// ascending order, then the remainder keys one at a time.
#[inline(always)]
fn accumulate_weighted_rows(
    w: &[f32],
    rows: &[f32],
    t0: usize,
    tlen: usize,
    d_model: usize,
    c0: usize,
    acc: &mut [f32],
) {
    let d_head = acc.len();
    let base = |j: usize| (t0 + j) * d_model + c0;
    if d_head == 64 {
        // Hot-path head width: stage the accumulator in const-size strips
        // that live in vector registers across the whole tile instead of
        // round-tripping through memory per key group (a full 64-wide
        // local would spill). Same grouping and summation order as the
        // general path below.
        for strip in 0..2 {
            let off = strip * 32;
            let mut a = [0.0f32; 32];
            a.copy_from_slice(&acc[off..off + 32]);
            let mut j = 0;
            while j + 4 <= tlen {
                let (w0, w1, w2, w3) = (w[j], w[j + 1], w[j + 2], w[j + 3]);
                let r0: &[f32; 32] = (&rows[base(j) + off..base(j) + off + 32])
                    .try_into()
                    .unwrap();
                let r1: &[f32; 32] = (&rows[base(j + 1) + off..base(j + 1) + off + 32])
                    .try_into()
                    .unwrap();
                let r2: &[f32; 32] = (&rows[base(j + 2) + off..base(j + 2) + off + 32])
                    .try_into()
                    .unwrap();
                let r3: &[f32; 32] = (&rows[base(j + 3) + off..base(j + 3) + off + 32])
                    .try_into()
                    .unwrap();
                for d in 0..32 {
                    a[d] += w0 * r0[d] + w1 * r1[d] + w2 * r2[d] + w3 * r3[d];
                }
                j += 4;
            }
            while j < tlen {
                let wj = w[j];
                let row = &rows[base(j) + off..base(j) + off + 32];
                for (x, &r) in a.iter_mut().zip(row) {
                    *x += wj * r;
                }
                j += 1;
            }
            acc[off..off + 32].copy_from_slice(&a);
        }
        return;
    }
    let mut j = 0;
    while j + 4 <= tlen {
        let (w0, w1, w2, w3) = (w[j], w[j + 1], w[j + 2], w[j + 3]);
        let r0 = &rows[base(j)..base(j) + d_head];
        let r1 = &rows[base(j + 1)..base(j + 1) + d_head];
        let r2 = &rows[base(j + 2)..base(j + 2) + d_head];
        let r3 = &rows[base(j + 3)..base(j + 3) + d_head];
        for d in 0..d_head {
            acc[d] += w0 * r0[d] + w1 * r1[d] + w2 * r2[d] + w3 * r3[d];
        }
        j += 4;
    }
    while j < tlen {
        let wj = w[j];
        let row = &rows[base(j)..base(j) + d_head];
        for (a, &x) in acc.iter_mut().zip(row) {
            *a += wj * x;
        }
        j += 1;
    }
}

/// Max of `init` and every element of `xs`, 4 lanes at a time. `max` is
/// exact (no rounding), so any association gives identical results; the
/// lane split only exists to let the loop vectorize.
#[inline(always)]
fn lanes_max(xs: &[f32], init: f32) -> f32 {
    let chunks = xs.len() / 4;
    let mut m = [init; 4];
    for c in 0..chunks {
        let i = c * 4;
        for lane in 0..4 {
            if xs[i + lane] > m[lane] {
                m[lane] = xs[i + lane];
            }
        }
    }
    let mut out = (m[0].max(m[1])).max(m[2].max(m[3]));
    for &x in &xs[chunks * 4..] {
        if x > out {
            out = x;
        }
    }
    out
}

/// Sum of `xs` in a fixed 4-lane order (lane trees then ascending
/// remainder) — deterministic and vectorizable.
#[inline(always)]
fn lanes_sum(xs: &[f32]) -> f32 {
    let chunks = xs.len() / 4;
    let mut s = [0.0f32; 4];
    for c in 0..chunks {
        let i = c * 4;
        for lane in 0..4 {
            s[lane] += xs[i + lane];
        }
    }
    let mut out = (s[0] + s[1]) + (s[2] + s[3]);
    for &x in &xs[chunks * 4..] {
        out += x;
    }
    out
}

/// 4x-unrolled dot product over two equal-length head slices, fixed
/// ascending accumulation order per lane.
#[inline(always)]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len();
    let chunks = n / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for c in 0..chunks {
        let i = c * 4;
        s0 += a[i] * b[i];
        s1 += a[i + 1] * b[i + 1];
        s2 += a[i + 2] * b[i + 2];
        s3 += a[i + 3] * b[i + 3];
    }
    let mut s = (s0 + s1) + (s2 + s3);
    for i in chunks * 4..n {
        s += a[i] * b[i];
    }
    s
}

// ---------------------------------------------------------------------------
// AVX2+FMA micro-kernels
// ---------------------------------------------------------------------------
//
// Hand-vectorized versions of the fused kernel's inner loops, selected at
// runtime when the host supports AVX2+FMA (the build itself stays at the
// baseline target so the binary runs anywhere). Dispatch depends only on the
// host CPU, never on thread count or tensor contents, so runs on one machine
// remain bit-reproducible and every engine — which all route through this
// same kernel — sees identical values. The scalar fallbacks above carry the
// exact summation-order documentation; the vector versions keep a fixed
// (though lane-grouped) order of their own.
#[cfg(target_arch = "x86_64")]
mod simd {
    // `for r in 0..4` over register arrays is the unrolled micro-kernel
    // idiom here; iterator forms obscure the paired pointer offsets.
    #![allow(clippy::needless_range_loop)]

    use super::KV_TILE;
    use std::arch::x86_64::*;

    /// Runtime AVX2+FMA availability (std caches the CPUID probe).
    #[inline(always)]
    pub fn ok() -> bool {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }

    /// 8-lane version of [`super::fast_exp`]: same magic-constant
    /// round-to-nearest and the same degree-5 `exp2` polynomial (evaluated
    /// with fused multiply-adds).
    ///
    /// # Safety
    /// Requires AVX2+FMA (only called from `#[target_feature]` kernels
    /// below, which inherit the caller's proof); pure register math, no
    /// memory access.
    #[inline(always)]
    unsafe fn exp8(x: __m256) -> __m256 {
        let log2e = _mm256_set1_ps(std::f32::consts::LOG2_E);
        let magic = _mm256_set1_ps(12_582_912.0);
        let magic_i = _mm256_set1_epi32(12_582_912.0f32.to_bits() as i32);
        let y = _mm256_min_ps(
            _mm256_max_ps(_mm256_mul_ps(x, log2e), _mm256_set1_ps(-126.0)),
            _mm256_set1_ps(126.0),
        );
        let z = _mm256_add_ps(y, magic);
        let n = _mm256_sub_epi32(_mm256_castps_si256(z), magic_i);
        let f = _mm256_sub_ps(y, _mm256_cvtepi32_ps(n));
        let mut p = _mm256_set1_ps(0.001_333_355_8);
        p = _mm256_fmadd_ps(p, f, _mm256_set1_ps(0.009_618_129));
        p = _mm256_fmadd_ps(p, f, _mm256_set1_ps(0.055_504_11));
        p = _mm256_fmadd_ps(p, f, _mm256_set1_ps(0.240_226_5));
        p = _mm256_fmadd_ps(p, f, _mm256_set1_ps(std::f32::consts::LN_2));
        p = _mm256_fmadd_ps(p, f, _mm256_set1_ps(1.0));
        let scale = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
            n,
            _mm256_set1_epi32(127),
        )));
        _mm256_mul_ps(p, scale)
    }

    /// Exact lane-wise max reduction of one register.
    ///
    /// # Safety
    /// Requires AVX2 (inherited from the `#[target_feature]` callers);
    /// pure register math, no memory access.
    #[inline(always)]
    unsafe fn hmax(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps::<1>(v);
        let m = _mm_max_ps(lo, hi);
        let m = _mm_max_ps(m, _mm_movehl_ps(m, m));
        let m = _mm_max_ss(m, _mm_shuffle_ps::<1>(m, m));
        _mm_cvtss_f32(m)
    }

    /// Fixed-order lane sum of one register (low/high halves added, then
    /// pairwise).
    ///
    /// # Safety
    /// Requires AVX2 (inherited from the `#[target_feature]` callers);
    /// pure register math, no memory access.
    #[inline(always)]
    unsafe fn hsum(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps::<1>(v);
        let s = _mm_add_ps(lo, hi);
        let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
        let s = _mm_add_ss(s, _mm_shuffle_ps::<1>(s, s));
        _mm_cvtss_f32(s)
    }

    /// Scores for two query rows against one packed transposed full tile:
    /// `s{0,1}[j] = scale * <x{0,1}, yt[.., j]>`. Two 32-lane strips keep
    /// both rows' accumulators (8 registers) resident across the `d` loop.
    ///
    /// # Safety
    /// Requires AVX2+FMA; `yt` must hold `x0.len() * KV_TILE` floats and
    /// `s0`/`s1` at least `KV_TILE`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn scores2_full(
        x0: &[f32],
        x1: &[f32],
        yt: &[f32],
        scale: f32,
        s0: &mut [f32],
        s1: &mut [f32],
    ) {
        debug_assert!(yt.len() >= x0.len() * KV_TILE);
        let sc = _mm256_set1_ps(scale);
        for strip in 0..KV_TILE / 32 {
            let off = strip * 32;
            let mut a = [_mm256_setzero_ps(); 4];
            let mut b = [_mm256_setzero_ps(); 4];
            for d in 0..x0.len() {
                let v0 = _mm256_broadcast_ss(&x0[d]);
                let v1 = _mm256_broadcast_ss(&x1[d]);
                let base = yt.as_ptr().add(d * KV_TILE + off);
                for r in 0..4 {
                    let p = _mm256_loadu_ps(base.add(r * 8));
                    a[r] = _mm256_fmadd_ps(v0, p, a[r]);
                    b[r] = _mm256_fmadd_ps(v1, p, b[r]);
                }
            }
            for r in 0..4 {
                _mm256_storeu_ps(s0.as_mut_ptr().add(off + r * 8), _mm256_mul_ps(a[r], sc));
                _mm256_storeu_ps(s1.as_mut_ptr().add(off + r * 8), _mm256_mul_ps(b[r], sc));
            }
        }
    }

    /// `acc[0..64] += sum_j w[j] * rows[(t0+j)*d_model + c0 ..][0..64]`,
    /// key rows in pairs, accumulator strips resident in registers.
    ///
    /// # Safety
    /// Requires AVX2+FMA; `acc` must be exactly 64 wide and every indexed
    /// row slice in bounds.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn accum_rows64(
        w: &[f32],
        rows: &[f32],
        t0: usize,
        tlen: usize,
        d_model: usize,
        c0: usize,
        acc: &mut [f32],
    ) {
        debug_assert_eq!(acc.len(), 64);
        debug_assert!((t0 + tlen).saturating_sub(1) * d_model + c0 + 64 <= rows.len() + 1);
        for strip in 0..2 {
            let off = strip * 32;
            let ap = acc.as_mut_ptr().add(off);
            let mut a = [
                _mm256_loadu_ps(ap),
                _mm256_loadu_ps(ap.add(8)),
                _mm256_loadu_ps(ap.add(16)),
                _mm256_loadu_ps(ap.add(24)),
            ];
            let mut j = 0;
            while j + 2 <= tlen {
                let w0 = _mm256_broadcast_ss(&w[j]);
                let w1 = _mm256_broadcast_ss(&w[j + 1]);
                let r0 = rows.as_ptr().add((t0 + j) * d_model + c0 + off);
                let r1 = rows.as_ptr().add((t0 + j + 1) * d_model + c0 + off);
                for r in 0..4 {
                    a[r] = _mm256_fmadd_ps(w0, _mm256_loadu_ps(r0.add(r * 8)), a[r]);
                    a[r] = _mm256_fmadd_ps(w1, _mm256_loadu_ps(r1.add(r * 8)), a[r]);
                }
                j += 2;
            }
            if j < tlen {
                let w0 = _mm256_broadcast_ss(&w[j]);
                let r0 = rows.as_ptr().add((t0 + j) * d_model + c0 + off);
                for r in 0..4 {
                    a[r] = _mm256_fmadd_ps(w0, _mm256_loadu_ps(r0.add(r * 8)), a[r]);
                }
            }
            for r in 0..4 {
                _mm256_storeu_ps(ap.add(r * 8), a[r]);
            }
        }
    }

    /// Online-softmax tile update over one full-width score row: returns
    /// the new running max and the tile's exp-rowsum, leaving
    /// `exp(s - max)` in place.
    ///
    /// # Safety
    /// Requires AVX2+FMA; `srow` must be at least `KV_TILE` wide.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn max_exp_sum_full(srow: &mut [f32], m_prev: f32) -> (f32, f32) {
        let p = srow.as_mut_ptr();
        let mut m = _mm256_set1_ps(m_prev);
        for c in 0..KV_TILE / 8 {
            m = _mm256_max_ps(m, _mm256_loadu_ps(p.add(c * 8)));
        }
        let mt = hmax(m);
        let mt8 = _mm256_set1_ps(mt);
        let mut s0 = _mm256_setzero_ps();
        let mut s1 = _mm256_setzero_ps();
        for c in 0..KV_TILE / 16 {
            let e0 = exp8(_mm256_sub_ps(_mm256_loadu_ps(p.add(c * 16)), mt8));
            let e1 = exp8(_mm256_sub_ps(_mm256_loadu_ps(p.add(c * 16 + 8)), mt8));
            _mm256_storeu_ps(p.add(c * 16), e0);
            _mm256_storeu_ps(p.add(c * 16 + 8), e1);
            s0 = _mm256_add_ps(s0, e0);
            s1 = _mm256_add_ps(s1, e1);
        }
        (mt, hsum(_mm256_add_ps(s0, s1)))
    }

    /// Backward combine over one full tile row, producing `ds` in place of
    /// the raw scores: `p = exp(s - lse)`, `ds = p * (dp - di) * scale`.
    ///
    /// # Safety
    /// Requires AVX2+FMA; both slices at least `KV_TILE` wide.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn combine_ds_full(sc: &mut [f32], dp: &[f32], lse_i: f32, di: f32, scale: f32) {
        let lse8 = _mm256_set1_ps(lse_i);
        let di8 = _mm256_set1_ps(di);
        let sc8 = _mm256_set1_ps(scale);
        for c in 0..KV_TILE / 8 {
            let p = exp8(_mm256_sub_ps(_mm256_loadu_ps(sc.as_ptr().add(c * 8)), lse8));
            let d = _mm256_sub_ps(_mm256_loadu_ps(dp.as_ptr().add(c * 8)), di8);
            _mm256_storeu_ps(
                sc.as_mut_ptr().add(c * 8),
                _mm256_mul_ps(_mm256_mul_ps(p, d), sc8),
            );
        }
    }

    /// Like [`combine_ds_full`] but also keeps `p`: `p` row holds raw
    /// scores on entry and `exp(s - lse)` on exit; `ds` row holds `dp` on
    /// entry and `p * (dp - di) * scale` on exit.
    ///
    /// # Safety
    /// Requires AVX2+FMA; both slices at least `KV_TILE` wide.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn combine_p_ds_full(
        p: &mut [f32],
        ds: &mut [f32],
        lse_i: f32,
        di: f32,
        scale: f32,
    ) {
        let lse8 = _mm256_set1_ps(lse_i);
        let di8 = _mm256_set1_ps(di);
        let sc8 = _mm256_set1_ps(scale);
        for c in 0..KV_TILE / 8 {
            let pe = exp8(_mm256_sub_ps(_mm256_loadu_ps(p.as_ptr().add(c * 8)), lse8));
            _mm256_storeu_ps(p.as_mut_ptr().add(c * 8), pe);
            let d = _mm256_sub_ps(_mm256_loadu_ps(ds.as_ptr().add(c * 8)), di8);
            _mm256_storeu_ps(
                ds.as_mut_ptr().add(c * 8),
                _mm256_mul_ps(_mm256_mul_ps(pe, d), sc8),
            );
        }
    }

    /// Sweep-B accumulation for `d_head == 64`:
    /// `dk[j] += sum_i ds[i][j] * q_i` and `dv[j] += sum_i p[i][j] * dO_i`
    /// over one query block, query rows in pairs, accumulator strips in
    /// registers.
    ///
    /// # Safety
    /// Requires AVX2+FMA; `dk_out`/`dv_out` at least `tlen * 64` wide and
    /// every indexed row of `qd`/`dyd` in bounds.
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn sweep_b_accum64(
        qd: &[f32],
        dyd: &[f32],
        d_model: usize,
        c0: usize,
        q0: usize,
        qlen: usize,
        tlen: usize,
        p_blk: &[f32],
        ds_blk: &[f32],
        dk_out: &mut [f32],
        dv_out: &mut [f32],
    ) {
        for (out, src, blk) in [(&mut *dk_out, qd, ds_blk), (&mut *dv_out, dyd, p_blk)] {
            for j in 0..tlen {
                for strip in 0..2 {
                    let off = strip * 32;
                    let op = out.as_mut_ptr().add(j * 64 + off);
                    let mut a = [
                        _mm256_loadu_ps(op),
                        _mm256_loadu_ps(op.add(8)),
                        _mm256_loadu_ps(op.add(16)),
                        _mm256_loadu_ps(op.add(24)),
                    ];
                    let mut i = 0;
                    while i + 2 <= qlen {
                        let w0 = _mm256_broadcast_ss(&blk[i * KV_TILE + j]);
                        let w1 = _mm256_broadcast_ss(&blk[(i + 1) * KV_TILE + j]);
                        let r0 = src.as_ptr().add((q0 + i) * d_model + c0 + off);
                        let r1 = src.as_ptr().add((q0 + i + 1) * d_model + c0 + off);
                        for r in 0..4 {
                            a[r] = _mm256_fmadd_ps(w0, _mm256_loadu_ps(r0.add(r * 8)), a[r]);
                            a[r] = _mm256_fmadd_ps(w1, _mm256_loadu_ps(r1.add(r * 8)), a[r]);
                        }
                        i += 2;
                    }
                    if i < qlen {
                        let w0 = _mm256_broadcast_ss(&blk[i * KV_TILE + j]);
                        let r0 = src.as_ptr().add((q0 + i) * d_model + c0 + off);
                        for r in 0..4 {
                            a[r] = _mm256_fmadd_ps(w0, _mm256_loadu_ps(r0.add(r * 8)), a[r]);
                        }
                    }
                    for r in 0..4 {
                        _mm256_storeu_ps(op.add(r * 8), a[r]);
                    }
                }
            }
        }
    }
}

/// Fallback for non-x86_64 targets: vector dispatch always refuses, every
/// call site keeps its scalar path.
///
/// # Safety
/// The stubs mirror the x86_64 signatures (so call sites compile
/// unchanged) but are unreachable: every caller gates on `ok()`, which is
/// always `false` here, so none of them can actually be invoked.
#[cfg(not(target_arch = "x86_64"))]
mod simd {
    pub fn ok() -> bool {
        false
    }
    /// # Safety
    /// Never called: `ok()` is always `false` on this target.
    pub unsafe fn scores2_full(
        _: &[f32],
        _: &[f32],
        _: &[f32],
        _: f32,
        _: &mut [f32],
        _: &mut [f32],
    ) {
        unreachable!()
    }
    /// # Safety
    /// Never called: `ok()` is always `false` on this target.
    pub unsafe fn accum_rows64(
        _: &[f32],
        _: &[f32],
        _: usize,
        _: usize,
        _: usize,
        _: usize,
        _: &mut [f32],
    ) {
        unreachable!()
    }
    /// # Safety
    /// Never called: `ok()` is always `false` on this target.
    pub unsafe fn max_exp_sum_full(_: &mut [f32], _: f32) -> (f32, f32) {
        unreachable!()
    }
    /// # Safety
    /// Never called: `ok()` is always `false` on this target.
    pub unsafe fn combine_ds_full(_: &mut [f32], _: &[f32], _: f32, _: f32, _: f32) {
        unreachable!()
    }
    /// # Safety
    /// Never called: `ok()` is always `false` on this target.
    pub unsafe fn combine_p_ds_full(_: &mut [f32], _: &mut [f32], _: f32, _: f32, _: f32) {
        unreachable!()
    }
    /// # Safety
    /// Never called: `ok()` is always `false` on this target.
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn sweep_b_accum64(
        _: &[f32],
        _: &[f32],
        _: usize,
        _: usize,
        _: usize,
        _: usize,
        _: usize,
        _: &[f32],
        _: &[f32],
        _: &mut [f32],
        _: &mut [f32],
    ) {
        unreachable!()
    }
}

/// Multi-head attention forward. `q`, `k`, `v` are `tokens x d_model`;
/// `d_model` must divide evenly into `heads`. Legacy entry point: `Auto`
/// path selection, f32 precision, the process-global workspace.
pub fn mha_forward(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    heads: usize,
    qk_norm: Option<&QkNorm>,
) -> (Tensor, MhaCache) {
    mha_forward_path(
        q,
        k,
        v,
        heads,
        qk_norm,
        Precision::F32,
        AttnPath::Auto,
        Workspace::global(),
    )
}

/// [`mha_forward`] with an explicit scratch arena (`Auto` path, f32).
pub fn mha_forward_ws(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    heads: usize,
    qk_norm: Option<&QkNorm>,
    ws: &Workspace,
) -> (Tensor, MhaCache) {
    mha_forward_path(q, k, v, heads, qk_norm, Precision::F32, AttnPath::Auto, ws)
}

/// Fully-parameterized attention forward: explicit precision, path, and
/// scratch arena. Under `BF16Mixed` the inputs are rounded to bf16 once at
/// entry (idempotent — already-rounded activations pass through unchanged)
/// and all internal arithmetic stays f32, on both paths.
#[allow(clippy::too_many_arguments)]
pub fn mha_forward_path(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    heads: usize,
    qk_norm: Option<&QkNorm>,
    prec: Precision,
    path: AttnPath,
    ws: &Workspace,
) -> (Tensor, MhaCache) {
    let (tokens, d_model) = q.shape();
    let kv_tokens = k.rows();
    assert_eq!(k.cols(), d_model, "k feature width must match q");
    assert_eq!(v.shape(), k.shape(), "v must match k row-for-row");
    assert_eq!(d_model % heads, 0, "heads must divide d_model");
    let d_head = d_model / heads;
    let scale = 1.0 / (d_head as f32).sqrt();

    let rounded;
    let (q, k, v) = match prec {
        Precision::F32 => (q, k, v),
        Precision::BF16Mixed => {
            rounded = (
                q.to_bf16_precision(),
                k.to_bf16_precision(),
                v.to_bf16_precision(),
            );
            (&rounded.0, &rounded.1, &rounded.2)
        }
    };

    match path.resolve(tokens, kv_tokens) {
        AttnPath::Reference => reference_forward(q, k, v, heads, d_head, scale, qk_norm),
        _ => fused_forward(q, k, v, heads, d_head, scale, qk_norm, ws),
    }
}

/// Backward of [`mha_forward`]. `qk_norm` must be the same parameters that
/// were passed to the forward call. Legacy entry point (global workspace).
pub fn mha_backward(cache: &MhaCache, qk_norm: Option<&QkNorm>, dy: &Tensor) -> MhaGrads {
    mha_backward_ws(cache, qk_norm, dy, Workspace::global())
}

/// [`mha_backward`] with an explicit scratch arena.
pub fn mha_backward_ws(
    cache: &MhaCache,
    qk_norm: Option<&QkNorm>,
    dy: &Tensor,
    ws: &Workspace,
) -> MhaGrads {
    assert_eq!(
        cache.qk_norm,
        qk_norm.is_some(),
        "qk_norm presence mismatch"
    );
    match &cache.state {
        CacheState::Reference(heads) => reference_backward(cache, heads, qk_norm, dy),
        CacheState::Fused(state) => fused_backward(cache, state, qk_norm, dy, ws),
    }
}

// ---------------------------------------------------------------------------
// Reference path
// ---------------------------------------------------------------------------

fn reference_forward(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    heads: usize,
    d_head: usize,
    scale: f32,
    qk_norm: Option<&QkNorm>,
) -> (Tensor, MhaCache) {
    let (tokens, d_model) = q.shape();
    let mut outs = Vec::with_capacity(heads);
    let mut caches = Vec::with_capacity(heads);
    for h in 0..heads {
        let c0 = h * d_head;
        let c1 = c0 + d_head;
        let q_raw = q.slice_cols(c0, c1);
        let k_raw = k.slice_cols(c0, c1);
        let v_h = v.slice_cols(c0, c1);
        let (q_h, ln_q, k_h, ln_k) = match qk_norm {
            Some(n) => {
                let (qn, cq) = layernorm(&q_raw, &n.gamma_q, &n.beta_q);
                let (kn, ck) = layernorm(&k_raw, &n.gamma_k, &n.beta_k);
                (qn, Some(cq), kn, Some(ck))
            }
            None => (q_raw, None, k_raw, None),
        };
        let mut scores = matmul_nt(&q_h, &k_h);
        scores.scale(scale);
        let probs = softmax_rows(&scores);
        let o_h = matmul(&probs, &v_h);
        outs.push(o_h);
        caches.push(RefHead {
            q: q_h,
            k: k_h,
            v: v_h,
            probs,
            ln_q,
            ln_k,
        });
    }
    let out = Tensor::concat_cols(&outs.iter().collect::<Vec<_>>());
    debug_assert_eq!(out.shape(), (tokens, d_model));
    (
        out,
        MhaCache {
            state: CacheState::Reference(caches),
            d_head,
            heads,
            qk_norm: qk_norm.is_some(),
        },
    )
}

fn reference_backward(
    cache: &MhaCache,
    heads: &[RefHead],
    qk_norm: Option<&QkNorm>,
    dy: &Tensor,
) -> MhaGrads {
    let d_head = cache.d_head;
    let scale = 1.0 / (d_head as f32).sqrt();
    let tokens = dy.rows();
    let kv_tokens = heads[0].k.rows();

    let mut dq = Tensor::zeros(tokens, cache.heads * d_head);
    let mut dk = Tensor::zeros(kv_tokens, cache.heads * d_head);
    let mut dv = Tensor::zeros(kv_tokens, cache.heads * d_head);
    let mut dnorm = qk_norm.map(|_| {
        (
            Tensor::zeros(1, d_head),
            Tensor::zeros(1, d_head),
            Tensor::zeros(1, d_head),
            Tensor::zeros(1, d_head),
        )
    });

    for (h, hc) in heads.iter().enumerate() {
        let c0 = h * d_head;
        let d_oh = dy.slice_cols(c0, c0 + d_head);
        // o = probs @ v
        let d_probs = matmul_nt(&d_oh, &hc.v);
        let d_vh = matmul_tn(&hc.probs, &d_oh);
        // probs = softmax(scores), scores = scale * q k^T
        let mut d_scores = softmax_rows_backward(&hc.probs, &d_probs);
        d_scores.scale(scale);
        let d_qh_n = matmul(&d_scores, &hc.k);
        let d_kh_n = matmul_tn(&d_scores, &hc.q);

        let (d_qh, d_kh) = match (qk_norm, &hc.ln_q, &hc.ln_k) {
            (Some(n), Some(cq), Some(ck)) => {
                let gq = layernorm_backward(cq, &n.gamma_q, &d_qh_n);
                let gk = layernorm_backward(ck, &n.gamma_k, &d_kh_n);
                let acc = dnorm.as_mut().expect("dnorm allocated when qk_norm set");
                acc.0.add_assign(&gq.dgamma);
                acc.1.add_assign(&gq.dbeta);
                acc.2.add_assign(&gk.dgamma);
                acc.3.add_assign(&gk.dbeta);
                (gq.dx, gk.dx)
            }
            _ => (d_qh_n, d_kh_n),
        };
        // Scatter head grads back to the full-width tensors.
        for r in 0..tokens {
            dq.row_mut(r)[c0..c0 + d_head].copy_from_slice(d_qh.row(r));
        }
        for r in 0..kv_tokens {
            dk.row_mut(r)[c0..c0 + d_head].copy_from_slice(d_kh.row(r));
            dv.row_mut(r)[c0..c0 + d_head].copy_from_slice(d_vh.row(r));
        }
    }
    MhaGrads {
        dq,
        dk,
        dv,
        dqk_norm: dnorm,
    }
}

// ---------------------------------------------------------------------------
// Fused path
// ---------------------------------------------------------------------------

/// Normalize Q/K per head when QK-norm is on, returning full-width tensors
/// in head-column layout plus the per-head layernorm caches.
fn normalize_heads(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    heads: usize,
    d_head: usize,
) -> (Tensor, Vec<LayerNormCache>) {
    let mut parts = Vec::with_capacity(heads);
    let mut caches = Vec::with_capacity(heads);
    for h in 0..heads {
        let raw = x.slice_cols(h * d_head, (h + 1) * d_head);
        let (n, c) = layernorm(&raw, gamma, beta);
        parts.push(n);
        caches.push(c);
    }
    (
        Tensor::concat_cols(&parts.iter().collect::<Vec<_>>()),
        caches,
    )
}

#[allow(clippy::too_many_arguments)]
fn fused_forward(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    heads: usize,
    d_head: usize,
    scale: f32,
    qk_norm: Option<&QkNorm>,
    ws: &Workspace,
) -> (Tensor, MhaCache) {
    let (tokens, d_model) = q.shape();
    let kv_tokens = k.rows();

    let (qn, ln_q, kn, ln_k) = match qk_norm {
        Some(n) => {
            let (qn, cq) = normalize_heads(q, &n.gamma_q, &n.beta_q, heads, d_head);
            let (kn, ck) = normalize_heads(k, &n.gamma_k, &n.beta_k, heads, d_head);
            (qn, Some(cq), kn, Some(ck))
        }
        None => (q.clone(), None, k.clone(), None),
    };

    let qblocks = tokens.div_ceil(QUERY_BLOCK);
    let tiles = kv_tokens.div_ceil(KV_TILE);
    let tasks = heads * qblocks;
    let panel = KV_TILE * d_head;

    let qd = qn.data();
    let kd = kn.data();
    let vd = v.data();

    // Pre-pack every head's K into transposed tile panels once, shared
    // read-only by all query-block tasks (a per-task pack would redo this
    // `qblocks` times). `take` hands back zeroed storage, so the tail of a
    // partial last tile stays zero-padded.
    let mut kt_all = ws.take(heads * tiles * panel);
    kt_all
        .par_chunks_mut(tiles * panel)
        .enumerate()
        .for_each(|(h, head_panels)| {
            for (t, dst) in head_panels.chunks_mut(panel).enumerate() {
                let t0 = t * KV_TILE;
                let tlen = KV_TILE.min(kv_tokens - t0);
                pack_tile_t(kd, t0, tlen, d_model, h * d_head, d_head, dst);
            }
        });
    // Per-task slot: the output accumulator block plus one lse per row.
    let slot = QUERY_BLOCK * (d_head + 1);
    let mut buf = ws.take(tasks * slot);
    // One CPUID probe up front; the flag is a pure function of the host,
    // so every task (and every run on this machine) takes the same path.
    let use_simd = simd::ok();

    buf.par_chunks_mut(slot)
        .enumerate()
        .for_each(|(task, out)| {
            let h = task / qblocks;
            let qb = task % qblocks;
            let c0 = h * d_head;
            let q0 = qb * QUERY_BLOCK;
            let qlen = QUERY_BLOCK.min(tokens - q0);
            let (acc, lse_out) = out.split_at_mut(QUERY_BLOCK * d_head);
            let mut m = [f32::NEG_INFINITY; QUERY_BLOCK];
            let mut l = [0.0f32; QUERY_BLOCK];
            let mut s = [0.0f32; QUERY_BLOCK * KV_TILE];

            for tile in 0..tiles {
                let t0 = tile * KV_TILE;
                let tlen = KV_TILE.min(kv_tokens - t0);
                let kt = &kt_all[(h * tiles + tile) * panel..(h * tiles + tile + 1) * panel];
                // Scores for this tile (s[i][j] = scale * <q_i, k_j>),
                // query rows in pairs so each packed panel row is loaded
                // once for two accumulator chains.
                let qrow =
                    |i: usize| &qd[(q0 + i) * d_model + c0..(q0 + i) * d_model + c0 + d_head];
                let mut i = 0;
                while i + 2 <= qlen {
                    let (s0, s1) = s[i * KV_TILE..].split_at_mut(KV_TILE);
                    if use_simd && tlen == KV_TILE {
                        // SAFETY: `use_simd` proved AVX2+FMA; panel is
                        // full-width and both score rows are KV_TILE wide.
                        unsafe { simd::scores2_full(qrow(i), qrow(i + 1), kt, scale, s0, s1) };
                    } else {
                        scores2_from_packed(qrow(i), qrow(i + 1), kt, tlen, scale, s0, s1);
                    }
                    i += 2;
                }
                if i < qlen {
                    scores_from_packed(qrow(i), kt, tlen, scale, &mut s[i * KV_TILE..]);
                }
                // Online softmax: rescale running state to the new max,
                // exponentiate the tile, and fold in p @ v_tile. Max and
                // rowsum run as 4-lane passes (max is exact under any
                // association; the sum's lane order is fixed) and the exp
                // map has no loop-carried state, so all three vectorize.
                for i in 0..qlen {
                    let srow = &mut s[i * KV_TILE..i * KV_TILE + tlen];
                    let (mt, rowsum) = if use_simd && tlen == KV_TILE {
                        // SAFETY: `use_simd` proved AVX2+FMA and the row is
                        // full-width.
                        unsafe { simd::max_exp_sum_full(srow, m[i]) }
                    } else {
                        let mt = lanes_max(srow, m[i]);
                        for x in srow.iter_mut() {
                            *x = fast_exp(*x - mt);
                        }
                        (mt, lanes_sum(srow))
                    };
                    let alpha = if m[i] == f32::NEG_INFINITY {
                        0.0
                    } else {
                        fast_exp(m[i] - mt)
                    };
                    l[i] = alpha * l[i] + rowsum;
                    m[i] = mt;
                    let accrow = &mut acc[i * d_head..(i + 1) * d_head];
                    if alpha != 1.0 {
                        for a in accrow.iter_mut() {
                            *a *= alpha;
                        }
                    }
                    if use_simd && d_head == 64 {
                        // SAFETY: `use_simd` proved AVX2+FMA; accrow is
                        // exactly 64 wide and the indexed V rows are in
                        // bounds.
                        unsafe { simd::accum_rows64(srow, vd, t0, tlen, d_model, c0, accrow) };
                    } else {
                        accumulate_weighted_rows(srow, vd, t0, tlen, d_model, c0, accrow);
                    }
                }
            }
            for i in 0..qlen {
                let inv = 1.0 / l[i];
                for a in acc[i * d_head..(i + 1) * d_head].iter_mut() {
                    *a *= inv;
                }
                lse_out[i] = m[i] + l[i].ln();
            }
        });

    // Demux the per-task slots into the output tensor and lse table.
    let mut o = Tensor::zeros(tokens, d_model);
    let mut lse = vec![0.0f32; heads * tokens];
    {
        let od = o.data_mut();
        for task in 0..tasks {
            let h = task / qblocks;
            let qb = task % qblocks;
            let c0 = h * d_head;
            let q0 = qb * QUERY_BLOCK;
            let qlen = QUERY_BLOCK.min(tokens - q0);
            let slot_data = &buf[task * slot..(task + 1) * slot];
            let (acc, rest) = slot_data.split_at(QUERY_BLOCK * d_head);
            let lse_out = &rest[..QUERY_BLOCK];
            for i in 0..qlen {
                od[(q0 + i) * d_model + c0..(q0 + i) * d_model + c0 + d_head]
                    .copy_from_slice(&acc[i * d_head..(i + 1) * d_head]);
                lse[h * tokens + q0 + i] = lse_out[i];
            }
        }
    }
    ws.put(buf);
    ws.put(kt_all);

    (
        o.clone(),
        MhaCache {
            state: CacheState::Fused(Box::new(FusedState {
                q: qn,
                k: kn,
                v: v.clone(),
                o,
                lse,
                ln_q,
                ln_k,
            })),
            d_head,
            heads,
            qk_norm: qk_norm.is_some(),
        },
    )
}

fn fused_backward(
    cache: &MhaCache,
    state: &FusedState,
    qk_norm: Option<&QkNorm>,
    dy: &Tensor,
    ws: &Workspace,
) -> MhaGrads {
    let d_head = cache.d_head;
    let heads = cache.heads;
    let scale = 1.0 / (d_head as f32).sqrt();
    let (tokens, d_model) = state.q.shape();
    let kv_tokens = state.k.rows();
    assert_eq!(dy.shape(), (tokens, d_model), "dy shape mismatch");

    let qd = state.q.data();
    let kd = state.k.data();
    let vd = state.v.data();
    let od = state.o.data();
    let dyd = dy.data();
    let lse = &state.lse;

    // D[h * tokens + i] = rowsum(dO_i . O_i) over head h's columns.
    let mut d_diag = ws.take(heads * tokens);
    for h in 0..heads {
        let c0 = h * d_head;
        for i in 0..tokens {
            d_diag[h * tokens + i] = dot(
                &dyd[i * d_model + c0..i * d_model + c0 + d_head],
                &od[i * d_model + c0..i * d_model + c0 + d_head],
            );
        }
    }

    let qblocks = tokens.div_ceil(QUERY_BLOCK);
    let kvblocks = kv_tokens.div_ceil(KV_TILE);
    let tiles = kvblocks;
    let panel = KV_TILE * d_head;
    // Same host-only dispatch flag as the forward.
    let use_simd = simd::ok();

    // Pre-pack every head's K and V into transposed tile panels once;
    // both sweeps read them (sweep A recomputes scores and dp against
    // them, sweep B additionally drives its dq-style accumulations).
    let mut kt_all = ws.take(heads * tiles * panel);
    let mut vt_all = ws.take(heads * tiles * panel);
    for (all, src) in [(&mut kt_all, kd), (&mut vt_all, vd)] {
        all.par_chunks_mut(tiles * panel)
            .enumerate()
            .for_each(|(h, head_panels)| {
                for (t, dst) in head_panels.chunks_mut(panel).enumerate() {
                    let t0 = t * KV_TILE;
                    let tlen = KV_TILE.min(kv_tokens - t0);
                    pack_tile_t(src, t0, tlen, d_model, h * d_head, d_head, dst);
                }
            });
    }

    // Sweep A: each task owns one (head, query-block) dq slot and loops KV
    // tiles serially in ascending order.
    let dq_slot = QUERY_BLOCK * d_head;
    let mut dq_buf = ws.take(heads * qblocks * dq_slot);
    dq_buf
        .par_chunks_mut(dq_slot)
        .enumerate()
        .for_each(|(task, dq_out)| {
            let h = task / qblocks;
            let qb = task % qblocks;
            let c0 = h * d_head;
            let q0 = qb * QUERY_BLOCK;
            let qlen = QUERY_BLOCK.min(tokens - q0);
            let mut sc = [0.0f32; 2 * KV_TILE];
            let mut dp = [0.0f32; 2 * KV_TILE];
            let qrow = |i: usize| &qd[i * d_model + c0..i * d_model + c0 + d_head];
            let dorow = |i: usize| &dyd[i * d_model + c0..i * d_model + c0 + d_head];
            for tile in 0..tiles {
                let t0 = tile * KV_TILE;
                let tlen = KV_TILE.min(kv_tokens - t0);
                let kt = &kt_all[(h * tiles + tile) * panel..(h * tiles + tile + 1) * panel];
                let vt = &vt_all[(h * tiles + tile) * panel..(h * tiles + tile + 1) * panel];
                // p = exp(score - lse); dp = <dO_i, v_j>;
                // ds = p * (dp - D_i) * scale; dq_i += ds_row @ K_tile.
                // Query rows go in pairs so each panel row load feeds two
                // accumulator chains; the remainder row goes alone.
                let mut i = 0;
                while i < qlen {
                    let pair = i + 2 <= qlen;
                    if pair {
                        let (sc0, sc1) = sc.split_at_mut(KV_TILE);
                        let (dp0, dp1) = dp.split_at_mut(KV_TILE);
                        if use_simd && tlen == KV_TILE {
                            // SAFETY: `use_simd` proved AVX2+FMA; panels and
                            // rows are full-width.
                            unsafe {
                                simd::scores2_full(
                                    qrow(q0 + i),
                                    qrow(q0 + i + 1),
                                    kt,
                                    scale,
                                    sc0,
                                    sc1,
                                );
                                simd::scores2_full(
                                    dorow(q0 + i),
                                    dorow(q0 + i + 1),
                                    vt,
                                    1.0,
                                    dp0,
                                    dp1,
                                );
                            }
                        } else {
                            scores2_from_packed(
                                qrow(q0 + i),
                                qrow(q0 + i + 1),
                                kt,
                                tlen,
                                scale,
                                sc0,
                                sc1,
                            );
                            scores2_from_packed(
                                dorow(q0 + i),
                                dorow(q0 + i + 1),
                                vt,
                                tlen,
                                1.0,
                                dp0,
                                dp1,
                            );
                        }
                    } else {
                        scores_from_packed(qrow(q0 + i), kt, tlen, scale, &mut sc);
                        scores_from_packed(dorow(q0 + i), vt, tlen, 1.0, &mut dp);
                    }
                    let rows = if pair { 2 } else { 1 };
                    for r in 0..rows {
                        let row = q0 + i + r;
                        let lse_i = lse[h * tokens + row];
                        let di = d_diag[h * tokens + row];
                        let ds = &mut sc[r * KV_TILE..r * KV_TILE + tlen];
                        let dpr = &dp[r * KV_TILE..r * KV_TILE + tlen];
                        if use_simd && tlen == KV_TILE {
                            // SAFETY: `use_simd` proved AVX2+FMA and both
                            // rows are full-width.
                            unsafe { simd::combine_ds_full(ds, dpr, lse_i, di, scale) };
                        } else {
                            for (x, &dpj) in ds.iter_mut().zip(dpr) {
                                let p = fast_exp(*x - lse_i);
                                *x = p * (dpj - di) * scale;
                            }
                        }
                        // dq_i += ds_row @ K_tile as 4-blocked weighted row
                        // accumulation over the original K rows (same
                        // kernel shape as the forward's p @ V fold).
                        let dqrow = &mut dq_out[(i + r) * d_head..(i + r + 1) * d_head];
                        if use_simd && d_head == 64 {
                            // SAFETY: `use_simd` proved AVX2+FMA; dqrow is
                            // exactly 64 wide and the K rows are in bounds.
                            unsafe { simd::accum_rows64(ds, kd, t0, tlen, d_model, c0, dqrow) };
                        } else {
                            accumulate_weighted_rows(ds, kd, t0, tlen, d_model, c0, dqrow);
                        }
                    }
                    i += rows;
                }
            }
        });

    // Sweep B: each task owns one (head, kv-tile) [dk | dv] slot and loops
    // query blocks serially in ascending order, reading the shared packed
    // panels for its tile.
    let dkv_slot = KV_TILE * 2 * d_head;
    let mut dkv_buf = ws.take(heads * kvblocks * dkv_slot);
    dkv_buf
        .par_chunks_mut(dkv_slot)
        .enumerate()
        .for_each(|(task, out)| {
            let h = task / kvblocks;
            let kvb = task % kvblocks;
            let c0 = h * d_head;
            let t0 = kvb * KV_TILE;
            let tlen = KV_TILE.min(kv_tokens - t0);
            let (dk_out, dv_out) = out.split_at_mut(KV_TILE * d_head);
            let kt = &kt_all[(h * tiles + kvb) * panel..(h * tiles + kvb + 1) * panel];
            let vt = &vt_all[(h * tiles + kvb) * panel..(h * tiles + kvb + 1) * panel];
            let mut p_blk = [0.0f32; QUERY_BLOCK * KV_TILE];
            let mut ds_blk = [0.0f32; QUERY_BLOCK * KV_TILE];
            let qrow = |i: usize| &qd[i * d_model + c0..i * d_model + c0 + d_head];
            let dorow = |i: usize| &dyd[i * d_model + c0..i * d_model + c0 + d_head];
            let mut q0 = 0;
            while q0 < tokens {
                let qlen = QUERY_BLOCK.min(tokens - q0);
                let mut i = 0;
                while i + 2 <= qlen {
                    let (p0, p1) = p_blk[i * KV_TILE..].split_at_mut(KV_TILE);
                    let (d0, d1) = ds_blk[i * KV_TILE..].split_at_mut(KV_TILE);
                    if use_simd && tlen == KV_TILE {
                        // SAFETY: `use_simd` proved AVX2+FMA; panels and
                        // rows are full-width.
                        unsafe {
                            simd::scores2_full(qrow(q0 + i), qrow(q0 + i + 1), kt, scale, p0, p1);
                            simd::scores2_full(dorow(q0 + i), dorow(q0 + i + 1), vt, 1.0, d0, d1);
                        }
                    } else {
                        scores2_from_packed(
                            qrow(q0 + i),
                            qrow(q0 + i + 1),
                            kt,
                            tlen,
                            scale,
                            p0,
                            p1,
                        );
                        scores2_from_packed(
                            dorow(q0 + i),
                            dorow(q0 + i + 1),
                            vt,
                            tlen,
                            1.0,
                            d0,
                            d1,
                        );
                    }
                    i += 2;
                }
                if i < qlen {
                    scores_from_packed(qrow(q0 + i), kt, tlen, scale, &mut p_blk[i * KV_TILE..]);
                    scores_from_packed(dorow(q0 + i), vt, tlen, 1.0, &mut ds_blk[i * KV_TILE..]);
                }
                for i in 0..qlen {
                    let row = q0 + i;
                    let lse_i = lse[h * tokens + row];
                    let di = d_diag[h * tokens + row];
                    let prow = &mut p_blk[i * KV_TILE..i * KV_TILE + tlen];
                    let dsrow = &mut ds_blk[i * KV_TILE..i * KV_TILE + tlen];
                    if use_simd && tlen == KV_TILE {
                        // SAFETY: `use_simd` proved AVX2+FMA and both rows
                        // are full-width.
                        unsafe { simd::combine_p_ds_full(prow, dsrow, lse_i, di, scale) };
                    } else {
                        for (p, ds) in prow.iter_mut().zip(dsrow.iter_mut()) {
                            *p = fast_exp(*p - lse_i);
                            *ds = *p * (*ds - di) * scale;
                        }
                    }
                }
                if use_simd && d_head == 64 {
                    // SAFETY: `use_simd` proved AVX2+FMA; d_head is 64 so
                    // every indexed Q/dO row slice and the 64-wide dk/dv
                    // rows are in bounds.
                    unsafe {
                        simd::sweep_b_accum64(
                            qd, dyd, d_model, c0, q0, qlen, tlen, &p_blk, &ds_blk, dk_out, dv_out,
                        )
                    };
                    q0 += QUERY_BLOCK;
                    continue;
                }
                // dk_j += ds^T @ Q_block, dv_j += p^T @ dO_block: query rows
                // blocked by 4 (fixed ascending group order), remainder rows
                // one at a time.
                let mut i = 0;
                while i + 4 <= qlen {
                    let (q0r, q1r, q2r, q3r) = (
                        qrow(q0 + i),
                        qrow(q0 + i + 1),
                        qrow(q0 + i + 2),
                        qrow(q0 + i + 3),
                    );
                    let (o0r, o1r, o2r, o3r) = (
                        dorow(q0 + i),
                        dorow(q0 + i + 1),
                        dorow(q0 + i + 2),
                        dorow(q0 + i + 3),
                    );
                    for j in 0..tlen {
                        let dkrow = &mut dk_out[j * d_head..(j + 1) * d_head];
                        let (a, b, c, e) = (
                            ds_blk[i * KV_TILE + j],
                            ds_blk[(i + 1) * KV_TILE + j],
                            ds_blk[(i + 2) * KV_TILE + j],
                            ds_blk[(i + 3) * KV_TILE + j],
                        );
                        for d in 0..d_head {
                            dkrow[d] += a * q0r[d] + b * q1r[d] + c * q2r[d] + e * q3r[d];
                        }
                        let dvrow = &mut dv_out[j * d_head..(j + 1) * d_head];
                        let (a, b, c, e) = (
                            p_blk[i * KV_TILE + j],
                            p_blk[(i + 1) * KV_TILE + j],
                            p_blk[(i + 2) * KV_TILE + j],
                            p_blk[(i + 3) * KV_TILE + j],
                        );
                        for d in 0..d_head {
                            dvrow[d] += a * o0r[d] + b * o1r[d] + c * o2r[d] + e * o3r[d];
                        }
                    }
                    i += 4;
                }
                while i < qlen {
                    let (qr, or) = (qrow(q0 + i), dorow(q0 + i));
                    for j in 0..tlen {
                        let ds = ds_blk[i * KV_TILE + j];
                        let p = p_blk[i * KV_TILE + j];
                        let dkrow = &mut dk_out[j * d_head..(j + 1) * d_head];
                        for (g, &qq) in dkrow.iter_mut().zip(qr) {
                            *g += ds * qq;
                        }
                        let dvrow = &mut dv_out[j * d_head..(j + 1) * d_head];
                        for (g, &dd) in dvrow.iter_mut().zip(or) {
                            *g += p * dd;
                        }
                    }
                    i += 1;
                }
                q0 += QUERY_BLOCK;
            }
        });

    // Demux into full-width gradient tensors.
    let mut dq = Tensor::zeros(tokens, d_model);
    let mut dk = Tensor::zeros(kv_tokens, d_model);
    let mut dv = Tensor::zeros(kv_tokens, d_model);
    {
        let dqd = dq.data_mut();
        for task in 0..heads * qblocks {
            let h = task / qblocks;
            let qb = task % qblocks;
            let c0 = h * d_head;
            let q0 = qb * QUERY_BLOCK;
            let qlen = QUERY_BLOCK.min(tokens - q0);
            let slot_data = &dq_buf[task * dq_slot..(task + 1) * dq_slot];
            for i in 0..qlen {
                dqd[(q0 + i) * d_model + c0..(q0 + i) * d_model + c0 + d_head]
                    .copy_from_slice(&slot_data[i * d_head..(i + 1) * d_head]);
            }
        }
        let dkd = dk.data_mut();
        let dvd = dv.data_mut();
        for task in 0..heads * kvblocks {
            let h = task / kvblocks;
            let kvb = task % kvblocks;
            let c0 = h * d_head;
            let t0 = kvb * KV_TILE;
            let tlen = KV_TILE.min(kv_tokens - t0);
            let slot_data = &dkv_buf[task * dkv_slot..(task + 1) * dkv_slot];
            let (dk_s, dv_s) = slot_data.split_at(KV_TILE * d_head);
            for j in 0..tlen {
                dkd[(t0 + j) * d_model + c0..(t0 + j) * d_model + c0 + d_head]
                    .copy_from_slice(&dk_s[j * d_head..(j + 1) * d_head]);
                dvd[(t0 + j) * d_model + c0..(t0 + j) * d_model + c0 + d_head]
                    .copy_from_slice(&dv_s[j * d_head..(j + 1) * d_head]);
            }
        }
    }
    ws.put(dq_buf);
    ws.put(dkv_buf);
    ws.put(d_diag);
    ws.put(kt_all);
    ws.put(vt_all);

    // Route dq/dk through the QK layernorm backward when norm was applied.
    let dnorm = match (qk_norm, &state.ln_q, &state.ln_k) {
        (Some(n), Some(cqs), Some(cks)) => {
            let mut acc = (
                Tensor::zeros(1, d_head),
                Tensor::zeros(1, d_head),
                Tensor::zeros(1, d_head),
                Tensor::zeros(1, d_head),
            );
            let mut dq_raw = Tensor::zeros(tokens, d_model);
            let mut dk_raw = Tensor::zeros(kv_tokens, d_model);
            for h in 0..heads {
                let c0 = h * d_head;
                let gq = layernorm_backward(&cqs[h], &n.gamma_q, &dq.slice_cols(c0, c0 + d_head));
                let gk = layernorm_backward(&cks[h], &n.gamma_k, &dk.slice_cols(c0, c0 + d_head));
                acc.0.add_assign(&gq.dgamma);
                acc.1.add_assign(&gq.dbeta);
                acc.2.add_assign(&gk.dgamma);
                acc.3.add_assign(&gk.dbeta);
                for r in 0..tokens {
                    dq_raw.row_mut(r)[c0..c0 + d_head].copy_from_slice(gq.dx.row(r));
                }
                for r in 0..kv_tokens {
                    dk_raw.row_mut(r)[c0..c0 + d_head].copy_from_slice(gk.dx.row(r));
                }
            }
            dq = dq_raw;
            dk = dk_raw;
            Some(acc)
        }
        _ => None,
    };

    MhaGrads {
        dq,
        dk,
        dv,
        dqk_norm: dnorm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Rng;
    use crate::kernels::fd::{assert_grad_close, numerical_grad};

    fn loss(
        q: &Tensor,
        k: &Tensor,
        v: &Tensor,
        heads: usize,
        norm: Option<&QkNorm>,
        m: &Tensor,
    ) -> f32 {
        mha_forward(q, k, v, heads, norm).0.hadamard(m).sum()
    }

    #[test]
    fn shapes_and_determinism() {
        let mut rng = Rng::seed(61);
        let q = rng.normal_tensor(6, 8, 1.0);
        let k = rng.normal_tensor(6, 8, 1.0);
        let v = rng.normal_tensor(6, 8, 1.0);
        let (y1, _) = mha_forward(&q, &k, &v, 2, None);
        let (y2, _) = mha_forward(&q, &k, &v, 2, None);
        assert_eq!(y1.shape(), (6, 8));
        assert_eq!(y1, y2);
    }

    #[test]
    fn auto_picks_reference_below_and_fused_above_threshold() {
        let mut rng = Rng::seed(62);
        let small = rng.normal_tensor(6, 8, 1.0);
        let (_, cache) = mha_forward(&small, &small, &small, 2, None);
        assert_eq!(cache.path(), AttnPath::Reference);
        let big = rng.normal_tensor(128, 8, 1.0);
        let (_, cache) = mha_forward(&big, &big, &big, 2, None);
        assert_eq!(cache.path(), AttnPath::Fused);
    }

    #[test]
    fn single_head_uniform_attention_averages_values() {
        // With q=0 all scores are equal, so output = mean of value rows.
        let q = Tensor::zeros(2, 4);
        let mut rng = Rng::seed(63);
        let k = rng.normal_tensor(3, 4, 1.0);
        let v = rng.normal_tensor(3, 4, 1.0);
        let (y, _) = mha_forward(&q, &k, &v, 1, None);
        let mut mean = Tensor::zeros(1, 4);
        for r in 0..3 {
            for c in 0..4 {
                mean.set(0, c, mean.get(0, c) + v.get(r, c) / 3.0);
            }
        }
        for r in 0..2 {
            for c in 0..4 {
                assert!((y.get(r, c) - mean.get(0, c)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn grads_match_fd_no_norm() {
        let mut rng = Rng::seed(67);
        let q = rng.normal_tensor(4, 6, 0.7);
        let k = rng.normal_tensor(4, 6, 0.7);
        let v = rng.normal_tensor(4, 6, 0.7);
        let m = rng.normal_tensor(4, 6, 1.0);
        let (_, cache) = mha_forward(&q, &k, &v, 2, None);
        let g = mha_backward(&cache, None, &m);
        assert_grad_close(
            &g.dq,
            &numerical_grad(&q, |q_| loss(q_, &k, &v, 2, None, &m), 1e-3),
            3e-2,
        );
        assert_grad_close(
            &g.dk,
            &numerical_grad(&k, |k_| loss(&q, k_, &v, 2, None, &m), 1e-3),
            3e-2,
        );
        assert_grad_close(
            &g.dv,
            &numerical_grad(&v, |v_| loss(&q, &k, v_, 2, None, &m), 1e-3),
            3e-2,
        );
        assert!(g.dqk_norm.is_none());
    }

    #[test]
    fn grads_match_fd_with_qk_norm() {
        let mut rng = Rng::seed(71);
        let q = rng.normal_tensor(3, 4, 0.8);
        let k = rng.normal_tensor(3, 4, 0.8);
        let v = rng.normal_tensor(3, 4, 0.8);
        let m = rng.normal_tensor(3, 4, 1.0);
        let mut norm = QkNorm::identity(2);
        norm.gamma_q = rng.normal_tensor(1, 2, 0.2).add(&Tensor::full(1, 2, 1.0));
        norm.gamma_k = rng.normal_tensor(1, 2, 0.2).add(&Tensor::full(1, 2, 1.0));
        let (_, cache) = mha_forward(&q, &k, &v, 2, Some(&norm));
        let g = mha_backward(&cache, Some(&norm), &m);
        let n = Some(&norm);
        assert_grad_close(
            &g.dq,
            &numerical_grad(&q, |q_| loss(q_, &k, &v, 2, n, &m), 1e-3),
            4e-2,
        );
        assert_grad_close(
            &g.dk,
            &numerical_grad(&k, |k_| loss(&q, k_, &v, 2, n, &m), 1e-3),
            4e-2,
        );
        assert_grad_close(
            &g.dv,
            &numerical_grad(&v, |v_| loss(&q, &k, v_, 2, n, &m), 1e-3),
            4e-2,
        );
        let (dgq, dbq, _dgk, _dbk) = g.dqk_norm.expect("norm grads present");
        let ngq = numerical_grad(
            &norm.gamma_q,
            |g_| {
                let mut n2 = norm.clone();
                n2.gamma_q = g_.clone();
                loss(&q, &k, &v, 2, Some(&n2), &m)
            },
            1e-3,
        );
        assert_grad_close(&dgq, &ngq, 4e-2);
        let nbq = numerical_grad(
            &norm.beta_q,
            |b_| {
                let mut n2 = norm.clone();
                n2.beta_q = b_.clone();
                loss(&q, &k, &v, 2, Some(&n2), &m)
            },
            1e-3,
        );
        assert_grad_close(&dbq, &nbq, 4e-2);
    }

    #[test]
    fn cross_attention_supports_different_kv_length() {
        // Query length 1, kv length 5 — the ClimaX variable-aggregation
        // pattern (one learnable query pooling C channel embeddings).
        let mut rng = Rng::seed(73);
        let q = rng.normal_tensor(1, 8, 1.0);
        let k = rng.normal_tensor(5, 8, 1.0);
        let v = rng.normal_tensor(5, 8, 1.0);
        let (y, cache) = mha_forward(&q, &k, &v, 2, None);
        assert_eq!(y.shape(), (1, 8));
        let g = mha_backward(&cache, None, &Tensor::full(1, 8, 1.0));
        assert_eq!(g.dq.shape(), (1, 8));
        assert_eq!(g.dk.shape(), (5, 8));
        assert_eq!(g.dv.shape(), (5, 8));
    }

    #[test]
    fn heads_partition_matches_manual_two_head() {
        // Running 2-head attention equals running each half separately.
        let mut rng = Rng::seed(79);
        let q = rng.normal_tensor(4, 8, 1.0);
        let k = rng.normal_tensor(4, 8, 1.0);
        let v = rng.normal_tensor(4, 8, 1.0);
        let (y, _) = mha_forward(&q, &k, &v, 2, None);
        for h in 0..2 {
            let (c0, c1) = (h * 4, h * 4 + 4);
            let (yh, _) = mha_forward(
                &q.slice_cols(c0, c1),
                &k.slice_cols(c0, c1),
                &v.slice_cols(c0, c1),
                1,
                None,
            );
            assert!(y.slice_cols(c0, c1).allclose(&yh, 1e-5, 1e-6), "head {h}");
        }
    }

    #[test]
    fn fast_exp_matches_libm_within_tolerance() {
        let mut worst = 0.0f32;
        let mut x = -80.0f32;
        while x < 20.0 {
            let approx = fast_exp(x);
            let exact = x.exp();
            let rel = if exact > 0.0 {
                ((approx - exact) / exact).abs()
            } else {
                approx.abs()
            };
            if rel > worst {
                worst = rel;
            }
            x += 0.0137;
        }
        assert!(worst < 1e-5, "fast_exp worst relative error {worst}");
        assert_eq!(fast_exp(0.0), 1.0);
        assert!(fast_exp(-200.0) >= 0.0 && fast_exp(-200.0) < 1e-30);
    }

    /// The fused forward must agree with the reference forward on shapes
    /// both above and below the Auto threshold (forced via explicit path).
    #[test]
    fn fused_matches_reference_forward_and_backward() {
        let ws = Workspace::new();
        // The last shape has full 64-wide KV tiles and d_head == 64, so on
        // AVX2 hosts it runs every vector micro-kernel (scores, softmax,
        // PV / dq / dk / dv accumulation); elsewhere the same shape takes
        // the scalar fallbacks.
        for &(t, kv, heads, d_model) in &[
            (5usize, 7usize, 1usize, 4usize),
            (33, 65, 2, 8),
            (70, 70, 4, 16),
            (96, 128, 2, 128),
        ] {
            let mut rng = Rng::seed(91 + t as u64);
            let q = rng.normal_tensor(t, d_model, 0.9);
            let k = rng.normal_tensor(kv, d_model, 0.9);
            let v = rng.normal_tensor(kv, d_model, 0.9);
            let dy = rng.normal_tensor(t, d_model, 1.0);
            let (y_ref, c_ref) = mha_forward_path(
                &q,
                &k,
                &v,
                heads,
                None,
                Precision::F32,
                AttnPath::Reference,
                &ws,
            );
            let (y_fused, c_fused) = mha_forward_path(
                &q,
                &k,
                &v,
                heads,
                None,
                Precision::F32,
                AttnPath::Fused,
                &ws,
            );
            assert!(
                y_ref.allclose(&y_fused, 1e-4, 1e-5),
                "forward mismatch at t={t} kv={kv} heads={heads}"
            );
            let g_ref = mha_backward_ws(&c_ref, None, &dy, &ws);
            let g_fused = mha_backward_ws(&c_fused, None, &dy, &ws);
            assert!(g_ref.dq.allclose(&g_fused.dq, 1e-3, 1e-4), "dq t={t}");
            assert!(g_ref.dk.allclose(&g_fused.dk, 1e-3, 1e-4), "dk t={t}");
            assert!(g_ref.dv.allclose(&g_fused.dv, 1e-3, 1e-4), "dv t={t}");
        }
    }

    #[test]
    fn fused_matches_reference_with_qk_norm() {
        let ws = Workspace::new();
        let mut rng = Rng::seed(97);
        let (t, heads, d_model) = (40, 2, 8);
        let q = rng.normal_tensor(t, d_model, 0.8);
        let k = rng.normal_tensor(t, d_model, 0.8);
        let v = rng.normal_tensor(t, d_model, 0.8);
        let dy = rng.normal_tensor(t, d_model, 1.0);
        let mut norm = QkNorm::identity(d_model / heads);
        norm.gamma_q = rng
            .normal_tensor(1, d_model / heads, 0.2)
            .add(&Tensor::full(1, d_model / heads, 1.0));
        let (y_ref, c_ref) = mha_forward_path(
            &q,
            &k,
            &v,
            heads,
            Some(&norm),
            Precision::F32,
            AttnPath::Reference,
            &ws,
        );
        let (y_fused, c_fused) = mha_forward_path(
            &q,
            &k,
            &v,
            heads,
            Some(&norm),
            Precision::F32,
            AttnPath::Fused,
            &ws,
        );
        assert!(y_ref.allclose(&y_fused, 1e-4, 1e-5));
        let g_ref = mha_backward_ws(&c_ref, Some(&norm), &dy, &ws);
        let g_fused = mha_backward_ws(&c_fused, Some(&norm), &dy, &ws);
        assert!(g_ref.dq.allclose(&g_fused.dq, 1e-3, 1e-4));
        assert!(g_ref.dk.allclose(&g_fused.dk, 1e-3, 1e-4));
        assert!(g_ref.dv.allclose(&g_fused.dv, 1e-3, 1e-4));
        let (rgq, rbq, rgk, rbk) = g_ref.dqk_norm.unwrap();
        let (fgq, fbq, fgk, fbk) = g_fused.dqk_norm.unwrap();
        assert!(rgq.allclose(&fgq, 1e-3, 1e-4));
        assert!(rbq.allclose(&fbq, 1e-3, 1e-4));
        assert!(rgk.allclose(&fgk, 1e-3, 1e-4));
        assert!(rbk.allclose(&fbk, 1e-3, 1e-4));
    }

    /// Streaming-memory claim: the fused path's scratch high-water mark must
    /// grow linearly in T (o(T^2)), while the reference path's resident
    /// probs grow quadratically.
    #[test]
    fn fused_scratch_high_water_is_subquadratic() {
        let heads = 2;
        let d_model = 8;
        let mut peaks = Vec::new();
        for &t in &[256usize, 512, 1024] {
            let ws = Workspace::new();
            let mut rng = Rng::seed(t as u64);
            let q = rng.normal_tensor(t, d_model, 0.5);
            let (_, cache) = mha_forward_path(
                &q,
                &q,
                &q,
                heads,
                None,
                Precision::F32,
                AttnPath::Fused,
                &ws,
            );
            peaks.push(ws.peak_bytes());
            // Resident cache must also be linear in T: well below one f32
            // T x T probs matrix.
            assert!(
                cache.resident_bytes() < t * t * 4,
                "fused cache is not sub-quadratic at T={t}"
            );
        }
        // Doubling T must scale scratch ~2x, nowhere near 4x.
        assert!(peaks[1] < peaks[0] * 3, "peak {:?}", peaks);
        assert!(peaks[2] < peaks[1] * 3, "peak {:?}", peaks);
    }

    #[test]
    fn bf16_rounding_is_applied_identically_on_both_paths() {
        let ws = Workspace::new();
        let mut rng = Rng::seed(101);
        let q = rng.normal_tensor(20, 8, 1.0);
        let (y_ref, _) = mha_forward_path(
            &q,
            &q,
            &q,
            2,
            None,
            Precision::BF16Mixed,
            AttnPath::Reference,
            &ws,
        );
        let (y_fused, _) = mha_forward_path(
            &q,
            &q,
            &q,
            2,
            None,
            Precision::BF16Mixed,
            AttnPath::Fused,
            &ws,
        );
        assert!(y_ref.allclose(&y_fused, 1e-3, 1e-4));
        // And BF16 rounding actually changed something vs f32.
        let (y_f32, _) = mha_forward_path(
            &q,
            &q,
            &q,
            2,
            None,
            Precision::F32,
            AttnPath::Reference,
            &ws,
        );
        assert!(y_ref != y_f32, "bf16 rounding must perturb the output");
    }
}
