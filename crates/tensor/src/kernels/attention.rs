//! Multi-head scaled dot-product attention with optional QK layer
//! normalization.
//!
//! The kernel takes *already projected* Q, K, V (the projections are plain
//! [`crate::kernels::linear`] layers, which is exactly where the Hybrid-STOP
//! column/row shards land), splits heads, and computes
//! `softmax(norm(Q_h) norm(K_h)^T / sqrt(d_h)) V_h` per head.
//!
//! QK layer normalization is the paper's "Architecture Optimization"
//! (Sec. III-B): it bounds attention-logit growth and prevents the training
//! divergence reported for the 22 B ViT.

use crate::kernels::activation::{softmax_rows, softmax_rows_backward};
use crate::kernels::norm::{layernorm, layernorm_backward, LayerNormCache};
use crate::matmul::{matmul, matmul_nt, matmul_tn};
use crate::tensor::Tensor;

/// Optional QK-normalization parameters (shared across heads; `1 x d_head`).
#[derive(Debug, Clone)]
pub struct QkNorm {
    pub gamma_q: Tensor,
    pub beta_q: Tensor,
    pub gamma_k: Tensor,
    pub beta_k: Tensor,
}

impl QkNorm {
    /// Identity-initialized QK normalization for `d_head` features.
    pub fn identity(d_head: usize) -> Self {
        QkNorm {
            gamma_q: Tensor::full(1, d_head, 1.0),
            beta_q: Tensor::zeros(1, d_head),
            gamma_k: Tensor::full(1, d_head, 1.0),
            beta_k: Tensor::zeros(1, d_head),
        }
    }
}

/// Per-head state cached for the backward pass.
struct HeadCache {
    q_raw: Tensor,
    k_raw: Tensor,
    q: Tensor,
    k: Tensor,
    v: Tensor,
    probs: Tensor,
    ln_q: Option<LayerNormCache>,
    ln_k: Option<LayerNormCache>,
}

/// Cache returned by [`mha_forward`].
pub struct MhaCache {
    heads: Vec<HeadCache>,
    d_head: usize,
    qk_norm: bool,
}

/// Gradients returned by [`mha_backward`].
pub struct MhaGrads {
    pub dq: Tensor,
    pub dk: Tensor,
    pub dv: Tensor,
    /// QK-norm parameter grads, present iff QK norm was used:
    /// (dgamma_q, dbeta_q, dgamma_k, dbeta_k).
    pub dqk_norm: Option<(Tensor, Tensor, Tensor, Tensor)>,
}

/// Multi-head attention forward. `q`, `k`, `v` are `tokens x d_model`;
/// `d_model` must divide evenly into `heads`.
pub fn mha_forward(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    heads: usize,
    qk_norm: Option<&QkNorm>,
) -> (Tensor, MhaCache) {
    let (tokens, d_model) = q.shape();
    assert_eq!(k.shape(), (k.rows(), d_model));
    assert_eq!(v.shape(), (k.rows(), d_model));
    assert_eq!(d_model % heads, 0, "heads must divide d_model");
    let d_head = d_model / heads;
    let scale = 1.0 / (d_head as f32).sqrt();

    let mut outs = Vec::with_capacity(heads);
    let mut caches = Vec::with_capacity(heads);
    for h in 0..heads {
        let c0 = h * d_head;
        let c1 = c0 + d_head;
        let q_raw = q.slice_cols(c0, c1);
        let k_raw = k.slice_cols(c0, c1);
        let v_h = v.slice_cols(c0, c1);
        let (q_h, ln_q, k_h, ln_k) = match qk_norm {
            Some(n) => {
                let (qn, cq) = layernorm(&q_raw, &n.gamma_q, &n.beta_q);
                let (kn, ck) = layernorm(&k_raw, &n.gamma_k, &n.beta_k);
                (qn, Some(cq), kn, Some(ck))
            }
            None => (q_raw.clone(), None, k_raw.clone(), None),
        };
        let mut scores = matmul_nt(&q_h, &k_h);
        scores.scale(scale);
        let probs = softmax_rows(&scores);
        let o_h = matmul(&probs, &v_h);
        outs.push(o_h);
        caches.push(HeadCache {
            q_raw,
            k_raw,
            q: q_h,
            k: k_h,
            v: v_h,
            probs,
            ln_q,
            ln_k,
        });
    }
    let out = Tensor::concat_cols(&outs.iter().collect::<Vec<_>>());
    debug_assert_eq!(out.shape(), (tokens, d_model));
    (
        out,
        MhaCache {
            heads: caches,
            d_head,
            qk_norm: qk_norm.is_some(),
        },
    )
}

/// Backward of [`mha_forward`]. `qk_norm` must be the same parameters that
/// were passed to the forward call.
pub fn mha_backward(cache: &MhaCache, qk_norm: Option<&QkNorm>, dy: &Tensor) -> MhaGrads {
    assert_eq!(
        cache.qk_norm,
        qk_norm.is_some(),
        "qk_norm presence mismatch"
    );
    let d_head = cache.d_head;
    let heads = cache.heads.len();
    let scale = 1.0 / (d_head as f32).sqrt();
    let tokens = dy.rows();
    let kv_tokens = cache.heads[0].k.rows();

    let mut dq = Tensor::zeros(tokens, heads * d_head);
    let mut dk = Tensor::zeros(kv_tokens, heads * d_head);
    let mut dv = Tensor::zeros(kv_tokens, heads * d_head);
    let mut dnorm = qk_norm.map(|_| {
        (
            Tensor::zeros(1, d_head),
            Tensor::zeros(1, d_head),
            Tensor::zeros(1, d_head),
            Tensor::zeros(1, d_head),
        )
    });

    for (h, hc) in cache.heads.iter().enumerate() {
        let c0 = h * d_head;
        let d_oh = dy.slice_cols(c0, c0 + d_head);
        // o = probs @ v
        let d_probs = matmul_nt(&d_oh, &hc.v);
        let d_vh = matmul_tn(&hc.probs, &d_oh);
        // probs = softmax(scores), scores = scale * q k^T
        let mut d_scores = softmax_rows_backward(&hc.probs, &d_probs);
        d_scores.scale(scale);
        let d_qh_n = matmul(&d_scores, &hc.k);
        let d_kh_n = matmul_tn(&d_scores, &hc.q);

        let (d_qh, d_kh) = match (qk_norm, &hc.ln_q, &hc.ln_k) {
            (Some(n), Some(cq), Some(ck)) => {
                let gq = layernorm_backward(cq, &n.gamma_q, &d_qh_n);
                let gk = layernorm_backward(ck, &n.gamma_k, &d_kh_n);
                let acc = dnorm.as_mut().expect("dnorm allocated when qk_norm set");
                acc.0.add_assign(&gq.dgamma);
                acc.1.add_assign(&gq.dbeta);
                acc.2.add_assign(&gk.dgamma);
                acc.3.add_assign(&gk.dbeta);
                (gq.dx, gk.dx)
            }
            _ => (d_qh_n, d_kh_n),
        };
        // Scatter head grads back to the full-width tensors.
        for r in 0..tokens {
            dq.row_mut(r)[c0..c0 + d_head].copy_from_slice(d_qh.row(r));
        }
        for r in 0..kv_tokens {
            dk.row_mut(r)[c0..c0 + d_head].copy_from_slice(d_kh.row(r));
            dv.row_mut(r)[c0..c0 + d_head].copy_from_slice(d_vh.row(r));
        }
        // Silence unused warnings for raw activations kept for checkpoint
        // recomputation paths.
        let _ = (&hc.q_raw, &hc.k_raw);
    }
    MhaGrads {
        dq,
        dk,
        dv,
        dqk_norm: dnorm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Rng;
    use crate::kernels::fd::{assert_grad_close, numerical_grad};

    fn loss(
        q: &Tensor,
        k: &Tensor,
        v: &Tensor,
        heads: usize,
        norm: Option<&QkNorm>,
        m: &Tensor,
    ) -> f32 {
        mha_forward(q, k, v, heads, norm).0.hadamard(m).sum()
    }

    #[test]
    fn shapes_and_determinism() {
        let mut rng = Rng::seed(61);
        let q = rng.normal_tensor(6, 8, 1.0);
        let k = rng.normal_tensor(6, 8, 1.0);
        let v = rng.normal_tensor(6, 8, 1.0);
        let (y1, _) = mha_forward(&q, &k, &v, 2, None);
        let (y2, _) = mha_forward(&q, &k, &v, 2, None);
        assert_eq!(y1.shape(), (6, 8));
        assert_eq!(y1, y2);
    }

    #[test]
    fn single_head_uniform_attention_averages_values() {
        // With q=0 all scores are equal, so output = mean of value rows.
        let q = Tensor::zeros(2, 4);
        let mut rng = Rng::seed(63);
        let k = rng.normal_tensor(3, 4, 1.0);
        let v = rng.normal_tensor(3, 4, 1.0);
        let (y, _) = mha_forward(&q, &k, &v, 1, None);
        let mut mean = Tensor::zeros(1, 4);
        for r in 0..3 {
            for c in 0..4 {
                mean.set(0, c, mean.get(0, c) + v.get(r, c) / 3.0);
            }
        }
        for r in 0..2 {
            for c in 0..4 {
                assert!((y.get(r, c) - mean.get(0, c)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn grads_match_fd_no_norm() {
        let mut rng = Rng::seed(67);
        let q = rng.normal_tensor(4, 6, 0.7);
        let k = rng.normal_tensor(4, 6, 0.7);
        let v = rng.normal_tensor(4, 6, 0.7);
        let m = rng.normal_tensor(4, 6, 1.0);
        let (_, cache) = mha_forward(&q, &k, &v, 2, None);
        let g = mha_backward(&cache, None, &m);
        assert_grad_close(
            &g.dq,
            &numerical_grad(&q, |q_| loss(q_, &k, &v, 2, None, &m), 1e-3),
            3e-2,
        );
        assert_grad_close(
            &g.dk,
            &numerical_grad(&k, |k_| loss(&q, k_, &v, 2, None, &m), 1e-3),
            3e-2,
        );
        assert_grad_close(
            &g.dv,
            &numerical_grad(&v, |v_| loss(&q, &k, v_, 2, None, &m), 1e-3),
            3e-2,
        );
        assert!(g.dqk_norm.is_none());
    }

    #[test]
    fn grads_match_fd_with_qk_norm() {
        let mut rng = Rng::seed(71);
        let q = rng.normal_tensor(3, 4, 0.8);
        let k = rng.normal_tensor(3, 4, 0.8);
        let v = rng.normal_tensor(3, 4, 0.8);
        let m = rng.normal_tensor(3, 4, 1.0);
        let mut norm = QkNorm::identity(2);
        norm.gamma_q = rng.normal_tensor(1, 2, 0.2).add(&Tensor::full(1, 2, 1.0));
        norm.gamma_k = rng.normal_tensor(1, 2, 0.2).add(&Tensor::full(1, 2, 1.0));
        let (_, cache) = mha_forward(&q, &k, &v, 2, Some(&norm));
        let g = mha_backward(&cache, Some(&norm), &m);
        let n = Some(&norm);
        assert_grad_close(
            &g.dq,
            &numerical_grad(&q, |q_| loss(q_, &k, &v, 2, n, &m), 1e-3),
            4e-2,
        );
        assert_grad_close(
            &g.dk,
            &numerical_grad(&k, |k_| loss(&q, k_, &v, 2, n, &m), 1e-3),
            4e-2,
        );
        assert_grad_close(
            &g.dv,
            &numerical_grad(&v, |v_| loss(&q, &k, v_, 2, n, &m), 1e-3),
            4e-2,
        );
        let (dgq, dbq, _dgk, _dbk) = g.dqk_norm.expect("norm grads present");
        let ngq = numerical_grad(
            &norm.gamma_q,
            |g_| {
                let mut n2 = norm.clone();
                n2.gamma_q = g_.clone();
                loss(&q, &k, &v, 2, Some(&n2), &m)
            },
            1e-3,
        );
        assert_grad_close(&dgq, &ngq, 4e-2);
        let nbq = numerical_grad(
            &norm.beta_q,
            |b_| {
                let mut n2 = norm.clone();
                n2.beta_q = b_.clone();
                loss(&q, &k, &v, 2, Some(&n2), &m)
            },
            1e-3,
        );
        assert_grad_close(&dbq, &nbq, 4e-2);
    }

    #[test]
    fn cross_attention_supports_different_kv_length() {
        // Query length 1, kv length 5 — the ClimaX variable-aggregation
        // pattern (one learnable query pooling C channel embeddings).
        let mut rng = Rng::seed(73);
        let q = rng.normal_tensor(1, 8, 1.0);
        let k = rng.normal_tensor(5, 8, 1.0);
        let v = rng.normal_tensor(5, 8, 1.0);
        let (y, cache) = mha_forward(&q, &k, &v, 2, None);
        assert_eq!(y.shape(), (1, 8));
        let g = mha_backward(&cache, None, &Tensor::full(1, 8, 1.0));
        assert_eq!(g.dq.shape(), (1, 8));
        assert_eq!(g.dk.shape(), (5, 8));
        assert_eq!(g.dv.shape(), (5, 8));
    }

    #[test]
    fn heads_partition_matches_manual_two_head() {
        // Running 2-head attention equals running each half separately.
        let mut rng = Rng::seed(79);
        let q = rng.normal_tensor(4, 8, 1.0);
        let k = rng.normal_tensor(4, 8, 1.0);
        let v = rng.normal_tensor(4, 8, 1.0);
        let (y, _) = mha_forward(&q, &k, &v, 2, None);
        for h in 0..2 {
            let (c0, c1) = (h * 4, h * 4 + 4);
            let (yh, _) = mha_forward(
                &q.slice_cols(c0, c1),
                &k.slice_cols(c0, c1),
                &v.slice_cols(c0, c1),
                1,
                None,
            );
            assert!(y.slice_cols(c0, c1).allclose(&yh, 1e-5, 1e-6), "head {h}");
        }
    }
}
