//! Affine transform `y = x W + b` and its gradients.
//!
//! This is the `x A` / `(..) B` half of the paper's matrix chain
//! `y <- x A B`; the sharded engines in `orbit-core` call these exact
//! functions on their shards.

use crate::bf16::Precision;
use crate::matmul::{matmul_nt, matmul_p, matmul_tn};
use crate::tensor::Tensor;

/// Gradients produced by [`linear_backward`].
#[derive(Debug, Clone)]
pub struct LinearGrads {
    /// Gradient w.r.t. the input `x`.
    pub dx: Tensor,
    /// Gradient w.r.t. the weight `W` (same shape as `W`: `in x out`).
    pub dw: Tensor,
    /// Gradient w.r.t. the bias (1 x out), present iff a bias was used.
    pub db: Option<Tensor>,
}

/// `y = x W (+ b)`. `x` is `rows x in`, `w` is `in x out`, `b` is `1 x out`.
pub fn linear(x: &Tensor, w: &Tensor, b: Option<&Tensor>, prec: Precision) -> Tensor {
    assert_eq!(x.cols(), w.rows(), "linear: x cols != w rows");
    let mut y = matmul_p(x, w, prec);
    if let Some(b) = b {
        assert_eq!(b.shape(), (1, w.cols()), "linear: bias shape");
        for r in 0..y.rows() {
            let row = y.row_mut(r);
            for (v, &bv) in row.iter_mut().zip(b.row(0)) {
                *v += bv;
            }
        }
    }
    y
}

/// Backward of [`linear`]: given upstream `dy`, return `dx = dy W^T`,
/// `dw = x^T dy`, and `db = sum_rows(dy)` when `has_bias`.
pub fn linear_backward(x: &Tensor, w: &Tensor, dy: &Tensor, has_bias: bool) -> LinearGrads {
    assert_eq!(
        dy.shape(),
        (x.rows(), w.cols()),
        "linear_backward: dy shape"
    );
    let dx = matmul_nt(dy, w);
    let dw = matmul_tn(x, dy);
    let db = has_bias.then(|| {
        let mut db = Tensor::zeros(1, dy.cols());
        for r in 0..dy.rows() {
            for (acc, &v) in db.row_mut(0).iter_mut().zip(dy.row(r)) {
                *acc += v;
            }
        }
        db
    });
    LinearGrads { dx, dw, db }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Rng;
    use crate::kernels::fd::{assert_grad_close, numerical_grad};

    #[test]
    fn forward_matches_manual() {
        let x = Tensor::from_vec(1, 2, vec![1.0, 2.0]);
        let w = Tensor::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let b = Tensor::from_vec(1, 2, vec![10.0, 20.0]);
        let y = linear(&x, &w, Some(&b), Precision::F32);
        assert_eq!(y.data(), &[11.0, 22.0]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng::seed(21);
        let x = rng.normal_tensor(3, 4, 1.0);
        let w = rng.normal_tensor(4, 5, 0.5);
        let b = rng.normal_tensor(1, 5, 0.5);
        // Loss = sum(y .* m) for a fixed random mask m makes dy = m.
        let m = rng.normal_tensor(3, 5, 1.0);
        let loss = |x_: &Tensor, w_: &Tensor, b_: &Tensor| {
            linear(x_, w_, Some(b_), Precision::F32).hadamard(&m).sum()
        };
        let g = linear_backward(&x, &w, &m, true);
        let nx = numerical_grad(&x, |x_| loss(x_, &w, &b), 1e-3);
        let nw = numerical_grad(&w, |w_| loss(&x, w_, &b), 1e-3);
        let nb = numerical_grad(&b, |b_| loss(&x, &w, b_), 1e-3);
        assert_grad_close(&g.dx, &nx, 2e-2);
        assert_grad_close(&g.dw, &nw, 2e-2);
        assert_grad_close(g.db.as_ref().unwrap(), &nb, 2e-2);
    }

    #[test]
    fn no_bias_path() {
        let mut rng = Rng::seed(2);
        let x = rng.normal_tensor(2, 3, 1.0);
        let w = rng.normal_tensor(3, 2, 1.0);
        let y = linear(&x, &w, None, Precision::F32);
        let g = linear_backward(&x, &w, &Tensor::full(2, 2, 1.0), false);
        assert!(g.db.is_none());
        assert_eq!(y.shape(), (2, 2));
        assert_eq!(g.dx.shape(), x.shape());
        assert_eq!(g.dw.shape(), w.shape());
    }

    #[test]
    fn column_sharded_linear_concatenates() {
        // Column-sharding W and concatenating outputs is exact — the TP/
        // Hybrid-STOP forward identity for the first matrix of the chain.
        let mut rng = Rng::seed(31);
        let x = rng.normal_tensor(4, 6, 1.0);
        let w = rng.normal_tensor(6, 8, 1.0);
        let full = linear(&x, &w, None, Precision::F32);
        let y1 = linear(&x, &w.slice_cols(0, 4), None, Precision::F32);
        let y2 = linear(&x, &w.slice_cols(4, 8), None, Precision::F32);
        assert!(Tensor::concat_cols(&[&y1, &y2]).allclose(&full, 1e-5, 1e-6));
    }

    #[test]
    fn row_sharded_linear_sums() {
        // Row-sharding W with matching input slices sums to the full output
        // — the second matrix of the Hybrid-STOP chain (Eqn. (2)).
        let mut rng = Rng::seed(37);
        let x = rng.normal_tensor(4, 8, 1.0);
        let w = rng.normal_tensor(8, 5, 1.0);
        let full = linear(&x, &w, None, Precision::F32);
        let p1 = linear(
            &x.slice_cols(0, 4),
            &w.slice_rows(0, 4),
            None,
            Precision::F32,
        );
        let p2 = linear(
            &x.slice_cols(4, 8),
            &w.slice_rows(4, 8),
            None,
            Precision::F32,
        );
        assert!(p1.add(&p2).allclose(&full, 1e-5, 1e-6));
    }
}
