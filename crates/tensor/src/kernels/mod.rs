//! Layer kernels with explicit forward/backward pairs.
//!
//! Every kernel follows the same convention:
//! `forward(inputs, params) -> (output, Cache)` and
//! `backward(&Cache, dOutput) -> (dInputs, dParams)`.
//! Caches hold exactly what the backward pass needs; activation
//! checkpointing (paper Sec. III-B) drops caches and re-runs `forward`.

pub mod activation;
pub mod attention;
pub mod embed;
pub mod linear;
pub mod norm;
pub mod optimizer;

pub use activation::{gelu, gelu_backward, softmax_rows, softmax_rows_backward};
pub use attention::{
    mha_backward, mha_backward_ws, mha_forward, mha_forward_path, mha_forward_ws, AttnPath,
    MhaCache, MhaGrads, QkNorm,
};
pub use embed::{fold_patches, unfold_patches};
pub use linear::{linear, linear_backward, LinearGrads};
pub use norm::{layernorm, layernorm_backward, LayerNormCache, LayerNormGrads};
pub use optimizer::{AdamState, AdamW};

pub mod fd {
    //! Finite-difference gradient checking, shared by kernel tests here and
    //! by the model/engine tests in downstream crates.
    use crate::tensor::Tensor;

    /// Central-difference numerical gradient of `f` w.r.t. `x`, where `f`
    /// returns a scalar loss.
    pub fn numerical_grad(x: &Tensor, mut f: impl FnMut(&Tensor) -> f32, eps: f32) -> Tensor {
        let mut g = Tensor::zeros(x.rows(), x.cols());
        for i in 0..x.rows() {
            for j in 0..x.cols() {
                let mut xp = x.clone();
                xp.set(i, j, x.get(i, j) + eps);
                let mut xm = x.clone();
                xm.set(i, j, x.get(i, j) - eps);
                g.set(i, j, (f(&xp) - f(&xm)) / (2.0 * eps));
            }
        }
        g
    }

    /// Assert analytic and numerical gradients agree to mixed tolerance.
    pub fn assert_grad_close(analytic: &Tensor, numerical: &Tensor, tol: f32) {
        assert_eq!(analytic.shape(), numerical.shape());
        for i in 0..analytic.rows() {
            for j in 0..analytic.cols() {
                let a = analytic.get(i, j);
                let n = numerical.get(i, j);
                let denom = 1.0f32.max(a.abs()).max(n.abs());
                assert!(
                    (a - n).abs() / denom < tol,
                    "grad mismatch at ({i},{j}): analytic {a}, numerical {n}"
                );
            }
        }
    }
}
