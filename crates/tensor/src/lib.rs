//! # orbit-tensor
//!
//! Dense tensor kernels for ORBIT-RS: a from-scratch, deterministic,
//! CPU-parallel (rayon) tensor library with *explicit backward passes* for
//! every layer the ORBIT vision transformer needs.
//!
//! The ORBIT paper's contribution (Hybrid-STOP) operates at the level of the
//! matrix chain `y <- x A B` (paper Eqns. (1)-(3)). This crate therefore
//! exposes matrices and matrix-chain kernels directly rather than hiding them
//! behind a general autograd tape: the sharded engines in `orbit-core` re-use
//! exactly the same forward/backward functions that the single-device
//! reference model uses, which is what makes the distributed-vs-reference
//! equivalence tests meaningful.
//!
//! Modules:
//! - [`tensor`]: the row-major [`Tensor`] matrix type and element-wise ops.
//! - [`bf16`]: software bfloat16 with round-to-nearest-even, used to emulate
//!   the MI250X BF16 mixed-precision pipeline.
//! - [`matmul`]: blocked, rayon-parallel GEMM in several transpose variants
//!   and precisions.
//! - [`kernels`]: layer forward/backward pairs (linear, layernorm, GeLU,
//!   softmax, attention, patch embedding, cross-attention aggregation).
//! - [`init`]: deterministic parameter initialization.
//! - [`workspace`]: a pooled scratch arena ([`Workspace`]) threaded through
//!   the hot kernels so steady-state training steps allocate nothing.
//! - [`dtensor`]: layout-aware distributed tensors — a [`dtensor::DTensor`]
//!   carries a [`dtensor::Layout`] per axis of a named [`dtensor::DeviceMesh`],
//!   and [`dtensor::DTensor::reshard`] lowers layout transitions onto the
//!   nonblocking collectives behind the [`dtensor::Collectives`] trait.

pub mod bf16;
pub mod dtensor;
pub mod init;
pub mod kernels;
pub mod matmul;
pub mod tensor;
pub mod workspace;

pub use bf16::{bf16_to_f32, f32_to_bf16, round_bf16, Precision};
pub use dtensor::{
    reshard_legal, split_legal, Collectives, DTensor, DeviceMesh, Layout, LayoutError,
    ReshardError, ReshardNote,
};
pub use kernels::attention::AttnPath;
pub use matmul::{matmul, matmul_nt, matmul_p, matmul_tn};
pub use tensor::Tensor;
pub use workspace::Workspace;
