//! The assembled ORBIT ViT and its single-device reference trainer.

use crate::block::{BlockCache, Param, TransformerBlock};
use crate::config::VitConfig;
use crate::loss::{weighted_mse, weighted_mse_grad};
use crate::tokenizer::{AggregationCache, TokenizerCache, VariableAggregation, VariableTokenizer};
use orbit_tensor::init::Rng;
use orbit_tensor::kernels::{
    fold_patches, linear, linear_backward, unfold_patches, AdamState, AdamW,
};
use orbit_tensor::{Tensor, Workspace};

/// One training batch: per-sample input channel images and target output
/// channel images.
#[derive(Debug, Clone, Default)]
pub struct Batch {
    /// `inputs[s][c]` is sample `s`'s image for input channel `c`.
    pub inputs: Vec<Vec<Tensor>>,
    /// `targets[s][o]` is sample `s`'s image for output channel `o`.
    pub targets: Vec<Vec<Tensor>>,
}

impl Batch {
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }
}

/// Front-end (tokenizer + aggregation) caches.
pub struct FrontCache {
    tok: TokenizerCache,
    agg: AggregationCache,
}

/// Per-sample forward state (caches for backward + predictions).
pub struct Forward {
    front: FrontCache,
    blocks: Vec<BlockCache>,
    /// Final block output (input to the head).
    top: Tensor,
    /// Predicted images, one per output channel.
    pub preds: Vec<Tensor>,
}

/// The full model.
#[derive(Debug, Clone)]
pub struct VitModel {
    pub cfg: VitConfig,
    pub tokenizer: VariableTokenizer,
    pub aggregation: VariableAggregation,
    /// Learnable positional embedding, `tokens x d`.
    pub pos_embed: Param,
    pub blocks: Vec<TransformerBlock>,
    pub head_w: Param,
    pub head_b: Param,
    /// Scratch arena shared by every block's kernels: after the first
    /// step the pool is warm and the hot path stops allocating. Clones of
    /// the model share the pool (it holds no model state — only recycled
    /// scratch buffers), and it is deliberately not serialized.
    pub ws: Workspace,
}

impl VitModel {
    /// Deterministic initialization from a seed.
    pub fn init(cfg: VitConfig, seed: u64) -> Self {
        let master = Rng::seed(seed);
        let mut rng_tok = master.derive(1);
        let mut rng_agg = master.derive(2);
        let mut rng_pos = master.derive(3);
        let mut rng_head = master.derive(4);
        let d = cfg.dims.embed;
        let out = cfg.dims.out_channels * cfg.dims.patch * cfg.dims.patch;
        let blocks = (0..cfg.dims.layers)
            .map(|l| {
                let mut r = master.derive(100 + l as u64);
                TransformerBlock::init(&cfg, &mut r)
            })
            .collect();
        VitModel {
            tokenizer: VariableTokenizer::init(&cfg, &mut rng_tok),
            aggregation: VariableAggregation::init(&cfg, &mut rng_agg),
            pos_embed: Param::new(rng_pos.trunc_normal_tensor(cfg.tokens(), d, cfg.init_std)),
            blocks,
            head_w: Param::new(rng_head.trunc_normal_tensor(d, out, cfg.init_std)),
            head_b: Param::new(Tensor::zeros(1, out)),
            ws: Workspace::new(),
            cfg,
        }
    }

    /// Front-end forward: tokenizer + aggregation + positional embedding.
    /// Returns the block-0 input `x0` and the caches needed for
    /// [`Self::front_backward`].
    pub fn front_forward(&self, images: &[Tensor]) -> (Tensor, FrontCache) {
        let (embs, tok) = self.tokenizer.forward(images);
        let (agg_out, agg) = self.aggregation.forward(&embs);
        let x0 = agg_out.add(&self.pos_embed.value);
        (x0, FrontCache { tok, agg })
    }

    /// Front-end backward: accumulates tokenizer/aggregation/pos-embed
    /// gradients from `dL/dx0`.
    pub fn front_backward(&mut self, cache: &FrontCache, dx0: &Tensor) {
        self.pos_embed.accumulate(dx0);
        let d_embs = self.aggregation.backward(&cache.agg, dx0);
        self.tokenizer.backward(&cache.tok, &d_embs);
    }

    /// Head forward: project the final block output to per-channel images.
    pub fn head_forward(&self, top: &Tensor) -> Vec<Tensor> {
        let out = linear(
            top,
            &self.head_w.value,
            Some(&self.head_b.value),
            self.cfg.precision,
        );
        let pp = self.cfg.dims.patch * self.cfg.dims.patch;
        (0..self.cfg.dims.out_channels)
            .map(|oc| {
                let patches = out.slice_cols(oc * pp, (oc + 1) * pp);
                fold_patches(
                    &patches,
                    self.cfg.dims.patch,
                    self.cfg.dims.img_h,
                    self.cfg.dims.img_w,
                )
            })
            .collect()
    }

    /// Head backward: accumulates head gradients and returns `dL/dtop`.
    pub fn head_backward(&mut self, top: &Tensor, d_preds: &[Tensor]) -> Tensor {
        let d_out = Tensor::concat_cols(
            &d_preds
                .iter()
                .map(|g| unfold_patches(g, self.cfg.dims.patch))
                .collect::<Vec<_>>()
                .iter()
                .collect::<Vec<_>>(),
        );
        let gh = linear_backward(top, &self.head_w.value, &d_out, true);
        self.head_w.accumulate(&gh.dw);
        self.head_b.accumulate(&gh.db.expect("bias grad"));
        gh.dx
    }

    /// Forward pass for one observation (a `C`-vector of `H x W` images).
    pub fn forward(&self, images: &[Tensor]) -> Forward {
        let (x0, front) = self.front_forward(images);
        let mut x = x0.clone();
        let mut caches = Vec::with_capacity(self.blocks.len());
        for b in &self.blocks {
            let (y, c) = b.forward_ws(&x, &self.ws);
            caches.push(c);
            x = y;
        }
        let preds = self.head_forward(&x);
        let _ = x0;
        Forward {
            front,
            blocks: caches,
            top: x,
            preds,
        }
    }

    /// Backward pass for one observation given `dL/dpred` per output
    /// channel. Accumulates parameter gradients.
    pub fn backward(&mut self, fwd: &Forward, d_preds: &[Tensor]) {
        let mut dx = self.head_backward(&fwd.top, d_preds);
        let ws = self.ws.clone();
        for (b, c) in self.blocks.iter_mut().zip(fwd.blocks.iter()).rev() {
            dx = b.backward_ws(c, &dx, &ws);
        }
        self.front_backward(&fwd.front, &dx);
    }

    /// Memory-lean forward for activation checkpointing: stores only the
    /// block-boundary activations; [`Self::backward_ckpt`] re-runs each
    /// block's forward to rebuild its cache (paper Sec. III-B).
    pub fn forward_ckpt(&self, images: &[Tensor]) -> (Vec<Tensor>, Vec<Tensor>) {
        let (x0, _) = self.front_forward(images);
        let mut x = x0;
        let mut boundaries = vec![x.clone()];
        for b in &self.blocks {
            let (y, _) = b.forward_ws(&x, &self.ws);
            boundaries.push(y.clone());
            x = y;
        }
        let preds = self.head_forward(&x);
        (preds, boundaries)
    }

    /// Backward matching [`Self::forward_ckpt`]: recomputes per-block
    /// caches from the stored boundaries. The tokenizer/aggregation stage
    /// is also recomputed.
    pub fn backward_ckpt(&mut self, images: &[Tensor], boundaries: &[Tensor], d_preds: &[Tensor]) {
        let top = boundaries.last().expect("boundaries include the top");
        let mut dx = self.head_backward(top, d_preds);
        let ws = self.ws.clone();
        for l in (0..self.blocks.len()).rev() {
            // Recompute this block's cache from its input boundary.
            let (_, cache) = self.blocks[l].forward_ws(&boundaries[l], &ws);
            dx = self.blocks[l].backward_ws(&cache, &dx, &ws);
        }
        // Recompute the front-end caches.
        let (_, front) = self.front_forward(images);
        self.front_backward(&front, &dx);
    }

    /// Visit all parameters in deterministic order.
    pub fn visit_params(&mut self, v: &mut dyn FnMut(&str, &mut Param)) {
        self.tokenizer.visit_params(v);
        self.aggregation.visit_params(v);
        v("pos_embed", &mut self.pos_embed);
        for (i, b) in self.blocks.iter_mut().enumerate() {
            b.visit_params(&format!("block{i}"), v);
        }
        v("head_w", &mut self.head_w);
        v("head_b", &mut self.head_b);
    }

    /// Total parameter count (actual tensors).
    pub fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |_, p| n += p.len());
        n
    }

    /// Zero all gradient accumulators.
    pub fn zero_grads(&mut self) {
        self.visit_params(&mut |_, p| p.zero_grad());
    }

    /// Flatten all parameter values in visit order.
    pub fn flatten_params(&mut self) -> Vec<f32> {
        let mut flat = Vec::new();
        self.visit_params(&mut |_, p| flat.extend_from_slice(p.value.data()));
        flat
    }

    /// Flatten all gradients in visit order.
    pub fn flatten_grads(&mut self) -> Vec<f32> {
        let mut flat = Vec::new();
        self.visit_params(&mut |_, p| flat.extend_from_slice(p.grad.data()));
        flat
    }

    /// Load parameter values from a flat vector in visit order.
    pub fn load_flat_params(&mut self, flat: &[f32]) {
        let mut off = 0;
        self.visit_params(&mut |_, p| {
            let n = p.len();
            p.value.data_mut().copy_from_slice(&flat[off..off + n]);
            off += n;
        });
        assert_eq!(off, flat.len(), "flat parameter length mismatch");
    }

    /// Load gradients from a flat vector in visit order.
    pub fn load_flat_grads(&mut self, flat: &[f32]) {
        let mut off = 0;
        self.visit_params(&mut |_, p| {
            let n = p.len();
            p.grad.data_mut().copy_from_slice(&flat[off..off + n]);
            off += n;
        });
        assert_eq!(off, flat.len(), "flat gradient length mismatch");
    }

    /// Fresh Adam state for the whole model (one state, flat layout).
    pub fn init_adam_state(&mut self) -> AdamState {
        AdamState::new(self.param_count())
    }

    /// Apply one AdamW update using flat state.
    pub fn adam_step(&mut self, opt: &AdamW, state: &mut AdamState) {
        let mut params = self.flatten_params();
        let grads = self.flatten_grads();
        opt.step(state, &mut params, &grads);
        self.load_flat_params(&params);
    }

    /// One reference training step: mean wMSE over the batch, gradient
    /// accumulation, AdamW update. Returns the batch loss.
    pub fn train_step(
        &mut self,
        batch: &Batch,
        lat_weights: &[f32],
        opt: &AdamW,
        state: &mut AdamState,
    ) -> f32 {
        assert!(!batch.is_empty());
        self.zero_grads();
        let scale = 1.0 / batch.len() as f32;
        let mut loss = 0.0;
        for (images, targets) in batch.inputs.iter().zip(&batch.targets) {
            let fwd = self.forward(images);
            loss += weighted_mse(&fwd.preds, targets, lat_weights) * scale;
            let mut d_preds = weighted_mse_grad(&fwd.preds, targets, lat_weights);
            for g in &mut d_preds {
                g.scale(scale);
            }
            self.backward(&fwd, &d_preds);
        }
        self.adam_step(opt, state);
        loss
    }

    /// Inference: predictions for one observation.
    pub fn predict(&self, images: &[Tensor]) -> Vec<Tensor> {
        self.forward(images).preds
    }

    /// Inference over a batch of observations (the serving path). The
    /// model math is per-sample, so a batched forward is exactly the
    /// per-sample forwards grouped — batching changes scheduling, never
    /// numerics, and the serving layer's batched-vs-unbatched
    /// bit-identity tests pin that down.
    pub fn predict_batch(&self, inputs: &[Vec<Tensor>]) -> Vec<Vec<Tensor>> {
        inputs.iter().map(|images| self.predict(images)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::lat_weights;
    use orbit_tensor::kernels::fd::{assert_grad_close, numerical_grad};

    fn cfg() -> VitConfig {
        VitConfig::test_tiny()
    }

    fn sample(rng: &mut Rng, c: &VitConfig) -> (Vec<Tensor>, Vec<Tensor>) {
        let imgs = (0..c.dims.channels)
            .map(|_| rng.normal_tensor(c.dims.img_h, c.dims.img_w, 1.0))
            .collect();
        let targets = (0..c.dims.out_channels)
            .map(|_| rng.normal_tensor(c.dims.img_h, c.dims.img_w, 1.0))
            .collect();
        (imgs, targets)
    }

    #[test]
    fn forward_produces_image_shaped_predictions() {
        let c = cfg();
        let model = VitModel::init(c, 42);
        let mut rng = Rng::seed(1);
        let (imgs, _) = sample(&mut rng, &c);
        let fwd = model.forward(&imgs);
        assert_eq!(fwd.preds.len(), c.dims.out_channels);
        for p in &fwd.preds {
            assert_eq!(p.shape(), (c.dims.img_h, c.dims.img_w));
            assert!(p.all_finite());
        }
        let _ = &fwd.top;
    }

    #[test]
    fn param_count_matches_closed_form() {
        let c = cfg();
        let mut model = VitModel::init(c, 42);
        assert_eq!(model.param_count() as u64, c.dims.param_count());
    }

    #[test]
    fn flatten_load_roundtrip() {
        let c = cfg();
        let mut model = VitModel::init(c, 42);
        let flat = model.flatten_params();
        let mut model2 = VitModel::init(c, 99);
        assert_ne!(model2.flatten_params(), flat);
        model2.load_flat_params(&flat);
        assert_eq!(model2.flatten_params(), flat);
    }

    #[test]
    fn pos_embed_gradient_matches_fd() {
        let c = cfg();
        let mut model = VitModel::init(c, 42);
        let mut rng = Rng::seed(3);
        let (imgs, targets) = sample(&mut rng, &c);
        let w = lat_weights(c.dims.img_h);
        model.zero_grads();
        let fwd = model.forward(&imgs);
        let d_preds = weighted_mse_grad(&fwd.preds, &targets, &w);
        model.backward(&fwd, &d_preds);
        let analytic = model.pos_embed.grad.clone();
        let base = model.pos_embed.value.clone();
        let numerical = numerical_grad(
            &base,
            |pe| {
                let mut m2 = model.clone();
                m2.pos_embed.value = pe.clone();
                let f = m2.forward(&imgs);
                weighted_mse(&f.preds, &targets, &w)
            },
            1e-2,
        );
        assert_grad_close(&analytic, &numerical, 5e-2);
    }

    #[test]
    fn training_reduces_loss() {
        let c = cfg();
        let mut model = VitModel::init(c, 42);
        let mut rng = Rng::seed(4);
        let (imgs, targets) = sample(&mut rng, &c);
        let batch = Batch {
            inputs: vec![imgs],
            targets: vec![targets],
        };
        let w = lat_weights(c.dims.img_h);
        let opt = AdamW {
            lr: 1e-2,
            ..AdamW::default()
        };
        let mut state = model.init_adam_state();
        let first = model.train_step(&batch, &w, &opt, &mut state);
        let mut last = first;
        for _ in 0..20 {
            last = model.train_step(&batch, &w, &opt, &mut state);
        }
        assert!(
            last < 0.5 * first,
            "loss should drop when memorizing one sample: {first} -> {last}"
        );
    }

    #[test]
    fn checkpointed_backward_matches_standard() {
        let c = cfg();
        let mut rng = Rng::seed(5);
        let (imgs, targets) = sample(&mut rng, &c);
        let w = lat_weights(c.dims.img_h);

        let mut a = VitModel::init(c, 42);
        a.zero_grads();
        let fwd = a.forward(&imgs);
        let d_preds = weighted_mse_grad(&fwd.preds, &targets, &w);
        a.backward(&fwd, &d_preds);

        let mut b = VitModel::init(c, 42);
        b.zero_grads();
        let (preds, boundaries) = b.forward_ckpt(&imgs);
        // Same predictions...
        for (pa, pb) in fwd.preds.iter().zip(&preds) {
            assert!(pa.allclose(pb, 1e-5, 1e-6));
        }
        let d_preds2 = weighted_mse_grad(&preds, &targets, &w);
        b.backward_ckpt(&imgs, &boundaries, &d_preds2);
        // ...and the same gradients.
        let ga = a.flatten_grads();
        let gb = b.flatten_grads();
        for (x, y) in ga.iter().zip(&gb) {
            assert!((x - y).abs() <= 1e-5 + 1e-4 * y.abs(), "{x} vs {y}");
        }
    }

    #[test]
    fn steady_state_training_stops_allocating_scratch() {
        // After one warm-up step the model's workspace pool holds every
        // scratch shape the kernels need; further steps must be all hits.
        let c = cfg();
        let mut model = VitModel::init(c, 42);
        let mut rng = Rng::seed(8);
        let (imgs, targets) = sample(&mut rng, &c);
        let batch = Batch {
            inputs: vec![imgs],
            targets: vec![targets],
        };
        let w = lat_weights(c.dims.img_h);
        let opt = AdamW::default();
        let mut state = model.init_adam_state();
        model.train_step(&batch, &w, &opt, &mut state);
        let misses_after_warmup = model.ws.misses();
        for _ in 0..3 {
            model.train_step(&batch, &w, &opt, &mut state);
        }
        assert_eq!(
            model.ws.misses(),
            misses_after_warmup,
            "steady-state training must reuse pooled scratch, not allocate"
        );
    }

    #[test]
    fn deterministic_training() {
        let c = cfg();
        let mut rng = Rng::seed(6);
        let (imgs, targets) = sample(&mut rng, &c);
        let batch = Batch {
            inputs: vec![imgs],
            targets: vec![targets],
        };
        let w = lat_weights(c.dims.img_h);
        let opt = AdamW::default();
        let run = || {
            let mut m = VitModel::init(c, 42);
            let mut s = m.init_adam_state();
            let mut losses = Vec::new();
            for _ in 0..3 {
                losses.push(m.train_step(&batch, &w, &opt, &mut s));
            }
            (losses, m.flatten_params())
        };
        let (l1, p1) = run();
        let (l2, p2) = run();
        assert_eq!(l1, l2);
        assert_eq!(p1, p2);
    }
}
