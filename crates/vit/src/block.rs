//! The transformer block: pre-norm self-attention + GeLU MLP.
//!
//! Both sub-layers are the matrix chain `y <- x A B` of paper Eqn. (1):
//! attention is `softmax((xWq)(xWk)^T)(xWv) Wo` and the MLP is
//! `GeLU(x W1) W2`. The sharded engines in `orbit-core` split exactly these
//! `A` matrices by columns and `B` matrices by rows.

use crate::config::VitConfig;
use orbit_tensor::init::Rng;
use orbit_tensor::kernels::attention::{
    mha_backward_ws, mha_forward_path, AttnPath, MhaCache, QkNorm,
};
use orbit_tensor::kernels::{
    gelu, gelu_backward, layernorm, layernorm_backward, linear, linear_backward, LayerNormCache,
};
use orbit_tensor::{Precision, Tensor, Workspace};
use serde::{Deserialize, Serialize};

/// A learnable tensor with its gradient accumulator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    pub value: Tensor,
    pub grad: Tensor,
}

impl Param {
    /// Wrap a value with a zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.rows(), value.cols());
        Param { value, grad }
    }

    /// Zero the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad = Tensor::zeros(self.value.rows(), self.value.cols());
    }

    /// Accumulate a gradient contribution.
    pub fn accumulate(&mut self, g: &Tensor) {
        self.grad.add_assign(g);
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// True if the parameter has no elements.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// Visitor callback over named parameters, in a deterministic order shared
/// by flattening, optimizers, and the sharded engines.
pub type ParamVisitor<'a> = dyn FnMut(&str, &mut Param) + 'a;

/// One transformer block's weights.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransformerBlock {
    pub ln1_gamma: Param,
    pub ln1_beta: Param,
    pub wq: Param,
    pub bq: Param,
    pub wk: Param,
    pub bk: Param,
    pub wv: Param,
    pub bv: Param,
    pub wo: Param,
    pub bo: Param,
    pub ln2_gamma: Param,
    pub ln2_beta: Param,
    pub w1: Param,
    pub b1: Param,
    pub w2: Param,
    pub b2: Param,
    /// QK layernorm parameters (gamma_q, beta_q, gamma_k, beta_k), present
    /// iff the config enables QK normalization.
    pub qk: Option<[Param; 4]>,
    pub heads: usize,
    pub precision: Precision,
}

/// Forward-pass cache for one block (dropped under activation
/// checkpointing and rebuilt by re-running the forward).
pub struct BlockCache {
    ln1: LayerNormCache,
    z1: Tensor,
    mha: MhaCache,
    /// Attention output `a` (input to the Wo projection).
    a: Tensor,
    ln2: LayerNormCache,
    z2: Tensor,
    u: Tensor,
    g: Tensor,
}

impl TransformerBlock {
    /// Initialize a block from the config using the given RNG stream.
    pub fn init(cfg: &VitConfig, rng: &mut Rng) -> Self {
        let d = cfg.dims.embed;
        let dh = cfg.dims.head_dim();
        let std = cfg.init_std;
        let qk = cfg.qk_norm.then(|| {
            [
                Param::new(Tensor::full(1, dh, 1.0)),
                Param::new(Tensor::zeros(1, dh)),
                Param::new(Tensor::full(1, dh, 1.0)),
                Param::new(Tensor::zeros(1, dh)),
            ]
        });
        TransformerBlock {
            ln1_gamma: Param::new(Tensor::full(1, d, 1.0)),
            ln1_beta: Param::new(Tensor::zeros(1, d)),
            wq: Param::new(rng.trunc_normal_tensor(d, d, std)),
            bq: Param::new(Tensor::zeros(1, d)),
            wk: Param::new(rng.trunc_normal_tensor(d, d, std)),
            bk: Param::new(Tensor::zeros(1, d)),
            wv: Param::new(rng.trunc_normal_tensor(d, d, std)),
            bv: Param::new(Tensor::zeros(1, d)),
            wo: Param::new(rng.trunc_normal_tensor(d, d, std)),
            bo: Param::new(Tensor::zeros(1, d)),
            ln2_gamma: Param::new(Tensor::full(1, d, 1.0)),
            ln2_beta: Param::new(Tensor::zeros(1, d)),
            w1: Param::new(rng.trunc_normal_tensor(d, 4 * d, std)),
            b1: Param::new(Tensor::zeros(1, 4 * d)),
            w2: Param::new(rng.trunc_normal_tensor(4 * d, d, std)),
            b2: Param::new(Tensor::zeros(1, d)),
            qk,
            heads: cfg.dims.heads,
            precision: cfg.precision,
        }
    }

    fn qk_norm_ref(&self) -> Option<QkNorm> {
        self.qk.as_ref().map(|[gq, bq, gk, bk]| QkNorm {
            gamma_q: gq.value.clone(),
            beta_q: bq.value.clone(),
            gamma_k: gk.value.clone(),
            beta_k: bk.value.clone(),
        })
    }

    /// Forward for one sequence `x` (`tokens x d`), scratch from the
    /// process-global workspace.
    pub fn forward(&self, x: &Tensor) -> (Tensor, BlockCache) {
        self.forward_ws(x, Workspace::global())
    }

    /// Forward with an explicit scratch arena — the zero-allocation hot
    /// path. Numerically identical to [`Self::forward`]; the arena only
    /// changes where kernel scratch comes from.
    pub fn forward_ws(&self, x: &Tensor, ws: &Workspace) -> (Tensor, BlockCache) {
        let p = self.precision;
        let (z1, ln1) = layernorm(x, &self.ln1_gamma.value, &self.ln1_beta.value);
        let q = linear(&z1, &self.wq.value, Some(&self.bq.value), p);
        let k = linear(&z1, &self.wk.value, Some(&self.bk.value), p);
        let v = linear(&z1, &self.wv.value, Some(&self.bv.value), p);
        let norm = self.qk_norm_ref();
        let (a, mha) = mha_forward_path(
            &q,
            &k,
            &v,
            self.heads,
            norm.as_ref(),
            Precision::F32,
            AttnPath::Auto,
            ws,
        );
        let attn_out = linear(&a, &self.wo.value, Some(&self.bo.value), p);
        let h = x.add(&attn_out);
        let (z2, ln2) = layernorm(&h, &self.ln2_gamma.value, &self.ln2_beta.value);
        let u = linear(&z2, &self.w1.value, Some(&self.b1.value), p);
        let g = gelu(&u);
        let mlp_out = linear(&g, &self.w2.value, Some(&self.b2.value), p);
        let y = h.add(&mlp_out);
        let _ = (q, k, v, h);
        (
            y,
            BlockCache {
                ln1,
                z1,
                mha,
                a,
                ln2,
                z2,
                u,
                g,
            },
        )
    }

    /// Backward for one sequence: accumulates parameter gradients and
    /// returns `dL/dx`. Scratch from the process-global workspace.
    pub fn backward(&mut self, cache: &BlockCache, dy: &Tensor) -> Tensor {
        self.backward_ws(cache, dy, Workspace::global())
    }

    /// Backward with an explicit scratch arena.
    pub fn backward_ws(&mut self, cache: &BlockCache, dy: &Tensor, ws: &Workspace) -> Tensor {
        // y = h + g W2 + b2
        let g2 = linear_backward(&cache.g, &self.w2.value, dy, true);
        self.w2.accumulate(&g2.dw);
        self.b2.accumulate(&g2.db.expect("bias grad"));
        let du = gelu_backward(&cache.u, &g2.dx);
        let g1 = linear_backward(&cache.z2, &self.w1.value, &du, true);
        self.w1.accumulate(&g1.dw);
        self.b1.accumulate(&g1.db.expect("bias grad"));
        let ln2g = layernorm_backward(&cache.ln2, &self.ln2_gamma.value, &g1.dx);
        self.ln2_gamma.accumulate(&ln2g.dgamma);
        self.ln2_beta.accumulate(&ln2g.dbeta);
        // dh = dy (residual) + layernorm path
        let mut dh = dy.clone();
        dh.add_assign(&ln2g.dx);
        // h = x + a Wo + bo
        let go = linear_backward(&cache.a, &self.wo.value, &dh, true);
        self.wo.accumulate(&go.dw);
        self.bo.accumulate(&go.db.expect("bias grad"));
        let norm = self.qk_norm_ref();
        let mg = mha_backward_ws(&cache.mha, norm.as_ref(), &go.dx, ws);
        if let (Some(qk), Some((dgq, dbq, dgk, dbk))) = (self.qk.as_mut(), mg.dqk_norm) {
            qk[0].accumulate(&dgq);
            qk[1].accumulate(&dbq);
            qk[2].accumulate(&dgk);
            qk[3].accumulate(&dbk);
        }
        let gq = linear_backward(&cache.z1, &self.wq.value, &mg.dq, true);
        self.wq.accumulate(&gq.dw);
        self.bq.accumulate(&gq.db.expect("bias grad"));
        let gk = linear_backward(&cache.z1, &self.wk.value, &mg.dk, true);
        self.wk.accumulate(&gk.dw);
        self.bk.accumulate(&gk.db.expect("bias grad"));
        let gv = linear_backward(&cache.z1, &self.wv.value, &mg.dv, true);
        self.wv.accumulate(&gv.dw);
        self.bv.accumulate(&gv.db.expect("bias grad"));
        let mut dz1 = gq.dx;
        dz1.add_assign(&gk.dx);
        dz1.add_assign(&gv.dx);
        let ln1g = layernorm_backward(&cache.ln1, &self.ln1_gamma.value, &dz1);
        self.ln1_gamma.accumulate(&ln1g.dgamma);
        self.ln1_beta.accumulate(&ln1g.dbeta);
        // dx = dh (residual) + layernorm path
        let mut dx = dh;
        dx.add_assign(&ln1g.dx);
        dx
    }

    /// Visit every parameter in deterministic order.
    pub fn visit_params(&mut self, prefix: &str, v: &mut ParamVisitor<'_>) {
        let mut emit = |name: &str, p: &mut Param| v(&format!("{prefix}.{name}"), p);
        emit("ln1_gamma", &mut self.ln1_gamma);
        emit("ln1_beta", &mut self.ln1_beta);
        emit("wq", &mut self.wq);
        emit("bq", &mut self.bq);
        emit("wk", &mut self.wk);
        emit("bk", &mut self.bk);
        emit("wv", &mut self.wv);
        emit("bv", &mut self.bv);
        emit("wo", &mut self.wo);
        emit("bo", &mut self.bo);
        emit("ln2_gamma", &mut self.ln2_gamma);
        emit("ln2_beta", &mut self.ln2_beta);
        emit("w1", &mut self.w1);
        emit("b1", &mut self.b1);
        emit("w2", &mut self.w2);
        emit("b2", &mut self.b2);
        if let Some(qk) = self.qk.as_mut() {
            let names = ["qk_gamma_q", "qk_beta_q", "qk_gamma_k", "qk_beta_k"];
            for (n, p) in names.iter().zip(qk.iter_mut()) {
                emit(n, p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbit_tensor::kernels::fd::{assert_grad_close, numerical_grad};

    fn cfg() -> VitConfig {
        VitConfig::test_tiny()
    }

    fn sample_x(rng: &mut Rng, cfg: &VitConfig) -> Tensor {
        rng.normal_tensor(cfg.tokens(), cfg.dims.embed, 1.0)
    }

    #[test]
    fn forward_shapes_and_determinism() {
        let c = cfg();
        let mut rng = Rng::seed(1);
        let block = TransformerBlock::init(&c, &mut rng);
        let x = sample_x(&mut rng, &c);
        let (y1, _) = block.forward(&x);
        let (y2, _) = block.forward(&x);
        assert_eq!(y1.shape(), x.shape());
        assert_eq!(y1, y2);
    }

    #[test]
    fn residual_path_passes_through_at_zero_weights() {
        // With all projection weights zero the block is the identity (both
        // sub-layers output their biases=0 and the residuals carry x).
        let c = cfg();
        let mut rng = Rng::seed(2);
        let mut block = TransformerBlock::init(&c, &mut rng);
        for p in [
            &mut block.wo, // zeroing wo and w2 cuts both sub-layer outputs
            &mut block.w2,
        ] {
            p.value.scale(0.0);
        }
        let x = sample_x(&mut rng, &c);
        let (y, _) = block.forward(&x);
        assert!(y.allclose(&x, 1e-6, 1e-6));
    }

    #[test]
    fn input_gradient_matches_fd() {
        let c = cfg();
        let mut rng = Rng::seed(3);
        let mut block = TransformerBlock::init(&c, &mut rng);
        let x = sample_x(&mut rng, &c);
        let m = rng.normal_tensor(c.tokens(), c.dims.embed, 1.0);
        let (_, cache) = block.forward(&x);
        let dx = block.backward(&cache, &m);
        let n = numerical_grad(&x, |x_| block.forward(x_).0.hadamard(&m).sum(), 1e-3);
        assert_grad_close(&dx, &n, 5e-2);
    }

    #[test]
    fn weight_gradients_match_fd() {
        let c = cfg();
        let mut rng = Rng::seed(4);
        let mut block = TransformerBlock::init(&c, &mut rng);
        let x = sample_x(&mut rng, &c);
        let m = rng.normal_tensor(c.tokens(), c.dims.embed, 1.0);
        let (_, cache) = block.forward(&x);
        let _ = block.backward(&cache, &m);
        // Check a column-sharded matrix (w1) and a row-sharded one (w2).
        for name in ["w1", "w2", "wq", "ln2_gamma"] {
            let (analytic, numerical) = {
                let base = block.clone();
                let mut probe = block.clone();
                let mut analytic = None;
                probe.visit_params("blk", &mut |n: &str, p: &mut Param| {
                    if n == format!("blk.{name}") {
                        analytic = Some(p.grad.clone());
                    }
                });
                let value = {
                    let mut val = None;
                    let mut probe2 = base.clone();
                    probe2.visit_params("blk", &mut |n: &str, p: &mut Param| {
                        if n == format!("blk.{name}") {
                            val = Some(p.value.clone());
                        }
                    });
                    val.unwrap()
                };
                let numerical = numerical_grad(
                    &value,
                    |w_| {
                        let mut b2 = base.clone();
                        b2.visit_params("blk", &mut |n: &str, p: &mut Param| {
                            if n == format!("blk.{name}") {
                                p.value = w_.clone();
                            }
                        });
                        b2.forward(&x).0.hadamard(&m).sum()
                    },
                    1e-3,
                );
                (analytic.unwrap(), numerical)
            };
            assert_grad_close(&analytic, &numerical, 6e-2);
        }
    }

    #[test]
    fn grads_accumulate_across_calls() {
        let c = cfg();
        let mut rng = Rng::seed(5);
        let mut block = TransformerBlock::init(&c, &mut rng);
        let x = sample_x(&mut rng, &c);
        let dy = Tensor::full(c.tokens(), c.dims.embed, 1.0);
        let (_, cache) = block.forward(&x);
        let _ = block.backward(&cache, &dy);
        let g1 = block.w1.grad.clone();
        let (_, cache2) = block.forward(&x);
        let _ = block.backward(&cache2, &dy);
        assert!(block.w1.grad.allclose(&g1.add(&g1), 1e-4, 1e-5));
        block.w1.zero_grad();
        assert_eq!(block.w1.grad.max_abs(), 0.0);
    }

    #[test]
    fn param_visit_order_is_stable_and_complete() {
        let c = cfg();
        let mut rng = Rng::seed(6);
        let mut block = TransformerBlock::init(&c, &mut rng);
        let mut names = Vec::new();
        let mut total = 0usize;
        block.visit_params("blk", &mut |n: &str, p: &mut Param| {
            names.push(n.to_string());
            total += p.len();
        });
        assert_eq!(names.len(), 20, "16 base + 4 qk-norm params");
        assert_eq!(names[0], "blk.ln1_gamma");
        assert!(names.contains(&"blk.qk_gamma_k".to_string()));
        // Every parameter element is visited exactly once: compare against
        // a manual sum.
        let d = c.dims.embed;
        let dh = c.dims.head_dim();
        let expect =
            2 * d + 4 * (d * d + d) + 2 * d + (4 * d * d + 4 * d) + (4 * d * d + d) + 4 * dh;
        assert_eq!(total, expect);
    }

    #[test]
    fn qk_norm_changes_output() {
        let mut c = cfg();
        let mut rng = Rng::seed(7);
        let with = TransformerBlock::init(&c, &mut rng);
        c.qk_norm = false;
        let mut rng2 = Rng::seed(7);
        let without = TransformerBlock::init(&c, &mut rng2);
        let x = rng.normal_tensor(c.tokens(), c.dims.embed, 1.0);
        assert_ne!(with.forward(&x).0, without.forward(&x).0);
    }
}
