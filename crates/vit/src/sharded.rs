//! Crash-consistent sharded checkpoints (format v3).
//!
//! The monolithic [`Checkpoint`] format gathers the full flat model on
//! every rank before one of them serializes everything — fine at toy
//! scale, a non-starter for a 113 B-parameter model. Format v3 splits the
//! capture across ranks: each rank persists only its `ShardFlat` slice of
//! the parameters and Adam moments as one self-describing shard file, and
//! a generation becomes visible only when an index **manifest** is written
//! *last* — so a crash at any byte boundary leaves the previous committed
//! generation intact.
//!
//! Crash consistency rests on three invariants:
//!
//! 1. **Write-to-temp + atomic rename.** Shard and manifest files are
//!    staged under a dot-prefixed temp name and renamed into place; a file
//!    that is visible under its final name has a complete header.
//! 2. **Manifest written last.** [`ShardStore::commit`] waits for every
//!    shard of the generation to be visible before the manifest appears.
//!    A reader never observes a manifest whose shards were not all
//!    renamed into place.
//! 3. **CRC-checked payloads.** Every shard header carries a CRC-32 of
//!    its payload, repeated in the manifest. A *torn* write (payload
//!    truncated after the rename — the journaled-metadata/lost-data-pages
//!    crash mode) or a silently corrupted byte fails validation on load,
//!    and [`ShardStore::load_latest`] falls back to the previous committed
//!    generation instead of resurrecting garbage.
//!
//! Shards use the same padded flat layout as the FSDP engine
//! ([`flat_shard`]), so an FSDP rank can persist its local shard with **no
//! gather at all**, and the loader reassembles a layout-independent
//! [`Checkpoint`] that restores into any engine at any world size.

use crate::checkpoint::{Checkpoint, ScalerState};
use orbit_tensor::dtensor::{flat_shard, padded_len};
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Per-shard file magic, format v3.
const SHARD_MAGIC: &[u8; 8] = b"ORBITSH3";
/// Manifest file magic, format v3.
const MANIFEST_MAGIC: &[u8; 8] = b"ORBITMF3";

/// An injected storage failure applied to one shard write — the
/// vit-level mirror of `orbit_comm::StorageFault` (this crate does not
/// depend on the cluster runtime).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFault {
    /// Rename lands but the payload is truncated to half its length.
    Torn,
    /// The file is complete but one payload byte is flipped.
    Corrupt,
}

/// One rank's slice of a checkpoint: the `ShardFlat` shard of the
/// parameters and both Adam moments, plus the replicated scalar state
/// every rank agrees on (fingerprint, optimizer step, loss scaler).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardData {
    /// Which shard this is, `0..count`.
    pub index: usize,
    /// Total shards in the generation (the capture world size).
    pub count: usize,
    /// Architectural fingerprint (see [`Checkpoint::fingerprint`]).
    pub fingerprint: [u64; 5],
    pub adam_step: u64,
    pub scaler: Option<ScalerState>,
    /// Global *unpadded* parameter count; the loader trims shard padding
    /// back to this length.
    pub param_len: usize,
    /// This shard's padded slice, `padded_len(param_len, count) / count`
    /// elements each.
    pub params: Vec<f32>,
    pub adam_m: Vec<f32>,
    pub adam_v: Vec<f32>,
}

impl ShardData {
    /// Slice shard `index` of `count` out of a full checkpoint — the
    /// generic path for engines that already hold gathered state.
    pub fn from_checkpoint(ck: &Checkpoint, index: usize, count: usize) -> Self {
        assert!(index < count, "shard index out of range");
        ShardData {
            index,
            count,
            fingerprint: ck.fingerprint,
            adam_step: ck.adam_step,
            scaler: ck.scaler,
            param_len: ck.params.len(),
            params: flat_shard(&ck.params, count, index),
            adam_m: flat_shard(&ck.adam_m, count, index),
            adam_v: flat_shard(&ck.adam_v, count, index),
        }
    }

    /// Wrap shards a rank already holds locally (the FSDP no-gather
    /// path). The slices must be the `ShardFlat` padded layout
    /// [`flat_shard`] produces for `(param_len, count, index)`.
    #[allow(clippy::too_many_arguments)]
    pub fn from_local_shards(
        index: usize,
        count: usize,
        fingerprint: [u64; 5],
        adam_step: u64,
        scaler: Option<ScalerState>,
        param_len: usize,
        params: Vec<f32>,
        adam_m: Vec<f32>,
        adam_v: Vec<f32>,
    ) -> Self {
        let chunk = padded_len(param_len, count) / count;
        assert_eq!(params.len(), chunk, "parameter shard length mismatch");
        assert_eq!(adam_m.len(), chunk, "adam_m shard length mismatch");
        assert_eq!(adam_v.len(), chunk, "adam_v shard length mismatch");
        ShardData {
            index,
            count,
            fingerprint,
            adam_step,
            scaler,
            param_len,
            params,
            adam_m,
            adam_v,
        }
    }
}

/// A committed generation reassembled by [`ShardStore::load_latest`].
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedCheckpoint {
    pub generation: u64,
    /// Global training step the generation was captured at.
    pub step: u64,
    pub checkpoint: Checkpoint,
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven, dependency-free.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 of `data` (IEEE polynomial, the zip/ethernet checksum).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Serialization helpers (little-endian, JSON-free like the v2 format).
// ---------------------------------------------------------------------------

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_scaler(buf: &mut Vec<u8>, s: &Option<ScalerState>) {
    match s {
        Some(s) => {
            buf.push(1);
            buf.extend_from_slice(&s.scale.to_le_bytes());
            buf.extend_from_slice(&s.clean_steps.to_le_bytes());
            buf.extend_from_slice(&s.skipped_steps.to_le_bytes());
        }
        None => buf.push(0),
    }
}

fn put_f32s(buf: &mut Vec<u8>, v: &[f32]) {
    buf.reserve(v.len() * 4);
    for x in v {
        buf.extend_from_slice(&x.to_le_bytes());
    }
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_scaler(r: &mut impl Read) -> io::Result<Option<ScalerState>> {
    let mut flag = [0u8; 1];
    r.read_exact(&mut flag)?;
    if flag[0] == 0 {
        return Ok(None);
    }
    let mut b4 = [0u8; 4];
    r.read_exact(&mut b4)?;
    let scale = f32::from_le_bytes(b4);
    r.read_exact(&mut b4)?;
    let clean_steps = u32::from_le_bytes(b4);
    let skipped_steps = read_u64(r)?;
    Ok(Some(ScalerState {
        scale,
        clean_steps,
        skipped_steps,
    }))
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Everything a shard file says about itself before the payload.
#[derive(Debug, Clone, PartialEq)]
struct ShardHeader {
    fingerprint: [u64; 5],
    generation: u64,
    index: u64,
    count: u64,
    adam_step: u64,
    scaler: Option<ScalerState>,
    param_len: u64,
    /// Elements per section (params / m / v) in this shard.
    shard_len: u64,
    /// CRC-32 of the payload bytes that follow the header.
    payload_crc: u32,
}

impl ShardHeader {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(SHARD_MAGIC);
        for f in self.fingerprint {
            put_u64(buf, f);
        }
        put_u64(buf, self.generation);
        put_u64(buf, self.index);
        put_u64(buf, self.count);
        put_u64(buf, self.adam_step);
        put_scaler(buf, &self.scaler);
        put_u64(buf, self.param_len);
        put_u64(buf, self.shard_len);
        put_u32(buf, self.payload_crc);
    }

    fn decode(r: &mut impl Read) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != SHARD_MAGIC {
            return Err(bad("bad shard magic"));
        }
        let mut fingerprint = [0u64; 5];
        for f in &mut fingerprint {
            *f = read_u64(r)?;
        }
        Ok(ShardHeader {
            fingerprint,
            generation: read_u64(r)?,
            index: read_u64(r)?,
            count: read_u64(r)?,
            adam_step: read_u64(r)?,
            scaler: read_scaler(r)?,
            param_len: read_u64(r)?,
            shard_len: read_u64(r)?,
            payload_crc: read_u32(r)?,
        })
    }
}

/// The index record committed last: names the generation's shard set and
/// repeats every payload CRC, itself integrity-checked by a trailing CRC.
#[derive(Debug, Clone, PartialEq)]
struct Manifest {
    generation: u64,
    step: u64,
    fingerprint: [u64; 5],
    adam_step: u64,
    scaler: Option<ScalerState>,
    param_len: u64,
    /// Per-shard (shard_len, payload_crc), indexed by shard.
    shards: Vec<(u64, u32)>,
}

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MANIFEST_MAGIC);
        put_u64(&mut buf, self.generation);
        put_u64(&mut buf, self.step);
        for f in self.fingerprint {
            put_u64(&mut buf, f);
        }
        put_u64(&mut buf, self.adam_step);
        put_scaler(&mut buf, &self.scaler);
        put_u64(&mut buf, self.param_len);
        put_u64(&mut buf, self.shards.len() as u64);
        for (len, crc) in &self.shards {
            put_u64(&mut buf, *len);
            put_u32(&mut buf, *crc);
        }
        let crc = crc32(&buf);
        put_u32(&mut buf, crc);
        buf
    }

    fn decode(bytes: &[u8]) -> io::Result<Self> {
        if bytes.len() < 4 {
            return Err(bad("manifest too short"));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 4);
        let expect = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]);
        if crc32(body) != expect {
            return Err(bad("manifest CRC mismatch"));
        }
        let mut r = body;
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MANIFEST_MAGIC {
            return Err(bad("bad manifest magic"));
        }
        let generation = read_u64(&mut r)?;
        let step = read_u64(&mut r)?;
        let mut fingerprint = [0u64; 5];
        for f in &mut fingerprint {
            *f = read_u64(&mut r)?;
        }
        let adam_step = read_u64(&mut r)?;
        let scaler = read_scaler(&mut r)?;
        let param_len = read_u64(&mut r)?;
        let count = read_u64(&mut r)? as usize;
        let mut shards = Vec::with_capacity(count);
        for _ in 0..count {
            let len = read_u64(&mut r)?;
            let crc = read_u32(&mut r)?;
            shards.push((len, crc));
        }
        Ok(Manifest {
            generation,
            step,
            fingerprint,
            adam_step,
            scaler,
            param_len,
            shards,
        })
    }
}

/// A directory of sharded checkpoint generations.
///
/// Writers: every rank calls [`ShardStore::write_shard`] with its slice;
/// one rank (by convention rank 0) then calls [`ShardStore::commit`],
/// which waits for the full shard set and publishes the manifest.
/// Readers call [`ShardStore::load_latest`], which walks committed
/// generations newest-first and returns the first one that validates.
#[derive(Debug, Clone)]
pub struct ShardStore {
    dir: PathBuf,
}

impl ShardStore {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ShardStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn shard_path(&self, generation: u64, index: usize) -> PathBuf {
        self.dir
            .join(format!("shard-g{generation:010}-r{index:05}.bin"))
    }

    fn manifest_path(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("manifest-g{generation:010}.bin"))
    }

    /// Stage `bytes` under a temp name and atomically rename to `final_`.
    fn publish(&self, final_: &Path, bytes: &[u8]) -> io::Result<()> {
        let name = final_
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| bad("non-utf8 store path"))?;
        let tmp = self
            .dir
            .join(format!(".tmp-{}-{}", std::process::id(), name));
        {
            let mut w = BufWriter::new(File::create(&tmp)?);
            w.write_all(bytes)?;
            w.flush()?;
        }
        fs::rename(&tmp, final_)
    }

    /// Persist one rank's shard of generation `generation`. Injecting
    /// `fault` models the two storage crash modes: `Torn` truncates the
    /// payload after the rename (header intact, data short), `Corrupt`
    /// flips one payload byte. Both must be caught by CRC/length checks
    /// on load, never surfaced as a successful restore.
    pub fn write_shard(
        &self,
        generation: u64,
        shard: &ShardData,
        fault: Option<ShardFault>,
    ) -> io::Result<()> {
        let shard_len = shard.params.len();
        assert_eq!(shard.adam_m.len(), shard_len, "moment shard length");
        assert_eq!(shard.adam_v.len(), shard_len, "moment shard length");
        let mut payload = Vec::with_capacity(shard_len * 12);
        put_f32s(&mut payload, &shard.params);
        put_f32s(&mut payload, &shard.adam_m);
        put_f32s(&mut payload, &shard.adam_v);
        let header = ShardHeader {
            fingerprint: shard.fingerprint,
            generation,
            index: shard.index as u64,
            count: shard.count as u64,
            adam_step: shard.adam_step,
            scaler: shard.scaler,
            param_len: shard.param_len as u64,
            shard_len: shard_len as u64,
            payload_crc: crc32(&payload),
        };
        let mut bytes = Vec::with_capacity(payload.len() + 128);
        header.encode(&mut bytes);
        let header_len = bytes.len();
        bytes.extend_from_slice(&payload);
        match fault {
            Some(ShardFault::Torn) => {
                bytes.truncate(header_len + payload.len() / 2);
            }
            Some(ShardFault::Corrupt) if !payload.is_empty() => {
                let at = header_len + payload.len() / 2;
                bytes[at] ^= 0xFF;
            }
            _ => {}
        }
        self.publish(&self.shard_path(generation, shard.index), &bytes)
    }

    /// Publish generation `generation` captured at training step `step`:
    /// wait (polling, wall-clock bounded) until all `count` shard files
    /// are visible, assemble the manifest from their headers, and rename
    /// it into place **last**. Returns `Ok(false)` if the shard set never
    /// completed within `timeout` — e.g. a rank died mid-capture — in
    /// which case no manifest is written and the generation is invisible
    /// to readers, exactly as crash consistency demands.
    pub fn commit(
        &self,
        generation: u64,
        step: u64,
        count: usize,
        timeout: Duration,
    ) -> io::Result<bool> {
        assert!(count > 0, "a generation needs at least one shard");
        let deadline = Instant::now() + timeout;
        let headers = loop {
            let mut headers = Vec::with_capacity(count);
            for index in 0..count {
                let path = self.shard_path(generation, index);
                match File::open(&path) {
                    Ok(f) => headers.push(ShardHeader::decode(&mut BufReader::new(f))?),
                    Err(e) if e.kind() == io::ErrorKind::NotFound => break,
                    Err(e) => return Err(e),
                }
            }
            if headers.len() == count {
                break headers;
            }
            if Instant::now() >= deadline {
                return Ok(false);
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        for (i, h) in headers.iter().enumerate() {
            if h.generation != generation || h.index != i as u64 || h.count != count as u64 {
                return Err(bad(format!(
                    "shard {i} of generation {generation} is inconsistent"
                )));
            }
        }
        let head = &headers[0];
        let manifest = Manifest {
            generation,
            step,
            fingerprint: head.fingerprint,
            adam_step: head.adam_step,
            scaler: head.scaler,
            param_len: head.param_len,
            shards: headers
                .iter()
                .map(|h| (h.shard_len, h.payload_crc))
                .collect(),
        };
        self.publish(&self.manifest_path(generation), &manifest.encode())?;
        Ok(true)
    }

    /// Committed generations, ascending (manifests present on disk;
    /// whether they validate is [`ShardStore::load_latest`]'s business).
    pub fn generations(&self) -> io::Result<Vec<u64>> {
        let mut gens = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(g) = name
                .strip_prefix("manifest-g")
                .and_then(|s| s.strip_suffix(".bin"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                gens.push(g);
            }
        }
        gens.sort_unstable();
        Ok(gens)
    }

    /// Load and fully validate one committed generation by number —
    /// shard headers cross-checked against the manifest, payload CRCs
    /// verified, sections reassembled in index order and trimmed to
    /// `param_len`. Errors on any inconsistency; use
    /// [`ShardStore::load_latest`] for the falling-back resume path.
    pub fn load_generation(&self, generation: u64) -> io::Result<LoadedCheckpoint> {
        let bytes = fs::read(self.manifest_path(generation))?;
        let manifest = Manifest::decode(&bytes)?;
        if manifest.generation != generation {
            return Err(bad("manifest generation mismatch"));
        }
        let count = manifest.shards.len();
        let mut params = Vec::new();
        let mut adam_m = Vec::new();
        let mut adam_v = Vec::new();
        for (index, &(shard_len, expect_crc)) in manifest.shards.iter().enumerate() {
            let mut r = BufReader::new(File::open(self.shard_path(generation, index))?);
            let header = ShardHeader::decode(&mut r)?;
            if header.generation != generation
                || header.index != index as u64
                || header.count != count as u64
                || header.fingerprint != manifest.fingerprint
                || header.shard_len != shard_len
            {
                return Err(bad(format!("shard {index} does not match manifest")));
            }
            let mut payload = vec![0u8; shard_len as usize * 12];
            // A torn shard is shorter than its header claims: this read
            // fails, and the caller falls back a generation.
            r.read_exact(&mut payload)?;
            if crc32(&payload) != expect_crc {
                return Err(bad(format!("shard {index} payload CRC mismatch")));
            }
            let floats: Vec<f32> = payload
                .chunks_exact(4)
                .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                .collect();
            let n = shard_len as usize;
            params.extend_from_slice(&floats[..n]);
            adam_m.extend_from_slice(&floats[n..2 * n]);
            adam_v.extend_from_slice(&floats[2 * n..]);
        }
        let len = manifest.param_len as usize;
        if params.len() < len {
            return Err(bad("manifest shard set covers fewer than param_len"));
        }
        params.truncate(len);
        adam_m.truncate(len);
        adam_v.truncate(len);
        Ok(LoadedCheckpoint {
            generation,
            step: manifest.step,
            checkpoint: Checkpoint {
                fingerprint: manifest.fingerprint,
                params,
                adam_m,
                adam_v,
                adam_step: manifest.adam_step,
                scaler: manifest.scaler,
            },
        })
    }

    /// Reassemble the newest committed generation that validates end to
    /// end, walking backwards past generations with torn, missing, or
    /// corrupt shards. `Ok(None)` means no generation is loadable (an
    /// empty or fully-corrupt store — a fresh start, not an error).
    pub fn load_latest(&self) -> io::Result<Option<LoadedCheckpoint>> {
        for generation in self.generations()?.into_iter().rev() {
            match self.load_generation(generation) {
                Ok(loaded) => return Ok(Some(loaded)),
                // Anything wrong with this generation — torn payload,
                // CRC mismatch, missing shard — disqualifies it; older
                // committed generations remain candidates.
                Err(_) => continue,
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint(len: usize) -> Checkpoint {
        Checkpoint {
            fingerprint: [16, 2, 2, 3, 4],
            params: (0..len).map(|i| i as f32 * 0.25 - 3.0).collect(),
            adam_m: (0..len).map(|i| (i as f32).sin()).collect(),
            adam_v: (0..len).map(|i| i as f32 * 1e-3).collect(),
            adam_step: 17,
            scaler: Some(ScalerState {
                scale: 1024.0,
                clean_steps: 9,
                skipped_steps: 2,
            }),
        }
    }

    fn temp_store(tag: &str) -> ShardStore {
        let dir = std::env::temp_dir().join(format!(
            "orbit_sharded_{tag}_{}_{}",
            std::process::id(),
            std::thread::current()
                .name()
                .unwrap_or("t")
                .replace("::", "_")
        ));
        fs::remove_dir_all(&dir).ok();
        ShardStore::new(dir).unwrap()
    }

    fn write_generation(
        store: &ShardStore,
        ck: &Checkpoint,
        generation: u64,
        count: usize,
        fault_on: Option<(usize, ShardFault)>,
    ) {
        for index in 0..count {
            let shard = ShardData::from_checkpoint(ck, index, count);
            let fault = fault_on.and_then(|(i, f)| (i == index).then_some(f));
            store.write_shard(generation, &shard, fault).unwrap();
        }
        assert!(store
            .commit(generation, generation, count, Duration::from_secs(5))
            .unwrap());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn sharded_roundtrip_reassembles_bit_exactly() {
        // 10 elements over 4 shards: padding in play (padded to 12).
        let store = temp_store("roundtrip");
        let ck = sample_checkpoint(10);
        write_generation(&store, &ck, 2, 4, None);
        let loaded = store.load_latest().unwrap().expect("committed generation");
        assert_eq!(loaded.generation, 2);
        assert_eq!(loaded.step, 2);
        assert_eq!(loaded.checkpoint, ck);
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn uncommitted_generation_is_invisible() {
        let store = temp_store("uncommitted");
        let ck = sample_checkpoint(8);
        for index in 0..2 {
            let shard = ShardData::from_checkpoint(&ck, index, 2);
            store.write_shard(1, &shard, None).unwrap();
        }
        // No commit: the manifest is what makes a generation exist.
        assert_eq!(store.load_latest().unwrap(), None);
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn commit_times_out_without_a_full_shard_set() {
        let store = temp_store("timeout");
        let ck = sample_checkpoint(8);
        let shard = ShardData::from_checkpoint(&ck, 0, 2);
        store.write_shard(1, &shard, None).unwrap();
        // Shard 1 never arrives (its rank died mid-capture).
        let committed = store.commit(1, 1, 2, Duration::from_millis(20)).unwrap();
        assert!(!committed);
        assert_eq!(store.generations().unwrap(), Vec::<u64>::new());
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn torn_write_falls_back_to_previous_generation() {
        let store = temp_store("torn");
        let ck1 = sample_checkpoint(10);
        let mut ck2 = sample_checkpoint(10);
        ck2.params[0] = 99.0;
        ck2.adam_step = 18;
        write_generation(&store, &ck1, 1, 2, None);
        // Generation 2 commits, but shard 1's payload was torn mid-write.
        write_generation(&store, &ck2, 2, 2, Some((1, ShardFault::Torn)));
        assert_eq!(store.generations().unwrap(), vec![1, 2]);
        let loaded = store.load_latest().unwrap().expect("fallback generation");
        assert_eq!(loaded.generation, 1, "torn generation must be skipped");
        assert_eq!(loaded.checkpoint, ck1);
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn corrupt_shard_falls_back_to_previous_generation() {
        let store = temp_store("corrupt");
        let ck1 = sample_checkpoint(12);
        let mut ck2 = sample_checkpoint(12);
        ck2.params[5] = -42.0;
        write_generation(&store, &ck1, 5, 3, None);
        write_generation(&store, &ck2, 6, 3, Some((0, ShardFault::Corrupt)));
        let loaded = store.load_latest().unwrap().expect("fallback generation");
        assert_eq!(loaded.generation, 5, "corrupt generation must be skipped");
        assert_eq!(loaded.checkpoint, ck1);
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn loader_reassembles_any_shard_count() {
        // The same checkpoint written at different worlds loads
        // identically: shards are layout, not content.
        let store = temp_store("anyworld");
        let ck = sample_checkpoint(11);
        write_generation(&store, &ck, 1, 1, None);
        write_generation(&store, &ck, 2, 3, None);
        write_generation(&store, &ck, 3, 8, None);
        for expect_gen in [3u64, 2, 1] {
            let loaded = store.load_latest().unwrap().unwrap();
            assert_eq!(loaded.generation, expect_gen);
            assert_eq!(loaded.checkpoint, ck);
            fs::remove_file(store.dir().join(format!("manifest-g{expect_gen:010}.bin"))).unwrap();
        }
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn local_shard_path_matches_checkpoint_slicing() {
        let ck = sample_checkpoint(10);
        let sliced = ShardData::from_checkpoint(&ck, 1, 4);
        let local = ShardData::from_local_shards(
            1,
            4,
            ck.fingerprint,
            ck.adam_step,
            ck.scaler,
            10,
            flat_shard(&ck.params, 4, 1),
            flat_shard(&ck.adam_m, 4, 1),
            flat_shard(&ck.adam_v, 4, 1),
        );
        assert_eq!(sliced, local);
    }
}
